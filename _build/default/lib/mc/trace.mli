(** Counterexample traces: per-cycle input and register valuations. *)

type frame = { inputs : (string * int) list; regs : (string * int) list }
type t = frame list

val length : t -> int
val pp : Format.formatter -> t -> unit
