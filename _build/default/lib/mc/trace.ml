(* Counterexample traces: per-cycle input and register valuations. *)

type frame = { inputs : (string * int) list; regs : (string * int) list }

type t = frame list

let length (t : t) = List.length t

let pp_valuation fmt vs =
  Fmt.list ~sep:Fmt.sp (fun fmt (n, v) -> Fmt.pf fmt "%s=%d" n v) fmt vs

let pp fmt (t : t) =
  List.iteri
    (fun i f ->
      Fmt.pf fmt "cycle %d: in[%a] reg[%a]@." i pp_valuation f.inputs
        pp_valuation f.regs)
    t
