(** Bounded model checking and k-induction over bit-blasted netlists. *)

type check_result =
  | Holds  (** no counterexample up to the given depth *)
  | Counterexample of Trace.t
  | Resource_out  (** SAT conflict budget exhausted *)

val check :
  ?max_conflicts:int -> depth:int -> Symbad_hdl.Netlist.t -> Prop.t -> check_result
(** Search for a violation within [0, depth] steps from reset.  A step
    property at depth [k] spans states [k] and [k + 1]. *)

type induction_result =
  | Inductive
  | Cti of Trace.t
      (** counterexample-to-induction: a [k]-step path over free states
          satisfying the property that then violates it — not
          necessarily reachable *)
  | Induction_resource_out

val inductive_step :
  ?max_conflicts:int -> k:int -> Symbad_hdl.Netlist.t -> Prop.t -> induction_result
(** The inductive step at depth [k >= 1]: together with [check ~depth:k]
    returning [Holds], [Inductive] proves the property. *)
