(** Safety properties over a netlist.

    An invariant property is a width-1 expression over inputs and
    registers that must hold in every reachable state, for every input.
    A step (two-state) property additionally reads primed registers
    ([Reg "x'"]), which denote the next-state value — the transition
    relation view used for update-correctness properties. *)

module Expr := Symbad_hdl.Expr
module Netlist := Symbad_hdl.Netlist

type t

val make : name:string -> Expr.t -> t
(** An invariant property (primed registers rejected by {!validate}). *)

val make_step : name:string -> Expr.t -> t
(** A transition property; register names ending in ['] refer to the
    next state. *)

val name : t -> string
val formula : t -> Expr.t
val is_step : t -> bool

val next : Expr.t -> Expr.t
(** Rewrite every register reference to its primed version, so step
    properties read [implies guard (eq (next e) rhs)]. *)

val output : Netlist.t -> string -> Expr.t
(** Inline a named combinational output for use inside a property. *)

val implies : Expr.t -> Expr.t -> Expr.t
val never : Expr.t -> Expr.t

val validate : Netlist.t -> t -> t
(** Check the formula is width-1 over the netlist's signals; raises
    [Invalid_argument] otherwise. *)

val pp : Format.formatter -> t -> unit
