lib/mc/bmc.mli: Prop Symbad_hdl Trace
