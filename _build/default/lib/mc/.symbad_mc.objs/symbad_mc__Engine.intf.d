lib/mc/engine.mli: Format Prop Symbad_hdl Trace
