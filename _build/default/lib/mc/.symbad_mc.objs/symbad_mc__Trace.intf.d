lib/mc/trace.mli: Format
