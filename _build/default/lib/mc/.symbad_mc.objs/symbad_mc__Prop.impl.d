lib/mc/prop.ml: Fmt Printf String Symbad_hdl
