lib/mc/engine.ml: Bmc Explicit Fmt List Printf Prop Symbad_hdl Trace
