lib/mc/explicit.mli: Prop Symbad_hdl Trace
