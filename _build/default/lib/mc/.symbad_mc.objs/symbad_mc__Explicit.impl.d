lib/mc/explicit.ml: Hashtbl List Prop Queue Symbad_hdl Trace
