lib/mc/bmc.ml: List Prop Symbad_hdl Symbad_sat Trace
