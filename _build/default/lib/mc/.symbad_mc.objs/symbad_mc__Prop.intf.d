lib/mc/prop.mli: Format Symbad_hdl
