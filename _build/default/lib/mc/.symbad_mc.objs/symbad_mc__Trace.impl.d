lib/mc/trace.ml: Fmt List
