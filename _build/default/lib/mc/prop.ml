(* Safety properties over a netlist: width-1 expressions over the
   netlist's inputs and registers that must hold in every reachable state
   (for every input). *)

module Expr = Symbad_hdl.Expr
module Netlist = Symbad_hdl.Netlist

type t = { name : string; formula : Expr.t; step : bool }

let make ~name formula = { name; formula; step = false }

(* A transition (two-state) property: register names ending in ['] refer
   to the next state, e.g. "push && !full ==> count' = count + 1". *)
let make_step ~name formula = { name; formula; step = true }

let name p = p.name
let formula p = p.formula
let is_step p = p.step

let is_primed n = String.length n > 0 && n.[String.length n - 1] = '\''
let strip_prime n =
  if is_primed n then String.sub n 0 (String.length n - 1) else n

(* [next e] rewrites every register reference to its primed version, so
   step properties can be written as [implies guard (next expr)]. *)
let rec next (e : Expr.t) =
  match e with
  | Expr.Const _ | Expr.Input _ -> e
  | Expr.Reg n -> Expr.Reg (if is_primed n then n else n ^ "'")
  | Expr.Unop (op, a) -> Expr.Unop (op, next a)
  | Expr.Binop (op, a, b) -> Expr.Binop (op, next a, next b)
  | Expr.Mux (s, t, f) -> Expr.Mux (next s, next t, next f)
  | Expr.Slice (a, hi, lo) -> Expr.Slice (next a, hi, lo)
  | Expr.Concat (a, b) -> Expr.Concat (next a, next b)

(* Inline a named output of the netlist as an expression usable inside a
   property (outputs are combinational, so substitution is sound). *)
let output nl out =
  match Netlist.find_output nl out with
  | Some e -> e
  | None ->
      invalid_arg
        ("Prop.output: no output " ^ out ^ " in " ^ Netlist.name nl)

let implies a b = Expr.or_ (Expr.not_ a) b

let never e = Expr.not_ e

(* Validate that the formula is a width-1 expression of the netlist;
   primed registers are allowed only in step properties. *)
let validate nl p =
  let reg_width n =
    if is_primed n && not p.step then None
    else Netlist.reg_width (strip_prime n) nl
  in
  let w =
    Expr.width ~input_width:(fun n -> Netlist.input_width n nl) ~reg_width
      p.formula
  in
  if w <> 1 then
    invalid_arg
      (Printf.sprintf "Prop %s: formula width %d, expected 1" p.name w);
  p

let pp fmt p = Fmt.pf fmt "%s: %a" p.name Expr.pp p.formula
