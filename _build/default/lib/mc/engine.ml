(* The level-4 model-checking engine.

   Strategy mirroring the paper's "model checking and SAT solving are
   used at this level": interleave BMC (counterexample hunting) with
   k-induction (proof attempts) for increasing k; fall back to explicit
   reachability when the design is small enough and induction fails.
   Every property receives either a proof certificate or a counter
   example, as the flow requires. *)

module Netlist = Symbad_hdl.Netlist

type verdict =
  | Proved of { method_ : string; depth : int }
  | Falsified of Trace.t
  | Unknown of { reason : string }

type report = {
  property : string;
  verdict : verdict;
  checked_depth : int;
}

let check ?(max_depth = 20) ?(max_conflicts = 200_000) nl prop =
  let rec loop k =
    if k > max_depth then
      (* last resort: exact reachability if tractable *)
      match Explicit.check nl prop with
      | Explicit.Proved { states } ->
          { property = Prop.name prop;
            verdict = Proved { method_ = Printf.sprintf "reachability(%d states)" states; depth = max_depth };
            checked_depth = max_depth }
      | Explicit.Falsified tr ->
          { property = Prop.name prop; verdict = Falsified tr;
            checked_depth = max_depth }
      | Explicit.Too_large ->
          { property = Prop.name prop;
            verdict = Unknown { reason = Printf.sprintf "no proof within k=%d" max_depth };
            checked_depth = max_depth }
    else begin
      match Bmc.check ~max_conflicts ~depth:k nl prop with
      | Bmc.Counterexample tr ->
          { property = Prop.name prop; verdict = Falsified tr;
            checked_depth = k }
      | Bmc.Resource_out ->
          { property = Prop.name prop;
            verdict = Unknown { reason = "SAT budget exhausted in BMC" };
            checked_depth = k }
      | Bmc.Holds -> (
          if k = 0 then loop (k + 1)
          else
            match Bmc.inductive_step ~max_conflicts ~k nl prop with
            | Bmc.Inductive ->
                { property = Prop.name prop;
                  verdict = Proved { method_ = "k-induction"; depth = k };
                  checked_depth = k }
            | Bmc.Cti _ -> loop (k + 1)
            | Bmc.Induction_resource_out ->
                { property = Prop.name prop;
                  verdict = Unknown { reason = "SAT budget exhausted in induction" };
                  checked_depth = k })
    end
  in
  loop 0

let check_all ?max_depth ?max_conflicts nl props =
  List.map (check ?max_depth ?max_conflicts nl) props

let all_proved reports =
  List.for_all
    (fun r -> match r.verdict with Proved _ -> true | _ -> false)
    reports

let pp_verdict fmt = function
  | Proved { method_; depth } -> Fmt.pf fmt "proved (%s, k=%d)" method_ depth
  | Falsified tr -> Fmt.pf fmt "FALSIFIED (%d-cycle trace)" (Trace.length tr)
  | Unknown { reason } -> Fmt.pf fmt "unknown (%s)" reason

let pp_report fmt r =
  Fmt.pf fmt "%-28s %a" r.property pp_verdict r.verdict
