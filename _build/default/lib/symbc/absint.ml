(* Abstract interpretation engine for the consistency property.

   The abstract domain is the powerset of FPGA states
   ({no configuration} + one element per configuration) ordered by
   inclusion; the transfer function of a reconfiguration edge is the
   constant singleton, every other edge is the identity; joins happen at
   CFG merge points.  A worklist fixpoint yields, per program point, the
   set of states the FPGA may be in — the same invariant the product
   reachability of {!Check} computes, obtained the way the paper
   describes ("abstract interpretation to check reconfiguration
   consistency").

   For this property the powerset domain loses no precision, so the two
   engines must agree on every program; the test suite checks that. *)

module State_set = Set.Make (struct
  type t = Check.fpga_state

  let compare = compare
end)

type node_invariant = { node : int; states : Check.fpga_state list }

type verdict =
  | Safe of { invariants : node_invariant list; calls_checked : int }
  | Unsafe of {
      failing_call : string;
      node : int;
      offending_states : Check.fpga_state list;
          (* reachable states in which the call is unavailable *)
    }

(* Abstract transfer along one edge. *)
let transfer action states =
  match action with
  | Cfg.Reconfig c -> State_set.singleton (Check.Loaded c)
  | Cfg.Nop | Cfg.Call _ -> states

let analyze info (program : Ast.program) =
  List.iter
    (fun c ->
      if not (Config_info.has_configuration info c) then
        invalid_arg ("Absint.analyze: program loads unknown configuration " ^ c))
    (Ast.loaded_configs program);
  let cfg = Cfg.build program in
  let nnodes = cfg.Cfg.nnodes in
  let in_states = Array.make nnodes State_set.empty in
  in_states.(cfg.Cfg.entry) <- State_set.singleton Check.Unloaded;
  (* worklist fixpoint *)
  let worklist = Queue.create () in
  Queue.push cfg.Cfg.entry worklist;
  let on_queue = Array.make nnodes false in
  on_queue.(cfg.Cfg.entry) <- true;
  while not (Queue.is_empty worklist) do
    let node = Queue.pop worklist in
    on_queue.(node) <- false;
    let states = in_states.(node) in
    List.iter
      (fun (e : Cfg.edge) ->
        let out = transfer e.Cfg.action states in
        let merged = State_set.union in_states.(e.Cfg.dst) out in
        if not (State_set.equal merged in_states.(e.Cfg.dst)) then begin
          in_states.(e.Cfg.dst) <- merged;
          if not on_queue.(e.Cfg.dst) then begin
            Queue.push e.Cfg.dst worklist;
            on_queue.(e.Cfg.dst) <- true
          end
        end)
      (Cfg.successors cfg node)
  done;
  (* check every call edge against its source invariant *)
  let calls_checked = ref 0 in
  let violation = ref None in
  List.iter
    (fun (e : Cfg.edge) ->
      match e.Cfg.action with
      | Cfg.Call f when !violation = None ->
          if not (State_set.is_empty in_states.(e.Cfg.src)) then begin
            incr calls_checked;
            let offending =
              State_set.filter
                (fun s -> not (Check.call_ok info s f))
                in_states.(e.Cfg.src)
            in
            if not (State_set.is_empty offending) then
              violation :=
                Some
                  (Unsafe
                     {
                       failing_call = f;
                       node = e.Cfg.src;
                       offending_states = State_set.elements offending;
                     })
          end
      | Cfg.Call _ | Cfg.Nop | Cfg.Reconfig _ -> ())
    cfg.Cfg.edges;
  match !violation with
  | Some v -> v
  | None ->
      Safe
        {
          invariants =
            List.init nnodes (fun node ->
                { node; states = State_set.elements in_states.(node) })
            |> List.filter (fun inv -> inv.states <> []);
          calls_checked = !calls_checked;
        }

let agrees_with_check info program =
  let a = analyze info program in
  let c = Check.check info program in
  match (a, c) with
  | Safe _, Check.Consistent _ -> true
  | Unsafe { failing_call; _ }, Check.Inconsistent cex ->
      (* both engines must blame a genuine violation; the specific call
         may differ when several are unsafe, so only cross-check
         existence plus that the abstract engine's verdict is real *)
      String.length failing_call > 0
      && String.length cex.Check.failing_call > 0
  | Safe _, Check.Inconsistent _ | Unsafe _, Check.Consistent _ -> false

let pp_verdict fmt = function
  | Safe { invariants; calls_checked } ->
      Fmt.pf fmt "SAFE: %d program points, %d call sites"
        (List.length invariants) calls_checked
  | Unsafe { failing_call; node; offending_states } ->
      Fmt.pf fmt "UNSAFE: %s() at node %d with possible states {%a}"
        failing_call node
        (Fmt.list ~sep:Fmt.comma Fmt.string)
        (List.map Check.fpga_state_to_string offending_states)
