(* The SymbC consistency check.

   Fundamental property: "each time the software requires a hardware
   resource of the reconfigurable part, this resource is actually
   available".

   Because the FPGA state is exactly "no configuration loaded yet" or
   "configuration c loaded", the product of the CFG with that finite
   state is a faithful abstraction of every execution's reconfiguration
   behaviour.  Exhaustive reachability on the product yields either a
   per-program-point invariant (the certificate: at this point the FPGA
   can only be in these states, and every outgoing call is available in
   all of them) or a shortest counterexample path ending in a call to a
   function absent from the (possibly missing) loaded configuration. *)

type fpga_state = Unloaded | Loaded of string

let fpga_state_to_string = function
  | Unloaded -> "<no configuration>"
  | Loaded c -> c

type step = { action : Cfg.action; state_after : fpga_state }

type counterexample = {
  failing_call : string;
  state_at_call : fpga_state;
  path : step list;  (* actions from program entry to the failing call *)
}

type certificate = {
  invariants : (int * fpga_state list) list;
      (* program point -> possible FPGA states *)
  calls_checked : int;
}

type verdict = Consistent of certificate | Inconsistent of counterexample

(* A call is safe in a given FPGA state if the function is plain SW, or
   the loaded configuration provides it. *)
let call_ok info state f =
  if not (Config_info.is_fpga_function info f) then true
  else
    match state with
    | Unloaded -> false
    | Loaded c -> Config_info.provides info ~config:c f

let check info (program : Ast.program) =
  (* reject programs loading unknown configurations outright *)
  List.iter
    (fun c ->
      if not (Config_info.has_configuration info c) then
        invalid_arg ("Symbc.check: program loads unknown configuration " ^ c))
    (Ast.loaded_configs program);
  let cfg = Cfg.build program in
  let module Key = struct
    type t = int * fpga_state
  end in
  let visited : (Key.t, unit) Hashtbl.t = Hashtbl.create 64 in
  let parent : (Key.t, Key.t * Cfg.action) Hashtbl.t = Hashtbl.create 64 in
  let queue = Queue.create () in
  let start = (cfg.Cfg.entry, Unloaded) in
  Hashtbl.add visited start ();
  Queue.push start queue;
  let calls_checked = ref 0 in
  let rebuild_path key =
    let rec go key acc =
      match Hashtbl.find_opt parent key with
      | None -> acc
      | Some (prev, action) ->
          let _, state_after = key in
          go prev ({ action; state_after } :: acc)
    in
    go key []
  in
  let exception Violation of counterexample in
  try
    while not (Queue.is_empty queue) do
      let ((node, state) as key) = Queue.pop queue in
      List.iter
        (fun (e : Cfg.edge) ->
          let state' =
            match e.Cfg.action with
            | Cfg.Reconfig c -> Loaded c
            | Cfg.Nop | Cfg.Call _ -> state
          in
          (match e.Cfg.action with
          | Cfg.Call f ->
              incr calls_checked;
              if not (call_ok info state f) then begin
                let key' = (e.Cfg.dst, state') in
                if not (Hashtbl.mem parent key') then
                  Hashtbl.add parent key' (key, e.Cfg.action);
                raise
                  (Violation
                     {
                       failing_call = f;
                       state_at_call = state;
                       path = rebuild_path key';
                     })
              end
          | Cfg.Nop | Cfg.Reconfig _ -> ());
          let key' = (e.Cfg.dst, state') in
          if not (Hashtbl.mem visited key') then begin
            Hashtbl.add visited key' ();
            Hashtbl.add parent key' (key, e.Cfg.action);
            Queue.push key' queue
          end)
        (Cfg.successors cfg node)
    done;
    (* certificate: group reachable states by program point *)
    let inv : (int, fpga_state list) Hashtbl.t = Hashtbl.create 64 in
    Hashtbl.iter
      (fun (node, state) () ->
        let cur = Option.value ~default:[] (Hashtbl.find_opt inv node) in
        if not (List.mem state cur) then Hashtbl.replace inv node (state :: cur))
      visited;
    let invariants =
      Hashtbl.fold (fun node states acc -> (node, states) :: acc) inv []
      |> List.sort compare
    in
    Consistent { invariants; calls_checked = !calls_checked }
  with Violation cex -> Inconsistent cex

let pp_step fmt s =
  Fmt.pf fmt "%s  [fpga: %s]" (Cfg.action_to_string s.action)
    (fpga_state_to_string s.state_after)

let pp_verdict fmt = function
  | Consistent { invariants; calls_checked } ->
      Fmt.pf fmt
        "CONSISTENT: certificate over %d program points, %d call sites checked"
        (List.length invariants) calls_checked
  | Inconsistent cex ->
      Fmt.pf fmt
        "INCONSISTENT: %s() invoked with FPGA state %s@.counterexample path:@."
        cex.failing_call
        (fpga_state_to_string cex.state_at_call);
      List.iter (fun s -> Fmt.pf fmt "  %a@." pp_step s) cex.path
