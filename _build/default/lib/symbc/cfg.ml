(* Control-flow graph of a mini-C program.

   Nodes are program points; edges carry the action performed when
   control moves along them.  Branches and loop tests are
   nondeterministic (conditions are abstracted), so an [If] node has two
   outgoing Nop edges and a [While] node an entry edge into the body and
   an exit edge past it. *)

type action = Nop | Call of string | Reconfig of string

type edge = { src : int; dst : int; action : action }

type t = { entry : int; exit_ : int; nnodes : int; edges : edge list }

let action_to_string = function
  | Nop -> "-"
  | Call f -> f ^ "()"
  | Reconfig c -> "load(" ^ c ^ ")"

let build (program : Ast.program) =
  let counter = ref 0 in
  let fresh () =
    let n = !counter in
    incr counter;
    n
  in
  let edges = ref [] in
  let edge src dst action = edges := { src; dst; action } :: !edges in
  (* returns the exit node of the sequence started at [at] *)
  let rec seq at stmts = List.fold_left stmt at stmts
  and stmt at s =
    match s with
    | Ast.Call f ->
        let next = fresh () in
        edge at next (Call f);
        next
    | Ast.Reconfig c ->
        let next = fresh () in
        edge at next (Reconfig c);
        next
    | Ast.If (then_, else_) ->
        let join = fresh () in
        let t_entry = fresh () in
        edge at t_entry Nop;
        let t_exit = seq t_entry then_ in
        edge t_exit join Nop;
        let e_entry = fresh () in
        edge at e_entry Nop;
        let e_exit = seq e_entry else_ in
        edge e_exit join Nop;
        join
    | Ast.While body ->
        let b_entry = fresh () in
        edge at b_entry Nop;
        let b_exit = seq b_entry body in
        edge b_exit at Nop;
        let out = fresh () in
        edge at out Nop;
        out
  in
  let entry = fresh () in
  let exit_ = seq entry program in
  { entry; exit_; nnodes = !counter; edges = List.rev !edges }

let successors t node =
  List.filter (fun e -> e.src = node) t.edges

let pp fmt t =
  Fmt.pf fmt "cfg: %d nodes, entry %d, exit %d@." t.nnodes t.entry t.exit_;
  List.iter
    (fun e -> Fmt.pf fmt "  %d -> %d [%s]@." e.src e.dst (action_to_string e.action))
    t.edges
