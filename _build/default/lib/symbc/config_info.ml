(* The "configuration information" input of SymbC: which functions are
   implemented in the FPGA, and which configuration provides which
   function.  Functions not listed anywhere are plain software and are
   always available. *)

type t = {
  reconfig_procedure : string;  (* name/signature of the loader *)
  fpga_functions : string list;  (* functions that live in the FPGA *)
  configurations : (string * string list) list;
      (* configuration name -> functions present when it is loaded *)
}

let make ?(reconfig_procedure = "load") ~fpga_functions ~configurations () =
  List.iter
    (fun (c, fns) ->
      List.iter
        (fun f ->
          if not (List.mem f fpga_functions) then
            invalid_arg
              (Printf.sprintf
                 "Config_info: %s in configuration %s is not an FPGA function"
                 f c))
        fns)
    configurations;
  { reconfig_procedure; fpga_functions; configurations }

let is_fpga_function t f = List.mem f t.fpga_functions

let functions_of t config =
  match List.assoc_opt config t.configurations with
  | Some fns -> fns
  | None -> invalid_arg ("Config_info: unknown configuration " ^ config)

let has_configuration t config = List.mem_assoc config t.configurations

let provides t ~config f = List.mem f (functions_of t config)

let configuration_names t = List.map fst t.configurations

let pp fmt t =
  Fmt.pf fmt "reconfig procedure: %s@.FPGA functions: %a@."
    t.reconfig_procedure
    (Fmt.list ~sep:Fmt.comma Fmt.string)
    t.fpga_functions;
  List.iter
    (fun (c, fns) ->
      Fmt.pf fmt "  %s: {%a}@." c (Fmt.list ~sep:Fmt.comma Fmt.string) fns)
    t.configurations
