(* Mini-C abstract syntax for the instrumented application software.

   SymbC analyses the application's control flow with data abstracted
   away: conditions are nondeterministic, and the only relevant actions
   are calls to (possibly FPGA-resident) functions and calls to the
   reconfiguration procedure. *)

type stmt =
  | Call of string  (* invoke a function (HW resource or plain SW) *)
  | Reconfig of string  (* load the named FPGA configuration *)
  | If of stmt list * stmt list  (* nondeterministic branch *)
  | While of stmt list  (* nondeterministic loop *)

type program = stmt list

let call f = Call f
let reconfig c = Reconfig c
let if_ then_ else_ = If (then_, else_)
let while_ body = While body

let rec pp_stmt ?(indent = 0) fmt s =
  let pad = String.make indent ' ' in
  match s with
  | Call f -> Fmt.pf fmt "%s%s();@." pad f
  | Reconfig c -> Fmt.pf fmt "%sload(%s);@." pad c
  | If (t, e) ->
      Fmt.pf fmt "%sif (*) {@." pad;
      List.iter (pp_stmt ~indent:(indent + 2) fmt) t;
      if e <> [] then begin
        Fmt.pf fmt "%s} else {@." pad;
        List.iter (pp_stmt ~indent:(indent + 2) fmt) e
      end;
      Fmt.pf fmt "%s}@." pad
  | While body ->
      Fmt.pf fmt "%swhile (*) {@." pad;
      List.iter (pp_stmt ~indent:(indent + 2) fmt) body;
      Fmt.pf fmt "%s}@." pad

let pp fmt (p : program) = List.iter (pp_stmt fmt) p

(* All function and configuration names appearing in a program. *)
let rec names acc = function
  | Call f -> (`Call f) :: acc
  | Reconfig c -> (`Config c) :: acc
  | If (t, e) -> List.fold_left names (List.fold_left names acc t) e
  | While b -> List.fold_left names acc b

let called_functions p =
  List.fold_left names [] p
  |> List.filter_map (function `Call f -> Some f | `Config _ -> None)
  |> List.sort_uniq String.compare

let loaded_configs p =
  List.fold_left names [] p
  |> List.filter_map (function `Config c -> Some c | `Call _ -> None)
  |> List.sort_uniq String.compare
