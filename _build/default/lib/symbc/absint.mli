(** Abstract-interpretation engine for the consistency property — the
    technology the paper names for SymbC.

    Domain: powerset of FPGA states ordered by inclusion; worklist
    fixpoint over the CFG; joins at merge points.  For this property the
    powerset domain is exact, so the verdict always agrees with the
    product-reachability engine of {!Check} (the test suite verifies
    this); {!Check} additionally produces counterexample paths. *)

type node_invariant = { node : int; states : Check.fpga_state list }

type verdict =
  | Safe of { invariants : node_invariant list; calls_checked : int }
  | Unsafe of {
      failing_call : string;
      node : int;
      offending_states : Check.fpga_state list;
    }

val analyze : Config_info.t -> Ast.program -> verdict
(** Raises [Invalid_argument] on unknown configurations. *)

val agrees_with_check : Config_info.t -> Ast.program -> bool
(** Do the two engines reach the same verdict on this program? *)

val pp_verdict : Format.formatter -> verdict -> unit
