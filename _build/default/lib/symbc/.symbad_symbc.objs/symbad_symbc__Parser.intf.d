lib/symbc/parser.mli: Ast
