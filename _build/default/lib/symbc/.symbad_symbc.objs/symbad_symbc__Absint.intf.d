lib/symbc/absint.mli: Ast Check Config_info Format
