lib/symbc/config_info.mli: Format
