lib/symbc/parser.ml: Ast List Printf String
