lib/symbc/check.ml: Ast Cfg Config_info Fmt Hashtbl List Option Queue
