lib/symbc/cfg.mli: Ast Format
