lib/symbc/cfg.ml: Ast Fmt List
