lib/symbc/absint.ml: Array Ast Cfg Check Config_info Fmt List Queue Set String
