lib/symbc/check.mli: Ast Cfg Config_info Format
