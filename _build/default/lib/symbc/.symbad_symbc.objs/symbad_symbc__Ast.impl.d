lib/symbc/ast.ml: Fmt List String
