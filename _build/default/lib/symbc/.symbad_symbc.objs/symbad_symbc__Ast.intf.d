lib/symbc/ast.mli: Format
