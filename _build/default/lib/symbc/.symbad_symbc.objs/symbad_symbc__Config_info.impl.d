lib/symbc/config_info.ml: Fmt List Printf
