(** Concrete syntax for instrumented application code.

    {v
    program := stmt*
    stmt    := IDENT '(' ')' ';'                 function call
             | 'load' '(' IDENT ')' ';'          FPGA reconfiguration
             | 'if' '(' '*' ')' block ('else' block)?
             | 'while' '(' '*' ')' block
    block   := '{' stmt* '}'
    v}

    ['//'] comments run to end of line; conditions are written ['*']
    because SymbC abstracts data. *)

exception Parse_error of string

val parse : string -> Ast.program
(** Raises {!Parse_error} on malformed input. *)
