(** The "configuration information" input of SymbC: which functions live
    in the FPGA and which configuration provides which function.
    Unlisted functions are plain software, always available. *)

type t

val make :
  ?reconfig_procedure:string ->
  fpga_functions:string list ->
  configurations:(string * string list) list ->
  unit ->
  t
(** Raises if a configuration lists a function not in
    [fpga_functions]. *)

val is_fpga_function : t -> string -> bool
val functions_of : t -> string -> string list
(** Raises on unknown configurations. *)

val has_configuration : t -> string -> bool
val provides : t -> config:string -> string -> bool
val configuration_names : t -> string list
val pp : Format.formatter -> t -> unit
