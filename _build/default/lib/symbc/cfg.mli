(** Control-flow graphs of mini-C programs.  Edges carry the action
    performed; branches and loop tests are nondeterministic. *)

type action = Nop | Call of string | Reconfig of string

type edge = { src : int; dst : int; action : action }

type t = { entry : int; exit_ : int; nnodes : int; edges : edge list }

val action_to_string : action -> string
val build : Ast.program -> t
val successors : t -> int -> edge list
val pp : Format.formatter -> t -> unit
