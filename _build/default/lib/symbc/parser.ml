(* Concrete syntax for instrumented application code:

     program := stmt*
     stmt    := IDENT '(' ')' ';'                  function call
              | 'load' '(' IDENT ')' ';'           FPGA reconfiguration
              | 'if' '(' '*' ')' block ('else' block)?
              | 'while' '(' '*' ')' block
     block   := '{' stmt* '}'

   Comments run from '//' to end of line.  Conditions are written '*'
   because SymbC abstracts data: both branch directions are possible. *)

type token =
  | Ident of string
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Semi
  | Star
  | Kw_if
  | Kw_else
  | Kw_while
  | Kw_load

exception Parse_error of string

let tokenize text =
  let n = String.length text in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let is_ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_'
  in
  let rec go i =
    if i >= n then ()
    else
      match text.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | '/' when i + 1 < n && text.[i + 1] = '/' ->
          let rec skip j = if j < n && text.[j] <> '\n' then skip (j + 1) else j in
          go (skip i)
      | '(' -> emit Lparen; go (i + 1)
      | ')' -> emit Rparen; go (i + 1)
      | '{' -> emit Lbrace; go (i + 1)
      | '}' -> emit Rbrace; go (i + 1)
      | ';' -> emit Semi; go (i + 1)
      | '*' -> emit Star; go (i + 1)
      | c when is_ident_char c ->
          let rec scan j = if j < n && is_ident_char text.[j] then scan (j + 1) else j in
          let j = scan i in
          let word = String.sub text i (j - i) in
          emit
            (match word with
            | "if" -> Kw_if
            | "else" -> Kw_else
            | "while" -> Kw_while
            | "load" -> Kw_load
            | _ -> Ident word);
          go j
      | c -> raise (Parse_error (Printf.sprintf "unexpected character %c" c))
  in
  go 0;
  List.rev !tokens

let parse text =
  let tokens = ref (tokenize text) in
  let peek () = match !tokens with [] -> None | t :: _ -> Some t in
  let advance () =
    match !tokens with
    | [] -> raise (Parse_error "unexpected end of input")
    | t :: rest ->
        tokens := rest;
        t
  in
  let expect t what =
    let got = advance () in
    if got <> t then raise (Parse_error ("expected " ^ what))
  in
  let rec stmts stop =
    match peek () with
    | None -> if stop then raise (Parse_error "unexpected end of block") else []
    | Some Rbrace when stop -> []
    | Some _ when not stop && peek () = Some Rbrace ->
        raise (Parse_error "unexpected '}'")
    | Some _ ->
        let s = stmt () in
        s :: stmts stop
  and block () =
    expect Lbrace "'{'";
    let body = stmts true in
    expect Rbrace "'}'";
    body
  and stmt () =
    match advance () with
    | Kw_load ->
        expect Lparen "'('";
        let c =
          match advance () with
          | Ident c -> c
          | _ -> raise (Parse_error "expected configuration name")
        in
        expect Rparen "')'";
        expect Semi "';'";
        Ast.Reconfig c
    | Kw_if ->
        expect Lparen "'('";
        expect Star "'*'";
        expect Rparen "')'";
        let then_ = block () in
        let else_ =
          match peek () with
          | Some Kw_else ->
              ignore (advance ());
              block ()
          | _ -> []
        in
        Ast.If (then_, else_)
    | Kw_while ->
        expect Lparen "'('";
        expect Star "'*'";
        expect Rparen "')'";
        Ast.While (block ())
    | Ident f ->
        expect Lparen "'('";
        expect Rparen "')'";
        expect Semi "';'";
        Ast.Call f
    | Kw_else -> raise (Parse_error "'else' without 'if'")
    | Lparen | Rparen | Lbrace | Rbrace | Semi | Star ->
        raise (Parse_error "expected statement")
  in
  stmts false
