(** Mini-C abstract syntax for the instrumented application software.

    Data is abstracted away: conditions are nondeterministic and the
    relevant actions are function calls and reconfiguration calls. *)

type stmt =
  | Call of string  (** invoke a function (HW resource or plain SW) *)
  | Reconfig of string  (** load the named FPGA configuration *)
  | If of stmt list * stmt list  (** nondeterministic branch *)
  | While of stmt list  (** nondeterministic loop *)

type program = stmt list

val call : string -> stmt
val reconfig : string -> stmt
val if_ : stmt list -> stmt list -> stmt
val while_ : stmt list -> stmt

val pp_stmt : ?indent:int -> Format.formatter -> stmt -> unit
val pp : Format.formatter -> program -> unit

val called_functions : program -> string list
(** Sorted, deduplicated. *)

val loaded_configs : program -> string list
