(** The SymbC consistency check.

    Fundamental property: "each time the software requires a hardware
    resource of the reconfigurable part, this resource is actually
    available".  Exhaustive reachability on the product of the CFG with
    the finite FPGA state yields a per-program-point certificate or a
    shortest counterexample path. *)

type fpga_state = Unloaded | Loaded of string

val fpga_state_to_string : fpga_state -> string

type step = { action : Cfg.action; state_after : fpga_state }

type counterexample = {
  failing_call : string;
  state_at_call : fpga_state;
  path : step list;  (** actions from entry to the failing call *)
}

type certificate = {
  invariants : (int * fpga_state list) list;
      (** program point -> possible FPGA states *)
  calls_checked : int;
}

type verdict = Consistent of certificate | Inconsistent of counterexample

val call_ok : Config_info.t -> fpga_state -> string -> bool
(** Is one call safe in one FPGA state? *)

val check : Config_info.t -> Ast.program -> verdict
(** Raises [Invalid_argument] if the program loads an unknown
    configuration. *)

val pp_step : Format.formatter -> step -> unit
val pp_verdict : Format.formatter -> verdict -> unit
