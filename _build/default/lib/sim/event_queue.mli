(** Priority queue of timed events.

    Events with equal timestamps are delivered in insertion order, which
    makes same-time ("delta cycle") scheduling deterministic. *)

type 'a t

val create : dummy_payload:'a -> 'a t
(** [create ~dummy_payload] is an empty queue.  [dummy_payload] is only
    used to initialise the backing array and is never delivered. *)

val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> Time.t -> 'a -> unit
(** [push q time payload] schedules [payload] at [time]. *)

val peek_time : 'a t -> Time.t option
(** Timestamp of the earliest pending event, if any. *)

val pop : 'a t -> (Time.t * 'a) option
(** Remove and return the earliest pending event. *)
