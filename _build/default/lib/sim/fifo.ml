(* Bounded point-to-point FIFO channel with blocking semantics, the level-1
   communication primitive of the flow.  Occupancy statistics feed the LPV
   FIFO-dimensioning analysis at level 2. *)

type 'a t = {
  name : string;
  capacity : int; (* 0 = unbounded *)
  items : 'a Queue.t;
  mutable readers : (unit -> unit) list;
  mutable writers : (unit -> unit) list;
  mutable total_puts : int;
  mutable total_gets : int;
  mutable max_occupancy : int;
}

let create ?(capacity = 0) name =
  if capacity < 0 then invalid_arg "Fifo.create: negative capacity";
  {
    name;
    capacity;
    items = Queue.create ();
    readers = [];
    writers = [];
    total_puts = 0;
    total_gets = 0;
    max_occupancy = 0;
  }

let name f = f.name
let capacity f = f.capacity
let length f = Queue.length f.items
let is_full f = f.capacity > 0 && Queue.length f.items >= f.capacity

let wake_all waiters = List.iter (fun resume -> resume ()) waiters

let wake_readers f =
  let ws = f.readers in
  f.readers <- [];
  wake_all ws

let wake_writers f =
  let ws = f.writers in
  f.writers <- [];
  wake_all ws

let rec put f x =
  if is_full f then begin
    Process.suspend (fun resume -> f.writers <- resume :: f.writers);
    put f x
  end
  else begin
    Queue.push x f.items;
    f.total_puts <- f.total_puts + 1;
    if Queue.length f.items > f.max_occupancy then
      f.max_occupancy <- Queue.length f.items;
    wake_readers f
  end

let rec get f =
  match Queue.take_opt f.items with
  | Some x ->
      f.total_gets <- f.total_gets + 1;
      wake_writers f;
      x
  | None ->
      Process.suspend (fun resume -> f.readers <- resume :: f.readers);
      get f

let try_get f =
  match Queue.take_opt f.items with
  | Some x ->
      f.total_gets <- f.total_gets + 1;
      wake_writers f;
      Some x
  | None -> None

type occupancy = { puts : int; gets : int; max_occupancy : int }

let occupancy f =
  { puts = f.total_puts; gets = f.total_gets; max_occupancy = f.max_occupancy }
