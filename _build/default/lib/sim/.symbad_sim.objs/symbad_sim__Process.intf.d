lib/sim/process.mli: Kernel Time
