lib/sim/fifo.mli:
