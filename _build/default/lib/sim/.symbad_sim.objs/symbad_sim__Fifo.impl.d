lib/sim/fifo.ml: List Process Queue
