lib/sim/signal.ml: List Process
