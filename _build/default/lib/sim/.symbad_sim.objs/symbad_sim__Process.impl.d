lib/sim/process.ml: Effect Kernel Time
