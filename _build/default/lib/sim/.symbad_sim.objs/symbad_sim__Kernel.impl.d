lib/sim/kernel.ml: Effect Event_queue Fmt Sys Time
