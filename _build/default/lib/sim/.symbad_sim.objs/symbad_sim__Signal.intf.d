lib/sim/signal.mli:
