lib/sim/kernel.mli: Effect Format Time
