lib/sim/trace.ml: Fmt Hashtbl List String Time
