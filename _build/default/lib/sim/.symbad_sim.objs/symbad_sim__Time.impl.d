lib/sim/time.ml: Fmt Int Stdlib
