(* Binary min-heap of pending events, ordered by (time, insertion sequence)
   so that same-time events fire in FIFO order (delta-cycle determinism). *)

type 'a event = { time : Time.t; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a event array;
  mutable size : int;
  mutable next_seq : int;
  dummy : 'a event;
}

let create ~dummy_payload =
  let dummy = { time = Time.zero; seq = 0; payload = dummy_payload } in
  { heap = Array.make 64 dummy; size = 0; next_seq = 0; dummy }

let is_empty q = q.size = 0
let length q = q.size

let before a b =
  let c = Time.compare a.time b.time in
  if c <> 0 then c < 0 else a.seq < b.seq

let grow q =
  let heap = Array.make (2 * Array.length q.heap) q.dummy in
  Array.blit q.heap 0 heap 0 q.size;
  q.heap <- heap

let push q time payload =
  if q.size = Array.length q.heap then grow q;
  let ev = { time; seq = q.next_seq; payload } in
  q.next_seq <- q.next_seq + 1;
  (* sift up *)
  let rec up i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if before ev q.heap.(parent) then begin
        q.heap.(i) <- q.heap.(parent);
        up parent
      end
      else q.heap.(i) <- ev
    end
    else q.heap.(i) <- ev
  in
  q.size <- q.size + 1;
  up (q.size - 1)

let peek_time q = if q.size = 0 then None else Some q.heap.(0).time

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    let last = q.heap.(q.size) in
    q.heap.(q.size) <- q.dummy;
    if q.size > 0 then begin
      (* sift down *)
      let rec down i =
        let l = (2 * i) + 1 and r = (2 * i) + 2 in
        let smallest =
          if l < q.size && before q.heap.(l) last then l else i
        in
        let smallest =
          if r < q.size && before q.heap.(r)
               (if smallest = i then last else q.heap.(smallest))
          then r
          else smallest
        in
        if smallest <> i then begin
          q.heap.(i) <- q.heap.(smallest);
          down smallest
        end
        else q.heap.(i) <- last
      in
      down 0
    end;
    Some (top.time, top.payload)
  end
