(** Simulation trace recording and comparison.

    The flow verifies each refinement level by comparing its trace against
    the previous level's (level 1 against the C reference model).  Because
    refined models produce the same data at different times, comparison is
    per-stream and data-only: for every (source, label) pair the sequences
    of recorded values must match exactly. *)

type t

type entry = {
  time : Time.t;
  source : string;  (** emitting module *)
  label : string;  (** stream name within the module *)
  value : string;  (** printed datum *)
}

val create : unit -> t
val record : t -> time:Time.t -> source:string -> label:string -> string -> unit
val entries : t -> entry list
val length : t -> int

val stream_of : t -> source:string -> label:string -> string list
(** Values recorded for one stream, in emission order. *)

val sources : t -> (string * string) list
(** All (source, label) streams present, sorted. *)

type mismatch = {
  source : string;
  label : string;
  index : int;
  expected : string option;
  actual : string option;
}

val compare_data : reference:t -> actual:t -> mismatch list
(** Stream-by-stream data comparison; empty list means the models agree. *)

val equal_data : reference:t -> actual:t -> bool

val pp_mismatch : Format.formatter -> mismatch -> unit
val pp : Format.formatter -> t -> unit
