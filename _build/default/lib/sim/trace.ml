(* Trace files.  Level-1 verification in the paper is "match of results
   consists of trace files comparison"; this module records (time, source,
   label, value) tuples and implements that comparison. *)

type entry = { time : Time.t; source : string; label : string; value : string }

type t = { mutable entries : entry list; mutable count : int }

let create () = { entries = []; count = 0 }

let record t ~time ~source ~label value =
  t.entries <- { time; source; label; value } :: t.entries;
  t.count <- t.count + 1

let entries t = List.rev t.entries
let length t = t.count

(* Data-consistent comparison: the TL model "captures data consistently to
   the reference one", so we compare the *sequence of values* per
   (source, label) stream, ignoring timestamps (untimed vs timed models
   produce the same data at different times). *)
let stream_of t ~source ~label =
  List.filter_map
    (fun e ->
      if String.equal e.source source && String.equal e.label label then
        Some e.value
      else None)
    (entries t)

let sources t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let key = (e.source, e.label) in
      if not (Hashtbl.mem tbl key) then Hashtbl.add tbl key ())
    (entries t);
  Hashtbl.fold (fun k () acc -> k :: acc) tbl []
  |> List.sort compare

type mismatch = {
  source : string;
  label : string;
  index : int;
  expected : string option;
  actual : string option;
}

let compare_data ~reference ~actual =
  let keys =
    List.sort_uniq compare (sources reference @ sources actual)
  in
  let mismatches = ref [] in
  let compare_stream (source, label) =
    let ref_stream = stream_of reference ~source ~label in
    let act_stream = stream_of actual ~source ~label in
    let rec walk i = function
      | [], [] -> ()
      | e :: es, a :: as_ ->
          if not (String.equal e a) then
            mismatches :=
              { source; label; index = i; expected = Some e; actual = Some a }
              :: !mismatches;
          walk (i + 1) (es, as_)
      | e :: es, [] ->
          mismatches :=
            { source; label; index = i; expected = Some e; actual = None }
            :: !mismatches;
          walk (i + 1) (es, [])
      | [], a :: as_ ->
          mismatches :=
            { source; label; index = i; expected = None; actual = Some a }
            :: !mismatches;
          walk (i + 1) ([], as_)
    in
    walk 0 (ref_stream, act_stream)
  in
  List.iter compare_stream keys;
  List.rev !mismatches

let equal_data ~reference ~actual =
  match compare_data ~reference ~actual with [] -> true | _ :: _ -> false

let pp_mismatch fmt m =
  let pp_opt fmt = function
    | None -> Fmt.string fmt "<missing>"
    | Some v -> Fmt.string fmt v
  in
  Fmt.pf fmt "%s.%s[%d]: expected %a, got %a" m.source m.label m.index pp_opt
    m.expected pp_opt m.actual

let pp fmt t =
  List.iter
    (fun e ->
      Fmt.pf fmt "%a %s.%s = %s@." Time.pp e.time e.source e.label e.value)
    (entries t)
