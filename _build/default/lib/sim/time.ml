(* Simulation time, in integer nanoseconds.  63-bit native ints give about
   292 years of range, far beyond any run of the Symbad case studies. *)

type t = int

let zero = 0
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let s n = n * 1_000_000_000

let of_cycles ~period_ns cycles = cycles * period_ns

let to_ns t = t
let to_float_s t = float_of_int t /. 1e9

let add = ( + )
let sub a b = a - b
let compare = Int.compare
let equal = Int.equal
let ( <= ) (a : t) (b : t) = Stdlib.( <= ) a b
let ( < ) (a : t) (b : t) = Stdlib.( < ) a b
let max = Stdlib.max

let pp fmt t =
  if t = 0 then Fmt.string fmt "0s"
  else if t mod 1_000_000_000 = 0 then Fmt.pf fmt "%ds" (t / 1_000_000_000)
  else if t mod 1_000_000 = 0 then Fmt.pf fmt "%dms" (t / 1_000_000)
  else if t mod 1_000 = 0 then Fmt.pf fmt "%dus" (t / 1_000)
  else Fmt.pf fmt "%dns" t

let to_string t = Fmt.str "%a" pp t
