(* A shared variable with change notification, like an sc_signal.  Writes
   take effect immediately; waiters parked on [await_change] are released
   at the current time (a fresh delta) whenever the value actually
   changes. *)

type 'a t = {
  name : string;
  equal : 'a -> 'a -> bool;
  mutable value : 'a;
  mutable waiters : (unit -> unit) list;
  mutable writes : int;
  mutable changes : int;
}

let create ?(equal = ( = )) name init =
  { name; equal; value = init; waiters = []; writes = 0; changes = 0 }

let name s = s.name
let read s = s.value

let write s v =
  s.writes <- s.writes + 1;
  if not (s.equal s.value v) then begin
    s.value <- v;
    s.changes <- s.changes + 1;
    let ws = s.waiters in
    s.waiters <- [];
    List.iter (fun resume -> resume ()) ws
  end

let await_change s =
  Process.suspend (fun resume -> s.waiters <- resume :: s.waiters);
  s.value

let rec await s pred =
  if pred s.value then s.value
  else begin
    ignore (await_change s);
    await s pred
  end

let writes s = s.writes
let changes s = s.changes
