(** Simulation time.

    Time is measured in integer nanoseconds.  All Symbad models (untimed
    level-1 models, timed level-2/3 transaction-level models) share this
    clock; untimed models simply never advance it. *)

type t

val zero : t

val ns : int -> t
(** [ns n] is [n] nanoseconds. *)

val us : int -> t
(** [us n] is [n] microseconds. *)

val ms : int -> t
(** [ms n] is [n] milliseconds. *)

val s : int -> t
(** [s n] is [n] seconds. *)

val of_cycles : period_ns:int -> int -> t
(** [of_cycles ~period_ns c] is the duration of [c] clock cycles of a
    clock with period [period_ns]. *)

val to_ns : t -> int
val to_float_s : t -> float

val add : t -> t -> t
val sub : t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val max : t -> t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
