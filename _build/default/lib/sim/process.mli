(** Blocking primitives for simulation processes.

    All functions here must be called from inside a process body spawned
    with {!Kernel.spawn} (or {!spawn}); calling them elsewhere raises
    [Effect.Unhandled]. *)

val wait : Time.t -> unit
(** Block the calling process for the given simulated duration. *)

val wait_ns : int -> unit
val wait_cycles : period_ns:int -> int -> unit

val suspend : ((unit -> unit) -> unit) -> unit
(** [suspend register] parks the calling process.  [register] receives the
    resume function; whoever calls it wakes the process at the then-current
    simulated time.  Building block for channels and signals. *)

val now : unit -> Time.t
(** Current simulated time. *)

val kernel : unit -> Kernel.t
(** The kernel running the calling process. *)

val halt : unit -> 'a
(** Terminate the calling process immediately. *)

val spawn : ?name:string -> (unit -> unit) -> unit
(** Spawn a sibling process on the same kernel. *)
