(* Primitives available inside a simulation process (i.e. inside a function
   passed to [Kernel.spawn]).  They perform the kernel's effects. *)

let wait d = Effect.perform (Kernel.Wait d)
let wait_ns n = wait (Time.ns n)
let wait_cycles ~period_ns c = wait (Time.of_cycles ~period_ns c)
let suspend register = Effect.perform (Kernel.Suspend register)
let kernel () = Effect.perform Kernel.Get_kernel
let now () = Kernel.now (kernel ())
let halt () = raise Kernel.Halted

let spawn ?name body =
  let k = kernel () in
  Kernel.spawn k ?name body
