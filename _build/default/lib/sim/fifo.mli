(** Bounded blocking FIFO channels (point-to-point communication).

    A capacity of 0 means unbounded — the abstraction used by level-1
    untimed models.  Levels 2-3 use finite capacities; the recorded
    occupancy statistics are the empirical counterpart of the LPV FIFO
    dimensioning analysis. *)

type 'a t

val create : ?capacity:int -> string -> 'a t
(** [create ~capacity name].  [capacity = 0] (default) is unbounded. *)

val name : 'a t -> string
val capacity : 'a t -> int
val length : 'a t -> int
val is_full : 'a t -> bool

val put : 'a t -> 'a -> unit
(** Blocking write; parks the calling process while the channel is full. *)

val get : 'a t -> 'a
(** Blocking read; parks the calling process while the channel is empty. *)

val try_get : 'a t -> 'a option
(** Non-blocking read. *)

type occupancy = {
  puts : int;  (** total writes *)
  gets : int;  (** total reads *)
  max_occupancy : int;  (** high-water mark of the queue length *)
}

val occupancy : 'a t -> occupancy
