(** Shared variables with change notification (sc_signal analogue). *)

type 'a t

val create : ?equal:('a -> 'a -> bool) -> string -> 'a -> 'a t
(** [create ~equal name init].  [equal] (default structural equality)
    decides whether a write is a change. *)

val name : 'a t -> string

val read : 'a t -> 'a
(** Current value; never blocks. *)

val write : 'a t -> 'a -> unit
(** Set the value.  Wakes every process parked in {!await_change} iff the
    value changed according to [equal]. *)

val await_change : 'a t -> 'a
(** Park the calling process until the next change; returns the new value. *)

val await : 'a t -> ('a -> bool) -> 'a
(** [await s pred] returns as soon as [pred (read s)] holds, parking the
    process across changes until it does. *)

val writes : 'a t -> int
(** Total number of writes so far. *)

val changes : 'a t -> int
(** Number of writes that changed the value. *)
