(* Embedded-CPU model (ARM7TDMI class) for annotated execution.

   The TL flow never runs an instruction-set simulator: the SW partition
   executes natively and only its *timing* is modelled, by waiting the
   annotated number of CPU cycles per task firing.  The model accumulates
   load statistics. *)

module Proc = Symbad_sim.Process
module Time = Symbad_sim.Time

type t = {
  name : string;
  period_ns : int;
  bus_priority : int;
  mutable executed_cycles : int;
  mutable busy_ns : int;
  mutable firings : int;
}

let create ?(period_ns = 20) ?(bus_priority = 4) name =
  (* 20 ns = 50 MHz, a typical ARM7TDMI clock of the period *)
  if period_ns <= 0 then invalid_arg "Cpu.create: period";
  { name; period_ns; bus_priority; executed_cycles = 0; busy_ns = 0; firings = 0 }

let name c = c.name
let period_ns c = c.period_ns
let bus_priority c = c.bus_priority

let execute c ~cycles =
  if cycles < 0 then invalid_arg "Cpu.execute: negative cycles";
  Proc.wait (Time.ns (cycles * c.period_ns));
  c.executed_cycles <- c.executed_cycles + cycles;
  c.busy_ns <- c.busy_ns + (cycles * c.period_ns);
  c.firings <- c.firings + 1

type stats = { executed_cycles : int; busy_ns : int; firings : int }

let stats (c : t) =
  { executed_cycles = c.executed_cycles; busy_ns = c.busy_ns; firings = c.firings }

let pp_stats fmt s =
  Fmt.pf fmt "cycles=%d busy=%dns firings=%d" s.executed_cycles s.busy_ns
    s.firings
