(** Bus transactions. *)

type kind =
  | Read
  | Write
  | Bitstream  (** FPGA configuration download (level-3 traffic) *)

type t = {
  master : string;  (** initiating component *)
  target : string;  (** addressed component *)
  kind : kind;
  bytes : int;  (** payload size *)
}

val make : master:string -> target:string -> kind:kind -> bytes:int -> t
val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit
