(** Annotated embedded-CPU model.

    No instruction-set simulation: the SW partition runs natively and
    {!execute} accounts its annotated cycle cost against the simulated
    clock, exactly as the Vista level-2 flow does. *)

type t

val create : ?period_ns:int -> ?bus_priority:int -> string -> t
(** Default clock: 20 ns (50 MHz ARM7TDMI class). *)

val name : t -> string
val period_ns : t -> int
val bus_priority : t -> int

val execute : t -> cycles:int -> unit
(** Block the calling process for [cycles] CPU cycles and account them. *)

type stats = { executed_cycles : int; busy_ns : int; firings : int }

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
