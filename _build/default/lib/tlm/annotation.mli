(** Timing annotation: profile weights → cycles per mapping target.

    Level-1 execution profiles each task in abstract work units; the
    annotation model converts units into cycles depending on where the
    task is mapped (automatically for SW, as Vista does; with a designer
    cost model for HW and FPGA logic). *)

type target =
  | Sw  (** embedded CPU (ARM7TDMI class) *)
  | Hw  (** hardwired logic *)
  | Fpga  (** soft hardware inside the embedded FPGA *)

type t

val default : t
(** 12 CPU cycles, 1 hardwired cycle, 2 FPGA cycles per work unit. *)

val make :
  ?sw_cycles_per_unit:int ->
  ?hw_cycles_per_unit:int ->
  ?fpga_cycles_per_unit:int ->
  unit ->
  t

val cycles : t -> target:target -> weight:int -> int
(** Cycle cost of one firing with the given profile weight. *)

val target_to_string : target -> string

(** Execution profiles gathered at level 1. *)
module Profile : sig
  type entry = { task : string; firings : int; total_units : int }
  type t

  val create : unit -> t

  val record : t -> task:string -> units:int -> unit
  (** Account one firing of [task] that performed [units] work units. *)

  val units_per_firing : t -> string -> int
  (** Average units per firing (0 for unknown tasks). *)

  val entries : t -> entry list
  (** All entries, heaviest first. *)

  val ranking : t -> (string * int) list
  (** Tasks ranked by total work — the input to the HW/SW partition. *)

  val pp : Format.formatter -> t -> unit
end
