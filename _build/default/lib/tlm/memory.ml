(* Memory model: a bus-addressable byte store with an access latency.
   Used for the nonvolatile face DATABASE and for bitstream storage. *)

module Proc = Symbad_sim.Process
module Time = Symbad_sim.Time

type t = {
  name : string;
  data : Bytes.t;
  access_cycles : int;  (* additional latency per transaction *)
  mutable reads : int;
  mutable writes : int;
}

let create ?(access_cycles = 2) ~size name =
  if size <= 0 then invalid_arg "Memory.create: size";
  {
    name;
    data = Bytes.make size '\000';
    access_cycles;
    reads = 0;
    writes = 0;
  }

let name m = m.name
let size m = Bytes.length m.data

let check m addr len =
  if addr < 0 || len < 0 || addr + len > Bytes.length m.data then
    invalid_arg
      (Printf.sprintf "Memory.%s: [%d,%d) out of [0,%d)" m.name addr
         (addr + len) (Bytes.length m.data))

(* Direct (zero-time) accessors, used to preload contents. *)
let poke m ~addr bytes =
  check m addr (Bytes.length bytes);
  Bytes.blit bytes 0 m.data addr (Bytes.length bytes)

let peek m ~addr ~len =
  check m addr len;
  Bytes.sub m.data addr len

(* Bus-mediated accessors, used from simulation processes. *)
let read m ~bus ~master ~addr ~len =
  check m addr len;
  Bus.transfer bus
    (Transaction.make ~master ~target:m.name ~kind:Transaction.Read ~bytes:len);
  Proc.wait (Time.ns (m.access_cycles * Bus.period_ns bus));
  m.reads <- m.reads + 1;
  Bytes.sub m.data addr len

let write m ~bus ~master ~addr bytes =
  check m addr (Bytes.length bytes);
  Bus.transfer bus
    (Transaction.make ~master ~target:m.name ~kind:Transaction.Write
       ~bytes:(Bytes.length bytes));
  Proc.wait (Time.ns (m.access_cycles * Bus.period_ns bus));
  Bytes.blit bytes 0 m.data addr (Bytes.length bytes);
  m.writes <- m.writes + 1

let accesses m = (m.reads, m.writes)
