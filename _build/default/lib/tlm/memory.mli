(** Bus-addressable memory with access latency (models the nonvolatile
    face database and bitstream storage). *)

type t

val create : ?access_cycles:int -> size:int -> string -> t
val name : t -> string
val size : t -> int

val poke : t -> addr:int -> Bytes.t -> unit
(** Zero-time store, for preloading contents before simulation. *)

val peek : t -> addr:int -> len:int -> Bytes.t
(** Zero-time load, for inspecting contents after simulation. *)

val read : t -> bus:Bus.t -> master:string -> addr:int -> len:int -> Bytes.t
(** Bus-mediated load; blocks the calling process for the transfer plus
    the memory's access latency. *)

val write : t -> bus:Bus.t -> master:string -> addr:int -> Bytes.t -> unit
(** Bus-mediated store. *)

val accesses : t -> int * int
(** [(reads, writes)] performed through the bus. *)
