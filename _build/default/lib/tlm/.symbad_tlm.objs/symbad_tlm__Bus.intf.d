lib/tlm/bus.mli: Format Symbad_sim Transaction
