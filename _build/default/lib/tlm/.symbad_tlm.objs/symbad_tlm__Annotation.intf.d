lib/tlm/annotation.mli: Format
