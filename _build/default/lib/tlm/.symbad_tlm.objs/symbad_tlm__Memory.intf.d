lib/tlm/memory.mli: Bus Bytes
