lib/tlm/annotation.ml: Fmt Hashtbl List
