lib/tlm/cpu.mli: Format
