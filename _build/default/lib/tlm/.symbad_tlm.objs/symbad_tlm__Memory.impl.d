lib/tlm/memory.ml: Bus Bytes Printf Symbad_sim Transaction
