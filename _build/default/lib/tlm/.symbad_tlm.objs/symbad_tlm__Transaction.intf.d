lib/tlm/transaction.mli: Format
