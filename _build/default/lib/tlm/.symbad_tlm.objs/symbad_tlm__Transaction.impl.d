lib/tlm/transaction.ml: Fmt
