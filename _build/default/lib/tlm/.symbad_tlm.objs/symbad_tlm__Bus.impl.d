lib/tlm/bus.ml: Fmt Hashtbl List Stdlib String Symbad_sim Transaction
