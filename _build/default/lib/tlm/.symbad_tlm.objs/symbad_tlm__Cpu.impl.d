lib/tlm/cpu.ml: Fmt Symbad_sim
