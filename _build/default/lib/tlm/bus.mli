(** Shared-bus model (AMBA AHB style) at transaction level.

    Exactly one transaction owns the bus at a time; contending masters are
    granted in fixed-priority order (lower number wins), FIFO within a
    priority.  Transfer cost is
    [arbitration + setup + ceil(bytes/width)] bus cycles. *)

type t

val create :
  ?width_bytes:int ->
  ?period_ns:int ->
  ?arbitration_cycles:int ->
  ?setup_cycles:int ->
  string ->
  t
(** [create name] with defaults: 32-bit bus ([width_bytes = 4]),
    100 MHz ([period_ns = 10]), 1 arbitration and 1 setup cycle. *)

val name : t -> string
val period_ns : t -> int

val transfer_cycles : t -> int -> int
(** [transfer_cycles b bytes] is the cost of one transaction in bus
    cycles, without contention. *)

val transfer_time : t -> int -> Symbad_sim.Time.t

val transfer : ?priority:int -> t -> Transaction.t -> unit
(** Perform a transaction from inside a simulation process: waits for the
    bus grant, then for the transfer duration.  [priority] defaults to 8
    (lowest sensible); bitstream downloads typically use a high priority. *)

type master_stats = {
  mutable transactions : int;
  mutable bytes : int;
  mutable busy_ns : int;
  mutable wait_ns : int;  (** time spent waiting for grants *)
}

type report = {
  transactions : int;
  busy_ns : int;
  data_bytes : int;
  bitstream_bytes : int;  (** traffic due to FPGA reconfiguration *)
  utilisation : float;  (** busy time over the observed activity window *)
  per_master : (string * master_stats) list;
}

val report : t -> report
val pp_report : Format.formatter -> report -> unit
