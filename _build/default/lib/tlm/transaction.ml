(* Bus transactions at transaction level: the unit of communication once
   the level-1 point-to-point channels are mapped onto a shared bus. *)

type kind =
  | Read
  | Write
  | Bitstream  (* FPGA configuration download (level 3) *)

type t = {
  master : string;  (* initiating component *)
  target : string;  (* addressed component *)
  kind : kind;
  bytes : int;  (* payload size *)
}

let make ~master ~target ~kind ~bytes =
  if bytes < 0 then invalid_arg "Transaction.make: negative size";
  { master; target; kind; bytes }

let kind_to_string = function
  | Read -> "read"
  | Write -> "write"
  | Bitstream -> "bitstream"

let pp fmt t =
  Fmt.pf fmt "%s->%s %s %dB" t.master t.target (kind_to_string t.kind) t.bytes
