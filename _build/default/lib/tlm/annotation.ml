(* Timing annotation.

   Level-1 models are untimed; at level 2 the Vista flow annotates the SW
   partition automatically from a CPU model and profiling data, while HW
   timing is annotated manually from designer experience.  We reproduce
   both: a task's abstract profile weight (work units per firing, measured
   by level-1 execution profiling) is converted into cycles by a per-target
   cost model. *)

type target =
  | Sw  (* runs on the embedded CPU (ARM7TDMI class) *)
  | Hw  (* hardwired logic *)
  | Fpga  (* soft hardware inside the embedded FPGA *)

type t = {
  sw_cycles_per_unit : int;
      (* CPU cycles per work unit: instruction count x CPI *)
  hw_cycles_per_unit : int;  (* hardwired datapath, pipelined *)
  fpga_cycles_per_unit : int;  (* FPGA logic is slower than hard gates *)
}

let default = { sw_cycles_per_unit = 12; hw_cycles_per_unit = 1; fpga_cycles_per_unit = 2 }

let make ?(sw_cycles_per_unit = default.sw_cycles_per_unit)
    ?(hw_cycles_per_unit = default.hw_cycles_per_unit)
    ?(fpga_cycles_per_unit = default.fpga_cycles_per_unit) () =
  if sw_cycles_per_unit <= 0 || hw_cycles_per_unit <= 0 || fpga_cycles_per_unit <= 0
  then invalid_arg "Annotation.make: cost factors must be positive";
  { sw_cycles_per_unit; hw_cycles_per_unit; fpga_cycles_per_unit }

let cycles t ~target ~weight =
  if weight < 0 then invalid_arg "Annotation.cycles: negative weight";
  match target with
  | Sw -> weight * t.sw_cycles_per_unit
  | Hw -> weight * t.hw_cycles_per_unit
  | Fpga -> weight * t.fpga_cycles_per_unit

let target_to_string = function Sw -> "SW" | Hw -> "HW" | Fpga -> "FPGA"

(* A profile maps task names to measured work units per firing.  It is
   produced by level-1 execution (see Core.Level1) and consumed here. *)
module Profile = struct
  type entry = { task : string; firings : int; total_units : int }

  type nonrec t = (string, entry) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let record (p : t) ~task ~units =
    match Hashtbl.find_opt p task with
    | Some e ->
        Hashtbl.replace p task
          { e with firings = e.firings + 1; total_units = e.total_units + units }
    | None -> Hashtbl.add p task { task; firings = 1; total_units = units }

  let units_per_firing (p : t) task =
    match Hashtbl.find_opt p task with
    | None -> 0
    | Some e -> if e.firings = 0 then 0 else e.total_units / e.firings

  let entries (p : t) =
    Hashtbl.fold (fun _ e acc -> e :: acc) p []
    |> List.sort (fun a b -> compare b.total_units a.total_units)

  (* The "ranking of the most demanding tasks" that drives the designer's
     HW/SW partition. *)
  let ranking (p : t) = List.map (fun e -> (e.task, e.total_units)) (entries p)

  let pp fmt (p : t) =
    List.iter
      (fun e ->
        Fmt.pf fmt "%-12s firings=%-6d units=%d@." e.task e.firings
          e.total_units)
      (entries p)
end
