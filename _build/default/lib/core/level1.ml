(* Level 1: untimed functional simulation.

   One process per task, unbounded point-to-point FIFOs, no notion of
   time — the standard-SystemC style execution whose purpose is checking
   "that basic functionalities are actually realized by the system".
   Every produced token is recorded to the trace (matched later against
   the C reference model and against level 2), and every firing's work
   units feed the execution profile that drives the HW/SW partition. *)

module Sim = Symbad_sim
module Annotation = Symbad_tlm.Annotation

type result = {
  trace : Sim.Trace.t;
  profile : Annotation.Profile.t;
  kernel_stats : Sim.Kernel.stats;
  firings : (string * int) list;  (* per task *)
}

let run (graph : Task_graph.t) =
  let kernel = Sim.Kernel.create () in
  let trace = Sim.Trace.create () in
  let profile = Annotation.Profile.create () in
  let fifos : (string, Token.t Sim.Fifo.t) Hashtbl.t = Hashtbl.create 32 in
  let fifo_of channel =
    match Hashtbl.find_opt fifos channel with
    | Some f -> f
    | None ->
        let f = Sim.Fifo.create channel in
        Hashtbl.add fifos channel f;
        f
  in
  let firing_counts : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let record_tokens task channels tokens =
    List.iter2
      (fun channel token ->
        Sim.Trace.record trace
          ~time:(Sim.Kernel.now kernel)
          ~source:task ~label:channel (Token.digest token))
      channels tokens
  in
  let spawn_task (t : Task_graph.task) =
    Sim.Kernel.spawn kernel ~name:t.Task_graph.name (fun () ->
        let rec loop firing_index =
          let inputs =
            List.map (fun c -> Sim.Fifo.get (fifo_of c)) t.Task_graph.inputs
          in
          match t.Task_graph.fire ~firing_index inputs with
          | None -> ()
          | Some { Task_graph.outputs; work } ->
              Annotation.Profile.record profile ~task:t.Task_graph.name
                ~units:work;
              Hashtbl.replace firing_counts t.Task_graph.name (firing_index + 1);
              record_tokens t.Task_graph.name t.Task_graph.outputs outputs;
              List.iter2
                (fun c token -> Sim.Fifo.put (fifo_of c) token)
                t.Task_graph.outputs outputs;
              loop (firing_index + 1)
        in
        loop 0)
  in
  List.iter spawn_task graph.Task_graph.tasks;
  Sim.Kernel.run kernel;
  (* a non-source task still blocked on inputs simply never fired again;
     the kernel drains when sources end and all tokens are consumed *)
  {
    trace;
    profile;
    kernel_stats = Sim.Kernel.stats kernel;
    firings =
      List.map
        (fun (t : Task_graph.task) ->
          ( t.Task_graph.name,
            Option.value ~default:0
              (Hashtbl.find_opt firing_counts t.Task_graph.name) ))
        graph.Task_graph.tasks;
  }
