(* The case-study application: the Figure 2 face recognition system.

   Thirteen modules:
     CAMERA -> BAYER -> EROSION -> EDGE -> ELLIPSE
     EDGE/ELLIPSE -> CRTBORDER; EROSION/ELLIPSE -> CRTLINE -> CALCLINE
     CRTBORDER/CALCLINE/DATABASE -> CALCDIST -> DISTANCE -> ROOT -> WINNER

   The same compute functions as the C reference model
   (Symbad_image.Pipeline) run inside the task graph, which is what makes
   the level-by-level trace comparison exact. *)

module I = Symbad_image

type workload = {
  size : int;  (* frame side, pixels *)
  identities : int;  (* database population *)
  frames : (int * int) list;  (* (identity, pose) script for the camera *)
}

let default_workload =
  {
    size = 64;
    identities = 20;
    frames = List.init 8 (fun i -> (i * 2 mod 20, 1 + (i mod 4)));
  }

let smoke_workload =
  { size = 32; identities = 6; frames = [ (0, 1); (3, 2); (5, 1) ] }

(* Feature database, enrolled once from frontal poses (the "flash memory"
   contents). *)
let database w = I.Pipeline.enroll ~size:w.size ~identities:w.identities ()

let db_matrix db =
  Array.of_list
    (List.map (fun (e : I.Database.entry) -> e.I.Database.features)
       (I.Database.entries db))

(* Work-unit models per firing (profiling weights). *)
let work_of_stage w stage = List.assoc stage (I.Pipeline.stage_work ~size:w.size)

let graph w =
  let db = database w in
  let dbm = db_matrix db in
  let nposes = Array.length dbm in
  let size = w.size in
  let frames = Array.of_list w.frames in
  let t = Task_graph.transform in
  let camera =
    Task_graph.source ~name:"CAMERA" ~outputs:[ "cam_raw" ]
      ~work:(work_of_stage w "CAMERA") (fun i ->
        if i >= Array.length frames then None
        else begin
          let identity, pose = frames.(i) in
          Some [ Token.Frame (I.Pipeline.camera ~size ~identity ~pose ()) ]
        end)
  in
  let database_task =
    Task_graph.source ~name:"DATABASE" ~outputs:[ "db_out" ]
      ~work:(work_of_stage w "DATABASE") (fun i ->
        if i >= Array.length frames then None else Some [ Token.Mat dbm ])
  in
  let bayer =
    t ~name:"BAYER" ~inputs:[ "cam_raw" ] ~outputs:[ "gray" ]
      ~work:(fun _ -> work_of_stage w "BAYER")
      (function
        | [ raw ] -> [ Token.Frame (I.Bayer.demosaic (Token.to_frame raw)) ]
        | _ -> assert false)
  in
  let erosion =
    t ~name:"EROSION" ~inputs:[ "gray" ]
      ~outputs:[ "ero_edge"; "ero_line"; "ero_calc" ]
      ~work:(fun _ -> work_of_stage w "EROSION")
      (function
        | [ gray ] ->
            let e = I.Erosion.apply (Token.to_frame gray) in
            [ Token.Frame e; Token.Frame e; Token.Frame e ]
        | _ -> assert false)
  in
  let edge =
    t ~name:"EDGE" ~inputs:[ "ero_edge" ] ~outputs:[ "edges_ell"; "edges_bord" ]
      ~work:(fun _ -> work_of_stage w "EDGE")
      (function
        | [ ero ] ->
            let e = I.Edge.detect (Token.to_frame ero) in
            [ Token.Frame e; Token.Frame e ]
        | _ -> assert false)
  in
  let ellipse =
    t ~name:"ELLIPSE" ~inputs:[ "edges_ell" ]
      ~outputs:[ "ell_bord"; "ell_line"; "ell_calc" ]
      ~work:(fun _ -> work_of_stage w "ELLIPSE")
      (function
        | [ edges ] ->
            let edges = Token.to_frame edges in
            let e =
              match I.Ellipse.fit edges with
              | Some e -> e
              | None -> I.Pipeline.fallback_ellipse edges
            in
            [ Token.Shape e; Token.Shape e; Token.Shape e ]
        | _ -> assert false)
  in
  let crtborder =
    t ~name:"CRTBORDER" ~inputs:[ "edges_bord"; "ell_bord" ]
      ~outputs:[ "border_vec" ]
      ~work:(fun _ -> work_of_stage w "CRTBORDER")
      (function
        | [ edges; shape ] ->
            [
              Token.Vec
                (I.Border.profile ~bins:I.Pipeline.border_bins
                   (Token.to_frame edges) (Token.to_shape shape));
            ]
        | _ -> assert false)
  in
  let crtline =
    t ~name:"CRTLINE" ~inputs:[ "ero_line"; "ell_line" ] ~outputs:[ "scan" ]
      ~work:(fun _ -> work_of_stage w "CRTLINE")
      (function
        | [ ero; shape ] ->
            [
              Token.Scan
                (I.Line.create_lines ~n:I.Pipeline.line_count
                   (Token.to_frame ero) (Token.to_shape shape));
            ]
        | _ -> assert false)
  in
  let calcline =
    t ~name:"CALCLINE" ~inputs:[ "ero_calc"; "ell_calc"; "scan" ]
      ~outputs:[ "line_vec" ]
      ~work:(fun _ -> work_of_stage w "CALCLINE")
      (function
        | [ ero; shape; scan ] ->
            [
              Token.Vec
                (I.Line.calc_features (Token.to_frame ero)
                   (Token.to_shape shape) (Token.to_scan scan));
            ]
        | _ -> assert false)
  in
  let calcdist =
    t ~name:"CALCDIST" ~inputs:[ "border_vec"; "line_vec"; "db_out" ]
      ~outputs:[ "diffs" ]
      ~work:(fun _ -> work_of_stage w "CALCDIST")
      (function
        | [ border; line; db ] ->
            let probe =
              Array.append (Token.to_vec border) (Token.to_vec line)
            in
            let dbm = Token.to_mat db in
            let diffs =
              Array.map (fun entry -> Array.map2 ( - ) probe entry) dbm
            in
            [ Token.Mat diffs ]
        | _ -> assert false)
  in
  let distance =
    t ~name:"DISTANCE" ~inputs:[ "diffs" ] ~outputs:[ "dist2" ]
      ~work:(fun tokens ->
        match tokens with
        | [ Token.Mat m ] ->
            Array.length m * I.Distance.work ~dim:I.Pipeline.feature_dim
        | _ -> nposes * I.Distance.work ~dim:I.Pipeline.feature_dim)
      (function
        | [ diffs ] ->
            let m = Token.to_mat diffs in
            let zeros = Array.map (fun row -> Array.map (fun _ -> 0) row) m in
            [
              Token.Vec
                (Array.map2 (fun d z -> I.Distance.squared d z) m zeros);
            ]
        | _ -> assert false)
  in
  let root =
    t ~name:"ROOT" ~inputs:[ "dist2" ] ~outputs:[ "dist" ]
      ~work:(fun tokens ->
        match tokens with
        | [ Token.Vec v ] ->
            Array.fold_left (fun acc d -> acc + I.Root.work ~value:d) 0 v
        | _ -> nposes * I.Root.work ~value:65535)
      (function
        | [ d2 ] -> [ Token.Vec (Array.map I.Root.isqrt (Token.to_vec d2)) ]
        | _ -> assert false)
  in
  let winner =
    t ~name:"WINNER" ~inputs:[ "dist" ] ~outputs:[ "result" ]
      ~work:(fun _ -> work_of_stage w "WINNER")
      (function
        | [ d ] ->
            let dists =
              Array.to_list (Array.mapi (fun i x -> (i, x)) (Token.to_vec d))
            in
            [ Token.Verdict (I.Winner.select dists) ]
        | _ -> assert false)
  in
  Task_graph.make ~name:"face_recognition"
    ~tasks:
      [
        camera; database_task; bayer; erosion; edge; ellipse; crtborder;
        crtline; calcline; calcdist; distance; root; winner;
      ]
    ~sinks:[ "result" ]

(* The C reference model: same pipeline, direct function composition, no
   simulation kernel.  Produces a trace with the same stream labels as
   the level-1..3 models, recorded at time zero. *)
let reference_trace w =
  let db = database w in
  let dbm = db_matrix db in
  let trace = Symbad_sim.Trace.create () in
  let record source label token =
    Symbad_sim.Trace.record trace ~time:Symbad_sim.Time.zero ~source ~label
      (Token.digest token)
  in
  List.iter
    (fun (identity, pose) ->
      let raw = I.Pipeline.camera ~size:w.size ~identity ~pose () in
      record "CAMERA" "cam_raw" (Token.Frame raw);
      record "DATABASE" "db_out" (Token.Mat dbm);
      let s = I.Pipeline.extract raw in
      record "BAYER" "gray" (Token.Frame s.I.Pipeline.gray);
      List.iter
        (fun label -> record "EROSION" label (Token.Frame s.I.Pipeline.eroded))
        [ "ero_edge"; "ero_line"; "ero_calc" ];
      List.iter
        (fun label -> record "EDGE" label (Token.Frame s.I.Pipeline.edges))
        [ "edges_ell"; "edges_bord" ];
      List.iter
        (fun label -> record "ELLIPSE" label (Token.Shape s.I.Pipeline.ellipse))
        [ "ell_bord"; "ell_line"; "ell_calc" ];
      record "CRTBORDER" "border_vec" (Token.Vec s.I.Pipeline.border);
      record "CRTLINE" "scan" (Token.Scan s.I.Pipeline.lines);
      record "CALCLINE" "line_vec" (Token.Vec s.I.Pipeline.line_features);
      let probe = s.I.Pipeline.features in
      let diffs = Array.map (fun entry -> Array.map2 ( - ) probe entry) dbm in
      record "CALCDIST" "diffs" (Token.Mat diffs);
      let d2 =
        Array.map
          (fun d -> I.Distance.squared d (Array.map (fun _ -> 0) d))
          diffs
      in
      record "DISTANCE" "dist2" (Token.Vec d2);
      let d = Array.map I.Root.isqrt d2 in
      record "ROOT" "dist" (Token.Vec d);
      let verdict =
        I.Winner.select (Array.to_list (Array.mapi (fun i x -> (i, x)) d))
      in
      record "WINNER" "result" (Token.Verdict verdict))
    w.frames;
  trace

(* Sources and sinks model the environment and stay in SW. *)
let pinned_sw = [ "CAMERA"; "DATABASE"; "WINNER" ]

(* The mapping choices of the case study: the profile ranking picks the
   heavy image-processing front end, and designer knowledge adds the
   per-database-entry arithmetic (DISTANCE, ROOT) that the paper's team
   chose for hardware and later for the FPGA. *)
let level2_mapping ~profile g =
  let m = Mapping.of_ranking ~pinned_sw ~top_n:4 profile g in
  List.fold_left
    (fun m task -> Mapping.move m task Mapping.Hw)
    m [ "DISTANCE"; "ROOT" ]

(* "modules DISTANCE and ROOT be mapped both into the FPGA ... split into
   two different contexts, named config1 and config2" *)
let level3_refinement = [ ("DISTANCE", "config1"); ("ROOT", "config2") ]
