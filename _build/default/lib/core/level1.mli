(** Level 1: untimed functional simulation.

    One process per task, unbounded point-to-point FIFOs, no time — the
    execution that checks "basic functionalities are actually realized".
    Every produced token is traced (for comparison against the reference
    model and against level 2) and every firing's work units feed the
    execution profile that drives the HW/SW partition. *)

type result = {
  trace : Symbad_sim.Trace.t;
  profile : Symbad_tlm.Annotation.Profile.t;
  kernel_stats : Symbad_sim.Kernel.stats;
  firings : (string * int) list;  (** per task *)
}

val run : Task_graph.t -> result
