(** The level-1 system specification: a dataflow graph of communicating
    tasks.

    Semantics: homogeneous synchronous dataflow.  A firing consumes one
    token from each input channel and produces one on each output
    channel.  Sources (no inputs) produce from a generator until
    exhausted, bounding the execution.  Every channel has exactly one
    producer and either exactly one consumer or is a sink (read by the
    environment). *)

type firing = {
  outputs : Token.t list;  (** one per declared output channel *)
  work : int;  (** work units performed, for profiling *)
}

type task = {
  name : string;
  inputs : string list;
  outputs : string list;
  fire : firing_index:int -> Token.t list -> firing option;
      (** [None] from a source ends the run *)
}

type t = {
  name : string;
  tasks : task list;
  sinks : string list;  (** channels read by the environment *)
}

val task :
  name:string ->
  inputs:string list ->
  outputs:string list ->
  (firing_index:int -> Token.t list -> firing option) ->
  task

val transform :
  name:string ->
  inputs:string list ->
  outputs:string list ->
  work:(Token.t list -> int) ->
  (Token.t list -> Token.t list) ->
  task
(** A pure task: output tokens and work model both from the inputs. *)

val source :
  name:string ->
  outputs:string list ->
  work:int ->
  (int -> Token.t list option) ->
  task
(** [source ~work script] fires [script i] until it returns [None]. *)

val make : name:string -> tasks:task list -> sinks:string list -> t
(** Validates the graph; raises [Invalid_argument] on duplicate names,
    multiply-driven or dangling channels, or self-loops. *)

val find_task : t -> string -> task option
val channels : t -> string list
val producer_of : t -> string -> task option
val consumer_of : t -> string -> task option

val topological_order : t -> task list
(** Kahn's algorithm; raises on cyclic graphs (cyclic specifications go
    through the LPV deadlock analysis first). *)

val pp : Format.formatter -> t -> unit
