(** The case-study application: the Figure 2 face recognition system
    (thirteen modules, twenty identities under multiple poses) and its
    C reference model. *)

type workload = {
  size : int;  (** frame side, pixels *)
  identities : int;  (** database population *)
  frames : (int * int) list;  (** camera script: (identity, pose) *)
}

val default_workload : workload
(** 8 frames, 64-pixel frames, 20 identities. *)

val smoke_workload : workload
(** 3 frames, 32 pixels, 6 identities — for tests and micro-benches. *)

val database : workload -> Symbad_image.Database.t
val db_matrix : Symbad_image.Database.t -> int array array
val work_of_stage : workload -> string -> int

val graph : workload -> Task_graph.t
(** The Figure 2 task graph.  Deterministic in the workload. *)

val reference_trace : workload -> Symbad_sim.Trace.t
(** The C reference model's trace, with the same stream labels as the
    simulated models. *)

val pinned_sw : string list
(** Environment models (sources, final decision) that stay on the CPU. *)

val level2_mapping :
  profile:Symbad_tlm.Annotation.Profile.t -> Task_graph.t -> Mapping.t
(** Profile ranking + designer knowledge (DISTANCE and ROOT to HW). *)

val level3_refinement : (string * string) list
(** The paper's choice: DISTANCE in [config1], ROOT in [config2]. *)
