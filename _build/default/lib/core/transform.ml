(* The two structural transformations the exploration environment
   automates (Section 4.1):

   Transformation 1 turns the untimed level-1 description into the timed
   TL architecture: group the SW candidates into a single task on the CPU
   model, instantiate the connection resource (bus), connect everything.
   In this codebase the grouping and connection are performed by the
   level-2 runtime, so the transformation materialises as a [design]
   value carrying graph + mapping + platform parameters.

   Transformation 2 incrementally moves one module between the HW and SW
   partitions; profiling and annotation are re-run automatically by
   re-simulation. *)

type design = {
  graph : Task_graph.t;
  mapping : Mapping.t;
  config : Level2.config;
  profile : Symbad_tlm.Annotation.Profile.t;
}

(* Transformation 1: from the level-1 (all-SW, untimed) description to a
   timed TL design.  [hw] is the first HW candidate set. *)
let to_timed_tl ?(config = Level2.default_config) ~profile ~hw graph =
  let mapping =
    List.fold_left
      (fun m task -> Mapping.move m task Mapping.Hw)
      (Mapping.all_sw graph) hw
  in
  { graph; mapping; config; profile }

(* Transformation 2a/2b: move one module across the HW/SW boundary. *)
let move_to_hw design task =
  { design with mapping = Mapping.move design.mapping task Mapping.Hw }

let move_to_sw design task =
  { design with mapping = Mapping.move design.mapping task Mapping.Sw }

(* Re-evaluate after a transformation: re-simulate the timed model (this
   re-annotates automatically, because annotation is applied from the
   profile at simulation time). *)
let evaluate design = Level2.run ~config:design.config design.graph design.mapping

(* Convenience: compare the timing effect of moving [task] to HW. *)
let speedup_of_moving_to_hw design task =
  let before = (evaluate design).Level2.latency_ns in
  let after = (evaluate (move_to_hw design task)).Level2.latency_ns in
  float_of_int before /. float_of_int (max 1 after)
