(** Automated interface synthesis with generated checkers — the paper's
    "foreseeable options": "Automated interface synthesis is part of the
    foreseeable options, and also checkers for those interfaces could be
    automatically generated."

    From an interface specification this module synthesises the RTL
    wrapper converting the HW module's req/ack protocol to the
    transactional take/valid protocol (one-slot register or two-slot
    skid buffer), derives the checker properties from the same
    specification, and verifies the wrapper against them. *)

type spec = {
  interface_name : string;
  data_width : int;
  depth : int;  (** buffer slots: 1 or 2 *)
}

val make_spec :
  ?interface_name:string -> ?data_width:int -> ?depth:int -> unit -> spec
(** Defaults: "wrapper", 8 bits, depth 1. *)

val synthesize : spec -> Symbad_hdl.Netlist.t
(** Interface: inputs [req], [data], [take]; outputs [ack], [valid],
    [out].  Depth 2 supports flow-through (accept while draining). *)

val checkers : spec -> Symbad_hdl.Netlist.t -> Symbad_mc.Prop.t list
(** The interface-correctness properties derived from the spec:
    ack-implies-req, no data loss, valid/head coherence, data stability,
    capacity freeing, and occupancy conservation
    (count' = count + accepted - taken). *)

val synthesize_and_verify :
  ?max_depth:int ->
  spec ->
  Symbad_hdl.Netlist.t * Symbad_mc.Prop.t list * Symbad_mc.Engine.report list
(** The push-button flow: synthesise, generate checkers, model check. *)
