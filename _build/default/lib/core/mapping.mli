(** Architecture mapping: which resource executes each task. *)

type target = Sw | Hw | Fpga of string  (** FPGA context name *)

type t = (string * target) list

val target_of : t -> string -> target
(** Raises on unmapped tasks. *)

val annotation_target : target -> Symbad_tlm.Annotation.target

val sw_tasks : t -> string list
val hw_tasks : t -> string list
val fpga_tasks : t -> (string * string) list
(** [(task, context)] pairs. *)

val contexts : t -> string list
val is_sw : t -> string -> bool

val all_sw : Task_graph.t -> t
(** The level-1 view: everything in software. *)

val of_ranking :
  ?pinned_sw:string list ->
  top_n:int ->
  Symbad_tlm.Annotation.Profile.t ->
  Task_graph.t ->
  t
(** The designer's level-2 heuristic: the [top_n] most demanding tasks
    (by profile) go to hardware, except those pinned to SW. *)

val refine_to_fpga : t -> (string * string) list -> t
(** Level-3 refinement: move HW tasks into FPGA contexts; raises if a
    task is not currently HW. *)

val move : t -> string -> target -> t
(** The paper's transformation 2: move one module between partitions. *)

val target_to_string : target -> string
val pp : Format.formatter -> t -> unit
