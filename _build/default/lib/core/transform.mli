(** The two structural transformations the exploration environment
    automates (paper §4.1): the untimed-to-timed-TL step and the
    incremental HW/SW moves, with automatic re-annotation on
    re-evaluation. *)

type design = {
  graph : Task_graph.t;
  mapping : Mapping.t;
  config : Level2.config;
  profile : Symbad_tlm.Annotation.Profile.t;
}

val to_timed_tl :
  ?config:Level2.config ->
  profile:Symbad_tlm.Annotation.Profile.t ->
  hw:string list ->
  Task_graph.t ->
  design
(** Transformation 1: group the SW candidates onto the CPU, instantiate
    the bus, connect; [hw] is the first HW candidate set. *)

val move_to_hw : design -> string -> design
(** Transformation 2a. *)

val move_to_sw : design -> string -> design
(** Transformation 2b. *)

val evaluate : design -> Level2.result
(** Re-simulate; annotation is re-applied automatically. *)

val speedup_of_moving_to_hw : design -> string -> float
