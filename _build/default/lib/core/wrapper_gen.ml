(* Automated interface synthesis.

   "Automated interface synthesis is part of the foreseeable options,
   and also checkers for those interfaces could be automatically
   generated" — this module implements both options: given an interface
   specification, it synthesises the RTL wrapper that converts the HW
   module's req/ack protocol to the transactional side's take/valid
   protocol, and it derives the checker properties from the same
   specification, so the wrapper is verified against its own spec by
   construction. *)

type spec = {
  interface_name : string;
  data_width : int;
  depth : int;  (* buffer slots, 1 or 2 *)
}

let make_spec ?(interface_name = "wrapper") ?(data_width = 8) ?(depth = 1) () =
  if data_width < 1 || data_width > 32 then
    invalid_arg "Wrapper_gen.make_spec: data_width";
  if depth < 1 || depth > 2 then invalid_arg "Wrapper_gen.make_spec: depth";
  { interface_name; data_width; depth }

module Expr = Symbad_hdl.Expr
module Netlist = Symbad_hdl.Netlist
module Bitvec = Symbad_hdl.Bitvec
module Rtl_lib = Symbad_hdl.Rtl_lib

let tru = Expr.const ~width:1 1
let fls = Expr.const ~width:1 0

(* One-slot wrapper: a register [buf0] guarded by [full0]. *)
let synthesize_depth1 spec =
  let full = Expr.reg "full0" and buf = Expr.reg "buf0" in
  let req = Expr.input "req"
  and data = Expr.input "data"
  and take = Expr.input "take" in
  let accept = Expr.and_ req (Expr.not_ full) in
  let drain = Expr.and_ take full in
  Netlist.make ~name:spec.interface_name
    ~inputs:[ ("req", 1); ("data", spec.data_width); ("take", 1) ]
    ~registers:
      [
        { Netlist.name = "full0"; width = 1; init = Bitvec.zero ~width:1;
          next = Expr.mux accept tru (Expr.mux drain fls full) };
        { Netlist.name = "buf0"; width = spec.data_width;
          init = Bitvec.zero ~width:spec.data_width;
          next = Expr.mux accept data buf };
      ]
    ~outputs:[ ("ack", accept); ("valid", full); ("out", buf) ]

(* Two-slot skid buffer: slot 0 is the head (drained first), slot 1 the
   tail.  Accept while the tail is free; refill the head from the tail
   when the head drains. *)
let synthesize_depth2 spec =
  let full0 = Expr.reg "full0"
  and full1 = Expr.reg "full1"
  and buf0 = Expr.reg "buf0"
  and buf1 = Expr.reg "buf1" in
  let req = Expr.input "req"
  and data = Expr.input "data"
  and take = Expr.input "take" in
  let drain = Expr.and_ take full0 in
  (* where does an accepted word go?  head if the head is (becoming)
     free, else tail — and the tail must be free to accept *)
  let head_free_after = Expr.or_ (Expr.not_ full0) drain in
  let accept = Expr.and_ req (Expr.or_ (Expr.not_ full1) head_free_after) in
  let to_head = Expr.and_ accept (Expr.and_ head_free_after (Expr.not_ full1)) in
  let to_tail = Expr.and_ accept (Expr.not_ to_head) in
  let promote = Expr.and_ full1 head_free_after in
  let next_full0 =
    (* head occupied next cycle if: stays (full0 && !drain), promoted
       from tail, or directly accepted *)
    Expr.or_ (Expr.and_ full0 (Expr.not_ drain)) (Expr.or_ promote to_head)
  in
  let next_full1 = Expr.or_ to_tail (Expr.and_ full1 (Expr.not_ promote)) in
  let next_buf0 =
    Expr.mux to_head data (Expr.mux promote buf1 buf0)
  in
  let next_buf1 = Expr.mux to_tail data buf1 in
  Netlist.make ~name:spec.interface_name
    ~inputs:[ ("req", 1); ("data", spec.data_width); ("take", 1) ]
    ~registers:
      [
        { Netlist.name = "full0"; width = 1; init = Bitvec.zero ~width:1;
          next = next_full0 };
        { Netlist.name = "full1"; width = 1; init = Bitvec.zero ~width:1;
          next = next_full1 };
        { Netlist.name = "buf0"; width = spec.data_width;
          init = Bitvec.zero ~width:spec.data_width; next = next_buf0 };
        { Netlist.name = "buf1"; width = spec.data_width;
          init = Bitvec.zero ~width:spec.data_width; next = next_buf1 };
      ]
    ~outputs:[ ("ack", accept); ("valid", full0); ("out", buf0) ]

let synthesize spec =
  match spec.depth with
  | 1 -> synthesize_depth1 spec
  | 2 -> synthesize_depth2 spec
  | _ -> assert false

(* Checker generation: the interface-correctness properties derived
   mechanically from the specification.  They only mention the
   interface signals and the occupancy flags, so the same generator
   covers every synthesised wrapper. *)
let checkers spec nl =
  let module P = struct
    let make = fun n f -> Symbad_mc.Prop.make ~name:(spec.interface_name ^ "." ^ n) f
    let make_step = fun n f ->
      Symbad_mc.Prop.make_step ~name:(spec.interface_name ^ "." ^ n) f
  end in
  let out name =
    match Netlist.find_output nl name with
    | Some e -> e
    | None -> invalid_arg ("Wrapper_gen.checkers: missing output " ^ name)
  in
  let ack = out "ack" and valid = out "valid" in
  let full0 = Expr.reg "full0" in
  let occupied_slots =
    if spec.depth = 1 then [ Expr.reg "full0" ]
    else [ Expr.reg "full0"; Expr.reg "full1" ]
  in
  let all_full =
    List.fold_left Expr.and_ tru occupied_slots
  in
  let next = Symbad_mc.Prop.next in
  let implies = Symbad_mc.Prop.implies in
  [
    (* an acknowledgement needs a request *)
    P.make "ack_implies_req" (implies ack (Expr.input "req"));
    (* no acceptance when every slot is occupied, unless a word is being
       drained in the same cycle (flow-through): no data loss *)
    P.make "no_ack_when_full"
      (Expr.not_
         (Expr.and_ ack
            (Expr.and_ all_full
               (Expr.not_ (Expr.and_ (Expr.input "take") full0)))));
    (* the TL side only sees valid data when the head is occupied *)
    P.make "valid_iff_head" (Expr.eq valid full0);
    (* held head data is stable until taken *)
    P.make_step "held_data_stable"
      (implies
         (Expr.and_ full0 (Expr.not_ (Expr.input "take")))
         (Expr.eq (next (Expr.reg "buf0")) (Expr.reg "buf0")));
    (* taking the head frees capacity: after take && !req, not all full *)
    P.make_step "take_frees_capacity"
      (implies
         (Expr.and_ (Expr.and_ full0 (Expr.input "take"))
            (Expr.not_ (Expr.input "req")))
         (Expr.not_
            (List.fold_left Expr.and_ tru (List.map next occupied_slots))));
    (* occupancy never decreases by more than the one word taken and
       never increases by more than the one word accepted *)
    P.make_step "occupancy_conservation"
      (let width = 2 in
       let count =
         List.fold_left
           (fun acc f -> Expr.add acc (Rtl_lib.zext f ~from:1 ~to_:width))
           (Expr.const ~width 0) occupied_slots
       in
       let count' =
         List.fold_left
           (fun acc f -> Expr.add acc (Rtl_lib.zext (next f) ~from:1 ~to_:width))
           (Expr.const ~width 0) occupied_slots
       in
       let took = Expr.and_ (Expr.input "take") full0 in
       let expected =
         Expr.sub
           (Expr.add count (Rtl_lib.zext ack ~from:1 ~to_:width))
           (Rtl_lib.zext took ~from:1 ~to_:width)
       in
       Expr.eq count' expected);
  ]
  (* data-path checkers: where does an accepted word go, and how does it
     reach the head?  Derived from the occupancy flags per depth. *)
  @ (if spec.depth = 1 then
       [
         P.make_step "accepted_data_stored"
           (implies ack (Expr.eq (next (Expr.reg "buf0")) (Expr.input "data")));
       ]
     else begin
       let full1 = Expr.reg "full1" in
       let head_free_after =
         Expr.or_ (Expr.not_ full0) (Expr.and_ (Expr.input "take") full0)
       in
       let to_head = Expr.and_ ack (Expr.and_ head_free_after (Expr.not_ full1)) in
       let promote = Expr.and_ full1 head_free_after in
       [
         P.make_step "accepted_data_to_head"
           (implies to_head
              (Expr.eq (next (Expr.reg "buf0")) (Expr.input "data")));
         P.make_step "accepted_data_to_tail"
           (implies
              (Expr.and_ ack (Expr.not_ to_head))
              (Expr.eq (next (Expr.reg "buf1")) (Expr.input "data")));
         P.make_step "tail_promoted_to_head"
           (implies (Expr.and_ promote (Expr.not_ to_head))
              (Expr.eq (next (Expr.reg "buf0")) (Expr.reg "buf1")));
         P.make_step "held_tail_stable"
           (implies
              (Expr.and_ full1
                 (Expr.not_ (Expr.or_ promote (Expr.and_ ack (Expr.not_ to_head)))))
              (Expr.eq (next (Expr.reg "buf1")) (Expr.reg "buf1")));
       ]
     end)

(* Synthesise, generate the checkers, and verify them — the push-button
   flow of the foreseeable option. *)
let synthesize_and_verify ?(max_depth = 12) spec =
  let nl = synthesize spec in
  let props = checkers spec nl in
  let reports = Symbad_mc.Engine.check_all ~max_depth nl props in
  (nl, props, reports)
