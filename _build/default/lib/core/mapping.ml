(* Architecture mapping: which resource executes each task.

   Level 2 decides Sw vs Hw from the profiling ranking; level 3 refines
   some Hw tasks into FPGA contexts. *)

module Annotation = Symbad_tlm.Annotation

type target = Sw | Hw | Fpga of string  (* FPGA context name *)

type t = (string * target) list

let target_of m task =
  match List.assoc_opt task m with
  | Some t -> t
  | None -> invalid_arg ("Mapping: unmapped task " ^ task)

let annotation_target = function
  | Sw -> Annotation.Sw
  | Hw -> Annotation.Hw
  | Fpga _ -> Annotation.Fpga

let sw_tasks m = List.filter_map (fun (t, tg) -> if tg = Sw then Some t else None) m
let hw_tasks m = List.filter_map (fun (t, tg) -> if tg = Hw then Some t else None) m

let fpga_tasks m =
  List.filter_map
    (fun (t, tg) -> match tg with Fpga c -> Some (t, c) | Sw | Hw -> None)
    m

let contexts m =
  List.sort_uniq String.compare (List.map snd (fpga_tasks m))

let is_sw m task = target_of m task = Sw

let all_sw graph =
  List.map (fun (t : Task_graph.task) -> (t.Task_graph.name, Sw)) graph.Task_graph.tasks

(* The designer's level-2 heuristic: map the [top_n] most demanding tasks
   (from the level-1 execution profile) to hardware, except the ones
   pinned to SW (sources/sinks that model the environment). *)
let of_ranking ?(pinned_sw = []) ~top_n profile graph =
  let ranking = Annotation.Profile.ranking profile in
  let eligible =
    List.filter (fun (name, _) -> not (List.mem name pinned_sw)) ranking
  in
  let hw = List.filteri (fun i _ -> i < top_n) eligible |> List.map fst in
  List.map
    (fun (t : Task_graph.task) ->
      let name = t.Task_graph.name in
      (name, if List.mem name hw then Hw else Sw))
    graph.Task_graph.tasks

(* Level-3 refinement: move the given HW tasks into FPGA contexts. *)
let refine_to_fpga m assignments =
  List.map
    (fun (task, target) ->
      match List.assoc_opt task assignments with
      | Some ctx ->
          if target <> Hw then
            invalid_arg ("Mapping.refine_to_fpga: " ^ task ^ " is not HW");
          (task, Fpga ctx)
      | None -> (task, target))
    m

(* Transformation 2 of the paper: move one module between partitions. *)
let move m task target =
  if not (List.mem_assoc task m) then
    invalid_arg ("Mapping.move: unknown task " ^ task);
  List.map (fun (t, tg) -> if String.equal t task then (t, target) else (t, tg)) m

let target_to_string = function
  | Sw -> "SW"
  | Hw -> "HW"
  | Fpga c -> "FPGA/" ^ c

let pp fmt m =
  List.iter
    (fun (t, tg) -> Fmt.pf fmt "  %-10s -> %s@." t (target_to_string tg))
    m
