(* The level-1 system specification: a dataflow graph of communicating
   tasks (the "number of tasks, still in C, where abstract communication
   is introduced" of the traditional flow's stage II).

   Semantics: homogeneous synchronous dataflow.  A task fires by
   consuming one token from each input channel and producing one token on
   each output channel.  Source tasks (no inputs) produce from a
   generator until it is exhausted; that bounds the execution.  Every
   channel has exactly one producer; it has exactly one consumer unless
   it is listed as a sink (environment-consumed result stream). *)

type firing = {
  outputs : Token.t list;  (* one per declared output channel *)
  work : int;  (* work units performed, for profiling *)
}

type task = {
  name : string;
  inputs : string list;  (* channel names consumed *)
  outputs : string list;  (* channel names produced *)
  fire : firing_index:int -> Token.t list -> firing option;
      (* [None] from a source ends the run; non-sources must return
         [Some] (they fire only when tokens are available). *)
}

type t = {
  name : string;
  tasks : task list;
  sinks : string list;  (* channels read by the environment *)
}

let task ~name ~inputs ~outputs fire = { name; inputs; outputs; fire }

(* A simple task: pure function of its inputs, fixed work model. *)
let transform ~name ~inputs ~outputs ~work f =
  task ~name ~inputs ~outputs (fun ~firing_index:_ tokens ->
      let produced = f tokens in
      Some { outputs = produced; work = work tokens })

(* A source: produces [script i] until it returns None. *)
let source ~name ~outputs ~work script =
  task ~name ~inputs:[] ~outputs (fun ~firing_index tokens ->
      assert (tokens = []);
      match script firing_index with
      | None -> None
      | Some produced -> Some { outputs = produced; work })

let find_task g name =
  List.find_opt (fun (t : task) -> String.equal t.name name) g.tasks

let channels g =
  List.concat_map (fun (t : task) -> t.outputs) g.tasks |> List.sort_uniq compare

let producer_of g channel =
  List.find_opt (fun (t : task) -> List.mem channel t.outputs) g.tasks

let consumer_of g channel =
  List.find_opt (fun (t : task) -> List.mem channel t.inputs) g.tasks

(* Static checks: unique task names; every channel has exactly one
   producer; exactly one consumer or is a sink; every input channel is
   produced by someone; no task both produces and consumes a channel. *)
let validate g =
  let names = List.map (fun (t : task) -> t.name) g.tasks in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg ("Task_graph " ^ g.name ^ ": duplicate task name");
  let all_outputs = List.concat_map (fun (t : task) -> t.outputs) g.tasks in
  if List.length (List.sort_uniq compare all_outputs) <> List.length all_outputs
  then invalid_arg ("Task_graph " ^ g.name ^ ": channel has two producers");
  let all_inputs = List.concat_map (fun (t : task) -> t.inputs) g.tasks in
  if List.length (List.sort_uniq compare all_inputs) <> List.length all_inputs
  then invalid_arg ("Task_graph " ^ g.name ^ ": channel has two consumers");
  List.iter
    (fun c ->
      if not (List.mem c all_outputs) then
        invalid_arg ("Task_graph " ^ g.name ^ ": channel " ^ c ^ " never produced"))
    all_inputs;
  List.iter
    (fun c ->
      let consumed = List.mem c all_inputs in
      let sunk = List.mem c g.sinks in
      if consumed && sunk then
        invalid_arg ("Task_graph " ^ g.name ^ ": sink " ^ c ^ " also consumed");
      if (not consumed) && not sunk then
        invalid_arg ("Task_graph " ^ g.name ^ ": channel " ^ c ^ " never consumed"))
    all_outputs;
  List.iter
    (fun (t : task) ->
      List.iter
        (fun c ->
          if List.mem c t.outputs then
            invalid_arg ("Task_graph " ^ g.name ^ ": self-loop on " ^ c))
        t.inputs)
    g.tasks;
  g

let make ~name ~tasks ~sinks = validate { name; tasks; sinks }

(* Topological order of tasks (Kahn).  Fails on cyclic graphs — cyclic
   specifications must be handled by the LPV deadlock analysis first. *)
let topological_order g =
  let tasks = g.tasks in
  let depends_on (t : task) (u : task) =
    (* t consumes a channel produced by u *)
    List.exists (fun c -> List.mem c u.outputs) t.inputs
  in
  let remaining = ref tasks in
  let order = ref [] in
  let rec step () =
    match
      List.find_opt
        (fun (t : task) ->
          List.for_all
            (fun (u : task) -> t.name = u.name || not (depends_on t u))
            !remaining)
        !remaining
    with
    | None ->
        if !remaining = [] then ()
        else invalid_arg ("Task_graph " ^ g.name ^ ": cyclic dependencies")
    | Some t ->
        order := t :: !order;
        remaining :=
          List.filter (fun (u : task) -> u.name <> t.name) !remaining;
        if !remaining <> [] then step ()
  in
  if tasks <> [] then step ();
  List.rev !order

let pp fmt g =
  Fmt.pf fmt "graph %s (%d tasks)@." g.name (List.length g.tasks);
  List.iter
    (fun (t : task) ->
      Fmt.pf fmt "  %-10s [%a] -> [%a]@." t.name
        (Fmt.list ~sep:Fmt.comma Fmt.string)
        t.inputs
        (Fmt.list ~sep:Fmt.comma Fmt.string)
        t.outputs)
    g.tasks
