lib/core/level4.ml: Fmt List Symbad_hdl Symbad_mc Symbad_pcc Wrapper_gen
