lib/core/flow.mli: Face_app Format Mapping
