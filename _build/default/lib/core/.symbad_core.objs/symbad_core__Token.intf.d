lib/core/token.mli: Symbad_image
