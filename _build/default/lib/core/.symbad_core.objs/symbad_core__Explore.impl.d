lib/core/explore.ml: Fmt Level2 Level3 List Mapping Printf String Symbad_tlm
