lib/core/wrapper_gen.mli: Symbad_hdl Symbad_mc
