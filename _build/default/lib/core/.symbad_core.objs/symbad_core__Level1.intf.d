lib/core/level1.mli: Symbad_sim Symbad_tlm Task_graph
