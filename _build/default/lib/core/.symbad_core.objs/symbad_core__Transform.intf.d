lib/core/transform.mli: Level2 Mapping Symbad_tlm Task_graph
