lib/core/level3.mli: Level2 Mapping Symbad_fpga Symbad_sim Symbad_symbc Symbad_tlm Task_graph
