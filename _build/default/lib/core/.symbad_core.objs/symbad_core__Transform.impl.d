lib/core/transform.ml: Level2 List Mapping Symbad_tlm Task_graph
