lib/core/level2.ml: Hashtbl List Mapping Option Symbad_sim Symbad_tlm Task_graph Token
