lib/core/level3.ml: Hashtbl Level2 List Mapping Option String Symbad_fpga Symbad_sim Symbad_symbc Symbad_tlm Task_graph Token
