lib/core/mapping.mli: Format Symbad_tlm Task_graph
