lib/core/task_graph.ml: Fmt List String Token
