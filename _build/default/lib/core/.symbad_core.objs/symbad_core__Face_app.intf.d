lib/core/face_app.mli: Mapping Symbad_image Symbad_sim Symbad_tlm Task_graph
