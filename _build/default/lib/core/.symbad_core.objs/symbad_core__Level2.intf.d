lib/core/level2.mli: Mapping Symbad_sim Symbad_tlm Task_graph
