lib/core/mapping.ml: Fmt List String Symbad_tlm Task_graph
