lib/core/token.ml: Array Fmt Int64 Printf Symbad_image
