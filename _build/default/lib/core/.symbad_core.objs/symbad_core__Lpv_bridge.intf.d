lib/core/lpv_bridge.mli: Mapping Symbad_lpv Symbad_tlm Task_graph
