lib/core/wrapper_gen.ml: List Symbad_hdl Symbad_mc
