lib/core/face_app.ml: Array List Mapping Symbad_image Symbad_sim Task_graph Token
