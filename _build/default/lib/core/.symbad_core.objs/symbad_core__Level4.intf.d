lib/core/level4.mli: Format Symbad_hdl Symbad_mc Symbad_pcc
