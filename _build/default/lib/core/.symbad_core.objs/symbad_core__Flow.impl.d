lib/core/flow.ml: Buffer Face_app Fmt Level1 Level2 Level3 Level4 List Lpv_bridge Mapping Printf String Symbad_atpg Symbad_fpga Symbad_lpv Symbad_pcc Symbad_sim Symbad_symbc Symbad_tlm Sys
