lib/core/level1.ml: Hashtbl List Option Symbad_sim Symbad_tlm Task_graph Token
