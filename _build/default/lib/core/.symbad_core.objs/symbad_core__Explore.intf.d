lib/core/explore.mli: Format Level2 Level3 Mapping Symbad_tlm Task_graph
