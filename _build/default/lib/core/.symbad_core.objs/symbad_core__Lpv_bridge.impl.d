lib/core/lpv_bridge.ml: Hashtbl List Mapping Symbad_lpv Symbad_tlm Task_graph
