(* ROOT: non-restoring integer square root, bit by bit — the second
   module the case study maps into the FPGA.  The algorithm is written
   the way the hardware computes it (one result bit per iteration) so the
   behavioural model and the RTL datapath in Symbad_hdl.Rtl_lib agree
   step for step. *)

let isqrt n =
  if n < 0 then invalid_arg "Root.isqrt: negative";
  if n = 0 then 0
  else begin
    (* highest power of 4 <= n *)
    let bit = ref 1 in
    while !bit <= n / 4 do
      bit := !bit * 4
    done;
    let num = ref n and res = ref 0 in
    while !bit <> 0 do
      if !num >= !res + !bit then begin
        num := !num - (!res + !bit);
        res := (!res / 2) + !bit
      end
      else res := !res / 2;
      bit := !bit / 4
    done;
    !res
  end

(* Iteration count of the datapath: one per result bit. *)
let work ~value =
  let rec bits n acc = if n = 0 then acc else bits (n / 4) (acc + 1) in
  max 1 (bits (max value 1) 0)
