(* 8-bit grayscale images.  Pixels are ints clamped to [0, 255]; the type
   also carries binary masks (values 0/255) produced by edge detection. *)

type t = { width : int; height : int; pixels : int array }

let create ~width ~height =
  if width <= 0 || height <= 0 then invalid_arg "Image.create: dimensions";
  { width; height; pixels = Array.make (width * height) 0 }

let width img = img.width
let height img = img.height

let clamp v = if v < 0 then 0 else if v > 255 then 255 else v

let in_bounds img x y = x >= 0 && x < img.width && y >= 0 && y < img.height

let get img x y =
  if not (in_bounds img x y) then invalid_arg "Image.get: out of bounds";
  img.pixels.(y * img.width + x)

let get_clamped img x y =
  (* replicate border pixels, the usual convolution boundary policy *)
  let x = if x < 0 then 0 else if x >= img.width then img.width - 1 else x in
  let y = if y < 0 then 0 else if y >= img.height then img.height - 1 else y in
  img.pixels.(y * img.width + x)

let set img x y v =
  if not (in_bounds img x y) then invalid_arg "Image.set: out of bounds";
  img.pixels.(y * img.width + x) <- clamp v

let fill img v =
  let v = clamp v in
  Array.fill img.pixels 0 (Array.length img.pixels) v

let copy img = { img with pixels = Array.copy img.pixels }

let map f img =
  { img with pixels = Array.map (fun p -> clamp (f p)) img.pixels }

let equal a b =
  a.width = b.width && a.height = b.height && a.pixels = b.pixels

let mean img =
  let sum = Array.fold_left ( + ) 0 img.pixels in
  sum / Array.length img.pixels

let histogram img =
  let h = Array.make 256 0 in
  Array.iter (fun p -> h.(p) <- h.(p) + 1) img.pixels;
  h

let count_above img threshold =
  Array.fold_left (fun n p -> if p > threshold then n + 1 else n) 0 img.pixels

(* Compact digest used for trace comparison: dimensions, mean, and a
   64-bit FNV-1a hash of the pixel data. *)
let digest img =
  let fnv = ref 0xcbf29ce484222325L in
  Array.iter
    (fun p ->
      fnv := Int64.logxor !fnv (Int64.of_int p);
      fnv := Int64.mul !fnv 0x100000001b3L)
    img.pixels;
  Printf.sprintf "%dx%d/m%d/%Lx" img.width img.height (mean img) !fnv

let pp fmt img =
  Fmt.pf fmt "<image %dx%d mean=%d>" img.width img.height (mean img)
