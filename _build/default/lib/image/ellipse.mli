(** Moments-based ellipse fitting on binary edge maps.

    The head contour dominates a face's edge map; the first and second
    moments of the edge-pixel cloud localise the face independently of
    pose translation and scale. *)

type t = {
  cx : float;
  cy : float;
  rx : float;  (** half-axis along x *)
  ry : float;  (** half-axis along y *)
  support : int;  (** edge pixels used by the fit *)
}

val fit : ?min_support:int -> Image.t -> t option
(** [None] when fewer than [min_support] (default 16) edge pixels. *)

val digest : t -> string
(** Quantised digest for trace comparison. *)

val pp : Format.formatter -> t -> unit
val work : width:int -> height:int -> int
