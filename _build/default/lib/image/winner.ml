(* WINNER: select the database entry with the smallest distance, with a
   rejection threshold for unknown faces. *)

type verdict =
  | Match of { identity : int; distance : int }
  | Unknown of { best_identity : int; distance : int }

let select ?(reject_above = max_int) distances =
  (* [distances] : (identity, distance) list, non-empty *)
  match distances with
  | [] -> invalid_arg "Winner.select: no candidates"
  | first :: rest ->
      let best =
        List.fold_left
          (fun ((_, bd) as acc) ((_, d) as cand) ->
            if d < bd then cand else acc)
          first rest
      in
      let identity, distance = best in
      if distance <= reject_above then Match { identity; distance }
      else Unknown { best_identity = identity; distance }

let verdict_identity = function
  | Match { identity; _ } -> Some identity
  | Unknown _ -> None

let pp fmt = function
  | Match { identity; distance } ->
      Fmt.pf fmt "match id=%d d=%d" identity distance
  | Unknown { best_identity; distance } ->
      Fmt.pf fmt "unknown (closest id=%d d=%d)" best_identity distance

let work ~candidates = candidates
