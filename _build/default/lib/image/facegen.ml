(* Synthetic face generator — the stand-in for the low-resolution CMOS
   camera and its human subjects.

   An identity is a deterministic set of facial geometry parameters drawn
   from the identity number; a pose perturbs that geometry (translation,
   scale, brightness, sensor noise).  Faces are rendered as anti-aliased
   grayscale ellipses and bars, which gives the downstream pipeline
   (erosion, edge detection, ellipse fit, border/line features) realistic
   structure to work on. *)

type identity = {
  id : int;
  face_rx : float;  (* face half-axes, fraction of image *)
  face_ry : float;
  eye_dx : float;  (* eye offset from centre *)
  eye_dy : float;
  eye_r : float;
  mouth_w : float;
  mouth_y : float;
  nose_len : float;
  brow_drop : float;  (* brow vertical position *)
  skin : int;  (* base gray level of the face *)
}

type pose = {
  pose_id : int;
  dx : float;  (* translation, fraction of image *)
  dy : float;
  scale : float;
  brightness : int;
  noise_amp : float;
}

let identity id =
  let rng = Rng.create ((id * 2654435761) + 1) in
  let range lo hi = lo +. (Rng.float rng *. (hi -. lo)) in
  {
    id;
    face_rx = range 0.28 0.38;
    face_ry = range 0.36 0.46;
    eye_dx = range 0.10 0.16;
    eye_dy = range 0.08 0.14;
    eye_r = range 0.025 0.05;
    mouth_w = range 0.10 0.20;
    mouth_y = range 0.16 0.24;
    nose_len = range 0.08 0.14;
    brow_drop = range 0.14 0.20;
    skin = 150 + Rng.int rng 60;
  }

let frontal_pose = {
  pose_id = 0;
  dx = 0.;
  dy = 0.;
  scale = 1.;
  brightness = 0;
  noise_amp = 0.;
}

let pose pose_id =
  if pose_id = 0 then frontal_pose
  else begin
    let rng = Rng.create ((pose_id * 40503) + 7) in
    let range lo hi = lo +. (Rng.float rng *. (hi -. lo)) in
    {
      pose_id;
      dx = range (-0.05) 0.05;
      dy = range (-0.05) 0.05;
      scale = range 0.9 1.1;
      brightness = Rng.int rng 30 - 15;
      noise_amp = range 2.0 6.0;
    }
  end

(* Smooth-edged ellipse: full intensity inside, linear falloff over about
   one pixel at the rim. *)
let draw_ellipse img ~cx ~cy ~rx ~ry ~level =
  let w = Image.width img and h = Image.height img in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let nx = (float_of_int x -. cx) /. rx in
      let ny = (float_of_int y -. cy) /. ry in
      let d = (nx *. nx) +. (ny *. ny) in
      if d <= 1.0 then Image.set img x y level
      else if d <= 1.15 then begin
        let blend = (1.15 -. d) /. 0.15 in
        let bg = Image.get img x y in
        let v =
          int_of_float
            ((blend *. float_of_int level) +. ((1. -. blend) *. float_of_int bg))
        in
        Image.set img x y v
      end
    done
  done

let draw_hbar img ~cx ~cy ~half_w ~half_h ~level =
  let x0 = int_of_float (cx -. half_w) and x1 = int_of_float (cx +. half_w) in
  let y0 = int_of_float (cy -. half_h) and y1 = int_of_float (cy +. half_h) in
  for y = max 0 y0 to min (Image.height img - 1) y1 do
    for x = max 0 x0 to min (Image.width img - 1) x1 do
      Image.set img x y level
    done
  done

let render ?(size = 64) ident pose =
  let img = Image.create ~width:size ~height:size in
  let s = float_of_int size in
  (* background: mild vertical gradient, like an indoor scene *)
  for y = 0 to size - 1 do
    for x = 0 to size - 1 do
      Image.set img x y (40 + (y * 20 / size))
    done
  done;
  let cx = (0.5 +. pose.dx) *. s and cy = (0.5 +. pose.dy) *. s in
  let sc = pose.scale *. s in
  let skin = Image.clamp (ident.skin + pose.brightness) in
  (* head *)
  draw_ellipse img ~cx ~cy ~rx:(ident.face_rx *. sc) ~ry:(ident.face_ry *. sc)
    ~level:skin;
  (* eyes *)
  let eye_y = cy -. (ident.eye_dy *. sc) in
  let eye_off = ident.eye_dx *. sc in
  let eye_r = ident.eye_r *. sc in
  draw_ellipse img ~cx:(cx -. eye_off) ~cy:eye_y ~rx:eye_r ~ry:eye_r ~level:30;
  draw_ellipse img ~cx:(cx +. eye_off) ~cy:eye_y ~rx:eye_r ~ry:eye_r ~level:30;
  (* brows *)
  let brow_y = cy -. (ident.brow_drop *. sc) in
  draw_hbar img ~cx:(cx -. eye_off) ~cy:brow_y ~half_w:(eye_r *. 1.4)
    ~half_h:1.0 ~level:50;
  draw_hbar img ~cx:(cx +. eye_off) ~cy:brow_y ~half_w:(eye_r *. 1.4)
    ~half_h:1.0 ~level:50;
  (* nose *)
  draw_hbar img ~cx ~cy:(cy +. (ident.nose_len *. sc *. 0.5))
    ~half_w:1.0 ~half_h:(ident.nose_len *. sc *. 0.5)
    ~level:(Image.clamp (skin - 40));
  (* mouth *)
  draw_hbar img ~cx ~cy:(cy +. (ident.mouth_y *. sc))
    ~half_w:(ident.mouth_w *. sc) ~half_h:1.5 ~level:60;
  (* sensor noise *)
  if pose.noise_amp > 0. then begin
    let rng = Rng.create ((ident.id * 1009) + (pose.pose_id * 13) + 3) in
    for y = 0 to size - 1 do
      for x = 0 to size - 1 do
        let n = int_of_float (Rng.noise rng *. pose.noise_amp) in
        Image.set img x y (Image.get img x y + n)
      done
    done
  end;
  img

let frame ?(size = 64) ~identity:id ~pose:p () = render ~size (identity id) (pose p)
