(** ROOT: integer square root, computed bit by bit exactly as the RTL
    datapath does (see [Symbad_hdl.Rtl_lib.root_datapath]). *)

val isqrt : int -> int
(** Largest [r] with [r * r <= n]; raises on negative input. *)

val work : value:int -> int
(** Iteration count of the hardware algorithm for this operand. *)
