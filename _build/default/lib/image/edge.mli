(** Sobel edge detection. *)

val sobel_at : Image.t -> int -> int -> int
(** |gx| + |gy| at one pixel (unscaled). *)

val magnitude : Image.t -> Image.t
(** Gradient-magnitude image (scaled to pixel range). *)

val detect : ?threshold:int -> Image.t -> Image.t
(** Binary edge map: 255 where the scaled magnitude exceeds
    [threshold] (default 40), 0 elsewhere. *)

val work : width:int -> height:int -> int
