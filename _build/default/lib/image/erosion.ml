(* Morphological erosion (3x3 minimum filter): the denoising stage that
   follows demosaicing in the case-study pipeline.  Erosion suppresses
   isolated bright sensor noise before gradient computation. *)

let apply ?(radius = 1) img =
  if radius < 1 then invalid_arg "Erosion.apply: radius";
  let w = Image.width img and h = Image.height img in
  let out = Image.create ~width:w ~height:h in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let m = ref 255 in
      for dy = -radius to radius do
        for dx = -radius to radius do
          let v = Image.get_clamped img (x + dx) (y + dy) in
          if v < !m then m := v
        done
      done;
      Image.set out x y !m
    done
  done;
  out

(* Dual operator, used by tests to check the morphological laws. *)
let dilate ?(radius = 1) img =
  if radius < 1 then invalid_arg "Erosion.dilate: radius";
  let w = Image.width img and h = Image.height img in
  let out = Image.create ~width:w ~height:h in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let m = ref 0 in
      for dy = -radius to radius do
        for dx = -radius to radius do
          let v = Image.get_clamped img (x + dx) (y + dy) in
          if v > !m then m := v
        done
      done;
      Image.set out x y !m
    done
  done;
  out

let work ~width ~height = width * height * 9
