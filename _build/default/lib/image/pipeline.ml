(* The C reference model: the full recognition pipeline of Figure 2 as a
   plain composition of functions.  The level-1 SystemC-style model is
   checked against the traces this produces, and every later level against
   its predecessor.

   Dataflow (stage names as in the paper's Figure 2):

     CAMERA -> BAYER -> EROSION -> EDGE -> ELLIPSE -+-> CRTBORDER ---+
                                                    +-> CRTLINE -> CALCLINE
     DATABASE --------------------------------+          |          |
                                              v          v          v
                                            CALCDIST./DISTANCE -> ROOT -> WINNER
*)

let border_bins = 16
let line_count = 8
let feature_dim = border_bins + (2 * line_count)

type stage_outputs = {
  raw : Image.t;  (* camera (Bayer mosaic) *)
  gray : Image.t;  (* bayer *)
  eroded : Image.t;  (* erosion *)
  edges : Image.t;  (* edge *)
  ellipse : Ellipse.t;  (* ellipse (fallback centre if fit fails) *)
  border : int array;  (* crtborder *)
  lines : Line.scan;  (* crtline *)
  line_features : int array;  (* calcline *)
  features : int array;  (* concatenated signature *)
}

let fallback_ellipse img =
  let w = float_of_int (Image.width img) and h = float_of_int (Image.height img)
  in
  {
    Ellipse.cx = w /. 2.;
    cy = h /. 2.;
    rx = w /. 3.;
    ry = h /. 2.5;
    support = 0;
  }

let camera ?(size = 64) ~identity ~pose () =
  Bayer.mosaic (Facegen.frame ~size ~identity ~pose ())

let extract raw =
  let gray = Bayer.demosaic raw in
  let eroded = Erosion.apply gray in
  let edges = Edge.detect eroded in
  let ellipse =
    match Ellipse.fit edges with
    | Some e -> e
    | None -> fallback_ellipse edges
  in
  let border = Border.profile ~bins:border_bins edges ellipse in
  let lines = Line.create_lines ~n:line_count eroded ellipse in
  let line_features = Line.calc_features eroded ellipse lines in
  let features = Array.append border line_features in
  { raw; gray; eroded; edges; ellipse; border; lines; line_features; features }

let features_of_frame raw = (extract raw).features

(* CALCDIST / DISTANCE / ROOT: distance of a probe signature to every
   database entry. *)
let distances db features =
  List.map
    (fun (e : Database.entry) ->
      let d2 = Distance.squared features e.Database.features in
      (e.Database.identity, Root.isqrt d2))
    (Database.entries db)

let recognize ?reject_above db raw =
  Winner.select ?reject_above (distances db (features_of_frame raw))

(* Enrollment: the database of [identities] identities, each enrolled from
   its frontal pose (pose 0). *)
let enroll ?(size = 64) ~identities () =
  let entry identity =
    let raw = camera ~size ~identity ~pose:0 () in
    { Database.identity; features = features_of_frame raw }
  in
  Database.create ~dim:feature_dim (List.init identities entry)

(* Per-stage work units for one frame, feeding the profiling/annotation
   machinery.  Indexed by the Figure 2 module names. *)
let stage_work ~size =
  let width = size and height = size in
  [
    ("CAMERA", width * height);
    ("BAYER", Bayer.work ~width ~height);
    ("EROSION", Erosion.work ~width ~height);
    ("EDGE", Edge.work ~width ~height);
    ("ELLIPSE", Ellipse.work ~width ~height);
    ("CRTBORDER", Border.work ~width ~height ~bins:border_bins);
    ("CRTLINE", line_count * 4);
    ("CALCLINE", Line.work ~width ~height ~n:line_count);
    ("CALCDIST", feature_dim);
    ("DISTANCE", Distance.work ~dim:feature_dim);
    ("ROOT", Root.work ~value:65535);
    ("WINNER", Winner.work ~candidates:20);
    ("DATABASE", feature_dim);
  ]
