(** 8-bit grayscale images.

    Pixels are ints clamped to [0, 255].  Binary masks (edge maps) use
    the values 0 and 255. *)

type t

val create : width:int -> height:int -> t
(** A black image.  Raises [Invalid_argument] on non-positive sizes. *)

val width : t -> int
val height : t -> int

val clamp : int -> int
(** Clamp a value to the pixel range [0, 255]. *)

val get : t -> int -> int -> int
(** [get img x y]; raises [Invalid_argument] out of bounds. *)

val get_clamped : t -> int -> int -> int
(** Like {!get} but replicating border pixels outside the image — the
    convolution boundary policy. *)

val set : t -> int -> int -> int -> unit
(** [set img x y v] stores [clamp v]. *)

val fill : t -> int -> unit
val copy : t -> t

val map : (int -> int) -> t -> t
(** Pointwise transform (result clamped). *)

val equal : t -> t -> bool

val mean : t -> int
val histogram : t -> int array
(** 256 bins. *)

val count_above : t -> int -> int
(** Number of pixels strictly above a threshold. *)

val digest : t -> string
(** Compact content digest (dimensions, mean, FNV-1a hash), used for
    trace comparison between refinement levels. *)

val pp : Format.formatter -> t -> unit
