(** DISTANCE: squared Euclidean distance between feature vectors — the
    computational hot spot mapped into the FPGA by the case study. *)

val squared : int array -> int array -> int
(** Sum of squared component differences; raises on length mismatch. *)

val work : dim:int -> int
(** One multiply-accumulate per component. *)
