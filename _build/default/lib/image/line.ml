(* Line features (CRTLINE / CALCLINE).

   CRTLINE selects scan lines across the face box implied by the fitted
   ellipse; CALCLINE integrates the image along each of them.  Horizontal
   scan lines cross the eyes, brows and mouth at identity-dependent
   heights, so the profile of line sums is a cheap appearance signature
   complementary to the contour signature of {!Border}. *)

type scan = { rows : int array; cols : int array }

(* CRTLINE: choose [n] rows and [n] cols uniformly inside the ellipse's
   bounding box (clipped to the image). *)
let create_lines ?(n = 8) img (e : Ellipse.t) =
  if n <= 0 then invalid_arg "Line.create_lines: n";
  let w = Image.width img and h = Image.height img in
  let clip lo hi v = if v < lo then lo else if v > hi then hi else v in
  let y0 = clip 0 (h - 1) (int_of_float (e.Ellipse.cy -. e.Ellipse.ry)) in
  let y1 = clip 0 (h - 1) (int_of_float (e.Ellipse.cy +. e.Ellipse.ry)) in
  let x0 = clip 0 (w - 1) (int_of_float (e.Ellipse.cx -. e.Ellipse.rx)) in
  let x1 = clip 0 (w - 1) (int_of_float (e.Ellipse.cx +. e.Ellipse.rx)) in
  let pick lo hi i = lo + ((hi - lo) * (i + 1) / (n + 1)) in
  {
    rows = Array.init n (pick y0 y1);
    cols = Array.init n (pick x0 x1);
  }

(* CALCLINE: mean gray level along each scan line, restricted to the
   ellipse's horizontal/vertical extent. *)
let calc_features img (e : Ellipse.t) (s : scan) =
  let w = Image.width img and h = Image.height img in
  let clip lo hi v = if v < lo then lo else if v > hi then hi else v in
  let x0 = clip 0 (w - 1) (int_of_float (e.Ellipse.cx -. e.Ellipse.rx)) in
  let x1 = clip 0 (w - 1) (int_of_float (e.Ellipse.cx +. e.Ellipse.rx)) in
  let y0 = clip 0 (h - 1) (int_of_float (e.Ellipse.cy -. e.Ellipse.ry)) in
  let y1 = clip 0 (h - 1) (int_of_float (e.Ellipse.cy +. e.Ellipse.ry)) in
  let row_mean y =
    let sum = ref 0 in
    for x = x0 to x1 do
      sum := !sum + Image.get img x y
    done;
    !sum / max 1 (x1 - x0 + 1)
  in
  let col_mean x =
    let sum = ref 0 in
    for y = y0 to y1 do
      sum := !sum + Image.get img x y
    done;
    !sum / max 1 (y1 - y0 + 1)
  in
  Array.append (Array.map row_mean s.rows) (Array.map col_mean s.cols)

let work ~width ~height ~n = n * (width + height)
