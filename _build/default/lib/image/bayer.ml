(* CMOS sensor Bayer stage.

   The camera delivers a raw Bayer-mosaic frame (RGGB): each photosite
   sees the scene through one colour filter with a channel-dependent gain.
   [demosaic] reconstructs a grayscale frame by bilinear interpolation of
   the green plane plus gain-corrected red/blue, which is what the BAYER
   module of the case study computes before the rest of the pipeline. *)

(* Channel gains in 1/256ths: the synthetic scene is gray, so the mosaic
   modulates it per-site and demosaicing must undo that. *)
let gain_r = 205 (* 0.80 *)
let gain_g = 256 (* 1.00 *)
let gain_b = 230 (* 0.90 *)

type channel = R | G | B

let channel_at x y =
  (* RGGB pattern *)
  match (y land 1, x land 1) with
  | 0, 0 -> R
  | 0, 1 -> G
  | 1, 0 -> G
  | _ -> B

let gain = function R -> gain_r | G -> gain_g | B -> gain_b

(* Simulate the sensor: apply the colour-filter gain at each photosite. *)
let mosaic img =
  let w = Image.width img and h = Image.height img in
  let out = Image.create ~width:w ~height:h in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let v = Image.get img x y * gain (channel_at x y) / 256 in
      Image.set out x y v
    done
  done;
  out

(* Reconstruct gray from the mosaic: undo the per-channel gain at each
   site, then smooth with the quincunx average to kill the residual
   checkerboard. *)
let demosaic raw =
  let w = Image.width raw and h = Image.height raw in
  let corrected = Image.create ~width:w ~height:h in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let v = Image.get raw x y * 256 / gain (channel_at x y) in
      Image.set corrected x y v
    done
  done;
  let out = Image.create ~width:w ~height:h in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let c = Image.get_clamped corrected in
      let v =
        ((4 * c x y) + c (x - 1) y + c (x + 1) y + c x (y - 1) + c x (y + 1))
        / 8
      in
      Image.set out x y v
    done
  done;
  out

(* Work units per frame for profiling: one unit per photosite for the
   gain pass plus five for the interpolation pass. *)
let work ~width ~height = width * height * 6
