(** WINNER: select the closest database entry, with rejection. *)

type verdict =
  | Match of { identity : int; distance : int }
  | Unknown of { best_identity : int; distance : int }
      (** best candidate rejected by the threshold *)

val select : ?reject_above:int -> (int * int) list -> verdict
(** [select candidates] over [(identity, distance)] pairs; raises on an
    empty list.  Ties keep the earliest candidate. *)

val verdict_identity : verdict -> int option
val pp : Format.formatter -> verdict -> unit
val work : candidates:int -> int
