(** Synthetic face generator — the substitute for the paper's
    low-resolution CMOS camera and its human subjects.

    An {!identity} is a deterministic set of facial-geometry parameters
    derived from an identity number; a {!pose} perturbs the rendering
    (translation, scale, brightness, sensor noise).  Faces are rendered
    as smooth-edged ellipses and bars, giving the downstream pipeline
    realistic structure. *)

type identity
type pose

val identity : int -> identity
(** Geometry of identity [id] (deterministic in [id]). *)

val pose : int -> pose
(** Pose [0] is the canonical frontal pose (no perturbation, no noise);
    other ids give deterministic perturbations. *)

val frontal_pose : pose

val render : ?size:int -> identity -> pose -> Image.t
(** Render a frame ([size] defaults to 64). *)

val frame : ?size:int -> identity:int -> pose:int -> unit -> Image.t
(** [render] composed with {!identity} and {!pose}. *)
