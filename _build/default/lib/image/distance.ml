(* DISTANCE: squared Euclidean distance between feature vectors — the
   computational hot spot of the recognition loop (one evaluation per
   database entry per frame), hence the module the case study maps into
   the FPGA.  Pure integer multiply-accumulate, exactly what the RTL
   datapath in Symbad_hdl.Rtl_lib implements. *)

let squared a b =
  if Array.length a <> Array.length b then
    invalid_arg "Distance.squared: length mismatch";
  let acc = ref 0 in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) - b.(i) in
    acc := !acc + (d * d)
  done;
  !acc

(* Work units: one MAC per component. *)
let work ~dim = dim
