(* Sobel edge detection with threshold, producing the binary edge map the
   ellipse-fitting and border-feature stages consume. *)

let sobel_at img x y =
  let p = Image.get_clamped img in
  let gx =
    -p (x - 1) (y - 1) + p (x + 1) (y - 1)
    - (2 * p (x - 1) y)
    + (2 * p (x + 1) y)
    - p (x - 1) (y + 1)
    + p (x + 1) (y + 1)
  in
  let gy =
    -p (x - 1) (y - 1)
    - (2 * p x (y - 1))
    - p (x + 1) (y - 1)
    + p (x - 1) (y + 1)
    + (2 * p x (y + 1))
    + p (x + 1) (y + 1)
  in
  abs gx + abs gy

let magnitude img =
  let w = Image.width img and h = Image.height img in
  let out = Image.create ~width:w ~height:h in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      Image.set out x y (sobel_at img x y / 4)
    done
  done;
  out

let detect ?(threshold = 40) img =
  let w = Image.width img and h = Image.height img in
  let out = Image.create ~width:w ~height:h in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let m = sobel_at img x y / 4 in
      Image.set out x y (if m > threshold then 255 else 0)
    done
  done;
  out

let work ~width ~height = width * height * 12
