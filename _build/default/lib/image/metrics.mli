(** Recognition-quality metrics over the synthetic face population. *)

type result = {
  identities : int;
  poses : int;
  trials : int;
  correct : int;
  accuracy : float;
  mean_margin : float;
      (** mean gap between second-best and best distance *)
}

val evaluate : ?size:int -> ?poses:int -> Database.t -> result
(** Probe every enrolled identity under poses [1..poses] (default 5). *)

val pp : Format.formatter -> result -> unit
