(** The C reference model: the complete Figure 2 recognition pipeline as
    a plain composition of functions.

    The level-1 dataflow model runs the same stage functions, which is
    what makes level-by-level trace comparison exact. *)

val border_bins : int
val line_count : int

val feature_dim : int
(** Length of the concatenated signature (border + row/col line sums). *)

type stage_outputs = {
  raw : Image.t;  (** camera (Bayer mosaic) *)
  gray : Image.t;  (** BAYER *)
  eroded : Image.t;  (** EROSION *)
  edges : Image.t;  (** EDGE *)
  ellipse : Ellipse.t;  (** ELLIPSE (fallback centre if the fit fails) *)
  border : int array;  (** CRTBORDER *)
  lines : Line.scan;  (** CRTLINE *)
  line_features : int array;  (** CALCLINE *)
  features : int array;  (** concatenated signature *)
}

val fallback_ellipse : Image.t -> Ellipse.t
(** Centre-of-image ellipse used when the fit has no support. *)

val camera : ?size:int -> identity:int -> pose:int -> unit -> Image.t
(** A raw sensor frame: synthetic face passed through the Bayer mosaic. *)

val extract : Image.t -> stage_outputs
(** Run all feature-extraction stages on a raw frame. *)

val features_of_frame : Image.t -> int array

val distances : Database.t -> int array -> (int * int) list
(** CALCDIST/DISTANCE/ROOT: [(identity, distance)] per database entry. *)

val recognize : ?reject_above:int -> Database.t -> Image.t -> Winner.verdict

val enroll : ?size:int -> identities:int -> unit -> Database.t
(** Enroll [identities] identities from their frontal poses. *)

val stage_work : size:int -> (string * int) list
(** Work units per firing for each Figure 2 module, the profiling model. *)
