(** The face DATABASE: enrolled feature vectors with (de)serialisation
    so the bus-attached nonvolatile memory model can hold them. *)

type entry = { identity : int; features : int array }
type t

val create : dim:int -> entry list -> t
(** Raises if any entry's feature vector is not [dim] long. *)

val dim : t -> int
val entries : t -> entry list
val size : t -> int
val find : t -> int -> entry option

val serialized_size : t -> int
val serialize : t -> Bytes.t
(** 16-bit little-endian encoding: header (dim, count), then per entry
    the identity and [dim] components. *)

val deserialize : Bytes.t -> t
(** Inverse of {!serialize}; raises on truncated input. *)

val equal : t -> t -> bool
