(* Border features (CRTBORDER): a radial signature of the face contour.

   From the fitted ellipse centre, cast [bins] rays at equal angles and
   record, for each, the distance to the outermost edge pixel, normalised
   by the ellipse scale.  The signature is translation- and largely
   scale-invariant, so it discriminates head shapes across poses. *)

let pi = 4.0 *. atan 1.0

let profile ?(bins = 16) edge_map (e : Ellipse.t) =
  if bins <= 0 then invalid_arg "Border.profile: bins";
  let w = Image.width edge_map and h = Image.height edge_map in
  let max_r = float_of_int (max w h) in
  let scale = (e.Ellipse.rx +. e.Ellipse.ry) /. 2. in
  Array.init bins (fun b ->
      let angle = 2. *. pi *. float_of_int b /. float_of_int bins in
      let dx = cos angle and dy = sin angle in
      (* march outward, remember the last edge hit *)
      let rec march r last =
        if r > max_r then last
        else begin
          let x = int_of_float (e.Ellipse.cx +. (r *. dx)) in
          let y = int_of_float (e.Ellipse.cy +. (r *. dy)) in
          if x < 0 || x >= w || y < 0 || y >= h then last
          else
            let last = if Image.get edge_map x y > 0 then r else last in
            march (r +. 1.) last
        end
      in
      let dist = march 1. 0. in
      (* normalise to 1/64ths of the ellipse scale *)
      int_of_float (dist /. scale *. 64.))

let work ~width ~height ~bins = bins * max width height
