(** Deterministic pseudo-random numbers (xorshift64-star).

    Used for synthetic camera frames, sensor noise and the ATPG engines,
    so that every run of every experiment is reproducible. *)

type t

val create : int -> t
(** Seeded generator; equal seeds give equal streams. *)

val next : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); raises on [bound <= 0]. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool

val noise : t -> float
(** Zero-mean noise in about [-1.5, 1.5] (sum of three uniforms). *)
