(* Ellipse fitting by image moments.

   The edge map of a face is dominated by the head contour; the first and
   second moments of the edge-pixel cloud give its centre and half-axes.
   The fitted ellipse localises the face for the feature stages
   (CRTBORDER / CRTLINE) regardless of pose translation and scale. *)

type t = {
  cx : float;
  cy : float;
  rx : float;  (* half-axis along x *)
  ry : float;  (* half-axis along y *)
  support : int;  (* number of edge pixels used *)
}

let fit ?(min_support = 16) edge_map =
  let w = Image.width edge_map and h = Image.height edge_map in
  let n = ref 0 and sx = ref 0 and sy = ref 0 in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      if Image.get edge_map x y > 0 then begin
        incr n;
        sx := !sx + x;
        sy := !sy + y
      end
    done
  done;
  if !n < min_support then None
  else begin
    let nf = float_of_int !n in
    let cx = float_of_int !sx /. nf and cy = float_of_int !sy /. nf in
    let sxx = ref 0. and syy = ref 0. in
    for y = 0 to h - 1 do
      for x = 0 to w - 1 do
        if Image.get edge_map x y > 0 then begin
          let dx = float_of_int x -. cx and dy = float_of_int y -. cy in
          sxx := !sxx +. (dx *. dx);
          syy := !syy +. (dy *. dy)
        end
      done
    done;
    (* For a uniform ellipse ring, E[dx^2] = rx^2 / 2. *)
    let rx = sqrt (2. *. !sxx /. nf) and ry = sqrt (2. *. !syy /. nf) in
    Some { cx; cy; rx = Float.max rx 1.; ry = Float.max ry 1.; support = !n }
  end

(* Canonical digest used in traces (quantised so that timed and untimed
   runs compare equal). *)
let digest e =
  Printf.sprintf "c(%d,%d)r(%d,%d)n%d"
    (int_of_float (e.cx +. 0.5))
    (int_of_float (e.cy +. 0.5))
    (int_of_float (e.rx +. 0.5))
    (int_of_float (e.ry +. 0.5))
    e.support

let pp fmt e =
  Fmt.pf fmt "ellipse c=(%.1f,%.1f) r=(%.1f,%.1f) support=%d" e.cx e.cy e.rx
    e.ry e.support

let work ~width ~height = width * height * 4
