(** Border features (CRTBORDER): a radial signature of the face contour.

    Rays cast from the fitted ellipse centre record the distance to the
    outermost edge pixel, normalised by the ellipse scale. *)

val profile : ?bins:int -> Image.t -> Ellipse.t -> int array
(** [profile ~bins edges e] is the radial signature ([bins] defaults to
    16; entries in 1/64ths of the ellipse scale). *)

val work : width:int -> height:int -> bins:int -> int
