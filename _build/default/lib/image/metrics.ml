(* Recognition-quality metrics over the synthetic face population. *)

type result = {
  identities : int;
  poses : int;
  trials : int;
  correct : int;
  accuracy : float;
  mean_margin : float;
      (* mean (second-best distance - best distance), a separability measure *)
}

let evaluate ?(size = 64) ?(poses = 5) db =
  let identities = Database.size db in
  let trials = ref 0 and correct = ref 0 and margin_sum = ref 0. in
  for identity = 0 to identities - 1 do
    for pose = 1 to poses do
      incr trials;
      let raw = Pipeline.camera ~size ~identity ~pose () in
      let ds = Pipeline.distances db (Pipeline.features_of_frame raw) in
      let sorted = List.sort (fun (_, a) (_, b) -> compare a b) ds in
      (match sorted with
      | (best_id, best_d) :: (_, second_d) :: _ ->
          if best_id = identity then incr correct;
          margin_sum := !margin_sum +. float_of_int (second_d - best_d)
      | [ (best_id, _) ] -> if best_id = identity then incr correct
      | [] -> ())
    done
  done;
  {
    identities;
    poses;
    trials = !trials;
    correct = !correct;
    accuracy =
      (if !trials = 0 then 0. else float_of_int !correct /. float_of_int !trials);
    mean_margin =
      (if !trials = 0 then 0. else !margin_sum /. float_of_int !trials);
  }

let pp fmt r =
  Fmt.pf fmt "%d/%d correct (%.1f%%) over %d ids x %d poses, margin %.1f"
    r.correct r.trials (100. *. r.accuracy) r.identities r.poses r.mean_margin
