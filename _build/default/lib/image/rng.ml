(* Deterministic pseudo-random numbers (xorshift64-star), so that synthetic
   camera frames and noise are reproducible across runs and platforms. *)

type t = { mutable state : int64 }

let create seed =
  (* avoid the all-zero state *)
  let s = Int64.of_int seed in
  { state = (if Int64.equal s 0L then 0x9E3779B97F4A7C15L else s) }

let next t =
  let x = t.state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.state <- x;
  Int64.mul x 0x2545F4914F6CDD1DL

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound";
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  v /. 9007199254740992. (* 2^53 *)

let bool t = Int64.logand (next t) 1L = 1L

(* Gaussian-ish noise via the sum of three uniforms, range about
   [-1.5, 1.5] with standard deviation 0.5. *)
let noise t = float t +. float t +. float t -. 1.5
