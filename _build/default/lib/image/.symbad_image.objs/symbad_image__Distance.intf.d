lib/image/distance.mli:
