lib/image/border.ml: Array Ellipse Image
