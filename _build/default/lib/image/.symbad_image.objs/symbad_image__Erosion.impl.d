lib/image/erosion.ml: Image
