lib/image/rng.ml: Int64
