lib/image/winner.ml: Fmt List
