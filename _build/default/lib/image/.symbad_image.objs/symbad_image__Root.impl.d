lib/image/root.ml:
