lib/image/pipeline.mli: Database Ellipse Image Line Winner
