lib/image/distance.ml: Array
