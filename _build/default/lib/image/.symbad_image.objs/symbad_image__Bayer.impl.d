lib/image/bayer.ml: Image
