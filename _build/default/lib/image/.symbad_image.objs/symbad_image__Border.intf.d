lib/image/border.mli: Ellipse Image
