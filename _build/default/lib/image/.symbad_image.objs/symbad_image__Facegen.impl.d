lib/image/facegen.ml: Image Rng
