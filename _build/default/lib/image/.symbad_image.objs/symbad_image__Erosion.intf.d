lib/image/erosion.mli: Image
