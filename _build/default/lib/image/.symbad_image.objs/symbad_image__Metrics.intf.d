lib/image/metrics.mli: Database Format
