lib/image/line.ml: Array Ellipse Image
