lib/image/rng.mli:
