lib/image/image.ml: Array Fmt Int64 Printf
