lib/image/root.mli:
