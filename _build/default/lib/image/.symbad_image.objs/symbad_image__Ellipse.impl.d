lib/image/ellipse.ml: Float Fmt Image Printf
