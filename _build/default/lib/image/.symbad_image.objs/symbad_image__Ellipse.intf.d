lib/image/ellipse.mli: Format Image
