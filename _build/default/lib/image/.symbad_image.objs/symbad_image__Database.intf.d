lib/image/database.mli: Bytes
