lib/image/bayer.mli: Image
