lib/image/winner.mli: Format
