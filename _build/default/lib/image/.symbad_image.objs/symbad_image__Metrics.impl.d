lib/image/metrics.ml: Database Fmt List Pipeline
