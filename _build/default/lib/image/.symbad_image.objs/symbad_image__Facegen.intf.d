lib/image/facegen.mli: Image
