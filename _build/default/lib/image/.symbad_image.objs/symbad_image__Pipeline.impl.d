lib/image/pipeline.ml: Array Bayer Border Database Distance Edge Ellipse Erosion Facegen Image Line List Root Winner
