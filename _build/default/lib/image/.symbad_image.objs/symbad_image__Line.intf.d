lib/image/line.mli: Ellipse Image
