lib/image/edge.ml: Image
