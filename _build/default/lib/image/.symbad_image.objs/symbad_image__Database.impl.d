lib/image/database.ml: Array Bytes Char List
