(* The face DATABASE: feature vectors of the twenty enrolled identities,
   with (de)serialisation so the level-2/3 models can keep it in the
   bus-attached nonvolatile memory model. *)

type entry = { identity : int; features : int array }

type t = { dim : int; entries : entry list }

let create ~dim entries =
  List.iter
    (fun e ->
      if Array.length e.features <> dim then
        invalid_arg "Database.create: dimension mismatch")
    entries;
  { dim; entries }

let dim db = db.dim
let entries db = db.entries
let size db = List.length db.entries

let find db identity =
  List.find_opt (fun e -> e.identity = identity) db.entries

(* Serialisation: 16-bit little-endian header (dim, count) then per entry
   a 16-bit identity and [dim] 16-bit feature components. *)
let put16 buf pos v =
  Bytes.set buf pos (Char.chr (v land 0xff));
  Bytes.set buf (pos + 1) (Char.chr ((v lsr 8) land 0xff))

let get16 buf pos =
  Char.code (Bytes.get buf pos) lor (Char.code (Bytes.get buf (pos + 1)) lsl 8)

let serialized_size db = 4 + (size db * 2 * (db.dim + 1))

let serialize db =
  let buf = Bytes.make (serialized_size db) '\000' in
  put16 buf 0 db.dim;
  put16 buf 2 (size db);
  List.iteri
    (fun i e ->
      let base = 4 + (i * 2 * (db.dim + 1)) in
      put16 buf base e.identity;
      Array.iteri (fun j v -> put16 buf (base + 2 + (2 * j)) (v land 0xffff))
        e.features)
    db.entries;
  buf

let deserialize buf =
  if Bytes.length buf < 4 then invalid_arg "Database.deserialize: short";
  let dim = get16 buf 0 and count = get16 buf 2 in
  let need = 4 + (count * 2 * (dim + 1)) in
  if Bytes.length buf < need then invalid_arg "Database.deserialize: truncated";
  let entries =
    List.init count (fun i ->
        let base = 4 + (i * 2 * (dim + 1)) in
        {
          identity = get16 buf base;
          features = Array.init dim (fun j -> get16 buf (base + 2 + (2 * j)));
        })
  in
  { dim; entries }

let equal a b =
  a.dim = b.dim
  && List.length a.entries = List.length b.entries
  && List.for_all2
       (fun x y -> x.identity = y.identity && x.features = y.features)
       a.entries b.entries
