(** CMOS sensor Bayer stage: RGGB mosaic simulation and demosaicing.

    The sensor sees the scene through per-site colour filters with
    channel-dependent gains; {!demosaic} undoes the gains and smooths
    the residual checkerboard, reconstructing the grayscale frame the
    rest of the pipeline consumes. *)

type channel = R | G | B

val channel_at : int -> int -> channel
(** Colour filter at photosite [(x, y)] in the RGGB pattern. *)

val gain : channel -> int
(** Channel gain in 1/256ths. *)

val mosaic : Image.t -> Image.t
(** Simulate the sensor: apply the colour-filter gain per photosite. *)

val demosaic : Image.t -> Image.t
(** Reconstruct gray from a mosaic frame. *)

val work : width:int -> height:int -> int
(** Profiling weight (work units) of one frame. *)
