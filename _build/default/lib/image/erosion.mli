(** Morphological erosion and dilation (square structuring element). *)

val apply : ?radius:int -> Image.t -> Image.t
(** Minimum filter over a [(2r+1)x(2r+1)] window (default radius 1);
    suppresses isolated bright sensor noise before edge detection. *)

val dilate : ?radius:int -> Image.t -> Image.t
(** Maximum filter, the dual operator. *)

val work : width:int -> height:int -> int
(** Profiling weight of one frame. *)
