(** Line features (CRTLINE / CALCLINE).

    CRTLINE selects scan rows/columns across the face box implied by the
    fitted ellipse; CALCLINE integrates the image along them.  The line
    sums cross eyes, brows and mouth at identity-dependent positions. *)

type scan = { rows : int array; cols : int array }

val create_lines : ?n:int -> Image.t -> Ellipse.t -> scan
(** [n] rows and [n] cols (default 8) inside the ellipse's bounding box. *)

val calc_features : Image.t -> Ellipse.t -> scan -> int array
(** Mean gray level along each scan line ([2n] features). *)

val work : width:int -> height:int -> n:int -> int
