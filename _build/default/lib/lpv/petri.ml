(* Petri-net abstraction of a SystemC communication structure.

   Tasks become transitions; channels become places from producer to
   consumer; a bounded channel additionally contributes a reverse
   "credit" place carrying its capacity.  The result for a dataflow
   design is a marked graph, on which the LPV analyses (deadlock via
   place invariants, unreachability via the state equation, timing via
   cycle ratios) are exact. *)

type place = { pname : string; mutable m0 : int }

type transition = { tname : string; mutable delay : int }

type t = {
  mutable places : place array;
  mutable transitions : transition array;
  (* arcs: (transition index, place index, weight);
     pre = consumed by t, post = produced by t *)
  mutable pre : (int * int * int) list;
  mutable post : (int * int * int) list;
}

let create () =
  { places = [||]; transitions = [||]; pre = []; post = [] }

let add_place net ?(tokens = 0) pname =
  if tokens < 0 then invalid_arg "Petri.add_place: tokens";
  let p = { pname; m0 = tokens } in
  net.places <- Array.append net.places [| p |];
  Array.length net.places - 1

let add_transition net ?(delay = 0) tname =
  let t = { tname; delay } in
  net.transitions <- Array.append net.transitions [| t |];
  Array.length net.transitions - 1

let add_pre net ~transition ~place ?(weight = 1) () =
  net.pre <- (transition, place, weight) :: net.pre

let add_post net ~transition ~place ?(weight = 1) () =
  net.post <- (transition, place, weight) :: net.post

let n_places net = Array.length net.places
let n_transitions net = Array.length net.transitions
let place_name net i = net.places.(i).pname
let transition_name net i = net.transitions.(i).tname
let initial_marking net = Array.map (fun p -> p.m0) net.places
let delay net i = net.transitions.(i).delay

let place_index net name =
  let rec go i =
    if i >= Array.length net.places then None
    else if String.equal net.places.(i).pname name then Some i
    else go (i + 1)
  in
  go 0

let transition_index net name =
  let rec go i =
    if i >= Array.length net.transitions then None
    else if String.equal net.transitions.(i).tname name then Some i
    else go (i + 1)
  in
  go 0

(* Incidence matrix C with C.(t).(p) = post(t,p) - pre(t,p). *)
let incidence net =
  let c =
    Array.init (n_transitions net) (fun _ -> Array.make (n_places net) 0)
  in
  List.iter (fun (t, p, w) -> c.(t).(p) <- c.(t).(p) - w) net.pre;
  List.iter (fun (t, p, w) -> c.(t).(p) <- c.(t).(p) + w) net.post;
  c

(* Producers/consumers of a place (for diagnostics and graph views). *)
let producers net p =
  List.filter_map (fun (t, p', _) -> if p' = p then Some t else None) net.post

let consumers net p =
  List.filter_map (fun (t, p', _) -> if p' = p then Some t else None) net.pre

(* State-equation reachability relaxation: M reachable from M0 only if
   the system  M = M0 + C^T x,  x >= 0  is feasible.  Infeasibility is a
   *proof* of unreachability — LPV's way of discharging "the deadlock
   state is unreachable" properties. *)
let state_equation_feasible net marking =
  if Array.length marking <> n_places net then
    invalid_arg "Petri.state_equation_feasible: marking size";
  let c = incidence net in
  let m0 = initial_marking net in
  let constraints =
    List.init (n_places net) (fun p ->
        {
          Simplex.coeffs =
            List.init (n_transitions net) (fun t -> (t, Rat.of_int c.(t).(p)))
            |> List.filter (fun (_, q) -> not (Rat.is_zero q));
          cmp = Simplex.Eq;
          rhs = Rat.of_int (marking.(p) - m0.(p));
        })
  in
  Simplex.feasible ~nvars:(n_transitions net) constraints

(* Structural boundedness: the net is bounded for every initial marking
   iff there is a place weighting y >= 1 with y C <= 0 (no transition can
   increase the weighted token count).  An LP feasibility question. *)
let structurally_bounded net =
  let np = n_places net and nt = n_transitions net in
  if np = 0 then true
  else begin
    let c = incidence net in
    let rows =
      (* y_p >= 1 for every place *)
      List.init np (fun p ->
          { Simplex.coeffs = [ (p, Rat.one) ]; cmp = Simplex.Ge; rhs = Rat.one })
      (* (y C)_t <= 0 for every transition *)
      @ List.init nt (fun t ->
            {
              Simplex.coeffs =
                List.init np (fun p -> (p, Rat.of_int c.(t).(p)))
                |> List.filter (fun (_, q) -> not (Rat.is_zero q));
              cmp = Simplex.Le;
              rhs = Rat.zero;
            })
    in
    Simplex.feasible ~nvars:np rows
  end

let pp fmt net =
  Fmt.pf fmt "petri: %d places, %d transitions@." (n_places net)
    (n_transitions net);
  Array.iteri
    (fun i p -> Fmt.pf fmt "  place %s m0=%d (idx %d)@." p.pname p.m0 i)
    net.places;
  Array.iteri
    (fun i t -> Fmt.pf fmt "  trans %s d=%d (idx %d)@." t.tname t.delay i)
    net.transitions
