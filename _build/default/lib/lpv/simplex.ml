(* Two-phase primal simplex over exact rationals with Bland's rule
   (hence guaranteed termination).  This is the LP engine behind every
   LPV analysis: deadlock invariants, state-equation unreachability,
   deadline and FIFO-dimensioning checks. *)

type cmp = Le | Ge | Eq

type constr = { coeffs : (int * Rat.t) list; cmp : cmp; rhs : Rat.t }
(* coeffs: (variable index, coefficient); variables are 0-based, >= 0 *)

type problem = {
  nvars : int;
  constraints : constr list;
  objective : (int * Rat.t) list;
  minimize : bool;
}

type outcome =
  | Optimal of { value : Rat.t; solution : Rat.t array }
  | Infeasible
  | Unbounded

(* Internal tableau:
     rows 1..m : constraints (columns: structural | slack | artificial | rhs)
     basis.(i) : variable basic in row i
   Cost rows are kept as dense arrays of reduced costs + objective value. *)

type tableau = {
  m : int;
  ncols : int;  (* total variable columns (excluding rhs) *)
  a : Rat.t array array;  (* m x (ncols + 1); last column = rhs *)
  basis : int array;
}

let pivot (t : tableau) ~row ~col =
  let piv = t.a.(row).(col) in
  assert (not (Rat.is_zero piv));
  let inv = Rat.inv piv in
  for j = 0 to t.ncols do
    t.a.(row).(j) <- Rat.mul t.a.(row).(j) inv
  done;
  for i = 0 to t.m - 1 do
    if i <> row && not (Rat.is_zero t.a.(i).(col)) then begin
      let factor = t.a.(i).(col) in
      for j = 0 to t.ncols do
        t.a.(i).(j) <- Rat.sub t.a.(i).(j) (Rat.mul factor t.a.(row).(j))
      done
    end
  done;
  t.basis.(row) <- col

(* Minimise cost.(x) over the tableau; [cost] has ncols entries plus the
   accumulated objective in cost.(ncols).  Reduced costs maintained by
   eliminating basic columns from [cost].  Returns `Optimal or
   `Unbounded; mutates tableau and cost in place. *)
let optimise (t : tableau) (cost : Rat.t array) =
  (* make cost row consistent with the current basis *)
  for i = 0 to t.m - 1 do
    let b = t.basis.(i) in
    if not (Rat.is_zero cost.(b)) then begin
      let factor = cost.(b) in
      for j = 0 to t.ncols do
        cost.(j) <- Rat.sub cost.(j) (Rat.mul factor t.a.(i).(j))
      done
    end
  done;
  let rec iterate () =
    (* Bland: entering column = smallest index with negative reduced cost *)
    let rec entering j =
      if j >= t.ncols then None
      else if Rat.sign cost.(j) < 0 then Some j
      else entering (j + 1)
    in
    match entering 0 with
    | None -> `Optimal
    | Some col ->
        (* ratio test; Bland tie-break on smallest basic variable *)
        let best = ref None in
        for i = 0 to t.m - 1 do
          if Rat.sign t.a.(i).(col) > 0 then begin
            let ratio = Rat.div t.a.(i).(t.ncols) t.a.(i).(col) in
            match !best with
            | None -> best := Some (ratio, i)
            | Some (r, i') ->
                let c = Rat.compare ratio r in
                if c < 0 || (c = 0 && t.basis.(i) < t.basis.(i')) then
                  best := Some (ratio, i)
          end
        done;
        (match !best with
        | None -> `Unbounded
        | Some (_, row) ->
            pivot t ~row ~col;
            (* eliminate entering column from cost row *)
            let factor = cost.(col) in
            if not (Rat.is_zero factor) then
              for j = 0 to t.ncols do
                cost.(j) <- Rat.sub cost.(j) (Rat.mul factor t.a.(row).(j))
              done;
            iterate ())
  in
  iterate ()

let solve problem =
  let m = List.length problem.constraints in
  (* normalise to rhs >= 0 *)
  let rows =
    List.map
      (fun c ->
        if Rat.sign c.rhs < 0 then
          {
            coeffs = List.map (fun (i, q) -> (i, Rat.neg q)) c.coeffs;
            cmp = (match c.cmp with Le -> Ge | Ge -> Le | Eq -> Eq);
            rhs = Rat.neg c.rhs;
          }
        else c)
      problem.constraints
  in
  (* column layout: structural | slack/surplus (one per inequality) |
     artificial (one per Ge/Eq row) *)
  let n = problem.nvars in
  let n_slack =
    List.length (List.filter (fun c -> c.cmp <> Eq) rows)
  in
  let n_art =
    List.length (List.filter (fun c -> c.cmp <> Le) rows)
  in
  let ncols = n + n_slack + n_art in
  let a = Array.init m (fun _ -> Array.make (ncols + 1) Rat.zero) in
  let basis = Array.make m 0 in
  let slack_idx = ref n in
  let art_idx = ref (n + n_slack) in
  let artificials = ref [] in
  List.iteri
    (fun i c ->
      List.iter
        (fun (j, q) ->
          if j < 0 || j >= n then invalid_arg "Simplex.solve: variable index";
          a.(i).(j) <- Rat.add a.(i).(j) q)
        c.coeffs;
      a.(i).(ncols) <- c.rhs;
      (match c.cmp with
      | Le ->
          a.(i).(!slack_idx) <- Rat.one;
          basis.(i) <- !slack_idx;
          incr slack_idx
      | Ge ->
          a.(i).(!slack_idx) <- Rat.minus_one;
          incr slack_idx;
          a.(i).(!art_idx) <- Rat.one;
          basis.(i) <- !art_idx;
          artificials := !art_idx :: !artificials;
          incr art_idx
      | Eq ->
          a.(i).(!art_idx) <- Rat.one;
          basis.(i) <- !art_idx;
          artificials := !art_idx :: !artificials;
          incr art_idx))
    rows;
  let t = { m; ncols; a; basis } in
  (* phase 1 *)
  let feasible =
    if !artificials = [] then true
    else begin
      let cost = Array.make (ncols + 1) Rat.zero in
      List.iter (fun j -> cost.(j) <- Rat.one) !artificials;
      match optimise t cost with
      | `Unbounded -> false (* cannot happen: phase-1 objective >= 0 *)
      | `Optimal ->
          (* objective value is -cost.(ncols) after eliminations *)
          Rat.is_zero cost.(ncols)
    end
  in
  if not feasible then Infeasible
  else begin
    (* drive any artificial variables out of the basis if possible *)
    let is_artificial j = j >= n + n_slack in
    for i = 0 to m - 1 do
      if is_artificial basis.(i) then begin
        let rec find_col j =
          if j >= n + n_slack then None
          else if not (Rat.is_zero t.a.(i).(j)) then Some j
          else find_col (j + 1)
        in
        match find_col 0 with
        | Some col -> pivot t ~row:i ~col
        | None -> () (* redundant row; harmless *)
      end
    done;
    (* phase 2 *)
    let cost = Array.make (ncols + 1) Rat.zero in
    List.iter
      (fun (j, q) ->
        if j < 0 || j >= n then invalid_arg "Simplex.solve: objective index";
        let q = if problem.minimize then q else Rat.neg q in
        cost.(j) <- Rat.add cost.(j) q)
      problem.objective;
    (* forbid re-entering artificial columns (big positive reduced cost;
       any artificial still basic sits at value 0 in an all-zero row, so
       this cannot distort the objective) *)
    List.iter (fun j -> cost.(j) <- Rat.of_int 1_000_000_000) !artificials;
    match optimise t cost with
    | `Unbounded -> Unbounded
    | `Optimal ->
        let solution = Array.make n Rat.zero in
        for i = 0 to m - 1 do
          if basis.(i) < n then solution.(basis.(i)) <- t.a.(i).(ncols)
        done;
        let value =
          let v = Rat.neg cost.(ncols) in
          if problem.minimize then v else Rat.neg v
        in
        Optimal { value; solution }
  end

(* Convenience: pure feasibility of a constraint system. *)
let feasible ~nvars constraints =
  match solve { nvars; constraints; objective = []; minimize = true } with
  | Optimal _ -> true
  | Infeasible -> false
  | Unbounded -> true

let pp_outcome fmt = function
  | Optimal { value; _ } -> Fmt.pf fmt "optimal %a" Rat.pp value
  | Infeasible -> Fmt.string fmt "infeasible"
  | Unbounded -> Fmt.string fmt "unbounded"
