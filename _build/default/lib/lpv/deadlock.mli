(** LPV deadlock-freeness for marked graphs.

    Minimising the initial token count over the nonnegative
    place-invariant cone decides whether every directed cycle carries a
    token; a zero-token optimum's support is an unfireable cycle — a
    deadlock witness. *)

type verdict =
  | Deadlock_free of { min_cycle_tokens : Rat.t }
  | Potential_deadlock of { witness : string list }
      (** places of the token-free cycle *)
  | Not_analyzable of string

val check : Petri.t -> verdict
val pp_verdict : Format.formatter -> verdict -> unit
