lib/lpv/petri.mli: Format
