lib/lpv/simplex.mli: Format Rat
