lib/lpv/petri.ml: Array Fmt List Rat Simplex String
