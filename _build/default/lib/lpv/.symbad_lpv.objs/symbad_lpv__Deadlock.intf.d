lib/lpv/deadlock.mli: Format Petri Rat
