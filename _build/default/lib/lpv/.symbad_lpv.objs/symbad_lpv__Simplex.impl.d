lib/lpv/simplex.ml: Array Fmt List Rat
