lib/lpv/deadlock.ml: Array Fmt List Petri Rat Simplex
