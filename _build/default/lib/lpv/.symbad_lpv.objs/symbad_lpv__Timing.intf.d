lib/lpv/timing.mli: Format Petri Rat
