lib/lpv/rat.ml: Fmt Stdlib
