lib/lpv/rat.mli: Format
