lib/lpv/timing.ml: Array Fmt List Petri Rat Simplex
