(** Two-phase primal simplex over exact rationals, with Bland's rule
    (guaranteed termination) — the LP engine behind every LPV analysis. *)

type cmp = Le | Ge | Eq

type constr = {
  coeffs : (int * Rat.t) list;  (** (0-based variable index, coefficient) *)
  cmp : cmp;
  rhs : Rat.t;
}

type problem = {
  nvars : int;  (** variables are x_0..x_{nvars-1}, all >= 0 *)
  constraints : constr list;
  objective : (int * Rat.t) list;
  minimize : bool;
}

type outcome =
  | Optimal of { value : Rat.t; solution : Rat.t array }
  | Infeasible
  | Unbounded

val solve : problem -> outcome

val feasible : nvars:int -> constr list -> bool
(** Pure feasibility of a constraint system. *)

val pp_outcome : Format.formatter -> outcome -> unit
