(* Exact rational arithmetic over native ints.

   Always normalised: gcd(num, den) = 1, den > 0.  Native 63-bit ints are
   ample for the case-study LPs; [make] and the ring operations keep
   numbers small through normalisation. *)

type t = { num : int; den : int }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let make num den =
  if den = 0 then invalid_arg "Rat.make: zero denominator";
  let s = if den < 0 then -1 else 1 in
  let num = s * num and den = s * den in
  let g = gcd (abs num) den in
  if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)

let num r = r.num
let den r = r.den

let add a b = make ((a.num * b.den) + (b.num * a.den)) (a.den * b.den)
let sub a b = make ((a.num * b.den) - (b.num * a.den)) (a.den * b.den)
let mul a b = make (a.num * b.num) (a.den * b.den)

let div a b =
  if b.num = 0 then invalid_arg "Rat.div: division by zero";
  make (a.num * b.den) (a.den * b.num)

let neg a = { a with num = -a.num }
let abs a = { a with num = Stdlib.abs a.num }
let inv a = div one a

let compare a b = Stdlib.compare (a.num * b.den) (b.num * a.den)
let equal a b = a.num = b.num && a.den = b.den
let sign a = Stdlib.compare a.num 0
let is_zero a = a.num = 0

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0

let min a b = if Stdlib.( <= ) (compare a b) 0 then a else b
let max a b = if Stdlib.( >= ) (compare a b) 0 then a else b

let to_float r = float_of_int r.num /. float_of_int r.den

let pp fmt r =
  if r.den = 1 then Fmt.int fmt r.num else Fmt.pf fmt "%d/%d" r.num r.den

let to_string r = Fmt.str "%a" pp r
