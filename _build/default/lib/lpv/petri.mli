(** Petri-net abstraction of a communication structure.

    Tasks are transitions; channels are places (plus credit places for
    bounded channels).  Dataflow designs yield marked graphs, on which
    the LPV analyses are exact. *)

type t

val create : unit -> t

val add_place : t -> ?tokens:int -> string -> int
(** Returns the place index. *)

val add_transition : t -> ?delay:int -> string -> int

val add_pre : t -> transition:int -> place:int -> ?weight:int -> unit -> unit
(** [place] is consumed by [transition]. *)

val add_post : t -> transition:int -> place:int -> ?weight:int -> unit -> unit
(** [place] is produced by [transition]. *)

val n_places : t -> int
val n_transitions : t -> int
val place_name : t -> int -> string
val transition_name : t -> int -> string
val place_index : t -> string -> int option
val transition_index : t -> string -> int option
val initial_marking : t -> int array
val delay : t -> int -> int

val incidence : t -> int array array
(** [C.(t).(p) = post - pre]. *)

val producers : t -> int -> int list
val consumers : t -> int -> int list

val state_equation_feasible : t -> int array -> bool
(** State-equation relaxation: [false] is a *proof* that the marking is
    unreachable — LPV's mechanism for discharging unreachability
    properties. *)

val structurally_bounded : t -> bool
(** [true] iff a place weighting [y >= 1] with [y C <= 0] exists, which
    bounds the token count under every initial marking (conservative
    nets qualify); [false] means some transition sequence can grow some
    place without bound. *)

val pp : Format.formatter -> t -> unit
