(** Exact rational arithmetic over native ints.

    Values are always normalised (coprime, positive denominator).  Ample
    for the case-study LPs; normalisation keeps numbers small. *)

type t

val make : int -> int -> t
(** [make num den]; raises on a zero denominator. *)

val of_int : int -> t
val zero : t
val one : t
val minus_one : t

val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** Raises [Invalid_argument] on division by zero. *)

val neg : t -> t
val abs : t -> t
val inv : t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val min : t -> t -> t
val max : t -> t -> t

val to_float : t -> float
val pp : Format.formatter -> t -> unit
val to_string : t -> string
