(** LPV real-time analysis: deadline achievement and FIFO dimensioning
    via the maximum-cycle-ratio LP over timed marked graphs. *)

type verdict =
  | Period of Rat.t  (** minimum sustainable iteration period *)
  | Unschedulable of string  (** a zero-token cycle: no finite period *)

val min_cycle_ratio : Petri.t -> verdict
(** One LP: minimise [r] subject to
    [s(consumer) - s(producer) + r * tokens(p) >= delay(producer)] for
    every place [p]. *)

val deadline_met : deadline:int -> Petri.t -> bool
(** Can the system sustain one iteration every [deadline] time units? *)

val min_uniform_capacity :
  ?max_capacity:int -> deadline:int -> build:(int -> Petri.t) -> unit -> int option
(** Smallest uniform channel capacity meeting the deadline, over a
    monotone family of nets built by [build]. *)

val pp_verdict : Format.formatter -> verdict -> unit
