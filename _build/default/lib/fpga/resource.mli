(** FPGA computing resources: HW algorithm modules and register files. *)

type kind = Algorithm | Register_file
type t

val algorithm : area:int -> string -> t
(** A HW module implementing an algorithm; [area] in abstract logic units. *)

val register_file : area:int -> string -> t

val name : t -> string
val area : t -> int
val kind : t -> kind
val pp : Format.formatter -> t -> unit
