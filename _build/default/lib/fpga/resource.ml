(* A computing resource implementable inside the embedded FPGA: a HW
   module (algorithm) or a register file.  Area is in abstract logic
   units; it determines bitstream size and context capacity. *)

type kind = Algorithm | Register_file

type t = { name : string; kind : kind; area : int }

let algorithm ~area name =
  if area <= 0 then invalid_arg "Resource.algorithm: area";
  { name; kind = Algorithm; area }

let register_file ~area name =
  if area <= 0 then invalid_arg "Resource.register_file: area";
  { name; kind = Register_file; area }

let name r = r.name
let area r = r.area
let kind r = r.kind

let pp fmt r =
  let k = match r.kind with Algorithm -> "alg" | Register_file -> "regs" in
  Fmt.pf fmt "%s(%s,%d)" r.name k r.area
