(** FPGA contexts (configurations): fixed resource sets loaded as a unit. *)

type t

val make : string -> Resource.t list -> t
(** Raises [Invalid_argument] on duplicate resource names. *)

val name : t -> string
val resources : t -> Resource.t list
val area : t -> int

val provides : t -> string -> bool
(** [provides c r] is true iff resource [r] is available once [c] is
    loaded. *)

val bitstream_bytes : ?header_bytes:int -> ?bytes_per_area:int -> t -> int
(** Size of the configuration bitstream (header + per-area payload;
    defaults 512 + 8/unit). *)

val pp : Format.formatter -> t -> unit
