lib/fpga/resource.mli: Format
