lib/fpga/fpga.ml: Context Fmt List Printf String Symbad_sim Symbad_tlm
