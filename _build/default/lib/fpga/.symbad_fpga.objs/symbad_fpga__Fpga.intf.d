lib/fpga/fpga.mli: Context Format Symbad_tlm
