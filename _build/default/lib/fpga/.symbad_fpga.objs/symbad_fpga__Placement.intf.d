lib/fpga/placement.mli: Context Format Resource
