lib/fpga/context.ml: Fmt List Resource String
