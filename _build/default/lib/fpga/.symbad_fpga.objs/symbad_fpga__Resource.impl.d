lib/fpga/resource.ml: Fmt
