lib/fpga/context.mli: Format Resource
