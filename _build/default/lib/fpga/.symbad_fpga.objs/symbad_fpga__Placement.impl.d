lib/fpga/placement.ml: Array Context Fmt List Printf Resource String
