(** The dynamically reconfigurable device.

    At most one context is loaded at a time.  {!reconfigure} downloads the
    bitstream over the system bus and programs the fabric; {!require}
    asserts a resource is available, raising {!Inconsistent} otherwise —
    the runtime fault whose static absence SymbC certifies. *)

exception Inconsistent of { resource : string; loaded : string option }

type t

val create :
  ?capacity:int ->
  ?program_ns_per_byte:int ->
  ?burst_bytes:int ->
  contexts:Context.t list ->
  string ->
  t
(** Raises [Invalid_argument] if any context exceeds [capacity].
    [burst_bytes] (default 8, i.e. CPU-driven programmed I/O without a
    DMA engine) is the bus-burst granularity of bitstream downloads:
    each burst is a separately arbitrated bus transaction. *)

val name : t -> string
val capacity : t -> int
val contexts : t -> Context.t list
val loaded : t -> Context.t option
val find_context : t -> string -> Context.t

val reconfigure :
  t -> bus:Symbad_tlm.Bus.t -> master:string -> string -> unit
(** [reconfigure f ~bus ~master ctx] loads context [ctx] (by name) unless
    already loaded: a high-priority bitstream bus transfer followed by
    fabric programming time.  Must be called from a simulation process. *)

val require : t -> string -> unit
(** Assert that the named resource is currently available. *)

val provides_loaded : t -> string -> bool

type stats = {
  reconfigurations : int;
  bitstream_bytes : int;
  reconfig_ns : int;
  resource_calls : int;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
