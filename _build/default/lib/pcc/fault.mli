(** High-level fault model for property-coverage checking.

    Faults are netlist mutations in the bit-coverage spirit: a register
    bit stuck at 0/1, or a mux (branch) selector stuck at a constant. *)

type t =
  | Reg_stuck of { reg : string; bit : int; value : bool }
  | Cond_stuck of { index : int; value : bool }
      (** [index]-th mux selector, in traversal order over register
          next-functions then outputs *)

val to_string : t -> string

val count_muxes : Symbad_hdl.Expr.t -> int
val netlist_muxes : Symbad_hdl.Netlist.t -> int

val enumerate : ?max_reg_bits:int -> Symbad_hdl.Netlist.t -> t list
(** All faults; stuck-at faults are capped at [max_reg_bits] (default 8)
    LSBs per register. *)

val apply : Symbad_hdl.Netlist.t -> t -> Symbad_hdl.Netlist.t
(** The mutated netlist (reset value and next-state function are both
    forced for stuck register bits). *)
