(* High-level fault model for property-coverage checking.

   Faults are netlist mutations in the spirit of the bit-coverage fault
   model: a register bit stuck at 0/1, or a mux (branch) selector stuck
   at a constant.  A fault is "detectable" if some input sequence makes a
   primary output differ from the fault-free design; a property set
   "covers" it if some property fails on the faulty design. *)

module Hdl = Symbad_hdl
module Expr = Symbad_hdl.Expr
module Netlist = Symbad_hdl.Netlist
module Bitvec = Symbad_hdl.Bitvec

type t =
  | Reg_stuck of { reg : string; bit : int; value : bool }
  | Cond_stuck of { index : int; value : bool }
      (* [index]-th mux selector in traversal order over all register
         next-functions then outputs *)

let to_string = function
  | Reg_stuck { reg; bit; value } ->
      Printf.sprintf "%s[%d]/sa%d" reg bit (if value then 1 else 0)
  | Cond_stuck { index; value } ->
      Printf.sprintf "cond%d/stuck-%s" index (if value then "T" else "F")

let rec count_muxes (e : Expr.t) =
  match e with
  | Expr.Const _ | Expr.Input _ | Expr.Reg _ -> 0
  | Expr.Unop (_, a) | Expr.Slice (a, _, _) -> count_muxes a
  | Expr.Binop (_, a, b) | Expr.Concat (a, b) -> count_muxes a + count_muxes b
  | Expr.Mux (s, t, f) -> 1 + count_muxes s + count_muxes t + count_muxes f

let netlist_muxes nl =
  List.fold_left
    (fun acc (r : Netlist.register) -> acc + count_muxes r.Netlist.next)
    0 (Netlist.registers nl)
  + List.fold_left (fun acc (_, e) -> acc + count_muxes e) 0
      (Netlist.outputs nl)

(* Enumerate all faults of a netlist.  [max_reg_bits] caps the stuck-at
   faults taken per register (LSB-first) to keep fault lists proportionate
   on wide datapaths. *)
let enumerate ?(max_reg_bits = 8) nl =
  let reg_faults =
    List.concat_map
      (fun (r : Netlist.register) ->
        let bits = min r.Netlist.width max_reg_bits in
        List.concat_map
          (fun bit ->
            [
              Reg_stuck { reg = r.Netlist.name; bit; value = false };
              Reg_stuck { reg = r.Netlist.name; bit; value = true };
            ])
          (List.init bits (fun i -> i)))
      (Netlist.registers nl)
  in
  let cond_faults =
    List.concat_map
      (fun index ->
        [ Cond_stuck { index; value = false }; Cond_stuck { index; value = true } ])
      (List.init (netlist_muxes nl) (fun i -> i))
  in
  reg_faults @ cond_faults

(* Force bit [bit] of [e] (of width [width]) to [value]. *)
let force_bit e ~width ~bit ~value =
  if value then
    Expr.or_ e (Expr.const ~width (1 lsl bit))
  else
    Expr.and_ e (Expr.const ~width (((1 lsl width) - 1) lxor (1 lsl bit)))

(* Replace the [index]-th mux selector (in traversal order) by a
   constant.  Returns the rewritten expression and the number of muxes
   consumed. *)
let stuck_cond ~index ~value exprs =
  let counter = ref 0 in
  let rec rewrite (e : Expr.t) =
    match e with
    | Expr.Const _ | Expr.Input _ | Expr.Reg _ -> e
    | Expr.Unop (op, a) -> Expr.Unop (op, rewrite a)
    | Expr.Slice (a, hi, lo) -> Expr.Slice (rewrite a, hi, lo)
    | Expr.Binop (op, a, b) -> Expr.Binop (op, rewrite a, rewrite b)
    | Expr.Concat (a, b) -> Expr.Concat (rewrite a, rewrite b)
    | Expr.Mux (s, t, f) ->
        let my_index = !counter in
        incr counter;
        let s = if my_index = index then Expr.const ~width:1 (if value then 1 else 0) else rewrite s in
        Expr.Mux (s, rewrite t, rewrite f)
  in
  List.map rewrite exprs

(* Apply a fault, producing the mutated netlist. *)
let apply nl fault =
  match fault with
  | Reg_stuck { reg; bit; value } ->
      let registers =
        List.map
          (fun (r : Netlist.register) ->
            if String.equal r.Netlist.name reg then begin
              if bit >= r.Netlist.width then
                invalid_arg "Fault.apply: bit out of range";
              let init_v = Bitvec.to_int r.Netlist.init in
              let init_v =
                if value then init_v lor (1 lsl bit)
                else init_v land (lnot (1 lsl bit))
              in
              {
                r with
                Netlist.init = Bitvec.make ~width:r.Netlist.width init_v;
                next =
                  force_bit r.Netlist.next ~width:r.Netlist.width ~bit ~value;
              }
            end
            else r)
          (Netlist.registers nl)
      in
      if not (List.exists (fun (r : Netlist.register) ->
                  String.equal r.Netlist.name reg) registers)
      then invalid_arg ("Fault.apply: no register " ^ reg);
      Netlist.make
        ~name:(Netlist.name nl ^ "#" ^ to_string fault)
        ~inputs:(Netlist.inputs nl) ~registers ~outputs:(Netlist.outputs nl)
  | Cond_stuck { index; value } ->
      let next_exprs =
        List.map (fun (r : Netlist.register) -> r.Netlist.next)
          (Netlist.registers nl)
      in
      let out_exprs = List.map snd (Netlist.outputs nl) in
      let rewritten = stuck_cond ~index ~value (next_exprs @ out_exprs) in
      let n_regs = List.length next_exprs in
      let registers =
        List.mapi
          (fun i (r : Netlist.register) ->
            { r with Netlist.next = List.nth rewritten i })
          (Netlist.registers nl)
      in
      let outputs =
        List.mapi
          (fun i (n, _) -> (n, List.nth rewritten (n_regs + i)))
          (Netlist.outputs nl)
      in
      Netlist.make
        ~name:(Netlist.name nl ^ "#" ^ to_string fault)
        ~inputs:(Netlist.inputs nl) ~registers ~outputs
