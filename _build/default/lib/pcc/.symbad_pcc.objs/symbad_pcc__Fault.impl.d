lib/pcc/fault.ml: List Printf String Symbad_hdl
