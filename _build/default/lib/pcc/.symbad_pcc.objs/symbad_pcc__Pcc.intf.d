lib/pcc/pcc.mli: Fault Format Symbad_hdl Symbad_mc
