lib/pcc/pcc.ml: Fault Fmt List Miter Symbad_hdl Symbad_mc
