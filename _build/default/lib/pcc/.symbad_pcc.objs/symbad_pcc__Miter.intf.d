lib/pcc/miter.mli: Symbad_hdl Symbad_mc
