lib/pcc/fault.mli: Symbad_hdl
