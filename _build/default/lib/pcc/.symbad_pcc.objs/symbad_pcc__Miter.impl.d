lib/pcc/miter.ml: List Printf Symbad_hdl Symbad_mc
