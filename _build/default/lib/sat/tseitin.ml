(* Tseitin gate encodings: build combinational logic directly into a
   solver's clause database.  Each gate returns the literal of a fresh
   variable constrained to equal the gate function.  This is the
   bit-blasting backend used by Symbad_hdl.Unroll and the SAT ATPG
   engine. *)

type ctx = {
  solver : Solver.t;
  lit_true : int; (* literal asserted true, for constant folding *)
}

let create solver =
  let t = Solver.new_var solver in
  Solver.add_clause solver [ t ];
  { solver; lit_true = t }

let solver ctx = ctx.solver
let const_true ctx = ctx.lit_true
let const_false ctx = -ctx.lit_true
let of_bool ctx b = if b then ctx.lit_true else -ctx.lit_true

let fresh ctx = Solver.new_var ctx.solver

let not_gate _ctx a = -a

let and_gate ctx a b =
  if a = b then a
  else if a = -b then const_false ctx
  else if a = ctx.lit_true then b
  else if b = ctx.lit_true then a
  else if a = -ctx.lit_true || b = -ctx.lit_true then const_false ctx
  else begin
    let o = fresh ctx in
    Solver.add_clause ctx.solver [ -o; a ];
    Solver.add_clause ctx.solver [ -o; b ];
    Solver.add_clause ctx.solver [ o; -a; -b ];
    o
  end

let or_gate ctx a b = -and_gate ctx (-a) (-b)

let xor_gate ctx a b =
  if a = b then const_false ctx
  else if a = -b then const_true ctx
  else if a = ctx.lit_true then -b
  else if a = -ctx.lit_true then b
  else if b = ctx.lit_true then -a
  else if b = -ctx.lit_true then a
  else begin
    let o = fresh ctx in
    Solver.add_clause ctx.solver [ -o; a; b ];
    Solver.add_clause ctx.solver [ -o; -a; -b ];
    Solver.add_clause ctx.solver [ o; -a; b ];
    Solver.add_clause ctx.solver [ o; a; -b ];
    o
  end

let iff_gate ctx a b = -xor_gate ctx a b

(* if s then a else b *)
let mux_gate ctx ~sel a b =
  if a = b then a
  else if sel = ctx.lit_true then a
  else if sel = -ctx.lit_true then b
  else begin
    let o = fresh ctx in
    Solver.add_clause ctx.solver [ -o; -sel; a ];
    Solver.add_clause ctx.solver [ -o; sel; b ];
    Solver.add_clause ctx.solver [ o; -sel; -a ];
    Solver.add_clause ctx.solver [ o; sel; -b ];
    o
  end

let and_list ctx = function
  | [] -> const_true ctx
  | l :: ls -> List.fold_left (and_gate ctx) l ls

let or_list ctx = function
  | [] -> const_false ctx
  | l :: ls -> List.fold_left (or_gate ctx) l ls

(* Full adder: returns (sum, carry). *)
let full_adder ctx a b cin =
  let sum = xor_gate ctx (xor_gate ctx a b) cin in
  let carry =
    or_gate ctx (and_gate ctx a b) (and_gate ctx cin (xor_gate ctx a b))
  in
  (sum, carry)

let assert_lit ctx l = Solver.add_clause ctx.solver [ l ]
