lib/sat/tseitin.mli: Solver
