lib/sat/solver.mli:
