lib/sat/tseitin.ml: List Solver
