(** Tseitin gate encodings over a {!Solver} clause database.

    Gates return literals; constants are folded so that circuits built
    over known inputs cost nothing. *)

type ctx

val create : Solver.t -> ctx
val solver : ctx -> Solver.t

val const_true : ctx -> int
val const_false : ctx -> int
val of_bool : ctx -> bool -> int

val fresh : ctx -> int
(** A fresh unconstrained variable (as a positive literal). *)

val not_gate : ctx -> int -> int
val and_gate : ctx -> int -> int -> int
val or_gate : ctx -> int -> int -> int
val xor_gate : ctx -> int -> int -> int
val iff_gate : ctx -> int -> int -> int

val mux_gate : ctx -> sel:int -> int -> int -> int
(** [mux_gate ~sel a b] is [if sel then a else b]. *)

val and_list : ctx -> int list -> int
val or_list : ctx -> int list -> int

val full_adder : ctx -> int -> int -> int -> int * int
(** [(sum, carry)] of a one-bit full adder. *)

val assert_lit : ctx -> int -> unit
(** Constrain a literal to hold. *)
