(** DIMACS CNF interchange. *)

type problem = { nvars : int; clauses : int list list }

val parse_string : string -> problem
(** Parse DIMACS text ([c] comments and the [p cnf] header allowed). *)

val to_string : problem -> string

val load_into : Solver.t -> problem -> unit
(** Allocate missing variables and add all clauses. *)

val solve : problem -> Solver.result
