(* DIMACS CNF interchange, for testing the solver against reference
   instances and dumping problems for inspection. *)

type problem = { nvars : int; clauses : int list list }

let parse_string text =
  let lines = String.split_on_char '\n' text in
  let nvars = ref 0 in
  let clauses = ref [] in
  let current = ref [] in
  let handle_token tok =
    match int_of_string_opt tok with
    | None -> ()
    | Some 0 ->
        clauses := List.rev !current :: !clauses;
        current := []
    | Some l -> current := l :: !current
  in
  List.iter
    (fun line ->
      let line = String.trim line in
      if String.length line = 0 then ()
      else if line.[0] = 'c' then ()
      else if line.[0] = 'p' then begin
        match
          String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
        with
        | [ "p"; "cnf"; nv; _nc ] -> nvars := int_of_string nv
        | _ -> invalid_arg "Dimacs.parse_string: bad problem line"
      end
      else
        String.split_on_char ' ' line
        |> List.filter (fun s -> s <> "")
        |> List.iter handle_token)
    lines;
  if !current <> [] then clauses := List.rev !current :: !clauses;
  { nvars = !nvars; clauses = List.rev !clauses }

let to_string { nvars; clauses } =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" nvars (List.length clauses));
  List.iter
    (fun cl ->
      List.iter (fun l -> Buffer.add_string buf (string_of_int l ^ " ")) cl;
      Buffer.add_string buf "0\n")
    clauses;
  Buffer.contents buf

let load_into solver { nvars; clauses } =
  let have = Solver.nvars solver in
  for _ = have + 1 to nvars do
    ignore (Solver.new_var solver)
  done;
  List.iter (Solver.add_clause solver) clauses

let solve problem =
  let s = Solver.create problem.nvars in
  load_into s problem;
  Solver.solve s
