(** The predefined RTL IPs of level 4: the FPGA-mapped datapaths of the
    case study, the RTL-to-TL handshake wrapper, a FIFO controller, and
    a teaching counter.  Each safety-critical module also has a
    seeded-bug variant used by the verification experiments. *)

val zero : int -> Expr.t
(** All-zero constant of the given width. *)

val zext : Expr.t -> from:int -> to_:int -> Expr.t
(** Zero extension. *)

val shr : Expr.t -> width:int -> by:int -> Expr.t
(** Logical shift right by a constant. *)

val counter : width:int -> Netlist.t
(** Up-counter with [enable]/[clear] inputs and an [at_max] flag. *)

val distance_datapath : ?data_width:int -> ?acc_width:int -> unit -> Netlist.t
(** DISTANCE: streamed sum of squared differences.  Inputs [start]
    (clears the accumulator), [valid], [a], [b]; output [acc]. *)

val distance_datapath_buggy : ?data_width:int -> ?acc_width:int -> unit -> Netlist.t
(** Seeded memory-init error: [start] does not clear the accumulator. *)

val root_datapath : ?width:int -> unit -> Netlist.t
(** ROOT: non-restoring integer square root, one iteration per two
    operand bits.  Inputs [start], [n]; outputs [result], [busy],
    [done].  [width] must be even and >= 4. *)

val root_correctness : width:int -> unit -> Expr.t
(** The functional-correctness invariant of {!root_datapath}:
    [done => res^2 <= n < (res+1)^2], evaluated at [2 * width] bits. *)

val handshake_wrapper : ?data_width:int -> unit -> Netlist.t
(** One-slot RTL-to-TL protocol converter.  Inputs [req], [data],
    [take]; outputs [ack], [valid], [out]. *)

val handshake_wrapper_buggy : ?data_width:int -> unit -> Netlist.t
(** Seeded protocol bug: acknowledges even when full, dropping data. *)

val fifo_ctrl : ?addr_width:int -> unit -> Netlist.t
(** Counter-based FIFO flags for depth [2^addr_width].  Inputs [push],
    [pop]; outputs [full], [empty], [count]. *)

val fifo_ctrl_buggy : ?addr_width:int -> unit -> Netlist.t
(** Seeded off-by-one: [full] asserts one entry late. *)

val sobel_window_datapath : ?pixel_width:int -> unit -> Netlist.t
(** EDGE kernel: combinational Sobel gradient magnitude [|gx| + |gy|]
    over one 3x3 window (inputs [p0..p8], row-major). *)

val min9_datapath : ?pixel_width:int -> unit -> Netlist.t
(** EROSION kernel: combinational 3x3 minimum (inputs [p0..p8]). *)

val argmin_datapath : ?data_width:int -> ?idx_width:int -> unit -> Netlist.t
(** WINNER: streaming argmin FSM.  [start] clears; each [valid] cycle
    consumes one candidate distance [d]; outputs the running minimum
    ([best]), its index ([best_idx]) and the candidate count. *)
