lib/hdl/expr.mli: Bitvec Format
