lib/hdl/unroll.mli: Expr Netlist Symbad_sat
