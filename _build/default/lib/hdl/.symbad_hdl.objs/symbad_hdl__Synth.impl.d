lib/hdl/synth.ml: Bitvec Expr List Netlist Printf Simulator
