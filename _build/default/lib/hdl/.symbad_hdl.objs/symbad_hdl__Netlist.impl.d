lib/hdl/netlist.ml: Bitvec Expr Fmt List Option Printf String
