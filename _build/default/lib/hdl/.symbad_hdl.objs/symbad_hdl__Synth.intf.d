lib/hdl/synth.mli: Expr Netlist
