lib/hdl/simulator.mli: Bitvec Netlist
