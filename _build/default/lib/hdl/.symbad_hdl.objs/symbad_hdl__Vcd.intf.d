lib/hdl/vcd.mli: Bitvec Netlist
