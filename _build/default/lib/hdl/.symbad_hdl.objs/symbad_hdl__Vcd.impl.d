lib/hdl/vcd.ml: Bitvec Buffer Char List Netlist Printf Simulator String
