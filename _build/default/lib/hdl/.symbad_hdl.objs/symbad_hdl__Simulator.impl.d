lib/hdl/simulator.ml: Bitvec Expr List Netlist
