lib/hdl/rtl_lib.mli: Expr Netlist
