lib/hdl/rtl_lib.ml: Bitvec Expr List Netlist Printf
