lib/hdl/bitvec.ml: Fmt Printf
