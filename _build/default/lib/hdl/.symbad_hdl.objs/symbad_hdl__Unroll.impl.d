lib/hdl/unroll.ml: Array Bitvec Expr List Netlist Printf String Symbad_sat
