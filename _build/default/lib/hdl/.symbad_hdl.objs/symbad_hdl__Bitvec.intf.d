lib/hdl/bitvec.mli: Format
