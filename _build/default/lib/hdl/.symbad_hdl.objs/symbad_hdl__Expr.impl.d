lib/hdl/expr.ml: Bitvec Fmt Printf
