lib/hdl/netlist.mli: Bitvec Expr Format
