(* The predefined RTL IPs of level 4.

   "In our test case we can easily support a few pre-defined IPs" — these
   are they: the two FPGA-mapped datapaths of the case study (DISTANCE and
   ROOT), the RTL-to-TL handshake wrapper, and a FIFO controller.  Each
   also comes in a seeded-bug variant used by the ATPG / model-checking /
   PCC experiments to show the verification flow catching real errors. *)

let zero w = Expr.const ~width:w 0

(* zero-extend e (of width [from]) to width [to_]. *)
let zext e ~from ~to_ =
  if to_ < from then invalid_arg "Rtl_lib.zext";
  if to_ = from then e else Expr.concat (zero (to_ - from)) e

let shr e ~width ~by =
  if by = 0 then e
  else Expr.concat (zero by) (Expr.slice e ~hi:(width - 1) ~lo:by)

let bool_and a b = Expr.and_ a b
let bool_not a = Expr.not_ a
let is_zero e ~width = Expr.eq e (zero width)
let tru = Expr.const ~width:1 1

(* --- Simple counter (quickstart / teaching example) ------------------- *)

let counter ~width =
  let count = Expr.reg "count" in
  let next =
    Expr.mux (Expr.input "clear") (zero width)
      (Expr.mux (Expr.input "enable")
         (Expr.add count (Expr.const ~width 1))
         count)
  in
  Netlist.make ~name:(Printf.sprintf "counter%d" width)
    ~inputs:[ ("enable", 1); ("clear", 1) ]
    ~registers:
      [ { Netlist.name = "count"; width; init = Bitvec.zero ~width; next } ]
    ~outputs:
      [
        ("count", count);
        ("at_max", Expr.eq count (Expr.const ~width ((1 lsl width) - 1)));
      ]

(* --- DISTANCE datapath ------------------------------------------------ *)
(* Accumulates (a-b)^2 over a streamed feature vector:
     start: acc <- 0;  valid: acc <- acc + (a-b)^2.
   Arithmetic is done at [acc_width]; because (-d)^2 = d^2 modulo 2^w,
   the zero-extended subtraction squares correctly. *)

let distance_datapath ?(data_width = 8) ?(acc_width = 16) () =
  let aw = acc_width in
  let a = zext (Expr.input "a") ~from:data_width ~to_:aw in
  let b = zext (Expr.input "b") ~from:data_width ~to_:aw in
  let acc = Expr.reg "acc" in
  let diff = Expr.sub a b in
  let sq = Expr.mul diff diff in
  let next =
    Expr.mux (Expr.input "start") (zero aw)
      (Expr.mux (Expr.input "valid") (Expr.add acc sq) acc)
  in
  Netlist.make ~name:"distance"
    ~inputs:[ ("start", 1); ("valid", 1); ("a", data_width); ("b", data_width) ]
    ~registers:
      [ { Netlist.name = "acc"; width = aw; init = Bitvec.zero ~width:aw; next } ]
    ~outputs:[ ("acc", acc) ]

(* Seeded design error: the accumulator is not cleared on [start] — the
   "incorrect memory initialization" class of bug Laerte++ found at
   level 1.  Detectable only by a test that runs two vectors back to
   back. *)
let distance_datapath_buggy ?(data_width = 8) ?(acc_width = 16) () =
  let aw = acc_width in
  let a = zext (Expr.input "a") ~from:data_width ~to_:aw in
  let b = zext (Expr.input "b") ~from:data_width ~to_:aw in
  let acc = Expr.reg "acc" in
  let diff = Expr.sub a b in
  let sq = Expr.mul diff diff in
  let next = Expr.mux (Expr.input "valid") (Expr.add acc sq) acc in
  Netlist.make ~name:"distance_buggy"
    ~inputs:[ ("start", 1); ("valid", 1); ("a", data_width); ("b", data_width) ]
    ~registers:
      [ { Netlist.name = "acc"; width = aw; init = Bitvec.zero ~width:aw; next } ]
    ~outputs:[ ("acc", acc) ]

(* --- ROOT datapath ----------------------------------------------------- *)
(* Non-restoring integer square root, one result bit per two input bits.
   Mirrors Symbad_image.Root.isqrt but with the fixed iteration count a
   hardware implementation uses. *)

let root_datapath ?(width = 8) () =
  let w = width in
  if w < 4 || w mod 2 <> 0 then invalid_arg "Rtl_lib.root_datapath: width";
  let we = w + 2 in
  (* extended width for the subtract/compare *)
  let num = Expr.reg "num"
  and res = Expr.reg "res"
  and bit = Expr.reg "bit"
  and nsave = Expr.reg "nsave"
  and busy = Expr.reg "busy" in
  let start = Expr.input "start" and n = Expr.input "n" in
  let stepping = bool_and busy (bool_not (is_zero bit ~width:w)) in
  let sum = Expr.add (zext res ~from:w ~to_:we) (zext bit ~from:w ~to_:we) in
  let cond = Expr.ule sum (zext num ~from:w ~to_:we) in
  let num_minus =
    Expr.slice (Expr.sub (zext num ~from:w ~to_:we) sum) ~hi:(w - 1) ~lo:0
  in
  let res_half = shr res ~width:w ~by:1 in
  let mux_step yes no = Expr.mux stepping (Expr.mux cond yes no) in
  let next_num =
    Expr.mux start n (mux_step num_minus num num)
  in
  let next_res =
    Expr.mux start (zero w)
      (mux_step (Expr.add res_half bit) res_half res)
  in
  let next_bit =
    Expr.mux start (Expr.const ~width:w (1 lsl (w - 2)))
      (Expr.mux stepping (shr bit ~width:w ~by:2) bit)
  in
  let next_nsave = Expr.mux start n nsave in
  let next_busy =
    Expr.mux start tru (Expr.mux (is_zero bit ~width:w) (zero 1) busy)
  in
  let reg name width init next = { Netlist.name; width; init; next } in
  Netlist.make ~name:"root"
    ~inputs:[ ("start", 1); ("n", w) ]
    ~registers:
      [
        reg "num" w (Bitvec.zero ~width:w) next_num;
        reg "res" w (Bitvec.zero ~width:w) next_res;
        reg "bit" w (Bitvec.zero ~width:w) next_bit;
        reg "nsave" w (Bitvec.zero ~width:w) next_nsave;
        reg "busy" 1 (Bitvec.zero ~width:1) next_busy;
      ]
    ~outputs:
      [
        ("result", res);
        ("busy", busy);
        ("done", bool_and busy (is_zero bit ~width:w));
      ]

(* The "result is really the integer square root" property of the ROOT
   datapath: done => res^2 <= n < (res+1)^2, evaluated at 2w bits. *)
let root_correctness ~width () =
  let w = width in
  let w2 = 2 * w in
  let res = zext (Expr.reg "res") ~from:w ~to_:w2 in
  let n = zext (Expr.reg "nsave") ~from:w ~to_:w2 in
  let done_ =
    bool_and (Expr.reg "busy") (is_zero (Expr.reg "bit") ~width:w)
  in
  let res1 = Expr.add res (Expr.const ~width:w2 1) in
  let lower = Expr.ule (Expr.mul res res) n in
  let upper = Expr.ult n (Expr.mul res1 res1) in
  Expr.or_ (bool_not done_) (bool_and lower upper)

(* --- RTL <-> TL handshake wrapper -------------------------------------- *)
(* One-slot protocol converter: the RTL side offers (req, data); the TL
   side drains with [take].  [ack] pulses when a word is accepted. *)

let handshake_wrapper ?(data_width = 8) () =
  let full = Expr.reg "full" and buf = Expr.reg "buf" in
  let req = Expr.input "req"
  and data = Expr.input "data"
  and take = Expr.input "take" in
  let accept = bool_and req (bool_not full) in
  let drain = bool_and take full in
  let next_full = Expr.mux accept tru (Expr.mux drain (zero 1) full) in
  let next_buf = Expr.mux accept data buf in
  Netlist.make ~name:"wrapper"
    ~inputs:[ ("req", 1); ("data", data_width); ("take", 1) ]
    ~registers:
      [
        { Netlist.name = "full"; width = 1; init = Bitvec.zero ~width:1;
          next = next_full };
        { Netlist.name = "buf"; width = data_width;
          init = Bitvec.zero ~width:data_width; next = next_buf };
      ]
    ~outputs:[ ("ack", accept); ("valid", full); ("out", buf) ]

(* Seeded protocol bug: acknowledges even when full, silently dropping the
   word (the buffered data is overwritten only when not full, so an ack
   without storage loses data). *)
let handshake_wrapper_buggy ?(data_width = 8) () =
  let full = Expr.reg "full" and buf = Expr.reg "buf" in
  let req = Expr.input "req"
  and data = Expr.input "data"
  and take = Expr.input "take" in
  let accept = bool_and req (bool_not full) in
  let drain = bool_and take full in
  let next_full = Expr.mux accept tru (Expr.mux drain (zero 1) full) in
  let next_buf = Expr.mux accept data buf in
  Netlist.make ~name:"wrapper_buggy"
    ~inputs:[ ("req", 1); ("data", data_width); ("take", 1) ]
    ~registers:
      [
        { Netlist.name = "full"; width = 1; init = Bitvec.zero ~width:1;
          next = next_full };
        { Netlist.name = "buf"; width = data_width;
          init = Bitvec.zero ~width:data_width; next = next_buf };
      ]
    ~outputs:[ ("ack", req); ("valid", full); ("out", buf) ]

(* --- FIFO controller ---------------------------------------------------- *)
(* Counter-based flags for a FIFO of depth 2^addr_width. *)

let fifo_ctrl ?(addr_width = 3) () =
  let cw = addr_width + 1 in
  let depth = 1 lsl addr_width in
  let count = Expr.reg "count" in
  let full = Expr.eq count (Expr.const ~width:cw depth) in
  let empty = is_zero count ~width:cw in
  let push_ok = bool_and (Expr.input "push") (bool_not full) in
  let pop_ok = bool_and (Expr.input "pop") (bool_not empty) in
  let next =
    Expr.sub
      (Expr.add count (zext push_ok ~from:1 ~to_:cw))
      (zext pop_ok ~from:1 ~to_:cw)
  in
  Netlist.make ~name:"fifo_ctrl"
    ~inputs:[ ("push", 1); ("pop", 1) ]
    ~registers:
      [ { Netlist.name = "count"; width = cw; init = Bitvec.zero ~width:cw;
          next } ]
    ~outputs:[ ("full", full); ("empty", empty); ("count", count) ]

(* Seeded off-by-one: full asserts one entry late, so a push at
   count = depth overflows the storage. *)
let fifo_ctrl_buggy ?(addr_width = 3) () =
  let cw = addr_width + 1 in
  let depth = 1 lsl addr_width in
  let count = Expr.reg "count" in
  let full = Expr.eq count (Expr.const ~width:cw (depth + 1)) in
  let empty = is_zero count ~width:cw in
  let push_ok = bool_and (Expr.input "push") (bool_not full) in
  let pop_ok = bool_and (Expr.input "pop") (bool_not empty) in
  let next =
    Expr.sub
      (Expr.add count (zext push_ok ~from:1 ~to_:cw))
      (zext pop_ok ~from:1 ~to_:cw)
  in
  Netlist.make ~name:"fifo_ctrl_buggy"
    ~inputs:[ ("push", 1); ("pop", 1) ]
    ~registers:
      [ { Netlist.name = "count"; width = cw; init = Bitvec.zero ~width:cw;
          next } ]
    ~outputs:[ ("full", full); ("empty", empty); ("count", count) ]

(* --- EDGE: Sobel gradient magnitude (|gx| + |gy|), combinational ------- *)
(* One 3x3 window per evaluation, pixel inputs p0..p8 row-major.  The
   unsigned IR has no negative numbers, so |a - b| is computed as
   mux(a < b, b - a, a - b). *)

let sobel_window_datapath ?(pixel_width = 8) () =
  let w = pixel_width + 4 in
  (* headroom for the weighted sums *)
  let p i = zext (Expr.input (Printf.sprintf "p%d" i)) ~from:pixel_width ~to_:w in
  let ( + ) = Expr.add and ( * ) k e = Expr.mul (Expr.const ~width:w k) e in
  let abs_diff a b =
    Expr.mux (Expr.ult a b) (Expr.sub b a) (Expr.sub a b)
  in
  (* gx = (p2 + 2 p5 + p8) - (p0 + 2 p3 + p6); gy likewise transposed *)
  let gx_pos = p 2 + (2 * p 5) + p 8 and gx_neg = p 0 + (2 * p 3) + p 6 in
  let gy_pos = p 6 + (2 * p 7) + p 8 and gy_neg = p 0 + (2 * p 1) + p 2 in
  let magnitude = abs_diff gx_pos gx_neg + abs_diff gy_pos gy_neg in
  Netlist.make ~name:"sobel_window"
    ~inputs:(List.init 9 (fun i -> (Printf.sprintf "p%d" i, pixel_width)))
    ~registers:[]
    ~outputs:[ ("magnitude", magnitude) ]

(* --- EROSION: 3x3 minimum, combinational ------------------------------ *)

let min9_datapath ?(pixel_width = 8) () =
  let p i = Expr.input (Printf.sprintf "p%d" i) in
  let min2 a b = Expr.mux (Expr.ult a b) a b in
  let rec tree = function
    | [] -> invalid_arg "min9"
    | [ x ] -> x
    | x :: y :: rest -> tree (min2 x y :: rest)
  in
  Netlist.make ~name:"min9"
    ~inputs:(List.init 9 (fun i -> (Printf.sprintf "p%d" i, pixel_width)))
    ~registers:[]
    ~outputs:[ ("minimum", tree (List.init 9 p)) ]

(* --- WINNER: streaming argmin FSM -------------------------------------- *)
(* start clears; each valid cycle streams one candidate distance; the
   running minimum and its index are registered.  [idx_width] bounds the
   candidate count. *)

let argmin_datapath ?(data_width = 10) ?(idx_width = 5) () =
  let best = Expr.reg "best"
  and best_idx = Expr.reg "best_idx"
  and count = Expr.reg "count" in
  let start = Expr.input "start"
  and valid = Expr.input "valid"
  and d = Expr.input "d" in
  let better = Expr.ult d best in
  let max_d = Bitvec.ones ~width:data_width in
  let next_best =
    Expr.mux start (Expr.Const max_d)
      (Expr.mux (Expr.and_ valid better) d best)
  in
  let next_best_idx =
    Expr.mux start (zero idx_width)
      (Expr.mux (Expr.and_ valid better) count best_idx)
  in
  let next_count =
    Expr.mux start (zero idx_width)
      (Expr.mux valid (Expr.add count (Expr.const ~width:idx_width 1)) count)
  in
  Netlist.make ~name:"argmin"
    ~inputs:[ ("start", 1); ("valid", 1); ("d", data_width) ]
    ~registers:
      [
        { Netlist.name = "best"; width = data_width; init = max_d;
          next = next_best };
        { Netlist.name = "best_idx"; width = idx_width;
          init = Bitvec.zero ~width:idx_width; next = next_best_idx };
        { Netlist.name = "count"; width = idx_width;
          init = Bitvec.zero ~width:idx_width; next = next_count };
      ]
    ~outputs:[ ("best", best); ("best_idx", best_idx); ("count", count) ]
