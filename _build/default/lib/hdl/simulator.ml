(* Cycle-accurate netlist simulation. *)

type state = (string * Bitvec.t) list
(* register name -> value *)

type t = { netlist : Netlist.t; mutable state : state; mutable cycle : int }

let initial_state nl =
  List.map
    (fun (r : Netlist.register) -> (r.Netlist.name, r.Netlist.init))
    (Netlist.registers nl)

let create nl = { netlist = nl; state = initial_state nl; cycle = 0 }

let reset t =
  t.state <- initial_state t.netlist;
  t.cycle <- 0

let state t = t.state
let cycle t = t.cycle

let set_state t state = t.state <- state

let lookup env n =
  match List.assoc_opt n env with
  | Some v -> v
  | None -> invalid_arg ("Simulator: unbound signal " ^ n)

let eval_in ~inputs ~state e =
  Expr.eval ~input:(lookup inputs) ~reg:(lookup state) e

(* Evaluate all outputs for the current state and the given inputs. *)
let outputs t ~inputs =
  List.map
    (fun (n, e) -> (n, eval_in ~inputs ~state:t.state e))
    (Netlist.outputs t.netlist)

let output t ~inputs name =
  match Netlist.find_output t.netlist name with
  | None -> invalid_arg ("Simulator.output: no output " ^ name)
  | Some e -> eval_in ~inputs ~state:t.state e

(* One clock edge: compute every register's next value from the current
   state, then commit simultaneously. *)
let step t ~inputs =
  let next =
    List.map
      (fun (r : Netlist.register) ->
        (r.Netlist.name, eval_in ~inputs ~state:t.state r.Netlist.next))
      (Netlist.registers t.netlist)
  in
  t.state <- next;
  t.cycle <- t.cycle + 1

(* Run a stimulus: list of input valuations, one per cycle; returns the
   outputs observed at each cycle (before the clock edge). *)
let run t stimulus =
  List.map
    (fun inputs ->
      let outs = outputs t ~inputs in
      step t ~inputs;
      outs)
    stimulus
