(* Fixed-width bit vectors (1..62 bits), value semantics, wraparound
   arithmetic — the value domain of the RTL IR. *)

type t = { value : int; width : int }

let max_width = 62

let mask width = (1 lsl width) - 1

let make ~width value =
  if width < 1 || width > max_width then invalid_arg "Bitvec.make: width";
  { value = value land mask width; width }

let zero ~width = make ~width 0
let one ~width = make ~width 1
let ones ~width = make ~width (mask width)

let width v = v.width
let to_int v = v.value

let check2 a b name =
  if a.width <> b.width then
    invalid_arg (Printf.sprintf "Bitvec.%s: width mismatch %d vs %d" name
                   a.width b.width)

let add a b = check2 a b "add"; make ~width:a.width (a.value + b.value)
let sub a b = check2 a b "sub"; make ~width:a.width (a.value - b.value)
let mul a b = check2 a b "mul"; make ~width:a.width (a.value * b.value)
let logand a b = check2 a b "logand"; make ~width:a.width (a.value land b.value)
let logor a b = check2 a b "logor"; make ~width:a.width (a.value lor b.value)
let logxor a b = check2 a b "logxor"; make ~width:a.width (a.value lxor b.value)
let lognot a = make ~width:a.width (lnot a.value)
let neg a = make ~width:a.width (-a.value)

let equal a b = check2 a b "equal"; a.value = b.value
let ult a b = check2 a b "ult"; a.value < b.value

let shift_left a n =
  if n < 0 then invalid_arg "Bitvec.shift_left";
  make ~width:a.width (a.value lsl n)

let shift_right_logical a n =
  if n < 0 then invalid_arg "Bitvec.shift_right_logical";
  make ~width:a.width (a.value lsr n)

let bit a i =
  if i < 0 || i >= a.width then invalid_arg "Bitvec.bit";
  (a.value lsr i) land 1 = 1

let slice a ~hi ~lo =
  if lo < 0 || hi < lo || hi >= a.width then invalid_arg "Bitvec.slice";
  make ~width:(hi - lo + 1) (a.value lsr lo)

let concat hi lo =
  let w = hi.width + lo.width in
  if w > max_width then invalid_arg "Bitvec.concat: too wide";
  make ~width:w ((hi.value lsl lo.width) lor lo.value)

let extend a ~width:w =
  if w < a.width then invalid_arg "Bitvec.extend: narrower";
  make ~width:w a.value

let pp fmt v = Fmt.pf fmt "%d'd%d" v.width v.value
let to_string v = Fmt.str "%a" pp v
