(** A small behavioural-synthesis front end: elaborate SSA dataflow
    descriptions into combinational or registered netlists. *)

type dataflow = {
  df_name : string;
  df_inputs : (string * int) list;
  df_defs : (string * Expr.t) list;
      (** SSA definitions; reference earlier defs via [Expr.Reg] *)
  df_outputs : (string * string) list;  (** output name -> def or input *)
}

val combinational : dataflow -> Netlist.t
(** Inline the defs into the outputs; raises [Invalid_argument] on
    unknown references or width errors. *)

val registered : dataflow -> Netlist.t
(** The same dataflow with input and output registers (two-cycle
    latency), for bus-clock integration. *)

val equivalent_to_oracle :
  ?max_input_bits:int ->
  Netlist.t ->
  ((string * int) list -> (string * int) list) ->
  bool option
(** Exhaustive equivalence of a combinational netlist against an OCaml
    oracle over the full input space; [None] when the space exceeds
    [2^max_input_bits] (default 16). *)
