(** Cycle-accurate netlist simulation. *)

type state = (string * Bitvec.t) list
(** Register name to value. *)

type t

val create : Netlist.t -> t
(** Simulator in the reset state. *)

val reset : t -> unit
val state : t -> state
val cycle : t -> int
(** Clock edges executed so far. *)

val set_state : t -> state -> unit

val outputs : t -> inputs:(string * Bitvec.t) list -> (string * Bitvec.t) list
(** Combinational outputs for the current state and the given inputs. *)

val output : t -> inputs:(string * Bitvec.t) list -> string -> Bitvec.t

val step : t -> inputs:(string * Bitvec.t) list -> unit
(** One clock edge: all registers update simultaneously. *)

val run :
  t ->
  (string * Bitvec.t) list list ->
  (string * Bitvec.t) list list
(** Apply a stimulus (one input valuation per cycle); returns the outputs
    observed before each edge. *)
