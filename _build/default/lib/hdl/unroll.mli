(** Bounded unrolling of a netlist into CNF (bit-blasting) — the engine
    room of BMC, k-induction and the SAT ATPG engine.

    Expressions elaborate to literal arrays, LSB first.  Frame 0
    registers are constrained to their reset values ({!Reset}) or left
    free ({!Free}, for the inductive step). *)

type t

type init_mode = Reset | Free

type frame = {
  input_bits : (string * int array) list;
  reg_bits : (string * int array) list;
}

val create : ?init:init_mode -> Symbad_sat.Solver.t -> Netlist.t -> t
(** One frame (state 0) exists initially. *)

val ctx : t -> Symbad_sat.Tseitin.ctx
val netlist : t -> Netlist.t
val nframes : t -> int

val unroll_to : t -> int -> unit
(** Ensure at least [n] frames (states 0..n-1) exist, adding transition
    constraints. *)

val frame : t -> int -> frame

val expr_lits : t -> int -> Expr.t -> int array
(** Literals of an expression at frame [i] (width-checked). *)

val expr_lits_step : t -> int -> Expr.t -> int array
(** Like {!expr_lits}, but register names ending in ['] read from frame
    [i + 1] (two-state properties).  Both frames must exist. *)

val bool_lit : t -> int -> Expr.t -> int
(** Single literal of a width-1 expression at frame [i]. *)

val bool_lit_step : t -> int -> Expr.t -> int

val bits_value : Symbad_sat.Solver.t -> int array -> int
(** Read a literal array back from a satisfying model. *)

val input_value : Symbad_sat.Solver.t -> t -> int -> string -> int
val reg_value : Symbad_sat.Solver.t -> t -> int -> string -> int
