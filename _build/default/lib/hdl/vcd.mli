(** VCD (Value Change Dump) emission for netlist simulations, consumable
    by standard waveform viewers. *)

type t

val create : ?timescale_ns:int -> Netlist.t -> t
(** Tracks every input and register of the netlist (default timescale
    10 ns = one 100 MHz cycle). *)

val emit_header : t -> module_name:string -> unit

val sample : t -> cycle:int -> (string * int) list -> unit
(** Record the given signal values at a cycle; only changes are dumped.
    Requires {!emit_header} first. *)

val contents : t -> string

val of_simulation :
  ?timescale_ns:int ->
  Netlist.t ->
  (string * Bitvec.t) list list ->
  string
(** Simulate a stimulus and return the complete VCD text. *)
