(** Fixed-width bit vectors (1..62 bits) with wraparound arithmetic —
    the value domain of the RTL IR. *)

type t

val max_width : int

val make : width:int -> int -> t
(** [make ~width v] truncates [v] to [width] bits. *)

val zero : width:int -> t
val one : width:int -> t
val ones : width:int -> t

val width : t -> int
val to_int : t -> int

val add : t -> t -> t
(** Equal widths required (also for the other binary operations). *)

val sub : t -> t -> t
val mul : t -> t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t
val neg : t -> t

val equal : t -> t -> bool
val ult : t -> t -> bool
(** Unsigned less-than. *)

val shift_left : t -> int -> t
val shift_right_logical : t -> int -> t

val bit : t -> int -> bool
val slice : t -> hi:int -> lo:int -> t
(** Bits [hi..lo] inclusive, as a [(hi - lo + 1)]-bit vector. *)

val concat : t -> t -> t
(** [concat hi lo]. *)

val extend : t -> width:int -> t
(** Zero extension. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
