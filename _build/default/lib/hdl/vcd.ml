(* VCD (Value Change Dump) emission for netlist simulations, so waveform
   viewers (GTKWave etc.) can inspect the RTL runs. *)

type signal = { name : string; width : int; id : string }

type t = {
  buffer : Buffer.t;
  signals : signal list;
  mutable last : (string * int) list;  (* signal name -> last dumped value *)
  mutable headered : bool;
  timescale_ns : int;
}

(* VCD identifier characters: printable ASCII 33..126. *)
let id_of_index i =
  let base = 94 in
  let rec go i acc =
    let c = Char.chr (33 + (i mod base)) in
    let acc = String.make 1 c ^ acc in
    if i < base then acc else go ((i / base) - 1) acc
  in
  go i ""

let create ?(timescale_ns = 10) nl =
  let signals =
    List.mapi
      (fun i (name, width) -> { name; width; id = id_of_index i })
      (List.map (fun (n, w) -> (n, w)) (Netlist.inputs nl)
      @ List.map
          (fun (r : Netlist.register) -> (r.Netlist.name, r.Netlist.width))
          (Netlist.registers nl))
  in
  {
    buffer = Buffer.create 1024;
    signals;
    last = [];
    headered = false;
    timescale_ns;
  }

let emit_header t ~module_name =
  Buffer.add_string t.buffer "$date synthetic $end\n";
  Buffer.add_string t.buffer "$version symbad $end\n";
  Buffer.add_string t.buffer
    (Printf.sprintf "$timescale %dns $end\n" t.timescale_ns);
  Buffer.add_string t.buffer
    (Printf.sprintf "$scope module %s $end\n" module_name);
  List.iter
    (fun s ->
      Buffer.add_string t.buffer
        (Printf.sprintf "$var wire %d %s %s $end\n" s.width s.id s.name))
    t.signals;
  Buffer.add_string t.buffer "$upscope $end\n$enddefinitions $end\n";
  t.headered <- true

let binary_of value width =
  String.init width (fun i ->
      if (value lsr (width - 1 - i)) land 1 = 1 then '1' else '0')

let dump_value t s value =
  if s.width = 1 then
    Buffer.add_string t.buffer (Printf.sprintf "%d%s\n" (value land 1) s.id)
  else
    Buffer.add_string t.buffer
      (Printf.sprintf "b%s %s\n" (binary_of value s.width) s.id)

(* Record the signal values at one cycle; only changes are dumped. *)
let sample t ~cycle values =
  if not t.headered then invalid_arg "Vcd.sample: emit_header first";
  Buffer.add_string t.buffer (Printf.sprintf "#%d\n" (cycle * t.timescale_ns));
  List.iter
    (fun s ->
      match List.assoc_opt s.name values with
      | None -> ()
      | Some v ->
          let changed =
            match List.assoc_opt s.name t.last with
            | Some old -> old <> v
            | None -> true
          in
          if changed then begin
            dump_value t s v;
            t.last <- (s.name, v) :: List.remove_assoc s.name t.last
          end)
    t.signals

let contents t = Buffer.contents t.buffer

(* Convenience: simulate a stimulus and return the VCD text. *)
let of_simulation ?timescale_ns nl stimulus =
  let vcd = create ?timescale_ns nl in
  emit_header vcd ~module_name:(Netlist.name nl);
  let sim = Simulator.create nl in
  List.iteri
    (fun cycle inputs ->
      let values =
        List.map (fun (n, v) -> (n, Bitvec.to_int v)) inputs
        @ List.map (fun (n, v) -> (n, Bitvec.to_int v)) (Simulator.state sim)
      in
      sample vcd ~cycle values;
      Simulator.step sim ~inputs)
    stimulus;
  contents vcd
