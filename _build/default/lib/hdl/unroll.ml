(* Bounded unrolling of a netlist into CNF (bit-blasting), the engine
   room of SAT-based model checking (BMC and k-induction) and of the SAT
   ATPG engine.

   Every expression elaborates to an array of literals, LSB first.
   Frame 0 registers are either constrained to their reset values (BMC)
   or left free (the inductive step of k-induction). *)

module Solver = Symbad_sat.Solver
module Tseitin = Symbad_sat.Tseitin

type frame = {
  input_bits : (string * int array) list;
  reg_bits : (string * int array) list;
}

type init_mode = Reset | Free

type t = {
  ctx : Tseitin.ctx;
  netlist : Netlist.t;
  mutable frames : frame array;
  mutable nframes : int;
}

let fresh_bits ctx w = Array.init w (fun _ -> Tseitin.fresh ctx)

let const_bits ctx v =
  Array.init (Bitvec.width v) (fun i -> Tseitin.of_bool ctx (Bitvec.bit v i))

(* Ripple-carry a + b + cin; returns (sum bits, carry out). *)
let adder ctx a b cin =
  let w = Array.length a in
  let sum = Array.make w (Tseitin.const_false ctx) in
  let carry = ref cin in
  for i = 0 to w - 1 do
    let s, c = Tseitin.full_adder ctx a.(i) b.(i) !carry in
    sum.(i) <- s;
    carry := c
  done;
  (sum, !carry)

let rec blast ctx ~input ~reg (e : Expr.t) : int array =
  let recur e = blast ctx ~input ~reg e in
  match e with
  | Expr.Const v -> const_bits ctx v
  | Expr.Input n -> input n
  | Expr.Reg n -> reg n
  | Expr.Unop (Expr.Not, a) -> Array.map (fun l -> -l) (recur a)
  | Expr.Unop (Expr.Neg, a) ->
      let a = recur a in
      let nb = Array.map (fun l -> -l) a in
      let zero = Array.make (Array.length a) (Tseitin.const_false ctx) in
      fst (adder ctx zero nb (Tseitin.const_true ctx))
  | Expr.Binop (Expr.Add, a, b) ->
      fst (adder ctx (recur a) (recur b) (Tseitin.const_false ctx))
  | Expr.Binop (Expr.Sub, a, b) ->
      let nb = Array.map (fun l -> -l) (recur b) in
      fst (adder ctx (recur a) nb (Tseitin.const_true ctx))
  | Expr.Binop (Expr.Mul, a, b) ->
      let a = recur a and b = recur b in
      let w = Array.length a in
      let acc = ref (Array.make w (Tseitin.const_false ctx)) in
      for i = 0 to w - 1 do
        (* partial product: (b << i) gated by a.(i) *)
        let partial =
          Array.init w (fun j ->
              if j < i then Tseitin.const_false ctx
              else Tseitin.and_gate ctx a.(i) b.(j - i))
        in
        acc := fst (adder ctx !acc partial (Tseitin.const_false ctx))
      done;
      !acc
  | Expr.Binop (Expr.And, a, b) ->
      Array.map2 (Tseitin.and_gate ctx) (recur a) (recur b)
  | Expr.Binop (Expr.Or, a, b) ->
      Array.map2 (Tseitin.or_gate ctx) (recur a) (recur b)
  | Expr.Binop (Expr.Xor, a, b) ->
      Array.map2 (Tseitin.xor_gate ctx) (recur a) (recur b)
  | Expr.Binop (Expr.Eq, a, b) ->
      let bits = Array.map2 (Tseitin.iff_gate ctx) (recur a) (recur b) in
      [| Tseitin.and_list ctx (Array.to_list bits) |]
  | Expr.Binop (Expr.Ult, a, b) ->
      (* a < b  iff  no carry out of a + ~b + 1 *)
      let nb = Array.map (fun l -> -l) (recur b) in
      let _, carry = adder ctx (recur a) nb (Tseitin.const_true ctx) in
      [| -carry |]
  | Expr.Binop (Expr.Ule, a, b) ->
      (* a <= b  iff  not (b < a)  iff  carry out of b + ~a + 1 is 0... *)
      let na = Array.map (fun l -> -l) (recur a) in
      let _, carry = adder ctx (recur b) na (Tseitin.const_true ctx) in
      [| carry |]
  | Expr.Mux (sel, t, f) -> (
      match recur sel with
      | [| s |] -> Array.map2 (fun a b -> Tseitin.mux_gate ctx ~sel:s a b)
                     (recur t) (recur f)
      | _ -> invalid_arg "Unroll: mux selector must be 1 bit")
  | Expr.Slice (a, hi, lo) -> Array.sub (recur a) lo (hi - lo + 1)
  | Expr.Concat (hi, lo) -> Array.append (recur lo) (recur hi)

let frame_env (f : frame) =
  let input n =
    match List.assoc_opt n f.input_bits with
    | Some bits -> bits
    | None -> invalid_arg ("Unroll: unknown input " ^ n)
  and reg n =
    match List.assoc_opt n f.reg_bits with
    | Some bits -> bits
    | None -> invalid_arg ("Unroll: unknown register " ^ n)
  in
  (input, reg)

let make_frame0 ctx nl mode =
  let input_bits =
    List.map (fun (n, w) -> (n, fresh_bits ctx w)) (Netlist.inputs nl)
  in
  let reg_bits =
    List.map
      (fun (r : Netlist.register) ->
        match mode with
        | Reset -> (r.Netlist.name, const_bits ctx r.Netlist.init)
        | Free -> (r.Netlist.name, fresh_bits ctx r.Netlist.width))
      (Netlist.registers nl)
  in
  { input_bits; reg_bits }

let create ?(init = Reset) solver nl =
  let ctx = Tseitin.create solver in
  let f0 = make_frame0 ctx nl init in
  { ctx; netlist = nl; frames = Array.make 4 f0; nframes = 1 }

let ctx t = t.ctx
let netlist t = t.netlist
let nframes t = t.nframes

let push_frame t f =
  if t.nframes = Array.length t.frames then begin
    let a = Array.make (2 * t.nframes) f in
    Array.blit t.frames 0 a 0 t.nframes;
    t.frames <- a
  end;
  t.frames.(t.nframes) <- f;
  t.nframes <- t.nframes + 1

(* Add transition frames until at least [n] frames (states 0..n-1) exist. *)
let unroll_to t n =
  while t.nframes < n do
    let prev = t.frames.(t.nframes - 1) in
    let input, reg = frame_env prev in
    let input_bits =
      List.map
        (fun (nm, w) -> (nm, fresh_bits t.ctx w))
        (Netlist.inputs t.netlist)
    in
    let reg_bits =
      List.map
        (fun (r : Netlist.register) ->
          (r.Netlist.name, blast t.ctx ~input ~reg r.Netlist.next))
        (Netlist.registers t.netlist)
    in
    push_frame t { input_bits; reg_bits }
  done

let frame t i =
  if i < 0 || i >= t.nframes then invalid_arg "Unroll.frame: out of range";
  t.frames.(i)

(* Literals of an arbitrary (width-checked) expression at frame [i]. *)
let expr_lits t i e =
  ignore (Netlist.expr_width t.netlist e);
  let input, reg = frame_env (frame t i) in
  blast t.ctx ~input ~reg e

(* Literals of an expression that may reference primed registers
   (names ending in [']), which read from frame [i + 1].  Both frames
   must already exist. *)
let expr_lits_step t i e =
  let input, reg_cur = frame_env (frame t i) in
  let _, reg_next = frame_env (frame t (i + 1)) in
  let reg n =
    if String.length n > 0 && n.[String.length n - 1] = '\'' then
      reg_next (String.sub n 0 (String.length n - 1))
    else reg_cur n
  in
  blast t.ctx ~input ~reg e

let bool_lit_step t i e =
  match expr_lits_step t i e with
  | [| l |] -> l
  | bits ->
      invalid_arg
        (Printf.sprintf "Unroll.bool_lit_step: expression has width %d"
           (Array.length bits))

(* One-bit expression at frame [i], as a single literal. *)
let bool_lit t i e =
  match expr_lits t i e with
  | [| l |] -> l
  | bits ->
      invalid_arg
        (Printf.sprintf "Unroll.bool_lit: expression has width %d"
           (Array.length bits))

(* Read back a value from the model after a Sat answer. *)
let bits_value solver bits =
  let v = ref 0 in
  Array.iteri
    (fun i l ->
      let b =
        if l > 0 then Solver.model_value solver l
        else not (Solver.model_value solver (-l))
      in
      if b then v := !v lor (1 lsl i))
    bits;
  !v

let input_value solver t i name =
  match List.assoc_opt name (frame t i).input_bits with
  | Some bits -> bits_value solver bits
  | None -> invalid_arg ("Unroll.input_value: " ^ name)

let reg_value solver t i name =
  match List.assoc_opt name (frame t i).reg_bits with
  | Some bits -> bits_value solver bits
  | None -> invalid_arg ("Unroll.reg_value: " ^ name)
