(** Synchronous netlists — the RTL carrier of level 4.

    A netlist has inputs, registers (reset value + next-state
    expression) and named combinational outputs.  The model checker, the
    property-coverage checker and the fault injector all operate on this
    representation. *)

type register = {
  name : string;
  width : int;
  init : Bitvec.t;  (** reset value *)
  next : Expr.t;  (** next-state function *)
}

type t

val make :
  name:string ->
  inputs:(string * int) list ->
  registers:register list ->
  outputs:(string * Expr.t) list ->
  t
(** Elaborates and validates: unique names, consistent widths everywhere.
    Raises [Invalid_argument] on violations. *)

val name : t -> string
val inputs : t -> (string * int) list
val registers : t -> register list
val outputs : t -> (string * Expr.t) list

val input_width : string -> t -> int option
val reg_width : string -> t -> int option

val expr_width : t -> Expr.t -> int
(** Width of an expression in this netlist's context. *)

val find_register : t -> string -> register option
val find_output : t -> string -> Expr.t option

val area : t -> int
(** Gate-count proxy used as the FPGA-mapping area estimate. *)

val pp : Format.formatter -> t -> unit
