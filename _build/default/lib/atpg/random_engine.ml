(* Baseline engine: uniformly random test vectors (deterministic PRNG). *)

module Rng = Symbad_image.Rng

let generate ?(seed = 1) ~count model =
  let rng = Rng.create seed in
  let widths = Array.of_list (List.map snd model.Model.inputs) in
  List.init count (fun _ ->
      Array.map (fun w -> Rng.int rng (1 lsl w)) widths)
