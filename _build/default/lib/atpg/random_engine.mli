(** Baseline engine: uniformly random test vectors (deterministic). *)

val generate : ?seed:int -> count:int -> Model.t -> Model.test list
