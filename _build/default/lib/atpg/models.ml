(* Instrumented behavioural models of the case-study hot spots, as a
   Laerte++ user would write them: every statement, branch arm, condition
   value and output bit is a declared coverage point, and each model
   carries a high-level fault list (output bits stuck, plus semantic
   faults such as an uninitialised accumulator — the memory-init error
   class the paper reports finding at level 1). *)

let fault fid = { Model.fid }

let stuck_output_faults ~width =
  List.concat_map
    (fun i -> [ fault (Printf.sprintf "out[%d]/sa0" i);
                fault (Printf.sprintf "out[%d]/sa1" i) ])
    (List.init width (fun i -> i))

(* Apply "out[i]/saV" faults to an output word. *)
let apply_output_fault ?fault:f ~width value =
  match f with
  | None -> value
  | Some { Model.fid } -> (
      try
        Scanf.sscanf fid "out[%d]/sa%d" (fun bit v ->
            if bit >= width then value
            else if v = 1 then value lor (1 lsl bit)
            else value land (lnot (1 lsl bit)))
      with Scanf.Scan_failure _ | End_of_file -> value)

(* --- ROOT: integer square root --------------------------------------- *)

let root ?(width = 12) () =
  let out_width = (width / 2) + 1 in
  let universe =
    [
      Coverage.Stmt "init";
      Coverage.Stmt "loop";
      Coverage.Stmt "done";
      Coverage.Branch ("zero", true);
      Coverage.Branch ("zero", false);
      Coverage.Cond ("ge", true);
      Coverage.Cond ("ge", false);
    ]
    @ List.concat_map
        (fun i -> [ Coverage.Bit ("res", i, false); Coverage.Bit ("res", i, true) ])
        (List.init out_width (fun i -> i))
  in
  let faults =
    stuck_output_faults ~width:out_width
    @ [ fault "skip-last-iter"; fault "wrong-init-bit" ]
  in
  let run ?cover ?fault:f inputs =
    let n = inputs.(0) in
    let mark g = match cover with None -> () | Some c -> g c in
    mark (fun c -> Coverage.stmt c "init");
    let skip_last = match f with Some { Model.fid = "skip-last-iter" } -> true | _ -> false in
    let wrong_init = match f with Some { Model.fid = "wrong-init-bit" } -> true | _ -> false in
    let res =
      if n = 0 then begin
        mark (fun c -> Coverage.branch c "zero" true);
        0
      end
      else begin
        mark (fun c -> Coverage.branch c "zero" false);
        let bit = ref 1 in
        while !bit <= n / 4 do
          bit := !bit * 4
        done;
        if wrong_init then bit := max 1 (!bit / 4);
        let num = ref n and res = ref 0 in
        while !bit <> 0 && not (skip_last && !bit = 1) do
          mark (fun c -> Coverage.stmt c "loop");
          let ge = !num >= !res + !bit in
          mark (fun c -> Coverage.cond c "ge" ge);
          if ge then begin
            num := !num - (!res + !bit);
            res := (!res / 2) + !bit
          end
          else res := !res / 2;
          bit := !bit / 4
        done;
        if skip_last then res := !res / 2;
        !res
      end
    in
    mark (fun c -> Coverage.stmt c "done");
    let out = apply_output_fault ?fault:f ~width:out_width res in
    mark (fun c -> Coverage.out_bits c "res" ~width:out_width out);
    [| out |]
  in
  {
    Model.name = "ROOT";
    inputs = [ ("n", width) ];
    universe;
    faults;
    run;
  }

(* --- DISTANCE: squared distance with saturation ------------------------ *)

let distance ?(elements = 4) ?(data_width = 8) ?(acc_width = 16) () =
  let sat_max = (1 lsl acc_width) - 1 in
  let universe =
    [
      Coverage.Stmt "clear";
      Coverage.Stmt "mac";
      Coverage.Branch ("saturate", true);
      Coverage.Branch ("saturate", false);
    ]
    @ List.concat_map
        (fun i -> [ Coverage.Bit ("acc", i, false); Coverage.Bit ("acc", i, true) ])
        (List.init acc_width (fun i -> i))
  in
  let faults =
    stuck_output_faults ~width:acc_width
    @ [ fault "uninit-acc"; fault "drop-last-element" ]
  in
  let run ?cover ?fault:f inputs =
    let mark g = match cover with None -> () | Some c -> g c in
    let uninit = match f with Some { Model.fid = "uninit-acc" } -> true | _ -> false in
    let drop_last = match f with Some { Model.fid = "drop-last-element" } -> true | _ -> false in
    mark (fun c -> Coverage.stmt c "clear");
    (* the memory-init design error: accumulator starts at stale garbage *)
    let acc = ref (if uninit then 0x2A else 0) in
    let n = if drop_last then elements - 1 else elements in
    for i = 0 to n - 1 do
      mark (fun c -> Coverage.stmt c "mac");
      let a = inputs.(i) and b = inputs.(elements + i) in
      let d = a - b in
      acc := !acc + (d * d)
    done;
    let saturated = !acc > sat_max in
    mark (fun c -> Coverage.branch c "saturate" saturated);
    let value = if saturated then sat_max else !acc in
    let out = apply_output_fault ?fault:f ~width:acc_width value in
    mark (fun c -> Coverage.out_bits c "acc" ~width:acc_width out);
    [| out |]
  in
  {
    Model.name = "DISTANCE";
    inputs =
      List.init elements (fun i -> (Printf.sprintf "a%d" i, data_width))
      @ List.init elements (fun i -> (Printf.sprintf "b%d" i, data_width));
    universe;
    faults;
    run;
  }

(* --- WINNER: argmin over candidate distances --------------------------- *)

let winner ?(candidates = 4) ?(data_width = 10) () =
  let idx_width =
    let rec bits n acc = if n <= 1 then acc else bits (n / 2) (acc + 1) in
    max 1 (bits (candidates - 1) 0 + 1)
  in
  let universe =
    [ Coverage.Stmt "scan" ]
    @ List.concat_map
        (fun i ->
          [ Coverage.Cond (Printf.sprintf "lt%d" i, true);
            Coverage.Cond (Printf.sprintf "lt%d" i, false) ])
        (List.init (candidates - 1) (fun i -> i + 1))
    @ List.concat_map
        (fun i -> [ Coverage.Bit ("idx", i, false); Coverage.Bit ("idx", i, true) ])
        (List.init idx_width (fun i -> i))
  in
  let faults =
    stuck_output_faults ~width:idx_width @ [ fault "ge-instead-of-lt" ]
  in
  let run ?cover ?fault:f inputs =
    let mark g = match cover with None -> () | Some c -> g c in
    let flipped = match f with Some { Model.fid = "ge-instead-of-lt" } -> true | _ -> false in
    mark (fun c -> Coverage.stmt c "scan");
    let best = ref 0 in
    for i = 1 to candidates - 1 do
      let lt =
        if flipped then inputs.(i) <= inputs.(!best)
        else inputs.(i) < inputs.(!best)
      in
      mark (fun c -> Coverage.cond c (Printf.sprintf "lt%d" i) lt);
      if lt then best := i
    done;
    let out = apply_output_fault ?fault:f ~width:idx_width !best in
    mark (fun c -> Coverage.out_bits c "idx" ~width:idx_width out);
    [| out |]
  in
  {
    Model.name = "WINNER";
    inputs = List.init candidates (fun i -> (Printf.sprintf "d%d" i, data_width));
    universe;
    faults;
    run;
  }

let all () = [ root (); distance (); winner () ]
