(** Instrumented behavioural models of the case-study hot spots, with
    declared coverage universes and high-level fault lists (output bits
    stuck, plus semantic faults such as the uninitialised accumulator —
    the memory-init error class the paper reports finding). *)

val root : ?width:int -> unit -> Model.t
(** Integer square root, input [n] of [width] bits (default 12). *)

val distance : ?elements:int -> ?data_width:int -> ?acc_width:int -> unit -> Model.t
(** Saturating sum of squared differences over [elements] pairs. *)

val winner : ?candidates:int -> ?data_width:int -> unit -> Model.t
(** Argmin over candidate distances. *)

val all : unit -> Model.t list
