(** Memory inspection — the Laerte++ capability that exposed the
    "incorrect memory initialization" design errors at level 1.

    An inspected memory tracks which cells have been written since
    reset; reading a never-written cell records a violation (and returns
    a distinctive stale value) instead of failing silently. *)

type violation = {
  memory : string;
  address : int;
  access_index : int;  (** accesses performed before this one *)
}

type t

val create : ?stale_value:int -> size:int -> string -> t
val size : t -> int

val write : t -> addr:int -> int -> unit
val read : t -> addr:int -> int
(** Returns the stored value, or the stale value (recording a
    violation) when the cell was never written. *)

val clear_all : t -> unit
(** Explicit initialisation of every cell — the fix for the error
    class. *)

val violations : t -> violation list
(** In occurrence order. *)

val is_clean : t -> bool

val pp_violation : Format.formatter -> violation -> unit
val report : Format.formatter -> t -> unit

val accumulator_model :
  clears_buffer:bool -> cells:int -> t * (int list -> int list)
(** A frame-accumulation model over an inspected buffer.  With
    [clears_buffer:false] it reproduces the level-1 bug: the first frame
    reads uninitialised cells and later frames accumulate stale data. *)
