(** Test-bench quality evaluation: coverage metrics plus high-level
    fault coverage — the level-1 functional-verification report. *)

type evaluation = {
  model : string;
  engine : string;
  tests : int;
  coverage : Coverage.report;
  fault_coverage : float;
  undetected : string list;  (** fault ids the suite misses *)
}

val evaluate : engine:string -> Model.t -> Model.test list -> evaluation

val compare_engines : ?budget:int -> ?seed:int -> Model.t -> evaluation list
(** Random vs genetic at equal pattern budget. *)

val pp_evaluation : Format.formatter -> evaluation -> unit
