(* The device-under-verification abstraction for high-level ATPG: a
   deterministic behavioural model with declared inputs, a coverage-point
   universe, and a high-level fault list.  [run] executes the model,
   optionally recording coverage and optionally under an injected fault;
   a test detects a fault when outputs differ from the fault-free run. *)

type fault = { fid : string }

type t = {
  name : string;
  inputs : (string * int) list;  (* input name, bit width *)
  universe : Coverage.point list;
  faults : fault list;
  run : ?cover:Coverage.t -> ?fault:fault -> int array -> int array;
      (* input values (per [inputs] order, masked to width) -> outputs *)
}

type test = int array

let input_count m = List.length m.inputs

let mask_inputs m (test : test) =
  let widths = Array.of_list (List.map snd m.inputs) in
  if Array.length test <> Array.length widths then
    invalid_arg ("Model.mask_inputs: arity for " ^ m.name);
  Array.mapi (fun i v -> v land ((1 lsl widths.(i)) - 1)) test

let run ?cover ?fault m test = m.run ?cover ?fault (mask_inputs m test)

(* Coverage accumulated by a test suite. *)
let coverage m tests =
  let c = Coverage.create () in
  List.iter (fun t -> ignore (run ~cover:c m t)) tests;
  c

let coverage_report m tests =
  Coverage.report ~universe:m.universe (coverage m tests)

(* Fault simulation: which faults does the suite detect? *)
let detected_faults m tests =
  List.filter
    (fun fault ->
      List.exists (fun t -> run m t <> run ~fault m t) tests)
    m.faults

let fault_coverage m tests =
  match m.faults with
  | [] -> 1.
  | faults ->
      float_of_int (List.length (detected_faults m tests))
      /. float_of_int (List.length faults)
