(* Memory inspection (the Laerte++ capability that found the level-1
   design errors: "the memory inspection capability of Laerte++ allows
   us to quickly identify and remove design errors related to incorrect
   memory initialization").

   An inspected memory tracks, per cell, whether it has been written
   since reset; reads of never-written cells are recorded as
   uninitialised-read violations with the address and an access index,
   instead of silently returning stale data (the behaviour that
   "reflected on a less precise images matching"). *)

type violation = {
  memory : string;
  address : int;
  access_index : int;  (* how many accesses happened before this one *)
}

type t = {
  name : string;
  data : int array;
  written : bool array;
  mutable accesses : int;
  mutable violations : violation list;
  stale_value : int;  (* what an uninitialised cell reads as *)
}

let create ?(stale_value = 0x2A) ~size name =
  if size <= 0 then invalid_arg "Memcheck.create: size";
  {
    name;
    data = Array.make size 0;
    written = Array.make size false;
    accesses = 0;
    violations = [];
    stale_value;
  }

let size m = Array.length m.data

let check_addr m addr =
  if addr < 0 || addr >= Array.length m.data then
    invalid_arg (Printf.sprintf "Memcheck.%s: address %d" m.name addr)

let write m ~addr value =
  check_addr m addr;
  m.accesses <- m.accesses + 1;
  m.data.(addr) <- value;
  m.written.(addr) <- true

let read m ~addr =
  check_addr m addr;
  let idx = m.accesses in
  m.accesses <- m.accesses + 1;
  if m.written.(addr) then m.data.(addr)
  else begin
    m.violations <-
      { memory = m.name; address = addr; access_index = idx } :: m.violations;
    m.stale_value
  end

let clear_all m =
  (* an explicit initialisation loop, the fix for the error class *)
  for addr = 0 to Array.length m.data - 1 do
    write m ~addr 0
  done

let violations m = List.rev m.violations
let is_clean m = m.violations = []

let pp_violation fmt v =
  Fmt.pf fmt "uninitialised read of %s[%d] (access #%d)" v.memory v.address
    v.access_index

let report fmt m =
  match violations m with
  | [] -> Fmt.pf fmt "%s: no uninitialised reads@." m.name
  | vs ->
      Fmt.pf fmt "%s: %d uninitialised read(s)@." m.name (List.length vs);
      List.iter (fun v -> Fmt.pf fmt "  %a@." pp_violation v) vs

(* A behavioural model exercising the error class: an accumulation
   buffer that the buggy variant forgets to clear between frames.  Run
   under inspection, the buggy variant produces violations on its first
   frame; functionally, its second frame differs — exactly how the
   imprecise image matching manifested. *)
let accumulator_model ~clears_buffer ~cells =
  let mem = create ~size:cells "acc_buffer" in
  let frame values =
    if clears_buffer then clear_all mem;
    List.iteri
      (fun i v ->
        let addr = i mod cells in
        let old = read mem ~addr in
        write mem ~addr (old + v))
      values;
    List.init cells (fun addr -> read mem ~addr)
  in
  (mem, frame)
