lib/atpg/coverage.mli: Format
