lib/atpg/models.ml: Array Coverage List Model Printf Scanf
