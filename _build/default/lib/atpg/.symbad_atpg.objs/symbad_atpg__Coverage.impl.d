lib/atpg/coverage.ml: Fmt Hashtbl List Option Printf
