lib/atpg/genetic_engine.mli: Model
