lib/atpg/model.ml: Array Coverage List
