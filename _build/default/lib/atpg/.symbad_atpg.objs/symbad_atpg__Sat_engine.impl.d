lib/atpg/sat_engine.ml: Array Fmt List Symbad_hdl Symbad_sat
