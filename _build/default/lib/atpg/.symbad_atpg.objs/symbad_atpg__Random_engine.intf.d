lib/atpg/random_engine.mli: Model
