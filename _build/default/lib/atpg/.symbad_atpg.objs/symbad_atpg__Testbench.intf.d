lib/atpg/testbench.mli: Coverage Format Model
