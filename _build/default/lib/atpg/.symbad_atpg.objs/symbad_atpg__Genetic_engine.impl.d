lib/atpg/genetic_engine.ml: Array Coverage Hashtbl List Model Symbad_image
