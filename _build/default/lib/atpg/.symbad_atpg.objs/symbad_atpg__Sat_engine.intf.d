lib/atpg/sat_engine.mli: Format Symbad_hdl
