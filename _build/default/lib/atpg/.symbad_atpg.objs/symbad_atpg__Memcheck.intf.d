lib/atpg/memcheck.mli: Format
