lib/atpg/random_engine.ml: Array List Model Symbad_image
