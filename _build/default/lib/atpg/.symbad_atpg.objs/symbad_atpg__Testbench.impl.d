lib/atpg/testbench.ml: Coverage Fmt Genetic_engine List Model Random_engine
