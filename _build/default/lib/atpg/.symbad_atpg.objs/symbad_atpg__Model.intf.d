lib/atpg/model.mli: Coverage
