lib/atpg/models.mli: Model
