lib/atpg/memcheck.ml: Array Fmt List Printf
