(* SAT-based test generation (the formal engine of Laerte++).

   Works on the RTL view of a module: to cover the bit-coverage point
   "output o, bit i, polarity v at depth d", it asks the SAT solver for
   an input sequence driving that bit to that polarity, by unrolling the
   netlist.  Complete on the covered depth: if the solver says UNSAT the
   point is formally unreachable and excluded from the denominator —
   something no simulation-based engine can conclude. *)

module Solver = Symbad_sat.Solver
module Hdl = Symbad_hdl
module Netlist = Symbad_hdl.Netlist
module Unroll = Symbad_hdl.Unroll
module Expr = Symbad_hdl.Expr

type target = { output : string; bit : int; polarity : bool }

type outcome =
  | Test of int array list  (* input vectors, one per cycle *)
  | Unreachable  (* proven at every depth up to the bound *)
  | Budget_exceeded

let all_targets nl =
  List.concat_map
    (fun (name, e) ->
      let w = Netlist.expr_width nl e in
      List.concat_map
        (fun bit ->
          [ { output = name; bit; polarity = false };
            { output = name; bit; polarity = true } ])
        (List.init w (fun i -> i)))
    (Netlist.outputs nl)

(* Pack one frame's inputs into a vector following the netlist order. *)
let inputs_at solver u frame nl =
  Array.of_list
    (List.map (fun (n, _) -> Unroll.input_value solver u frame n)
       (Netlist.inputs nl))

let cover_target ?(max_depth = 8) ?(max_conflicts = 50_000) nl target =
  let out_expr =
    match Netlist.find_output nl target.output with
    | Some e -> e
    | None -> invalid_arg ("Sat_engine: no output " ^ target.output)
  in
  let w = Netlist.expr_width nl out_expr in
  if target.bit < 0 || target.bit >= w then
    invalid_arg "Sat_engine: bit out of range";
  let bit_expr = Expr.slice out_expr ~hi:target.bit ~lo:target.bit in
  let goal =
    if target.polarity then bit_expr
    else Expr.not_ bit_expr
  in
  let rec at k =
    if k > max_depth then Unreachable
    else begin
      let solver = Solver.create 0 in
      let u = Unroll.create ~init:Unroll.Reset solver nl in
      Unroll.unroll_to u (k + 1);
      Solver.add_clause solver [ Unroll.bool_lit u k goal ];
      match Solver.solve ~max_conflicts solver with
      | Solver.Sat ->
          Test (List.init (k + 1) (fun i -> inputs_at solver u i nl))
      | Solver.Unsat -> at (k + 1)
      | Solver.Unknown -> Budget_exceeded
    end
  in
  at 0

type report = {
  covered : int;
  unreachable : int;
  unresolved : int;
  tests : int array list list;  (* one input sequence per covered target *)
}

(* Chase every output-bit polarity of the netlist. *)
let generate ?(max_depth = 8) ?(max_conflicts = 50_000) nl =
  let targets = all_targets nl in
  let covered = ref 0 and unreachable = ref 0 and unresolved = ref 0 in
  let tests = ref [] in
  List.iter
    (fun t ->
      match cover_target ~max_depth ~max_conflicts nl t with
      | Test seq ->
          incr covered;
          tests := seq :: !tests
      | Unreachable -> incr unreachable
      | Budget_exceeded -> incr unresolved)
    targets;
  {
    covered = !covered;
    unreachable = !unreachable;
    unresolved = !unresolved;
    tests = List.rev !tests;
  }

let pp_report fmt r =
  Fmt.pf fmt "covered %d, unreachable %d, unresolved %d" r.covered
    r.unreachable r.unresolved
