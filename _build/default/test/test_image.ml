(* Tests for the image-processing substrate (the C reference model). *)

open Symbad_image

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Image --- *)

let image_get_set () =
  let img = Image.create ~width:4 ~height:3 in
  Image.set img 2 1 200;
  check "get" 200 (Image.get img 2 1);
  check "others zero" 0 (Image.get img 0 0);
  Image.set img 0 0 999;
  check "clamped high" 255 (Image.get img 0 0);
  Image.set img 0 0 (-5);
  check "clamped low" 0 (Image.get img 0 0)

let image_border_clamp () =
  let img = Image.create ~width:2 ~height:2 in
  Image.set img 0 0 7;
  check "clamped coords" 7 (Image.get_clamped img (-5) (-5));
  Image.set img 1 1 9;
  check "clamped coords high" 9 (Image.get_clamped img 10 10)

let image_stats () =
  let img = Image.create ~width:2 ~height:2 in
  Image.fill img 10;
  Image.set img 0 0 30;
  check "mean" 15 (Image.mean img);
  check "count above" 1 (Image.count_above img 20);
  let h = Image.histogram img in
  check "histogram" 3 h.(10);
  check "histogram peak" 1 h.(30)

let image_digest_distinguishes () =
  let a = Image.create ~width:4 ~height:4 in
  let b = Image.create ~width:4 ~height:4 in
  Image.set b 3 3 1;
  check_bool "digests differ" false (Image.digest a = Image.digest b);
  check_bool "digest stable" true (Image.digest a = Image.digest a)

(* --- Facegen determinism and identity separation --- *)

let facegen_deterministic () =
  let f1 = Facegen.frame ~identity:3 ~pose:2 () in
  let f2 = Facegen.frame ~identity:3 ~pose:2 () in
  check_bool "identical" true (Image.equal f1 f2)

let facegen_identities_differ () =
  let f1 = Facegen.frame ~identity:1 ~pose:0 () in
  let f2 = Facegen.frame ~identity:2 ~pose:0 () in
  check_bool "different faces" false (Image.equal f1 f2)

let facegen_poses_differ () =
  let f1 = Facegen.frame ~identity:1 ~pose:1 () in
  let f2 = Facegen.frame ~identity:1 ~pose:2 () in
  check_bool "different poses" false (Image.equal f1 f2)

(* --- Bayer --- *)

let bayer_roundtrip_close () =
  let scene = Facegen.frame ~identity:0 ~pose:0 () in
  let recon = Bayer.demosaic (Bayer.mosaic scene) in
  (* mean absolute error should be small: gains are undone exactly and
     only smoothing remains *)
  let total = ref 0 in
  for y = 0 to Image.height scene - 1 do
    for x = 0 to Image.width scene - 1 do
      total := !total + abs (Image.get scene x y - Image.get recon x y)
    done
  done;
  let mae = !total / (Image.width scene * Image.height scene) in
  check_bool "mae < 8" true (mae < 8)

let bayer_pattern () =
  Alcotest.(check bool) "rggb" true
    (Bayer.channel_at 0 0 = Bayer.R
    && Bayer.channel_at 1 0 = Bayer.G
    && Bayer.channel_at 0 1 = Bayer.G
    && Bayer.channel_at 1 1 = Bayer.B)

(* --- Erosion: morphological laws --- *)

let erosion_antiextensive () =
  let img = Facegen.frame ~identity:4 ~pose:1 () in
  let e = Erosion.apply img in
  let ok = ref true in
  for y = 0 to Image.height img - 1 do
    for x = 0 to Image.width img - 1 do
      if Image.get e x y > Image.get img x y then ok := false
    done
  done;
  check_bool "erosion <= original" true !ok

let dilation_extensive () =
  let img = Facegen.frame ~identity:4 ~pose:1 () in
  let d = Erosion.dilate img in
  let ok = ref true in
  for y = 0 to Image.height img - 1 do
    for x = 0 to Image.width img - 1 do
      if Image.get d x y < Image.get img x y then ok := false
    done
  done;
  check_bool "dilation >= original" true !ok

let erosion_constant_invariant () =
  let img = Image.create ~width:8 ~height:8 in
  Image.fill img 77;
  check_bool "erosion of constant is constant" true
    (Image.equal img (Erosion.apply img))

(* --- Edge --- *)

let edge_flat_image_no_edges () =
  let img = Image.create ~width:16 ~height:16 in
  Image.fill img 100;
  check "no edges" 0 (Image.count_above (Edge.detect img) 0)

let edge_step_detected () =
  let img = Image.create ~width:16 ~height:16 in
  for y = 0 to 15 do
    for x = 8 to 15 do
      Image.set img x y 200
    done
  done;
  check_bool "step edge found" true
    (Image.count_above (Edge.detect img) 0 > 10)

let edge_binary_output () =
  let img = Facegen.frame ~identity:5 ~pose:1 () in
  let e = Edge.detect img in
  let ok = ref true in
  for y = 0 to Image.height e - 1 do
    for x = 0 to Image.width e - 1 do
      let v = Image.get e x y in
      if v <> 0 && v <> 255 then ok := false
    done
  done;
  check_bool "binary" true !ok

(* --- Ellipse --- *)

let ellipse_fit_centered_face () =
  let img = Facegen.frame ~size:64 ~identity:2 ~pose:0 () in
  let edges = Edge.detect (Erosion.apply (Bayer.demosaic (Bayer.mosaic img))) in
  ignore img;
  match Ellipse.fit edges with
  | None -> Alcotest.fail "expected a fit"
  | Some e ->
      check_bool "centre near middle" true
        (abs_float (e.Ellipse.cx -. 32.) < 8. && abs_float (e.Ellipse.cy -. 32.) < 8.);
      check_bool "support" true (e.Ellipse.support > 50)

let ellipse_fit_requires_support () =
  let img = Image.create ~width:32 ~height:32 in
  Alcotest.(check bool) "no fit on empty" true (Ellipse.fit img = None)

(* --- Root --- *)

let root_exhaustive_16bit_sample () =
  for n = 0 to 4096 do
    let r = Root.isqrt n in
    if not (r * r <= n && n < (r + 1) * (r + 1)) then
      Alcotest.failf "isqrt %d = %d" n r
  done

let root_rejects_negative () =
  check_bool "raises" true
    (try
       ignore (Root.isqrt (-1));
       false
     with Invalid_argument _ -> true)

(* --- Distance / Winner --- *)

let distance_properties () =
  let a = [| 1; 2; 3 |] and b = [| 4; 6; 3 |] in
  check "ssd" 25 (Distance.squared a b);
  check "identity" 0 (Distance.squared a a);
  check "symmetric" (Distance.squared a b) (Distance.squared b a)

let winner_selects_min () =
  (match Winner.select [ (0, 10); (1, 3); (2, 7) ] with
  | Winner.Match { identity; distance } ->
      check "id" 1 identity;
      check "distance" 3 distance
  | Winner.Unknown _ -> Alcotest.fail "expected match");
  match Winner.select ~reject_above:2 [ (0, 10); (1, 3) ] with
  | Winner.Unknown { best_identity; _ } -> check "best" 1 best_identity
  | Winner.Match _ -> Alcotest.fail "expected rejection"

(* --- Database --- *)

let database_serialisation_roundtrip () =
  let entries =
    [
      { Database.identity = 0; features = [| 1; 2; 3 |] };
      { Database.identity = 7; features = [| 400; 500; 65535 |] };
    ]
  in
  let db = Database.create ~dim:3 entries in
  let db' = Database.deserialize (Database.serialize db) in
  check_bool "roundtrip" true (Database.equal db db')

let database_rejects_dim_mismatch () =
  check_bool "raises" true
    (try
       ignore
         (Database.create ~dim:2
            [ { Database.identity = 0; features = [| 1 |] } ]);
       false
     with Invalid_argument _ -> true)

(* --- Pipeline & metrics --- *)

let pipeline_feature_dim () =
  let raw = Pipeline.camera ~identity:0 ~pose:0 () in
  check "feature dim" Pipeline.feature_dim
    (Array.length (Pipeline.features_of_frame raw))

let pipeline_recognises_enrolled_pose () =
  let db = Pipeline.enroll ~identities:5 () in
  let raw = Pipeline.camera ~identity:3 ~pose:0 () in
  match Pipeline.recognize db raw with
  | Winner.Match { identity; distance } ->
      check "identity" 3 identity;
      check "zero distance on enrolled frame" 0 distance
  | Winner.Unknown _ -> Alcotest.fail "expected match"

let pipeline_accuracy_above_chance () =
  let db = Pipeline.enroll ~identities:10 () in
  let r = Metrics.evaluate ~poses:3 db in
  (* chance is 10%; the pipeline must do far better *)
  check_bool "accuracy > 50%" true (r.Metrics.accuracy > 0.5);
  check "trials" 30 r.Metrics.trials

(* --- qcheck properties --- *)

let qcheck_isqrt_correct =
  QCheck.Test.make ~name:"isqrt bounds" ~count:500
    QCheck.(int_bound 1_000_000)
    (fun n ->
      let r = Root.isqrt n in
      r * r <= n && n < (r + 1) * (r + 1))

let qcheck_distance_nonneg =
  QCheck.Test.make ~name:"distance nonnegative and zero iff equal" ~count:200
    QCheck.(pair (array_of_size (Gen.return 8) (int_bound 255))
              (array_of_size (Gen.return 8) (int_bound 255)))
    (fun (a, b) ->
      let d = Distance.squared a b in
      d >= 0 && (d = 0) = (a = b))

let qcheck_erosion_dilation_order =
  QCheck.Test.make ~name:"erosion <= dilation pointwise" ~count:20
    QCheck.(pair (int_bound 19) (int_bound 9))
    (fun (identity, pose) ->
      let img = Facegen.frame ~size:24 ~identity ~pose () in
      let e = Erosion.apply img and d = Erosion.dilate img in
      let ok = ref true in
      for y = 0 to 23 do
        for x = 0 to 23 do
          if Image.get e x y > Image.get d x y then ok := false
        done
      done;
      !ok)

let qcheck_border_profile_wellformed =
  QCheck.Test.make ~name:"border profile nonnegative and sized" ~count:20
    QCheck.(pair (int_bound 19) (int_bound 9))
    (fun (identity, pose) ->
      let raw = Pipeline.camera ~size:32 ~identity ~pose () in
      let s = Pipeline.extract raw in
      let border = s.Pipeline.border in
      Array.length border = Pipeline.border_bins
      && Array.for_all (fun x -> x >= 0) border)

let qcheck_rng_deterministic =
  QCheck.Test.make ~name:"rng streams reproducible" ~count:100 QCheck.int
    (fun seed ->
      let a = Rng.create seed and b = Rng.create seed in
      List.for_all (fun _ -> Rng.int a 1000 = Rng.int b 1000)
        (List.init 20 (fun i -> i)))

let suite =
  [
    Alcotest.test_case "image get/set/clamp" `Quick image_get_set;
    Alcotest.test_case "image border clamp" `Quick image_border_clamp;
    Alcotest.test_case "image statistics" `Quick image_stats;
    Alcotest.test_case "image digest" `Quick image_digest_distinguishes;
    Alcotest.test_case "facegen deterministic" `Quick facegen_deterministic;
    Alcotest.test_case "facegen identities differ" `Quick
      facegen_identities_differ;
    Alcotest.test_case "facegen poses differ" `Quick facegen_poses_differ;
    Alcotest.test_case "bayer mosaic/demosaic roundtrip" `Quick
      bayer_roundtrip_close;
    Alcotest.test_case "bayer RGGB pattern" `Quick bayer_pattern;
    Alcotest.test_case "erosion anti-extensive" `Quick erosion_antiextensive;
    Alcotest.test_case "dilation extensive" `Quick dilation_extensive;
    Alcotest.test_case "erosion constant invariant" `Quick
      erosion_constant_invariant;
    Alcotest.test_case "edge: flat image" `Quick edge_flat_image_no_edges;
    Alcotest.test_case "edge: step detected" `Quick edge_step_detected;
    Alcotest.test_case "edge: binary output" `Quick edge_binary_output;
    Alcotest.test_case "ellipse fit on face" `Quick ellipse_fit_centered_face;
    Alcotest.test_case "ellipse fit needs support" `Quick
      ellipse_fit_requires_support;
    Alcotest.test_case "isqrt exhaustive sample" `Quick
      root_exhaustive_16bit_sample;
    Alcotest.test_case "isqrt rejects negative" `Quick root_rejects_negative;
    Alcotest.test_case "distance SSD" `Quick distance_properties;
    Alcotest.test_case "winner argmin + rejection" `Quick winner_selects_min;
    Alcotest.test_case "database (de)serialisation" `Quick
      database_serialisation_roundtrip;
    Alcotest.test_case "database dim check" `Quick database_rejects_dim_mismatch;
    Alcotest.test_case "pipeline feature dimension" `Quick pipeline_feature_dim;
    Alcotest.test_case "pipeline recognises enrolled pose" `Quick
      pipeline_recognises_enrolled_pose;
    Alcotest.test_case "pipeline accuracy above chance" `Slow
      pipeline_accuracy_above_chance;
    QCheck_alcotest.to_alcotest qcheck_isqrt_correct;
    QCheck_alcotest.to_alcotest qcheck_distance_nonneg;
    QCheck_alcotest.to_alcotest qcheck_erosion_dilation_order;
    QCheck_alcotest.to_alcotest qcheck_border_profile_wellformed;
    QCheck_alcotest.to_alcotest qcheck_rng_deterministic;
  ]
