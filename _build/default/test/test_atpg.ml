(* Tests for the ATPG stack: coverage bookkeeping, the instrumented
   models, and the three generation engines. *)

open Symbad_atpg

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Coverage --- *)

let coverage_bookkeeping () =
  let c = Coverage.create () in
  Coverage.stmt c "s1";
  Coverage.stmt c "s1";
  Coverage.branch c "b" true;
  Coverage.cond c "c" false;
  Coverage.out_bits c "o" ~width:2 0b10;
  check "hit count" 2 (Coverage.hit_count c (Coverage.Stmt "s1"));
  check_bool "branch true hit" true (Coverage.is_hit c (Coverage.Branch ("b", true)));
  check_bool "branch false unhit" false (Coverage.is_hit c (Coverage.Branch ("b", false)));
  check_bool "bit polarity" true (Coverage.is_hit c (Coverage.Bit ("o", 1, true)));
  check_bool "bit polarity" true (Coverage.is_hit c (Coverage.Bit ("o", 0, false)))

let coverage_report_fractions () =
  let c = Coverage.create () in
  let universe =
    [ Coverage.Stmt "a"; Coverage.Stmt "b"; Coverage.Branch ("x", true);
      Coverage.Branch ("x", false) ]
  in
  Coverage.stmt c "a";
  Coverage.branch c "x" true;
  let r = Coverage.report ~universe c in
  Alcotest.(check (float 0.001)) "stmt 50%" 0.5 r.Coverage.statement;
  Alcotest.(check (float 0.001)) "branch 50%" 0.5 r.Coverage.branch_;
  check "missed" 2 (List.length r.Coverage.missed)

let coverage_merge () =
  let a = Coverage.create () and b = Coverage.create () in
  Coverage.stmt a "x";
  Coverage.stmt b "y";
  Coverage.merge ~into:a b;
  check_bool "merged" true
    (Coverage.is_hit a (Coverage.Stmt "x") && Coverage.is_hit a (Coverage.Stmt "y"))

(* --- Models --- *)

let root_model_functional () =
  let m = Models.root () in
  for n = 0 to 200 do
    let out = Model.run m [| n |] in
    Alcotest.(check int) (Printf.sprintf "isqrt %d" n)
      (Symbad_image.Root.isqrt n) out.(0)
  done

let root_model_faults_change_output () =
  let m = Models.root () in
  (* each semantic fault must change the output on some input *)
  List.iter
    (fun fid ->
      let fault = List.find (fun f -> f.Model.fid = fid) m.Model.faults in
      let differs =
        List.exists
          (fun n -> Model.run m [| n |] <> Model.run ~fault m [| n |])
          (List.init 256 (fun i -> i))
      in
      check_bool fid true differs)
    [ "skip-last-iter"; "wrong-init-bit"; "out[0]/sa0"; "out[0]/sa1" ]

let distance_model_uninit_fault () =
  let m = Models.distance () in
  let fault = List.find (fun f -> f.Model.fid = "uninit-acc") m.Model.faults in
  (* the memory-init bug shifts the accumulator by a constant *)
  let zeros = [| 0; 0; 0; 0; 0; 0; 0; 0 |] in
  let good = (Model.run m zeros).(0) in
  let bad = (Model.run ~fault m zeros).(0) in
  check "offset" 0x2A (bad - good)

let winner_model_functional () =
  let m = Models.winner () in
  check "argmin" 2 (Model.run m [| 9; 5; 1; 7 |]).(0);
  check "first wins ties" 0 (Model.run m [| 3; 3; 3; 3 |]).(0)

let model_input_masking () =
  let m = Models.root ~width:8 () in
  (* 0x1FF masked to 8 bits = 0xFF *)
  Alcotest.(check int) "masked" (Symbad_image.Root.isqrt 0xFF)
    (Model.run m [| 0x1FF |]).(0)

(* --- Engines --- *)

let random_engine_deterministic () =
  let m = Models.root () in
  let a = Random_engine.generate ~seed:9 ~count:10 m in
  let b = Random_engine.generate ~seed:9 ~count:10 m in
  check_bool "same suite" true (a = b);
  check "count" 10 (List.length a)

let genetic_reaches_full_branch_coverage () =
  let m = Models.root () in
  let tests = Genetic_engine.generate m in
  let r = Model.coverage_report m tests in
  (* the n=0 branch is a needle random sampling misses at width 12;
     the GA must find it *)
  Alcotest.(check (float 0.001)) "branch coverage" 1.0 r.Coverage.branch_

let genetic_suite_is_minimal_ish () =
  let m = Models.distance () in
  let tests = Genetic_engine.generate m in
  (* only coverage-increasing vectors are committed *)
  check_bool "small suite" true (List.length tests <= 24)

let fault_coverage_increases_with_tests () =
  let m = Models.winner () in
  let few = Random_engine.generate ~seed:3 ~count:2 m in
  let many = Random_engine.generate ~seed:3 ~count:128 m in
  check_bool "monotone" true
    (Model.fault_coverage m many >= Model.fault_coverage m few)

let sat_engine_full_on_fifo () =
  let nl = Symbad_hdl.Rtl_lib.fifo_ctrl ~addr_width:2 () in
  let r = Sat_engine.generate ~max_depth:8 nl in
  (* every output bit of the fifo controller is reachable at both
     polarities within 8 cycles *)
  check "covered" (List.length (Sat_engine.all_targets nl)) r.Sat_engine.covered;
  check "unreachable" 0 r.Sat_engine.unreachable

let sat_engine_proves_unreachability () =
  (* an output bit that can never be 1 *)
  let nl =
    Symbad_hdl.Netlist.make ~name:"const0" ~inputs:[ ("x", 2) ] ~registers:[]
      ~outputs:
        [ ("o", Symbad_hdl.Expr.and_ (Symbad_hdl.Expr.input "x")
              (Symbad_hdl.Expr.const ~width:2 0)) ]
  in
  let r = Sat_engine.generate ~max_depth:2 nl in
  check "unreachable polarities" 2 r.Sat_engine.unreachable;
  check "covered polarities" 2 r.Sat_engine.covered

let sat_engine_tests_replay () =
  (* generated sequences actually drive the targeted bit *)
  let nl = Symbad_hdl.Rtl_lib.fifo_ctrl ~addr_width:2 () in
  let target = { Sat_engine.output = "full"; bit = 0; polarity = true } in
  match Sat_engine.cover_target ~max_depth:8 nl target with
  | Sat_engine.Test seq ->
      let sim = Symbad_hdl.Simulator.create nl in
      let final_inputs = ref [] in
      List.iteri
        (fun i vec ->
          let inputs =
            List.mapi
              (fun j (n, w) -> (n, Symbad_hdl.Bitvec.make ~width:w vec.(j)))
              (Symbad_hdl.Netlist.inputs nl)
          in
          if i = List.length seq - 1 then final_inputs := inputs
          else Symbad_hdl.Simulator.step sim ~inputs)
        seq;
      check "full asserted" 1
        (Symbad_hdl.Bitvec.to_int
           (Symbad_hdl.Simulator.output sim ~inputs:!final_inputs "full"))
  | _ -> Alcotest.fail "expected test"

let testbench_engine_comparison_shape () =
  (* the headline ATPG result: genetic >= random coverage at equal budget *)
  let m = Models.root () in
  match Testbench.compare_engines ~budget:32 m with
  | [ random; genetic ] ->
      check_bool "genetic at least as good" true
        (genetic.Testbench.coverage.Coverage.total
        >= random.Testbench.coverage.Coverage.total -. 0.001)
  | _ -> Alcotest.fail "expected two evaluations"

(* --- Memory inspection (Laerte++ capability) --- *)

let memcheck_detects_uninitialised_reads () =
  let mem, frame = Memcheck.accumulator_model ~clears_buffer:false ~cells:4 in
  ignore (frame [ 1; 2; 3; 4 ]);
  check "one violation per cell" 4 (List.length (Memcheck.violations mem));
  check_bool "not clean" false (Memcheck.is_clean mem)

let memcheck_clean_after_initialisation () =
  let mem, frame = Memcheck.accumulator_model ~clears_buffer:true ~cells:4 in
  ignore (frame [ 1; 2; 3; 4 ]);
  check_bool "clean" true (Memcheck.is_clean mem)

let memcheck_functional_difference () =
  (* the bug also corrupts results across frames: stale accumulation *)
  let _, buggy = Memcheck.accumulator_model ~clears_buffer:false ~cells:2 in
  let _, good = Memcheck.accumulator_model ~clears_buffer:true ~cells:2 in
  ignore (buggy [ 1; 1 ]);
  ignore (good [ 1; 1 ]);
  let b2 = buggy [ 2; 2 ] and g2 = good [ 2; 2 ] in
  check_bool "second frames differ" false (b2 = g2);
  Alcotest.(check (list int)) "good second frame" [ 2; 2 ] g2

let memcheck_violation_details () =
  let mem = Memcheck.create ~size:8 "m" in
  Memcheck.write mem ~addr:3 7;
  check "written cell reads back" 7 (Memcheck.read mem ~addr:3);
  let stale = Memcheck.read mem ~addr:0 in
  check "stale marker" 0x2A stale;
  (match Memcheck.violations mem with
  | [ v ] ->
      check "address" 0 v.Memcheck.address;
      check "access index" 2 v.Memcheck.access_index
  | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs));
  check_bool "bounds" true
    (try ignore (Memcheck.read mem ~addr:99); false
     with Invalid_argument _ -> true)

let qcheck_root_model_matches_reference =
  QCheck.Test.make ~name:"instrumented ROOT model = reference isqrt" ~count:300
    QCheck.(int_bound 4095)
    (fun n ->
      let m = Models.root () in
      (Model.run m [| n |]).(0) = Symbad_image.Root.isqrt n)

let qcheck_distance_model_matches_reference =
  QCheck.Test.make ~name:"instrumented DISTANCE model = reference SSD"
    ~count:200
    QCheck.(pair (array_of_size (Gen.return 4) (int_bound 255))
              (array_of_size (Gen.return 4) (int_bound 255)))
    (fun (a, b) ->
      let m = Models.distance () in
      let out = (Model.run m (Array.append a b)).(0) in
      let ssd = Symbad_image.Distance.squared a b in
      out = min ssd 65535)

let suite =
  [
    Alcotest.test_case "coverage bookkeeping" `Quick coverage_bookkeeping;
    Alcotest.test_case "coverage report fractions" `Quick
      coverage_report_fractions;
    Alcotest.test_case "coverage merge" `Quick coverage_merge;
    Alcotest.test_case "ROOT model functional" `Quick root_model_functional;
    Alcotest.test_case "ROOT model faults observable" `Quick
      root_model_faults_change_output;
    Alcotest.test_case "DISTANCE uninit-acc fault" `Quick
      distance_model_uninit_fault;
    Alcotest.test_case "WINNER model functional" `Quick winner_model_functional;
    Alcotest.test_case "model input masking" `Quick model_input_masking;
    Alcotest.test_case "random engine deterministic" `Quick
      random_engine_deterministic;
    Alcotest.test_case "genetic reaches full branch coverage" `Quick
      genetic_reaches_full_branch_coverage;
    Alcotest.test_case "genetic commits only progress" `Quick
      genetic_suite_is_minimal_ish;
    Alcotest.test_case "fault coverage monotone" `Quick
      fault_coverage_increases_with_tests;
    Alcotest.test_case "SAT engine: full fifo coverage" `Quick
      sat_engine_full_on_fifo;
    Alcotest.test_case "SAT engine: proves unreachability" `Quick
      sat_engine_proves_unreachability;
    Alcotest.test_case "SAT engine: tests replay" `Quick sat_engine_tests_replay;
    Alcotest.test_case "engine comparison shape" `Quick
      testbench_engine_comparison_shape;
    Alcotest.test_case "memcheck: uninitialised reads" `Quick
      memcheck_detects_uninitialised_reads;
    Alcotest.test_case "memcheck: clean after init" `Quick
      memcheck_clean_after_initialisation;
    Alcotest.test_case "memcheck: functional corruption" `Quick
      memcheck_functional_difference;
    Alcotest.test_case "memcheck: violation details" `Quick
      memcheck_violation_details;
    QCheck_alcotest.to_alcotest qcheck_root_model_matches_reference;
    QCheck_alcotest.to_alcotest qcheck_distance_model_matches_reference;
  ]
