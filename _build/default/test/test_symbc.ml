(* Tests for SymbC: parser, CFG, consistency checking. *)

open Symbad_symbc

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let info =
  Config_info.make
    ~fpga_functions:[ "distance"; "root" ]
    ~configurations:[ ("config1", [ "distance" ]); ("config2", [ "root" ]) ]
    ()

(* --- Config_info --- *)

let config_info_lookup () =
  check_bool "fpga fn" true (Config_info.is_fpga_function info "distance");
  check_bool "sw fn" false (Config_info.is_fpga_function info "camera");
  check_bool "provides" true (Config_info.provides info ~config:"config1" "distance");
  check_bool "not provides" false (Config_info.provides info ~config:"config1" "root");
  Alcotest.(check (list string)) "names" [ "config1"; "config2" ]
    (Config_info.configuration_names info)

let config_info_rejects_unknown_fn () =
  check_bool "raises" true
    (try
       ignore
         (Config_info.make ~fpga_functions:[ "a" ]
            ~configurations:[ ("c", [ "b" ]) ] ());
       false
     with Invalid_argument _ -> true)

(* --- Parser --- *)

let parser_roundtrip () =
  let text = {|
    // setup
    camera();
    load(config1);
    if (*) { distance(); } else { camera(); }
    while (*) { load(config2); root(); }
  |} in
  let p = Parser.parse text in
  check "statements" 4 (List.length p);
  Alcotest.(check (list string)) "calls" [ "camera"; "distance"; "root" ]
    (Ast.called_functions p);
  Alcotest.(check (list string)) "configs" [ "config1"; "config2" ]
    (Ast.loaded_configs p)

let parser_if_without_else () =
  match Parser.parse "if (*) { f(); }" with
  | [ Ast.If ([ Ast.Call "f" ], []) ] -> ()
  | _ -> Alcotest.fail "bad parse"

let parser_errors () =
  let bad = [ "f("; "load();"; "if () { }"; "} f();"; "f() g();" ] in
  List.iter
    (fun text ->
      check_bool text true
        (try
           ignore (Parser.parse text);
           false
         with Parser.Parse_error _ -> true))
    bad

(* --- CFG --- *)

let cfg_linear () =
  let cfg = Cfg.build [ Ast.call "a"; Ast.call "b" ] in
  check "nodes" 3 cfg.Cfg.nnodes;
  check "edges" 2 (List.length cfg.Cfg.edges)

let cfg_if_shape () =
  let cfg = Cfg.build [ Ast.if_ [ Ast.call "t" ] [ Ast.call "e" ] ] in
  (* entry, join, then-entry, then-exit-is-call-result, else-entry, ... *)
  check "two successors at branch" 2 (List.length (Cfg.successors cfg cfg.Cfg.entry))

let cfg_while_shape () =
  let cfg = Cfg.build [ Ast.while_ [ Ast.call "body" ] ] in
  (* loop head: into body and out *)
  check "two successors at loop head" 2
    (List.length (Cfg.successors cfg cfg.Cfg.entry))

(* --- Check --- *)

let consistent_straightline () =
  let p = Parser.parse "load(config1); distance(); load(config2); root();" in
  match Check.check info p with
  | Check.Consistent c ->
      check "calls checked" 2 c.Check.calls_checked
  | Check.Inconsistent _ -> Alcotest.fail "expected consistent"

let inconsistent_no_load () =
  let p = Parser.parse "distance();" in
  match Check.check info p with
  | Check.Inconsistent cex ->
      Alcotest.(check string) "failing call" "distance" cex.Check.failing_call;
      check_bool "no config loaded" true (cex.Check.state_at_call = Check.Unloaded)
  | Check.Consistent _ -> Alcotest.fail "expected inconsistent"

let inconsistent_wrong_config () =
  let p = Parser.parse "load(config2); distance();" in
  match Check.check info p with
  | Check.Inconsistent cex ->
      check_bool "loaded config2" true
        (cex.Check.state_at_call = Check.Loaded "config2")
  | Check.Consistent _ -> Alcotest.fail "expected inconsistent"

let sw_calls_always_ok () =
  let p = Parser.parse "camera(); bayer(); erosion();" in
  match Check.check info p with
  | Check.Consistent _ -> ()
  | Check.Inconsistent _ -> Alcotest.fail "SW calls need no configuration"

let branch_join_loses_config () =
  (* only one branch loads the right config: the join is inconsistent *)
  let p =
    Parser.parse
      "load(config1); if (*) { load(config2); root(); } distance();"
  in
  match Check.check info p with
  | Check.Inconsistent cex ->
      Alcotest.(check string) "failing" "distance" cex.Check.failing_call
  | Check.Consistent _ -> Alcotest.fail "join must be inconsistent"

let branch_join_consistent_when_both_reload () =
  let p =
    Parser.parse
      "if (*) { load(config2); root(); load(config1); } else { load(config1); } distance();"
  in
  match Check.check info p with
  | Check.Consistent _ -> ()
  | Check.Inconsistent _ -> Alcotest.fail "both paths end in config1"

let loop_requires_reload_inside () =
  (* the loop body switches to config2; the next iteration's distance()
     sees config2 *)
  let p = Parser.parse "load(config1); while (*) { distance(); load(config2); root(); }" in
  (match Check.check info p with
  | Check.Inconsistent cex ->
      Alcotest.(check string) "failing" "distance" cex.Check.failing_call
  | Check.Consistent _ -> Alcotest.fail "loop carries config2 back");
  (* reloading at the top of the body fixes it *)
  let fixed =
    Parser.parse
      "load(config1); while (*) { load(config1); distance(); load(config2); root(); }"
  in
  match Check.check info fixed with
  | Check.Consistent _ -> ()
  | Check.Inconsistent _ -> Alcotest.fail "fixed program is consistent"

let counterexample_is_shortest () =
  let p = Parser.parse "camera(); camera(); distance();" in
  match Check.check info p with
  | Check.Inconsistent cex ->
      (* path: camera, camera, distance *)
      check "path length" 3 (List.length cex.Check.path)
  | Check.Consistent _ -> Alcotest.fail "expected inconsistent"

let unknown_config_rejected () =
  let p = Parser.parse "load(mystery); distance();" in
  check_bool "raises" true
    (try
       ignore (Check.check info p);
       false
     with Invalid_argument _ -> true)

(* --- Absint: the abstract-interpretation engine --- *)

let absint_safe_program () =
  let p = Parser.parse "load(config1); distance(); load(config2); root();" in
  match Absint.analyze info p with
  | Absint.Safe { calls_checked; _ } -> check "calls" 2 calls_checked
  | Absint.Unsafe _ -> Alcotest.fail "expected safe"

let absint_unsafe_program () =
  let p = Parser.parse "load(config2); distance();" in
  match Absint.analyze info p with
  | Absint.Unsafe { failing_call; offending_states; _ } ->
      Alcotest.(check string) "call" "distance" failing_call;
      check_bool "config2 offends" true
        (List.mem (Check.Loaded "config2") offending_states)
  | Absint.Safe _ -> Alcotest.fail "expected unsafe"

let absint_join_precision () =
  (* after the branch, both configurations are possible: the invariant
     must contain both, and the following call must be flagged *)
  let p =
    Parser.parse
      "if (*) { load(config1); } else { load(config2); } distance();"
  in
  match Absint.analyze info p with
  | Absint.Unsafe { offending_states; _ } ->
      check "only config2 offends" 1 (List.length offending_states)
  | Absint.Safe _ -> Alcotest.fail "join must keep both states"

let absint_loop_fixpoint () =
  (* the loop body's final state flows back to its head *)
  let p =
    Parser.parse "load(config1); while (*) { distance(); load(config2); root(); }"
  in
  match Absint.analyze info p with
  | Absint.Unsafe { failing_call; _ } ->
      Alcotest.(check string) "loop-carried state" "distance" failing_call
  | Absint.Safe _ -> Alcotest.fail "fixpoint must carry config2 back"

(* qcheck: the product-automaton verdict agrees with exhaustive bounded
   path exploration on random small programs. *)
let gen_program =
  let open QCheck.Gen in
  let action =
    frequency
      [
        (3, return (Ast.call "distance"));
        (2, return (Ast.call "root"));
        (2, return (Ast.call "camera"));
        (3, return (Ast.reconfig "config1"));
        (2, return (Ast.reconfig "config2"));
      ]
  in
  let rec program depth n =
    if depth = 0 then list_size (1 -- n) action
    else
      list_size (1 -- n)
        (frequency
           [
             (6, action);
             ( 1,
               let* t = program (depth - 1) 2 in
               let* e = program (depth - 1) 2 in
               return (Ast.if_ t e) );
             ( 1,
               let* b = program (depth - 1) 2 in
               return (Ast.while_ b) );
           ])
  in
  program 2 4

(* Exhaustive path exploration with loop bodies taken 0, 1 or 2 times. *)
let rec paths_of stmts : Cfg.action list list =
  match stmts with
  | [] -> [ [] ]
  | s :: rest ->
      let heads =
        match s with
        | Ast.Call f -> [ [ Cfg.Call f ] ]
        | Ast.Reconfig c -> [ [ Cfg.Reconfig c ] ]
        | Ast.If (t, e) -> paths_of t @ paths_of e
        | Ast.While b ->
            let once = paths_of b in
            [ [] ]
            @ once
            @ List.concat_map (fun p1 -> List.map (fun p2 -> p1 @ p2) once) once
      in
      let tails = paths_of rest in
      List.concat_map (fun h -> List.map (fun t -> h @ t) tails) heads

let path_consistent path =
  let rec go state = function
    | [] -> true
    | Cfg.Nop :: rest -> go state rest
    | Cfg.Reconfig c :: rest -> go (Some c) rest
    | Cfg.Call f :: rest ->
        if not (Config_info.is_fpga_function info f) then go state rest
        else (
          match state with
          | Some c when Config_info.provides info ~config:c f -> go state rest
          | _ -> false)
  in
  go None path

let qcheck_check_vs_path_enumeration =
  QCheck.Test.make ~name:"symbc agrees with bounded path enumeration" ~count:200
    (QCheck.make gen_program) (fun program ->
      let symbc_ok =
        match Check.check info program with
        | Check.Consistent _ -> true
        | Check.Inconsistent _ -> false
      in
      let paths_ok = List.for_all path_consistent (paths_of program) in
      (* symbc covers unboundedly many iterations, so consistency implies
         bounded-path consistency; inconsistency must be witnessed by
         some bounded path for loop depth <= 2 over a 3-state lattice *)
      if symbc_ok then paths_ok else true)

let qcheck_absint_agrees_with_product =
  QCheck.Test.make ~name:"abstract interpretation agrees with product check"
    ~count:300 (QCheck.make gen_program)
    (fun program -> Absint.agrees_with_check info program)

let suite =
  [
    Alcotest.test_case "config info lookup" `Quick config_info_lookup;
    Alcotest.test_case "config info rejects unknown fn" `Quick
      config_info_rejects_unknown_fn;
    Alcotest.test_case "parser roundtrip" `Quick parser_roundtrip;
    Alcotest.test_case "parser if without else" `Quick parser_if_without_else;
    Alcotest.test_case "parser errors" `Quick parser_errors;
    Alcotest.test_case "cfg linear" `Quick cfg_linear;
    Alcotest.test_case "cfg if shape" `Quick cfg_if_shape;
    Alcotest.test_case "cfg while shape" `Quick cfg_while_shape;
    Alcotest.test_case "consistent straight line" `Quick consistent_straightline;
    Alcotest.test_case "inconsistent: no load" `Quick inconsistent_no_load;
    Alcotest.test_case "inconsistent: wrong config" `Quick
      inconsistent_wrong_config;
    Alcotest.test_case "SW calls always ok" `Quick sw_calls_always_ok;
    Alcotest.test_case "branch join loses config" `Quick branch_join_loses_config;
    Alcotest.test_case "branch join consistent when both reload" `Quick
      branch_join_consistent_when_both_reload;
    Alcotest.test_case "loop requires reload inside" `Quick
      loop_requires_reload_inside;
    Alcotest.test_case "counterexample is shortest" `Quick
      counterexample_is_shortest;
    Alcotest.test_case "unknown config rejected" `Quick unknown_config_rejected;
    Alcotest.test_case "absint: safe program" `Quick absint_safe_program;
    Alcotest.test_case "absint: unsafe program" `Quick absint_unsafe_program;
    Alcotest.test_case "absint: join precision" `Quick absint_join_precision;
    Alcotest.test_case "absint: loop fixpoint" `Quick absint_loop_fixpoint;
    QCheck_alcotest.to_alcotest qcheck_absint_agrees_with_product;
    QCheck_alcotest.to_alcotest qcheck_check_vs_path_enumeration;
  ]
