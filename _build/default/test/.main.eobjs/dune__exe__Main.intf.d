test/main.mli:
