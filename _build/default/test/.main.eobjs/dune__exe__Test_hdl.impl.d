test/test_hdl.ml: Alcotest Array Bitvec Expr List Netlist Printf QCheck QCheck_alcotest Rtl_lib Simulator String Symbad_hdl Symbad_image Symbad_mc Symbad_sat Synth Unroll Vcd
