test/test_lpv.ml: Alcotest Array Deadlock List Petri Printf QCheck QCheck_alcotest Rat Simplex Symbad_lpv Timing
