test/test_mc.ml: Alcotest Bitvec Bmc Engine Explicit Expr List Netlist Printf Prop QCheck QCheck_alcotest Rtl_lib Simulator Symbad_hdl Symbad_mc Trace
