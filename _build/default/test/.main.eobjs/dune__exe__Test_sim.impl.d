test/test_sim.ml: Alcotest Event_queue Fifo Kernel List Process QCheck QCheck_alcotest Signal Symbad_sim Time Trace
