test/main.ml: Alcotest Test_atpg Test_core Test_fpga Test_hdl Test_image Test_lpv Test_mc Test_pcc Test_sat Test_sim Test_symbc Test_tlm
