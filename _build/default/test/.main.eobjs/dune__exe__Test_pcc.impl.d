test/test_pcc.ml: Alcotest Bitvec Expr Fault List Miter Netlist Pcc Rtl_lib Simulator Symbad_hdl Symbad_mc Symbad_pcc
