test/test_fpga.ml: Alcotest Array Context Fpga Gen List Placement Printf QCheck QCheck_alcotest Resource Symbad_fpga Symbad_sim Symbad_tlm
