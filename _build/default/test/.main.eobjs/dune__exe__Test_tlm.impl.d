test/test_tlm.ml: Alcotest Annotation Bus Bytes Cpu List Memory QCheck QCheck_alcotest Symbad_image Symbad_sim Symbad_tlm Transaction
