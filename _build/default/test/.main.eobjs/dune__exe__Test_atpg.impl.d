test/test_atpg.ml: Alcotest Array Coverage Gen Genetic_engine List Memcheck Model Models Printf QCheck QCheck_alcotest Random_engine Sat_engine Symbad_atpg Symbad_hdl Symbad_image Testbench
