test/test_symbc.ml: Absint Alcotest Ast Cfg Check Config_info List Parser QCheck QCheck_alcotest Symbad_symbc
