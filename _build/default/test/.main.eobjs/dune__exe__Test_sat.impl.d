test/test_sat.ml: Alcotest Array Bool Dimacs List Printf QCheck QCheck_alcotest Solver Symbad_sat Tseitin
