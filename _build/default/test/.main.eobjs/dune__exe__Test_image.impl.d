test/test_image.ml: Alcotest Array Bayer Database Distance Edge Ellipse Erosion Facegen Gen Image List Metrics Pipeline QCheck QCheck_alcotest Rng Root Symbad_image Winner
