(* Tests for fault injection, miter construction and the property
   coverage checker. *)

open Symbad_hdl
open Symbad_pcc
module E = Expr
module Prop = Symbad_mc.Prop

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fifo = Rtl_lib.fifo_ctrl ~addr_width:2 ()

(* --- Fault enumeration & application --- *)

let fault_enumeration () =
  let faults = Fault.enumerate fifo in
  (* 3 count bits x 2 polarities + 2 muxes x ... the fifo has no muxes *)
  check "reg faults only" 6 (List.length faults);
  let capped = Fault.enumerate ~max_reg_bits:1 fifo in
  check "capped" 2 (List.length capped)

let fault_apply_stuck_at () =
  let f = Fault.Reg_stuck { reg = "count"; bit = 0; value = true } in
  let mutant = Fault.apply fifo f in
  let sim = Simulator.create mutant in
  let idle = [ ("push", Bitvec.zero ~width:1); ("pop", Bitvec.zero ~width:1) ] in
  (* init forced: count starts with bit 0 set *)
  check "init forced" 1 (Bitvec.to_int (Simulator.output sim ~inputs:idle "count"));
  Simulator.step sim ~inputs:idle;
  check "stays forced" 1 (Bitvec.to_int (Simulator.output sim ~inputs:idle "count"))

let fault_apply_unknown_reg () =
  check_bool "raises" true
    (try
       ignore (Fault.apply fifo (Fault.Reg_stuck { reg = "nope"; bit = 0; value = true }));
       false
     with Invalid_argument _ -> true)

let fault_cond_stuck () =
  let counter = Rtl_lib.counter ~width:4 in
  (* counter has 2 muxes (clear, enable) in its next function *)
  check "mux count" 2 (Fault.netlist_muxes counter);
  let mutant = Fault.apply counter (Fault.Cond_stuck { index = 1; value = true }) in
  (* enable stuck true: counts without enable *)
  let sim = Simulator.create mutant in
  let idle = [ ("enable", Bitvec.zero ~width:1); ("clear", Bitvec.zero ~width:1) ] in
  Simulator.step sim ~inputs:idle;
  Simulator.step sim ~inputs:idle;
  check "counts while disabled" 2
    (Bitvec.to_int (Simulator.output sim ~inputs:idle "count"))

(* --- Miter --- *)

let miter_identical_designs_equal () =
  match Miter.detectable ~depth:6 fifo (Rtl_lib.fifo_ctrl ~addr_width:2 ()) with
  | `Undetectable_within _ -> ()
  | _ -> Alcotest.fail "identical designs cannot differ"

let miter_detects_seeded_bug () =
  match Miter.detectable ~depth:8 fifo (Rtl_lib.fifo_ctrl_buggy ~addr_width:2 ()) with
  | `Detectable tr ->
      (* the off-by-one needs filling the fifo: at least depth+1 cycles *)
      check_bool "trace depth" true (List.length tr >= 4)
  | _ -> Alcotest.fail "seeded bug must be detectable"

let miter_interface_mismatch () =
  check_bool "raises" true
    (try
       ignore (Miter.build fifo (Rtl_lib.counter ~width:4));
       false
     with Invalid_argument _ -> true)

(* --- PCC --- *)

let weak_props = [
  Prop.make ~name:"not_full_and_empty"
    (E.not_ (E.and_ (Prop.output fifo "full") (Prop.output fifo "empty")));
]

let strong_props =
  let cw = 3 in
  let push_ok = E.and_ (E.input "push") (E.not_ (Prop.output fifo "full")) in
  let pop_ok = E.and_ (E.input "pop") (E.not_ (Prop.output fifo "empty")) in
  let delta = E.sub (Prop.next (E.reg "count")) (E.reg "count") in
  weak_props
  @ [
      Prop.make ~name:"count_le_depth"
        (E.ule (E.reg "count") (E.const ~width:cw 4));
      Prop.make ~name:"empty_iff_zero"
        (E.eq (Prop.output fifo "empty")
           (E.eq (E.reg "count") (E.const ~width:cw 0)));
      Prop.make_step ~name:"push_increments"
        (Prop.implies (E.and_ push_ok (E.not_ pop_ok))
           (E.eq delta (E.const ~width:cw 1)));
      Prop.make_step ~name:"pop_decrements"
        (Prop.implies (E.and_ pop_ok (E.not_ push_ok))
           (E.eq delta (E.const ~width:cw 7)));
      Prop.make_step ~name:"idle_holds"
        (Prop.implies (E.eq push_ok pop_ok) (E.eq delta (E.const ~width:cw 0)));
    ]

let pcc_weak_set_incomplete () =
  let r = Pcc.run ~depth:8 fifo weak_props in
  check "all faults detectable" 6 r.Pcc.detectable;
  check_bool "coverage below 50%" true (r.Pcc.coverage < 0.5);
  check_bool "uncovered faults reported" true (Pcc.uncovered_faults r <> [])

let pcc_strong_set_complete () =
  let r = Pcc.run ~depth:8 fifo strong_props in
  check "full coverage" r.Pcc.detectable r.Pcc.covered;
  Alcotest.(check (float 0.001)) "100%" 1.0 r.Pcc.coverage;
  check "nothing uncovered" 0 (List.length (Pcc.uncovered_faults r))

let pcc_coverage_monotone () =
  (* adding properties can only increase coverage *)
  let weak = (Pcc.run ~depth:8 fifo weak_props).Pcc.coverage in
  let strong = (Pcc.run ~depth:8 fifo strong_props).Pcc.coverage in
  check_bool "monotone" true (strong >= weak)

let pcc_undetectable_excluded () =
  (* a register bit that can never change is undetectable at the outputs *)
  let dead =
    Netlist.make ~name:"dead"
      ~inputs:[ ("x", 1) ]
      ~registers:
        [
          { Netlist.name = "live"; width = 1; init = Bitvec.zero ~width:1;
            next = E.input "x" };
          { Netlist.name = "dead"; width = 1; init = Bitvec.zero ~width:1;
            next = E.reg "dead" };
        ]
      ~outputs:[ ("o", E.reg "live") ]
  in
  let r = Pcc.run ~depth:6 dead [ Prop.make ~name:"t" (E.const ~width:1 1) ] in
  let undetectable =
    List.length
      (List.filter
         (fun fr -> fr.Pcc.status = Pcc.Undetectable)
         r.Pcc.faults)
  in
  (* dead/sa0 matches the reset value AND the register never reaches the
     outputs: 3 of the 4 faults of "dead" + "live" faults are detectable *)
  check_bool "some undetectable" true (undetectable >= 2);
  check "live faults detectable" 2
    (List.length
       (List.filter
          (fun fr ->
            match (fr.Pcc.fault, fr.Pcc.status) with
            | Fault.Reg_stuck { reg = "live"; _ }, (Pcc.Covered _ | Pcc.Uncovered) ->
                true
            | _ -> false)
          r.Pcc.faults))

let suite =
  [
    Alcotest.test_case "fault enumeration" `Quick fault_enumeration;
    Alcotest.test_case "stuck-at application" `Quick fault_apply_stuck_at;
    Alcotest.test_case "unknown register rejected" `Quick
      fault_apply_unknown_reg;
    Alcotest.test_case "condition stuck-at" `Quick fault_cond_stuck;
    Alcotest.test_case "miter: identical designs" `Quick
      miter_identical_designs_equal;
    Alcotest.test_case "miter: seeded bug detectable" `Quick
      miter_detects_seeded_bug;
    Alcotest.test_case "miter: interface mismatch" `Quick
      miter_interface_mismatch;
    Alcotest.test_case "pcc: weak property set incomplete" `Quick
      pcc_weak_set_incomplete;
    Alcotest.test_case "pcc: strong property set complete" `Quick
      pcc_strong_set_complete;
    Alcotest.test_case "pcc: coverage monotone in properties" `Quick
      pcc_coverage_monotone;
    Alcotest.test_case "pcc: undetectable faults excluded" `Quick
      pcc_undetectable_excluded;
  ]
