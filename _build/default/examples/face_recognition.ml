(* The full case study: the Figure 2 face recognition system taken
   through all four levels of the Symbad flow, with every verification
   step.  This is the programmatic version of Section 4 of the paper.

   Run with: dune exec examples/face_recognition.exe [-- --full] *)

open Symbad_core

let () =
  let full = Array.exists (fun a -> a = "--full") Sys.argv in
  let workload =
    if full then Face_app.default_workload else Face_app.smoke_workload
  in
  Format.printf "=== Symbad flow: face recognition (%d frames) ===@.@."
    (List.length workload.Face_app.frames);
  let report = Flow.run ~workload () in
  Format.printf "%a@." Flow.pp report;

  (* recognition quality of the underlying pipeline *)
  let db =
    Symbad_image.Pipeline.enroll ~size:workload.Face_app.size
      ~identities:workload.Face_app.identities ()
  in
  let quality = Symbad_image.Metrics.evaluate ~size:workload.Face_app.size ~poses:3 db in
  Format.printf "recognition quality: %a@.@." Symbad_image.Metrics.pp quality;

  (* what the final mapping looks like *)
  Format.printf "final (level 3) mapping:@.%a@." Mapping.pp
    report.Flow.mapping;

  (* show the verification flow catching a seeded reconfiguration bug:
     the SW "forgets" to load config2 before calling ROOT *)
  Format.printf "--- seeded bug: missing load before ROOT ---@.";
  let graph = Face_app.graph workload in
  let l1 = Level1.run graph in
  let mapping =
    Mapping.refine_to_fpga
      (Face_app.level2_mapping ~profile:l1.Level1.profile graph)
      Face_app.level3_refinement
  in
  let buggy_sw =
    Level3.instrumented_program ~omit_load_for:[ "ROOT" ]
      (List.map (fun (t : Task_graph.task) -> t.Task_graph.name)
         (List.filter
            (fun (t : Task_graph.task) ->
              match Mapping.target_of mapping t.Task_graph.name with
              | Mapping.Sw | Mapping.Fpga _ -> true
              | Mapping.Hw -> false)
            (Task_graph.topological_order graph)))
      mapping
  in
  let info = Level3.config_info_of mapping in
  (match Symbad_symbc.Check.check info buggy_sw with
  | Symbad_symbc.Check.Inconsistent cex ->
      Format.printf "SymbC found the bug: %s() with FPGA state %s@."
        cex.Symbad_symbc.Check.failing_call
        (Symbad_symbc.Check.fpga_state_to_string
           cex.Symbad_symbc.Check.state_at_call)
  | Symbad_symbc.Check.Consistent _ ->
      Format.printf "unexpected: buggy SW passed SymbC@.");
  exit (if report.Flow.all_passed then 0 else 1)
