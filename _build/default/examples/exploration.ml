(* Architecture exploration of the face recognition system: the
   II-III-IV iteration loop of the paper's Section 2, grading candidate
   HW/SW partitions by performance, silicon usage and power, then
   comparing the paper's two implementations — "static" all-HW versus the
   reconfigurable FPGA mapping.

   Run with: dune exec examples/exploration.exe *)

open Symbad_core

let () =
  let w = Face_app.smoke_workload in
  let graph = Face_app.graph w in
  let l1 = Level1.run graph in
  let profile = l1.Level1.profile in
  Format.printf "profiling ranking (level-1 execution):@.";
  List.iteri
    (fun i (task, units) ->
      if i < 8 then Format.printf "  %2d. %-10s %8d units@." (i + 1) task units)
    (Symbad_tlm.Annotation.Profile.ranking profile);

  let task_area = Level3.default_task_area in
  Format.printf "@.sweep of HW-set sizes (transformation 2 applied 0..6 times):@.";
  let grades =
    Explore.sweep_hw_sets ~task_area ~profile ~pinned_sw:Face_app.pinned_sw
      ~max_hw:6 graph
  in
  List.iter (fun g -> Format.printf "  %a@." Explore.pp_grade g) grades;
  Format.printf "@.Pareto-optimal points:@.";
  List.iter (fun g -> Format.printf "  %a@." Explore.pp_grade g)
    (Explore.pareto grades);

  (* static vs reconfigurable: the paper's first implementation followed
     a "static approach where all HW resources ... were assumed to be
     simultaneously available" — one big FPGA configuration holding both
     DISTANCE and ROOT, loaded once.  The new flow splits them into two
     contexts, shrinking the fabric at the cost of per-frame
     reconfigurations. *)
  Format.printf "@.static (one configuration) vs reconfigurable (two contexts):@.";
  let mapping2 = Face_app.level2_mapping ~profile graph in
  let static =
    (* the single configuration needs a fabric big enough for both *)
    let config =
      { Level3.default_config with Level3.fpga_capacity = 2000 }
    in
    Explore.grade_level3 ~config ~task_area ~label:"static" graph
      (Mapping.refine_to_fpga mapping2
         [ ("DISTANCE", "config_all"); ("ROOT", "config_all") ])
  in
  let reconf =
    Explore.grade_level3 ~task_area ~label:"reconfig" graph
      (Mapping.refine_to_fpga mapping2 Face_app.level3_refinement)
  in
  Format.printf "  %a@.  %a@." Explore.pp_grade static Explore.pp_grade reconf;
  let speed_penalty =
    float_of_int reconf.Explore.latency_ns
    /. float_of_int static.Explore.latency_ns
  in
  let area_saving =
    1.
    -. (float_of_int reconf.Explore.area /. float_of_int static.Explore.area)
  in
  Format.printf
    "  reconfigurable: %.1f%% smaller silicon for %.2fx the latency@."
    (100. *. area_saving) speed_penalty
