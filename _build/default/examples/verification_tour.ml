(* A tour of every verification technology in the flow, each shown
   catching a seeded bug and passing the fixed design:

     1. ATPG coverage + memory inspection        (level 1)
     2. LPV deadlock freeness                    (level 1)
     3. LPV timing / FIFO dimensioning           (level 2)
     4. SymbC consistency (product + absint)     (level 3)
     5. Model checking + PCC + interface synth   (level 4)

   Run with: dune exec examples/verification_tour.exe *)

module Hdl = Symbad_hdl
module E = Symbad_hdl.Expr
module Mc = Symbad_mc

let banner title = Format.printf "@.--- %s ---@." title

(* 1. ATPG + memory inspection ------------------------------------- *)

let atpg_tour () =
  banner "1. ATPG (Laerte++): coverage-driven tests + memory inspection";
  let model = Symbad_atpg.Models.root () in
  let tests = Symbad_atpg.Genetic_engine.generate model in
  let e = Symbad_atpg.Testbench.evaluate ~engine:"genetic" model tests in
  Format.printf "%a@." Symbad_atpg.Testbench.pp_evaluation e;
  (* the memory-initialisation bug class *)
  let mem, frame =
    Symbad_atpg.Memcheck.accumulator_model ~clears_buffer:false ~cells:4
  in
  ignore (frame [ 10; 20; 30; 40 ]);
  Format.printf "%a" Symbad_atpg.Memcheck.report mem

(* 2. LPV deadlock --------------------------------------------------- *)

let lpv_deadlock_tour () =
  banner "2. LPV: deadlock freeness via the invariant LP";
  let net = Symbad_lpv.Petri.create () in
  let producer = Symbad_lpv.Petri.add_transition net ~delay:2 "producer" in
  let consumer = Symbad_lpv.Petri.add_transition net ~delay:3 "consumer" in
  let data = Symbad_lpv.Petri.add_place net ~tokens:0 "data" in
  let ack = Symbad_lpv.Petri.add_place net ~tokens:0 "ack" in
  Symbad_lpv.Petri.add_post net ~transition:producer ~place:data ();
  Symbad_lpv.Petri.add_pre net ~transition:consumer ~place:data ();
  Symbad_lpv.Petri.add_post net ~transition:consumer ~place:ack ();
  Symbad_lpv.Petri.add_pre net ~transition:producer ~place:ack ();
  Format.printf "unprimed ack loop:  %a@." Symbad_lpv.Deadlock.pp_verdict
    (Symbad_lpv.Deadlock.check net);
  (* fix: prime the acknowledgement channel *)
  let fixed = Symbad_lpv.Petri.create () in
  let producer = Symbad_lpv.Petri.add_transition fixed ~delay:2 "producer" in
  let consumer = Symbad_lpv.Petri.add_transition fixed ~delay:3 "consumer" in
  let data = Symbad_lpv.Petri.add_place fixed ~tokens:0 "data" in
  let ack = Symbad_lpv.Petri.add_place fixed ~tokens:1 "ack" in
  Symbad_lpv.Petri.add_post fixed ~transition:producer ~place:data ();
  Symbad_lpv.Petri.add_pre fixed ~transition:consumer ~place:data ();
  Symbad_lpv.Petri.add_post fixed ~transition:consumer ~place:ack ();
  Symbad_lpv.Petri.add_pre fixed ~transition:producer ~place:ack ();
  Format.printf "primed ack loop:    %a@." Symbad_lpv.Deadlock.pp_verdict
    (Symbad_lpv.Deadlock.check fixed);
  Format.printf "throughput:         %a@." Symbad_lpv.Timing.pp_verdict
    (Symbad_lpv.Timing.min_cycle_ratio fixed)

(* 3. SymbC: both engines -------------------------------------------- *)

let symbc_tour () =
  banner "3. SymbC: product reachability + abstract interpretation";
  let info =
    Symbad_symbc.Config_info.make
      ~fpga_functions:[ "filter"; "transform" ]
      ~configurations:
        [ ("cfgA", [ "filter" ]); ("cfgB", [ "transform" ]) ]
      ()
  in
  let buggy =
    Symbad_symbc.Parser.parse
      {| load(cfgA);
         while (*) {
           filter();
           if (*) { load(cfgB); transform(); }
           filter();   // BUG: cfgB may still be loaded
         } |}
  in
  Format.printf "product engine: %a@." Symbad_symbc.Check.pp_verdict
    (Symbad_symbc.Check.check info buggy);
  Format.printf "absint engine:  %a@." Symbad_symbc.Absint.pp_verdict
    (Symbad_symbc.Absint.analyze info buggy);
  let fixed =
    Symbad_symbc.Parser.parse
      {| load(cfgA);
         while (*) {
           filter();
           if (*) { load(cfgB); transform(); load(cfgA); }
           filter();
         } |}
  in
  Format.printf "after the fix:  %a@." Symbad_symbc.Check.pp_verdict
    (Symbad_symbc.Check.check info fixed)

(* 4. Model checking + PCC ------------------------------------------- *)

let mc_tour () =
  banner "4. Model checking: seeded FIFO bug, then the proof";
  let buggy = Hdl.Rtl_lib.fifo_ctrl_buggy ~addr_width:2 () in
  let good = Hdl.Rtl_lib.fifo_ctrl ~addr_width:2 () in
  let bound =
    Mc.Prop.make ~name:"count_le_depth"
      (E.ule (E.reg "count") (E.const ~width:3 4))
  in
  List.iter
    (fun (label, nl) ->
      let r = Mc.Engine.check nl bound in
      Format.printf "%-8s %a@." label Mc.Engine.pp_report r)
    [ ("buggy", buggy); ("fixed", good) ];
  (* and a waveform of the overflow for the debugger *)
  let stim =
    List.init 6 (fun _ ->
        [ ("push", Hdl.Bitvec.one ~width:1); ("pop", Hdl.Bitvec.zero ~width:1) ])
  in
  let vcd = Hdl.Vcd.of_simulation buggy stim in
  Format.printf "VCD dump of the overflow: %d bytes (feed to a waveform viewer)@."
    (String.length vcd)

(* 5. Interface synthesis -------------------------------------------- *)

let ifgen_tour () =
  banner "5. Automated interface synthesis with generated checkers";
  let spec =
    Symbad_core.Wrapper_gen.make_spec ~interface_name:"tour" ~data_width:8
      ~depth:2 ()
  in
  let _, props, reports = Symbad_core.Wrapper_gen.synthesize_and_verify spec in
  Format.printf "%d checkers generated from the spec; all proved: %b@."
    (List.length props)
    (Mc.Engine.all_proved reports)

let () =
  atpg_tour ();
  lpv_deadlock_tour ();
  symbc_tour ();
  mc_tour ();
  ifgen_tour ();
  Format.printf "@.tour complete.@."
