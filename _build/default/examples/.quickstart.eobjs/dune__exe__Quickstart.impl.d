examples/quickstart.ml: Format Level1 Level2 Lpv_bridge Mapping Symbad_core Symbad_lpv Symbad_sim Symbad_tlm Task_graph Token
