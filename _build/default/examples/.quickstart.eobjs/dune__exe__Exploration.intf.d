examples/exploration.mli:
