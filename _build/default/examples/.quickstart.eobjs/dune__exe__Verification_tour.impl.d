examples/verification_tour.ml: Format List String Symbad_atpg Symbad_core Symbad_hdl Symbad_lpv Symbad_mc Symbad_symbc
