examples/quickstart.mli:
