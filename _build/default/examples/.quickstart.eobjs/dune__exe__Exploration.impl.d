examples/exploration.ml: Explore Face_app Format Level1 Level3 List Mapping Symbad_core Symbad_tlm
