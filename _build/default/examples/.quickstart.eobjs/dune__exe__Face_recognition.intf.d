examples/face_recognition.mli:
