examples/edge_camera.mli:
