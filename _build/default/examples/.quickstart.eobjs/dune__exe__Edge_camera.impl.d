examples/edge_camera.ml: Array Format Level1 Level3 List Mapping Symbad_core Symbad_fpga Symbad_image Symbad_sim Symbad_symbc Task_graph Token
