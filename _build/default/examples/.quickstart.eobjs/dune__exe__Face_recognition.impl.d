examples/face_recognition.ml: Array Face_app Flow Format Level1 Level3 List Mapping Symbad_core Symbad_image Symbad_symbc Sys Task_graph
