(* A second multimedia application on the same reconfigurable platform:
   a smart edge-detecting camera (motion/contour extraction for the
   "advanced human-machine interfaces" market the paper mentions).

   It reuses the platform unchanged — same CPU, same AMBA bus, same
   embedded FPGA — and maps its two filter kernels into two FPGA
   contexts, demonstrating the "flexibility to possibly implement other
   applications of the same family".

   Run with: dune exec examples/edge_camera.exe *)

open Symbad_core
module I = Symbad_image

let frames = List.init 6 (fun i -> (i mod 3, 1 + (i mod 2)))
let size = 48

(* CAMERA -> BAYER -> EROSION (fpga ctxA) -> EDGE (fpga ctxB) -> STATS *)
let graph =
  let t = Task_graph.transform in
  let frames_arr = Array.of_list frames in
  let camera =
    Task_graph.source ~name:"CAMERA" ~outputs:[ "raw" ] ~work:(size * size)
      (fun i ->
        if i >= Array.length frames_arr then None
        else begin
          let identity, pose = frames_arr.(i) in
          Some [ Token.Frame (I.Pipeline.camera ~size ~identity ~pose ()) ]
        end)
  in
  let bayer =
    t ~name:"BAYER" ~inputs:[ "raw" ] ~outputs:[ "gray" ]
      ~work:(fun _ -> I.Bayer.work ~width:size ~height:size)
      (function
        | [ raw ] -> [ Token.Frame (I.Bayer.demosaic (Token.to_frame raw)) ]
        | _ -> assert false)
  in
  let erosion =
    t ~name:"EROSION" ~inputs:[ "gray" ] ~outputs:[ "clean" ]
      ~work:(fun _ -> I.Erosion.work ~width:size ~height:size)
      (function
        | [ gray ] -> [ Token.Frame (I.Erosion.apply (Token.to_frame gray)) ]
        | _ -> assert false)
  in
  let edge =
    t ~name:"EDGE" ~inputs:[ "clean" ] ~outputs:[ "contours" ]
      ~work:(fun _ -> I.Edge.work ~width:size ~height:size)
      (function
        | [ clean ] -> [ Token.Frame (I.Edge.detect (Token.to_frame clean)) ]
        | _ -> assert false)
  in
  let stats =
    t ~name:"STATS" ~inputs:[ "contours" ] ~outputs:[ "edge_count" ]
      ~work:(fun _ -> size * size)
      (function
        | [ contours ] ->
            [ Token.Num (I.Image.count_above (Token.to_frame contours) 128) ]
        | _ -> assert false)
  in
  Task_graph.make ~name:"edge_camera"
    ~tasks:[ camera; bayer; erosion; edge; stats ]
    ~sinks:[ "edge_count" ]

let () =
  (* level 1 *)
  let l1 = Level1.run graph in
  Format.printf "edge camera, %d frames:@." (List.length frames);
  List.iter
    (fun v -> Format.printf "  edge pixels: %s@." v)
    (Symbad_sim.Trace.stream_of l1.Level1.trace ~source:"STATS"
       ~label:"edge_count");

  (* level 3: both filters inside the FPGA, one context each *)
  let mapping =
    Mapping.refine_to_fpga
      (List.fold_left
         (fun m t -> Mapping.move m t Mapping.Hw)
         (Mapping.all_sw graph) [ "EROSION"; "EDGE" ])
      [ ("EROSION", "ctxA"); ("EDGE", "ctxB") ]
  in
  let config =
    {
      Level3.default_config with
      Level3.task_area = (function "EROSION" -> 400 | "EDGE" -> 600 | _ -> 300);
    }
  in
  let l3 = Level3.run ~config graph mapping in
  assert (
    Symbad_sim.Trace.equal_data ~reference:l1.Level1.trace
      ~actual:l3.Level3.trace);
  Format.printf "level 3 matches level 1; latency %dns, %a@."
    l3.Level3.latency_ns Symbad_fpga.Fpga.pp_stats l3.Level3.fpga_stats;

  (* context thrashing analysis: EROSION and EDGE alternate every frame,
     so two separate contexts reconfigure twice per frame; Placement
     finds the one-context partition if it fits, halving the traffic *)
  let resources =
    [
      Symbad_fpga.Resource.algorithm ~area:400 "EROSION";
      Symbad_fpga.Resource.algorithm ~area:600 "EDGE";
    ]
  in
  let calls = l3.Level3.call_sequence in
  List.iter
    (fun cap ->
      match
        Symbad_fpga.Placement.best_partition ~capacity:cap ~max_contexts:2
          ~calls resources
      with
      | Some best ->
          Format.printf
            "  fabric capacity %4d: best partition %a -> %d reconfigurations@."
            cap Symbad_fpga.Placement.pp_partition
            best.Symbad_fpga.Placement.partition
            best.Symbad_fpga.Placement.reconfigurations
      | None -> Format.printf "  fabric capacity %4d: nothing fits@." cap)
    [ 600; 1200 ];

  (* SymbC on the generated software *)
  Format.printf "SymbC: %a@."
    Symbad_symbc.Check.pp_verdict
    (Symbad_symbc.Check.check l3.Level3.config_info l3.Level3.instrumented_sw)
