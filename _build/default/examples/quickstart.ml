(* Quickstart: build a three-task dataflow spec, simulate it untimed
   (level 1), map it onto the CPU + bus platform (level 2), and check it
   for deadlock with LPV — the smallest useful tour of the API.

   Run with: dune exec examples/quickstart.exe *)

open Symbad_core

(* A toy pipeline: SOURCE produces numbers, SCALE doubles them, SINK
   collects them. *)
let graph =
  let source =
    Task_graph.source ~name:"SOURCE" ~outputs:[ "raw" ] ~work:10 (fun i ->
        if i >= 5 then None else Some [ Token.Num (i * i) ])
  in
  let scale =
    Task_graph.transform ~name:"SCALE" ~inputs:[ "raw" ] ~outputs:[ "scaled" ]
      ~work:(fun _ -> 25)
      (function
        | [ Token.Num n ] -> [ Token.Num (2 * n) ]
        | _ -> invalid_arg "SCALE expects one number")
  in
  let sink =
    Task_graph.transform ~name:"SINK" ~inputs:[ "scaled" ] ~outputs:[ "out" ]
      ~work:(fun _ -> 5)
      (function
        | [ t ] -> [ t ]
        | _ -> invalid_arg "SINK expects one token")
  in
  Task_graph.make ~name:"quickstart" ~tasks:[ source; scale; sink ]
    ~sinks:[ "out" ]

let () =
  (* Level 1: untimed functional simulation *)
  let l1 = Level1.run graph in
  Format.printf "level 1 produced %d trace entries:@."
    (Symbad_sim.Trace.length l1.Level1.trace);
  Format.printf "%a@." Symbad_sim.Trace.pp l1.Level1.trace;

  (* Level 2: map SCALE to hardware, everything else on the CPU *)
  let mapping =
    Mapping.move (Mapping.all_sw graph) "SCALE" Mapping.Hw
  in
  let l2 = Level2.run graph mapping in
  Format.printf "level 2 latency: %dns, CPU busy %dns, bus %a@."
    l2.Level2.latency_ns
    l2.Level2.cpu_stats.Symbad_tlm.Cpu.busy_ns
    Symbad_tlm.Bus.pp_report l2.Level2.bus_report;

  (* the refined model must compute the same data *)
  assert (
    Symbad_sim.Trace.equal_data ~reference:l1.Level1.trace
      ~actual:l2.Level2.trace);
  Format.printf "level 2 trace matches level 1@.";

  (* LPV: prove the communication structure deadlock-free *)
  Format.printf "LPV: %a@." Symbad_lpv.Deadlock.pp_verdict
    (Lpv_bridge.check_deadlock graph)
