#!/bin/sh
# Cram-style check of docs/CLI.md: run every `$ …` example line and
# compare its exit status against the `# exit: N` marker on the line
# (no marker = must exit 0).  `symbad` at the start of a command stands
# for the built binary (passed as $1); other commands (cmp, …) run as
# written.  All examples share one scratch directory, in order, so an
# example may read files a previous one wrote.
set -u

exe=$(cd "$(dirname "$1")" && pwd)/$(basename "$1")
doc=$(cd "$(dirname "$2")" && pwd)/$(basename "$2")

tmp=$(mktemp -d) || exit 1
trap 'rm -rf "$tmp"' EXIT
cd "$tmp" || exit 1

grep '^\$ ' "$doc" > examples.txt
status=0
n=0
while IFS= read -r line; do
  n=$((n + 1))
  cmd=${line#"$ "}
  expected=0
  case $cmd in
  *"# exit: "*)
    expected=${cmd##*"# exit: "}
    cmd=${cmd%%"#"*}
    ;;
  esac
  case $cmd in
  symbad\ *) cmd="\"$exe\" ${cmd#symbad }" ;;
  esac
  eval "$cmd" > /dev/null 2>&1
  got=$?
  if [ "$got" -ne "$expected" ]; then
    echo "CLI.md example $n failed: '$line' exited $got, expected $expected" >&2
    status=1
  fi
done < examples.txt

[ "$n" -gt 0 ] || { echo "CLI.md: no examples found" >&2; status=1; }
[ "$status" -eq 0 ] && echo "CLI.md: $n examples ok"
exit $status
