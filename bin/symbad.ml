(* The symbad command-line tool: drive the design-and-verification flow
   on the face recognition case study from a shell.

     symbad flow [--frames N] [--size S] [--identities N]
                 [--jobs N] [--seed N] [--no-timings]
                 [--deadline SEC] [--budget N] [--retries N]
                 [--trace FILE] [--metrics FILE]
                 [--json FILE] [--markdown FILE]
     symbad level (1|2|3) [...]         run one refinement level
     symbad verify (deadlock|timing|symbc|rtl)
     symbad explore [...]
     symbad recognize --identity I --pose P
     symbad stats [...]                 flow + telemetry summary table
     symbad report [...]                the unified verification report
     symbad bench [--check]             compare fresh runs vs BENCH_*.json

   Every subcommand that does verification work shares the same option
   vocabulary: [--jobs] (worker domains, also $SYMBAD_JOBS), [--seed]
   (test-generation seed), [--deadline]/[--budget]/[--retries] (the
   resource governor: wall-clock seconds, logical allowance, portfolio
   retries), [--json]/[--markdown] (report artefacts, "-" for
   stdout). *)

open Cmdliner
open Symbad_core
module Obs = Symbad_obs.Obs
module Tracer = Symbad_obs.Tracer
module Metrics = Symbad_obs.Metrics
module Json = Symbad_obs.Json
module Par = Symbad_par.Par

(* Every report artefact ("--markdown", "--json", "--trace", "--metrics")
   goes through this one path; "-" means stdout. *)
let write_artefact ~what path content =
  if String.equal path "-" then print_string content
  else
    match open_out path with
    | oc ->
        output_string oc content;
        close_out oc;
        Format.printf "%s written to %s@." what path
    | exception Sys_error msg ->
        Format.eprintf "symbad: cannot write %s: %s@." what msg;
        exit 1

let artefact ~what serialise = function
  | Some path -> write_artefact ~what path (serialise ())
  | None -> ()

(* Telemetry-consuming subcommands call this once their run is over: a
   nonzero dropped count means emissions were lost (a worker domain ran
   outside a buffered job), so every exported figure under-reports. *)
let warned_dropped = ref false

let warn_dropped () =
  let n = Obs.dropped_count () in
  if n > 0 && not !warned_dropped then begin
    warned_dropped := true;
    Format.eprintf
      "symbad: warning: %d telemetry emission%s dropped (worker domain \
       outside a buffered job) — counters and spans under-report the \
       parallel work@."
      n
      (if n = 1 then "" else "s")
  end

(* --- the shared option vocabulary --- *)

type common = {
  frames : int;
  size : int;
  identities : int;
  jobs : int;  (* 0 = auto (one lane per core) *)
  seed : int;
  deadline : float option;  (* wall-clock seconds for governed checks *)
  budget : int option;  (* logical allowance: SAT conflicts AND patterns *)
  retries : int;  (* portfolio retries on inconclusive *)
  no_cache : bool;  (* bypass the content-addressed verdict cache *)
  cache_dir : string option;  (* overrides $SYMBAD_CACHE_DIR / default *)
}

let frames_arg =
  Arg.(value & opt int 8 & info [ "frames" ] ~docv:"N" ~doc:"Camera frames to process.")

let size_arg =
  Arg.(value & opt int 64 & info [ "size" ] ~docv:"PIXELS" ~doc:"Frame side length.")

let identities_arg =
  Arg.(value & opt int 20 & info [ "identities" ] ~docv:"N" ~doc:"Database population.")

let jobs_arg =
  let env = Cmd.Env.info "SYMBAD_JOBS" ~doc:"Default for $(b,--jobs)." in
  Arg.(value & opt int 0
       & info [ "jobs"; "j" ] ~docv:"N" ~env
           ~doc:"Worker domains for the parallel verification fan-outs \
                 (0 = one per core).  Results are identical at any width.")

let seed_arg =
  Arg.(value & opt int 1
       & info [ "seed" ] ~docv:"N" ~doc:"Seed for the test-generation engines.")

let json_arg =
  Arg.(value & opt (some string) None
       & info [ "json" ] ~docv:"FILE"
           ~doc:"Write the report as JSON (\"-\" for stdout).")

let markdown_arg =
  Arg.(value & opt (some string) None
       & info [ "markdown" ] ~docv:"FILE"
           ~doc:"Write the report as markdown (\"-\" for stdout).")

let deadline_arg =
  Arg.(value & opt (some float) None
       & info [ "deadline" ] ~docv:"SEC"
           ~doc:"Wall-clock budget for the governed verification work.  \
                 When it expires, running checks degrade to inconclusive \
                 verdicts carrying their partial results instead of \
                 running long.")

let budget_arg =
  Arg.(value & opt (some int) None
       & info [ "budget" ] ~docv:"N"
           ~doc:"Logical resource allowance: at most N SAT conflicts and \
                 N test patterns across the governed checks.  Splitting \
                 is deterministic, so governed reports are identical at \
                 any $(b,--jobs) width.")

let retries_arg =
  Arg.(value & opt int 0
       & info [ "retries" ] ~docv:"N"
           ~doc:"Portfolio retries: re-dispatch an inconclusive governed \
                 check up to N times, re-seeded, over the remaining \
                 budget.")

let no_cache_arg =
  Arg.(value & flag
       & info [ "no-cache" ]
           ~doc:"Bypass the content-addressed verdict cache: re-verify \
                 every RTL module even when a stored verdict matches, and \
                 store nothing back.")

let cache_dir_arg =
  let env = Cmd.Env.info "SYMBAD_CACHE_DIR" ~doc:"Default for $(b,--cache-dir)." in
  Arg.(value & opt (some string) None
       & info [ "cache-dir" ] ~docv:"DIR" ~env
           ~doc:"Directory of the verdict cache (default _symbad_cache).")

let common_term =
  let mk frames size identities jobs seed deadline budget retries no_cache
      cache_dir =
    { frames; size; identities; jobs; seed; deadline; budget; retries;
      no_cache; cache_dir }
  in
  Term.(const mk $ frames_arg $ size_arg $ identities_arg $ jobs_arg $ seed_arg
        $ deadline_arg $ budget_arg $ retries_arg $ no_cache_arg
        $ cache_dir_arg)

let with_pool c f =
  Par.with_pool ?jobs:(if c.jobs > 0 then Some c.jobs else None) f

(* The CLI's resource-governor surface: --deadline/--budget/--retries
   collapse into one Budget.t (None when all are absent, so ungoverned
   runs take the historical code paths untouched). *)
let budget_of c =
  match (c.deadline, c.budget, c.retries) with
  | None, None, 0 -> None
  | _ ->
      Some
        (Symbad_gov.Budget.make ?deadline_s:c.deadline ?conflicts:c.budget
           ?patterns:c.budget ~retries:c.retries ())

let gov_of ?label c =
  Option.map (fun b -> Symbad_gov.Gov.create ?label b) (budget_of c)

(* The verdict cache is on by default for the verification subcommands;
   --no-cache bypasses it entirely (no reads, no writes). *)
let cache_of c =
  if c.no_cache then None
  else Some (Symbad_cache.Cache.create ?dir:c.cache_dir ())

let report_cache_use c cache =
  match cache with
  | Some cc when not c.no_cache ->
      let h = Symbad_cache.Cache.hits cc
      and m = Symbad_cache.Cache.misses cc in
      if h + m > 0 then
        Format.printf "verdict cache: %d hit%s, %d miss%s (%s)@." h
          (if h = 1 then "" else "s")
          m
          (if m = 1 then "" else "es")
          (Symbad_cache.Cache.dir cc)
  | _ -> ()

let workload c =
  {
    Face_app.size = c.size;
    identities = c.identities;
    frames =
      List.init c.frames (fun i -> (i * 2 mod c.identities, 1 + (i mod 4)));
  }

(* Markdown verdict table shared by [verify] and ad-hoc reports. *)
let verdicts_markdown title verdicts =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "# %s\n\n| check | verdict | detail |\n|---|---|---|\n" title;
  List.iter
    (fun v ->
      add "| %s | %s | %s |\n" v.Verdict.name
        (if v.Verdict.passed then "PASS" else "FAIL")
        v.Verdict.detail)
    verdicts;
  Buffer.contents buf

(* --- flow --- *)

let run_flow c markdown json no_timings trace metrics =
  (* telemetry stays off (and off the hot paths) unless an export asks
     for it *)
  if trace <> None || metrics <> None then begin
    Obs.reset ();
    Obs.set_enabled true
  end;
  let w = workload c in
  let cache = cache_of c in
  let report =
    with_pool c (fun pool ->
        Flow.run ~pool ?cache ~seed:c.seed ~workload:w ?budget:(budget_of c) ())
  in
  Format.printf "%a@." Flow.pp report;
  report_cache_use c cache;
  artefact ~what:"markdown report" (fun () -> Flow.to_markdown report) markdown;
  artefact ~what:"json report"
    (fun () -> Flow.to_json ~timings:(not no_timings) report)
    json;
  artefact ~what:"chrome trace"
    (fun () -> Tracer.to_chrome_json (Obs.tracer ()))
    trace;
  artefact ~what:"metrics" (fun () -> Metrics.to_jsonl (Obs.metrics ())) metrics;
  if trace <> None || metrics <> None then warn_dropped ();
  if report.Flow.all_passed then 0 else 1

let flow_cmd =
  let doc = "Run the complete four-level design and verification flow." in
  let no_timings_arg =
    Arg.(value & flag
         & info [ "no-timings" ]
             ~doc:"Zero host times in the JSON report, making reports \
                   byte-comparable across runs and $(b,--jobs) widths.")
  in
  let trace_arg =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Enable telemetry and write a Chrome trace_event JSON \
                   timeline (load in chrome://tracing or Perfetto; \"-\" \
                   for stdout).")
  in
  let metrics_arg =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"FILE"
             ~doc:"Enable telemetry and write metrics as JSON lines (\"-\" \
                   for stdout).")
  in
  Cmd.v (Cmd.info "flow" ~doc)
    Term.(const run_flow $ common_term $ markdown_arg $ json_arg
          $ no_timings_arg $ trace_arg $ metrics_arg)

(* --- level --- *)

let run_level level c markdown json =
  let w = workload c in
  let graph = Face_app.graph w in
  let l1 = Level1.run graph in
  let report =
    match level with
    | 1 ->
        Format.printf "level 1: %a@." Symbad_sim.Kernel.pp_stats
          l1.Level1.kernel_stats;
        Format.printf "profiling ranking:@.%a@."
          Symbad_tlm.Annotation.Profile.pp l1.Level1.profile;
        Some
          (Json.Obj
             [
               ("level", Json.Int 1);
               ( "ranking",
                 Json.List
                   (List.map
                      (fun (task, units) ->
                        Json.Obj
                          [ ("task", Json.Str task); ("units", Json.Int units) ])
                      (Symbad_tlm.Annotation.Profile.ranking l1.Level1.profile))
               );
             ])
    | 2 ->
        let m = Face_app.level2_mapping ~profile:l1.Level1.profile graph in
        let r = Level2.run graph m in
        Format.printf "mapping:@.%a" Mapping.pp m;
        Format.printf "latency: %dns; %.0f kHz; cpu %a@.bus %a@."
          r.Level2.latency_ns
          (Level2.simulation_speed_khz ~bus_period_ns:10 r)
          Symbad_tlm.Cpu.pp_stats r.Level2.cpu_stats
          Symbad_tlm.Bus.pp_report r.Level2.bus_report;
        Some
          (Json.Obj
             [
               ("level", Json.Int 2);
               ("latency_ns", Json.Int r.Level2.latency_ns);
               ( "bus_utilisation",
                 Json.Float r.Level2.bus_report.Symbad_tlm.Bus.utilisation );
             ])
    | 3 ->
        let m =
          Mapping.refine_to_fpga
            (Face_app.level2_mapping ~profile:l1.Level1.profile graph)
            Face_app.level3_refinement
        in
        let r = Level3.run graph m in
        Format.printf "latency: %dns; %.0f kHz@.fpga %a@.bus %a@."
          r.Level3.latency_ns
          (Level3.simulation_speed_khz ~bus_period_ns:10 r)
          Symbad_fpga.Fpga.pp_stats r.Level3.fpga_stats
          Symbad_tlm.Bus.pp_report r.Level3.bus_report;
        Format.printf "instrumented SW:@.%a@." Symbad_symbc.Ast.pp
          r.Level3.instrumented_sw;
        Some
          (Json.Obj
             [
               ("level", Json.Int 3);
               ("latency_ns", Json.Int r.Level3.latency_ns);
               ( "bitstream_bytes",
                 Json.Int r.Level3.bus_report.Symbad_tlm.Bus.bitstream_bytes );
             ])
    | n ->
        Format.printf "no such level: %d (use 1, 2 or 3)@." n;
        None
  in
  match report with
  | None -> 1
  | Some j ->
      artefact ~what:"json report" (fun () -> Json.to_string j) json;
      artefact ~what:"markdown report"
        (fun () ->
          Printf.sprintf "# Level %d\n\n```\n%s\n```\n" level (Json.to_string j))
        markdown;
      0

let level_cmd =
  let doc = "Run one refinement level of the case study." in
  let level_arg =
    Arg.(required & pos 0 (some int) None & info [] ~docv:"LEVEL")
  in
  Cmd.v (Cmd.info "level" ~doc)
    Term.(const run_level $ level_arg $ common_term $ markdown_arg $ json_arg)

(* --- verify --- *)

let run_verify what c markdown json =
  let w = workload c in
  let graph = Face_app.graph w in
  let verdicts =
    match what with
    | "deadlock" ->
        Some
          [
            Verdict.of_lpv_deadlock
              (Lpv_bridge.check_deadlock ?gov:(gov_of ~label:"verify" c) graph);
          ]
    | "timing" ->
        let l1 = Level1.run graph in
        let m = Face_app.level2_mapping ~profile:l1.Level1.profile graph in
        let verdict, met =
          Lpv_bridge.check_deadline ~deadline_ns:40_000_000
            ~timing:Lpv_bridge.default_timing ~mapping:m
            ~profile:l1.Level1.profile ?gov:(gov_of ~label:"verify" c) graph
        in
        Some [ Verdict.of_lpv_timing ~deadline_ns:40_000_000 ~met verdict ]
    | "symbc" ->
        let l1 = Level1.run graph in
        let m =
          Mapping.refine_to_fpga
            (Face_app.level2_mapping ~profile:l1.Level1.profile graph)
            Face_app.level3_refinement
        in
        let r = Level3.run graph m in
        Some
          [
            Verdict.of_symbc
              (Symbad_symbc.Check.check r.Level3.config_info
                 r.Level3.instrumented_sw);
          ]
    | "rtl" ->
        let cache = cache_of c in
        let l4 =
          with_pool c (fun pool ->
              Level4.run ~pool ?cache ?gov:(gov_of ~label:"verify" c) ())
        in
        Format.printf "%a@." Level4.pp l4;
        report_cache_use c cache;
        Some (List.concat_map Level4.module_verdicts l4.Level4.modules)
    | other ->
        Format.printf "unknown check %S (deadlock|timing|symbc|rtl)@." other;
        None
  in
  match verdicts with
  | None -> 1
  | Some vs ->
      List.iter (fun v -> Format.printf "%a@." Verdict.pp v) vs;
      artefact ~what:"json report"
        (fun () ->
          Json.to_string (Json.List (List.map (Verdict.to_json ~timings:true) vs)))
        json;
      artefact ~what:"markdown report"
        (fun () -> verdicts_markdown ("Verification: " ^ what) vs)
        markdown;
      if List.for_all (fun v -> v.Verdict.passed) vs then 0 else 1

let verify_cmd =
  let doc = "Run one verification technology of the flow." in
  let what_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"CHECK")
  in
  Cmd.v (Cmd.info "verify" ~doc)
    Term.(const run_verify $ what_arg $ common_term $ markdown_arg $ json_arg)

(* --- lint --- *)

let prop_pairs props =
  List.map (fun p -> (Symbad_mc.Prop.name p, Symbad_mc.Prop.formula p)) props

(* The lintable corpus.  Netlists are linted WITH their properties:
   property cones keep verification-only registers (recovery's [nsave],
   [nonop]) live, so lint agrees with what the engines actually read. *)
let lint_reports c target rules ~escalate ~programs =
  let module Lint = Symbad_lint.Lint in
  with_pool c (fun pool ->
      let gov = gov_of ~label:"lint" c in
      (* --escalate folds model-checker verdicts into the warnings that
         carry obligations; the escalation runs under the same governor
         and is byte-identical at any --jobs width. *)
      let netlist ?(properties = []) nl =
        let r = Lint.run_netlist ~pool ?gov ?rules ~properties nl in
        if escalate then Lint.escalate ~pool ?gov ~properties nl r else r
      in
      let rtl () =
        List.map
          (fun (m : Level4.rtl_module) ->
            netlist ~properties:(prop_pairs m.Level4.properties)
              m.Level4.netlist)
          (Level4.modules ())
      in
      let recovery () =
        let nl = Symbad_resil.Recovery.netlist () in
        [
          netlist ~properties:(prop_pairs (Symbad_resil.Recovery.properties nl))
            nl;
        ]
      in
      let program () =
        let w = workload c in
        let graph = Face_app.graph w in
        let l1 = Level1.run graph in
        let m =
          Mapping.refine_to_fpga
            (Face_app.level2_mapping ~profile:l1.Level1.profile graph)
            Face_app.level3_refinement
        in
        let r = Level3.run graph m in
        let base =
          Lint.run_program ~pool ?gov ?rules ~name:"instrumented software"
            r.Level3.config_info r.Level3.instrumented_sw
        in
        if programs < 2 then [ base ]
        else
          (* --programs N: admission analysis of N copies of the
             reconfiguration program sharing the fabric.  The admission
             deadline is the --deadline value (a design parameter here,
             not the governor's wall clock — the report stays
             deterministic). *)
          let deadline_ns =
            Option.map (fun s -> int_of_float (s *. 1e9)) c.deadline
          in
          let tenants =
            List.init programs (fun i ->
                (Printf.sprintf "tenant-%d" (i + 1), r.Level3.instrumented_sw))
          in
          [
            base;
            Lint.run_tenants ~pool ?gov ?rules ?deadline_ns
              r.Level3.config_info tenants;
          ]
      in
      match target with
      | "all" -> Some (rtl () @ recovery () @ program ())
      | "rtl" -> Some (rtl ())
      | "recovery" -> Some (recovery ())
      | "program" -> Some (program ())
      | "demo" ->
          (* the seeded defective netlist: a stable exercise target for
             the error path (comb loop + width + multiple drivers) *)
          Some [ netlist Symbad_lint.Seeded.demo ]
      | "escalation" ->
          (* the seeded escalation netlist: two net.range warnings with
             obligations, one disprovable (the accumulator wraps) and one
             provable (d + ~d never carries) — the stable exercise target
             for --escalate *)
          Some [ netlist Symbad_lint.Seeded.escalation ]
      | _ -> None)

let run_lint target c rules_opt threshold escalate programs sarif markdown json
    =
  let module Lint = Symbad_lint.Lint in
  let rules =
    Option.map
      (fun s -> List.map String.trim (String.split_on_char ',' s))
      rules_opt
  in
  match lint_reports c target rules ~escalate ~programs with
  | exception Invalid_argument msg ->
      Format.eprintf "symbad: %s@." msg;
      2
  | None ->
      Format.eprintf
        "symbad: unknown lint target %S \
         (all|rtl|recovery|program|demo|escalation)@."
        target;
      2
  | Some reports ->
      let merged = Lint.merge ~target reports in
      List.iter (fun r -> Format.printf "%a" Lint.pp r) reports;
      artefact ~what:"json report"
        (fun () -> Json.to_string (Lint.to_json merged) ^ "\n")
        json;
      artefact ~what:"sarif report"
        (fun () -> Json.to_string (Symbad_lint.Sarif.of_report merged) ^ "\n")
        sarif;
      artefact ~what:"markdown report"
        (fun () -> String.concat "\n" (List.map Lint.to_markdown reports))
        markdown;
      if Lint.count_at_least threshold merged > 0 then 1 else 0

let lint_cmd =
  let doc =
    "Statically lint netlists and reconfiguration programs — the \
     diagnostics pass that runs before simulation and model checking."
  in
  let target_arg =
    Arg.(value & pos 0 string "all"
         & info [] ~docv:"TARGET"
             ~doc:"What to lint: all (default), rtl (the level-4 modules), \
                   recovery (the recovery controller), program (the \
                   instrumented reconfiguration software), demo (a \
                   seeded defective netlist) or escalation (a seeded \
                   netlist exercising $(b,--escalate)).")
  in
  let rules_arg =
    Arg.(value & opt (some string) None
         & info [ "rules" ] ~docv:"R1,R2"
             ~doc:"Comma-separated rule ids to run (default: every rule \
                   applicable to the target).  Unknown ids are rejected, \
                   not ignored.")
  in
  let threshold_arg =
    let sev_conv =
      Arg.enum
        (let module D = Symbad_lint.Diagnostic in
         [ ("error", D.Error); ("warning", D.Warning); ("info", D.Info) ])
    in
    Arg.(value & opt sev_conv Symbad_lint.Diagnostic.Error
         & info [ "severity-threshold" ] ~docv:"SEV"
             ~doc:"Lowest severity that fails the run: error (default), \
                   warning or info.")
  in
  let escalate_arg =
    Arg.(value & flag
         & info [ "escalate" ]
             ~doc:"Lint-to-proof escalation: dispatch every warning that \
                   carries a proof obligation to the model checker.  \
                   Disproved warnings are promoted to errors with the \
                   counterexample trace attached; proved ones demote to \
                   info; inconclusive ones keep their severity.  Results \
                   are byte-identical at any $(b,--jobs) width.")
  in
  let programs_arg =
    Arg.(value & opt int 1
         & info [ "programs" ] ~docv:"N"
             ~doc:"Admission analysis: lint N concurrently admitted \
                   copies of the reconfiguration program as tenants \
                   sharing one fabric (program and all targets), running \
                   the sched.* rules over their interleaved product.  \
                   The admission deadline is $(b,--deadline).")
  in
  let sarif_arg =
    Arg.(value & opt (some string) None
         & info [ "sarif" ] ~docv:"FILE"
             ~doc:"Write the merged diagnostics as a SARIF 2.1.0 log \
                   (\"-\" for stdout).")
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(const run_lint $ target_arg $ common_term $ rules_arg
          $ threshold_arg $ escalate_arg $ programs_arg $ sarif_arg
          $ markdown_arg $ json_arg)

(* --- explore --- *)

let run_explore c max_hw json =
  let w = workload c in
  let graph = Face_app.graph w in
  let l1 = Level1.run graph in
  let grades =
    with_pool c (fun pool ->
        Explore.sweep_hw_sets ~pool ~task_area:Level3.default_task_area
          ~profile:l1.Level1.profile ~pinned_sw:Face_app.pinned_sw ~max_hw
          graph)
  in
  List.iter (fun g -> Format.printf "%a@." Explore.pp_grade g) grades;
  Format.printf "pareto:@.";
  let pareto = Explore.pareto grades in
  List.iter (fun g -> Format.printf "  %a@." Explore.pp_grade g) pareto;
  artefact ~what:"json report"
    (fun () ->
      let grade_json (g : Explore.grade) =
        Json.Obj
          [
            ("label", Json.Str g.Explore.label);
            ("latency_ns", Json.Int g.Explore.latency_ns);
            ("area", Json.Int g.Explore.area);
            ("bus_utilisation", Json.Float g.Explore.bus_utilisation);
            ("bitstream_bytes", Json.Int g.Explore.bitstream_bytes);
            ("energy_proxy", Json.Float g.Explore.energy_proxy);
          ]
      in
      Json.to_string
        (Json.Obj
           [
             ("grades", Json.List (List.map grade_json grades));
             ( "pareto",
               Json.List
                 (List.map (fun g -> Json.Str g.Explore.label) pareto) );
           ]))
    json;
  0

let explore_cmd =
  let doc = "Architecture exploration: sweep HW/SW partitions." in
  let max_hw_arg =
    Arg.(value & opt int 6 & info [ "max-hw" ] ~docv:"N" ~doc:"Largest HW set.")
  in
  Cmd.v (Cmd.info "explore" ~doc)
    Term.(const run_explore $ common_term $ max_hw_arg $ json_arg)

(* --- recognize --- *)

let run_recognize identity pose size identities =
  let db = Symbad_image.Pipeline.enroll ~size ~identities () in
  let raw = Symbad_image.Pipeline.camera ~size ~identity ~pose () in
  let verdict = Symbad_image.Pipeline.recognize db raw in
  Format.printf "%a@." Symbad_image.Winner.pp verdict;
  0

let recognize_cmd =
  let doc = "Recognise one synthetic camera frame against the database." in
  let identity_arg =
    Arg.(value & opt int 0 & info [ "identity" ] ~docv:"I" ~doc:"Subject identity.")
  in
  let pose_arg =
    Arg.(value & opt int 1 & info [ "pose" ] ~docv:"P" ~doc:"Pose (0 = frontal).")
  in
  Cmd.v (Cmd.info "recognize" ~doc)
    Term.(const run_recognize $ identity_arg $ pose_arg $ size_arg $ identities_arg)

(* --- stats (telemetry summary) --- *)

let run_stats c =
  Obs.reset ();
  Obs.set_enabled true;
  let w = workload c in
  let cache = cache_of c in
  let report =
    with_pool c (fun pool ->
        Flow.run ~pool ?cache ~seed:c.seed ~workload:w ?budget:(budget_of c) ())
  in
  let tracer = Obs.tracer () in
  Format.printf "%s@." (Metrics.to_table (Obs.metrics ()));
  Format.printf "spans: %d (levels %d, bus %d, sat %d, mc %d, par %d)@."
    (Tracer.span_count tracer)
    (List.length (Tracer.spans_with_cat tracer "level"))
    (List.length (Tracer.spans_with_cat tracer "bus"))
    (List.length (Tracer.spans_with_cat tracer "sat"))
    (List.length (Tracer.spans_with_cat tracer "mc"))
    (List.length (Tracer.spans_with_cat tracer "par"));
  warn_dropped ();
  if report.Flow.all_passed then 0 else 1

let stats_cmd =
  let doc =
    "Run the flow with telemetry enabled and print the metrics table \
     (counters, gauges, histograms) plus a span census."
  in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run_stats $ common_term)

(* --- faults (dependability campaign) --- *)

let run_faults c markdown json trials kinds_opt mode scrub_period trace metrics
    =
  if trace <> None || metrics <> None then begin
    Obs.reset ();
    Obs.set_enabled true
  end;
  let module Fault = Symbad_resil.Fault in
  let module Campaign = Symbad_resil.Campaign in
  let kinds =
    match kinds_opt with
    | None -> Ok Fault.all_kinds
    | Some s ->
        String.split_on_char ',' s
        |> List.fold_left
             (fun acc name ->
               match (acc, Fault.of_string (String.trim name)) with
               | (Error _ as e), _ -> e
               | Ok _, Error msg -> Error msg
               | Ok ks, Ok k -> Ok (ks @ [ k ]))
             (Ok [])
  in
  match kinds with
  | Error msg ->
      Format.eprintf "symbad: %s@." msg;
      2
  | Ok kinds -> (
      let w = workload c in
      let campaign mode =
        with_pool c (fun pool ->
            Campaign.run ~pool ?gov:(gov_of ~label:"faults" c) ~mode ~kinds
              ~trials_per_kind:trials ~workload:w ~scrub_period_ns:scrub_period
              ~seed:c.seed ())
      in
      let summarize (report : Campaign.report) =
        let v = Campaign.verdict report in
        Format.printf
          "%s mode: baseline latency %d ns, fabric area %d, %d trials (%d \
           skipped, %d masked)@."
          report.Campaign.mode report.Campaign.baseline_latency_ns
          report.Campaign.fabric_area
          (List.length report.Campaign.outcomes)
          report.Campaign.skipped report.Campaign.masked_trials;
        List.iter
          (fun row ->
            Format.printf
              "  %-14s injected %d/%d detected %d recovered %d masked %d \
               correct %d@."
              row.Campaign.row_kind row.Campaign.row_injected
              row.Campaign.row_trials row.Campaign.row_detected
              row.Campaign.row_recovered row.Campaign.row_masked
              row.Campaign.row_correct)
          report.Campaign.per_kind;
        Format.printf "%s: %s@."
          (if v.Verdict.passed then "PASS" else "FAIL")
          v.Verdict.detail
      in
      let finish ~passed ~md ~js =
        artefact ~what:"markdown report" md markdown;
        artefact ~what:"json report" js json;
        artefact ~what:"chrome trace"
          (fun () -> Tracer.to_chrome_json (Obs.tracer ()))
          trace;
        artefact ~what:"metrics"
          (fun () -> Metrics.to_jsonl (Obs.metrics ()))
          metrics;
        if trace <> None || metrics <> None then warn_dropped ();
        if passed then 0 else 1
      in
      match mode with
      | `One mode ->
          let report = campaign mode in
          summarize report;
          finish ~passed:report.Campaign.passed
            ~md:(fun () -> Campaign.to_markdown report)
            ~js:(fun () -> Json.to_string (Campaign.to_json report) ^ "\n")
      | `Both ->
          let scrub = campaign Campaign.Scrub in
          let tmr = campaign Campaign.Tmr in
          summarize scrub;
          summarize tmr;
          finish ~passed:(scrub.Campaign.passed && tmr.Campaign.passed)
            ~md:(fun () ->
              Campaign.compare_modes_markdown ~scrub ~tmr
              ^ "\n" ^ Campaign.to_markdown scrub ^ "\n"
              ^ Campaign.to_markdown tmr)
            ~js:(fun () ->
              Json.to_string
                (Json.Obj
                   [
                     ("scrub", Campaign.to_json scrub);
                     ("tmr", Campaign.to_json tmr);
                     ("comparison", Campaign.compare_modes ~scrub ~tmr);
                   ])
              ^ "\n"))

let faults_cmd =
  let doc =
    "Run a seeded fault-injection campaign against the level-3 platform: \
     bitstream SEUs, configuration upsets, bus errors and corruptions, \
     channel loss and stuck resources, each graded on detection, recovery, \
     masking and end-to-end correctness."
  in
  let trials_arg =
    Arg.(value & opt int 3
         & info [ "trials" ] ~docv:"N" ~doc:"Trials per fault kind.")
  in
  let kinds_arg =
    Arg.(value & opt (some string) None
         & info [ "kinds" ] ~docv:"K1,K2"
             ~doc:"Comma-separated fault kinds to inject (default: all).")
  in
  let mode_arg =
    Arg.(value
         & opt
             (enum
                [
                  ("scrub", `One Symbad_resil.Campaign.Scrub);
                  ("tmr", `One Symbad_resil.Campaign.Tmr);
                  ("both", `Both);
                ])
             (`One Symbad_resil.Campaign.Scrub)
         & info [ "mode" ] ~docv:"MODE"
             ~doc:"Operating mode under test: $(b,scrub) (detect and \
                   repair), $(b,tmr) (TMR + bus-ECC masking), or \
                   $(b,both) to run both campaigns and emit a \
                   side-by-side comparison.")
  in
  let scrub_arg =
    Arg.(value & opt int 10_000
         & info [ "scrub-period" ] ~docv:"NS"
             ~doc:"Readback-scrubbing period for configuration-upset \
                   trials; 0 disables scrubbing, making upsets \
                   undetectable (reported as failures).")
  in
  let markdown_arg =
    Arg.(value & opt (some string) None
         & info [ "markdown" ] ~docv:"PATH"
             ~doc:"Write the dependability report as markdown (\"-\" for \
                   stdout).")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"PATH"
             ~doc:"Write the dependability report as JSON (\"-\" for \
                   stdout); byte-identical at any $(b,--jobs) width.")
  in
  let trace_arg =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"PATH"
             ~doc:"Write a Chrome trace of the campaign (\"-\" for stdout).")
  in
  let metrics_arg =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"PATH"
             ~doc:"Write campaign metrics as JSONL (\"-\" for stdout).")
  in
  Cmd.v (Cmd.info "faults" ~doc)
    Term.(const run_faults $ common_term $ markdown_arg $ json_arg
          $ trials_arg $ kinds_arg $ mode_arg $ scrub_arg $ trace_arg
          $ metrics_arg)

(* --- wrapper (automated interface synthesis) --- *)

let run_wrapper data_width depth dump_vcd =
  let spec = Wrapper_gen.make_spec ~data_width ~depth () in
  let nl, props, reports = Wrapper_gen.synthesize_and_verify spec in
  Format.printf "synthesised %s: %d registers, area %d@."
    (Symbad_hdl.Netlist.name nl)
    (List.length (Symbad_hdl.Netlist.registers nl))
    (Symbad_hdl.Netlist.area nl);
  Format.printf "%d generated checkers:@." (List.length props);
  List.iter (fun r -> Format.printf "  %a@." Symbad_mc.Engine.pp_report r)
    reports;
  if dump_vcd then begin
    let bv w v = Symbad_hdl.Bitvec.make ~width:w v in
    let stim =
      List.init 8 (fun i ->
          [ ("req", bv 1 (if i < 4 then 1 else 0));
            ("data", bv data_width (i * 17));
            ("take", bv 1 (i mod 2)) ])
    in
    print_string (Symbad_hdl.Vcd.of_simulation nl stim)
  end;
  if Symbad_mc.Engine.all_proved reports then 0 else 1

let wrapper_cmd =
  let doc = "Synthesise an RTL/TL interface wrapper and verify it against its generated checkers." in
  let width_arg =
    Arg.(value & opt int 8 & info [ "data-width" ] ~docv:"BITS" ~doc:"Payload width.")
  in
  let depth_arg =
    Arg.(value & opt int 2 & info [ "depth" ] ~docv:"SLOTS" ~doc:"Buffer slots (1 or 2).")
  in
  let vcd_arg =
    Arg.(value & flag & info [ "vcd" ] ~doc:"Dump a sample waveform to stdout.")
  in
  Cmd.v (Cmd.info "wrapper" ~doc)
    Term.(const run_wrapper $ width_arg $ depth_arg $ vcd_arg)

(* --- report (the unified verification artefact) --- *)

let run_report c trials no_faults no_timings escalate markdown json trace =
  let module Report = Symbad_report.Report in
  let w = workload c in
  let cache = cache_of c in
  let r =
    with_pool c (fun pool ->
        Report.assemble ~pool ?cache ~seed:c.seed ~workload:w
          ?budget:(budget_of c) ~faults:(not no_faults)
          ~trials_per_kind:trials ~escalate ())
  in
  let timings = not no_timings in
  (match (markdown, json) with
  | None, None ->
      (* no artefact requested: the markdown report goes to stdout *)
      print_string (Report.to_markdown ~timings r)
  | _ ->
      artefact ~what:"markdown report"
        (fun () -> Report.to_markdown ~timings r)
        markdown;
      artefact ~what:"json report" (fun () -> Report.to_json ~timings r) json);
  artefact ~what:"chrome trace"
    (fun () -> Tracer.to_chrome_json (Obs.tracer ()))
    trace;
  warn_dropped ();
  if r.Report.all_passed then 0 else 1

let report_cmd =
  let doc =
    "Run the whole methodology — the four-level flow, the static lints \
     and a fault campaign — under one governor tree and assemble a \
     single self-contained report: verdict table, lint diagnostics, \
     self-time profile, merged counters, budget waterfall and trace \
     summary.  With $(b,--no-timings) the JSON and markdown are \
     byte-identical at any $(b,--jobs) width."
  in
  let trials_arg =
    Arg.(value & opt int 1
         & info [ "trials" ] ~docv:"N"
             ~doc:"Fault-campaign trials per fault kind.")
  in
  let no_faults_arg =
    Arg.(value & flag
         & info [ "no-faults" ] ~doc:"Skip the fault-injection campaign.")
  in
  let no_timings_arg =
    Arg.(value & flag
         & info [ "no-timings" ]
             ~doc:"Zero host times in the report, making it \
                   byte-comparable across runs and $(b,--jobs) widths.")
  in
  let trace_arg =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Also write the run's Chrome trace (one lane per worker \
                   domain, governor spend as counter tracks; \"-\" for \
                   stdout).")
  in
  let escalate_arg =
    Arg.(value & flag
         & info [ "escalate" ]
             ~doc:"Escalate lint warnings with proof obligations to the \
                   model checker (in the lint corpus and inside the \
                   flow's level 4): proved warnings are re-emitted as \
                   informational, disproved ones as errors with a \
                   counterexample.")
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(const run_report $ common_term $ trials_arg $ no_faults_arg
          $ no_timings_arg $ escalate_arg $ markdown_arg $ json_arg
          $ trace_arg)

(* --- bench --check (regression gate over the committed baselines) --- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run_bench check baseline_dir tolerance full =
  let module Campaign = Symbad_resil.Campaign in
  let module Lint = Symbad_lint.Lint in
  let module Budget = Symbad_gov.Budget in
  let baseline name =
    let path = Filename.concat baseline_dir name in
    match read_file path with
    | s -> Some (Json.parse_exn (String.trim s))
    | exception Sys_error _ ->
        Format.eprintf "symbad: missing baseline %s@." path;
        None
  in
  let mem path j =
    List.fold_left (fun acc k -> Option.bind acc (Json.member k)) (Some j) path
  in
  let num path j = Option.bind (mem path j) Json.to_number in
  let results = ref [] in
  let ok name = results := (name, None) :: !results in
  let fail name detail = results := (name, Some detail) :: !results in
  let check_exact name ~expected ~fresh =
    if String.equal expected fresh then ok name
    else fail name "fresh output differs from the committed baseline"
  in
  (match (baseline "BENCH_resil.json", check) with
  | None, _ -> fail "resil" "baseline missing"
  | Some b, false -> ignore b
  | Some b, true ->
      (* the campaign report is byte-stable (simulated time only), so
         the strongest check is the cheapest: exact JSON equality *)
      let fresh = Campaign.run ~seed:1 () in
      check_exact "resil campaign (exact)"
        ~expected:(Json.to_string b)
        ~fresh:(Json.to_string (Campaign.to_json fresh)));
  (match (baseline "BENCH_tmr.json", check) with
  | None, _ -> fail "tmr" "baseline missing"
  | Some b, false -> ignore b
  | Some b, true ->
      (* masked-vs-scrub: both campaign reports and the comparison block
         are simulated-time-only, so they are checked byte-for-byte; the
         recorded wall times gate under the tolerance *)
      let t0 = Unix.gettimeofday () in
      let scrub = Campaign.run ~mode:Campaign.Scrub ~seed:1 () in
      let tmr = Campaign.run ~mode:Campaign.Tmr ~seed:1 () in
      let secs = Unix.gettimeofday () -. t0 in
      let part name fresh =
        match mem [ name; "report" ] b with
        | None -> fail ("tmr " ^ name) "report missing from baseline"
        | Some expected ->
            check_exact
              ("tmr " ^ name ^ " campaign (exact)")
              ~expected:(Json.to_string expected)
              ~fresh:(Json.to_string (Campaign.to_json fresh))
      in
      part "scrub" scrub;
      part "tmr" tmr;
      (match mem [ "comparison" ] b with
      | None -> fail "tmr comparison" "missing from baseline"
      | Some expected ->
          check_exact "tmr comparison (exact)"
            ~expected:(Json.to_string expected)
            ~fresh:(Json.to_string (Campaign.compare_modes ~scrub ~tmr)));
      match (num [ "scrub"; "seconds" ] b, num [ "tmr"; "seconds" ] b) with
      | Some s1, Some s2 when s1 +. s2 > 0. ->
          if secs <= (s1 +. s2) *. tolerance then ok "tmr (wall)"
          else
            fail "tmr (wall)"
              (Printf.sprintf "%.2fs > %.2fs x%.1f" secs (s1 +. s2) tolerance)
      | _ -> ());
  (match (baseline "BENCH_lint.json", check) with
  | None, _ -> fail "lint" "baseline missing"
  | Some b, false -> ignore b
  | Some b, true -> (
      match mem [ "targets" ] b with
      | None -> fail "lint targets" "baseline has no targets object"
      | Some expected ->
          (* regenerate the per-target diagnostic counts (deterministic);
             the throughput row carries host timings and is not checked *)
          let w = Face_app.default_workload in
          let graph = Face_app.graph w in
          let l1 = Level1.run graph in
          let m3 =
            Mapping.refine_to_fpga
              (Face_app.level2_mapping ~profile:l1.Level1.profile graph)
              Face_app.level3_refinement
          in
          let l3 = Level3.run graph m3 in
          let row (r : Lint.report) =
            ( r.Lint.target,
              Json.Obj
                [
                  ("rules", Json.Int (List.length r.Lint.rules_run));
                  ("errors", Json.Int (Lint.errors r));
                  ("warnings", Json.Int (Lint.warnings r));
                ] )
          in
          let fresh =
            Json.Obj
              (List.map
                 (fun (m : Level4.rtl_module) ->
                   row
                     (Lint.run_netlist
                        ~properties:(prop_pairs m.Level4.properties)
                        m.Level4.netlist))
                 (Level4.modules ())
              @ [
                  (let nl = Symbad_resil.Recovery.netlist () in
                   row
                     (Lint.run_netlist
                        ~properties:
                          (prop_pairs (Symbad_resil.Recovery.properties nl))
                        nl));
                  row
                    (Lint.run_program ~name:"instrumented software"
                       l3.Level3.config_info l3.Level3.instrumented_sw);
                  row (Lint.run_netlist Symbad_lint.Seeded.demo);
                ])
          in
          check_exact "lint targets (exact)"
            ~expected:(Json.to_string expected)
            ~fresh:(Json.to_string fresh)));
  (match (baseline "BENCH_gov.json", check) with
  | None, _ -> fail "gov" "baseline missing"
  | Some b, false -> ignore b
  | Some b, true ->
      let verdict_mix (report : Flow.t) =
        List.fold_left
          (fun (p, f, i) (l : Flow.level_report) ->
            List.fold_left
              (fun (p, f, i) (v : Verdict.t) ->
                match v.Verdict.outcome with
                | Verdict.Inconclusive _ -> (p, f, i + 1)
                | _ when v.Verdict.passed -> (p + 1, f, i)
                | _ -> (p, f + 1, i))
              (p, f, i) l.Flow.verifications)
          (0, 0, 0) report.Flow.levels
      in
      let row label budget_of =
        match mem [ label ] b with
        | None -> fail ("gov " ^ label) "row missing from baseline"
        | Some base ->
            let t0 = Unix.gettimeofday () in
            let report =
              Flow.run ~workload:Face_app.smoke_workload ?budget:(budget_of ())
                ()
            in
            let secs = Unix.gettimeofday () -. t0 in
            let p, f, i = verdict_mix report in
            let want what = num [ what ] base in
            let mix_ok =
              want "passed" = Some (float_of_int p)
              && want "failed" = Some (float_of_int f)
              && want "inconclusive" = Some (float_of_int i)
            in
            if not mix_ok then
              fail
                ("gov " ^ label ^ " (verdict mix)")
                (Printf.sprintf "fresh %d/%d/%d" p f i)
            else ok ("gov " ^ label ^ " (verdict mix)");
            (match want "seconds" with
            | Some base_s when base_s > 0. ->
                (* host timing: a wide non-exceeding gate, not equality *)
                if secs <= base_s *. tolerance then
                  ok ("gov " ^ label ^ " (wall)")
                else
                  fail
                    ("gov " ^ label ^ " (wall)")
                    (Printf.sprintf "%.2fs > %.2fs x%.1f" secs base_s tolerance)
            | _ -> ())
      in
      let logical n () = Some (Budget.make ~conflicts:n ~patterns:n ()) in
      row "conflicts+patterns 1k" (logical 1_000);
      row "conflicts+patterns 0" (logical 0);
      if full then begin
        row "conflicts+patterns 10k" (logical 10_000);
        row "conflicts+patterns 100k" (logical 100_000);
        row "unlimited" (fun () -> None)
      end);
  (match (baseline "BENCH_inc.json", check) with
  | None, _ -> fail "inc" "baseline missing"
  | Some b, false -> ignore b
  | Some b, true ->
      (* the committed flags: the warm run must have replayed every
         level-4 module and reproduced the cold verdicts *)
      (match mem [ "level4_warm"; "all_cached" ] b with
      | Some (Json.Bool true) -> ok "inc warm all-cached (committed)"
      | _ -> fail "inc warm all-cached (committed)" "flag is false or missing");
      (match mem [ "level4_warm"; "identical" ] b with
      | Some (Json.Bool true) -> ok "inc warm identity (committed)"
      | _ -> fail "inc warm identity (committed)" "flag is false or missing");
      (* fresh: one module cold then warm against a scratch cache *)
      let module Cache = Symbad_cache.Cache in
      let dir =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "symbad_bench_check_inc_%d" (Unix.getpid ()))
      in
      let rec rm_rf path =
        if Sys.file_exists path then
          if Sys.is_directory path then (
            Array.iter
              (fun f -> rm_rf (Filename.concat path f))
              (Sys.readdir path);
            Sys.rmdir path)
          else Sys.remove path
      in
      rm_rf dir;
      Fun.protect ~finally:(fun () -> rm_rf dir) (fun () ->
          let cache = Cache.create ~dir () in
          let m = List.hd (Level4.modules ()) in
          let cold = Level4.verify_module ~cache m in
          let warm = Level4.verify_module ~cache m in
          let norm r =
            List.map
              (fun (v : Verdict.t) ->
                { v with Verdict.cached = false; Verdict.host_seconds = 0. })
              (Level4.module_verdicts r)
          in
          if warm.Level4.cached && norm cold = norm warm then
            ok "inc replay (fresh, one module)"
          else fail "inc replay (fresh, one module)" "warm run did not replay"));
  (match (baseline "BENCH_par.json", check) with
  | None, _ -> fail "par" "baseline missing"
  | Some b, false -> ignore b
  | Some b, true ->
      (* the committed identity flags must all be true — a false one
         means a recorded determinism break shipped *)
      (match b with
      | Json.Obj fields ->
          List.iter
            (fun (name, v) ->
              match Json.member "identical" v with
              | Some (Json.Bool true) -> ok ("par " ^ name ^ " (identical)")
              | Some _ -> fail ("par " ^ name ^ " (identical)") "flag is false"
              | None -> ())
            fields
      | _ -> fail "par" "baseline is not an object");
      if full then begin
        (* re-establish the flagship identity fresh: the refined-plan
           PCC fan-out at jobs=1 vs jobs=4 *)
        let fifo = Symbad_hdl.Rtl_lib.fifo_ctrl ~addr_width:2 () in
        let module E = Symbad_hdl.Expr in
        let module P = Symbad_mc.Prop in
        let push_ok = E.and_ (E.input "push") (E.not_ (P.output fifo "full")) in
        let pop_ok = E.and_ (E.input "pop") (E.not_ (P.output fifo "empty")) in
        let delta = E.sub (P.next (E.reg "count")) (E.reg "count") in
        let props =
          [
            P.make ~name:"not_full_and_empty"
              (E.not_ (E.and_ (P.output fifo "full") (P.output fifo "empty")));
            P.make ~name:"count_le_depth"
              (E.ule (E.reg "count") (E.const ~width:3 4));
            P.make_step ~name:"push_increments"
              (P.implies (E.and_ push_ok (E.not_ pop_ok))
                 (E.eq delta (E.const ~width:3 1)));
          ]
        in
        let run jobs =
          Par.with_pool ~jobs (fun pool ->
              Symbad_pcc.Pcc.run ~pool ~depth:8 fifo props)
        in
        if run 1 = run 4 then ok "par pcc identity (fresh, jobs 1 vs 4)"
        else fail "par pcc identity (fresh, jobs 1 vs 4)" "results differ"
      end);
  let rows = List.rev !results in
  if not check then begin
    Format.printf
      "committed baselines in %s:@.  %s@.run with --check to compare fresh \
       runs against them@."
      baseline_dir
      (String.concat ", "
         [ "BENCH_par.json"; "BENCH_inc.json"; "BENCH_gov.json";
           "BENCH_resil.json"; "BENCH_tmr.json"; "BENCH_lint.json" ]);
    if List.exists (fun (_, d) -> d <> None) rows then 2 else 0
  end
  else begin
    let failed = ref 0 in
    List.iter
      (fun (name, detail) ->
        match detail with
        | None -> Format.printf "ok    %s@." name
        | Some d ->
            incr failed;
            Format.printf "FAIL  %s: %s@." name d)
      rows;
    if !failed > 0 then begin
      Format.printf "bench --check: %d regression%s@." !failed
        (if !failed = 1 then "" else "s");
      1
    end
    else begin
      Format.printf "bench --check: all baselines hold@.";
      0
    end
  end

let bench_cmd =
  let doc =
    "Compare fresh runs against the committed BENCH_*.json baselines: \
     the fault campaign and lint counts must match exactly (they are \
     deterministic), governed verdict mixes must match with wall times \
     under a tolerance, the recorded parallel-identity flags must \
     hold, and the verdict cache must replay a warm module identically \
     to its cold run.  Nonzero exit on any regression."
  in
  let check_arg =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Run the comparisons (without it, just list the \
                   baselines).")
  in
  let dir_arg =
    Arg.(value & opt string "."
         & info [ "baseline-dir" ] ~docv:"DIR"
             ~doc:"Directory holding the BENCH_*.json files (default: the \
                   current directory).")
  in
  let tolerance_arg =
    Arg.(value & opt float 5.0
         & info [ "tolerance" ] ~docv:"X"
             ~doc:"Wall-clock gate: fresh seconds may be at most X times \
                   the committed figure (host timings are noisy; logical \
                   figures are always exact).")
  in
  let full_arg =
    Arg.(value & flag
         & info [ "full" ]
             ~doc:"Also run the expensive rows (ungoverned flow, large \
                   budgets, a fresh parallel-identity run).")
  in
  Cmd.v (Cmd.info "bench" ~doc)
    Term.(const run_bench $ check_arg $ dir_arg $ tolerance_arg $ full_arg)

let () =
  let doc = "Symbad: design and verification flow for reconfigurable SoCs." in
  let info = Cmd.info "symbad" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ flow_cmd; level_cmd; verify_cmd; lint_cmd; explore_cmd;
            recognize_cmd; stats_cmd; faults_cmd; wrapper_cmd; report_cmd;
            bench_cmd ]))
