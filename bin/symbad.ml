(* The symbad command-line tool: drive the design-and-verification flow
   on the face recognition case study from a shell.

     symbad flow [--frames N] [--size S] [--identities N]
                 [--trace FILE] [--metrics FILE] [--json FILE]
     symbad level (1|2|3) [...]         run one refinement level
     symbad verify (deadlock|timing|symbc|rtl)
     symbad explore [...]
     symbad recognize --identity I --pose P
     symbad stats [...]                 flow + telemetry summary table
*)

open Cmdliner
open Symbad_core
module Obs = Symbad_obs.Obs
module Tracer = Symbad_obs.Tracer
module Metrics = Symbad_obs.Metrics

(* Every report artefact ("--markdown", "--json", "--trace", "--metrics")
   goes through this one path; "-" means stdout. *)
let write_artefact ~what path content =
  if String.equal path "-" then print_string content
  else
    match open_out path with
    | oc ->
        output_string oc content;
        close_out oc;
        Format.printf "%s written to %s@." what path
    | exception Sys_error msg ->
        Format.eprintf "symbad: cannot write %s: %s@." what msg;
        exit 1

let workload frames size identities =
  {
    Face_app.size;
    identities;
    frames = List.init frames (fun i -> (i * 2 mod identities, 1 + (i mod 4)));
  }

let frames_arg =
  Arg.(value & opt int 8 & info [ "frames" ] ~docv:"N" ~doc:"Camera frames to process.")

let size_arg =
  Arg.(value & opt int 64 & info [ "size" ] ~docv:"PIXELS" ~doc:"Frame side length.")

let identities_arg =
  Arg.(value & opt int 20 & info [ "identities" ] ~docv:"N" ~doc:"Database population.")

(* --- flow --- *)

let run_flow frames size identities markdown json trace metrics =
  (* telemetry stays off (and off the hot paths) unless an export asks
     for it *)
  if trace <> None || metrics <> None then begin
    Obs.reset ();
    Obs.set_enabled true
  end;
  let w = workload frames size identities in
  let report = Flow.run ~workload:w () in
  Format.printf "%a@." Flow.pp report;
  let artefact what serialise = function
    | Some path -> write_artefact ~what path (serialise ())
    | None -> ()
  in
  artefact "markdown report" (fun () -> Flow.to_markdown report) markdown;
  artefact "json report" (fun () -> Flow.to_json report) json;
  artefact "chrome trace"
    (fun () -> Tracer.to_chrome_json (Obs.tracer ()))
    trace;
  artefact "metrics" (fun () -> Metrics.to_jsonl (Obs.metrics ())) metrics;
  if report.Flow.all_passed then 0 else 1

let flow_cmd =
  let doc = "Run the complete four-level design and verification flow." in
  let markdown_arg =
    Arg.(value & opt (some string) None
         & info [ "markdown" ] ~docv:"FILE"
             ~doc:"Write the report as markdown (\"-\" for stdout).")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the report as JSON (\"-\" for stdout).")
  in
  let trace_arg =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Enable telemetry and write a Chrome trace_event JSON \
                   timeline (load in chrome://tracing or Perfetto; \"-\" \
                   for stdout).")
  in
  let metrics_arg =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"FILE"
             ~doc:"Enable telemetry and write metrics as JSON lines (\"-\" \
                   for stdout).")
  in
  Cmd.v (Cmd.info "flow" ~doc)
    Term.(const run_flow $ frames_arg $ size_arg $ identities_arg
          $ markdown_arg $ json_arg $ trace_arg $ metrics_arg)

(* --- level --- *)

let run_level level frames size identities =
  let w = workload frames size identities in
  let graph = Face_app.graph w in
  let l1 = Level1.run graph in
  (match level with
  | 1 ->
      Format.printf "level 1: %a@." Symbad_sim.Kernel.pp_stats
        l1.Level1.kernel_stats;
      Format.printf "profiling ranking:@.%a@."
        Symbad_tlm.Annotation.Profile.pp l1.Level1.profile
  | 2 ->
      let m = Face_app.level2_mapping ~profile:l1.Level1.profile graph in
      let r = Level2.run graph m in
      Format.printf "mapping:@.%a" Mapping.pp m;
      Format.printf "latency: %dns; %.0f kHz; cpu %a@.bus %a@."
        r.Level2.latency_ns
        (Level2.simulation_speed_khz ~bus_period_ns:10 r)
        Symbad_tlm.Cpu.pp_stats r.Level2.cpu_stats
        Symbad_tlm.Bus.pp_report r.Level2.bus_report
  | 3 ->
      let m =
        Mapping.refine_to_fpga
          (Face_app.level2_mapping ~profile:l1.Level1.profile graph)
          Face_app.level3_refinement
      in
      let r = Level3.run graph m in
      Format.printf "latency: %dns; %.0f kHz@.fpga %a@.bus %a@."
        r.Level3.latency_ns
        (Level3.simulation_speed_khz ~bus_period_ns:10 r)
        Symbad_fpga.Fpga.pp_stats r.Level3.fpga_stats
        Symbad_tlm.Bus.pp_report r.Level3.bus_report;
      Format.printf "instrumented SW:@.%a@." Symbad_symbc.Ast.pp
        r.Level3.instrumented_sw
  | n -> Format.printf "no such level: %d (use 1, 2 or 3)@." n);
  0

let level_cmd =
  let doc = "Run one refinement level of the case study." in
  let level_arg =
    Arg.(required & pos 0 (some int) None & info [] ~docv:"LEVEL")
  in
  Cmd.v (Cmd.info "level" ~doc)
    Term.(const run_level $ level_arg $ frames_arg $ size_arg $ identities_arg)

(* --- verify --- *)

let run_verify what frames size identities =
  let w = workload frames size identities in
  let graph = Face_app.graph w in
  (match what with
  | "deadlock" ->
      Format.printf "%a@." Symbad_lpv.Deadlock.pp_verdict
        (Lpv_bridge.check_deadlock graph)
  | "timing" ->
      let l1 = Level1.run graph in
      let m = Face_app.level2_mapping ~profile:l1.Level1.profile graph in
      let verdict, met =
        Lpv_bridge.check_deadline ~deadline_ns:40_000_000
          ~timing:Lpv_bridge.default_timing ~mapping:m
          ~profile:l1.Level1.profile graph
      in
      Format.printf "%a; 40ms deadline met: %b@." Symbad_lpv.Timing.pp_verdict
        verdict met
  | "symbc" ->
      let l1 = Level1.run graph in
      let m =
        Mapping.refine_to_fpga
          (Face_app.level2_mapping ~profile:l1.Level1.profile graph)
          Face_app.level3_refinement
      in
      let r = Level3.run graph m in
      Format.printf "%a@." Symbad_symbc.Check.pp_verdict
        (Symbad_symbc.Check.check r.Level3.config_info r.Level3.instrumented_sw)
  | "rtl" -> Format.printf "%a@." Level4.pp (Level4.run ())
  | other ->
      Format.printf "unknown check %S (deadlock|timing|symbc|rtl)@." other);
  0

let verify_cmd =
  let doc = "Run one verification technology of the flow." in
  let what_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"CHECK")
  in
  Cmd.v (Cmd.info "verify" ~doc)
    Term.(const run_verify $ what_arg $ frames_arg $ size_arg $ identities_arg)

(* --- explore --- *)

let run_explore frames size identities max_hw =
  let w = workload frames size identities in
  let graph = Face_app.graph w in
  let l1 = Level1.run graph in
  let grades =
    Explore.sweep_hw_sets ~task_area:Level3.default_task_area
      ~profile:l1.Level1.profile ~pinned_sw:Face_app.pinned_sw ~max_hw graph
  in
  List.iter (fun g -> Format.printf "%a@." Explore.pp_grade g) grades;
  Format.printf "pareto:@.";
  List.iter (fun g -> Format.printf "  %a@." Explore.pp_grade g)
    (Explore.pareto grades);
  0

let explore_cmd =
  let doc = "Architecture exploration: sweep HW/SW partitions." in
  let max_hw_arg =
    Arg.(value & opt int 6 & info [ "max-hw" ] ~docv:"N" ~doc:"Largest HW set.")
  in
  Cmd.v (Cmd.info "explore" ~doc)
    Term.(const run_explore $ frames_arg $ size_arg $ identities_arg $ max_hw_arg)

(* --- recognize --- *)

let run_recognize identity pose size identities =
  let db = Symbad_image.Pipeline.enroll ~size ~identities () in
  let raw = Symbad_image.Pipeline.camera ~size ~identity ~pose () in
  let verdict = Symbad_image.Pipeline.recognize db raw in
  Format.printf "%a@." Symbad_image.Winner.pp verdict;
  0

let recognize_cmd =
  let doc = "Recognise one synthetic camera frame against the database." in
  let identity_arg =
    Arg.(value & opt int 0 & info [ "identity" ] ~docv:"I" ~doc:"Subject identity.")
  in
  let pose_arg =
    Arg.(value & opt int 1 & info [ "pose" ] ~docv:"P" ~doc:"Pose (0 = frontal).")
  in
  Cmd.v (Cmd.info "recognize" ~doc)
    Term.(const run_recognize $ identity_arg $ pose_arg $ size_arg $ identities_arg)

(* --- stats (telemetry summary) --- *)

let run_stats frames size identities =
  Obs.reset ();
  Obs.set_enabled true;
  let w = workload frames size identities in
  let report = Flow.run ~workload:w () in
  let tracer = Obs.tracer () in
  Format.printf "%s@." (Metrics.to_table (Obs.metrics ()));
  Format.printf "spans: %d (levels %d, bus %d, sat %d, mc %d)@."
    (Tracer.span_count tracer)
    (List.length (Tracer.spans_with_cat tracer "level"))
    (List.length (Tracer.spans_with_cat tracer "bus"))
    (List.length (Tracer.spans_with_cat tracer "sat"))
    (List.length (Tracer.spans_with_cat tracer "mc"));
  if report.Flow.all_passed then 0 else 1

let stats_cmd =
  let doc =
    "Run the flow with telemetry enabled and print the metrics table \
     (counters, gauges, histograms) plus a span census."
  in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(const run_stats $ frames_arg $ size_arg $ identities_arg)

(* --- wrapper (automated interface synthesis) --- *)

let run_wrapper data_width depth dump_vcd =
  let spec = Wrapper_gen.make_spec ~data_width ~depth () in
  let nl, props, reports = Wrapper_gen.synthesize_and_verify spec in
  Format.printf "synthesised %s: %d registers, area %d@."
    (Symbad_hdl.Netlist.name nl)
    (List.length (Symbad_hdl.Netlist.registers nl))
    (Symbad_hdl.Netlist.area nl);
  Format.printf "%d generated checkers:@." (List.length props);
  List.iter (fun r -> Format.printf "  %a@." Symbad_mc.Engine.pp_report r)
    reports;
  if dump_vcd then begin
    let bv w v = Symbad_hdl.Bitvec.make ~width:w v in
    let stim =
      List.init 8 (fun i ->
          [ ("req", bv 1 (if i < 4 then 1 else 0));
            ("data", bv data_width (i * 17));
            ("take", bv 1 (i mod 2)) ])
    in
    print_string (Symbad_hdl.Vcd.of_simulation nl stim)
  end;
  if Symbad_mc.Engine.all_proved reports then 0 else 1

let wrapper_cmd =
  let doc = "Synthesise an RTL/TL interface wrapper and verify it against its generated checkers." in
  let width_arg =
    Arg.(value & opt int 8 & info [ "data-width" ] ~docv:"BITS" ~doc:"Payload width.")
  in
  let depth_arg =
    Arg.(value & opt int 2 & info [ "depth" ] ~docv:"SLOTS" ~doc:"Buffer slots (1 or 2).")
  in
  let vcd_arg =
    Arg.(value & flag & info [ "vcd" ] ~doc:"Dump a sample waveform to stdout.")
  in
  Cmd.v (Cmd.info "wrapper" ~doc)
    Term.(const run_wrapper $ width_arg $ depth_arg $ vcd_arg)

let () =
  let doc = "Symbad: design and verification flow for reconfigurable SoCs." in
  let info = Cmd.info "symbad" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ flow_cmd; level_cmd; verify_cmd; explore_cmd; recognize_cmd;
            stats_cmd; wrapper_cmd ]))
