#!/usr/bin/env bash
# The incremental-verification guard (`dune build @inc-guard`):
#
#   1. a cold flow run against an empty verdict-cache directory,
#   2. a warm re-run against the same directory,
#
# asserting that the warm run (a) replayed every level-4 module from the
# cache (>= 1 hit, every module row marked "cached":true), and (b)
# reproduced the cold run's verdicts byte-identically once the cached
# markers are stripped.
set -euo pipefail

symbad=$(cd "$(dirname "$1")" && pwd)/$(basename "$1")
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

args=(flow --frames 2 --size 32 --identities 6
      --cache-dir "$dir" --no-timings --json)

"$symbad" "${args[@]}" "$dir/cold.json" >"$dir/cold.out"
"$symbad" "${args[@]}" "$dir/warm.json" >"$dir/warm.out"

if grep -q '"cached":true' "$dir/cold.json"; then
  echo "inc-guard: cold run claims cached verdicts" >&2
  exit 1
fi

hits=$(grep -o '"cached":true' "$dir/warm.json" | wc -l)
if [ "$hits" -lt 1 ]; then
  echo "inc-guard: warm run produced no cache hits" >&2
  exit 1
fi

# every level-4 module must have replayed: the CLI's own tally says
# "N hits, 0 misses"
if ! grep -q 'verdict cache: [1-9][0-9]* hits, 0 misses' "$dir/warm.out"; then
  echo "inc-guard: warm run was not fully cached:" >&2
  grep 'verdict cache' "$dir/warm.out" >&2 || true
  exit 1
fi

sed 's/,"cached":true//g' "$dir/warm.json" >"$dir/warm.stripped"
if ! cmp -s "$dir/cold.json" "$dir/warm.stripped"; then
  echo "inc-guard: warm verdicts differ from cold" >&2
  diff "$dir/cold.json" "$dir/warm.stripped" | head -5 >&2 || true
  exit 1
fi

echo "inc-guard: $hits cached rows, verdicts identical"
