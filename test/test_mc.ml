(* Tests for the model checker: BMC, k-induction, explicit-state, and
   the combined engine. *)

open Symbad_hdl
open Symbad_mc
module E = Expr

let check_bool = Alcotest.(check bool)

let fifo = Rtl_lib.fifo_ctrl ~addr_width:2 ()
let cw = 3
let depth = 4

let p_no_full_empty =
  Prop.make ~name:"not_full_and_empty"
    (E.not_ (E.and_ (Prop.output fifo "full") (Prop.output fifo "empty")))

let p_count_bound =
  Prop.make ~name:"count_le_depth"
    (E.ule (E.reg "count") (E.const ~width:cw depth))

let p_false =
  Prop.make ~name:"count_lt_2" (E.ult (E.reg "count") (E.const ~width:cw 2))

(* --- Prop --- *)

let prop_validation () =
  check_bool "width-1 ok" true
    (try ignore (Prop.validate fifo p_count_bound); true
     with Invalid_argument _ -> false);
  check_bool "wide formula rejected" true
    (try
       ignore (Prop.validate fifo (Prop.make ~name:"bad" (E.reg "count")));
       false
     with Invalid_argument _ -> true);
  check_bool "primed reg rejected in invariant" true
    (try
       ignore (Prop.validate fifo (Prop.make ~name:"bad" (E.eq (E.reg "count'") (E.reg "count"))));
       false
     with Invalid_argument _ -> true);
  check_bool "primed reg ok in step prop" true
    (try
       ignore
         (Prop.validate fifo
            (Prop.make_step ~name:"ok" (E.eq (E.reg "count'") (E.reg "count"))));
       true
     with Invalid_argument _ -> false)

let prop_next_rewrites () =
  let e = Prop.next (E.add (E.reg "count") (E.const ~width:cw 1)) in
  match e with
  | E.Binop (E.Add, E.Reg "count'", E.Const _) -> ()
  | _ -> Alcotest.fail "expected primed register"

(* --- BMC --- *)

let bmc_finds_shallow_bug () =
  match Bmc.check ~depth:6 fifo p_false with
  | Bmc.Counterexample tr ->
      (* counter reaches 2 after two pushes: trace length 3 states *)
      Alcotest.(check int) "trace length" 3 (Trace.length tr)
  | _ -> Alcotest.fail "expected counterexample"

let bmc_holds_within_depth () =
  match Bmc.check ~depth:6 fifo p_count_bound with
  | Bmc.Holds -> ()
  | _ -> Alcotest.fail "expected hold"

let bmc_counterexample_is_concrete () =
  match Bmc.check ~depth:6 fifo p_false with
  | Bmc.Counterexample tr ->
      (* replay the trace inputs on the simulator and reconfirm *)
      let sim = Simulator.create fifo in
      List.iteri
        (fun i frame ->
          let regs =
            List.map
              (fun (r : Netlist.register) ->
                (r.Netlist.name,
                 Bitvec.to_int (List.assoc r.Netlist.name (Simulator.state sim))))
              (Netlist.registers fifo)
          in
          List.iter
            (fun (n, v) ->
              Alcotest.(check int) (Printf.sprintf "reg %s @%d" n i) v
                (List.assoc n frame.Trace.regs))
            regs;
          let inputs =
            List.map (fun (n, v) -> (n, Bitvec.make ~width:1 v))
              frame.Trace.inputs
          in
          Simulator.step sim ~inputs)
        tr
  | _ -> Alcotest.fail "expected counterexample"

(* --- k-induction --- *)

let induction_proves () =
  match Bmc.inductive_step ~k:1 fifo p_count_bound with
  | Bmc.Inductive -> ()
  | _ -> Alcotest.fail "count bound is 1-inductive"

let induction_cti_for_unreachable_claim () =
  (* "count <= 2" holds up to depth but is not inductive (from count=2 a
     push gives 3): expect a CTI, not a proof *)
  let p = Prop.make ~name:"le2" (E.ule (E.reg "count") (E.const ~width:cw 2)) in
  match Bmc.inductive_step ~k:1 fifo p with
  | Bmc.Cti _ -> ()
  | _ -> Alcotest.fail "expected counterexample-to-induction"

(* --- Explicit --- *)

let explicit_proves () =
  match Explicit.check fifo p_count_bound with
  | Explicit.Proved { states } -> Alcotest.(check int) "states" 5 states
  | _ -> Alcotest.fail "expected proof"

let explicit_falsifies_with_shortest_path () =
  match Explicit.check fifo p_false with
  | Explicit.Falsified tr -> Alcotest.(check int) "bfs shortest" 3 (Trace.length tr)
  | _ -> Alcotest.fail "expected falsification"

let explicit_too_large () =
  let wide =
    Netlist.make ~name:"wide" ~inputs:[ ("x", 20) ] ~registers:[]
      ~outputs:[ ("y", Expr.input "x") ]
  in
  match Explicit.check wide (Prop.make ~name:"t" (E.const ~width:1 1)) with
  | Explicit.Too_large -> ()
  | _ -> Alcotest.fail "expected too-large"

let explicit_reachable_states () =
  Alcotest.(check (option int)) "fifo states" (Some 5)
    (Explicit.reachable_states fifo)

(* --- Engine --- *)

let engine_agreement () =
  (* engine and explicit agree on a battery of properties *)
  let props = [ p_no_full_empty; p_count_bound; p_false ] in
  List.iter
    (fun p ->
      let e = Engine.check fifo p in
      let x = Explicit.check fifo p in
      match (e.Engine.verdict, x) with
      | Engine.Proved _, Explicit.Proved _ -> ()
      | Engine.Falsified _, Explicit.Falsified _ -> ()
      | _ -> Alcotest.failf "disagreement on %s" (Prop.name p))
    props

let engine_step_property () =
  let push_ok = E.and_ (E.input "push") (E.not_ (Prop.output fifo "full")) in
  let pop_ok = E.and_ (E.input "pop") (E.not_ (Prop.output fifo "empty")) in
  let delta = E.sub (Prop.next (E.reg "count")) (E.reg "count") in
  let p =
    Prop.make_step ~name:"push_increments"
      (Prop.implies (E.and_ push_ok (E.not_ pop_ok))
         (E.eq delta (E.const ~width:cw 1)))
  in
  (match (Engine.check fifo p).Engine.verdict with
  | Engine.Proved _ -> ()
  | _ -> Alcotest.fail "step property should be proved");
  (* and a false step property is falsified *)
  let bad =
    Prop.make_step ~name:"never_changes"
      (E.eq (Prop.next (E.reg "count")) (E.reg "count"))
  in
  match (Engine.check fifo bad).Engine.verdict with
  | Engine.Falsified _ -> ()
  | _ -> Alcotest.fail "expected falsification"

let engine_on_buggy_fifo () =
  let buggy = Rtl_lib.fifo_ctrl_buggy ~addr_width:2 () in
  let p =
    Prop.make ~name:"count_le_depth"
      (E.ule (E.reg "count") (E.const ~width:cw depth))
  in
  match (Engine.check buggy p).Engine.verdict with
  | Engine.Falsified tr ->
      (* the overflow needs depth+1 pushes *)
      Alcotest.(check bool) "trace long enough" true (Trace.length tr >= depth + 1)
  | _ -> Alcotest.fail "seeded bug must be found"

let engine_root_correctness () =
  let nl = Rtl_lib.root_datapath ~width:8 () in
  let p = Prop.make ~name:"root_correct" (Rtl_lib.root_correctness ~width:8 ()) in
  match (Engine.check nl p).Engine.verdict with
  | Engine.Proved _ -> ()
  | _ -> Alcotest.fail "ROOT datapath correctness should be proved"

(* --- Session (the incremental engine core) --- *)

let drive_fresh p k =
  (* a throwaway session driven 0..k from scratch; the answer at k *)
  let s = Session.create fifo p in
  let r = ref Session.Base_holds in
  for i = 0 to k do
    r := Session.check_bound s i
  done;
  !r

let same_base a b =
  match (a, b) with
  | Session.Base_holds, Session.Base_holds -> true
  | Session.Base_cex ta, Session.Base_cex tb ->
      Trace.length ta = Trace.length tb
  | Session.Base_unknown, Session.Base_unknown -> true
  | _ -> false

let session_matches_fresh_per_bound () =
  (* one persistent session driven 0..max gives, at every bound, the
     same answer as a fresh solver re-driven from scratch — learned
     clauses and closed bounds never change verdicts *)
  List.iter
    (fun p ->
      let inc = Session.create fifo p in
      for k = 0 to 8 do
        let i = Session.check_bound inc k in
        let f = drive_fresh p k in
        check_bool
          (Printf.sprintf "%s @ bound %d" (Prop.name p) k)
          true (same_base i f)
      done)
    [ p_no_full_empty; p_count_bound; p_false ]

let session_no_nvars_drift () =
  let s = Session.create fifo p_count_bound in
  for k = 0 to 3 do
    match Session.check_bound s k with
    | Session.Base_holds -> ()
    | _ -> Alcotest.fail "expected hold"
  done;
  let n = Session.base_nvars s in
  (* re-posing closed bounds must neither solve afresh nor allocate *)
  for k = 0 to 3 do
    match Session.check_bound s k with
    | Session.Base_holds -> ()
    | _ -> Alcotest.fail "closed bound must stay held"
  done;
  Alcotest.(check int) "base nvars drift" n (Session.base_nvars s);
  (match Session.induction s 1 with
  | Session.Inductive -> ()
  | _ -> Alcotest.fail "count bound is 1-inductive");
  let m = Session.step_nvars s in
  (* the free instance serves every k without re-blasting *)
  (match Session.induction s 1 with
  | Session.Inductive -> ()
  | _ -> Alcotest.fail "still 1-inductive");
  Alcotest.(check int) "step nvars drift" m (Session.step_nvars s)

let session_cex_is_concrete () =
  let s = Session.create fifo p_false in
  let rec go k =
    if k > 6 then Alcotest.fail "expected counterexample"
    else
      match Session.check_bound s k with
      | Session.Base_cex tr -> Alcotest.(check int) "trace" 3 (Trace.length tr)
      | _ -> go (k + 1)
  in
  go 0

(* qcheck: the incremental session and a fresh per-bound solver agree on
   random mutants of the counter threshold property, at every bound. *)
let qcheck_session_incremental_agrees =
  QCheck.Test.make ~name:"incremental session agrees with fresh solver"
    ~count:20
    QCheck.(int_bound 6)
    (fun threshold ->
      let p =
        Prop.make ~name:"thr"
          (E.ule (E.reg "count") (E.const ~width:cw threshold))
      in
      let inc = Session.create fifo p in
      List.for_all
        (fun k -> same_base (Session.check_bound inc k) (drive_fresh p k))
        (List.init 9 Fun.id))

(* qcheck: explicit-state and BMC agree on random small mutants of the
   counter threshold property. *)
let qcheck_bmc_explicit_agree =
  QCheck.Test.make ~name:"bmc agrees with explicit reachability" ~count:30
    QCheck.(int_bound 6)
    (fun threshold ->
      let p =
        Prop.make ~name:"thr"
          (E.ule (E.reg "count") (E.const ~width:cw threshold))
      in
      let bmc_says =
        match Bmc.check ~depth:8 fifo p with
        | Bmc.Counterexample _ -> false
        | Bmc.Holds -> true
        | Bmc.Resource_out -> true
      in
      let explicit_says =
        match Explicit.check fifo p with
        | Explicit.Falsified _ -> false
        | Explicit.Proved _ -> true
        | Explicit.Too_large -> true
      in
      (* depth 8 >= diameter of the 5-state fifo, so both are decisive *)
      bmc_says = explicit_says)

let suite =
  [
    Alcotest.test_case "prop validation" `Quick prop_validation;
    Alcotest.test_case "prop next rewriting" `Quick prop_next_rewrites;
    Alcotest.test_case "bmc finds shallow bug" `Quick bmc_finds_shallow_bug;
    Alcotest.test_case "bmc holds within depth" `Quick bmc_holds_within_depth;
    Alcotest.test_case "bmc counterexample is concrete" `Quick
      bmc_counterexample_is_concrete;
    Alcotest.test_case "k-induction proves" `Quick induction_proves;
    Alcotest.test_case "k-induction CTI" `Quick
      induction_cti_for_unreachable_claim;
    Alcotest.test_case "explicit proves" `Quick explicit_proves;
    Alcotest.test_case "explicit shortest counterexample" `Quick
      explicit_falsifies_with_shortest_path;
    Alcotest.test_case "explicit too large" `Quick explicit_too_large;
    Alcotest.test_case "explicit reachable states" `Quick
      explicit_reachable_states;
    Alcotest.test_case "engine agrees with explicit" `Quick engine_agreement;
    Alcotest.test_case "engine step properties" `Quick engine_step_property;
    Alcotest.test_case "engine finds seeded fifo bug" `Quick
      engine_on_buggy_fifo;
    Alcotest.test_case "engine proves ROOT correctness" `Quick
      engine_root_correctness;
    Alcotest.test_case "session matches fresh per bound" `Quick
      session_matches_fresh_per_bound;
    Alcotest.test_case "session nvars drift" `Quick session_no_nvars_drift;
    Alcotest.test_case "session counterexample concrete" `Quick
      session_cex_is_concrete;
    QCheck_alcotest.to_alcotest qcheck_session_incremental_agrees;
    QCheck_alcotest.to_alcotest qcheck_bmc_explicit_agree;
  ]
