(* Tests for the unified verification report: the md5 width-invariance
   acceptance property (the no-timings JSON and markdown renders are
   byte-identical at --jobs 1/2/4), the gov-spend-equals-ledger-sums
   invariant, and that the JSON export parses back with every section
   present.  Runs under a small logical budget so each assemble is a
   sub-second governed run rather than the full unlimited flow. *)

open Symbad_obs
module Par = Symbad_par.Par
module Budget = Symbad_gov.Budget
module Ledger = Symbad_gov.Ledger
module Report = Symbad_report.Report

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* the 2-frame / 32px / 6-identity smoke workload the CLI guards use *)
let workload = Symbad_core.Face_app.smoke_workload

let budget () = Budget.make ~conflicts:1_000 ~patterns:1_000 ()

let assemble ~jobs =
  Par.with_pool ~jobs (fun pool ->
      let r =
        Report.assemble ~pool ~seed:1 ~workload ~budget:(budget ())
          ~trials_per_kind:1 ()
      in
      (* assemble leaves telemetry populated for the CLI; the tests
         don't want it leaking into later suites *)
      Obs.reset ();
      Obs.set_enabled false;
      r)

let md5 s = Digest.to_hex (Digest.string s)

let report_md5_width_invariant () =
  let digests jobs =
    let r = assemble ~jobs in
    (md5 (Report.to_json ~timings:false r),
     md5 (Report.to_markdown ~timings:false r))
  in
  let j1, m1 = digests 1 in
  let j2, m2 = digests 2 in
  let j4, m4 = digests 4 in
  check_str "json md5 jobs=2 equals jobs=1" j1 j2;
  check_str "json md5 jobs=4 equals jobs=1" j1 j4;
  check_str "markdown md5 jobs=2 equals jobs=1" m1 m2;
  check_str "markdown md5 jobs=4 equals jobs=1" m1 m4

let gov_spend_equals_ledger_sums () =
  let r = assemble ~jobs:2 in
  check_bool "some spend recorded" true (r.Report.gov_conflicts > 0);
  check_int "conflicts: ledger sums equal gov spend" r.Report.gov_conflicts
    (Ledger.spent_conflicts r.Report.ledger);
  check_int "patterns: ledger sums equal gov spend" r.Report.gov_patterns
    (Ledger.spent_patterns r.Report.ledger);
  check_int "no telemetry dropped" 0 r.Report.dropped

let json_parses_back () =
  let r = assemble ~jobs:2 in
  let doc = Json.parse_exn (Report.to_json ~timings:false r) in
  let mem k =
    match Json.member k doc with
    | Some v -> v
    | None -> Alcotest.fail (k ^ " missing from report JSON")
  in
  List.iter
    (fun k -> ignore (mem k))
    [
      "seed"; "workload"; "all_passed"; "flow"; "lint"; "faults"; "budget";
      "gov"; "profile"; "counters"; "histograms"; "trace";
    ];
  let gov = mem "gov" in
  let num k =
    match Option.bind (Json.member k gov) Json.to_number with
    | Some v -> int_of_float v
    | None -> Alcotest.fail (k ^ " missing from gov section")
  in
  check_int "json gov spend equals record" r.Report.gov_conflicts
    (num "spent_conflicts");
  check_int "json ledger sum equals record" r.Report.gov_conflicts
    (num "ledger_conflicts");
  (* worker-lane totals present: the merged counters made it out *)
  check_bool "counters section non-empty" true (r.Report.counters <> []);
  check_bool "spans recorded" true (r.Report.span_total > 0)

let markdown_has_sections () =
  let r = assemble ~jobs:1 in
  let md = Report.to_markdown ~timings:false r in
  List.iter
    (fun needle ->
      check_bool (Printf.sprintf "markdown contains %S" needle) true
        (let n = String.length needle and l = String.length md in
         let rec scan i =
           i + n <= l && (String.sub md i n = needle || scan (i + 1))
         in
         scan 0))
    [
      "# Symbad verification report"; "## Verdicts"; "## Lint";
      "## Budget waterfall"; "## Profile"; "## Counters"; "## Trace";
    ]

let suite =
  [
    Alcotest.test_case "report md5 is pool-width invariant" `Slow
      report_md5_width_invariant;
    Alcotest.test_case "gov spend equals ledger sums" `Quick
      gov_spend_equals_ledger_sums;
    Alcotest.test_case "json parses back with every section" `Quick
      json_parses_back;
    Alcotest.test_case "markdown has every section" `Quick
      markdown_has_sections;
  ]
