(* Tests for the linear-programming verification stack. *)

open Symbad_lpv

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let rat = Alcotest.testable Rat.pp Rat.equal

(* --- Rat --- *)

let rat_normalisation () =
  Alcotest.check rat "6/4 = 3/2" (Rat.make 3 2) (Rat.make 6 4);
  Alcotest.check rat "sign in num" (Rat.make (-1) 2) (Rat.make 1 (-2));
  Alcotest.check rat "zero" Rat.zero (Rat.make 0 17);
  check "den positive" 2 (Rat.den (Rat.make 1 (-2)))

let rat_arithmetic () =
  Alcotest.check rat "add" (Rat.make 5 6) (Rat.add (Rat.make 1 2) (Rat.make 1 3));
  Alcotest.check rat "sub" (Rat.make 1 6) (Rat.sub (Rat.make 1 2) (Rat.make 1 3));
  Alcotest.check rat "mul" (Rat.make 1 6) (Rat.mul (Rat.make 1 2) (Rat.make 1 3));
  Alcotest.check rat "div" (Rat.make 3 2) (Rat.div (Rat.make 1 2) (Rat.make 1 3));
  check_bool "compare" true Rat.(make 1 3 < make 1 2);
  check_bool "div by zero" true
    (try ignore (Rat.div Rat.one Rat.zero); false
     with Invalid_argument _ -> true)

let qcheck_rat_field_laws =
  let gen =
    QCheck.Gen.(
      let* n = -50 -- 50 in
      let* d = 1 -- 30 in
      return (Rat.make n d))
  in
  QCheck.Test.make ~name:"rational ring laws" ~count:300
    (QCheck.make (QCheck.Gen.triple gen gen gen))
    (fun (a, b, c) ->
      Rat.equal (Rat.add a b) (Rat.add b a)
      && Rat.equal (Rat.mul a (Rat.add b c)) (Rat.add (Rat.mul a b) (Rat.mul a c))
      && Rat.equal (Rat.sub (Rat.add a b) b) a
      && (Rat.is_zero c || Rat.equal (Rat.div (Rat.mul a c) c) a))

(* --- Simplex --- *)

let le_row coeffs rhs =
  { Simplex.coeffs = List.mapi (fun i c -> (i, Rat.of_int c)) coeffs
                     |> List.filter (fun (_, q) -> not (Rat.is_zero q));
    cmp = Simplex.Le; rhs = Rat.of_int rhs }

let simplex_textbook_max () =
  (* max 3x+2y st x+y<=4, x+3y<=6 -> 12 at (4,0) *)
  match
    Simplex.solve
      { Simplex.nvars = 2;
        constraints = [ le_row [ 1; 1 ] 4; le_row [ 1; 3 ] 6 ];
        objective = [ (0, Rat.of_int 3); (1, Rat.of_int 2) ];
        minimize = false }
  with
  | Simplex.Optimal { value; solution } ->
      Alcotest.check rat "value" (Rat.of_int 12) value;
      Alcotest.check rat "x" (Rat.of_int 4) solution.(0)
  | Simplex.Infeasible | Simplex.Unbounded -> Alcotest.fail "expected optimum"

let simplex_fractional_optimum () =
  (* max x+y st 2x+y<=3, x+2y<=3 -> optimum 2 at (1,1) *)
  match
    Simplex.solve
      { Simplex.nvars = 2;
        constraints = [ le_row [ 2; 1 ] 3; le_row [ 1; 2 ] 3 ];
        objective = [ (0, Rat.one); (1, Rat.one) ];
        minimize = false }
  with
  | Simplex.Optimal { value; _ } -> Alcotest.check rat "value" (Rat.of_int 2) value
  | _ -> Alcotest.fail "expected optimum"

let simplex_infeasible () =
  let constraints =
    [ { Simplex.coeffs = [ (0, Rat.one) ]; cmp = Simplex.Le; rhs = Rat.one };
      { Simplex.coeffs = [ (0, Rat.one) ]; cmp = Simplex.Ge; rhs = Rat.of_int 2 } ]
  in
  check_bool "infeasible" true
    (Simplex.solve
       { Simplex.nvars = 1; constraints; objective = []; minimize = true }
    = Simplex.Infeasible);
  check_bool "feasible helper" false (Simplex.feasible ~nvars:1 constraints)

let simplex_unbounded () =
  match
    Simplex.solve
      { Simplex.nvars = 1;
        constraints = [ { Simplex.coeffs = [ (0, Rat.one) ]; cmp = Simplex.Ge; rhs = Rat.one } ];
        objective = [ (0, Rat.one) ];
        minimize = false }
  with
  | Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let simplex_equality_constraints () =
  (* x + y = 5, x - y = 1 -> x = 3, y = 2 *)
  let eq coeffs rhs =
    { Simplex.coeffs = List.mapi (fun i c -> (i, Rat.of_int c)) coeffs
                       |> List.filter (fun (_, q) -> not (Rat.is_zero q));
      cmp = Simplex.Eq; rhs = Rat.of_int rhs }
  in
  match
    Simplex.solve
      { Simplex.nvars = 2;
        constraints = [ eq [ 1; 1 ] 5; eq [ 1; -1 ] 1 ];
        objective = [ (0, Rat.one) ];
        minimize = true }
  with
  | Simplex.Optimal { solution; _ } ->
      Alcotest.check rat "x" (Rat.of_int 3) solution.(0);
      Alcotest.check rat "y" (Rat.of_int 2) solution.(1)
  | _ -> Alcotest.fail "expected optimum"

let simplex_negative_rhs () =
  (* -x <= -2 i.e. x >= 2; minimise x -> 2 *)
  match
    Simplex.solve
      { Simplex.nvars = 1;
        constraints = [ le_row [ -1 ] (-2) ];
        objective = [ (0, Rat.one) ];
        minimize = true }
  with
  | Simplex.Optimal { value; _ } -> Alcotest.check rat "min" (Rat.of_int 2) value
  | _ -> Alcotest.fail "expected optimum"

(* qcheck: on random bounded feasible LPs, the reported optimum satisfies
   all constraints and is at least as good as random feasible samples. *)
let qcheck_simplex_sound =
  let gen =
    QCheck.Gen.(
      let* n = 2 -- 3 in
      let* rows = list_size (1 -- 4) (list_repeat n (0 -- 5)) in
      let* rhs = list_size (return (List.length rows)) (1 -- 20) in
      let* obj = list_repeat n (0 -- 5) in
      return (n, List.combine rows rhs, obj))
  in
  QCheck.Test.make ~name:"simplex optimum is feasible and dominant" ~count:150
    (QCheck.make gen)
    (fun (n, rows, obj) ->
      let constraints = List.map (fun (r, b) -> le_row r b) rows in
      match
        Simplex.solve
          { Simplex.nvars = n; constraints;
            objective = List.mapi (fun i c -> (i, Rat.of_int c)) obj;
            minimize = false }
      with
      | Simplex.Infeasible -> false (* 0 is always feasible for <=, rhs>0 *)
      | Simplex.Unbounded ->
          (* possible when some column never appears with positive coeff *)
          true
      | Simplex.Optimal { value; solution } ->
          let dot xs =
            List.fold_left2
              (fun acc c i -> Rat.add acc (Rat.mul (Rat.of_int c) xs.(i)))
              Rat.zero obj
              (List.init n (fun i -> i))
          in
          let feasible =
            List.for_all
              (fun (r, b) ->
                let lhs =
                  List.fold_left2
                    (fun acc c i -> Rat.add acc (Rat.mul (Rat.of_int c) solution.(i)))
                    Rat.zero r
                    (List.init n (fun i -> i))
                in
                Rat.(lhs <= of_int b))
              rows
          in
          feasible && Rat.equal value (dot solution) && Rat.(value >= zero))

(* --- Petri nets --- *)

let build_pipeline () =
  let net = Petri.create () in
  let a = Petri.add_transition net ~delay:3 "A" in
  let b = Petri.add_transition net ~delay:5 "B" in
  let p = Petri.add_place net ~tokens:0 "ab" in
  let credit = Petri.add_place net ~tokens:2 "ab.credit" in
  Petri.add_post net ~transition:a ~place:p ();
  Petri.add_pre net ~transition:b ~place:p ();
  Petri.add_pre net ~transition:a ~place:credit ();
  Petri.add_post net ~transition:b ~place:credit ();
  (net, a, b, p)

let petri_incidence () =
  let net, a, b, p = build_pipeline () in
  let c = Petri.incidence net in
  check "A produces ab" 1 c.(a).(p);
  check "B consumes ab" (-1) c.(b).(p);
  Alcotest.(check (list int)) "producers" [ a ] (Petri.producers net p);
  Alcotest.(check (list int)) "consumers" [ b ] (Petri.consumers net p)

let petri_state_equation () =
  let net, _, _, _ = build_pipeline () in
  (* marking (1,1): fire A once -> feasible *)
  check_bool "reachable relaxation" true
    (Petri.state_equation_feasible net [| 1; 1 |]);
  (* marking (5,2): would need 5 more tokens than credits allow *)
  check_bool "unreachable proven" false
    (Petri.state_equation_feasible net [| 5; 2 |])

let deadlock_free_pipeline () =
  let net, _, _, _ = build_pipeline () in
  match Deadlock.check net with
  | Deadlock.Deadlock_free { min_cycle_tokens } ->
      (* the only invariant is the ab/credit cycle: y = (1/2, 1/2),
         tokens = (0 + 2) / 2 = 1 *)
      Alcotest.check rat "cycle tokens" Rat.one min_cycle_tokens
  | _ -> Alcotest.fail "expected deadlock-free"

let deadlock_detected_crossed () =
  let net = Petri.create () in
  let a = Petri.add_transition net "A" in
  let b = Petri.add_transition net "B" in
  let ab = Petri.add_place net ~tokens:0 "ab" in
  let ba = Petri.add_place net ~tokens:0 "ba" in
  Petri.add_post net ~transition:a ~place:ab ();
  Petri.add_pre net ~transition:b ~place:ab ();
  Petri.add_post net ~transition:b ~place:ba ();
  Petri.add_pre net ~transition:a ~place:ba ();
  match Deadlock.check net with
  | Deadlock.Potential_deadlock { witness } ->
      Alcotest.(check (list string)) "witness cycle" [ "ab"; "ba" ]
        (List.sort compare witness)
  | _ -> Alcotest.fail "expected deadlock"

let deadlock_fixed_by_initial_token () =
  let net = Petri.create () in
  let a = Petri.add_transition net "A" in
  let b = Petri.add_transition net "B" in
  let ab = Petri.add_place net ~tokens:0 "ab" in
  let ba = Petri.add_place net ~tokens:1 "ba" in
  (* the classic fix: prime the feedback channel *)
  Petri.add_post net ~transition:a ~place:ab ();
  Petri.add_pre net ~transition:b ~place:ab ();
  Petri.add_post net ~transition:b ~place:ba ();
  Petri.add_pre net ~transition:a ~place:ba ();
  match Deadlock.check net with
  | Deadlock.Deadlock_free _ -> ()
  | _ -> Alcotest.fail "expected deadlock-free after priming"

let structural_boundedness () =
  (* credited channel: conservative, hence bounded *)
  let net, _, _, _ = build_pipeline () in
  check_bool "credited pipeline bounded" true (Petri.structurally_bounded net);
  (* uncredited channel: the producer can fire forever, unbounded *)
  let unb = Petri.create () in
  let a = Petri.add_transition unb "A" in
  let b = Petri.add_transition unb "B" in
  let p = Petri.add_place unb ~tokens:0 "ab" in
  Petri.add_post unb ~transition:a ~place:p ();
  Petri.add_pre unb ~transition:b ~place:p ();
  check_bool "uncredited channel unbounded" false
    (Petri.structurally_bounded unb)

(* --- Timing --- *)

let timing_bottleneck () =
  let net, _, _, _ = build_pipeline () in
  (* self-loops make each transition non-reentrant *)
  List.iteri
    (fun i _ ->
      let p = Petri.add_place net ~tokens:1 (Printf.sprintf "self%d" i) in
      Petri.add_pre net ~transition:i ~place:p ();
      Petri.add_post net ~transition:i ~place:p ())
    [ (); () ];
  match Timing.min_cycle_ratio net with
  | Timing.Period p -> Alcotest.check rat "bottleneck 5" (Rat.of_int 5) p
  | Timing.Unschedulable _ | Timing.Not_analyzable _ ->
      Alcotest.fail "schedulable"

let timing_capacity_effect () =
  (* capacity 1 on a 2-stage pipeline: period = d(A)+d(B) over 1 token *)
  let build cap =
    let net = Petri.create () in
    let a = Petri.add_transition net ~delay:3 "A" in
    let b = Petri.add_transition net ~delay:5 "B" in
    let p = Petri.add_place net ~tokens:0 "ab" in
    let credit = Petri.add_place net ~tokens:cap "credit" in
    Petri.add_post net ~transition:a ~place:p ();
    Petri.add_pre net ~transition:b ~place:p ();
    Petri.add_pre net ~transition:a ~place:credit ();
    Petri.add_post net ~transition:b ~place:credit ();
    net
  in
  (match Timing.min_cycle_ratio (build 1) with
  | Timing.Period p -> Alcotest.check rat "cap 1: 8" (Rat.of_int 8) p
  | Timing.Unschedulable _ | Timing.Not_analyzable _ ->
      Alcotest.fail "schedulable");
  match Timing.min_cycle_ratio (build 4) with
  | Timing.Period p -> Alcotest.check rat "cap 4: 2" (Rat.of_int 2) p
  | Timing.Unschedulable _ | Timing.Not_analyzable _ ->
      Alcotest.fail "schedulable"

let timing_deadline_and_dimensioning () =
  let build cap =
    let net = Petri.create () in
    let a = Petri.add_transition net ~delay:3 "A" in
    let b = Petri.add_transition net ~delay:5 "B" in
    let p = Petri.add_place net ~tokens:0 "ab" in
    let credit = Petri.add_place net ~tokens:cap "credit" in
    Petri.add_post net ~transition:a ~place:p ();
    Petri.add_pre net ~transition:b ~place:p ();
    Petri.add_pre net ~transition:a ~place:credit ();
    Petri.add_post net ~transition:b ~place:credit ();
    net
  in
  check_bool "deadline 8 met at cap 1" true (Timing.deadline_met ~deadline:8 (build 1));
  check_bool "deadline 5 missed at cap 1" false
    (Timing.deadline_met ~deadline:5 (build 1));
  Alcotest.(check (option int)) "min capacity for deadline 5" (Some 2)
    (Timing.min_uniform_capacity ~deadline:5 ~build ());
  Alcotest.(check (option int)) "deadline 1 impossible within bound" None
    (Timing.min_uniform_capacity ~max_capacity:4 ~deadline:1 ~build ())

let timing_zero_token_cycle () =
  let net = Petri.create () in
  let a = Petri.add_transition net ~delay:1 "A" in
  let b = Petri.add_transition net ~delay:1 "B" in
  let ab = Petri.add_place net ~tokens:0 "ab" in
  let ba = Petri.add_place net ~tokens:0 "ba" in
  Petri.add_post net ~transition:a ~place:ab ();
  Petri.add_pre net ~transition:b ~place:ab ();
  Petri.add_post net ~transition:b ~place:ba ();
  Petri.add_pre net ~transition:a ~place:ba ();
  match Timing.min_cycle_ratio net with
  | Timing.Unschedulable _ -> ()
  | Timing.Period _ | Timing.Not_analyzable _ ->
      Alcotest.fail "expected unschedulable"

let suite =
  [
    Alcotest.test_case "rat normalisation" `Quick rat_normalisation;
    Alcotest.test_case "rat arithmetic" `Quick rat_arithmetic;
    Alcotest.test_case "simplex textbook max" `Quick simplex_textbook_max;
    Alcotest.test_case "simplex fractional optimum" `Quick
      simplex_fractional_optimum;
    Alcotest.test_case "simplex infeasible" `Quick simplex_infeasible;
    Alcotest.test_case "simplex unbounded" `Quick simplex_unbounded;
    Alcotest.test_case "simplex equality constraints" `Quick
      simplex_equality_constraints;
    Alcotest.test_case "simplex negative rhs" `Quick simplex_negative_rhs;
    Alcotest.test_case "petri incidence" `Quick petri_incidence;
    Alcotest.test_case "petri state equation" `Quick petri_state_equation;
    Alcotest.test_case "deadlock-free pipeline" `Quick deadlock_free_pipeline;
    Alcotest.test_case "deadlock in crossed wait" `Quick
      deadlock_detected_crossed;
    Alcotest.test_case "deadlock fixed by priming" `Quick
      deadlock_fixed_by_initial_token;
    Alcotest.test_case "structural boundedness" `Quick structural_boundedness;
    Alcotest.test_case "timing bottleneck" `Quick timing_bottleneck;
    Alcotest.test_case "timing capacity effect" `Quick timing_capacity_effect;
    Alcotest.test_case "deadline + FIFO dimensioning" `Quick
      timing_deadline_and_dimensioning;
    Alcotest.test_case "zero-token cycle unschedulable" `Quick
      timing_zero_token_cycle;
    QCheck_alcotest.to_alcotest qcheck_rat_field_laws;
    QCheck_alcotest.to_alcotest qcheck_simplex_sound;
  ]
