(* Tests for the resource governor: budget split/slice arithmetic,
   hierarchical charge propagation, cancellation, retry dispatch, the
   zero-budget degradation contract of every engine (inconclusive with
   partial data, fast, never raising), governed-flow determinism across
   pool widths, and the qcheck monotonicity property (shrinking a budget
   may weaken a verdict to inconclusive, never flip it). *)

open Symbad_core
module Gov = Symbad_gov.Gov
module Budget = Symbad_gov.Budget
module Cancel = Symbad_gov.Cancel
module Degrade = Symbad_gov.Degrade
module Par = Symbad_par.Par

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* --- budget arithmetic --- *)

let budget_split_sums () =
  List.iter
    (fun (total, n) ->
      let shares = Budget.split ~n (Budget.make ~conflicts:total ~patterns:total ()) in
      check_int "share count" n (List.length shares);
      let sum axis =
        List.fold_left (fun a b -> a + Option.get (axis b)) 0 shares
      in
      check_int "conflicts sum exactly" total (sum (fun b -> b.Budget.conflicts));
      check_int "patterns sum exactly" total (sum (fun b -> b.Budget.patterns));
      let vals = List.map (fun b -> Option.get b.Budget.conflicts) shares in
      check_bool "near-equal shares" true
        (List.fold_left max 0 vals - List.fold_left min max_int vals <= 1))
    [ (100, 7); (3, 5); (0, 4); (1, 1) ];
  Alcotest.check_raises "n=0 rejected"
    (Invalid_argument "Budget.split: n must be >= 1") (fun () ->
      ignore (Budget.split ~n:0 Budget.unlimited));
  List.iter
    (fun b -> check_bool "unlimited stays unlimited" true (b.Budget.conflicts = None))
    (Budget.split ~n:3 Budget.unlimited)

let budget_slice_scales () =
  let b = Budget.make ~conflicts:100 ~patterns:50 () in
  let s = Budget.slice ~fraction:0.25 b in
  check_int "conflicts scaled" 25 (Option.get s.Budget.conflicts);
  check_int "patterns scaled" 12 (Option.get s.Budget.patterns);
  check_int "fraction clamped low" 0
    (Option.get (Budget.slice ~fraction:(-1.) b).Budget.conflicts);
  check_int "fraction clamped high" 100
    (Option.get (Budget.slice ~fraction:5. b).Budget.conflicts)

(* --- hierarchical charge accounting --- *)

let charges_propagate () =
  let g = Gov.create ~label:"t" (Budget.make ~conflicts:100 ~patterns:10 ()) in
  match Gov.split g 2 with
  | [ a; b ] ->
      check_int "child share" 50 (Option.get (Gov.conflicts_left a));
      Gov.charge_conflicts a 30;
      check_int "child spent" 20 (Option.get (Gov.conflicts_left a));
      check_int "parent sees child spend" 70 (Option.get (Gov.conflicts_left g));
      check_int "sibling untouched" 50 (Option.get (Gov.conflicts_left b));
      Gov.charge_conflicts b 60;
      check_int "overspend floors at 0" 0 (Option.get (Gov.conflicts_left b));
      check_int "parent after both" 10 (Option.get (Gov.conflicts_left g));
      Gov.charge_conflicts g (-5);
      check_int "negative charge ignored" 10 (Option.get (Gov.conflicts_left g))
  | _ -> Alcotest.fail "split 2 shape"

let slice_leaves_rest_in_parent () =
  let g = Gov.create (Budget.make ~conflicts:100 ()) in
  let s = Gov.slice ~fraction:0.5 g in
  check_int "slice share" 50 (Option.get (Gov.conflicts_left s));
  Gov.charge_conflicts s 10;
  (* sequential split: only what the slice SPENDS leaves the parent *)
  check_int "unspent flows back" 90 (Option.get (Gov.conflicts_left g))

(* --- exhaustion and cancellation --- *)

let exhaustion_reasons () =
  let g = Gov.create (Budget.make ~conflicts:1 ()) in
  check_bool "fresh governor has budget" true (Gov.exhaustion g = None);
  Gov.charge_conflicts g 1;
  check_bool "conflicts exhausted" true
    (Gov.exhaustion g = Some Degrade.Conflicts);
  let g = Gov.create (Budget.make ~patterns:0 ()) in
  check_bool "patterns exhausted" true
    (Gov.exhaustion g = Some Degrade.Patterns);
  let g = Gov.create (Budget.make ~deadline_s:0.0 ()) in
  check_bool "instant deadline exhausted" true
    (Gov.exhaustion g = Some Degrade.Deadline);
  check_bool "unlimited never exhausts" false (Gov.out_of_budget Gov.unlimited)

let cancellation () =
  let c = Cancel.create () in
  let g = Gov.create ~cancel:c Budget.unlimited in
  check_bool "not cancelled yet" false (Gov.out_of_budget g);
  Cancel.cancel c;
  check_bool "cancel wins" true (Gov.exhaustion g = Some Degrade.Cancelled);
  (* children share the token *)
  let c2 = Cancel.create () in
  let root = Gov.create ~cancel:c2 (Budget.make ~conflicts:100 ()) in
  let child = List.hd (Gov.split root 2) in
  Cancel.cancel c2;
  check_bool "child sees the shared token" true
    (Gov.exhaustion child = Some Degrade.Cancelled);
  Cancel.cancel Cancel.none;
  check_bool "none is uncancellable" false (Cancel.is_cancelled Cancel.none)

(* --- portfolio retry --- *)

let with_retry_semantics () =
  let g = Gov.create (Budget.make ~conflicts:1000 ~retries:3 ()) in
  let attempts = ref [] in
  let r =
    Gov.with_retry g
      ~inconclusive:(fun x -> x < 0)
      (fun ~attempt ->
        attempts := attempt :: !attempts;
        if attempt < 2 then -1 else attempt)
  in
  check_int "returns first conclusive result" 2 r;
  Alcotest.(check (list int)) "attempt numbers" [ 0; 1; 2 ] (List.rev !attempts);
  let g = Gov.create (Budget.make ~conflicts:1000 ~retries:2 ()) in
  let n = ref 0 in
  ignore
    (Gov.with_retry g
       ~inconclusive:(fun _ -> true)
       (fun ~attempt:_ -> incr n; -1));
  check_int "retry count caps attempts" 3 !n;
  let g = Gov.create (Budget.make ~conflicts:0 ~retries:5 ()) in
  let n = ref 0 in
  ignore
    (Gov.with_retry g
       ~inconclusive:(fun _ -> true)
       (fun ~attempt:_ -> incr n; -1));
  check_int "no retry without budget" 1 !n

(* --- the degraded verdict --- *)

let degraded_verdict () =
  let v =
    Verdict.degraded ~name:"X"
      ~partial:{ Degrade.units_done = 3; units_total = Some 17; what = "faults classified" }
      Degrade.Deadline
  in
  check_bool "degraded fails the gate" false v.Verdict.passed;
  (match v.Verdict.outcome with
  | Verdict.Inconclusive r -> check_str "reason" "deadline exhausted" r
  | _ -> Alcotest.fail "expected Inconclusive");
  check_str "detail line" "governor: deadline exhausted; 3/17 faults classified"
    v.Verdict.detail

(* --- zero-budget engine degradation: inconclusive, partial, fast --- *)

let zero () = Gov.create ~label:"zero" (Budget.make ~conflicts:0 ~patterns:0 ())

let within_1s what f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  check_bool (what ^ " degrades within 1s") true (Unix.gettimeofday () -. t0 < 1.0);
  r

let fifo () = Symbad_hdl.Rtl_lib.fifo_ctrl ~addr_width:2 ()

let fifo_prop f =
  let module E = Symbad_hdl.Expr in
  let module P = Symbad_mc.Prop in
  P.make ~name:"not_full_and_empty"
    (E.not_ (E.and_ (P.output f "full") (P.output f "empty")))

let engines_degrade_instantly () =
  let f = fifo () in
  let prop = fifo_prop f in
  (match
     within_1s "sat" (fun () ->
         let s = Symbad_sat.Solver.create 2 in
         Symbad_sat.Solver.add_clause s [ 1; 2 ];
         Symbad_sat.Solver.solve ~gov:(zero ()) s)
   with
  | Symbad_sat.Solver.Unknown -> ()
  | _ -> Alcotest.fail "sat: expected Unknown");
  (match
     within_1s "bmc" (fun () -> Symbad_mc.Bmc.check ~gov:(zero ()) ~depth:8 f prop)
   with
  | Symbad_mc.Bmc.Resource_out -> ()
  | _ -> Alcotest.fail "bmc: expected Resource_out");
  (let r = within_1s "mc engine" (fun () -> Symbad_mc.Engine.check ~gov:(zero ()) f prop) in
   match r.Symbad_mc.Engine.verdict with
   | Symbad_mc.Engine.Unknown { reason } ->
       check_bool "mc engine: governor reason" true
         (String.length reason >= 9 && String.sub reason 0 9 = "governor:")
   | _ -> Alcotest.fail "mc engine: expected Unknown");
  check_int "random atpg: zero patterns" 0
    (List.length
       (within_1s "random atpg" (fun () ->
            Symbad_atpg.Random_engine.generate ~gov:(zero ()) ~count:64
              (Symbad_atpg.Models.root ()))));
  check_int "genetic atpg: zero patterns" 0
    (List.length
       (within_1s "genetic atpg" (fun () ->
            Symbad_atpg.Genetic_engine.generate ~gov:(zero ())
              (Symbad_atpg.Models.root ()))));
  let r = within_1s "pcc" (fun () -> Symbad_pcc.Pcc.run ~gov:(zero ()) ~depth:8 f [ prop ]) in
  check_bool "pcc: partial report still lists faults" true
    (r.Symbad_pcc.Pcc.faults <> []);
  check_bool "pcc: every fault unresolved" true
    (List.for_all
       (fun fr -> fr.Symbad_pcc.Pcc.status = Symbad_pcc.Pcc.Unresolved)
       r.Symbad_pcc.Pcc.faults)

let lpv_degrades () =
  let graph = Face_app.graph Face_app.smoke_workload in
  (match within_1s "deadlock" (fun () -> Lpv_bridge.check_deadlock ~gov:(zero ()) graph) with
  | Symbad_lpv.Deadlock.Not_analyzable _ -> ()
  | _ -> Alcotest.fail "deadlock: expected Not_analyzable");
  match
    within_1s "timing" (fun () ->
        Symbad_lpv.Timing.min_cycle_ratio ~gov:(zero ())
          (Lpv_bridge.net_of ~capacity:2 graph))
  with
  | Symbad_lpv.Timing.Not_analyzable _ -> ()
  | _ -> Alcotest.fail "timing: expected Not_analyzable"

(* --- the governed flow: degrades, and identically at any width --- *)

let flow_zero_budget_deterministic () =
  let run jobs =
    Par.with_pool ~jobs (fun pool ->
        Flow.run ~pool ~workload:Face_app.smoke_workload
          ~budget:(Budget.make ~conflicts:0 ~patterns:0 ())
          ())
  in
  let r1 = within_1s "zero-budget flow" (fun () -> run 1) in
  check_bool "flow degrades to inconclusive checks" true
    (List.exists
       (fun l ->
         List.exists
           (fun v ->
             match v.Verdict.outcome with
             | Verdict.Inconclusive _ -> true
             | _ -> false)
           l.Flow.verifications)
       r1.Flow.levels);
  check_str "degraded report identical at jobs=1 and jobs=2"
    (Flow.to_json ~timings:false r1)
    (Flow.to_json ~timings:false (run 2))

(* --- qcheck: a budget can only weaken a verdict, never flip it --- *)

let qcheck_budget_monotone =
  let f = fifo () in
  let holds = fifo_prop f in
  let fails =
    (* empty is raised at reset: falsified at depth 0 under any budget
       big enough to reach the first SAT call *)
    let module E = Symbad_hdl.Expr in
    let module P = Symbad_mc.Prop in
    P.make ~name:"never_empty" (E.not_ (P.output f "empty"))
  in
  let baseline prop =
    (Symbad_mc.Engine.check f prop).Symbad_mc.Engine.verdict
  in
  let base_holds = baseline holds and base_fails = baseline fails in
  QCheck.Test.make ~name:"shrinking budget never flips a verdict" ~count:40
    QCheck.(pair bool (int_bound 2000))
    (fun (pick, allowance) ->
      let prop, base = if pick then (holds, base_holds) else (fails, base_fails) in
      let gov =
        Gov.create (Budget.make ~conflicts:allowance ~patterns:allowance ())
      in
      let v = (Symbad_mc.Engine.check ~gov f prop).Symbad_mc.Engine.verdict in
      match (v, base) with
      | Symbad_mc.Engine.Unknown _, _ -> true
      | Symbad_mc.Engine.Proved _, Symbad_mc.Engine.Proved _ -> true
      | Symbad_mc.Engine.Falsified _, Symbad_mc.Engine.Falsified _ -> true
      | _ -> false)

(* --- the budget-timeline ledger --- *)

(* every charge lands in the ledger exactly once (on the directly
   charged node), even when the charging happens from worker domains,
   so the ledger sums equal the root's propagated spend counters *)
let ledger_sums_match_spend () =
  let module Ledger = Symbad_gov.Ledger in
  let ledger = Ledger.create () in
  let root =
    Gov.create ~label:"root" ~ledger
      (Budget.make ~conflicts:10_000 ~patterns:10_000 ())
  in
  let children = Gov.split ~label:"work" root 4 in
  Par.with_pool ~jobs:3 (fun pool ->
      ignore
        (Par.map pool
           (fun (i, c) ->
             Gov.charge_conflicts c (10 * (i + 1));
             Gov.charge_patterns c (i + 1);
             i)
           (List.mapi (fun i c -> (i, c)) children)));
  Gov.charge_conflicts (Gov.slice ~label:"tail" ~fraction:0.5 root) 7;
  check_int "root conflicts spend" 107 (Gov.spent_conflicts root);
  check_int "ledger conflicts sum" (Gov.spent_conflicts root)
    (Ledger.spent_conflicts ledger);
  check_int "ledger patterns sum" (Gov.spent_patterns root)
    (Ledger.spent_patterns ledger);
  let rows = Ledger.waterfall ledger in
  (* root + 4 split children + 1 slice *)
  check_int "one waterfall row per node" 6 (List.length rows);
  let row label = List.find (fun r -> r.Ledger.label = label) rows in
  check_int "root subtree includes every worker charge" 107
    (row "root").Ledger.subtree_conflicts;
  check_int "slice charge on its own row" 7
    (row "root.tail").Ledger.charged_conflicts;
  check_bool "waterfall order is deterministic" true
    (rows = Ledger.waterfall ledger)

let suite =
  [
    Alcotest.test_case "budget split sums exactly" `Quick budget_split_sums;
    Alcotest.test_case "budget slice scales and clamps" `Quick budget_slice_scales;
    Alcotest.test_case "charges propagate to ancestors" `Quick charges_propagate;
    Alcotest.test_case "slice leaves unspent budget in parent" `Quick
      slice_leaves_rest_in_parent;
    Alcotest.test_case "exhaustion reasons" `Quick exhaustion_reasons;
    Alcotest.test_case "cancellation is cooperative and shared" `Quick cancellation;
    Alcotest.test_case "with_retry dispatch semantics" `Quick with_retry_semantics;
    Alcotest.test_case "degraded verdict shape" `Quick degraded_verdict;
    Alcotest.test_case "zero budget: engines degrade instantly" `Quick
      engines_degrade_instantly;
    Alcotest.test_case "zero budget: LPV not analyzable" `Quick lpv_degrades;
    Alcotest.test_case "zero-budget flow is deterministic" `Quick
      flow_zero_budget_deterministic;
    Alcotest.test_case "ledger sums match governor spend" `Quick
      ledger_sums_match_spend;
    QCheck_alcotest.to_alcotest qcheck_budget_monotone;
  ]
