(* Tests for the core flow: tokens, task graphs, the four levels, the
   transformations, exploration and the end-to-end flow. *)

open Symbad_core
module Sim = Symbad_sim

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Token --- *)

let token_bytes () =
  check "frame" (8 * 8)
    (Token.bytes (Token.Frame (Symbad_image.Image.create ~width:8 ~height:8)));
  check "vec" 6 (Token.bytes (Token.Vec [| 1; 2; 3 |]));
  check "mat" 8 (Token.bytes (Token.Mat [| [| 1; 2 |]; [| 3; 4 |] |]));
  check "num" 4 (Token.bytes (Token.Num 9))

let token_digest_stable () =
  check_bool "stable" true
    (Token.digest (Token.Vec [| 1; 2 |]) = Token.digest (Token.Vec [| 1; 2 |]));
  check_bool "distinguishes" false
    (Token.digest (Token.Vec [| 1; 2 |]) = Token.digest (Token.Vec [| 2; 1 |]))

let token_accessors_reject () =
  check_bool "raises" true
    (try ignore (Token.to_frame (Token.Num 1)); false
     with Invalid_argument _ -> true)

(* --- Task_graph --- *)

let tiny_graph ?(frames = 3) () =
  let source =
    Task_graph.source ~name:"SRC" ~outputs:[ "a" ] ~work:10 (fun i ->
        if i >= frames then None else Some [ Token.Num i ])
  in
  let double =
    Task_graph.transform ~name:"DBL" ~inputs:[ "a" ] ~outputs:[ "b" ]
      ~work:(fun _ -> 20)
      (function [ Token.Num n ] -> [ Token.Num (2 * n) ] | _ -> assert false)
  in
  Task_graph.make ~name:"tiny" ~tasks:[ source; double ] ~sinks:[ "b" ]

let graph_validation () =
  let bad_two_producers () =
    let s1 = Task_graph.source ~name:"S1" ~outputs:[ "x" ] ~work:1 (fun _ -> None) in
    let s2 = Task_graph.source ~name:"S2" ~outputs:[ "x" ] ~work:1 (fun _ -> None) in
    Task_graph.make ~name:"bad" ~tasks:[ s1; s2 ] ~sinks:[ "x" ]
  in
  check_bool "two producers" true
    (try ignore (bad_two_producers ()); false with Invalid_argument _ -> true);
  let bad_unconsumed () =
    let s = Task_graph.source ~name:"S" ~outputs:[ "x" ] ~work:1 (fun _ -> None) in
    Task_graph.make ~name:"bad" ~tasks:[ s ] ~sinks:[]
  in
  check_bool "unconsumed channel" true
    (try ignore (bad_unconsumed ()); false with Invalid_argument _ -> true)

let graph_topological_order () =
  let g = Face_app.graph Face_app.smoke_workload in
  let order = Task_graph.topological_order g in
  check "all tasks" 13 (List.length order);
  let pos name =
    let rec go i = function
      | [] -> -1
      | (t : Task_graph.task) :: rest ->
          if t.Task_graph.name = name then i else go (i + 1) rest
    in
    go 0 order
  in
  check_bool "CAMERA before BAYER" true (pos "CAMERA" < pos "BAYER");
  check_bool "DISTANCE before ROOT" true (pos "DISTANCE" < pos "ROOT");
  check_bool "ROOT before WINNER" true (pos "ROOT" < pos "WINNER")

(* --- Level 1 --- *)

let level1_runs_and_profiles () =
  let g = tiny_graph () in
  let r = Level1.run g in
  Alcotest.(check (list string)) "sink data" [ "N0"; "N2"; "N4" ]
    (Sim.Trace.stream_of r.Level1.trace ~source:"DBL" ~label:"b");
  Alcotest.(check (list (pair string int))) "firings"
    [ ("SRC", 3); ("DBL", 3) ] r.Level1.firings;
  check "profile units" 60
    (let open Symbad_tlm.Annotation in
     match List.assoc_opt "DBL" (Profile.ranking r.Level1.profile) with
     | Some u -> u
     | None -> 0)

let level1_matches_reference () =
  let w = Face_app.smoke_workload in
  let r = Level1.run (Face_app.graph w) in
  check "no mismatches" 0
    (List.length
       (Sim.Trace.compare_data ~reference:(Face_app.reference_trace w)
          ~actual:r.Level1.trace))

(* --- Level 2 --- *)

let level2_preserves_data () =
  let g = tiny_graph () in
  let l1 = Level1.run g in
  let mapping = Mapping.move (Mapping.all_sw g) "DBL" Mapping.Hw in
  let l2 = Level2.run g mapping in
  check_bool "data equal" true
    (Sim.Trace.equal_data ~reference:l1.Level1.trace ~actual:l2.Level2.trace);
  check_bool "takes time" true (l2.Level2.latency_ns > 0)

let level2_hw_speedup () =
  let g = tiny_graph ~frames:6 () in
  let all_sw = Level2.run g (Mapping.all_sw g) in
  let hw = Level2.run g (Mapping.move (Mapping.all_sw g) "DBL" Mapping.Hw) in
  check_bool "hw faster" true (hw.Level2.latency_ns < all_sw.Level2.latency_ns)

let level2_bus_only_for_crossings () =
  let g = tiny_graph () in
  let all_sw = Level2.run g (Mapping.all_sw g) in
  check "no bus traffic when everything is SW" 0
    all_sw.Level2.bus_report.Symbad_tlm.Bus.transactions

let level2_rejects_fpga_and_hw_sources () =
  let g = tiny_graph () in
  check_bool "fpga at level 2" true
    (try
       ignore (Level2.run g [ ("SRC", Mapping.Sw); ("DBL", Mapping.Fpga "c") ]);
       false
     with Invalid_argument _ -> true);
  check_bool "hw source" true
    (try
       ignore (Level2.run g [ ("SRC", Mapping.Hw); ("DBL", Mapping.Sw) ]);
       false
     with Invalid_argument _ -> true)

(* --- Level 3 --- *)

let face_setup () =
  let w = Face_app.smoke_workload in
  let g = Face_app.graph w in
  let l1 = Level1.run g in
  let m2 = Face_app.level2_mapping ~profile:l1.Level1.profile g in
  (w, g, l1, m2)

let level3_preserves_data_and_costs_time () =
  let _, g, l1, m2 = face_setup () in
  let l2 = Level2.run g m2 in
  let m3 = Mapping.refine_to_fpga m2 Face_app.level3_refinement in
  let l3 = Level3.run g m3 in
  check_bool "data equal to level2" true
    (Sim.Trace.equal_data ~reference:l2.Level2.trace ~actual:l3.Level3.trace);
  check_bool "data equal to level1" true
    (Sim.Trace.equal_data ~reference:l1.Level1.trace ~actual:l3.Level3.trace);
  check_bool "reconfiguration slows the system" true
    (l3.Level3.latency_ns > l2.Level2.latency_ns);
  check_bool "bitstream traffic on the bus" true
    (l3.Level3.bus_report.Symbad_tlm.Bus.bitstream_bytes > 0)

let level3_reconfig_count () =
  let w, g, _, m2 = face_setup () in
  let m3 = Mapping.refine_to_fpga m2 Face_app.level3_refinement in
  let l3 = Level3.run g m3 in
  (* DISTANCE and ROOT alternate every frame: 2 reconfigs per frame *)
  check "reconfigurations" (2 * List.length w.Face_app.frames)
    l3.Level3.fpga_stats.Symbad_fpga.Fpga.reconfigurations

let level3_single_context_loads_once () =
  let _, g, _, m2 = face_setup () in
  let m3 =
    Mapping.refine_to_fpga m2
      [ ("DISTANCE", "ctx"); ("ROOT", "ctx") ]
  in
  let config = { Level3.default_config with Level3.fpga_capacity = 2000 } in
  let l3 = Level3.run ~config g m3 in
  check "loads once" 1 l3.Level3.fpga_stats.Symbad_fpga.Fpga.reconfigurations

let level3_emits_consistent_sw () =
  let _, g, _, m2 = face_setup () in
  let m3 = Mapping.refine_to_fpga m2 Face_app.level3_refinement in
  let l3 = Level3.run g m3 in
  match Symbad_symbc.Check.check l3.Level3.config_info l3.Level3.instrumented_sw with
  | Symbad_symbc.Check.Consistent _ -> ()
  | Symbad_symbc.Check.Inconsistent _ ->
      Alcotest.fail "generated SW must be consistent"

let level3_seeded_bug_detected_statically_and_dynamically () =
  let _, g, _, m2 = face_setup () in
  let m3 = Mapping.refine_to_fpga m2 Face_app.level3_refinement in
  (* static: SymbC on the buggy program *)
  let schedule =
    List.filter_map
      (fun (t : Task_graph.task) ->
        match Mapping.target_of m3 t.Task_graph.name with
        | Mapping.Sw | Mapping.Fpga _ -> Some t.Task_graph.name
        | Mapping.Hw -> None)
      (Task_graph.topological_order g)
  in
  let buggy = Level3.instrumented_program ~omit_load_for:[ "ROOT" ] schedule m3 in
  (match Symbad_symbc.Check.check (Level3.config_info_of m3) buggy with
  | Symbad_symbc.Check.Inconsistent cex ->
      Alcotest.(check string) "static" "ROOT" cex.Symbad_symbc.Check.failing_call
  | Symbad_symbc.Check.Consistent _ -> Alcotest.fail "SymbC must find the bug");
  (* dynamic: the simulation raises the device check *)
  check_bool "dynamic" true
    (try
       ignore (Level3.run ~omit_load_for:[ "ROOT" ] g m3);
       false
     with Symbad_fpga.Fpga.Inconsistent { resource; _ } -> resource = "ROOT")

(* --- Lpv bridge --- *)

let lpv_bridge_face_app () =
  let _, g, l1, m2 = face_setup () in
  (match Lpv_bridge.check_deadlock g with
  | Symbad_lpv.Deadlock.Deadlock_free _ -> ()
  | _ -> Alcotest.fail "face app is deadlock-free");
  let timing = Lpv_bridge.default_timing in
  let verdict, met =
    Lpv_bridge.check_deadline ~deadline_ns:1_000_000_000 ~timing ~mapping:m2
      ~profile:l1.Level1.profile g
  in
  check_bool "generous deadline met" true met;
  (match verdict with
  | Symbad_lpv.Timing.Period _ -> ()
  | Symbad_lpv.Timing.Unschedulable _ | Symbad_lpv.Timing.Not_analyzable _
    ->
      Alcotest.fail "schedulable")

let lpv_bridge_seeded_deadlock () =
  let g = tiny_graph () in
  (* add an unprimed feedback channel: DBL waits for SRC's next output
     while SRC waits for credit that only DBL can return *)
  match
    Lpv_bridge.check_deadlock
      ~extra_channels:[ ("feedback", "DBL", "SRC", 0) ]
      g
  with
  | Symbad_lpv.Deadlock.Potential_deadlock { witness } ->
      check_bool "witness mentions feedback" true
        (List.exists (fun p -> p = "feedback" || p = "a") witness)
  | _ -> Alcotest.fail "expected deadlock"

let lpv_bridge_fifo_dimensioning () =
  let _, g, l1, m2 = face_setup () in
  let timing = Lpv_bridge.default_timing in
  match
    Lpv_bridge.dimension_fifos ~deadline_ns:1_000_000_000 ~timing ~mapping:m2
      ~profile:l1.Level1.profile g
  with
  | Some c -> check_bool "small capacity suffices" true (c <= 4)
  | None -> Alcotest.fail "expected a capacity"

(* --- Transform --- *)

let transform_moves () =
  let g = tiny_graph ~frames:4 () in
  let l1 = Level1.run g in
  let d = Transform.to_timed_tl ~profile:l1.Level1.profile ~hw:[] g in
  let slow = (Transform.evaluate d).Level2.latency_ns in
  let d2 = Transform.move_to_hw d "DBL" in
  let fast = (Transform.evaluate d2).Level2.latency_ns in
  check_bool "hw move speeds up" true (fast < slow);
  let d3 = Transform.move_to_sw d2 "DBL" in
  check "round trip restores latency" slow
    (Transform.evaluate d3).Level2.latency_ns;
  check_bool "speedup factor > 1" true
    (Transform.speedup_of_moving_to_hw d "DBL" > 1.)

(* --- Explore --- *)

let explore_pareto () =
  let points =
    [
      { Explore.mapping = []; label = "a"; latency_ns = 10; bus_busy_ns = 0;
        bus_utilisation = 0.; bitstream_bytes = 0; area = 100; energy_proxy = 1. };
      { Explore.mapping = []; label = "b"; latency_ns = 20; bus_busy_ns = 0;
        bus_utilisation = 0.; bitstream_bytes = 0; area = 50; energy_proxy = 1. };
      (* dominated by "a": *)
      { Explore.mapping = []; label = "c"; latency_ns = 15; bus_busy_ns = 0;
        bus_utilisation = 0.; bitstream_bytes = 0; area = 120; energy_proxy = 2. };
    ]
  in
  Alcotest.(check (list string)) "pareto" [ "a"; "b" ]
    (List.map (fun p -> p.Explore.label) (Explore.pareto points))

let explore_sweep_monotone_latency () =
  let _, g, l1, _ = face_setup () in
  let grades =
    Explore.sweep_hw_sets ~task_area:Level3.default_task_area
      ~profile:l1.Level1.profile ~pinned_sw:Face_app.pinned_sw ~max_hw:4 g
  in
  check "five grades" 5 (List.length grades);
  let latencies = List.map (fun gr -> gr.Explore.latency_ns) grades in
  check_bool "more HW never slower" true
    (List.for_all2 ( >= ) latencies (List.tl latencies @ [ 0 ]))

let level2_capacity_effect_on_latency () =
  (* larger channel capacity can only help (more pipeline slack) *)
  let g = tiny_graph ~frames:8 () in
  let mapping = Mapping.move (Mapping.all_sw g) "DBL" Mapping.Hw in
  let latency cap =
    (Level2.run
       ~config:{ Level2.default_config with Level2.fifo_capacity = cap }
       g mapping)
      .Level2.latency_ns
  in
  check_bool "capacity monotone" true (latency 4 <= latency 1)

let level2_reports_occupancy () =
  let g = tiny_graph () in
  let r = Level2.run g (Mapping.move (Mapping.all_sw g) "DBL" Mapping.Hw) in
  match List.assoc_opt "a" r.Level2.channel_occupancy with
  | Some o ->
      check "puts" 3 o.Sim.Fifo.puts;
      check "gets" 3 o.Sim.Fifo.gets;
      check_bool "bounded occupancy" true (o.Sim.Fifo.max_occupancy <= 2)
  | None -> Alcotest.fail "channel 'a' must be reported"

let level3_bus_wait_under_contention () =
  (* HW tasks and bitstream downloads share the bus: the report must
     account waits or busy time for multiple masters *)
  let _, g, _, m2 = face_setup () in
  let m3 = Mapping.refine_to_fpga m2 Face_app.level3_refinement in
  let r = Level3.run g m3 in
  let masters = r.Level3.bus_report.Symbad_tlm.Bus.per_master in
  check_bool "several masters" true (List.length masters >= 3);
  check_bool "cpu among masters" true (List.mem_assoc "cpu" masters)

let explore_grades_have_bitstream_only_at_level3 () =
  let _, g, l1, m2 = face_setup () in
  let task_area = Level3.default_task_area in
  let g2 = Explore.grade_level2 ~task_area ~label:"l2" g m2 in
  check "no bitstream at level 2" 0 g2.Explore.bitstream_bytes;
  let g3 =
    Explore.grade_level3 ~task_area ~label:"l3" g
      (Mapping.refine_to_fpga m2 Face_app.level3_refinement)
  in
  ignore l1;
  check_bool "bitstream at level 3" true (g3.Explore.bitstream_bytes > 0)

(* qcheck: on random linear pipelines with random mappings, all three
   refinement levels compute identical data streams. *)
let gen_pipeline_case =
  QCheck.Gen.(
    let* stages = 1 -- 4 in
    let* frames = 1 -- 4 in
    let* ops = list_repeat stages (0 -- 2) in
    let* mapping_bits = list_repeat stages (0 -- 2) in
    let* capacity = 1 -- 3 in
    return (frames, ops, mapping_bits, capacity))

let build_pipeline frames ops =
  let source =
    Task_graph.source ~name:"SRC" ~outputs:[ "c0" ] ~work:5 (fun i ->
        if i >= frames then None else Some [ Token.Num (i * 17) ])
  in
  let stage i op =
    let f n =
      match op with 0 -> n + 3 | 1 -> n * 2 | _ -> (n * n) + 1
    in
    Task_graph.transform
      ~name:(Printf.sprintf "T%d" i)
      ~inputs:[ Printf.sprintf "c%d" i ]
      ~outputs:[ Printf.sprintf "c%d" (i + 1) ]
      ~work:(fun _ -> 3 + (2 * i))
      (function [ Token.Num n ] -> [ Token.Num (f n) ] | _ -> assert false)
  in
  let tasks = source :: List.mapi stage ops in
  Task_graph.make ~name:"rand_pipe" ~tasks
    ~sinks:[ Printf.sprintf "c%d" (List.length ops) ]

let qcheck_levels_agree_on_random_pipelines =
  QCheck.Test.make ~name:"levels 1-3 compute identical data" ~count:60
    (QCheck.make gen_pipeline_case)
    (fun (frames, ops, mapping_bits, capacity) ->
      let g = build_pipeline frames ops in
      let mapping =
        ("SRC", Mapping.Sw)
        :: List.mapi
             (fun i b ->
               ( Printf.sprintf "T%d" i,
                 match b with
                 | 0 -> Mapping.Sw
                 | 1 -> Mapping.Hw
                 | _ -> Mapping.Fpga "ctx" ))
             mapping_bits
      in
      let mapping2 =
        List.map
          (fun (t, m) -> (t, if m = Mapping.Fpga "ctx" then Mapping.Hw else m))
          mapping
      in
      let l1 = Level1.run g in
      let config =
        { Level2.default_config with Level2.fifo_capacity = capacity }
      in
      let l2 = Level2.run ~config g mapping2 in
      let l3 =
        Level3.run
          ~config:
            { Level3.default_config with
              Level3.level2 = config;
              fpga_capacity = 4000 (* up to 4 stages in one context *) }
          g mapping
      in
      Sim.Trace.equal_data ~reference:l1.Level1.trace ~actual:l2.Level2.trace
      && Sim.Trace.equal_data ~reference:l2.Level2.trace ~actual:l3.Level3.trace)

(* --- Wrapper_gen (automated interface synthesis) --- *)

let wrapper_gen_verifies_both_depths () =
  List.iter
    (fun depth ->
      let spec = Wrapper_gen.make_spec ~depth () in
      let _, props, reports = Wrapper_gen.synthesize_and_verify spec in
      check_bool
        (Printf.sprintf "depth %d all proved" depth)
        true
        (Symbad_mc.Engine.all_proved reports);
      check_bool "several checkers" true (List.length props >= 6))
    [ 1; 2 ]

let wrapper_gen_checkers_complete () =
  (* the generated checkers leave no detectable fault uncovered *)
  let spec = Wrapper_gen.make_spec ~depth:2 () in
  let nl = Wrapper_gen.synthesize spec in
  let props = Wrapper_gen.checkers spec nl in
  let r = Symbad_pcc.Pcc.run ~depth:6 ~max_reg_bits:4 nl props in
  Alcotest.(check (float 0.001)) "pcc 100%" 1.0 r.Symbad_pcc.Pcc.coverage

let wrapper_gen_fifo_order () =
  (* words drain in arrival order through the depth-2 skid buffer *)
  let module H = Symbad_hdl in
  let spec = Wrapper_gen.make_spec ~depth:2 () in
  let nl = Wrapper_gen.synthesize spec in
  let sim = H.Simulator.create nl in
  let bv w v = H.Bitvec.make ~width:w v in
  let cycle ~req ~data ~take =
    let inputs =
      [ ("req", bv 1 req); ("data", bv 8 data); ("take", bv 1 take) ]
    in
    let valid = H.Bitvec.to_int (H.Simulator.output sim ~inputs "valid") in
    let out = H.Bitvec.to_int (H.Simulator.output sim ~inputs "out") in
    H.Simulator.step sim ~inputs;
    (valid, out)
  in
  (* push 11 then 22 back to back, no draining *)
  ignore (cycle ~req:1 ~data:11 ~take:0);
  ignore (cycle ~req:1 ~data:22 ~take:0);
  (* now drain: head must be 11, then 22 *)
  let v1, o1 = cycle ~req:0 ~data:0 ~take:1 in
  let v2, o2 = cycle ~req:0 ~data:0 ~take:1 in
  let v3, _ = cycle ~req:0 ~data:0 ~take:1 in
  check "valid 1" 1 v1;
  check "first out" 11 o1;
  check "valid 2" 1 v2;
  check "second out" 22 o2;
  check "drained" 0 v3

let wrapper_gen_checkers_catch_mutations () =
  (* every injected fault of the synthesised wrapper trips a checker *)
  let spec = Wrapper_gen.make_spec ~depth:1 () in
  let nl = Wrapper_gen.synthesize spec in
  let props = Wrapper_gen.checkers spec nl in
  let faults = Symbad_pcc.Fault.enumerate ~max_reg_bits:2 nl in
  let caught =
    List.for_all
      (fun f ->
        let mutant = Symbad_pcc.Fault.apply nl f in
        match Symbad_pcc.Miter.detectable ~depth:6 nl mutant with
        | `Undetectable_within _ -> true (* nothing to catch *)
        | `Resource_out -> false
        | `Detectable _ ->
            List.exists
              (fun p ->
                match Symbad_mc.Bmc.check ~depth:6 mutant p with
                | Symbad_mc.Bmc.Counterexample _ -> true
                | _ -> false)
              props)
      faults
  in
  check_bool "all mutations caught" true caught

let wrapper_gen_rejects_bad_spec () =
  check_bool "depth 3" true
    (try ignore (Wrapper_gen.make_spec ~depth:3 ()); false
     with Invalid_argument _ -> true);
  check_bool "width 0" true
    (try ignore (Wrapper_gen.make_spec ~data_width:0 ()); false
     with Invalid_argument _ -> true)

(* --- Flow --- *)

(* the flow run (level 4 included) is expensive: share it *)
let shared_flow = lazy (Flow.run ~workload:Face_app.smoke_workload ())

let flow_smoke_all_passes () =
  let r = Lazy.force shared_flow in
  check "four levels" 4 (List.length r.Flow.levels);
  check_bool "all verifications pass" true r.Flow.all_passed

let flow_markdown_report () =
  let r = Lazy.force shared_flow in
  let md = Flow.to_markdown r in
  let contains needle =
    let nl = String.length needle and tl = String.length md in
    let rec go i = i + nl <= tl && (String.sub md i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "title" true (contains "# Symbad flow report");
  check_bool "level sections" true (contains "## Level 4");
  check_bool "verdict table" true (contains "| check | verdict | detail |");
  check_bool "overall" true (contains "ALL PASSED")

let flow_speed_ordering () =
  (* the paper's E1-E3 shape: untimed level 1 is the fastest to
     simulate; level 3 is slower than level 2 in simulated terms *)
  let r = Lazy.force shared_flow in
  let find n = List.find (fun l -> l.Flow.level = n) r.Flow.levels in
  let l2 = find 2 and l3 = find 3 in
  match (l2.Flow.latency_ns, l3.Flow.latency_ns) with
  | Some a, Some b -> check_bool "reconfig costs latency" true (b > a)
  | _ -> Alcotest.fail "levels 2 and 3 report latency"

let suite =
  [
    Alcotest.test_case "token bytes" `Quick token_bytes;
    Alcotest.test_case "token digest" `Quick token_digest_stable;
    Alcotest.test_case "token accessors" `Quick token_accessors_reject;
    Alcotest.test_case "graph validation" `Quick graph_validation;
    Alcotest.test_case "graph topological order" `Quick graph_topological_order;
    Alcotest.test_case "level1 run + profile" `Quick level1_runs_and_profiles;
    Alcotest.test_case "level1 matches reference" `Quick
      level1_matches_reference;
    Alcotest.test_case "level2 preserves data" `Quick level2_preserves_data;
    Alcotest.test_case "level2 HW speedup" `Quick level2_hw_speedup;
    Alcotest.test_case "level2 bus only for crossings" `Quick
      level2_bus_only_for_crossings;
    Alcotest.test_case "level2 mapping validation" `Quick
      level2_rejects_fpga_and_hw_sources;
    Alcotest.test_case "level3 preserves data, costs time" `Quick
      level3_preserves_data_and_costs_time;
    Alcotest.test_case "level3 reconfiguration count" `Quick
      level3_reconfig_count;
    Alcotest.test_case "level3 single context loads once" `Quick
      level3_single_context_loads_once;
    Alcotest.test_case "level3 emits consistent SW" `Quick
      level3_emits_consistent_sw;
    Alcotest.test_case "level3 seeded bug found twice" `Quick
      level3_seeded_bug_detected_statically_and_dynamically;
    Alcotest.test_case "lpv bridge on face app" `Quick lpv_bridge_face_app;
    Alcotest.test_case "lpv bridge seeded deadlock" `Quick
      lpv_bridge_seeded_deadlock;
    Alcotest.test_case "lpv bridge fifo dimensioning" `Quick
      lpv_bridge_fifo_dimensioning;
    Alcotest.test_case "transformations move modules" `Quick transform_moves;
    Alcotest.test_case "explore pareto filter" `Quick explore_pareto;
    Alcotest.test_case "explore sweep monotone" `Quick
      explore_sweep_monotone_latency;
    Alcotest.test_case "level2 capacity monotone" `Quick
      level2_capacity_effect_on_latency;
    Alcotest.test_case "level2 reports occupancy" `Quick
      level2_reports_occupancy;
    Alcotest.test_case "level3 bus masters" `Quick
      level3_bus_wait_under_contention;
    Alcotest.test_case "explore bitstream accounting" `Quick
      explore_grades_have_bitstream_only_at_level3;
    QCheck_alcotest.to_alcotest qcheck_levels_agree_on_random_pipelines;
    Alcotest.test_case "wrapper_gen verifies both depths" `Quick
      wrapper_gen_verifies_both_depths;
    Alcotest.test_case "wrapper_gen checkers complete (PCC)" `Quick
      wrapper_gen_checkers_complete;
    Alcotest.test_case "wrapper_gen FIFO order" `Quick wrapper_gen_fifo_order;
    Alcotest.test_case "wrapper_gen checkers catch mutations" `Quick
      wrapper_gen_checkers_catch_mutations;
    Alcotest.test_case "wrapper_gen spec validation" `Quick
      wrapper_gen_rejects_bad_spec;
    Alcotest.test_case "flow smoke: all pass" `Slow flow_smoke_all_passes;
    Alcotest.test_case "flow markdown report" `Slow flow_markdown_report;
    Alcotest.test_case "flow speed ordering" `Slow flow_speed_ordering;
  ]
