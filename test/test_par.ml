(* Tests for the parallel job engine: the determinism contract (map at
   any pool width equals List.map), exception propagation, shutdown
   semantics, seed splitting, pool telemetry, and the
   parallel-equals-sequential property for the verification fan-outs
   that ride on it (PCC, model checking, exploration sweeps). *)

open Symbad_obs
open Symbad_core
module Par = Symbad_par.Par

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_ints = Alcotest.(check (list int))
let widths = [ 1; 2; 8 ]

(* --- the determinism contract --- *)

let map_determinism () =
  let xs = List.init 100 Fun.id in
  let f x = (x * 37) mod 91 in
  let expect = List.map f xs in
  List.iter
    (fun jobs ->
      Par.with_pool ~jobs (fun pool ->
          check_ints (Printf.sprintf "jobs=%d" jobs) expect (Par.map pool f xs)))
    widths;
  Par.with_pool ~jobs:4 (fun pool ->
      check_ints "empty" [] (Par.map pool f []);
      check_ints "singleton" [ f 7 ] (Par.map pool f [ 7 ]))

let mapi_and_map_reduce () =
  let xs = List.init 50 (fun i -> i + 1) in
  Par.with_pool ~jobs:3 (fun pool ->
      check_ints "mapi"
        (List.mapi (fun i x -> i * x) xs)
        (Par.mapi pool (fun i x -> i * x) xs);
      check_int "map_reduce"
        (List.fold_left ( + ) 0 (List.map (fun x -> x * x) xs))
        (Par.map_reduce pool ~map:(fun x -> x * x) ~fold:( + ) ~init:0 xs))

(* nested maps share the one queue; the inner map's caller keeps taking
   jobs, so this must complete at width 2 (regression for deadlock) *)
let nested_maps () =
  Par.with_pool ~jobs:2 (fun pool ->
      let triangle x =
        List.fold_left ( + ) 0 (Par.map pool Fun.id (List.init x Fun.id))
      in
      check_ints "nested"
        (List.map (fun x -> x * (x - 1) / 2) (List.init 8 (fun i -> i + 1)))
        (Par.map pool triangle (List.init 8 (fun i -> i + 1))))

(* --- failure semantics --- *)

exception Boom of int

let exception_propagation () =
  Par.with_pool ~jobs:4 (fun pool ->
      (match
         Par.map pool
           (fun x -> if x = 13 then raise (Boom x) else x)
           (List.init 64 Fun.id)
       with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 13 -> ());
      (* the pool survives a failed batch *)
      check_ints "pool survives" [ 2; 4 ] (Par.map pool (fun x -> 2 * x) [ 1; 2 ]))

let shutdown_semantics () =
  let pool = Par.create ~jobs:2 () in
  check_int "width" 2 (Par.jobs pool);
  check_ints "before shutdown" [ 1; 2; 3 ] (Par.map pool Fun.id [ 1; 2; 3 ]);
  Par.shutdown pool;
  Par.shutdown pool;
  (* idempotent *)
  match Par.map pool Fun.id [ 1 ] with
  | _ -> Alcotest.fail "expected Invalid_argument after shutdown"
  | exception Invalid_argument _ -> ()

(* --- seed splitting --- *)

let seed_split_independence () =
  let seeds = List.init 1000 (Par.split_seed ~seed:42) in
  List.iter (fun s -> check_bool "positive" true (s > 0)) seeds;
  let module S = Set.Make (Int) in
  check_int "all lanes distinct" 1000 (S.cardinal (S.of_list seeds));
  check_bool "master-seed dependent" true
    (Par.split_seed ~seed:1 0 <> Par.split_seed ~seed:2 0);
  (* map_seeded equals its sequential definition at every width *)
  let xs = List.init 20 Fun.id in
  let f ~seed x = (seed lxor x) land 0xFFFF in
  let expect = List.mapi (fun i x -> f ~seed:(Par.split_seed ~seed:7 i) x) xs in
  List.iter
    (fun jobs ->
      Par.with_pool ~jobs (fun pool ->
          check_ints
            (Printf.sprintf "map_seeded jobs=%d" jobs)
            expect
            (Par.map_seeded pool ~seed:7 f xs)))
    widths

(* --- telemetry --- *)

let with_obs f =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    f

let pool_telemetry () =
  with_obs (fun () ->
      Par.with_pool ~jobs:2 (fun pool ->
          ignore (Par.map ~label:"test.batch" pool Fun.id (List.init 16 Fun.id)));
      let m = Obs.metrics () in
      (match Metrics.find_counter m "par.jobs_dispatched" with
      | Some n -> check_bool "chunks dispatched" true (n > 0)
      | None -> Alcotest.fail "par.jobs_dispatched not recorded");
      (match Metrics.find_histogram m "par.queue_wait_us" with
      | Some _ -> ()
      | None -> Alcotest.fail "par.queue_wait_us not recorded");
      (* one dispatch span on the "par" track plus one merged job span
         per chunk (16 items -> 16 chunks), each on a lane track and
         parent-linked to the dispatch span *)
      let spans = Tracer.spans_with_cat (Obs.tracer ()) "par" in
      check_int "dispatch + 16 job spans" 17 (List.length spans);
      let dispatch =
        List.find (fun s -> String.equal s.Tracer.track "par") spans
      in
      let jobs =
        List.filter (fun s -> not (String.equal s.Tracer.track "par")) spans
      in
      check_int "16 job spans" 16 (List.length jobs);
      List.iter
        (fun (s : Tracer.completed) ->
          check_bool "job on a lane track" true
            (String.length s.Tracer.track >= 4
            && String.sub s.Tracer.track 0 4 = "lane");
          check_bool "job parented to the dispatch span" true
            (s.Tracer.parent = Some dispatch.Tracer.id))
        jobs)

(* Two jobs forced to run concurrently on distinct domains: each spins
   until both have started (bounded by a timeout escape so a pathological
   scheduler cannot hang the suite), so the calling domain takes exactly
   one chunk and a worker domain the other. *)
let rendezvous pool name =
  let started = Atomic.make 0 in
  Par.map ~label:name pool
    (fun _ ->
      Atomic.incr started;
      let t0 = Unix.gettimeofday () in
      while Atomic.get started < 2 && Unix.gettimeofday () -. t0 < 5. do
        Domain.cpu_relax ()
      done;
      Obs.incr_counter (name ^ ".work");
      Par.current_lane ())
    [ 0; 1 ]

(* Satellite regression for the worker-telemetry drop: with per-job
   buffering on, emissions from the worker domain reach the merged
   registry; with buffering off (the pre-merge behaviour), they are
   dropped and counted — so the buffered flow records strictly more. *)
let worker_telemetry_merged () =
  let buffered =
    with_obs (fun () ->
        let lanes = Par.with_pool ~jobs:2 (fun pool -> rendezvous pool "rv") in
        check_bool "two distinct lanes" true
          (match lanes with [ a; b ] -> a <> b | _ -> false);
        check_int "no emission dropped" 0 (Obs.dropped_count ());
        match Metrics.find_counter (Obs.metrics ()) "rv.work" with
        | Some n -> n
        | None -> Alcotest.fail "rv.work not recorded")
  in
  check_int "both lanes counted" 2 buffered;
  let unbuffered =
    with_obs (fun () ->
        Obs.set_buffering false;
        Fun.protect
          ~finally:(fun () -> Obs.set_buffering true)
          (fun () ->
            ignore (Par.with_pool ~jobs:2 (fun pool -> rendezvous pool "rv"));
            check_bool "worker emissions dropped and counted" true
              (Obs.dropped_count () > 0);
            match Metrics.find_counter (Obs.metrics ()) "rv.work" with
            | Some n -> n
            | None -> 0))
  in
  check_int "dispatch lane only" 1 unbuffered;
  check_bool "buffered records strictly more" true (buffered > unbuffered)

(* Chrome-trace parse-back: the exported timeline must show one thread
   per lane, the job spans on (at least) two distinct lane threads, each
   parent-linked to the dispatch span, with flow arrows for the links. *)
let merged_trace_parse_back () =
  with_obs (fun () ->
      ignore (Par.with_pool ~jobs:2 (fun pool -> rendezvous pool "rvt"));
      let doc = Json.parse_exn (Tracer.to_chrome_json (Obs.tracer ())) in
      let events =
        match Option.bind (Json.member "traceEvents" doc) Json.to_list with
        | Some es -> es
        | None -> Alcotest.fail "no traceEvents"
      in
      let str k e = Option.bind (Json.member k e) Json.to_str in
      let num k e = Option.bind (Json.member k e) Json.to_number in
      let arg k e = Option.bind (Json.member "args" e) (Json.member k) in
      let lane_tids =
        List.filter_map
          (fun e ->
            match (str "ph" e, Option.bind (arg "name" e) Json.to_str) with
            | Some "M", Some label
              when String.length label >= 4 && String.sub label 0 4 = "lane" ->
                Option.map (fun tid -> (int_of_float tid, label)) (num "tid" e)
            | _ -> None)
          events
      in
      check_bool "at least two lane threads" true (List.length lane_tids >= 2);
      let xs = List.filter (fun e -> str "ph" e = Some "X") events in
      let jobs =
        List.filter
          (fun e -> str "name" e = Some "rvt" && arg "chunk" e <> None)
          xs
      in
      let dispatch =
        List.find
          (fun e -> str "name" e = Some "rvt" && arg "chunks" e <> None)
          xs
      in
      let dispatch_id = Option.bind (arg "span_id" dispatch) Json.to_number in
      check_int "two job spans" 2 (List.length jobs);
      let job_tids =
        List.sort_uniq compare
          (List.filter_map (fun e -> num "tid" e) jobs)
      in
      check_int "job spans on two distinct lane threads" 2
        (List.length job_tids);
      List.iter
        (fun tid ->
          check_bool "job thread is a lane thread" true
            (List.mem_assoc (int_of_float tid) lane_tids))
        job_tids;
      List.iter
        (fun e ->
          check_bool "job parent-linked to dispatch" true
            (Option.bind (arg "parent_span_id" e) Json.to_number = dispatch_id))
        jobs;
      let arrows ph =
        List.filter_map
          (fun e ->
            if str "ph" e = Some ph then num "id" e else None)
          events
      in
      List.iter
        (fun e ->
          let id = Option.bind (arg "span_id" e) Json.to_number in
          check_bool "flow arrow start exists" true
            (List.exists (fun i -> Some i = id) (arrows "s"));
          check_bool "flow arrow end exists" true
            (List.exists (fun i -> Some i = id) (arrows "f")))
        jobs)

(* qcheck: the merged telemetry is pool-width invariant — the span
   structure (ids, parents, names, cats, depths) and the deterministic
   metric figures hash identically at any width. *)
let telemetry_probe pool =
  ignore
    (Par.map ~label:"q.map" pool
       (fun i ->
         Obs.span ~cat:"q" "q.work" (fun () ->
             Obs.incr_counter ~by:(i + 1) "q.count";
             Obs.observe "q.depth_ns" (i * 100);
             i * 3))
       (List.init 24 Fun.id))

let has_suffix s suf =
  let ls = String.length s and lf = String.length suf in
  ls >= lf && String.sub s (ls - lf) lf = suf

let telemetry_digest () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (s : Tracer.completed) ->
      Buffer.add_string buf
        (Printf.sprintf "%d|%s|%s|%d|%s;" s.Tracer.id s.Tracer.cat
           s.Tracer.name s.Tracer.depth
           (match s.Tracer.parent with
           | None -> "-"
           | Some p -> string_of_int p)))
    (Tracer.completed_spans (Obs.tracer ()));
  let m = Obs.metrics () in
  List.iter
    (fun n ->
      match Metrics.find_counter m n with
      | Some v when not (has_suffix n "_us") ->
          Buffer.add_string buf (Printf.sprintf "%s=%d;" n v)
      | _ -> (
          match Metrics.find_histogram m n with
          | Some h ->
              Buffer.add_string buf
                (Printf.sprintf "%s#%d%s;" n (Histogram.count h)
                   (if has_suffix n "_us" then ""
                    else Printf.sprintf "/%.0f" (Histogram.sum h)))
          | None -> ()))
    (List.sort compare (Metrics.names m));
  Digest.to_hex (Digest.string (Buffer.contents buf))

let qcheck_telemetry_width_invariant =
  let reference =
    lazy
      (with_obs (fun () ->
           Par.with_pool ~jobs:1 telemetry_probe;
           telemetry_digest ()))
  in
  QCheck.Test.make ~count:8
    ~name:"merged telemetry md5 is pool-width invariant"
    QCheck.(int_range 1 6)
    (fun jobs ->
      let d =
        with_obs (fun () ->
            Par.with_pool ~jobs telemetry_probe;
            telemetry_digest ())
      in
      String.equal d (Lazy.force reference))

let progress_reaches_caller () =
  let calls = ref [] in
  Par.with_pool ~jobs:2 (fun pool ->
      ignore
        (Par.map
           ~progress:(fun ~completed ~total ->
             calls := (completed, total) :: !calls)
           pool Fun.id (List.init 32 Fun.id)));
  check_bool "progress called" true (!calls <> []);
  let completed, total = List.hd !calls in
  check_int "final completed" total completed;
  check_bool "monotone" true
    (let cs = List.rev_map fst !calls in
     List.sort compare cs = cs)

(* --- parallel equals sequential on the real fan-outs --- *)

let find_module name =
  List.find
    (fun (m : Level4.rtl_module) -> String.equal m.Level4.module_name name)
    (Level4.modules ())

let pcc_parallel_equals_sequential () =
  let m = find_module "WRAPPER" in
  let seq = Symbad_pcc.Pcc.run ~depth:4 m.Level4.netlist m.Level4.properties in
  Par.with_pool ~jobs:3 (fun pool ->
      let par =
        Symbad_pcc.Pcc.run ~pool ~depth:4 m.Level4.netlist m.Level4.properties
      in
      check_bool "identical PCC reports" true (par = seq))

let mc_parallel_equals_sequential () =
  let m = find_module "DISTANCE" in
  let seq =
    Symbad_mc.Engine.check_all ~max_depth:12 m.Level4.netlist
      m.Level4.properties
  in
  List.iter
    (fun jobs ->
      Par.with_pool ~jobs (fun pool ->
          let par =
            Symbad_mc.Engine.check_all ~pool ~max_depth:12 m.Level4.netlist
              m.Level4.properties
          in
          check_bool
            (Printf.sprintf "identical MC reports jobs=%d" jobs)
            true (par = seq)))
    [ 2; 5 ]

let atpg_parallel_equals_sequential () =
  let model = List.hd (Symbad_atpg.Models.all ()) in
  let params =
    {
      Symbad_atpg.Genetic_engine.default_params with
      Symbad_atpg.Genetic_engine.generations = 60;
      population = 8;
    }
  in
  let seq = Symbad_atpg.Genetic_engine.generate ~params model in
  Par.with_pool ~jobs:3 (fun pool ->
      let par = Symbad_atpg.Genetic_engine.generate ~pool ~params model in
      check_bool "identical ATPG suites" true (par = seq);
      check_bool "identical evaluations" true
        (Symbad_atpg.Testbench.evaluate ~pool ~engine:"genetic" model par
        = Symbad_atpg.Testbench.evaluate ~engine:"genetic" model seq))

(* qcheck: the PCC verdict is pool-width invariant for arbitrary widths
   and analysis depths — the acceptance property of the engine *)
let qcheck_pcc_width_invariant =
  QCheck.Test.make ~count:6 ~name:"PCC report is pool-width invariant"
    QCheck.(pair (int_range 2 6) (int_range 2 3))
    (fun (jobs, depth) ->
      let m = find_module "WRAPPER" in
      let seq = Symbad_pcc.Pcc.run ~depth m.Level4.netlist m.Level4.properties in
      Par.with_pool ~jobs (fun pool ->
          Symbad_pcc.Pcc.run ~pool ~depth m.Level4.netlist m.Level4.properties
          = seq))

let qcheck_map_is_list_map =
  QCheck.Test.make ~count:50 ~name:"Par.map equals List.map"
    QCheck.(pair (list small_int) (int_range 1 8))
    (fun (xs, jobs) ->
      let f x = (x * x) + 1 in
      Par.with_pool ~jobs (fun pool -> Par.map pool f xs = List.map f xs))

let suite =
  [
    Alcotest.test_case "map determinism across widths" `Quick map_determinism;
    Alcotest.test_case "mapi and map_reduce" `Quick mapi_and_map_reduce;
    Alcotest.test_case "nested maps do not deadlock" `Quick nested_maps;
    Alcotest.test_case "exception propagation" `Quick exception_propagation;
    Alcotest.test_case "shutdown semantics" `Quick shutdown_semantics;
    Alcotest.test_case "seed split independence" `Quick seed_split_independence;
    Alcotest.test_case "pool telemetry" `Quick pool_telemetry;
    Alcotest.test_case "worker telemetry merged" `Quick worker_telemetry_merged;
    Alcotest.test_case "merged trace parses back" `Quick merged_trace_parse_back;
    QCheck_alcotest.to_alcotest qcheck_telemetry_width_invariant;
    Alcotest.test_case "progress reaches the caller" `Quick
      progress_reaches_caller;
    Alcotest.test_case "parallel PCC equals sequential" `Quick
      pcc_parallel_equals_sequential;
    Alcotest.test_case "parallel MC equals sequential" `Quick
      mc_parallel_equals_sequential;
    Alcotest.test_case "parallel ATPG equals sequential" `Quick
      atpg_parallel_equals_sequential;
    QCheck_alcotest.to_alcotest qcheck_pcc_width_invariant;
    QCheck_alcotest.to_alcotest qcheck_map_is_list_map;
  ]
