(* Tests for the observability library: JSON round-trips, histogram
   bucketing, span nesting, Chrome-trace export validated by parsing it
   back, disabled-mode no-op semantics, and the end-to-end wiring
   through the four-level flow. *)

open Symbad_obs
open Symbad_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* Every test that touches the global facade restores a clean, disabled
   state so suite order never matters. *)
let with_obs enabled f =
  Obs.reset ();
  Obs.set_enabled enabled;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    f

(* --- Json --- *)

let json_round_trip () =
  let doc =
    Json.Obj
      [
        ("null", Json.Null);
        ("t", Json.Bool true);
        ("n", Json.Int (-42));
        ("x", Json.Float 1.5);
        ("s", Json.Str "a \"quoted\"\nline\twith\\escapes");
        ("l", Json.List [ Json.Int 1; Json.Str "two"; Json.Bool false ]);
        ("o", Json.Obj [ ("inner", Json.Int 7) ]);
      ]
  in
  let parsed = Json.parse_exn (Json.to_string doc) in
  check_bool "round trip" true (parsed = doc)

let json_emitter_edges () =
  (* non-finite floats must not produce invalid JSON *)
  check_str "nan" "null" (Json.to_string (Json.Float nan));
  check_str "inf" "null" (Json.to_string (Json.Float infinity));
  check_bool "max_int survives" true
    (Json.parse_exn (Json.to_string (Json.Int max_int)) = Json.Int max_int);
  (* control characters are escaped *)
  let s = Json.to_string (Json.Str "a\x01b") in
  check_bool "control escaped" true
    (String.length s > 4 && not (String.contains s '\x01'))

let json_parse_errors () =
  List.iter
    (fun bad ->
      match Json.parse bad with
      | Ok _ -> Alcotest.failf "accepted %S" bad
      | Error _ -> ())
    [ ""; "{"; "[1,"; "tru"; "\"unterminated"; "{\"a\" 1}"; "1 2" ]

let json_accessors () =
  let doc = Json.parse_exn {|{"a": [1, 2.5], "b": "s"}|} in
  check_bool "member" true (Json.member "a" doc <> None);
  check_bool "missing member" true (Json.member "zz" doc = None);
  (match Json.member "a" doc with
  | Some l -> check_int "list len" 2 (List.length (Option.get (Json.to_list l)))
  | None -> Alcotest.fail "no member a");
  check_bool "to_str" true
    (Option.map (Json.to_str) (Json.member "b" doc) = Some (Some "s"))

(* --- Histogram --- *)

let histogram_buckets () =
  check_int "zero" 0 (Histogram.bucket_index 0);
  check_int "one" 1 (Histogram.bucket_index 1);
  check_int "two" 2 (Histogram.bucket_index 2);
  check_int "three" 2 (Histogram.bucket_index 3);
  check_int "four" 3 (Histogram.bucket_index 4);
  check_int "negative clamps" 0 (Histogram.bucket_index (-5));
  (* every bucket's bounds contain exactly the values that index to it *)
  for i = 0 to 10 do
    let lo, hi = Histogram.bucket_bounds i in
    check_int "lo indexes to i" i (Histogram.bucket_index lo);
    check_int "hi indexes to i" i (Histogram.bucket_index hi)
  done;
  (* max_int lands in a valid (the last) bucket *)
  let last = Histogram.bucket_index max_int in
  let lo, hi = Histogram.bucket_bounds last in
  check_bool "max_int within bounds" true (lo <= max_int && max_int <= hi)

let histogram_observe () =
  let h = Histogram.create () in
  check_int "empty count" 0 (Histogram.count h);
  check_int "empty min" 0 (Histogram.min_value h);
  List.iter (Histogram.observe h) [ 0; 1; 1; 7; 1000; -3; max_int ];
  check_int "count" 7 (Histogram.count h);
  check_int "min" 0 (Histogram.min_value h);
  check_int "max" max_int (Histogram.max_value h);
  (* float sum: no overflow even with max_int observed *)
  check_bool "sum finite" true (Float.is_finite (Histogram.sum h));
  check_bool "mean positive" true (Histogram.mean h > 0.);
  let buckets = Histogram.nonempty_buckets h in
  check_bool "buckets ascending" true
    (List.sort compare buckets = buckets);
  check_int "total across buckets" 7
    (List.fold_left (fun acc (_, _, c) -> acc + c) 0 buckets);
  Histogram.reset h;
  check_int "reset" 0 (Histogram.count h)

(* --- Metrics registry --- *)

let metrics_registry () =
  let m = Metrics.create () in
  let c = Metrics.counter m "c" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  check_int "counter" 5 (Metrics.counter_value (Metrics.counter m "c"));
  let g = Metrics.gauge m "g" in
  Metrics.set g 0.25;
  Metrics.set ~x:9. g 0.5;
  check_bool "gauge last" true (Metrics.last g = Some 0.5);
  check_int "gauge samples" 2 (List.length (Metrics.samples g));
  let h = Metrics.histogram m "h" in
  Metrics.observe h 12;
  check_bool "kind mismatch rejected" true
    (try
       ignore (Metrics.gauge m "c");
       false
     with Invalid_argument _ -> true);
  check_bool "find" true (Metrics.find_counter m "c" = Some 5);
  (* jsonl export: every line parses *)
  let lines =
    String.split_on_char '\n' (Metrics.to_jsonl m)
    |> List.filter (fun l -> String.trim l <> "")
  in
  check_bool "jsonl nonempty" true (lines <> []);
  List.iter
    (fun l ->
      match Json.parse l with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "bad jsonl line %S: %s" l e)
    lines

(* --- Tracer --- *)

let span_nesting () =
  let tr = Tracer.create () in
  let outer = Tracer.begin_span tr ~cat:"t" ~sim_ns:0 "outer" in
  let inner = Tracer.begin_span tr ~cat:"t" ~sim_ns:10 "inner" in
  Tracer.end_span tr ~sim_ns:40 inner;
  let other = Tracer.begin_span tr ~track:"m0" ~cat:"t" "elsewhere" in
  Tracer.end_span tr other;
  Tracer.end_span tr ~sim_ns:100 outer;
  let spans = Tracer.completed_spans tr in
  check_int "span count" 3 (Tracer.span_count tr);
  (* completion order: inner closes first *)
  check_str "first completed" "inner" (List.nth spans 0).Tracer.name;
  check_str "last completed" "outer" (List.nth spans 2).Tracer.name;
  let find n = List.find (fun s -> s.Tracer.name = n) spans in
  check_int "outer depth" 0 (find "outer").Tracer.depth;
  check_int "inner depth" 1 (find "inner").Tracer.depth;
  (* a span on its own track starts a fresh nesting *)
  check_int "other-track depth" 0 (find "elsewhere").Tracer.depth;
  check_bool "sim durations" true
    ((find "inner").Tracer.sim_dur_ns = Some 30
    && (find "outer").Tracer.sim_dur_ns = Some 100);
  (* host-time containment *)
  let o = find "outer" and i = find "inner" in
  check_bool "host containment" true
    (o.Tracer.start_us <= i.Tracer.start_us
    && i.Tracer.start_us +. i.Tracer.dur_us
       <= o.Tracer.start_us +. o.Tracer.dur_us +. 1e-6)

let with_span_exception () =
  let tr = Tracer.create () in
  (try
     Tracer.with_span tr "boom" (fun () -> failwith "boom")
   with Failure _ -> ());
  check_int "closed on exception" 1 (Tracer.span_count tr)

let chrome_trace_parses_back () =
  let tr = Tracer.create () in
  Tracer.with_span tr ~cat:"level" ~sim_ns:0 "level1" (fun () ->
      Tracer.with_span tr ~track:"cpu0" ~cat:"bus" ~sim_ns:5
        ~args:[ ("bytes", Json.Int 4) ]
        "bus.read"
        (fun () -> ()));
  Tracer.instant tr ~severity:Severity.Warn "marker";
  let doc = Json.parse_exn (Tracer.to_chrome_json tr) in
  let events =
    Option.get (Json.to_list (Option.get (Json.member "traceEvents" doc)))
  in
  let phase e = Option.get (Json.to_str (Option.get (Json.member "ph" e))) in
  let complete = List.filter (fun e -> phase e = "X") events in
  let instants = List.filter (fun e -> phase e = "i") events in
  let metadata = List.filter (fun e -> phase e = "M") events in
  check_int "complete events" 2 (List.length complete);
  check_int "instants" 1 (List.length instants);
  (* one thread_name record per track *)
  check_int "track metadata" 2 (List.length metadata);
  List.iter
    (fun e ->
      check_bool "has ts" true (Json.member "ts" e <> None);
      check_bool "has dur" true (Json.member "dur" e <> None);
      check_bool "nonneg dur" true
        (Option.get (Json.to_number (Option.get (Json.member "dur" e))) >= 0.))
    complete;
  let bus =
    List.find
      (fun e ->
        Option.get (Json.to_str (Option.get (Json.member "name" e)))
        = "bus.read")
      complete
  in
  let args = Option.get (Json.member "args" bus) in
  check_bool "span args exported" true
    (Json.member "bytes" args <> None && Json.member "sim_ns" args <> None)

(* --- the global facade --- *)

let disabled_is_noop () =
  with_obs false (fun () ->
      let sp = Obs.begin_span ~cat:"x" "ignored" in
      Obs.event ~severity:Severity.Error "ignored";
      Obs.incr_counter "ignored";
      Obs.set_gauge "ignored" 1.;
      Obs.observe "ignored" 3;
      Obs.end_span sp;
      Obs.span "also_ignored" (fun () -> ()) ;
      check_int "no spans" 0 (Tracer.span_count (Obs.tracer ()));
      check_bool "no metrics" true (Metrics.names (Obs.metrics ()) = []);
      (* end_span on the canonical disabled span is a no-op too *)
      Obs.end_span Obs.null_span)

let events_reach_sinks () =
  with_obs true (fun () ->
      let sink, drain = Sink.buffer () in
      Obs.add_sink sink;
      Obs.event ~severity:Severity.Debug "quiet";
      Obs.event ~severity:Severity.Error
        ~args:[ ("k", Json.Str "v") ]
        ~sim_ns:17 "loud";
      let evs = drain () in
      check_int "both recorded" 2 (List.length evs);
      let loud = List.nth evs 1 in
      check_str "name" "loud" loud.Event.name;
      check_bool "sim time carried" true (loud.Event.sim_ns = Some 17);
      (* Debug stays off the timeline; Error becomes an instant *)
      let doc = Json.parse_exn (Tracer.to_chrome_json (Obs.tracer ())) in
      let events =
        Option.get (Json.to_list (Option.get (Json.member "traceEvents" doc)))
      in
      check_int "one instant" 1
        (List.length
           (List.filter
              (fun e ->
                Json.member "ph" e |> Option.get |> Json.to_str
                |> Option.get = "i")
              events));
      ignore (Json.parse_exn (Json.to_string (Event.to_json loud))))

(* --- end to end through the flow --- *)

let flow_is_instrumented () =
  with_obs true (fun () ->
      let report = Flow.run ~workload:Face_app.smoke_workload () in
      check_bool "flow passed" true report.Flow.all_passed;
      let tr = Obs.tracer () in
      let levels = Tracer.spans_with_cat tr "level" in
      check_int "four level spans" 4 (List.length levels);
      List.iteri
        (fun i s ->
          check_str "level order" (Printf.sprintf "level%d" (i + 1))
            s.Tracer.name)
        levels;
      check_bool "bus spans nested in the run" true
        (Tracer.spans_with_cat tr "bus" <> []);
      check_bool "sat spans" true (Tracer.spans_with_cat tr "sat" <> []);
      check_bool "mc spans" true (Tracer.spans_with_cat tr "mc" <> []);
      let m = Obs.metrics () in
      let pos name =
        match Metrics.find_counter m name with Some v -> v > 0 | None -> false
      in
      check_bool "kernel events counted" true (pos "sim.events_dispatched");
      check_bool "bus transactions counted" true (pos "bus.transactions");
      check_bool "sat solves counted" true (pos "sat.solves");
      check_bool "grant-wait histogram" true
        (match Metrics.find_histogram m "bus.grant_wait_ns" with
        | Some h -> Histogram.count h > 0
        | None -> false);
      check_bool "atpg coverage gauge" true
        (match Metrics.find_gauge m "atpg.coverage" with
        | Some v -> v > 0.
        | None -> false);
      (* the whole timeline export survives a parse *)
      let doc = Json.parse_exn (Tracer.to_chrome_json tr) in
      check_bool "traceEvents present" true
        (Json.member "traceEvents" doc <> None);
      (* and the flow report JSON parses and agrees with the run *)
      let rj = Json.parse_exn (Flow.to_json report) in
      check_bool "report all_passed" true
        (Json.member "all_passed" rj = Some (Json.Bool true));
      check_int "report levels" 4
        (List.length
           (Option.get (Json.to_list (Option.get (Json.member "levels" rj))))))

let suite =
  [
    Alcotest.test_case "json round trip" `Quick json_round_trip;
    Alcotest.test_case "json emitter edges" `Quick json_emitter_edges;
    Alcotest.test_case "json parse errors" `Quick json_parse_errors;
    Alcotest.test_case "json accessors" `Quick json_accessors;
    Alcotest.test_case "histogram buckets" `Quick histogram_buckets;
    Alcotest.test_case "histogram observe" `Quick histogram_observe;
    Alcotest.test_case "metrics registry" `Quick metrics_registry;
    Alcotest.test_case "span nesting" `Quick span_nesting;
    Alcotest.test_case "with_span on exception" `Quick with_span_exception;
    Alcotest.test_case "chrome trace parses back" `Quick
      chrome_trace_parses_back;
    Alcotest.test_case "disabled is no-op" `Quick disabled_is_noop;
    Alcotest.test_case "events reach sinks" `Quick events_reach_sinks;
    Alcotest.test_case "flow is instrumented" `Slow flow_is_instrumented;
  ]
