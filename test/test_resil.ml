(* Tests for the fault-injection campaign engine and the recovery
   state machine. *)

module Par = Symbad_par.Par
module Gov = Symbad_gov.Gov
module Budget = Symbad_gov.Budget
module Json = Symbad_obs.Json
module Verdict = Symbad_core.Verdict
open Symbad_resil

let check = Alcotest.(check int)

(* --- the recovery controller's model-checked contract --- *)

let recovery_fsm_proved () =
  let reports = Recovery.check () in
  check "six properties" 6 (List.length reports);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s proved" r.Symbad_mc.Engine.property)
        true
        (match r.Symbad_mc.Engine.verdict with
        | Symbad_mc.Engine.Proved _ -> true
        | _ -> false))
    reports;
  Alcotest.(check bool) "all_proved" true (Recovery.all_proved reports)

let recovery_fsm_bounds_validated () =
  Alcotest.(check bool) "max_tries validated" true
    (try
       ignore (Recovery.netlist ~max_tries:4 ());
       false
     with Invalid_argument _ -> true)

(* --- campaign: determinism, recovery, honest failure --- *)

let small_campaign ?gov ?kinds ?(trials_per_kind = 1) ?scrub_period_ns ~jobs
    ~seed () =
  Par.with_pool ~jobs (fun pool ->
      Campaign.run ~pool ?gov ?kinds ~trials_per_kind ?scrub_period_ns ~seed ())

let campaign_deterministic_across_jobs () =
  let render jobs =
    Json.to_string (Campaign.to_json (small_campaign ~jobs ~seed:42 ()))
  in
  let j1 = render 1 in
  Alcotest.(check string) "jobs=2 byte-identical" j1 (render 2);
  Alcotest.(check string) "jobs=4 byte-identical" j1 (render 4)

let campaign_recovers_winner () =
  let r = small_campaign ~trials_per_kind:2 ~jobs:2 ~seed:7 () in
  Alcotest.(check bool) "control matches baseline" true r.Campaign.control_ok;
  check "nothing skipped" 0 r.Campaign.skipped;
  List.iter
    (fun (o : Campaign.outcome) ->
      Alcotest.(check bool)
        (Printf.sprintf "trial %d (%s) elects the baseline winner" o.trial
           o.Campaign.kind)
        true o.Campaign.correct)
    r.Campaign.outcomes;
  Alcotest.(check bool) "campaign passed" true r.Campaign.passed;
  Alcotest.(check bool) "verdict proved" true
    (Campaign.verdict r).Verdict.passed

let campaign_undetected_fault_fails () =
  (* scrubbing disabled: configuration upsets go unobserved — the
     campaign must report that as a failure, never as a pass *)
  let r =
    small_campaign ~kinds:[ Fault.Config_upset ] ~trials_per_kind:2
      ~scrub_period_ns:0 ~jobs:2 ~seed:3 ()
  in
  Alcotest.(check bool) "not passed" false r.Campaign.passed;
  (match Campaign.first_failure r with
  | None -> Alcotest.fail "expected a failing trial"
  | Some o ->
      Alcotest.(check bool) "fault landed" true o.Campaign.injected;
      Alcotest.(check bool) "but was never detected" false o.Campaign.detected);
  Alcotest.(check bool) "verdict fails" false (Campaign.verdict r).Verdict.passed

let campaign_budget_degrades_to_inconclusive () =
  (* a pattern budget covering only part of the plan: the rest is
     skipped and the verdict degrades, it does not pass optimistically *)
  let gov = Gov.create ~label:"resil" (Budget.make ~patterns:3 ()) in
  let r = small_campaign ~gov ~trials_per_kind:2 ~jobs:2 ~seed:5 () in
  check "trials beyond the budget skipped" 8 r.Campaign.skipped;
  Alcotest.(check bool) "not passed" false r.Campaign.passed;
  let v = Campaign.verdict r in
  Alcotest.(check bool) "verdict fails" false v.Verdict.passed;
  Alcotest.(check bool) "inconclusive, not disproved" true
    (match v.Verdict.outcome with Verdict.Inconclusive _ -> true | _ -> false)

let campaign_zero_budget_runs_nothing () =
  let gov = Gov.create ~label:"resil" (Budget.make ~patterns:0 ()) in
  let r = small_campaign ~gov ~jobs:1 ~seed:5 () in
  check "everything skipped" (List.length r.Campaign.outcomes)
    r.Campaign.skipped;
  Alcotest.(check bool) "not passed" false r.Campaign.passed

(* All fault kinds disabled: the campaign is exactly one control trial,
   and it must be byte-identical to the uninjected platform run at any
   seed and any pool width. *)
let qcheck_disabled_campaign_is_transparent =
  QCheck.Test.make ~name:"disabled campaign == uninjected run (any jobs/seed)"
    ~count:6
    QCheck.(pair (int_bound 1000) (int_range 1 3))
    (fun (seed, jobs) ->
      let r = small_campaign ~kinds:[] ~jobs ~seed () in
      r.Campaign.control_ok && r.Campaign.passed
      && List.length r.Campaign.outcomes = 1)

let suite =
  [
    Alcotest.test_case "recovery FSM proved" `Quick recovery_fsm_proved;
    Alcotest.test_case "recovery FSM bounds validated" `Quick
      recovery_fsm_bounds_validated;
    Alcotest.test_case "campaign deterministic across jobs" `Quick
      campaign_deterministic_across_jobs;
    Alcotest.test_case "campaign recovers the winner" `Quick
      campaign_recovers_winner;
    Alcotest.test_case "undetected fault is a failure" `Quick
      campaign_undetected_fault_fails;
    Alcotest.test_case "budget degrades to inconclusive" `Quick
      campaign_budget_degrades_to_inconclusive;
    Alcotest.test_case "zero budget runs nothing" `Quick
      campaign_zero_budget_runs_nothing;
    QCheck_alcotest.to_alcotest qcheck_disabled_campaign_is_transparent;
  ]
