(* Tests for the fault-injection campaign engine and the recovery
   state machine. *)

module Par = Symbad_par.Par
module Gov = Symbad_gov.Gov
module Budget = Symbad_gov.Budget
module Json = Symbad_obs.Json
module Verdict = Symbad_core.Verdict
open Symbad_resil

let check = Alcotest.(check int)

(* --- the recovery controller's model-checked contract --- *)

let recovery_fsm_proved () =
  let reports = Recovery.check () in
  check "six properties" 6 (List.length reports);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s proved" r.Symbad_mc.Engine.property)
        true
        (match r.Symbad_mc.Engine.verdict with
        | Symbad_mc.Engine.Proved _ -> true
        | _ -> false))
    reports;
  Alcotest.(check bool) "all_proved" true (Recovery.all_proved reports)

let recovery_fsm_bounds_validated () =
  Alcotest.(check bool) "max_tries validated" true
    (try
       ignore (Recovery.netlist ~max_tries:4 ());
       false
     with Invalid_argument _ -> true)

(* --- campaign: determinism, recovery, honest failure --- *)

let small_campaign ?gov ?mode ?kinds ?(trials_per_kind = 1) ?scrub_period_ns
    ~jobs ~seed () =
  Par.with_pool ~jobs (fun pool ->
      Campaign.run ~pool ?gov ?mode ?kinds ~trials_per_kind ?scrub_period_ns
        ~seed ())

let campaign_deterministic_across_jobs () =
  let render jobs =
    Json.to_string (Campaign.to_json (small_campaign ~jobs ~seed:42 ()))
  in
  let j1 = render 1 in
  Alcotest.(check string) "jobs=2 byte-identical" j1 (render 2);
  Alcotest.(check string) "jobs=4 byte-identical" j1 (render 4)

let campaign_tmr_deterministic_across_jobs () =
  let render jobs =
    Json.to_string
      (Campaign.to_json (small_campaign ~mode:Campaign.Tmr ~jobs ~seed:42 ()))
  in
  let j1 = render 1 in
  Alcotest.(check string) "tmr jobs=3 byte-identical" j1 (render 3)

let campaign_recovers_winner () =
  let r = small_campaign ~trials_per_kind:2 ~jobs:2 ~seed:7 () in
  Alcotest.(check bool) "control matches baseline" true r.Campaign.control_ok;
  check "nothing skipped" 0 r.Campaign.skipped;
  List.iter
    (fun (o : Campaign.outcome) ->
      Alcotest.(check bool)
        (Printf.sprintf "trial %d (%s) elects the baseline winner" o.trial
           o.Campaign.kind)
        true o.Campaign.correct)
    r.Campaign.outcomes;
  Alcotest.(check bool) "campaign passed" true r.Campaign.passed;
  Alcotest.(check bool) "verdict proved" true
    (Campaign.verdict r).Verdict.passed

let campaign_undetected_fault_fails () =
  (* scrubbing disabled: configuration upsets go unobserved — the
     campaign must report that as a failure, never as a pass *)
  let r =
    small_campaign ~kinds:[ Fault.Config_upset ] ~trials_per_kind:2
      ~scrub_period_ns:0 ~jobs:2 ~seed:3 ()
  in
  Alcotest.(check bool) "not passed" false r.Campaign.passed;
  (match Campaign.first_failure r with
  | None -> Alcotest.fail "expected a failing trial"
  | Some o ->
      Alcotest.(check bool) "fault landed" true o.Campaign.injected;
      Alcotest.(check bool) "but was never detected" false o.Campaign.detected);
  Alcotest.(check bool) "verdict fails" false (Campaign.verdict r).Verdict.passed

let campaign_budget_degrades_to_inconclusive () =
  (* a pattern budget covering only part of the plan: the rest is
     skipped and the verdict degrades, it does not pass optimistically *)
  let gov = Gov.create ~label:"resil" (Budget.make ~patterns:3 ()) in
  let r = small_campaign ~gov ~trials_per_kind:2 ~jobs:2 ~seed:5 () in
  (* 1 control + 2 x 8 kinds planned, 3 executed *)
  check "trials beyond the budget skipped" 14 r.Campaign.skipped;
  Alcotest.(check bool) "not passed" false r.Campaign.passed;
  let v = Campaign.verdict r in
  Alcotest.(check bool) "verdict fails" false v.Verdict.passed;
  Alcotest.(check bool) "inconclusive, not disproved" true
    (match v.Verdict.outcome with Verdict.Inconclusive _ -> true | _ -> false)

let campaign_zero_budget_runs_nothing () =
  let gov = Gov.create ~label:"resil" (Budget.make ~patterns:0 ()) in
  let r = small_campaign ~gov ~jobs:1 ~seed:5 () in
  check "everything skipped" (List.length r.Campaign.outcomes)
    r.Campaign.skipped;
  Alcotest.(check bool) "not passed" false r.Campaign.passed

(* --- the masked operating mode: TMR + bus ECC --- *)

let campaign_tmr_masks_at_zero_latency () =
  (* in tmr mode every maskable fault — configuration upsets (either
     copy) and single-bit bus corruptions — must be absorbed with the
     correct winner at exactly the baseline service time *)
  let r =
    small_campaign ~mode:Campaign.Tmr
      ~kinds:[ Fault.Config_upset; Fault.Tmr_upset; Fault.Ecc_single ]
      ~trials_per_kind:2 ~jobs:2 ~seed:11 ()
  in
  Alcotest.(check string) "mode recorded" "tmr" r.Campaign.mode;
  Alcotest.(check bool) "campaign passed" true r.Campaign.passed;
  check "all six trials masked" 6 r.Campaign.masked_trials;
  List.iter
    (fun (o : Campaign.outcome) ->
      if not (String.equal o.Campaign.kind "control") then begin
        Alcotest.(check bool)
          (Printf.sprintf "trial %d (%s) masked" o.trial o.Campaign.kind)
          true o.Campaign.masked;
        check
          (Printf.sprintf "trial %d (%s) zero recovery latency" o.trial
             o.Campaign.kind)
          0 o.Campaign.recovery_ns
      end)
    r.Campaign.outcomes;
  (* the masked mode's price is on the books: triplicated fabric area *)
  Alcotest.(check bool) "tmr area on the books" true
    (r.Campaign.fabric_area
    > (small_campaign ~kinds:[] ~jobs:1 ~seed:11 ()).Campaign.fabric_area)

let campaign_ecc_double_recovers_by_retry () =
  (* a double-bit corruption is beyond correction: ECC detects it (never
     miscorrects) and the bounded bus retry recovers — detected and
     recovered, but not masked *)
  let r =
    small_campaign ~mode:Campaign.Tmr ~kinds:[ Fault.Ecc_double ]
      ~trials_per_kind:2 ~jobs:2 ~seed:11 ()
  in
  Alcotest.(check bool) "campaign passed" true r.Campaign.passed;
  List.iter
    (fun (o : Campaign.outcome) ->
      if not (String.equal o.Campaign.kind "control") then begin
        Alcotest.(check bool) "detected" true o.Campaign.detected;
        Alcotest.(check bool) "recovered" true o.Campaign.recovered;
        Alcotest.(check bool) "not masked" false o.Campaign.masked
      end)
    r.Campaign.outcomes;
  check "nothing masked" 0 r.Campaign.masked_trials

let fault_of_string_parses_and_rejects () =
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Fault.kind_to_string k ^ " roundtrips")
        true
        (Fault.of_string (Fault.kind_to_string k) = Ok k))
    Fault.all_kinds;
  match Fault.of_string "cosmic_ray" with
  | Ok _ -> Alcotest.fail "unknown kind accepted"
  | Error msg ->
      List.iter
        (fun k ->
          let name = Fault.kind_to_string k in
          Alcotest.(check bool)
            (Printf.sprintf "error lists %s" name)
            true
            (let n = String.length msg and m = String.length name in
             let rec go i =
               i + m <= n && (String.sub msg i m = name || go (i + 1))
             in
             go 0))
        Fault.all_kinds

let masking_voter_proved () =
  let reports = Masking.check_voter () in
  check "seven properties" 7 (List.length reports);
  Alcotest.(check bool) "all proved" true (Masking.all_proved reports)

let masking_lockstep_proved () =
  let reports =
    Masking.check_triplicated (Symbad_hdl.Rtl_lib.counter ~width:4)
  in
  Alcotest.(check bool) "lock-step proved" true (Masking.all_proved reports)

(* All fault kinds disabled: the campaign is exactly one control trial,
   and it must be byte-identical to the uninjected platform run at any
   seed and any pool width. *)
let qcheck_disabled_campaign_is_transparent =
  QCheck.Test.make ~name:"disabled campaign == uninjected run (any jobs/seed)"
    ~count:6
    QCheck.(pair (int_bound 1000) (int_range 1 3))
    (fun (seed, jobs) ->
      let r = small_campaign ~kinds:[] ~jobs ~seed () in
      r.Campaign.control_ok && r.Campaign.passed
      && List.length r.Campaign.outcomes = 1)

let suite =
  [
    Alcotest.test_case "recovery FSM proved" `Quick recovery_fsm_proved;
    Alcotest.test_case "recovery FSM bounds validated" `Quick
      recovery_fsm_bounds_validated;
    Alcotest.test_case "campaign deterministic across jobs" `Quick
      campaign_deterministic_across_jobs;
    Alcotest.test_case "tmr campaign deterministic across jobs" `Quick
      campaign_tmr_deterministic_across_jobs;
    Alcotest.test_case "tmr campaign masks at zero latency" `Quick
      campaign_tmr_masks_at_zero_latency;
    Alcotest.test_case "ecc double recovers by retry" `Quick
      campaign_ecc_double_recovers_by_retry;
    Alcotest.test_case "fault of_string parses and rejects" `Quick
      fault_of_string_parses_and_rejects;
    Alcotest.test_case "masking voter proved" `Quick masking_voter_proved;
    Alcotest.test_case "masking lock-step proved" `Quick
      masking_lockstep_proved;
    Alcotest.test_case "campaign recovers the winner" `Quick
      campaign_recovers_winner;
    Alcotest.test_case "undetected fault is a failure" `Quick
      campaign_undetected_fault_fails;
    Alcotest.test_case "budget degrades to inconclusive" `Quick
      campaign_budget_degrades_to_inconclusive;
    Alcotest.test_case "zero budget runs nothing" `Quick
      campaign_zero_budget_runs_nothing;
    QCheck_alcotest.to_alcotest qcheck_disabled_campaign_is_transparent;
  ]
