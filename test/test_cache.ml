(* Tests for the content-addressed verdict cache: key sensitivity, the
   store, level-4 replay and the warm-run identity of the flow report. *)

open Symbad_core
module Cache = Symbad_cache.Cache
module Key = Symbad_cache.Key
module Budget = Symbad_gov.Budget
module Netlist = Symbad_hdl.Netlist
module E = Symbad_hdl.Expr
module Prop = Symbad_mc.Prop

let check_bool = Alcotest.(check bool)

(* unique scratch directories under the system temp dir *)
let scratch_counter = ref 0

let scratch () =
  incr scratch_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "symbad_cache_test_%d_%d" (Unix.getpid ())
       !scratch_counter)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then (
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path)
    else Sys.remove path

let with_scratch f =
  let dir = scratch () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* --- keys -------------------------------------------------------------- *)

let counter ~threshold =
  Netlist.make ~name:"cnt"
    ~inputs:[ ("tick", 1) ]
    ~registers:
      [
        {
          Netlist.name = "n";
          width = 3;
          init = Symbad_hdl.Bitvec.make ~width:3 0;
          next = E.mux (E.input "tick") (E.add (E.reg "n") (E.const ~width:3 1)) (E.reg "n");
        };
      ]
    ~outputs:[ ("n", E.reg "n") ]
  |> fun nl ->
  ( nl,
    [
      Prop.make ~name:"bound" (E.ule (E.reg "n") (E.const ~width:3 threshold));
    ] )

let key_of ?(threshold = 7) ?(budget = Budget.unlimited)
    ?(params = [ ("max_depth", 12) ]) () =
  let netlist, props = counter ~threshold in
  Key.make ~netlist ~props ~budget ~params ()

let key_deterministic () =
  Alcotest.(check string) "same inputs same key" (key_of ()) (key_of ());
  Alcotest.(check int) "32 hex chars" 32 (String.length (key_of ()))

let key_sensitivity () =
  let base = key_of () in
  check_bool "property edit changes key" true (base <> key_of ~threshold:6 ());
  check_bool "budget class changes key" true
    (base <> key_of ~budget:{ Budget.unlimited with Budget.conflicts = Some 100 } ());
  check_bool "params change key" true
    (base <> key_of ~params:[ ("max_depth", 11) ] ());
  (* the deadline instant is wall-clock state and must not enter keys *)
  let at t = { Budget.unlimited with Budget.deadline = Some t } in
  Alcotest.(check string) "deadline instant irrelevant"
    (key_of ~budget:(at 1.) ())
    (key_of ~budget:(at 2.) ())

(* --- the store --------------------------------------------------------- *)

let store_roundtrip () =
  with_scratch @@ fun dir ->
  let module Json = Symbad_obs.Json in
  let c = Cache.create ~dir () in
  let k = key_of () in
  check_bool "cold miss" true (Cache.find c k = None);
  Cache.store c k (Json.Obj [ ("x", Json.Int 1) ]);
  (match Cache.find c k with
  | Some (Json.Obj [ ("x", Json.Int 1) ]) -> ()
  | _ -> Alcotest.fail "expected the stored document back");
  (* a corrupt entry reads as a miss, never a failure *)
  let oc = open_out (Filename.concat dir (k ^ ".json")) in
  output_string oc "{not json";
  close_out oc;
  check_bool "corrupt entry is a miss" true (Cache.find c k = None);
  Alcotest.(check int) "hits" 1 (Cache.hits c);
  Alcotest.(check int) "misses" 2 (Cache.misses c);
  Alcotest.(check int) "stores" 1 (Cache.stores c)

(* --- level-4 replay ---------------------------------------------------- *)

let first_module () = List.hd (Level4.modules ())

let level4_hit_and_replay () =
  with_scratch @@ fun dir ->
  let cache = Cache.create ~dir () in
  let m = first_module () in
  let cold = Level4.verify_module ~cache m in
  check_bool "cold run is live" true (not cold.Level4.cached);
  check_bool "cold run stored" true (Cache.stores cache = 1);
  let warm = Level4.verify_module ~cache m in
  check_bool "warm run replays" true warm.Level4.cached;
  check_bool "no rich results on a hit" true (warm.Level4.results = None);
  (* replayed rows carry the same verdicts, marked cached *)
  List.iter2
    (fun (a : Verdict.t) (b : Verdict.t) ->
      Alcotest.(check string) "name" a.Verdict.name b.Verdict.name;
      check_bool "passed" true (a.Verdict.passed = b.Verdict.passed);
      Alcotest.(check string) "detail" a.Verdict.detail b.Verdict.detail;
      check_bool "marked cached" true b.Verdict.cached)
    (Level4.module_verdicts cold)
    (Level4.module_verdicts warm)

let level4_miss_on_edit () =
  with_scratch @@ fun dir ->
  let cache = Cache.create ~dir () in
  let m = first_module () in
  ignore (Level4.verify_module ~cache m);
  (* dropping a property is an edit: the key changes and the warm run
     must not replay the stale entry *)
  let edited =
    { m with Level4.properties = [ List.hd m.Level4.properties ] }
  in
  let r = Level4.verify_module ~cache edited in
  check_bool "edited module misses" true (not r.Level4.cached)

let inconclusive_never_stored () =
  with_scratch @@ fun dir ->
  let cache = Cache.create ~dir () in
  let m = first_module () in
  (* a starved governor degrades the run; the partial result must not
     poison the cache *)
  let gov =
    Symbad_gov.Gov.create ~label:"starved"
      { Budget.unlimited with Budget.conflicts = Some 1 }
  in
  let r = Level4.verify_module ~cache ~gov m in
  check_bool "degraded run not stored" true (Cache.stores cache = 0);
  check_bool "degraded run not a hit" true (not r.Level4.cached)

(* --- the flow: warm-run identity across pool widths -------------------- *)

let md5 s = Digest.to_hex (Digest.string s)

let flow_warm_identity_across_jobs () =
  with_scratch @@ fun dir ->
  let cache = Cache.create ~dir () in
  let w = Face_app.smoke_workload in
  let cold = Flow.run ~cache ~workload:w () in
  let warm1 = Flow.run ~cache ~workload:w () in
  let warm2 =
    Symbad_par.Par.with_pool ~jobs:2 (fun pool ->
        Flow.run ~pool ~cache ~workload:w ())
  in
  let j1 = Flow.to_json ~timings:false warm1 in
  let contains needle hay =
    let nl = String.length needle and tl = String.length hay in
    let rec go i = i + nl <= tl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "warm report carries cached rows" true (contains "cached" j1);
  check_bool "cold report does not" true
    (not (contains "cached" (Flow.to_json ~timings:false cold)));
  Alcotest.(check string) "warm md5 is pool-width invariant" (md5 j1)
    (md5 (Flow.to_json ~timings:false warm2));
  check_bool "cold and warm agree on the outcome" true
    (cold.Flow.all_passed = warm1.Flow.all_passed)

let suite =
  [
    Alcotest.test_case "key deterministic" `Quick key_deterministic;
    Alcotest.test_case "key sensitivity" `Quick key_sensitivity;
    Alcotest.test_case "store roundtrip" `Quick store_roundtrip;
    Alcotest.test_case "level4 hit and replay" `Quick level4_hit_and_replay;
    Alcotest.test_case "level4 miss on edit" `Quick level4_miss_on_edit;
    Alcotest.test_case "inconclusive never stored" `Quick
      inconclusive_never_stored;
    Alcotest.test_case "flow warm identity across jobs" `Slow
      flow_warm_identity_across_jobs;
  ]
