(* Tests for the CDCL SAT solver, Tseitin encodings and DIMACS. *)

open Symbad_sat

let check_bool = Alcotest.(check bool)

let solve_clauses nvars clauses =
  let s = Solver.create nvars in
  List.iter (Solver.add_clause s) clauses;
  (s, Solver.solve s)

let is_sat = function Solver.Sat -> true | Solver.Unsat | Solver.Unknown -> false
let is_unsat = function Solver.Unsat -> true | Solver.Sat | Solver.Unknown -> false

let trivial_sat () =
  let _, r = solve_clauses 2 [ [ 1; 2 ]; [ -1 ] ] in
  check_bool "sat" true (is_sat r)

let trivial_unsat () =
  let _, r = solve_clauses 1 [ [ 1 ]; [ -1 ] ] in
  check_bool "unsat" true (is_unsat r)

let empty_clause_unsat () =
  let _, r = solve_clauses 1 [ [] ] in
  check_bool "unsat" true (is_unsat r)

let no_clauses_sat () =
  let _, r = solve_clauses 3 [] in
  check_bool "sat" true (is_sat r)

let model_satisfies () =
  let clauses = [ [ 1; -2; 3 ]; [ -1; 2 ]; [ -3 ]; [ 2; 3 ] ] in
  let s, r = solve_clauses 3 clauses in
  check_bool "sat" true (is_sat r);
  let value l =
    if l > 0 then Solver.model_value s l else not (Solver.model_value s (-l))
  in
  check_bool "model checks out" true
    (List.for_all (List.exists value) clauses)

let pigeonhole n m =
  (* n pigeons into m holes *)
  let var p h = ((p - 1) * m) + h in
  let s = Solver.create (n * m) in
  for p = 1 to n do
    Solver.add_clause s (List.init m (fun h -> var p (h + 1)))
  done;
  for h = 1 to m do
    for p1 = 1 to n do
      for p2 = p1 + 1 to n do
        Solver.add_clause s [ -(var p1 h); -(var p2 h) ]
      done
    done
  done;
  Solver.solve s

let pigeonhole_unsat () = check_bool "php(6,5)" true (is_unsat (pigeonhole 6 5))
let pigeonhole_sat () = check_bool "php(5,5)" true (is_sat (pigeonhole 5 5))

let assumptions_work () =
  let s = Solver.create 2 in
  Solver.add_clause s [ 1; 2 ];
  check_bool "sat under -1" true (is_sat (Solver.solve ~assumptions:[ -1 ] s));
  check_bool "unsat under -1,-2" true
    (is_unsat (Solver.solve ~assumptions:[ -1; -2 ] s));
  (* solver is reusable after an assumption failure *)
  check_bool "still sat" true (is_sat (Solver.solve s))

let conflict_budget () =
  (* a hard instance with a tiny budget returns Unknown *)
  let var p h = ((p - 1) * 8 ) + h in
  let s = Solver.create 72 in
  for p = 1 to 9 do
    Solver.add_clause s (List.init 8 (fun h -> var p (h + 1)))
  done;
  for h = 1 to 8 do
    for p1 = 1 to 9 do
      for p2 = p1 + 1 to 9 do
        Solver.add_clause s [ -(var p1 h); -(var p2 h) ]
      done
    done
  done;
  match Solver.solve ~max_conflicts:5 s with
  | Solver.Unknown -> ()
  | Solver.Sat | Solver.Unsat -> Alcotest.fail "expected resource-out"

let new_var_growth () =
  let s = Solver.create 0 in
  let vars = List.init 100 (fun _ -> Solver.new_var s) in
  Alcotest.(check int) "nvars" 100 (Solver.nvars s);
  List.iter (fun v -> Solver.add_clause s [ v ]) vars;
  check_bool "sat" true (is_sat (Solver.solve s));
  check_bool "all true" true (List.for_all (Solver.model_value s) vars)

let unit_propagation_chain () =
  (* x1 -> x2 -> ... -> x20, assert x1: everything propagates *)
  let n = 20 in
  let s = Solver.create n in
  for i = 1 to n - 1 do
    Solver.add_clause s [ -i; i + 1 ]
  done;
  Solver.add_clause s [ 1 ];
  check_bool "sat" true (is_sat (Solver.solve s));
  for i = 1 to n do
    check_bool (Printf.sprintf "x%d true" i) true (Solver.model_value s i)
  done;
  let st = Solver.stats s in
  Alcotest.(check int) "no decisions needed" 0 st.Solver.decisions

let solver_reusable_across_solves () =
  let s = Solver.create 2 in
  Solver.add_clause s [ 1; 2 ];
  check_bool "first" true (is_sat (Solver.solve s));
  Solver.add_clause s [ -1 ];
  check_bool "second" true (is_sat (Solver.solve s));
  check_bool "x2 forced" true (Solver.model_value s 2);
  Solver.add_clause s [ -2 ];
  check_bool "third" true (is_unsat (Solver.solve s))

(* --- Tseitin --- *)

let tseitin_truth_tables () =
  (* check each gate against its truth table by forcing inputs *)
  let eval gate a_val b_val =
    let s = Solver.create 0 in
    let ctx = Tseitin.create s in
    let a = Tseitin.fresh ctx and b = Tseitin.fresh ctx in
    let o = gate ctx a b in
    Tseitin.assert_lit ctx (if a_val then a else -a);
    Tseitin.assert_lit ctx (if b_val then b else -b);
    match Solver.solve s with
    | Solver.Sat ->
        if o > 0 then Solver.model_value s o else not (Solver.model_value s (-o))
    | Solver.Unsat | Solver.Unknown -> Alcotest.fail "inputs unsat"
  in
  List.iter
    (fun (a, b) ->
      check_bool "and" (a && b) (eval Tseitin.and_gate a b);
      check_bool "or" (a || b) (eval Tseitin.or_gate a b);
      check_bool "xor" (a <> b) (eval Tseitin.xor_gate a b);
      check_bool "iff" (a = b) (eval Tseitin.iff_gate a b))
    [ (false, false); (false, true); (true, false); (true, true) ]

let tseitin_mux () =
  List.iter
    (fun (sel, a, b) ->
      let s = Solver.create 0 in
      let ctx = Tseitin.create s in
      let ls = Tseitin.fresh ctx
      and la = Tseitin.fresh ctx
      and lb = Tseitin.fresh ctx in
      let o = Tseitin.mux_gate ctx ~sel:ls la lb in
      Tseitin.assert_lit ctx (if sel then ls else -ls);
      Tseitin.assert_lit ctx (if a then la else -la);
      Tseitin.assert_lit ctx (if b then lb else -lb);
      (match Solver.solve s with
      | Solver.Sat ->
          let got =
            if o > 0 then Solver.model_value s o
            else not (Solver.model_value s (-o))
          in
          check_bool "mux" (if sel then a else b) got
      | Solver.Unsat | Solver.Unknown -> Alcotest.fail "unsat"))
    [ (true, true, false); (false, true, false); (true, false, true);
      (false, false, true) ]

let tseitin_full_adder () =
  List.iter
    (fun (a, b, c) ->
      let s = Solver.create 0 in
      let ctx = Tseitin.create s in
      let la = Tseitin.of_bool ctx a
      and lb = Tseitin.of_bool ctx b
      and lc = Tseitin.of_bool ctx c in
      let sum, carry = Tseitin.full_adder ctx la lb lc in
      (match Solver.solve s with
      | Solver.Sat ->
          let value l =
            if l > 0 then Solver.model_value s l
            else not (Solver.model_value s (-l))
          in
          let total = Bool.to_int a + Bool.to_int b + Bool.to_int c in
          check_bool "sum" (total land 1 = 1) (value sum);
          check_bool "carry" (total >= 2) (value carry)
      | Solver.Unsat | Solver.Unknown -> Alcotest.fail "unsat"))
    [
      (false, false, false); (true, false, false); (false, true, true);
      (true, true, true);
    ]

let tseitin_constant_folding () =
  let s = Solver.create 0 in
  let ctx = Tseitin.create s in
  let t = Tseitin.const_true ctx and f = Tseitin.const_false ctx in
  Alcotest.(check int) "and(t,x)=x" 0
    (let x = Tseitin.fresh ctx in
     Tseitin.and_gate ctx t x - x);
  Alcotest.(check int) "or const" t (Tseitin.or_gate ctx t f);
  Alcotest.(check int) "xor(x,x)=false" f
    (let x = Tseitin.fresh ctx in
     Tseitin.xor_gate ctx x x)

(* --- Dimacs --- *)

let dimacs_roundtrip () =
  let p = { Dimacs.nvars = 3; clauses = [ [ 1; -2 ]; [ 2; 3 ]; [ -3 ] ] } in
  let p' = Dimacs.parse_string (Dimacs.to_string p) in
  Alcotest.(check int) "nvars" p.Dimacs.nvars p'.Dimacs.nvars;
  Alcotest.(check (list (list int))) "clauses" p.Dimacs.clauses p'.Dimacs.clauses

let dimacs_parse_comments () =
  let p =
    Dimacs.parse_string "c a comment\np cnf 2 2\n1 -2 0\nc another\n2 0\n"
  in
  Alcotest.(check int) "nvars" 2 p.Dimacs.nvars;
  Alcotest.(check (list (list int))) "clauses" [ [ 1; -2 ]; [ 2 ] ]
    p.Dimacs.clauses;
  check_bool "solves" true (is_sat (Dimacs.solve p))

(* --- qcheck: random instances vs brute force --- *)

let brute_force nvars clauses =
  let rec go asn v =
    if v > nvars then
      List.for_all
        (List.exists (fun l ->
             let x = asn.(abs l) in
             if l > 0 then x else not x))
        clauses
    else begin
      asn.(v) <- true;
      go asn (v + 1)
      ||
      (asn.(v) <- false;
       go asn (v + 1))
    end
  in
  go (Array.make (nvars + 1) false) 1

let gen_instance =
  QCheck.Gen.(
    let* nvars = 2 -- 8 in
    let* nclauses = 1 -- 25 in
    let* clauses =
      list_repeat nclauses
        (let* k = 1 -- 3 in
         list_repeat k
           (let* v = 1 -- nvars in
            let* sign = bool in
            return (if sign then v else -v)))
    in
    return (nvars, clauses))

let qcheck_vs_brute_force =
  QCheck.Test.make ~name:"solver agrees with brute force" ~count:300
    (QCheck.make gen_instance)
    (fun (nvars, clauses) ->
      let s, r = solve_clauses nvars clauses in
      match r with
      | Solver.Sat ->
          brute_force nvars clauses
          && List.for_all
               (List.exists (fun l ->
                    if l > 0 then Solver.model_value s l
                    else not (Solver.model_value s (-l))))
               clauses
      | Solver.Unsat -> not (brute_force nvars clauses)
      | Solver.Unknown -> false)

(* --- incremental use (solve / add_clause / solve) --- *)

let add_clause_after_solve () =
  (* clause addition between solves backtracks to the root first, so
     the strengthened instance answers correctly *)
  let s = Solver.create 0 in
  let a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ a; b ];
  check_bool "sat first" true (is_sat (Solver.solve s));
  Solver.add_clause s [ -a ];
  check_bool "still sat" true (is_sat (Solver.solve s));
  check_bool "b forced" true (Solver.model_value s b);
  Solver.add_clause s [ -b ];
  check_bool "now unsat" true (is_unsat (Solver.solve s))

let activation_literal_retires () =
  (* the convention documented on add_clause: a guarded query is posed
     under an assumption, retired with a unit, and never pollutes later
     queries *)
  let s = Solver.create 0 in
  let x = Solver.new_var s in
  Solver.add_clause s [ x ];
  let act = Solver.new_var s in
  Solver.add_clause s [ -act; -x ];
  (* under the activation literal the query -x contradicts x *)
  check_bool "guarded query unsat" true
    (is_unsat (Solver.solve ~assumptions:[ act ] s));
  Solver.add_clause s [ -act ];
  check_bool "retired: instance sat again" true (is_sat (Solver.solve s))

let solve_outcome_spends () =
  let s = Solver.create 0 in
  let vars = List.init 6 (fun _ -> Solver.new_var s) in
  List.iter (fun v -> Solver.add_clause s [ v ]) vars;
  let o1 = Solver.solve_outcome s in
  check_bool "sat" true (is_sat o1.Solver.result);
  let o2 = Solver.solve_outcome s in
  check_bool "re-solve sat" true (is_sat o2.Solver.result);
  (* spent carries per-call deltas, not lifetime totals: a repeat solve
     of an already-satisfied instance spends no conflicts *)
  Alcotest.(check int) "no conflicts re-spent" 0 o2.Solver.spent.Solver.conflicts;
  check_bool "lifetime >= per-call" true
    ((Solver.stats s).Solver.propagations >= o2.Solver.spent.Solver.propagations)

let suite =
  [
    Alcotest.test_case "trivial sat" `Quick trivial_sat;
    Alcotest.test_case "trivial unsat" `Quick trivial_unsat;
    Alcotest.test_case "empty clause" `Quick empty_clause_unsat;
    Alcotest.test_case "no clauses" `Quick no_clauses_sat;
    Alcotest.test_case "model satisfies" `Quick model_satisfies;
    Alcotest.test_case "pigeonhole unsat" `Quick pigeonhole_unsat;
    Alcotest.test_case "pigeonhole sat" `Quick pigeonhole_sat;
    Alcotest.test_case "assumptions" `Quick assumptions_work;
    Alcotest.test_case "conflict budget" `Quick conflict_budget;
    Alcotest.test_case "new_var growth" `Quick new_var_growth;
    Alcotest.test_case "add_clause after solve" `Quick add_clause_after_solve;
    Alcotest.test_case "activation literal retires" `Quick
      activation_literal_retires;
    Alcotest.test_case "solve_outcome spends" `Quick solve_outcome_spends;
    Alcotest.test_case "unit propagation chain" `Quick unit_propagation_chain;
    Alcotest.test_case "solver reusable across solves" `Quick
      solver_reusable_across_solves;
    Alcotest.test_case "tseitin truth tables" `Quick tseitin_truth_tables;
    Alcotest.test_case "tseitin mux" `Quick tseitin_mux;
    Alcotest.test_case "tseitin full adder" `Quick tseitin_full_adder;
    Alcotest.test_case "tseitin constant folding" `Quick
      tseitin_constant_folding;
    Alcotest.test_case "dimacs roundtrip" `Quick dimacs_roundtrip;
    Alcotest.test_case "dimacs comments" `Quick dimacs_parse_comments;
    QCheck_alcotest.to_alcotest qcheck_vs_brute_force;
  ]
