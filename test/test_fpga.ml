(* Tests for the FPGA device and context-placement models. *)

module Sim = Symbad_sim
module Tlm = Symbad_tlm
open Symbad_fpga

let check = Alcotest.(check int)

let r name area = Resource.algorithm ~area name

let context_area_and_lookup () =
  let c = Context.make "c1" [ r "dist" 900; r "regs" 100 ] in
  check "area" 1000 (Context.area c);
  Alcotest.(check bool) "provides dist" true (Context.provides c "dist");
  Alcotest.(check bool) "not provides root" false (Context.provides c "root")

let context_bitstream_size () =
  let c = Context.make "c1" [ r "dist" 100 ] in
  check "default sizing" (512 + 800) (Context.bitstream_bytes c);
  check "custom sizing" (64 + 200)
    (Context.bitstream_bytes ~header_bytes:64 ~bytes_per_area:2 c)

let context_rejects_duplicates () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Context.make "c" [ r "x" 1; r "x" 2 ]);
       false
     with Invalid_argument _ -> true)

let fpga_rejects_oversized_context () =
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Fpga.create ~capacity:100 ~contexts:[ Context.make "c" [ r "big" 500 ] ]
            "f");
       false
     with Invalid_argument _ -> true)

let fpga_reconfigure_and_require () =
  let k = Sim.Kernel.create () in
  let bus = Tlm.Bus.create "bus" in
  let f =
    Fpga.create
      ~contexts:
        [ Context.make "c1" [ r "dist" 100 ]; Context.make "c2" [ r "root" 80 ] ]
      "fpga"
  in
  let failures = ref 0 in
  Sim.Kernel.spawn k (fun () ->
      (* calling before any load must fail *)
      (try Fpga.require f "dist" with Fpga.Inconsistent _ -> incr failures);
      Fpga.reconfigure f ~bus ~master:"cpu" "c1";
      Fpga.require f "dist";
      (* same context: no new reconfiguration *)
      Fpga.reconfigure f ~bus ~master:"cpu" "c1";
      (try Fpga.require f "root" with Fpga.Inconsistent _ -> incr failures);
      Fpga.reconfigure f ~bus ~master:"cpu" "c2";
      Fpga.require f "root");
  Sim.Kernel.run k;
  check "two consistency failures" 2 !failures;
  let s = Fpga.stats f in
  check "reconfigurations" 2 s.Fpga.reconfigurations;
  check "calls" 4 s.Fpga.resource_calls;
  Alcotest.(check bool) "time spent reconfiguring" true (s.Fpga.reconfig_ns > 0);
  (* bitstream bytes match the two downloaded contexts *)
  check "bitstream bytes"
    (Context.bitstream_bytes (Fpga.find_context f "c1")
    + Context.bitstream_bytes (Fpga.find_context f "c2"))
    s.Fpga.bitstream_bytes

let fpga_reconfig_takes_time () =
  let k = Sim.Kernel.create () in
  let bus = Tlm.Bus.create "bus" in
  let f =
    Fpga.create ~program_ns_per_byte:2
      ~contexts:[ Context.make "c1" [ r "x" 10 ] ]
      "fpga"
  in
  let at = ref 0 in
  Sim.Kernel.spawn k (fun () ->
      Fpga.reconfigure f ~bus ~master:"cpu" "c1";
      at := Sim.Time.to_ns (Sim.Process.now ()));
  Sim.Kernel.run k;
  let bytes = Context.bitstream_bytes (Fpga.find_context f "c1") in
  (* the download happens in 8-byte bursts, each separately arbitrated *)
  let rec burst_ns remaining acc =
    if remaining <= 0 then acc
    else
      let chunk = min 8 remaining in
      burst_ns (remaining - chunk)
        (acc + Sim.Time.to_ns (Tlm.Bus.transfer_time bus chunk))
  in
  check "download + programming" (burst_ns bytes 0 + (2 * bytes)) !at

(* --- Placement --- *)

let placement_evaluate () =
  let resources = [ r "a" 10; r "b" 10 ] in
  let together = [ resources ] in
  let split = [ [ r "a" 10 ]; [ r "b" 10 ] ] in
  let calls = [ "a"; "b"; "a"; "b" ] in
  let n_together, _ = Placement.evaluate ~calls together in
  let n_split, _ = Placement.evaluate ~calls split in
  check "together loads once" 1 n_together;
  check "split thrashes" 4 n_split

let placement_feasible_partitions () =
  let resources = [ r "a" 10; r "b" 10; r "c" 10 ] in
  (* all partitions of 3 elements into <= 3 groups: Bell(3) = 5 *)
  check "bell number" 5
    (List.length
       (Placement.feasible_partitions ~capacity:100 ~max_contexts:3 resources));
  (* capacity forces singletons *)
  check "capacity-limited" 1
    (List.length
       (Placement.feasible_partitions ~capacity:10 ~max_contexts:3 resources));
  (* no empty groups are ever generated *)
  List.iter
    (fun p -> Alcotest.(check bool) "non-empty groups" true
        (List.for_all (fun g -> g <> []) p))
    (Placement.feasible_partitions ~capacity:100 ~max_contexts:3 resources)

let placement_best_partition () =
  let resources = [ r "a" 10; r "b" 10 ] in
  let calls = [ "a"; "b"; "a"; "b"; "a" ] in
  (match Placement.best_partition ~capacity:100 ~max_contexts:2 ~calls resources with
  | Some best -> check "alternating calls: one context" 1
      best.Placement.reconfigurations
  | None -> Alcotest.fail "expected a partition");
  match Placement.best_partition ~capacity:10 ~max_contexts:2 ~calls resources with
  | Some best ->
      check "forced split: thrash" 5 best.Placement.reconfigurations
  | None -> Alcotest.fail "expected a partition"

let placement_sweep_sorted () =
  let resources = [ r "a" 10; r "b" 10; r "c" 5 ] in
  let calls = [ "a"; "b"; "c"; "a"; "b"; "c" ] in
  let sweep = Placement.sweep ~capacity:100 ~max_contexts:3 ~calls resources in
  let costs = List.map (fun e -> e.Placement.reconfigurations) sweep in
  Alcotest.(check (list int)) "sorted ascending" (List.sort compare costs) costs

let greedy_matches_exhaustive_small () =
  let resources = [ r "a" 10; r "b" 10; r "c" 10 ] in
  let calls = [ "a"; "b"; "a"; "b"; "c"; "c"; "a"; "b" ] in
  match
    ( Placement.greedy_partition ~capacity:25 ~max_contexts:2 ~calls resources,
      Placement.best_partition ~capacity:25 ~max_contexts:2 ~calls resources )
  with
  | Some greedy, Some best ->
      let n_greedy, _ = Placement.evaluate ~calls greedy in
      check "greedy optimal here" best.Placement.reconfigurations n_greedy
  | _ -> Alcotest.fail "both must find a partition"

let greedy_scales_and_is_feasible () =
  let resources =
    List.init 12 (fun i -> r (Printf.sprintf "m%d" i) (5 + i))
  in
  let calls =
    List.concat
      (List.init 40 (fun i ->
           [ Printf.sprintf "m%d" (i mod 12); Printf.sprintf "m%d" ((i + 3) mod 12) ]))
  in
  match Placement.greedy_partition ~capacity:45 ~max_contexts:4 ~calls resources with
  | Some p ->
      Alcotest.(check bool) "group count" true (List.length p <= 4);
      List.iter
        (fun g ->
          Alcotest.(check bool) "fits" true
            (List.fold_left (fun s x -> s + Resource.area x) 0 g <= 45))
        p;
      (* every resource placed exactly once *)
      check "all placed" 12 (List.length (List.concat p))
  | None -> Alcotest.fail "feasible partition exists"

let greedy_rejects_oversized_resource () =
  Alcotest.(check bool) "none" true
    (Placement.greedy_partition ~capacity:5 ~max_contexts:2 ~calls:[]
       [ r "big" 10 ]
    = None)

let qcheck_greedy_never_worse_than_singletons =
  QCheck.Test.make ~name:"greedy never worse than singleton partition"
    ~count:100
    QCheck.(list_of_size Gen.(2 -- 16) (int_bound 3))
    (fun calls_idx ->
      let names = [| "a"; "b"; "c"; "d" |] in
      let calls = List.map (fun i -> names.(i)) calls_idx in
      let resources = Array.to_list (Array.map (fun n -> r n 10) names) in
      let singletons = List.map (fun x -> [ x ]) resources in
      let n_single, _ = Placement.evaluate ~calls singletons in
      match
        Placement.greedy_partition ~capacity:20 ~max_contexts:4 ~calls resources
      with
      | Some p ->
          let n, _ = Placement.evaluate ~calls p in
          n <= n_single
      | None -> false)

let qcheck_placement_single_context_optimal =
  QCheck.Test.make ~name:"one context is optimal when everything fits"
    ~count:100
    QCheck.(list_of_size Gen.(1 -- 12) (int_bound 2))
    (fun calls_idx ->
      let names = [| "a"; "b"; "c" |] in
      let calls = List.map (fun i -> names.(i)) calls_idx in
      let resources = [ r "a" 5; r "b" 5; r "c" 5 ] in
      match
        Placement.best_partition ~capacity:100 ~max_contexts:3 ~calls resources
      with
      | Some best -> best.Placement.reconfigurations <= 1
      | None -> false)

(* --- Dependability: CRC re-download, scrubbing, stuck resources --- *)

let two_ctx_fpga () =
  Fpga.create
    ~contexts:
      [ Context.make "c1" [ r "dist" 100 ]; Context.make "c2" [ r "root" 80 ] ]
    "fpga"

let fpga_noop_counter () =
  let k = Sim.Kernel.create () in
  let bus = Tlm.Bus.create "bus" in
  let f = two_ctx_fpga () in
  Sim.Kernel.spawn k (fun () ->
      Fpga.reconfigure f ~bus ~master:"cpu" "c1";
      Fpga.reconfigure f ~bus ~master:"cpu" "c1";
      Fpga.reconfigure f ~bus ~master:"cpu" "c1");
  Sim.Kernel.run k;
  let s = Fpga.stats f in
  check "one real reconfiguration" 1 s.Fpga.reconfigurations;
  check "two no-op requests" 2 s.Fpga.noop_reconfigurations

let fpga_crc_redownload () =
  let k = Sim.Kernel.create () in
  let bus = Tlm.Bus.create "bus" in
  let f = two_ctx_fpga () in
  (* flip one bitstream word on the first download attempt only *)
  Fpga.inject_download_fault f
    (Some (fun ~attempt ~word -> if attempt = 0 && word = 3 then 1 else 0));
  Sim.Kernel.spawn k (fun () ->
      Fpga.reconfigure f ~bus ~master:"cpu" "c1";
      Fpga.require f "dist");
  Sim.Kernel.run k;
  let s = Fpga.stats f in
  check "crc mismatch detected" 1 s.Fpga.crc_mismatches;
  check "one re-download" 1 s.Fpga.retried_downloads;
  check "no failed downloads" 0 s.Fpga.failed_downloads;
  check "context up" 1 s.Fpga.reconfigurations

let fpga_download_gives_up () =
  let k = Sim.Kernel.create () in
  let bus = Tlm.Bus.create "bus" in
  let f = two_ctx_fpga () in
  (* persistent corruption: every attempt flips a word *)
  Fpga.inject_download_fault f (Some (fun ~attempt:_ ~word:_ -> 1));
  let attempts = ref 0 in
  Sim.Kernel.spawn k (fun () ->
      try Fpga.reconfigure f ~bus ~master:"cpu" "c1"
      with Fpga.Download_failed { attempts = a; _ } -> attempts := a);
  Sim.Kernel.run k;
  check "gave up after max_redownloads + 1 attempts" 3 !attempts;
  let s = Fpga.stats f in
  check "failed download counted" 1 s.Fpga.failed_downloads;
  check "nothing loaded" 0 s.Fpga.reconfigurations

let fpga_scrub_reloads_upset () =
  let k = Sim.Kernel.create () in
  let bus = Tlm.Bus.create "bus" in
  let f = two_ctx_fpga () in
  Sim.Kernel.spawn k (fun () ->
      Alcotest.(check bool) "scrub of empty fabric" false
        (Fpga.scrub f ~bus ~master:"scrubber");
      Fpga.reconfigure f ~bus ~master:"cpu" "c1";
      Alcotest.(check bool) "clean scrub" false
        (Fpga.scrub f ~bus ~master:"scrubber");
      Alcotest.(check bool) "upset lands" true (Fpga.upset_loaded f);
      Alcotest.(check bool) "corrupt" true (Fpga.loaded_corrupted f);
      Alcotest.(check bool) "scrub repairs" true
        (Fpga.scrub f ~bus ~master:"scrubber");
      Alcotest.(check bool) "repaired" false (Fpga.loaded_corrupted f));
  Sim.Kernel.run k;
  let s = Fpga.stats f in
  check "scrubs" 3 s.Fpga.scrubs;
  check "scrub reloads" 1 s.Fpga.scrub_reloads

let fpga_verify_previous_on_switch () =
  let k = Sim.Kernel.create () in
  let bus = Tlm.Bus.create "bus" in
  let f = two_ctx_fpga () in
  Sim.Kernel.spawn k (fun () ->
      Fpga.reconfigure f ~bus ~master:"cpu" "c1";
      ignore (Fpga.upset_loaded f);
      (* readback-on-context-switch observes the upset before erasing it *)
      Fpga.reconfigure ~verify_previous:true f ~bus ~master:"cpu" "c2";
      Alcotest.(check bool) "clean after switch" false
        (Fpga.loaded_corrupted f);
      (* a corrupted context that is re-requested is repaired in place *)
      ignore (Fpga.upset_loaded f);
      Fpga.reconfigure ~verify_previous:true f ~bus ~master:"cpu" "c2";
      Alcotest.(check bool) "repaired in place" false
        (Fpga.loaded_corrupted f));
  Sim.Kernel.run k;
  let s = Fpga.stats f in
  check "both upsets observed" 2 s.Fpga.scrub_reloads;
  check "in-place repair is not a context switch" 2 s.Fpga.reconfigurations;
  check "no silent noop" 0 s.Fpga.noop_reconfigurations

(* satellite regression: an upset in a context that is NOT active is
   repaired by a targeted scrub of that context's resource area, and the
   active context keeps running undisturbed *)
let fpga_scrub_repairs_inactive_context () =
  let k = Sim.Kernel.create () in
  let bus = Tlm.Bus.create "bus" in
  let f = two_ctx_fpga () in
  Sim.Kernel.spawn k (fun () ->
      Fpga.reconfigure f ~bus ~master:"cpu" "c1";
      Fpga.reconfigure f ~bus ~master:"cpu" "c2";
      (* c2 is active; the SEU lands in c1's resident frames *)
      Alcotest.(check bool) "upset lands in inactive c1" true
        (Fpga.upset_context f "c1");
      Alcotest.(check bool) "active context clean" false
        (Fpga.loaded_corrupted f);
      Alcotest.(check bool) "c1 flagged" true
        (Fpga.context_corrupted f (Fpga.find_context f "c1"));
      let reconfigs_before = (Fpga.stats f).Fpga.reconfigurations in
      Alcotest.(check bool) "targeted scrub repairs c1" true
        (Fpga.scrub ~context:"c1" f ~bus ~master:"scrubber");
      Alcotest.(check bool) "c1 repaired" false
        (Fpga.context_corrupted f (Fpga.find_context f "c1"));
      (* the repair never touched the active context *)
      (match Fpga.loaded f with
      | Some c -> Alcotest.(check string) "c2 still active" "c2" (Context.name c)
      | None -> Alcotest.fail "active context lost");
      check "no context switch" reconfigs_before
        (Fpga.stats f).Fpga.reconfigurations;
      Alcotest.(check bool) "active context still clean" false
        (Fpga.loaded_corrupted f));
  Sim.Kernel.run k;
  check "repair counted as a scrub reload" 1 (Fpga.stats f).Fpga.scrub_reloads

let tmr_fpga () =
  Fpga.create ~capacity:600 ~copies:3
    ~contexts:
      [ Context.make "c1" [ r "dist" 100 ]; Context.make "c2" [ r "root" 80 ] ]
    "fpga"

let fpga_tmr_create_validates () =
  Alcotest.(check bool) "copies=2 rejected" true
    (try
       ignore
         (Fpga.create ~copies:2 ~contexts:[ Context.make "c" [ r "a" 10 ] ] "f");
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "3 copies must fit" true
    (try
       ignore
         (Fpga.create ~capacity:250 ~copies:3
            ~contexts:[ Context.make "c" [ r "a" 100 ] ]
            "f");
       false
     with Invalid_argument _ -> true);
  check "redundancy degree" 3 (Fpga.copies (tmr_fpga ()))

let fpga_tmr_vote_masks_and_repairs () =
  let k = Sim.Kernel.create () in
  let bus = Tlm.Bus.create "bus" in
  let f = tmr_fpga () in
  Sim.Kernel.spawn k (fun () ->
      Fpga.reconfigure f ~bus ~master:"cpu" "c1";
      Alcotest.(check bool) "clean vote" true (Fpga.vote_and_repair f = `Clean);
      Alcotest.(check bool) "upset copy 1" true (Fpga.upset_loaded ~copy:1 f);
      Alcotest.(check bool) "corrupt until voted" true (Fpga.loaded_corrupted f);
      let t0 = Sim.Time.to_ns (Sim.Process.now ()) in
      Alcotest.(check bool) "lone dissenter masked" true
        (Fpga.vote_and_repair f = `Masked);
      (* the targeted repair rides the internal configuration port,
         overlapping voted operation: zero simulated time *)
      check "repair takes no simulated time" t0
        (Sim.Time.to_ns (Sim.Process.now ()));
      Alcotest.(check bool) "repaired" false (Fpga.loaded_corrupted f);
      Alcotest.(check bool) "clean again" true (Fpga.vote_and_repair f = `Clean);
      (* two corrupted copies defeat the vote *)
      ignore (Fpga.upset_loaded ~copy:0 f);
      ignore (Fpga.upset_loaded ~copy:2 f);
      Alcotest.(check bool) "double upset defeats the vote" true
        (Fpga.vote_and_repair f = `Corrupt));
  Sim.Kernel.run k;
  let s = Fpga.stats f in
  check "one disagreement" 1 s.Fpga.voter_disagreements;
  check "one targeted repair" 1 s.Fpga.targeted_repairs;
  let bytes = Context.bitstream_bytes (Fpga.find_context f "c1") in
  check "one copy's frames rewritten" bytes s.Fpga.repair_bytes;
  check "all three copies consume area" 300 s.Fpga.area_loaded

let fpga_simplex_vote_never_masks () =
  let k = Sim.Kernel.create () in
  let bus = Tlm.Bus.create "bus" in
  let f = two_ctx_fpga () in
  Sim.Kernel.spawn k (fun () ->
      Fpga.reconfigure f ~bus ~master:"cpu" "c1";
      Alcotest.(check bool) "clean" true (Fpga.vote_and_repair f = `Clean);
      ignore (Fpga.upset_loaded f);
      Alcotest.(check bool) "simplex upset is corrupt, not masked" true
        (Fpga.vote_and_repair f = `Corrupt));
  Sim.Kernel.run k;
  check "no voter on a simplex fabric" 0 (Fpga.stats f).Fpga.voter_disagreements

(* the detection bound the CRC'd download and readback scrub stand on:
   a single flipped bit anywhere in the word stream always moves the
   CRC-32 (linearity: the remainder of a one-bit difference is never 0) *)
let qcheck_crc_detects_any_single_bit_flip =
  QCheck.Test.make ~name:"any single-bit flip changes the CRC" ~count:200
    QCheck.(
      triple
        (list_of_size Gen.(1 -- 16) (map (fun w -> w land 0xFFFF_FFFF) int))
        small_nat (int_bound 31))
    (fun (words, word_idx, bit) ->
      let words = Array.of_list words in
      let n = Array.length words in
      let idx = word_idx mod n in
      let clean = Crc.words (fun i -> words.(i)) n in
      let flipped =
        Crc.words
          (fun i -> if i = idx then words.(i) lxor (1 lsl bit) else words.(i))
          n
      in
      clean <> flipped)

let fpga_stuck_resource () =
  let f = two_ctx_fpga () in
  Alcotest.(check bool) "responding" true (Fpga.responding f "dist");
  Fpga.set_stuck f "dist";
  Alcotest.(check bool) "wedged" false (Fpga.responding f "dist");
  Alcotest.(check bool) "others unaffected" true (Fpga.responding f "root");
  Fpga.clear_stuck f;
  Alcotest.(check bool) "released" true (Fpga.responding f "dist");
  Alcotest.(check bool) "healthy" true (Fpga.is_healthy f);
  Fpga.mark_unhealthy f;
  Alcotest.(check bool) "degraded" false (Fpga.is_healthy f)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let fpga_pp_stats_fields () =
  let f = two_ctx_fpga () in
  let s = Format.asprintf "%a" Fpga.pp_stats (Fpga.stats f) in
  List.iter
    (fun field ->
      Alcotest.(check bool)
        (Printf.sprintf "pp_stats mentions %s" field)
        true (contains_sub s field))
    [
      "reconfigs="; "noop="; "bitstream="; "reconfig_time="; "calls=";
      "crc_mismatches="; "retried_dl="; "failed_dl="; "scrubs=";
      "scrub_reloads="; "watchdog="; "copies="; "disagreements=";
      "targeted="; "repair="; "area=";
    ]

let suite =
  [
    Alcotest.test_case "context area and lookup" `Quick context_area_and_lookup;
    Alcotest.test_case "context bitstream size" `Quick context_bitstream_size;
    Alcotest.test_case "context rejects duplicates" `Quick
      context_rejects_duplicates;
    Alcotest.test_case "fpga rejects oversized context" `Quick
      fpga_rejects_oversized_context;
    Alcotest.test_case "fpga reconfigure/require" `Quick
      fpga_reconfigure_and_require;
    Alcotest.test_case "fpga reconfiguration timing" `Quick
      fpga_reconfig_takes_time;
    Alcotest.test_case "fpga noop counter" `Quick fpga_noop_counter;
    Alcotest.test_case "fpga crc re-download" `Quick fpga_crc_redownload;
    Alcotest.test_case "fpga download gives up" `Quick fpga_download_gives_up;
    Alcotest.test_case "fpga scrub reloads upset" `Quick
      fpga_scrub_reloads_upset;
    Alcotest.test_case "fpga verify-previous on switch" `Quick
      fpga_verify_previous_on_switch;
    Alcotest.test_case "fpga scrub repairs inactive context" `Quick
      fpga_scrub_repairs_inactive_context;
    Alcotest.test_case "fpga tmr create validates" `Quick
      fpga_tmr_create_validates;
    Alcotest.test_case "fpga tmr vote masks and repairs" `Quick
      fpga_tmr_vote_masks_and_repairs;
    Alcotest.test_case "fpga simplex vote never masks" `Quick
      fpga_simplex_vote_never_masks;
    Alcotest.test_case "fpga stuck resource" `Quick fpga_stuck_resource;
    Alcotest.test_case "fpga pp_stats fields" `Quick fpga_pp_stats_fields;
    Alcotest.test_case "placement evaluate" `Quick placement_evaluate;
    Alcotest.test_case "placement feasible partitions" `Quick
      placement_feasible_partitions;
    Alcotest.test_case "placement best partition" `Quick placement_best_partition;
    Alcotest.test_case "placement sweep sorted" `Quick placement_sweep_sorted;
    Alcotest.test_case "greedy matches exhaustive (small)" `Quick
      greedy_matches_exhaustive_small;
    Alcotest.test_case "greedy scales and is feasible" `Quick
      greedy_scales_and_is_feasible;
    Alcotest.test_case "greedy rejects oversized resource" `Quick
      greedy_rejects_oversized_resource;
    QCheck_alcotest.to_alcotest qcheck_greedy_never_worse_than_singletons;
    QCheck_alcotest.to_alcotest qcheck_placement_single_context_optimal;
    QCheck_alcotest.to_alcotest qcheck_crc_detects_any_single_bit_flip;
  ]
