(* Tests for the transaction-level modelling library. *)

module Sim = Symbad_sim
open Symbad_tlm

let check = Alcotest.(check int)

(* --- Transactions & transfer cost model --- *)

let transfer_cost () =
  let b = Bus.create ~width_bytes:4 ~period_ns:10 ~arbitration_cycles:1
      ~setup_cycles:1 "bus" in
  (* 1 word: arb + setup + 1 beat = 3 cycles *)
  check "4 bytes" 3 (Bus.transfer_cycles b 4);
  check "5 bytes" 4 (Bus.transfer_cycles b 5);
  check "0 bytes" 2 (Bus.transfer_cycles b 0);
  check "time" 30 (Sim.Time.to_ns (Bus.transfer_time b 4))

let bus_serialises () =
  let k = Sim.Kernel.create () in
  let b = Bus.create "bus" in
  let done_at = ref [] in
  let master name =
    Sim.Kernel.spawn k ~name (fun () ->
        Bus.transfer b (Transaction.make ~master:name ~target:"mem"
            ~kind:Transaction.Write ~bytes:4);
        done_at := (name, Sim.Time.to_ns (Sim.Process.now ())) :: !done_at)
  in
  master "m0";
  master "m1";
  Sim.Kernel.run k;
  (* each transfer takes 30ns; second master finishes at 60 *)
  Alcotest.(check (list (pair string int)))
    "serialised" [ ("m0", 30); ("m1", 60) ] (List.rev !done_at)

let bus_priority_grant () =
  let k = Sim.Kernel.create () in
  let b = Bus.create "bus" in
  let order = ref [] in
  (* occupy the bus, then two waiters with different priorities *)
  Sim.Kernel.spawn k ~name:"hog" (fun () ->
      Bus.transfer ~priority:5 b
        (Transaction.make ~master:"hog" ~target:"t" ~kind:Transaction.Write
           ~bytes:40));
  Sim.Kernel.spawn k ~name:"low" (fun () ->
      Sim.Process.wait (Sim.Time.ns 1);
      Bus.transfer ~priority:9 b
        (Transaction.make ~master:"low" ~target:"t" ~kind:Transaction.Write
           ~bytes:4);
      order := "low" :: !order);
  Sim.Kernel.spawn k ~name:"high" (fun () ->
      Sim.Process.wait (Sim.Time.ns 2);
      Bus.transfer ~priority:1 b
        (Transaction.make ~master:"high" ~target:"t" ~kind:Transaction.Write
           ~bytes:4);
      order := "high" :: !order);
  Sim.Kernel.run k;
  Alcotest.(check (list string))
    "high priority granted first" [ "high"; "low" ] (List.rev !order)

let bus_report_accounts () =
  let k = Sim.Kernel.create () in
  let b = Bus.create "bus" in
  Sim.Kernel.spawn k (fun () ->
      Bus.transfer b
        (Transaction.make ~master:"cpu" ~target:"fpga"
           ~kind:Transaction.Bitstream ~bytes:100);
      Bus.transfer b
        (Transaction.make ~master:"cpu" ~target:"mem" ~kind:Transaction.Read
           ~bytes:8));
  Sim.Kernel.run k;
  let r = Bus.report b in
  check "transactions" 2 r.Bus.transactions;
  check "bitstream bytes" 100 r.Bus.bitstream_bytes;
  check "data bytes" 8 r.Bus.data_bytes;
  Alcotest.(check bool) "utilisation positive" true (r.Bus.utilisation > 0.)

let bus_fifo_within_priority () =
  let k = Sim.Kernel.create () in
  let b = Bus.create "bus" in
  let order = ref [] in
  Sim.Kernel.spawn k ~name:"hog" (fun () ->
      Bus.transfer b
        (Transaction.make ~master:"hog" ~target:"t" ~kind:Transaction.Write
           ~bytes:40));
  List.iteri
    (fun i name ->
      Sim.Kernel.spawn k ~name (fun () ->
          Sim.Process.wait (Sim.Time.ns (i + 1));
          Bus.transfer ~priority:5 b
            (Transaction.make ~master:name ~target:"t" ~kind:Transaction.Write
               ~bytes:4);
          order := name :: !order))
    [ "w0"; "w1"; "w2" ];
  Sim.Kernel.run k;
  Alcotest.(check (list string)) "request order preserved"
    [ "w0"; "w1"; "w2" ] (List.rev !order)

let bus_wait_accounted () =
  let k = Sim.Kernel.create () in
  let b = Bus.create "bus" in
  Sim.Kernel.spawn k (fun () ->
      Bus.transfer b
        (Transaction.make ~master:"first" ~target:"t" ~kind:Transaction.Write
           ~bytes:400));
  Sim.Kernel.spawn k (fun () ->
      Sim.Process.wait (Sim.Time.ns 1);
      Bus.transfer b
        (Transaction.make ~master:"second" ~target:"t" ~kind:Transaction.Write
           ~bytes:4));
  Sim.Kernel.run k;
  let r = Bus.report b in
  let second = List.assoc "second" r.Bus.per_master in
  Alcotest.(check bool) "waited for the grant" true (second.Bus.wait_ns > 0)

(* --- Memory --- *)

let memory_poke_peek () =
  let m = Memory.create ~size:64 "mem" in
  Memory.poke m ~addr:10 (Bytes.of_string "hello");
  Alcotest.(check string) "peek" "hello"
    (Bytes.to_string (Memory.peek m ~addr:10 ~len:5))

let memory_bounds () =
  let m = Memory.create ~size:16 "mem" in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Memory.peek m ~addr:10 ~len:10);
       false
     with Invalid_argument _ -> true)

let memory_bus_read_latency () =
  let k = Sim.Kernel.create () in
  let b = Bus.create "bus" in
  let m = Memory.create ~access_cycles:2 ~size:64 "mem" in
  Memory.poke m ~addr:0 (Bytes.of_string "abcd");
  let got = ref "" and at = ref 0 in
  Sim.Kernel.spawn k (fun () ->
      got := Bytes.to_string (Memory.read m ~bus:b ~master:"cpu" ~addr:0 ~len:4);
      at := Sim.Time.to_ns (Sim.Process.now ()));
  Sim.Kernel.run k;
  Alcotest.(check string) "data" "abcd" !got;
  (* 3 bus cycles (30ns) + 2 access cycles (20ns) *)
  check "latency" 50 !at;
  Alcotest.(check (pair int int)) "accesses" (1, 0) (Memory.accesses m)

let memory_bus_write () =
  let k = Sim.Kernel.create () in
  let b = Bus.create "bus" in
  let m = Memory.create ~size:64 "mem" in
  Sim.Kernel.spawn k (fun () ->
      Memory.write m ~bus:b ~master:"cpu" ~addr:8 (Bytes.of_string "xy"));
  Sim.Kernel.run k;
  Alcotest.(check string) "stored" "xy"
    (Bytes.to_string (Memory.peek m ~addr:8 ~len:2))

(* --- Annotation --- *)

let annotation_targets () =
  let a = Annotation.default in
  check "sw" 120 (Annotation.cycles a ~target:Annotation.Sw ~weight:10);
  check "hw" 10 (Annotation.cycles a ~target:Annotation.Hw ~weight:10);
  check "fpga" 20 (Annotation.cycles a ~target:Annotation.Fpga ~weight:10)

let annotation_rejects_bad () =
  Alcotest.(check bool) "negative weight" true
    (try
       ignore
         (Annotation.cycles Annotation.default ~target:Annotation.Sw
            ~weight:(-1));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "zero factor" true
    (try
       ignore (Annotation.make ~sw_cycles_per_unit:0 ());
       false
     with Invalid_argument _ -> true)

let profile_ranking () =
  let p = Annotation.Profile.create () in
  Annotation.Profile.record p ~task:"small" ~units:10;
  Annotation.Profile.record p ~task:"big" ~units:500;
  Annotation.Profile.record p ~task:"big" ~units:500;
  Annotation.Profile.record p ~task:"mid" ~units:100;
  Alcotest.(check (list (pair string int)))
    "ranking" [ ("big", 1000); ("mid", 100); ("small", 10) ]
    (Annotation.Profile.ranking p);
  check "units per firing" 500 (Annotation.Profile.units_per_firing p "big");
  check "unknown task" 0 (Annotation.Profile.units_per_firing p "nope")

(* --- Cpu --- *)

let cpu_accounts_cycles () =
  let k = Sim.Kernel.create () in
  let c = Cpu.create ~period_ns:20 "arm" in
  Sim.Kernel.spawn k (fun () ->
      Cpu.execute c ~cycles:100;
      Cpu.execute c ~cycles:50);
  Sim.Kernel.run k;
  let s = Cpu.stats c in
  check "cycles" 150 s.Cpu.executed_cycles;
  check "busy" 3000 s.Cpu.busy_ns;
  check "firings" 2 s.Cpu.firings;
  check "sim time" 3000 (Sim.Time.to_ns (Sim.Kernel.stats k).Sim.Kernel.final_time)

(* --- Integration: the face database in the nonvolatile memory model --- *)

let database_in_flash_memory () =
  (* serialise the enrolled database into the bus-attached memory (the
     flash device of the case study) and read it back over the bus *)
  let db = Symbad_image.Pipeline.enroll ~size:32 ~identities:4 () in
  let image = Symbad_image.Database.serialize db in
  let m = Memory.create ~size:(Bytes.length image + 16) "flash" in
  Memory.poke m ~addr:8 image;
  let k = Sim.Kernel.create () in
  let b = Bus.create "bus" in
  let roundtrip = ref None in
  Sim.Kernel.spawn k (fun () ->
      let bytes =
        Memory.read m ~bus:b ~master:"cpu" ~addr:8 ~len:(Bytes.length image)
      in
      roundtrip := Some (Symbad_image.Database.deserialize bytes));
  Sim.Kernel.run k;
  (match !roundtrip with
  | Some db' ->
      Alcotest.(check bool) "db roundtrip over the bus" true
        (Symbad_image.Database.equal db db')
  | None -> Alcotest.fail "read never completed");
  (* the transfer size shows up in the bus report *)
  let r = Bus.report b in
  check "bytes over the bus" (Bytes.length image) r.Bus.data_bytes

(* --- Fault injection: ERROR/RETRY responses, bounded retry --- *)

let bus_retry_then_ok () =
  let k = Sim.Kernel.create () in
  let b = Bus.create "bus" in
  (* the slave answers the first two attempts of the first transaction
     with RETRY, then OKAY *)
  Bus.inject_faults b
    (Some (fun _txn ~attempt -> if attempt < 2 then Bus.Retry else Bus.Okay));
  Sim.Kernel.spawn k (fun () ->
      Bus.transfer b
        (Transaction.make ~master:"m" ~target:"mem" ~kind:Transaction.Write
           ~bytes:4));
  Sim.Kernel.run k;
  let r = Bus.report b in
  check "retry responses" 2 r.Bus.retry_responses;
  check "error responses" 0 r.Bus.error_responses;
  check "failed transfers" 0 r.Bus.failed_transfers;
  (* only the successful attempt is accounted as a transaction *)
  check "transactions" 1 r.Bus.transactions;
  check "bytes" 4 r.Bus.data_bytes

let bus_error_exhausts_retries () =
  let k = Sim.Kernel.create () in
  let b = Bus.create ~max_retries:1 "bus" in
  Bus.inject_faults b (Some (fun _txn ~attempt:_ -> Bus.Error));
  let failed = ref None in
  Sim.Kernel.spawn k (fun () ->
      try
        Bus.transfer b
          (Transaction.make ~master:"m" ~target:"mem" ~kind:Transaction.Write
             ~bytes:4)
      with Bus.Transfer_failed { attempts; _ } -> failed := Some attempts);
  Sim.Kernel.run k;
  Alcotest.(check (option int)) "gave up after retries" (Some 2) !failed;
  let r = Bus.report b in
  check "error responses" 2 r.Bus.error_responses;
  check "failed transfers" 1 r.Bus.failed_transfers;
  check "no successful transactions" 0 r.Bus.transactions

let bus_exhausted_governor_fails_fast () =
  let module Gov = Symbad_gov.Gov in
  let module Budget = Symbad_gov.Budget in
  let k = Sim.Kernel.create () in
  let b = Bus.create "bus" in
  Bus.govern b
    (Gov.create ~label:"bus" (Budget.make ~conflicts:0 ~patterns:0 ()));
  Bus.inject_faults b (Some (fun _txn ~attempt:_ -> Bus.Retry));
  let failed = ref None in
  Sim.Kernel.spawn k (fun () ->
      try
        Bus.transfer b
          (Transaction.make ~master:"m" ~target:"mem" ~kind:Transaction.Write
             ~bytes:4)
      with Bus.Transfer_failed { attempts; _ } -> failed := Some attempts);
  Sim.Kernel.run k;
  (* no budget for retries: the first faulted attempt is the last *)
  Alcotest.(check (option int)) "no retry without budget" (Some 1) !failed

let bus_retry_charges_governor () =
  let module Gov = Symbad_gov.Gov in
  let module Budget = Symbad_gov.Budget in
  let k = Sim.Kernel.create () in
  let b = Bus.create "bus" in
  let gov = Gov.create ~label:"bus" (Budget.make ~patterns:10 ()) in
  Bus.govern b gov;
  Bus.inject_faults b
    (Some (fun _txn ~attempt -> if attempt < 2 then Bus.Retry else Bus.Okay));
  Sim.Kernel.spawn k (fun () ->
      Bus.transfer b
        (Transaction.make ~master:"m" ~target:"mem" ~kind:Transaction.Write
           ~bytes:4));
  Sim.Kernel.run k;
  Alcotest.(check (option int))
    "two retries charged" (Some 8) (Gov.patterns_left gov)

let qcheck_transfer_monotone =
  QCheck.Test.make ~name:"bus transfer cost monotone in size" ~count:200
    QCheck.(pair (int_bound 4096) (int_bound 4096))
    (fun (a, b) ->
      let bus = Bus.create "bus" in
      let ca = Bus.transfer_cycles bus a and cb = Bus.transfer_cycles bus b in
      if a <= b then ca <= cb else ca >= cb)

(* --- SEC-DED ECC: the codec and the protected bus --- *)

let word_gen = QCheck.map (fun w -> w land 0xFFFF_FFFF) QCheck.int

let qcheck_ecc_roundtrip =
  QCheck.Test.make ~name:"ecc clean codeword decodes to the data" ~count:200
    word_gen
    (fun w -> Ecc.decode (Ecc.encode w) = Ecc.Ok w)

(* every one of the 39 possible single-bit flips is corrected, back to
   the exact data word and naming the exact flipped position *)
let qcheck_ecc_corrects_every_single_flip =
  QCheck.Test.make ~name:"ecc corrects every single-bit flip" ~count:100
    word_gen
    (fun w ->
      let cw = Ecc.encode w in
      List.for_all
        (fun bit ->
          Ecc.decode (cw lxor (1 lsl bit)) = Ecc.Corrected { word = w; bit })
        (List.init Ecc.code_bits Fun.id))

(* every one of the 39*38/2 double flips is detected and never
   miscorrected — the distance-4 guarantee the retry path stands on *)
let qcheck_ecc_detects_every_double_flip =
  QCheck.Test.make ~name:"ecc detects (never miscorrects) double flips"
    ~count:40 word_gen
    (fun w ->
      let cw = Ecc.encode w in
      List.for_all
        (fun i ->
          List.for_all
            (fun j ->
              i >= j
              || Ecc.decode (cw lxor (1 lsl i) lxor (1 lsl j))
                 = Ecc.Double_error)
            (List.init Ecc.code_bits Fun.id))
        (List.init Ecc.code_bits Fun.id))

let ecc_transfer_widening () =
  let plain = Bus.create ~width_bytes:4 ~period_ns:10 ~arbitration_cycles:1
      ~setup_cycles:1 "plain" in
  let ecc = Bus.create ~ecc:true ~width_bytes:4 ~period_ns:10
      ~arbitration_cycles:1 ~setup_cycles:1 "ecc" in
  Alcotest.(check bool) "ecc flag" true (Bus.ecc ecc);
  Alcotest.(check bool) "plain flag" false (Bus.ecc plain);
  (* 4 data bytes ride as ceil(4*39/32) = 5 coded bytes: 2 beats *)
  check "plain word" 3 (Bus.transfer_cycles plain 4);
  check "coded word" 4 (Bus.transfer_cycles ecc 4);
  (* 32 data bytes -> 39 coded bytes: 10 beats instead of 8 *)
  check "plain burst" 10 (Bus.transfer_cycles plain 32);
  check "coded burst" 12 (Bus.transfer_cycles ecc 32)

let write_txn =
  Transaction.make ~master:"m" ~target:"mem" ~kind:Transaction.Write ~bytes:4

let run_corrupted ~ecc ~flips =
  let k = Sim.Kernel.create () in
  let b = Bus.create ~ecc "bus" in
  Bus.inject_corruption b
    (Some (fun _txn ~attempt -> if attempt = 0 then flips else 0));
  Sim.Kernel.spawn k (fun () -> Bus.transfer b write_txn);
  Sim.Kernel.run k;
  Bus.report b

let bus_ecc_corrects_single () =
  let r = run_corrupted ~ecc:true ~flips:1 in
  check "corrected in place" 1 r.Bus.ecc_corrected;
  check "no double" 0 r.Bus.ecc_double_errors;
  (* the masking is free of the retry round-trip: no ERROR, no retry,
     the first attempt completes *)
  check "no error responses" 0 r.Bus.error_responses;
  check "no failed transfers" 0 r.Bus.failed_transfers;
  check "one transaction" 1 r.Bus.transactions

let bus_ecc_double_recovers_by_retry () =
  let r = run_corrupted ~ecc:true ~flips:2 in
  check "double detected" 1 r.Bus.ecc_double_errors;
  check "nothing miscorrected" 0 r.Bus.ecc_corrected;
  check "recovered by retry" 1 r.Bus.transactions;
  check "no failed transfers" 0 r.Bus.failed_transfers

let bus_unprotected_corruption_is_an_error () =
  let r = run_corrupted ~ecc:false ~flips:1 in
  check "surfaces as ERROR" 1 r.Bus.error_responses;
  check "no ecc counters" 0 (r.Bus.ecc_corrected + r.Bus.ecc_double_errors);
  check "recovered by retry" 1 r.Bus.transactions

let suite =
  [
    Alcotest.test_case "transfer cost model" `Quick transfer_cost;
    Alcotest.test_case "bus serialises masters" `Quick bus_serialises;
    Alcotest.test_case "bus priority arbitration" `Quick bus_priority_grant;
    Alcotest.test_case "bus report accounting" `Quick bus_report_accounts;
    Alcotest.test_case "bus FIFO within priority" `Quick
      bus_fifo_within_priority;
    Alcotest.test_case "bus wait accounting" `Quick bus_wait_accounted;
    Alcotest.test_case "bus retry then ok" `Quick bus_retry_then_ok;
    Alcotest.test_case "bus error exhausts retries" `Quick
      bus_error_exhausts_retries;
    Alcotest.test_case "bus exhausted governor fails fast" `Quick
      bus_exhausted_governor_fails_fast;
    Alcotest.test_case "bus retry charges governor" `Quick
      bus_retry_charges_governor;
    Alcotest.test_case "memory poke/peek" `Quick memory_poke_peek;
    Alcotest.test_case "memory bounds check" `Quick memory_bounds;
    Alcotest.test_case "memory bus read latency" `Quick memory_bus_read_latency;
    Alcotest.test_case "memory bus write" `Quick memory_bus_write;
    Alcotest.test_case "annotation per-target cost" `Quick annotation_targets;
    Alcotest.test_case "annotation input validation" `Quick
      annotation_rejects_bad;
    Alcotest.test_case "profile ranking" `Quick profile_ranking;
    Alcotest.test_case "cpu accounts cycles" `Quick cpu_accounts_cycles;
    Alcotest.test_case "database in flash memory over the bus" `Quick
      database_in_flash_memory;
    QCheck_alcotest.to_alcotest qcheck_transfer_monotone;
    QCheck_alcotest.to_alcotest qcheck_ecc_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_ecc_corrects_every_single_flip;
    QCheck_alcotest.to_alcotest qcheck_ecc_detects_every_double_flip;
    Alcotest.test_case "ecc transfer widening" `Quick ecc_transfer_widening;
    Alcotest.test_case "ecc bus corrects a single flip in place" `Quick
      bus_ecc_corrects_single;
    Alcotest.test_case "ecc bus recovers a double flip by retry" `Quick
      bus_ecc_double_recovers_by_retry;
    Alcotest.test_case "unprotected bus corruption is an ERROR" `Quick
      bus_unprotected_corruption_is_an_error;
  ]
