(* Tests for the discrete-event simulation kernel. *)

open Symbad_sim

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Time --- *)

let time_units () =
  check "us" 1_000 (Time.to_ns (Time.us 1));
  check "ms" 1_000_000 (Time.to_ns (Time.ms 1));
  check "s" 1_000_000_000 (Time.to_ns (Time.s 1));
  check "cycles" 250 (Time.to_ns (Time.of_cycles ~period_ns:25 10))

let time_arith () =
  check "add" 30 (Time.to_ns (Time.add (Time.ns 10) (Time.ns 20)));
  check "sub" 5 (Time.to_ns (Time.sub (Time.ns 15) (Time.ns 10)));
  check_bool "lt" true Time.(ns 3 < ns 4);
  check_bool "le eq" true Time.(ns 4 <= ns 4);
  Alcotest.(check string) "pp s" "2s" (Time.to_string (Time.s 2));
  Alcotest.(check string) "pp ms" "5ms" (Time.to_string (Time.ms 5));
  Alcotest.(check string) "pp mixed" "1001ns" (Time.to_string (Time.ns 1001))

(* --- Event queue --- *)

let event_queue_order () =
  let q = Event_queue.create ~dummy_payload:(-1) in
  List.iter (fun (t, p) -> Event_queue.push q (Time.ns t) p)
    [ (30, 3); (10, 1); (20, 2); (10, 11); (5, 0) ];
  let order = ref [] in
  let rec drain () =
    match Event_queue.pop q with
    | None -> ()
    | Some (_, p) ->
        order := p :: !order;
        drain ()
  in
  drain ();
  (* same-time events (10,1) and (10,11) keep insertion order *)
  Alcotest.(check (list int)) "pop order" [ 0; 1; 11; 2; 3 ] (List.rev !order)

let event_queue_growth () =
  let q = Event_queue.create ~dummy_payload:0 in
  for i = 999 downto 0 do
    Event_queue.push q (Time.ns i) i
  done;
  check "length" 1000 (Event_queue.length q);
  let last = ref (-1) in
  let rec drain () =
    match Event_queue.pop q with
    | None -> ()
    | Some (t, p) ->
        Alcotest.(check bool) "monotone" true (p > !last);
        check "time=payload" p (Time.to_ns t);
        last := p;
        drain ()
  in
  drain ();
  check_bool "empty" true (Event_queue.is_empty q)

(* --- Kernel & processes --- *)

let kernel_wait_order () =
  let k = Kernel.create () in
  let log = ref [] in
  Kernel.spawn k ~name:"a" (fun () ->
      Process.wait (Time.ns 20);
      log := ("a", Time.to_ns (Process.now ())) :: !log);
  Kernel.spawn k ~name:"b" (fun () ->
      Process.wait (Time.ns 10);
      log := ("b", Time.to_ns (Process.now ())) :: !log);
  Kernel.run k;
  Alcotest.(check (list (pair string int)))
    "order" [ ("b", 10); ("a", 20) ] (List.rev !log)

let kernel_run_until () =
  let k = Kernel.create () in
  let hits = ref 0 in
  Kernel.spawn k (fun () ->
      for _ = 1 to 10 do
        Process.wait (Time.ns 10);
        incr hits
      done);
  Kernel.run ~until:(Time.ns 35) k;
  check "hits before horizon" 3 !hits

let kernel_stop () =
  let k = Kernel.create () in
  let hits = ref 0 in
  Kernel.spawn k (fun () ->
      for _ = 1 to 100 do
        Process.wait (Time.ns 1);
        incr hits;
        if !hits = 5 then Kernel.stop (Process.kernel ())
      done);
  Kernel.run k;
  check "stopped at 5" 5 !hits

let kernel_nested_spawn () =
  let k = Kernel.create () in
  let result = ref 0 in
  Kernel.spawn k (fun () ->
      Process.wait (Time.ns 5);
      Process.spawn (fun () ->
          Process.wait (Time.ns 5);
          result := Time.to_ns (Process.now ())));
  Kernel.run k;
  check "child saw t=10" 10 !result;
  check "two processes" 2 (Kernel.stats k).Kernel.processes

let kernel_halt () =
  let k = Kernel.create () in
  let reached = ref false in
  Kernel.spawn k (fun () ->
      ignore (Process.halt ());
      reached := true);
  Kernel.run k;
  check_bool "statement after halt unreachable" false !reached

let kernel_schedule_direct () =
  let k = Kernel.create () in
  let log = ref [] in
  Kernel.schedule ~delay:(Time.ns 5) k (fun () -> log := 5 :: !log);
  Kernel.schedule_at k (Time.ns 2) (fun () -> log := 2 :: !log);
  Kernel.run k;
  Alcotest.(check (list int)) "order" [ 2; 5 ] (List.rev !log)

let kernel_same_time_fifo_order () =
  let k = Kernel.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Kernel.schedule_at k (Time.ns 10) (fun () -> log := i :: !log)
  done;
  Kernel.run k;
  Alcotest.(check (list int)) "insertion order" [ 1; 2; 3; 4; 5 ] (List.rev !log)

(* --- Fifo --- *)

let fifo_fifo_order () =
  let k = Kernel.create () in
  let f = Fifo.create "c" in
  let got = ref [] in
  Kernel.spawn k (fun () -> List.iter (Fifo.put f) [ 1; 2; 3 ]);
  Kernel.spawn k (fun () ->
      for _ = 1 to 3 do
        got := Fifo.get f :: !got
      done);
  Kernel.run k;
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !got)

let fifo_blocking_capacity () =
  let k = Kernel.create () in
  let f = Fifo.create ~capacity:1 "c" in
  let put_times = ref [] in
  Kernel.spawn k (fun () ->
      for i = 1 to 3 do
        Fifo.put f i;
        put_times := Time.to_ns (Process.now ()) :: !put_times
      done);
  Kernel.spawn k (fun () ->
      for _ = 1 to 3 do
        Process.wait (Time.ns 10);
        ignore (Fifo.get f)
      done);
  Kernel.run k;
  (* puts 2 and 3 wait for the consumer's gets at t=10 and t=20 *)
  Alcotest.(check (list int)) "put times" [ 0; 10; 20 ] (List.rev !put_times);
  let o = Fifo.occupancy f in
  check "puts" 3 o.Fifo.puts;
  check "gets" 3 o.Fifo.gets;
  check "max occupancy" 1 o.Fifo.max_occupancy

let fifo_try_get () =
  let k = Kernel.create () in
  let f = Fifo.create "c" in
  let observed = ref [] in
  Kernel.spawn k (fun () ->
      observed := Fifo.try_get f :: !observed;
      Fifo.put f 7;
      observed := Fifo.try_get f :: !observed);
  Kernel.run k;
  Alcotest.(check (list (option int)))
    "try_get" [ None; Some 7 ] (List.rev !observed)

let fifo_try_write_overflow () =
  let k = Kernel.create () in
  let f = Fifo.create ~capacity:1 "c" in
  let results = ref [] in
  Kernel.spawn k (fun () ->
      results := Fifo.try_write f 1 :: !results;
      (* full: refused and counted as a drop, caller not parked *)
      results := Fifo.try_write f 2 :: !results;
      Alcotest.(check (option int)) "try_read" (Some 1) (Fifo.try_read f);
      results := Fifo.try_write f 3 :: !results;
      Alcotest.(check (option int)) "second read" (Some 3) (Fifo.try_read f);
      Alcotest.(check (option int)) "empty" None (Fifo.try_read f));
  Kernel.run k;
  Alcotest.(check (list bool))
    "write results" [ true; false; true ] (List.rev !results);
  check "drops" 1 (Fifo.drops f);
  let o = Fifo.occupancy f in
  check "occupancy drops" 1 o.Fifo.drops;
  check "occupancy puts" 2 o.Fifo.puts

let fifo_injected_loss () =
  let k = Kernel.create () in
  let f = Fifo.create "c" in
  (* drop write attempts 0 and 2; attempts count every put/try_write *)
  Fifo.set_loss f (Some (fun i -> i = 0 || i = 2));
  let got = ref [] in
  Kernel.spawn k (fun () ->
      Fifo.put f 10;
      (* lost silently *)
      Fifo.put f 11;
      (* the producer cannot observe an injected loss *)
      Alcotest.(check bool) "lossy try_write" true (Fifo.try_write f 12);
      Fifo.put f 13);
  Kernel.spawn k (fun () ->
      got := Fifo.get f :: !got;
      got := Fifo.get f :: !got);
  Kernel.run k;
  Alcotest.(check (list int)) "delivered" [ 11; 13 ] (List.rev !got);
  check "drops" 2 (Fifo.drops f);
  (* restoring reliability stops the dropping *)
  Fifo.set_loss f None;
  let k2 = Kernel.create () in
  Kernel.spawn k2 (fun () -> Fifo.put f 14);
  Kernel.run k2;
  check "no further drops" 2 (Fifo.drops f)

let fifo_rejects_negative_capacity () =
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Fifo.create: negative capacity") (fun () ->
      ignore (Fifo.create ~capacity:(-1) "bad"))

(* --- Signal --- *)

let signal_await_change () =
  let k = Kernel.create () in
  let s = Signal.create "s" 0 in
  let seen = ref [] in
  Kernel.spawn k (fun () ->
      seen := Signal.await_change s :: !seen;
      seen := Signal.await_change s :: !seen);
  Kernel.spawn k (fun () ->
      Process.wait (Time.ns 1);
      Signal.write s 5;
      Process.wait (Time.ns 1);
      Signal.write s 5;
      (* no change: no wake *)
      Process.wait (Time.ns 1);
      Signal.write s 9);
  Kernel.run k;
  Alcotest.(check (list int)) "changes seen" [ 5; 9 ] (List.rev !seen);
  check "writes" 3 (Signal.writes s);
  check "changes" 2 (Signal.changes s)

let signal_await_predicate () =
  let k = Kernel.create () in
  let s = Signal.create "s" 0 in
  let result = ref 0 in
  Kernel.spawn k (fun () -> result := Signal.await s (fun v -> v >= 3));
  Kernel.spawn k (fun () ->
      for i = 1 to 5 do
        Process.wait (Time.ns 1);
        Signal.write s i
      done);
  Kernel.run k;
  check "woke at 3" 3 !result

(* --- Trace --- *)

let trace_streams () =
  let t = Trace.create () in
  Trace.record t ~time:Time.zero ~source:"A" ~label:"x" "1";
  Trace.record t ~time:(Time.ns 5) ~source:"A" ~label:"x" "2";
  Trace.record t ~time:(Time.ns 9) ~source:"B" ~label:"y" "9";
  Alcotest.(check (list string)) "stream A.x" [ "1"; "2" ]
    (Trace.stream_of t ~source:"A" ~label:"x");
  Alcotest.(check int) "entries" 3 (Trace.length t);
  Alcotest.(check (list (pair string string)))
    "sources" [ ("A", "x"); ("B", "y") ] (Trace.sources t)

let trace_compare_ignores_time () =
  let a = Trace.create () and b = Trace.create () in
  Trace.record a ~time:Time.zero ~source:"A" ~label:"x" "1";
  Trace.record b ~time:(Time.ms 3) ~source:"A" ~label:"x" "1";
  Alcotest.(check bool) "equal data" true
    (Trace.equal_data ~reference:a ~actual:b)

let trace_compare_finds_mismatch () =
  let a = Trace.create () and b = Trace.create () in
  Trace.record a ~time:Time.zero ~source:"A" ~label:"x" "1";
  Trace.record a ~time:Time.zero ~source:"A" ~label:"x" "2";
  Trace.record b ~time:Time.zero ~source:"A" ~label:"x" "1";
  Trace.record b ~time:Time.zero ~source:"A" ~label:"x" "999";
  match Trace.compare_data ~reference:a ~actual:b with
  | [ m ] ->
      Alcotest.(check int) "index" 1 m.Trace.index;
      Alcotest.(check (option string)) "expected" (Some "2") m.Trace.expected;
      Alcotest.(check (option string)) "actual" (Some "999") m.Trace.actual
  | ms -> Alcotest.failf "expected 1 mismatch, got %d" (List.length ms)

let trace_compare_finds_missing () =
  let a = Trace.create () and b = Trace.create () in
  Trace.record a ~time:Time.zero ~source:"A" ~label:"x" "1";
  Trace.record a ~time:Time.zero ~source:"A" ~label:"x" "2";
  Trace.record b ~time:Time.zero ~source:"A" ~label:"x" "1";
  match Trace.compare_data ~reference:a ~actual:b with
  | [ m ] -> Alcotest.(check (option string)) "missing" None m.Trace.actual
  | ms -> Alcotest.failf "expected 1 mismatch, got %d" (List.length ms)

(* qcheck: the event queue dequeues any pushed multiset in nondecreasing
   time order. *)
let qcheck_event_queue =
  QCheck.Test.make ~name:"event queue sorts by time" ~count:200
    QCheck.(list (int_bound 1000))
    (fun times ->
      let q = Event_queue.create ~dummy_payload:0 in
      List.iter (fun t -> Event_queue.push q (Time.ns t) t) times;
      let rec drain acc =
        match Event_queue.pop q with
        | None -> List.rev acc
        | Some (_, p) -> drain (p :: acc)
      in
      (* payload = time, so sorted-by-time equals plain sort *)
      drain [] = List.sort compare times)

let qcheck_fifo_preserves_order =
  QCheck.Test.make ~name:"fifo preserves order under random capacity"
    ~count:100
    QCheck.(pair (int_bound 5) (small_list small_int))
    (fun (cap, items) ->
      let k = Kernel.create () in
      let f = Fifo.create ~capacity:cap "c" in
      let got = ref [] in
      Kernel.spawn k (fun () -> List.iter (Fifo.put f) items);
      Kernel.spawn k (fun () ->
          for _ = 1 to List.length items do
            got := Fifo.get f :: !got
          done);
      Kernel.run k;
      List.rev !got = items)

let suite =
  [
    Alcotest.test_case "time units" `Quick time_units;
    Alcotest.test_case "time arithmetic and printing" `Quick time_arith;
    Alcotest.test_case "event queue ordering" `Quick event_queue_order;
    Alcotest.test_case "event queue growth" `Quick event_queue_growth;
    Alcotest.test_case "kernel wait ordering" `Quick kernel_wait_order;
    Alcotest.test_case "kernel run until horizon" `Quick kernel_run_until;
    Alcotest.test_case "kernel stop" `Quick kernel_stop;
    Alcotest.test_case "nested spawn" `Quick kernel_nested_spawn;
    Alcotest.test_case "process halt" `Quick kernel_halt;
    Alcotest.test_case "kernel schedule helpers" `Quick kernel_schedule_direct;
    Alcotest.test_case "same-time events keep order" `Quick
      kernel_same_time_fifo_order;
    Alcotest.test_case "fifo order" `Quick fifo_fifo_order;
    Alcotest.test_case "fifo blocking at capacity" `Quick fifo_blocking_capacity;
    Alcotest.test_case "fifo try_get" `Quick fifo_try_get;
    Alcotest.test_case "fifo try_write overflow" `Quick fifo_try_write_overflow;
    Alcotest.test_case "fifo injected loss" `Quick fifo_injected_loss;
    Alcotest.test_case "fifo rejects negative capacity" `Quick
      fifo_rejects_negative_capacity;
    Alcotest.test_case "signal await_change" `Quick signal_await_change;
    Alcotest.test_case "signal await predicate" `Quick signal_await_predicate;
    Alcotest.test_case "trace streams" `Quick trace_streams;
    Alcotest.test_case "trace comparison ignores time" `Quick
      trace_compare_ignores_time;
    Alcotest.test_case "trace comparison finds mismatch" `Quick
      trace_compare_finds_mismatch;
    Alcotest.test_case "trace comparison finds missing entries" `Quick
      trace_compare_finds_missing;
    QCheck_alcotest.to_alcotest qcheck_event_queue;
    QCheck_alcotest.to_alcotest qcheck_fifo_preserves_order;
  ]
