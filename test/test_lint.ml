(* Tests for the static-analysis subsystem: per-rule seeded-defect
   fixtures (one target that must fire each rule, one clean target that
   must not), the governed/parallel framework contracts (jobs-width
   invariant reports, governor skips recorded, suppressions recorded),
   the documented may/must-vs-dynamic-SymbC warning direction, and the
   satellite bugfixes (Expr.infer_width, early Simulator errors, Synth
   combinational-loop detection). *)

module Lint = Symbad_lint.Lint
module Diagnostic = Symbad_lint.Diagnostic
module Seeded = Symbad_lint.Seeded
module Expr = Symbad_hdl.Expr
module Bitvec = Symbad_hdl.Bitvec
module Netlist = Symbad_hdl.Netlist
module Simulator = Symbad_hdl.Simulator
module Synth = Symbad_hdl.Synth
module Json = Symbad_obs.Json
module Par = Symbad_par.Par
module Gov = Symbad_gov.Gov
module Budget = Symbad_gov.Budget
module Ast = Symbad_symbc.Ast
module Check = Symbad_symbc.Check

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let fired rule report =
  List.exists
    (fun (d : Diagnostic.t) -> String.equal d.Diagnostic.rule rule)
    report.Lint.diagnostics

(* --- netlist rules: each fixture fires exactly its rule -------------- *)

let netlist_fixtures_fire () =
  List.iter
    (fun (rule, nl) ->
      let r = Lint.run_netlist nl in
      check_bool (rule ^ " fires on its fixture") true (fired rule r))
    Seeded.fixtures

let clean_netlist_is_clean () =
  let r = Lint.run_netlist Seeded.clean in
  check_int "no diagnostics on the clean netlist" 0
    (List.length r.Lint.diagnostics);
  check_int "all netlist rules ran" (List.length Lint.netlist_rule_ids)
    (List.length r.Lint.rules_run)

(* Defects do not bleed across rules: the width fixture must not fire
   comb-loop, the loop fixture must not fire width (no cascades). *)
let no_cross_fire () =
  let r = Lint.run_netlist Seeded.width_mismatch in
  check_bool "width fixture: no comb-loop" false (fired "net.comb-loop" r);
  let r = Lint.run_netlist Seeded.comb_loop in
  check_bool "loop fixture: no width cascade" false (fired "net.width" r);
  check_bool "loop fixture: fires comb-loop" true (fired "net.comb-loop" r)

let demo_reports_all_three () =
  let r = Lint.run_netlist Seeded.demo in
  List.iter
    (fun rule -> check_bool (rule ^ " on demo") true (fired rule r))
    [ "net.comb-loop"; "net.width"; "net.multi-driven" ];
  check_bool "demo has errors" true (Lint.errors r >= 3)

(* Properties extend the cone of influence: a register referenced only
   by a property is not unused. *)
let properties_extend_cone () =
  let nl =
    Netlist.make ~name:"prop_cone"
      ~inputs:[ ("d", 4) ]
      ~registers:
        [
          {
            Netlist.name = "shadow";
            width = 4;
            init = Bitvec.zero ~width:4;
            next = Expr.input "d";
          };
        ]
      ~outputs:[ ("d", Expr.input "d") ]
  in
  let without = Lint.run_netlist nl in
  check_bool "unused without property" true (fired "net.unused" without);
  let with_prop =
    Lint.run_netlist
      ~properties:
        [ ("shadow_bounded", Expr.ule (Expr.reg "shadow") (Expr.input "d")) ]
      nl
  in
  check_bool "property keeps the register live" false
    (fired "net.unused" with_prop)

(* Primed property reads resolve to the base register. *)
let primed_property_reads () =
  let r =
    Lint.run_netlist
      ~properties:
        [ ("acc_step", Expr.ule (Expr.reg "acc") (Expr.reg "acc'")) ]
      Seeded.clean
  in
  check_int "primed property is clean" 0 (List.length r.Lint.diagnostics)

let vacuous_property_flagged () =
  let never = Expr.const ~width:1 0 in
  let r =
    Lint.run_netlist
      ~properties:
        [
          ("vacuous", Expr.or_ (Expr.not_ never) (Expr.reg "acc"));
          ("wide", Expr.reg "acc");
        ]
      Seeded.clean
  in
  check_bool "vacuous antecedent fires dead-logic" true
    (fired "net.dead-logic" r);
  check_bool "non-1-width property fires width" true (fired "net.width" r)

(* --- program rules --------------------------------------------------- *)

let program_fixtures_fire () =
  List.iter
    (fun (rule, p) ->
      let r = Lint.run_program Seeded.ci p in
      check_bool (rule ^ " fires on its fixture") true (fired rule r))
    Seeded.program_fixtures;
  let r = Lint.run_cfg Seeded.ci Seeded.cfg_unreachable in
  check_bool "cfg.unreachable-config fires on the hand-built CFG" true
    (fired "cfg.unreachable-config" r)

let clean_program_is_clean () =
  let r = Lint.run_program Seeded.ci Seeded.program_clean in
  check_int "no diagnostics on the clean program" 0
    (List.length r.Lint.diagnostics)

(* The documented warning direction: on a partially-loaded path the
   static may/must analysis warns (never errors), while dynamic SymbC
   finds the concrete counterexample.  The static pass must never be
   *more* optimistic than SymbC: a lint-clean program is dynamically
   consistent. *)
let warning_direction_vs_symbc () =
  let p = Seeded.program_maybe_unloaded in
  let r = Lint.run_program Seeded.ci p in
  check_int "static: no errors" 0 (Lint.errors r);
  check_bool "static: warns maybe-unloaded" true (fired "cfg.maybe-unloaded" r);
  (match Check.check Seeded.ci p with
  | Check.Inconsistent cex ->
      check_str "dynamic: the same call fails" "edge" cex.Check.failing_call
  | Check.Consistent _ -> Alcotest.fail "SymbC should find the unloaded path");
  let r = Lint.run_program Seeded.ci Seeded.program_clean in
  check_int "clean program: no diagnostics" 0 (List.length r.Lint.diagnostics);
  match Check.check Seeded.ci Seeded.program_clean with
  | Check.Consistent _ -> ()
  | Check.Inconsistent _ -> Alcotest.fail "lint-clean program must be consistent"

let never_loaded_is_error () =
  let r = Lint.run_program Seeded.ci Seeded.program_never_loaded in
  check_bool "never-loaded fires" true (fired "cfg.never-loaded" r);
  check_bool "never-loaded is an error" true (Lint.errors r >= 1)

(* --- framework contracts --------------------------------------------- *)

let suppression_recorded () =
  let r = Lint.run_netlist ~suppress:[ "net.width" ] Seeded.width_mismatch in
  check_bool "suppressed rule does not fire" false (fired "net.width" r);
  check_bool "suppression recorded" true
    (List.mem "net.width" r.Lint.suppressed)

let unknown_rule_rejected () =
  match Lint.run_netlist ~rules:[ "net.typo" ] Seeded.clean with
  | _ -> Alcotest.fail "unknown rule id must be rejected"
  | exception Invalid_argument _ -> ()

let governor_skips_recorded () =
  let gov = Gov.create (Budget.make ~patterns:3 ()) in
  let r = Lint.run_netlist ~gov Seeded.demo in
  check_int "three rules afforded" 3 (List.length r.Lint.rules_run);
  check_int "rest recorded as skipped"
    (List.length Lint.netlist_rule_ids - 3)
    (List.length r.Lint.skipped_rules);
  (* allowance is read once before the fan-out: same skips at width 4 *)
  Par.with_pool ~jobs:4 (fun pool ->
      let gov = Gov.create (Budget.make ~patterns:3 ()) in
      let r4 = Lint.run_netlist ~pool ~gov Seeded.demo in
      check_str "same report at jobs 4"
        (Json.to_string (Lint.to_json r))
        (Json.to_string (Lint.to_json r4)))

(* qcheck: reports are jobs-width invariant — the JSON digest at any
   pool width equals the sequential one, for every fixture. *)
let qcheck_jobs_invariant =
  let targets =
    Array.of_list
      (List.map snd Seeded.fixtures @ [ Seeded.clean; Seeded.demo ])
  in
  QCheck.Test.make ~count:20 ~name:"lint report is jobs-width invariant"
    QCheck.(pair (int_range 0 (Array.length targets - 1)) (int_range 2 4))
    (fun (i, jobs) ->
      let digest nl pool =
        Digest.to_hex
          (Digest.string (Json.to_string (Lint.to_json (Lint.run_netlist ?pool nl))))
      in
      let seq = digest targets.(i) None in
      Par.with_pool ~jobs (fun pool ->
          String.equal seq (digest targets.(i) (Some pool))))

let merge_reports () =
  let a = Lint.run_netlist Seeded.width_mismatch in
  let b = Lint.run_program Seeded.ci Seeded.program_never_loaded in
  let m = Lint.merge ~target:"both" [ a; b ] in
  check_bool "merged keeps netlist finding" true (fired "net.width" m);
  check_bool "merged keeps program finding" true (fired "cfg.never-loaded" m);
  check_int "rule lists unioned"
    (List.length Lint.netlist_rule_ids + List.length Lint.program_rule_ids)
    (List.length m.Lint.rules_run)

let json_roundtrips () =
  let r = Lint.run_netlist Seeded.demo in
  match Json.parse (Json.to_string (Lint.to_json r)) with
  | Error e -> Alcotest.fail e
  | Ok j ->
      check_bool "errors field present" true
        (Json.member "errors" j |> Option.is_some);
      let diags =
        Json.member "diagnostics" j |> Option.get |> Json.to_list |> Option.get
      in
      check_int "diagnostic count matches" (List.length r.Lint.diagnostics)
        (List.length diags)

(* --- satellite bugfixes ---------------------------------------------- *)

let infer_width_result () =
  let iw = function "a" -> Some 4 | _ -> None in
  let rw = function "r" -> Some 4 | _ -> None in
  (match
     Expr.infer_width ~input_width:iw ~reg_width:rw
       (Expr.add (Expr.input "a") (Expr.reg "r"))
   with
  | Ok w -> check_int "inferred" 4 w
  | Error e -> Alcotest.fail e);
  (match
     Expr.infer_width ~input_width:iw ~reg_width:rw
       (Expr.add (Expr.input "a") (Expr.const ~width:8 1))
   with
  | Ok _ -> Alcotest.fail "mismatch must be an Error"
  | Error msg ->
      check_bool "message names the operator and widths" true
        (String.length msg > 0
        && String.equal msg "+ width mismatch 4 vs 8"));
  match
    Expr.infer_width ~input_width:iw ~reg_width:rw (Expr.input "ghost")
  with
  | Ok _ -> Alcotest.fail "undeclared input must be an Error"
  | Error msg -> check_str "undeclared named" "undeclared input ghost" msg

let simulator_rejects_malformed () =
  match Simulator.create Seeded.width_mismatch with
  | _ -> Alcotest.fail "Simulator.create must reject a width mismatch"
  | exception Invalid_argument msg ->
      check_bool "error names the register" true
        (String.length msg >= 4
        && String.sub msg 0 4 |> String.equal "Simu")

let synth_detects_comb_loop () =
  let df =
    {
      Synth.df_name = "loop";
      df_inputs = [ ("x", 4) ];
      df_defs =
        [
          ("a", Expr.add (Expr.reg "b") (Expr.input "x"));
          ("b", Expr.not_ (Expr.reg "a"));
        ];
      df_outputs = [ ("y", "a") ];
    }
  in
  match Synth.combinational df with
  | _ -> Alcotest.fail "cyclic defs must be rejected"
  | exception Invalid_argument msg ->
      check_bool "error mentions the loop" true
        (String.length msg > 0
        && Option.is_some
             (String.index_opt msg '>' (* "a -> b -> a" arrow *)))

(* --- the repo corpus lints clean -------------------------------------

   Every netlist the repo builds, with its intentional suppressions
   documented here:
   - [distance_datapath_buggy] drops the [start] clear (the seeded
     memory-init bug), leaving [start] genuinely unused — net.unused is
     the symptom of the bug, so it is suppressed, not fixed;
   - [sobel_window_datapath]'s centre pixel [p4] has Sobel weight 0 in
     both gradients, so the input is unused by construction. *)
let repo_corpus_is_clean () =
  let module R = Symbad_hdl.Rtl_lib in
  let clean ?suppress name nl =
    let r = Lint.run_netlist ?suppress nl in
    check_int (name ^ " lints clean") 0 (List.length r.Lint.diagnostics)
  in
  clean "counter" (R.counter ~width:4);
  clean "distance" (R.distance_datapath ());
  clean "distance_buggy" ~suppress:[ "net.unused" ]
    (R.distance_datapath_buggy ());
  clean "wrapper" (R.handshake_wrapper ());
  clean "wrapper_buggy" (R.handshake_wrapper_buggy ());
  clean "fifo_ctrl" (R.fifo_ctrl ());
  clean "fifo_ctrl_buggy" (R.fifo_ctrl_buggy ());
  clean "sobel_window" ~suppress:[ "net.unused" ] (R.sobel_window_datapath ());
  clean "min9" (R.min9_datapath ());
  clean "argmin" (R.argmin_datapath ());
  (* verification-only registers (ROOT's [nsave], recovery's [nonop])
     are live only through property cones: these two lint clean WITH
     their properties, and warn net.unused without them *)
  let pairs props =
    List.map (fun p -> (Symbad_mc.Prop.name p, Symbad_mc.Prop.formula p)) props
  in
  let clean_with_props name nl props =
    let bare = Lint.run_netlist nl in
    check_bool
      (name ^ " warns net.unused without properties")
      true
      (fired "net.unused" bare);
    let r = Lint.run_netlist ~properties:(pairs props) nl in
    check_int (name ^ " lints clean with properties") 0
      (List.length r.Lint.diagnostics)
  in
  clean_with_props "root" (R.root_datapath ())
    (Symbad_core.Level4.root_properties ());
  let module Recovery = Symbad_resil.Recovery in
  let nl = Recovery.netlist () in
  clean_with_props "recovery_ctrl" nl (Recovery.properties nl)

let suite =
  [
    Alcotest.test_case "netlist fixtures fire their rules" `Quick
      netlist_fixtures_fire;
    Alcotest.test_case "repo corpus lints clean" `Quick repo_corpus_is_clean;
    Alcotest.test_case "clean netlist is clean" `Quick clean_netlist_is_clean;
    Alcotest.test_case "no cross-rule cascades" `Quick no_cross_fire;
    Alcotest.test_case "demo reports loop+width+multi-driven" `Quick
      demo_reports_all_three;
    Alcotest.test_case "properties extend the cone" `Quick
      properties_extend_cone;
    Alcotest.test_case "primed property reads resolve" `Quick
      primed_property_reads;
    Alcotest.test_case "vacuous/wide properties flagged" `Quick
      vacuous_property_flagged;
    Alcotest.test_case "program fixtures fire their rules" `Quick
      program_fixtures_fire;
    Alcotest.test_case "clean program is clean" `Quick clean_program_is_clean;
    Alcotest.test_case "warning direction vs dynamic SymbC" `Quick
      warning_direction_vs_symbc;
    Alcotest.test_case "never-loaded is an error" `Quick never_loaded_is_error;
    Alcotest.test_case "suppressions are recorded" `Quick suppression_recorded;
    Alcotest.test_case "unknown rule ids rejected" `Quick unknown_rule_rejected;
    Alcotest.test_case "governor skips are recorded" `Quick
      governor_skips_recorded;
    QCheck_alcotest.to_alcotest qcheck_jobs_invariant;
    Alcotest.test_case "merge unions reports" `Quick merge_reports;
    Alcotest.test_case "report JSON parses back" `Quick json_roundtrips;
    Alcotest.test_case "Expr.infer_width is total" `Quick infer_width_result;
    Alcotest.test_case "Simulator.create rejects malformed netlists" `Quick
      simulator_rejects_malformed;
    Alcotest.test_case "Synth rejects cyclic defs" `Quick
      synth_detects_comb_loop;
  ]
