(* Tests for the static-analysis subsystem: per-rule seeded-defect
   fixtures (one target that must fire each rule, one clean target that
   must not), the governed/parallel framework contracts (jobs-width
   invariant reports, governor skips recorded, suppressions recorded),
   the documented may/must-vs-dynamic-SymbC warning direction, and the
   satellite bugfixes (Expr.infer_width, early Simulator errors, Synth
   combinational-loop detection). *)

module Lint = Symbad_lint.Lint
module Diagnostic = Symbad_lint.Diagnostic
module Seeded = Symbad_lint.Seeded
module Expr = Symbad_hdl.Expr
module Bitvec = Symbad_hdl.Bitvec
module Netlist = Symbad_hdl.Netlist
module Simulator = Symbad_hdl.Simulator
module Synth = Symbad_hdl.Synth
module Json = Symbad_obs.Json
module Par = Symbad_par.Par
module Gov = Symbad_gov.Gov
module Budget = Symbad_gov.Budget
module Ast = Symbad_symbc.Ast
module Check = Symbad_symbc.Check

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let fired rule report =
  List.exists
    (fun (d : Diagnostic.t) -> String.equal d.Diagnostic.rule rule)
    report.Lint.diagnostics

(* --- netlist rules: each fixture fires exactly its rule -------------- *)

let netlist_fixtures_fire () =
  List.iter
    (fun (rule, nl) ->
      let r = Lint.run_netlist nl in
      check_bool (rule ^ " fires on its fixture") true (fired rule r))
    Seeded.fixtures

let clean_netlist_is_clean () =
  let r = Lint.run_netlist Seeded.clean in
  check_int "no diagnostics on the clean netlist" 0
    (List.length r.Lint.diagnostics);
  check_int "all netlist rules ran" (List.length Lint.netlist_rule_ids)
    (List.length r.Lint.rules_run)

(* Defects do not bleed across rules: the width fixture must not fire
   comb-loop, the loop fixture must not fire width (no cascades). *)
let no_cross_fire () =
  let r = Lint.run_netlist Seeded.width_mismatch in
  check_bool "width fixture: no comb-loop" false (fired "net.comb-loop" r);
  let r = Lint.run_netlist Seeded.comb_loop in
  check_bool "loop fixture: no width cascade" false (fired "net.width" r);
  check_bool "loop fixture: fires comb-loop" true (fired "net.comb-loop" r)

let demo_reports_all_three () =
  let r = Lint.run_netlist Seeded.demo in
  List.iter
    (fun rule -> check_bool (rule ^ " on demo") true (fired rule r))
    [ "net.comb-loop"; "net.width"; "net.multi-driven" ];
  check_bool "demo has errors" true (Lint.errors r >= 3)

(* Properties extend the cone of influence: a register referenced only
   by a property is not unused. *)
let properties_extend_cone () =
  let nl =
    Netlist.make ~name:"prop_cone"
      ~inputs:[ ("d", 4) ]
      ~registers:
        [
          {
            Netlist.name = "shadow";
            width = 4;
            init = Bitvec.zero ~width:4;
            next = Expr.input "d";
          };
        ]
      ~outputs:[ ("d", Expr.input "d") ]
  in
  let without = Lint.run_netlist nl in
  check_bool "unused without property" true (fired "net.unused" without);
  let with_prop =
    Lint.run_netlist
      ~properties:
        [ ("shadow_bounded", Expr.ule (Expr.reg "shadow") (Expr.input "d")) ]
      nl
  in
  check_bool "property keeps the register live" false
    (fired "net.unused" with_prop)

(* Primed property reads resolve to the base register. *)
let primed_property_reads () =
  let r =
    Lint.run_netlist
      ~properties:
        [ ("acc_step", Expr.ule (Expr.reg "acc") (Expr.reg "acc'")) ]
      Seeded.clean
  in
  check_int "primed property is clean" 0 (List.length r.Lint.diagnostics)

let vacuous_property_flagged () =
  let never = Expr.const ~width:1 0 in
  let r =
    Lint.run_netlist
      ~properties:
        [
          ("vacuous", Expr.or_ (Expr.not_ never) (Expr.reg "acc"));
          ("wide", Expr.reg "acc");
        ]
      Seeded.clean
  in
  check_bool "vacuous antecedent fires dead-logic" true
    (fired "net.dead-logic" r);
  check_bool "non-1-width property fires width" true (fired "net.width" r)

(* --- program rules --------------------------------------------------- *)

let program_fixtures_fire () =
  List.iter
    (fun (rule, p) ->
      let r = Lint.run_program Seeded.ci p in
      check_bool (rule ^ " fires on its fixture") true (fired rule r))
    Seeded.program_fixtures;
  let r = Lint.run_cfg Seeded.ci Seeded.cfg_unreachable in
  check_bool "cfg.unreachable-config fires on the hand-built CFG" true
    (fired "cfg.unreachable-config" r)

let clean_program_is_clean () =
  let r = Lint.run_program Seeded.ci Seeded.program_clean in
  check_int "no diagnostics on the clean program" 0
    (List.length r.Lint.diagnostics)

(* The documented warning direction: on a partially-loaded path the
   static may/must analysis warns (never errors), while dynamic SymbC
   finds the concrete counterexample.  The static pass must never be
   *more* optimistic than SymbC: a lint-clean program is dynamically
   consistent. *)
let warning_direction_vs_symbc () =
  let p = Seeded.program_maybe_unloaded in
  let r = Lint.run_program Seeded.ci p in
  check_int "static: no errors" 0 (Lint.errors r);
  check_bool "static: warns maybe-unloaded" true (fired "cfg.maybe-unloaded" r);
  (match Check.check Seeded.ci p with
  | Check.Inconsistent cex ->
      check_str "dynamic: the same call fails" "edge" cex.Check.failing_call
  | Check.Consistent _ -> Alcotest.fail "SymbC should find the unloaded path");
  let r = Lint.run_program Seeded.ci Seeded.program_clean in
  check_int "clean program: no diagnostics" 0 (List.length r.Lint.diagnostics);
  match Check.check Seeded.ci Seeded.program_clean with
  | Check.Consistent _ -> ()
  | Check.Inconsistent _ -> Alcotest.fail "lint-clean program must be consistent"

let never_loaded_is_error () =
  let r = Lint.run_program Seeded.ci Seeded.program_never_loaded in
  check_bool "never-loaded fires" true (fired "cfg.never-loaded" r);
  check_bool "never-loaded is an error" true (Lint.errors r >= 1)

(* --- framework contracts --------------------------------------------- *)

let suppression_recorded () =
  let r = Lint.run_netlist ~suppress:[ "net.width" ] Seeded.width_mismatch in
  check_bool "suppressed rule does not fire" false (fired "net.width" r);
  check_bool "suppression recorded" true
    (List.mem "net.width" r.Lint.suppressed)

let unknown_rule_rejected () =
  match Lint.run_netlist ~rules:[ "net.typo" ] Seeded.clean with
  | _ -> Alcotest.fail "unknown rule id must be rejected"
  | exception Invalid_argument _ -> ()

let governor_skips_recorded () =
  let gov = Gov.create (Budget.make ~patterns:3 ()) in
  let r = Lint.run_netlist ~gov Seeded.demo in
  check_int "three rules afforded" 3 (List.length r.Lint.rules_run);
  check_int "rest recorded as skipped"
    (List.length Lint.netlist_rule_ids - 3)
    (List.length r.Lint.skipped_rules);
  (* allowance is read once before the fan-out: same skips at width 4 *)
  Par.with_pool ~jobs:4 (fun pool ->
      let gov = Gov.create (Budget.make ~patterns:3 ()) in
      let r4 = Lint.run_netlist ~pool ~gov Seeded.demo in
      check_str "same report at jobs 4"
        (Json.to_string (Lint.to_json r))
        (Json.to_string (Lint.to_json r4)))

(* qcheck: reports are jobs-width invariant — the JSON digest at any
   pool width equals the sequential one, for every fixture. *)
let qcheck_jobs_invariant =
  let targets =
    Array.of_list
      (List.map snd Seeded.fixtures @ [ Seeded.clean; Seeded.demo ])
  in
  QCheck.Test.make ~count:20 ~name:"lint report is jobs-width invariant"
    QCheck.(pair (int_range 0 (Array.length targets - 1)) (int_range 2 4))
    (fun (i, jobs) ->
      let digest nl pool =
        Digest.to_hex
          (Digest.string (Json.to_string (Lint.to_json (Lint.run_netlist ?pool nl))))
      in
      let seq = digest targets.(i) None in
      Par.with_pool ~jobs (fun pool ->
          String.equal seq (digest targets.(i) (Some pool))))

let merge_reports () =
  let a = Lint.run_netlist Seeded.width_mismatch in
  let b = Lint.run_program Seeded.ci Seeded.program_never_loaded in
  let m = Lint.merge ~target:"both" [ a; b ] in
  check_bool "merged keeps netlist finding" true (fired "net.width" m);
  check_bool "merged keeps program finding" true (fired "cfg.never-loaded" m);
  check_int "rule lists unioned"
    (List.length Lint.netlist_rule_ids + List.length Lint.program_rule_ids)
    (List.length m.Lint.rules_run)

let json_roundtrips () =
  let r = Lint.run_netlist Seeded.demo in
  match Json.parse (Json.to_string (Lint.to_json r)) with
  | Error e -> Alcotest.fail e
  | Ok j ->
      check_bool "errors field present" true
        (Json.member "errors" j |> Option.is_some);
      let diags =
        Json.member "diagnostics" j |> Option.get |> Json.to_list |> Option.get
      in
      check_int "diagnostic count matches" (List.length r.Lint.diagnostics)
        (List.length diags)

(* --- satellite bugfixes ---------------------------------------------- *)

let infer_width_result () =
  let iw = function "a" -> Some 4 | _ -> None in
  let rw = function "r" -> Some 4 | _ -> None in
  (match
     Expr.infer_width ~input_width:iw ~reg_width:rw
       (Expr.add (Expr.input "a") (Expr.reg "r"))
   with
  | Ok w -> check_int "inferred" 4 w
  | Error e -> Alcotest.fail e);
  (match
     Expr.infer_width ~input_width:iw ~reg_width:rw
       (Expr.add (Expr.input "a") (Expr.const ~width:8 1))
   with
  | Ok _ -> Alcotest.fail "mismatch must be an Error"
  | Error msg ->
      check_bool "message names the operator and widths" true
        (String.length msg > 0
        && String.equal msg "+ width mismatch 4 vs 8"));
  match
    Expr.infer_width ~input_width:iw ~reg_width:rw (Expr.input "ghost")
  with
  | Ok _ -> Alcotest.fail "undeclared input must be an Error"
  | Error msg -> check_str "undeclared named" "undeclared input ghost" msg

let simulator_rejects_malformed () =
  match Simulator.create Seeded.width_mismatch with
  | _ -> Alcotest.fail "Simulator.create must reject a width mismatch"
  | exception Invalid_argument msg ->
      check_bool "error names the register" true
        (String.length msg >= 4
        && String.sub msg 0 4 |> String.equal "Simu")

let synth_detects_comb_loop () =
  let df =
    {
      Synth.df_name = "loop";
      df_inputs = [ ("x", 4) ];
      df_defs =
        [
          ("a", Expr.add (Expr.reg "b") (Expr.input "x"));
          ("b", Expr.not_ (Expr.reg "a"));
        ];
      df_outputs = [ ("y", "a") ];
    }
  in
  match Synth.combinational df with
  | _ -> Alcotest.fail "cyclic defs must be rejected"
  | exception Invalid_argument msg ->
      check_bool "error mentions the loop" true
        (String.length msg > 0
        && Option.is_some
             (String.index_opt msg '>' (* "a -> b -> a" arrow *)))

(* --- the repo corpus lints clean -------------------------------------

   Every netlist the repo builds, with its intentional suppressions
   documented here:
   - [distance_datapath_buggy] drops the [start] clear (the seeded
     memory-init bug), leaving [start] genuinely unused — net.unused is
     the symptom of the bug, so it is suppressed, not fixed;
   - [sobel_window_datapath]'s centre pixel [p4] has Sobel weight 0 in
     both gradients, so the input is unused by construction;
   - net.range is suppressed on the datapaths whose wraparound is
     intentional or guarded: [counter] wraps by definition, [distance]
     computes two's-complement differences before squaring (the wrap
     IS the negation), [fifo_ctrl]'s count is inc/dec-guarded by
     full/empty (provable via --escalate, beyond the static interval),
     [sobel_window] sums absolute gradients the same two's-complement
     way, [recovery]'s retry and no-op counters are compare-guarded
     (escalation proves both), [root]'s num update wraps by
     two's-complement construction (escalation returns the concrete
     wrap trace) and [argmin]'s accumulation outruns the prover's
     budget (escalation reports it inconclusive).  Each stays
     escalatable on demand. *)
let repo_corpus_is_clean () =
  let module R = Symbad_hdl.Rtl_lib in
  let clean ?suppress name nl =
    let r = Lint.run_netlist ?suppress nl in
    check_int (name ^ " lints clean") 0 (List.length r.Lint.diagnostics)
  in
  clean "counter" ~suppress:[ "net.range" ] (R.counter ~width:4);
  clean "distance" ~suppress:[ "net.range" ] (R.distance_datapath ());
  clean "distance_buggy" ~suppress:[ "net.unused"; "net.range" ]
    (R.distance_datapath_buggy ());
  clean "wrapper" (R.handshake_wrapper ());
  clean "wrapper_buggy" (R.handshake_wrapper_buggy ());
  clean "fifo_ctrl" ~suppress:[ "net.range" ] (R.fifo_ctrl ());
  clean "fifo_ctrl_buggy" ~suppress:[ "net.range" ] (R.fifo_ctrl_buggy ());
  clean "sobel_window" ~suppress:[ "net.unused"; "net.range" ]
    (R.sobel_window_datapath ());
  clean "min9" (R.min9_datapath ());
  clean "argmin" ~suppress:[ "net.range" ] (R.argmin_datapath ());
  (* verification-only registers (ROOT's [nsave], recovery's [nonop])
     are live only through property cones: these two lint clean WITH
     their properties, and warn net.unused without them *)
  let pairs props =
    List.map (fun p -> (Symbad_mc.Prop.name p, Symbad_mc.Prop.formula p)) props
  in
  let clean_with_props ?suppress name nl props =
    let bare = Lint.run_netlist nl in
    check_bool
      (name ^ " warns net.unused without properties")
      true
      (fired "net.unused" bare);
    let r = Lint.run_netlist ?suppress ~properties:(pairs props) nl in
    check_int (name ^ " lints clean with properties") 0
      (List.length r.Lint.diagnostics)
  in
  clean_with_props "root" ~suppress:[ "net.range" ] (R.root_datapath ())
    (Symbad_core.Level4.root_properties ());
  let module Recovery = Symbad_resil.Recovery in
  let nl = Recovery.netlist () in
  clean_with_props "recovery_ctrl" ~suppress:[ "net.range" ] nl
    (Recovery.properties nl)

(* --- the semantic (abstract-interpretation) engine ------------------- *)

module VD = Symbad_lint.Value_domain
module Absint = Symbad_lint.Netlist_absint
module Sarif = Symbad_lint.Sarif

(* qcheck soundness: on random small netlists the abstract fixpoint
   over-approximates everything 50 simulated cycles can reach — every
   concrete register value is a member of its abstraction.  This is
   the one property the whole semantic rule family leans on. *)
let qcheck_absint_sound =
  let open QCheck in
  let gen =
    let open Gen in
    let* width = int_range 1 4 in
    let* nregs = int_range 1 3 in
    let regs = List.init nregs (fun i -> Printf.sprintf "r%d" i) in
    let m = (1 lsl width) - 1 in
    let leaf =
      oneof
        ([
           return (Expr.input "a");
           return (Expr.input "b");
           map (fun v -> Expr.const ~width v) (int_range 0 m);
         ]
        @ List.map (fun r -> return (Expr.reg r)) regs)
    in
    let rec expr depth =
      if depth = 0 then leaf
      else
        let sub_ = expr (depth - 1) in
        oneof
          [
            leaf;
            map2 Expr.add sub_ sub_;
            map2 Expr.sub sub_ sub_;
            map2 Expr.mul sub_ sub_;
            map2 Expr.and_ sub_ sub_;
            map2 Expr.or_ sub_ sub_;
            map2 Expr.xor sub_ sub_;
            map Expr.not_ sub_;
            map3 (fun c t e -> Expr.mux (Expr.ult c t) t e) leaf sub_ sub_;
          ]
    in
    let* registers =
      flatten_l
        (List.map
           (fun name ->
             let* init = int_range 0 m in
             let* next = expr 2 in
             return
               { Netlist.name; width; init = Bitvec.make ~width init; next })
           regs)
    in
    let* stimulus =
      list_repeat 50 (pair (int_range 0 m) (int_range 0 m))
    in
    return
      ( Netlist.make ~name:"rand"
          ~inputs:[ ("a", width); ("b", width) ]
          ~registers
          ~outputs:[ ("o", Expr.reg (List.hd regs)) ],
        width,
        stimulus )
  in
  QCheck.Test.make ~count:60
    ~name:"abstract fixpoint over-approximates 50 simulated cycles"
    (QCheck.make gen)
    (fun (nl, width, stimulus) ->
      match Absint.analyze nl with
      | None -> false (* the generator only builds sound netlists *)
      | Some a ->
          let covered sim =
            List.for_all
              (fun (name, v) ->
                match Absint.reg_value a name with
                | None -> false
                | Some d -> VD.mem (Bitvec.to_int v) d)
              (Simulator.state sim)
          in
          let sim = Simulator.create nl in
          covered sim
          && List.for_all
               (fun (va, vb) ->
                 Simulator.step sim
                   ~inputs:
                     [
                       ("a", Bitvec.make ~width va);
                       ("b", Bitvec.make ~width vb);
                     ];
                 covered sim)
               stimulus)

(* The escalation round-trip on the seeded fixture: one warning is
   disproved (the accumulator wraps — promoted to error, two-frame
   counterexample attached), one is proved (d + ~d never carries —
   demoted to info), nothing is dropped. *)
let escalation_roundtrip () =
  let before = Lint.run_netlist Seeded.escalation in
  check_int "two warnings before" 2 (Lint.warnings before);
  check_int "no errors before" 0 (Lint.errors before);
  let after = Lint.escalate Seeded.escalation before in
  check_int "nothing dropped" 2 (List.length after.Lint.diagnostics);
  check_int "exactly one promoted error" 1 (Lint.errors after);
  check_int "no warnings left" 0 (Lint.warnings after);
  let status s (d : Diagnostic.t) =
    match d.Diagnostic.discharged with
    | Some g -> g.Diagnostic.status = s
    | None -> false
  in
  let promoted =
    List.filter
      (fun (d : Diagnostic.t) ->
        d.Diagnostic.severity = Diagnostic.Error
        && status Diagnostic.Disproved d)
      after.Lint.diagnostics
  in
  let proved =
    List.filter
      (fun (d : Diagnostic.t) ->
        d.Diagnostic.severity = Diagnostic.Info && status Diagnostic.Proved d)
      after.Lint.diagnostics
  in
  check_int "one disproved" 1 (List.length promoted);
  check_int "one proved" 1 (List.length proved);
  match promoted with
  | [ d ] -> (
      match d.Diagnostic.discharged with
      | Some g ->
          check_bool "counterexample attached" true
            (g.Diagnostic.counterexample <> None)
      | None -> Alcotest.fail "discharge missing")
  | _ -> Alcotest.fail "expected exactly one promoted diagnostic"

(* Escalated reports are byte-identical at any pool width: the JSON
   digest at jobs 1, 2 and 4 equals the sequential one. *)
let escalation_jobs_invariant () =
  let digest pool =
    let r = Lint.run_netlist ?pool Seeded.escalation in
    Digest.to_hex
      (Digest.string
         (Json.to_string (Lint.to_json (Lint.escalate ?pool Seeded.escalation r))))
  in
  let seq = digest None in
  List.iter
    (fun jobs ->
      Par.with_pool ~jobs (fun pool ->
          check_str
            (Printf.sprintf "identical at jobs %d" jobs)
            seq
            (digest (Some pool))))
    [ 1; 2; 4 ]

(* --- schedule rules over tenant sets ---------------------------------- *)

let sched_conflict () =
  let r = Lint.run_tenants Seeded.ci Seeded.tenants_conflict in
  check_bool "context-conflict fires" true (fired "sched.context-conflict" r);
  check_int "interference is a warning, not an error" 0 (Lint.errors r);
  (* both directions of the pair are reported *)
  check_int "both tenant orders reported" 2
    (List.length
       (List.filter
          (fun (d : Diagnostic.t) ->
            String.equal d.Diagnostic.rule "sched.context-conflict")
          r.Lint.diagnostics));
  let r = Lint.run_tenants Seeded.ci Seeded.tenants_clean in
  check_int "same-configuration tenants are clean" 0
    (List.length r.Lint.diagnostics)

let sched_wcrt () =
  let r =
    Lint.run_tenants ~deadline_ns:1_500_000 Seeded.ci
      Seeded.tenant_wcrt_unbounded
  in
  check_bool "loop-bound reconfiguration is unbounded" true
    (fired "sched.wcrt" r);
  check_bool "wcrt violation is an error" true (Lint.errors r >= 1);
  (* 2 reconfigurations at the 1 ms default cost = 2 ms WCRT *)
  let r =
    Lint.run_tenants ~deadline_ns:1_500_000 Seeded.ci
      Seeded.tenant_wcrt_straight
  in
  check_bool "2 ms over a 1.5 ms deadline fires" true (fired "sched.wcrt" r);
  let r =
    Lint.run_tenants ~deadline_ns:3_000_000 Seeded.ci
      Seeded.tenant_wcrt_straight
  in
  check_bool "2 ms under a 3 ms deadline is clean" false (fired "sched.wcrt" r);
  (* without a deadline the rule has nothing to compare against *)
  let r = Lint.run_tenants Seeded.ci Seeded.tenant_wcrt_unbounded in
  check_bool "no deadline, no wcrt finding" false (fired "sched.wcrt" r)

(* --- export formats ---------------------------------------------------- *)

(* Diagnostic JSON is versioned: schema_version at the report top level
   and on every diagnostic, and the severity order is centralised (the
   report lists errors before warnings before infos). *)
let schema_version_present () =
  let r = Lint.run_netlist Seeded.demo in
  let j = Json.parse_exn (Json.to_string (Lint.to_json r)) in
  let version node =
    Option.bind (Json.member "schema_version" node) Json.to_number
  in
  check_bool "top-level schema_version" true
    (version j = Some (float_of_int Diagnostic.schema_version));
  let diags = Json.member "diagnostics" j |> Option.get |> Json.to_list in
  List.iter
    (fun d ->
      check_bool "per-diagnostic schema_version" true
        (version d = Some (float_of_int Diagnostic.schema_version)))
    (Option.get diags);
  let m = Lint.merge ~target:"m" [ Lint.run_netlist Seeded.range; r ] in
  let sevs =
    List.map (fun (d : Diagnostic.t) -> d.Diagnostic.severity)
      m.Lint.diagnostics
  in
  check_bool "merged diagnostics sorted gravest first" true
    (List.sort compare sevs = sevs)

let sarif_export () =
  let before = Lint.run_netlist Seeded.escalation in
  let r = Lint.escalate Seeded.escalation before in
  let j = Json.parse_exn (Json.to_string (Sarif.of_report r)) in
  check_bool "version 2.1.0" true
    (Option.bind (Json.member "version" j) Json.to_str = Some "2.1.0");
  let run =
    Json.member "runs" j |> Option.get |> Json.to_list |> Option.get |> List.hd
  in
  check_bool "driver named" true
    (let driver =
       Option.bind (Json.member "tool" run) (Json.member "driver")
     in
     Option.bind driver (fun d -> Option.bind (Json.member "name" d) Json.to_str)
     = Some "symbad-lint");
  let results =
    Json.member "results" run |> Option.get |> Json.to_list |> Option.get
  in
  check_int "one result per diagnostic" (List.length r.Lint.diagnostics)
    (List.length results);
  let levels =
    List.filter_map (fun x -> Option.bind (Json.member "level" x) Json.to_str)
      results
  in
  (* Error maps to "error", the proved Info to SARIF's "note" *)
  check_bool "severities map to SARIF levels" true
    (List.mem "error" levels && List.mem "note" levels);
  check_bool "the discharge survives in the properties bag" true
    (List.exists
       (fun x ->
         Option.bind (Json.member "properties" x) (Json.member "counterexample")
         <> None)
       results)

let suite =
  [
    Alcotest.test_case "netlist fixtures fire their rules" `Quick
      netlist_fixtures_fire;
    Alcotest.test_case "repo corpus lints clean" `Quick repo_corpus_is_clean;
    Alcotest.test_case "clean netlist is clean" `Quick clean_netlist_is_clean;
    Alcotest.test_case "no cross-rule cascades" `Quick no_cross_fire;
    Alcotest.test_case "demo reports loop+width+multi-driven" `Quick
      demo_reports_all_three;
    Alcotest.test_case "properties extend the cone" `Quick
      properties_extend_cone;
    Alcotest.test_case "primed property reads resolve" `Quick
      primed_property_reads;
    Alcotest.test_case "vacuous/wide properties flagged" `Quick
      vacuous_property_flagged;
    Alcotest.test_case "program fixtures fire their rules" `Quick
      program_fixtures_fire;
    Alcotest.test_case "clean program is clean" `Quick clean_program_is_clean;
    Alcotest.test_case "warning direction vs dynamic SymbC" `Quick
      warning_direction_vs_symbc;
    Alcotest.test_case "never-loaded is an error" `Quick never_loaded_is_error;
    Alcotest.test_case "suppressions are recorded" `Quick suppression_recorded;
    Alcotest.test_case "unknown rule ids rejected" `Quick unknown_rule_rejected;
    Alcotest.test_case "governor skips are recorded" `Quick
      governor_skips_recorded;
    QCheck_alcotest.to_alcotest qcheck_jobs_invariant;
    QCheck_alcotest.to_alcotest qcheck_absint_sound;
    Alcotest.test_case "escalation round-trip on the seeded fixture" `Quick
      escalation_roundtrip;
    Alcotest.test_case "escalation is jobs-width invariant" `Quick
      escalation_jobs_invariant;
    Alcotest.test_case "sched.context-conflict on interleaved tenants" `Quick
      sched_conflict;
    Alcotest.test_case "sched.wcrt vs the admission deadline" `Quick sched_wcrt;
    Alcotest.test_case "diagnostic JSON carries schema_version" `Quick
      schema_version_present;
    Alcotest.test_case "SARIF 2.1.0 export" `Quick sarif_export;
    Alcotest.test_case "merge unions reports" `Quick merge_reports;
    Alcotest.test_case "report JSON parses back" `Quick json_roundtrips;
    Alcotest.test_case "Expr.infer_width is total" `Quick infer_width_result;
    Alcotest.test_case "Simulator.create rejects malformed netlists" `Quick
      simulator_rejects_malformed;
    Alcotest.test_case "Synth rejects cyclic defs" `Quick
      synth_detects_comb_loop;
  ]
