(* Tests for the RTL IR: bit vectors, expressions, netlists, simulation,
   CNF unrolling, and the predefined IP library. *)

open Symbad_hdl
module I = Symbad_image

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let bv w v = Bitvec.make ~width:w v

(* --- Bitvec --- *)

let bitvec_wraparound () =
  check "add wraps" 0 (Bitvec.to_int (Bitvec.add (bv 4 15) (bv 4 1)));
  check "sub wraps" 15 (Bitvec.to_int (Bitvec.sub (bv 4 0) (bv 4 1)));
  check "mul wraps" 4 (Bitvec.to_int (Bitvec.mul (bv 4 6) (bv 4 6)));
  check "neg" 13 (Bitvec.to_int (Bitvec.neg (bv 4 3)))

let bitvec_bit_ops () =
  check "and" 0b1000 (Bitvec.to_int (Bitvec.logand (bv 4 0b1100) (bv 4 0b1010)));
  check "or" 0b1110 (Bitvec.to_int (Bitvec.logor (bv 4 0b1100) (bv 4 0b1010)));
  check "xor" 0b0110 (Bitvec.to_int (Bitvec.logxor (bv 4 0b1100) (bv 4 0b1010)));
  check "not" 0b0011 (Bitvec.to_int (Bitvec.lognot (bv 4 0b1100)));
  check_bool "bit" true (Bitvec.bit (bv 4 0b0100) 2);
  check_bool "ult" true (Bitvec.ult (bv 8 3) (bv 8 250))

let bitvec_slice_concat () =
  check "slice" 0b101 (Bitvec.to_int (Bitvec.slice (bv 8 0b01011000) ~hi:6 ~lo:4));
  let c = Bitvec.concat (bv 4 0b1010) (bv 4 0b0101) in
  check "concat value" 0b10100101 (Bitvec.to_int c);
  check "concat width" 8 (Bitvec.width c);
  check "extend" 5 (Bitvec.to_int (Bitvec.extend (bv 3 5) ~width:8))

let bitvec_rejects () =
  check_bool "width 0" true
    (try ignore (bv 0 1); false with Invalid_argument _ -> true);
  check_bool "mismatch" true
    (try ignore (Bitvec.add (bv 4 1) (bv 5 1)); false
     with Invalid_argument _ -> true)

(* --- Expr width checking & evaluation --- *)

let nl_counter = Rtl_lib.counter ~width:4

let expr_widths () =
  check "reg width" 4 (Netlist.expr_width nl_counter (Expr.reg "count"));
  check "eq width" 1
    (Netlist.expr_width nl_counter (Expr.eq (Expr.reg "count") (Expr.const ~width:4 3)));
  check_bool "mismatch rejected" true
    (try
       ignore
         (Netlist.expr_width nl_counter
            (Expr.add (Expr.reg "count") (Expr.const ~width:5 1)));
       false
     with Invalid_argument _ -> true);
  check_bool "unknown name rejected" true
    (try ignore (Netlist.expr_width nl_counter (Expr.reg "nope")); false
     with Invalid_argument _ -> true)

let expr_eval () =
  let input _ = bv 8 0 and reg _ = bv 8 100 in
  let e = Expr.mux
      (Expr.ult (Expr.reg "x") (Expr.const ~width:8 200))
      (Expr.add (Expr.reg "x") (Expr.const ~width:8 1))
      (Expr.const ~width:8 0)
  in
  check "mux taken" 101 (Bitvec.to_int (Expr.eval ~input ~reg e))

(* --- Netlist validation --- *)

let netlist_validation () =
  check_bool "duplicate name" true
    (try
       ignore
         (Netlist.make ~name:"bad"
            ~inputs:[ ("x", 1); ("x", 2) ]
            ~registers:[] ~outputs:[]);
       false
     with Invalid_argument _ -> true);
  check_bool "next width mismatch" true
    (try
       ignore
         (Netlist.make ~name:"bad" ~inputs:[]
            ~registers:
              [
                {
                  Netlist.name = "r";
                  width = 4;
                  init = Bitvec.zero ~width:4;
                  next = Expr.const ~width:5 0;
                };
              ]
            ~outputs:[]);
       false
     with Invalid_argument _ -> true)

let netlist_area_positive () =
  check_bool "counter area" true (Netlist.area nl_counter > 0);
  check_bool "distance bigger than counter" true
    (Netlist.area (Rtl_lib.distance_datapath ()) > Netlist.area nl_counter)

(* --- Simulator --- *)

let simulator_counter () =
  let sim = Simulator.create nl_counter in
  let en = [ ("enable", bv 1 1); ("clear", bv 1 0) ] in
  let idle = [ ("enable", bv 1 0); ("clear", bv 1 0) ] in
  let clr = [ ("enable", bv 1 0); ("clear", bv 1 1) ] in
  for _ = 1 to 5 do
    Simulator.step sim ~inputs:en
  done;
  check "counted to 5" 5 (Bitvec.to_int (Simulator.output sim ~inputs:idle "count"));
  Simulator.step sim ~inputs:idle;
  check "idle holds" 5 (Bitvec.to_int (Simulator.output sim ~inputs:idle "count"));
  Simulator.step sim ~inputs:clr;
  check "clear" 0 (Bitvec.to_int (Simulator.output sim ~inputs:idle "count"));
  check "cycle count" 7 (Simulator.cycle sim)

let simulator_counter_wraps () =
  let sim = Simulator.create nl_counter in
  let en = [ ("enable", bv 1 1); ("clear", bv 1 0) ] in
  for _ = 1 to 16 do
    Simulator.step sim ~inputs:en
  done;
  check "wrapped" 0 (Bitvec.to_int (Simulator.output sim ~inputs:en "count"))

let simulator_at_max_flag () =
  let sim = Simulator.create nl_counter in
  let en = [ ("enable", bv 1 1); ("clear", bv 1 0) ] in
  for _ = 1 to 15 do
    Simulator.step sim ~inputs:en
  done;
  check "at_max" 1 (Bitvec.to_int (Simulator.output sim ~inputs:en "at_max"))

(* --- TMR: triplication structure and fault-free transparency --- *)

let tmr_triplicate_structure () =
  let nl = Rtl_lib.counter ~width:4 in
  let tmr = Tmr.triplicate nl in
  check "three copies of every register"
    (3 * List.length (Netlist.registers nl))
    (List.length (Netlist.registers tmr));
  List.iter
    (fun (r : Netlist.register) ->
      for i = 0 to 2 do
        check_bool
          (Printf.sprintf "copy %d of %s present" i r.Netlist.name)
          true
          (List.exists
             (fun (c : Netlist.register) ->
               String.equal c.Netlist.name (Tmr.copy_reg i r.Netlist.name))
             (Netlist.registers tmr))
      done)
    (Netlist.registers nl);
  let outs = List.map fst (Netlist.outputs tmr) in
  List.iter
    (fun name ->
      check_bool (Printf.sprintf "output %s kept" name) true
        (List.mem name outs))
    (List.map fst (Netlist.outputs nl));
  List.iter
    (fun flag -> check_bool (flag ^ " added") true (List.mem flag outs))
    [ "tmr_disagree0"; "tmr_disagree1"; "tmr_disagree2"; "tmr_disagree" ]

let tmr_transparent_without_faults () =
  (* lock-step: with shared inputs and no injected upset, the voted
     outputs track the simplex netlist cycle for cycle and every
     disagreement flag stays low *)
  let nl = Rtl_lib.counter ~width:4 in
  let plain = Simulator.create nl and voted = Simulator.create (Tmr.triplicate nl) in
  let en = [ ("enable", bv 1 1); ("clear", bv 1 0) ] in
  for cyc = 1 to 20 do
    Simulator.step plain ~inputs:en;
    Simulator.step voted ~inputs:en;
    check
      (Printf.sprintf "voted count, cycle %d" cyc)
      (Bitvec.to_int (Simulator.output plain ~inputs:en "count"))
      (Bitvec.to_int (Simulator.output voted ~inputs:en "count"));
    check
      (Printf.sprintf "no disagreement, cycle %d" cyc)
      0
      (Bitvec.to_int (Simulator.output voted ~inputs:en "tmr_disagree"))
  done

(* --- ROOT datapath vs the behavioural model --- *)

let run_root sim n =
  Simulator.reset sim;
  Simulator.step sim ~inputs:[ ("start", bv 1 1); ("n", bv 8 n) ];
  let idle = [ ("start", bv 1 0); ("n", bv 8 0) ] in
  let steps = ref 0 in
  while
    Bitvec.to_int (Simulator.output sim ~inputs:idle "done") = 0 && !steps < 20
  do
    Simulator.step sim ~inputs:idle;
    incr steps
  done;
  Bitvec.to_int (Simulator.output sim ~inputs:idle "result")

let root_datapath_exhaustive () =
  let sim = Simulator.create (Rtl_lib.root_datapath ~width:8 ()) in
  for n = 0 to 255 do
    let want = I.Root.isqrt n in
    let got = run_root sim n in
    if got <> want then Alcotest.failf "root(%d) = %d, want %d" n got want
  done

let root_latency_fixed () =
  (* w/2 iterations plus the done cycle *)
  let sim = Simulator.create (Rtl_lib.root_datapath ~width:8 ()) in
  ignore (run_root sim 255);
  (* the start cycle plus one iteration per pair of operand bits *)
  check "cycles" (1 + 4) (Simulator.cycle sim)

(* --- DISTANCE datapath vs behavioural accumulation --- *)

let distance_datapath_matches () =
  let nl = Rtl_lib.distance_datapath () in
  let sim = Simulator.create nl in
  let stream = [ (10, 3); (255, 0); (7, 7); (0, 128) ] in
  Simulator.step sim
    ~inputs:[ ("start", bv 1 1); ("valid", bv 1 0); ("a", bv 8 0); ("b", bv 8 0) ];
  List.iter
    (fun (a, b) ->
      Simulator.step sim
        ~inputs:
          [ ("start", bv 1 0); ("valid", bv 1 1); ("a", bv 8 a); ("b", bv 8 b) ])
    stream;
  let idle =
    [ ("start", bv 1 0); ("valid", bv 1 0); ("a", bv 8 0); ("b", bv 8 0) ]
  in
  let want =
    List.fold_left (fun acc (a, b) -> acc + ((a - b) * (a - b))) 0 stream
    land 0xffff
  in
  check "acc" want (Bitvec.to_int (Simulator.output sim ~inputs:idle "acc"))

let distance_buggy_differs_on_second_vector () =
  (* the seeded bug (no clear on start) shows only on back-to-back use *)
  let run nl =
    let sim = Simulator.create nl in
    let fire a b =
      Simulator.step sim
        ~inputs:
          [ ("start", bv 1 0); ("valid", bv 1 1); ("a", bv 8 a); ("b", bv 8 b) ]
    in
    let start () =
      Simulator.step sim
        ~inputs:
          [ ("start", bv 1 1); ("valid", bv 1 0); ("a", bv 8 0); ("b", bv 8 0) ]
    in
    start (); fire 10 0;
    start (); fire 3 0;
    Bitvec.to_int
      (Simulator.output sim
         ~inputs:
           [ ("start", bv 1 0); ("valid", bv 1 0); ("a", bv 8 0); ("b", bv 8 0) ]
         "acc")
  in
  check "good clears" 9 (run (Rtl_lib.distance_datapath ()));
  check "buggy accumulates" 109 (run (Rtl_lib.distance_datapath_buggy ()))

(* --- Unroll: SAT encoding agrees with the simulator --- *)

let unroll_agrees_with_simulator () =
  let nl = Rtl_lib.fifo_ctrl ~addr_width:2 () in
  let stimulus =
    List.init 10 (fun i ->
        [ ("push", bv 1 (if i mod 3 <> 2 then 1 else 0));
          ("pop", bv 1 (if i mod 4 = 3 then 1 else 0)) ])
  in
  (* simulate *)
  let sim = Simulator.create nl in
  let counts =
    List.map
      (fun inputs ->
        let c = Bitvec.to_int (Simulator.output sim ~inputs "count") in
        Simulator.step sim ~inputs;
        c)
      stimulus
  in
  (* encode the same stimulus *)
  let solver = Symbad_sat.Solver.create 0 in
  let u = Unroll.create solver nl in
  Unroll.unroll_to u (List.length stimulus);
  List.iteri
    (fun i inputs ->
      List.iter
        (fun (n, v) ->
          let e =
            Expr.eq (Expr.input n)
              (Expr.const ~width:(Bitvec.width v) (Bitvec.to_int v))
          in
          Symbad_sat.Solver.add_clause solver [ Unroll.bool_lit u i e ])
        inputs)
    stimulus;
  (match Symbad_sat.Solver.solve solver with
  | Symbad_sat.Solver.Sat ->
      List.iteri
        (fun i want ->
          check (Printf.sprintf "frame %d" i) want
            (Unroll.reg_value solver u i "count"))
        counts
  | Symbad_sat.Solver.Unsat | Symbad_sat.Solver.Unknown ->
      Alcotest.fail "stimulus must be satisfiable")

let unroll_multiplication () =
  (* solve x * x == 49 over 8 bits: x in {7, 249, ...}; check the model *)
  let nl =
    Netlist.make ~name:"sq" ~inputs:[ ("x", 8) ] ~registers:[]
      ~outputs:[ ("y", Expr.mul (Expr.input "x") (Expr.input "x")) ]
  in
  let solver = Symbad_sat.Solver.create 0 in
  let u = Unroll.create solver nl in
  let goal =
    Expr.eq (Expr.mul (Expr.input "x") (Expr.input "x")) (Expr.const ~width:8 49)
  in
  Symbad_sat.Solver.add_clause solver [ Unroll.bool_lit u 0 goal ];
  match Symbad_sat.Solver.solve solver with
  | Symbad_sat.Solver.Sat ->
      let x = Unroll.input_value solver u 0 "x" in
      check "x*x mod 256" 49 (x * x mod 256)
  | Symbad_sat.Solver.Unsat | Symbad_sat.Solver.Unknown ->
      Alcotest.fail "expected solution"

(* qcheck: word-level eval of random expressions agrees with bit-blasted
   SAT evaluation under forced inputs. *)
let gen_expr_inputs =
  QCheck.Gen.(
    let* a = int_bound 255 in
    let* b = int_bound 255 in
    let* op = int_bound 6 in
    return (a, b, op))

let qcheck_blast_matches_eval =
  QCheck.Test.make ~name:"bit-blasting agrees with evaluation" ~count:150
    (QCheck.make gen_expr_inputs)
    (fun (a, b, op) ->
      let build x y =
        match op with
        | 0 -> Expr.add x y
        | 1 -> Expr.sub x y
        | 2 -> Expr.mul x y
        | 3 -> Expr.and_ x y
        | 4 -> Expr.or_ x y
        | 5 -> Expr.xor x y
        | _ -> Expr.mux (Expr.ult x y) (Expr.add x y) (Expr.sub x y)
      in
      let nl =
        Netlist.make ~name:"t" ~inputs:[ ("a", 8); ("b", 8) ] ~registers:[]
          ~outputs:[ ("o", build (Expr.input "a") (Expr.input "b")) ]
      in
      let want =
        Bitvec.to_int
          (Expr.eval
             ~input:(fun n -> if n = "a" then bv 8 a else bv 8 b)
             ~reg:(fun _ -> assert false)
             (build (Expr.input "a") (Expr.input "b")))
      in
      let solver = Symbad_sat.Solver.create 0 in
      let u = Unroll.create solver nl in
      List.iter
        (fun (n, v) ->
          Symbad_sat.Solver.add_clause solver
            [ Unroll.bool_lit u 0 (Expr.eq (Expr.input n) (Expr.const ~width:8 v)) ])
        [ ("a", a); ("b", b) ];
      match Symbad_sat.Solver.solve solver with
      | Symbad_sat.Solver.Sat ->
          let bits =
            Unroll.expr_lits u 0 (build (Expr.input "a") (Expr.input "b"))
          in
          Unroll.bits_value solver bits = want
      | Symbad_sat.Solver.Unsat | Symbad_sat.Solver.Unknown -> false)

(* --- New IP datapaths vs the reference image library --- *)

let sobel_window_matches_reference () =
  let nl = Rtl_lib.sobel_window_datapath () in
  let sim = Simulator.create nl in
  let rng = I.Rng.create 11 in
  for _ = 1 to 200 do
    let window = Array.init 9 (fun _ -> I.Rng.int rng 256) in
    (* reference: a 3x3 image evaluated at its centre *)
    let img = I.Image.create ~width:3 ~height:3 in
    Array.iteri (fun i v -> I.Image.set img (i mod 3) (i / 3) v) window;
    let want = I.Edge.sobel_at img 1 1 in
    let inputs =
      Array.to_list
        (Array.mapi (fun i v -> (Printf.sprintf "p%d" i, bv 8 v)) window)
    in
    let got = Bitvec.to_int (Simulator.output sim ~inputs "magnitude") in
    if got <> want then
      Alcotest.failf "sobel window: got %d want %d" got want
  done

let min9_matches_reference () =
  let nl = Rtl_lib.min9_datapath () in
  let sim = Simulator.create nl in
  let rng = I.Rng.create 13 in
  for _ = 1 to 200 do
    let window = Array.init 9 (fun _ -> I.Rng.int rng 256) in
    let want = Array.fold_left min 255 window in
    let inputs =
      Array.to_list
        (Array.mapi (fun i v -> (Printf.sprintf "p%d" i, bv 8 v)) window)
    in
    let got = Bitvec.to_int (Simulator.output sim ~inputs "minimum") in
    if got <> want then Alcotest.failf "min9: got %d want %d" got want
  done

let argmin_streams_correctly () =
  let nl = Rtl_lib.argmin_datapath () in
  let sim = Simulator.create nl in
  let run candidates =
    Simulator.step sim
      ~inputs:[ ("start", bv 1 1); ("valid", bv 1 0); ("d", bv 10 0) ];
    List.iter
      (fun d ->
        Simulator.step sim
          ~inputs:[ ("start", bv 1 0); ("valid", bv 1 1); ("d", bv 10 d) ])
      candidates;
    let idle = [ ("start", bv 1 0); ("valid", bv 1 0); ("d", bv 10 0) ] in
    ( Bitvec.to_int (Simulator.output sim ~inputs:idle "best_idx"),
      Bitvec.to_int (Simulator.output sim ~inputs:idle "best") )
  in
  let idx, best = run [ 900; 30; 500; 30; 77 ] in
  check "argmin index (first minimum wins)" 1 idx;
  check "minimum value" 30 best;
  (* back-to-back runs are independent (start clears) *)
  let idx2, best2 = run [ 5; 10 ] in
  check "second run index" 0 idx2;
  check "second run value" 5 best2

let argmin_properties_prove () =
  let nl = Rtl_lib.argmin_datapath () in
  let module P = Symbad_mc.Prop in
  let module En = Symbad_mc.Engine in
  let start = Expr.input "start" and valid = Expr.input "valid" in
  let d = Expr.input "d" in
  let best = Expr.reg "best" in
  let props =
    [
      P.make_step ~name:"start_resets_best"
        (P.implies start
           (Expr.eq (P.next best) (Expr.const ~width:10 1023)));
      P.make_step ~name:"best_monotone"
        (P.implies (Expr.not_ start) (Expr.ule (P.next best) best));
      P.make_step ~name:"better_candidate_wins"
        (P.implies
           (Expr.and_ (Expr.not_ start) (Expr.and_ valid (Expr.ult d best)))
           (Expr.eq (P.next best) d));
    ]
  in
  List.iter
    (fun p ->
      match (En.check nl p).En.verdict with
      | En.Proved _ -> ()
      | _ -> Alcotest.failf "%s not proved" (P.name p))
    props

(* --- RTL back-end co-simulation -------------------------------------
   The recognition back end in silicon: for each database entry the
   DISTANCE datapath accumulates the squared difference, the ROOT
   datapath extracts the integer square root, and the ARGMIN FSM tracks
   the winner.  The chained cycle-level simulation must agree with the
   behavioural recogniser entry for entry. *)

let rtl_backend_recognises () =
  let db =
    [| [| 3; 7; 1; 9 |]; [| 3; 8; 1; 9 |]; [| 15; 0; 15; 0 |]; [| 5; 5; 5; 5 |] |]
  in
  let probe = [| 4; 7; 2; 9 |] in
  (* behavioural reference *)
  let want_dists =
    Array.map (fun e -> I.Root.isqrt (I.Distance.squared probe e)) db
  in
  let want_idx =
    let best = ref 0 in
    Array.iteri (fun i d -> if d < want_dists.(!best) then best := i) want_dists;
    !best
  in
  (* RTL: distance at 12-bit accumulator, root at 12 bits, argmin at 10 *)
  let dist_sim = Simulator.create (Rtl_lib.distance_datapath ~acc_width:12 ()) in
  let root_sim = Simulator.create (Rtl_lib.root_datapath ~width:12 ()) in
  let argmin_sim = Simulator.create (Rtl_lib.argmin_datapath ()) in
  Simulator.step argmin_sim
    ~inputs:[ ("start", bv 1 1); ("valid", bv 1 0); ("d", bv 10 0) ];
  Array.iteri
    (fun i entry ->
      (* stream one entry through DISTANCE *)
      Simulator.step dist_sim
        ~inputs:
          [ ("start", bv 1 1); ("valid", bv 1 0); ("a", bv 8 0); ("b", bv 8 0) ];
      Array.iteri
        (fun j a ->
          Simulator.step dist_sim
            ~inputs:
              [ ("start", bv 1 0); ("valid", bv 1 1); ("a", bv 8 a);
                ("b", bv 8 entry.(j)) ])
        probe;
      let idle_d =
        [ ("start", bv 1 0); ("valid", bv 1 0); ("a", bv 8 0); ("b", bv 8 0) ]
      in
      let d2 = Bitvec.to_int (Simulator.output dist_sim ~inputs:idle_d "acc") in
      (* square root in the ROOT datapath *)
      Simulator.reset root_sim;
      Simulator.step root_sim ~inputs:[ ("start", bv 1 1); ("n", bv 12 d2) ];
      let idle_r = [ ("start", bv 1 0); ("n", bv 12 0) ] in
      let guard = ref 0 in
      while
        Bitvec.to_int (Simulator.output root_sim ~inputs:idle_r "done") = 0
        && !guard < 20
      do
        Simulator.step root_sim ~inputs:idle_r;
        incr guard
      done;
      let d = Bitvec.to_int (Simulator.output root_sim ~inputs:idle_r "result") in
      check (Printf.sprintf "entry %d distance" i) want_dists.(i) d;
      (* feed the winner FSM *)
      Simulator.step argmin_sim
        ~inputs:[ ("start", bv 1 0); ("valid", bv 1 1); ("d", bv 10 d) ])
    db;
  let idle_w = [ ("start", bv 1 0); ("valid", bv 1 0); ("d", bv 10 0) ] in
  check "RTL winner = behavioural winner" want_idx
    (Bitvec.to_int (Simulator.output argmin_sim ~inputs:idle_w "best_idx"))

(* --- Synth (behavioural-synthesis front end) --- *)

let sq_diff_dataflow =
  {
    Synth.df_name = "sq_diff";
    df_inputs = [ ("a", 4); ("b", 4) ];
    df_defs =
      [
        ("ax", Expr.concat (Expr.const ~width:4 0) (Expr.input "a"));
        ("bx", Expr.concat (Expr.const ~width:4 0) (Expr.input "b"));
        ("d", Expr.sub (Expr.reg "ax") (Expr.reg "bx"));
        ("sq", Expr.mul (Expr.reg "d") (Expr.reg "d"));
      ];
    df_outputs = [ ("y", "sq"); ("echo", "a") ];
  }

let synth_combinational_equivalence () =
  let nl = Synth.combinational sq_diff_dataflow in
  let oracle env =
    let a = List.assoc "a" env and b = List.assoc "b" env in
    [ ("y", (a - b) * (a - b) land 0xff); ("echo", a) ]
  in
  match Synth.equivalent_to_oracle nl oracle with
  | Some true -> ()
  | Some false -> Alcotest.fail "synthesised netlist differs from oracle"
  | None -> Alcotest.fail "input space should be enumerable"

let synth_registered_latency () =
  let nl = Synth.registered sq_diff_dataflow in
  let sim = Simulator.create nl in
  let inputs = [ ("a", bv 4 7); ("b", bv 4 2) ] in
  let idle = [ ("a", bv 4 0); ("b", bv 4 0) ] in
  Simulator.step sim ~inputs;
  (* after one edge only the input registers hold the operands *)
  Simulator.step sim ~inputs:idle;
  (* after two edges the result register carries (7-2)^2 = 25 *)
  check "two-cycle latency" 25
    (Bitvec.to_int (Simulator.output sim ~inputs:idle "y"))

let synth_rejects_unknown_refs () =
  check_bool "unknown def" true
    (try
       ignore
         (Synth.combinational
            { Synth.df_name = "bad"; df_inputs = [ ("x", 4) ];
              df_defs = [ ("d", Expr.reg "nothere") ];
              df_outputs = [ ("y", "d") ] });
       false
     with Invalid_argument _ -> true);
  check_bool "unknown output source" true
    (try
       ignore
         (Synth.combinational
            { Synth.df_name = "bad"; df_inputs = [ ("x", 4) ];
              df_defs = []; df_outputs = [ ("y", "ghost") ] });
       false
     with Invalid_argument _ -> true)

let qcheck_synth_registered_matches_combinational =
  QCheck.Test.make ~name:"registered synthesis = delayed combinational"
    ~count:100
    QCheck.(pair (int_bound 15) (int_bound 15))
    (fun (a, b) ->
      let comb = Synth.combinational sq_diff_dataflow in
      let reg = Synth.registered sq_diff_dataflow in
      let inputs = [ ("a", bv 4 a); ("b", bv 4 b) ] in
      let idle = [ ("a", bv 4 0); ("b", bv 4 0) ] in
      let sim_c = Simulator.create comb in
      let want = Bitvec.to_int (Simulator.output sim_c ~inputs "y") in
      let sim_r = Simulator.create reg in
      Simulator.step sim_r ~inputs;
      Simulator.step sim_r ~inputs:idle;
      Bitvec.to_int (Simulator.output sim_r ~inputs:idle "y") = want)

(* --- VCD --- *)

let vcd_structure () =
  let nl = Rtl_lib.counter ~width:4 in
  let stim =
    List.init 3 (fun _ -> [ ("enable", bv 1 1); ("clear", bv 1 0) ])
  in
  let text = Vcd.of_simulation nl stim in
  let contains needle =
    let nl_ = String.length needle and tl = String.length text in
    let rec go i = i + nl_ <= tl && (String.sub text i nl_ = needle || go (i + 1)) in
    go 0
  in
  check_bool "timescale" true (contains "$timescale 10ns $end");
  check_bool "var enable" true (contains "enable $end");
  check_bool "var count" true (contains "$var wire 4");
  check_bool "module scope" true (contains "$scope module counter4");
  check_bool "initial count" true (contains "b0000");
  check_bool "count change" true (contains "b0001");
  check_bool "time marks" true (contains "#20")

let vcd_change_only_dumps () =
  (* constant inputs appear once, not per cycle *)
  let nl = Rtl_lib.counter ~width:4 in
  let stim =
    List.init 4 (fun _ -> [ ("enable", bv 1 0); ("clear", bv 1 0) ])
  in
  let text = Vcd.of_simulation nl stim in
  let occurrences needle =
    let nl_ = String.length needle and tl = String.length text in
    let rec go i acc =
      if i + nl_ > tl then acc
      else go (i + 1) (if String.sub text i nl_ = needle then acc + 1 else acc)
    in
    go 0 0
  in
  (* the count register never changes: only the initial b0000 dump *)
  check "count dumped once" 1 (occurrences "b0000")

let suite =
  [
    Alcotest.test_case "bitvec wraparound" `Quick bitvec_wraparound;
    Alcotest.test_case "bitvec bit ops" `Quick bitvec_bit_ops;
    Alcotest.test_case "bitvec slice/concat" `Quick bitvec_slice_concat;
    Alcotest.test_case "bitvec input validation" `Quick bitvec_rejects;
    Alcotest.test_case "expr width checking" `Quick expr_widths;
    Alcotest.test_case "expr evaluation" `Quick expr_eval;
    Alcotest.test_case "netlist validation" `Quick netlist_validation;
    Alcotest.test_case "netlist area model" `Quick netlist_area_positive;
    Alcotest.test_case "simulator: counter" `Quick simulator_counter;
    Alcotest.test_case "simulator: counter wraps" `Quick simulator_counter_wraps;
    Alcotest.test_case "simulator: at_max flag" `Quick simulator_at_max_flag;
    Alcotest.test_case "tmr triplicate structure" `Quick
      tmr_triplicate_structure;
    Alcotest.test_case "tmr transparent without faults" `Quick
      tmr_transparent_without_faults;
    Alcotest.test_case "ROOT datapath exhaustive (8-bit)" `Quick
      root_datapath_exhaustive;
    Alcotest.test_case "ROOT latency fixed" `Quick root_latency_fixed;
    Alcotest.test_case "DISTANCE datapath matches" `Quick
      distance_datapath_matches;
    Alcotest.test_case "DISTANCE seeded bug needs 2nd vector" `Quick
      distance_buggy_differs_on_second_vector;
    Alcotest.test_case "unroll agrees with simulator" `Quick
      unroll_agrees_with_simulator;
    Alcotest.test_case "unroll multiplication" `Quick unroll_multiplication;
    Alcotest.test_case "RTL back-end recognises (co-simulation)" `Quick
      rtl_backend_recognises;
    Alcotest.test_case "sobel window vs reference" `Quick
      sobel_window_matches_reference;
    Alcotest.test_case "min9 vs reference" `Quick min9_matches_reference;
    Alcotest.test_case "argmin streams correctly" `Quick
      argmin_streams_correctly;
    Alcotest.test_case "argmin properties prove" `Quick argmin_properties_prove;
    Alcotest.test_case "synth: combinational equivalence" `Quick
      synth_combinational_equivalence;
    Alcotest.test_case "synth: registered latency" `Quick
      synth_registered_latency;
    Alcotest.test_case "synth: rejects unknown refs" `Quick
      synth_rejects_unknown_refs;
    QCheck_alcotest.to_alcotest qcheck_synth_registered_matches_combinational;
    Alcotest.test_case "vcd structure" `Quick vcd_structure;
    Alcotest.test_case "vcd change-only dumps" `Quick vcd_change_only_dumps;
    QCheck_alcotest.to_alcotest qcheck_blast_matches_eval;
  ]
