let () =
  Alcotest.run "symbad"
    [
      ("sim", Test_sim.suite);
      ("tlm", Test_tlm.suite);
      ("fpga", Test_fpga.suite);
      ("image", Test_image.suite);
      ("sat", Test_sat.suite);
      ("hdl", Test_hdl.suite);
      ("lpv", Test_lpv.suite);
      ("mc", Test_mc.suite);
      ("pcc", Test_pcc.suite);
      ("symbc", Test_symbc.suite);
      ("atpg", Test_atpg.suite);
      ("core", Test_core.suite);
      ("obs", Test_obs.suite);
      ("par", Test_par.suite);
      ("gov", Test_gov.suite);
      ("resil", Test_resil.suite);
      ("lint", Test_lint.suite);
      ("report", Test_report.suite);
      ("cache", Test_cache.suite);
    ]
