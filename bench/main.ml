(* The experiment harness: regenerates every figure and quantitative
   claim of the paper's evaluation (see DESIGN.md section 4 for the
   experiment index and EXPERIMENTS.md for recorded results), then runs
   one Bechamel micro-benchmark per experiment.

   Usage:  dune exec bench/main.exe            (everything)
           dune exec bench/main.exe -- tables  (only the tables)
           dune exec bench/main.exe -- micro   (only the micro-benches)
           dune exec bench/main.exe -- guard   (telemetry smoke guard) *)

open Symbad_core
module Sim = Symbad_sim
module I = Symbad_image

let section id title =
  Format.printf "@.=== %s: %s ===@." id title

let host_time f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

(* Shared setup: the case-study application at two scales. *)
let workload = Face_app.default_workload
let graph = Face_app.graph workload
let reference = Face_app.reference_trace workload
let level1_result = Level1.run graph
let profile = level1_result.Level1.profile
let mapping2 = Face_app.level2_mapping ~profile graph
let mapping3 = Mapping.refine_to_fpga mapping2 Face_app.level3_refinement

let bus_period = Level2.default_config.Level2.bus_period_ns

(* ---------------------------------------------------------------- *)
(* F1: Figure 1 — the full four-level flow with all verifications.   *)

let f1_flow () =
  section "F1" "the Symbad flow end to end (Figure 1)";
  let report, secs = host_time (fun () -> Flow.run ~workload ()) in
  Format.printf "%a" Flow.pp report;
  Format.printf "flow host time: %.1fs@." secs

(* ---------------------------------------------------------------- *)
(* F2: Figure 2 — the face recognition system and its quality.       *)

let f2_recognition () =
  section "F2" "face recognition quality (Figure 2 system)";
  let db = I.Pipeline.enroll ~size:workload.Face_app.size
      ~identities:workload.Face_app.identities () in
  Format.printf "%-8s %-10s %-10s@." "poses" "accuracy" "margin";
  List.iter
    (fun poses ->
      let r = I.Metrics.evaluate ~size:workload.Face_app.size ~poses db in
      Format.printf "%-8d %-10.1f %-10.1f@." poses (100. *. r.I.Metrics.accuracy)
        r.I.Metrics.mean_margin)
    [ 1; 3; 5 ];
  (* and the trace-comparison verification of the system model *)
  let mism =
    Sim.Trace.compare_data ~reference ~actual:level1_result.Level1.trace
  in
  Format.printf "level-1 model vs C reference model: %d mismatches over %d streams@."
    (List.length mism)
    (List.length (Sim.Trace.sources reference))

(* ---------------------------------------------------------------- *)
(* E1-E3: simulation speed per refinement level.                     *)

let speed_table () =
  section "E1-E3" "simulation speed per level (paper: <15s / ~200kHz / ~30kHz)";
  (* a longer run than the flow default, for stable host timings *)
  let w =
    { Face_app.default_workload with
      Face_app.frames = List.init 24 (fun i -> (i * 2 mod 20, 1 + (i mod 4))) }
  in
  let g = Face_app.graph w in
  let l1, t1 = host_time (fun () -> Level1.run g) in
  let m2 = Face_app.level2_mapping ~profile:l1.Level1.profile g in
  let m3 = Mapping.refine_to_fpga m2 Face_app.level3_refinement in
  let l2, t2 = host_time (fun () -> Level2.run g m2) in
  let l3, t3 = host_time (fun () -> Level3.run g m3) in
  let khz2 = Level2.simulation_speed_khz ~bus_period_ns:bus_period l2 in
  let khz3 = Level3.simulation_speed_khz ~bus_period_ns:bus_period l3 in
  let ev2 = l2.Level2.kernel_stats.Sim.Kernel.events in
  let ev3 = l3.Level3.kernel_stats.Sim.Kernel.events in
  Format.printf "%-28s %-8s %-12s %-13s %-10s@." "level" "host s" "sim latency"
    "sim speed" "events";
  Format.printf "%-28s %-8.3f %-12s %-13s %-10d@." "1 untimed functional" t1
    "-" "-" l1.Level1.kernel_stats.Sim.Kernel.events;
  Format.printf "%-28s %-8.3f %-12d %-9.0f kHz %-10d@."
    "2 timed TL (CPU+AMBA)" t2 l2.Level2.latency_ns khz2 ev2;
  Format.printf "%-28s %-8.3f %-12d %-9.0f kHz %-10d@."
    "3 TL + reconfiguration" t3 l3.Level3.latency_ns khz3 ev3;
  Format.printf
    "shape checks: reconfiguration modelling multiplies simulation events by \
     %.0fx@."
    (float_of_int ev3 /. float_of_int ev2);
  Format.printf
    "  (the paper's 200kHz -> 30kHz drop is this event blow-up on their \
     testbed; on this host@.   the kernel absorbs it, leaving a %.2fx speed \
     drop and a %.2fx latency overhead, %dB of bitstream traffic)@."
    (khz2 /. khz3)
    (float_of_int l3.Level3.latency_ns /. float_of_int l2.Level2.latency_ns)
    l3.Level3.bus_report.Symbad_tlm.Bus.bitstream_bytes

(* ---------------------------------------------------------------- *)
(* E4: ATPG coverage — engines head to head.                         *)

let e4_atpg () =
  section "E4" "ATPG coverage: random vs genetic vs SAT (Laerte++)";
  Format.printf "%-10s %-8s %6s %7s %7s %7s %7s %7s@." "model" "engine"
    "tests" "stmt%" "branch%" "cond%" "bit%" "fault%";
  List.iter
    (fun m ->
      List.iter
        (fun (e : Symbad_atpg.Testbench.evaluation) ->
          let c = e.Symbad_atpg.Testbench.coverage in
          Format.printf "%-10s %-8s %6d %7.1f %7.1f %7.1f %7.1f %7.1f@."
            e.Symbad_atpg.Testbench.model e.Symbad_atpg.Testbench.engine
            e.Symbad_atpg.Testbench.tests
            (100. *. c.Symbad_atpg.Coverage.statement)
            (100. *. c.Symbad_atpg.Coverage.branch_)
            (100. *. c.Symbad_atpg.Coverage.condition)
            (100. *. c.Symbad_atpg.Coverage.bit)
            (100. *. e.Symbad_atpg.Testbench.fault_coverage))
        (Symbad_atpg.Testbench.compare_engines ~budget:48 m))
    (Symbad_atpg.Models.all ());
  (* the formal engine on the RTL views *)
  List.iter
    (fun (name, nl) ->
      let r, secs = host_time (fun () -> Symbad_atpg.Sat_engine.generate nl) in
      Format.printf "%-10s %-8s -> %a (%.2fs)@." name "sat"
        Symbad_atpg.Sat_engine.pp_report r secs)
    [
      ("DISTANCE", Symbad_hdl.Rtl_lib.distance_datapath ());
      ("FIFO", Symbad_hdl.Rtl_lib.fifo_ctrl ~addr_width:3 ());
      ("WRAPPER", Symbad_hdl.Rtl_lib.handshake_wrapper ());
    ]

(* ---------------------------------------------------------------- *)
(* E5: LPV deadlock hunting.                                         *)

let e5_lpv_deadlock () =
  section "E5" "LPV deadlock freeness (level 1)";
  let correct, secs = host_time (fun () -> Lpv_bridge.check_deadlock graph) in
  Format.printf "%-34s %a (%.4fs)@." "face recognition (correct)"
    Symbad_lpv.Deadlock.pp_verdict correct secs;
  let buggy, secs =
    host_time (fun () ->
        Lpv_bridge.check_deadlock
          ~extra_channels:[ ("ack", "WINNER", "CAMERA", 0) ]
          graph)
  in
  Format.printf "%-34s %a (%.4fs)@." "seeded unprimed feedback loop"
    Symbad_lpv.Deadlock.pp_verdict buggy secs;
  let fixed, _ =
    host_time (fun () ->
        Lpv_bridge.check_deadlock
          ~extra_channels:[ ("ack", "WINNER", "CAMERA", 1) ]
          graph)
  in
  Format.printf "%-34s %a@." "same loop primed with one token"
    Symbad_lpv.Deadlock.pp_verdict fixed

(* ---------------------------------------------------------------- *)
(* E6: LPV real-time properties.                                     *)

let e6_lpv_timing () =
  section "E6" "LPV timing: deadline achievement and FIFO dimensioning";
  let timing = Lpv_bridge.default_timing in
  Format.printf "%-10s %-18s@." "capacity" "min period (ns)";
  List.iter
    (fun cap ->
      let net = Lpv_bridge.net_of ~capacity:cap ~timing ~mapping:mapping2 ~profile graph in
      match Symbad_lpv.Timing.min_cycle_ratio net with
      | Symbad_lpv.Timing.Period p ->
          Format.printf "%-10d %-18.0f@." cap (Symbad_lpv.Rat.to_float p)
      | Symbad_lpv.Timing.Unschedulable why
      | Symbad_lpv.Timing.Not_analyzable why ->
          Format.printf "%-10d unschedulable (%s)@." cap why)
    [ 1; 2; 4; 8 ];
  List.iter
    (fun deadline_ns ->
      let _, met =
        Lpv_bridge.check_deadline ~deadline_ns ~timing ~mapping:mapping2
          ~profile graph
      in
      let dim =
        Lpv_bridge.dimension_fifos ~deadline_ns ~timing ~mapping:mapping2
          ~profile graph
      in
      Format.printf
        "deadline %8dns: met at capacity 2 = %-5b  minimal capacity = %s@."
        deadline_ns met
        (match dim with Some c -> string_of_int c | None -> "none"))
    [ 2_000_000; 1_000_000; 600_000 ]

(* ---------------------------------------------------------------- *)
(* E7: SymbC consistency.                                            *)

let e7_symbc () =
  section "E7" "SymbC reconfiguration consistency (level 3)";
  let l3 = Level3.run graph mapping3 in
  let verdict, secs =
    host_time (fun () ->
        Symbad_symbc.Check.check l3.Level3.config_info
          l3.Level3.instrumented_sw)
  in
  Format.printf "generated SW:        %a (%.4fs)@."
    Symbad_symbc.Check.pp_verdict verdict secs;
  let schedule =
    List.filter_map
      (fun (t : Task_graph.task) ->
        match Mapping.target_of mapping3 t.Task_graph.name with
        | Mapping.Sw | Mapping.Fpga _ -> Some t.Task_graph.name
        | Mapping.Hw -> None)
      (Task_graph.topological_order graph)
  in
  let buggy =
    Level3.instrumented_program ~omit_load_for:[ "ROOT" ] schedule mapping3
  in
  let verdict, secs =
    host_time (fun () ->
        Symbad_symbc.Check.check l3.Level3.config_info buggy)
  in
  Format.printf "SW missing one load: %a (%.4fs)@."
    Symbad_symbc.Check.pp_verdict verdict secs;
  (* the abstract-interpretation engine agrees with the product check *)
  Format.printf "absint cross-check:  good %a / buggy %a@."
    Symbad_symbc.Absint.pp_verdict
    (Symbad_symbc.Absint.analyze l3.Level3.config_info
       l3.Level3.instrumented_sw)
    Symbad_symbc.Absint.pp_verdict
    (Symbad_symbc.Absint.analyze l3.Level3.config_info buggy)

(* ---------------------------------------------------------------- *)
(* E8: model checking + property coverage.                           *)

(* The FIFO-controller property plans of the E8 refinement story; the
   refined plan is also the PCC load of the parallel-speedup bench. *)
let fifo_property_plans fifo =
  let module E = Symbad_hdl.Expr in
  let module P = Symbad_mc.Prop in
  let weak =
    [ P.make ~name:"not_full_and_empty"
        (E.not_ (E.and_ (P.output fifo "full") (P.output fifo "empty"))) ]
  in
  let push_ok = E.and_ (E.input "push") (E.not_ (P.output fifo "full")) in
  let pop_ok = E.and_ (E.input "pop") (E.not_ (P.output fifo "empty")) in
  let delta = E.sub (P.next (E.reg "count")) (E.reg "count") in
  let strong =
    weak
    @ [
        P.make ~name:"count_le_depth" (E.ule (E.reg "count") (E.const ~width:3 4));
        P.make_step ~name:"push_increments"
          (P.implies (E.and_ push_ok (E.not_ pop_ok))
             (E.eq delta (E.const ~width:3 1)));
        P.make_step ~name:"pop_decrements"
          (P.implies (E.and_ pop_ok (E.not_ push_ok))
             (E.eq delta (E.const ~width:3 7)));
        P.make_step ~name:"idle_holds"
          (P.implies (E.eq push_ok pop_ok) (E.eq delta (E.const ~width:3 0)));
      ]
  in
  (weak, strong)

let e8_mc_pcc () =
  section "E8" "model checking and PCC completeness (level 4)";
  let l4, secs = host_time (fun () -> Level4.run ()) in
  Format.printf "%a" Level4.pp l4;
  Format.printf "level-4 host time: %.1fs@." secs;
  (* the PCC refinement story: initial (weak) plan vs refined plan *)
  let fifo = Symbad_hdl.Rtl_lib.fifo_ctrl ~addr_width:2 () in
  let weak, strong = fifo_property_plans fifo in
  Format.printf "PCC refinement loop on the FIFO controller:@.";
  List.iter
    (fun (label, props) ->
      let r = Symbad_pcc.Pcc.run ~depth:8 fifo props in
      Format.printf "  %-22s %d properties -> %.0f%% of %d detectable faults@."
        label (List.length props)
        (100. *. r.Symbad_pcc.Pcc.coverage)
        r.Symbad_pcc.Pcc.detectable)
    [ ("initial plan", weak); ("refined plan", strong) ]

(* ---------------------------------------------------------------- *)
(* A1: context-partition ablation.                                   *)

let a1_context_ablation () =
  section "A1" "context partition tuning (reconfigurations vs partition)";
  let l3 = Level3.run graph mapping3 in
  let calls = l3.Level3.call_sequence in
  let resources =
    [
      Symbad_fpga.Resource.algorithm ~area:900 "DISTANCE";
      Symbad_fpga.Resource.algorithm ~area:700 "ROOT";
    ]
  in
  Format.printf "dynamic call sequence: %d FPGA invocations@."
    (List.length calls);
  Format.printf "%-34s %8s %10s@." "partition" "reconfs" "bytes";
  List.iter
    (fun (e : Symbad_fpga.Placement.evaluation) ->
      Format.printf "%-34s %8d %10d@."
        (Fmt.str "%a" Symbad_fpga.Placement.pp_partition
           e.Symbad_fpga.Placement.partition)
        e.Symbad_fpga.Placement.reconfigurations
        e.Symbad_fpga.Placement.bitstream_bytes)
    (Symbad_fpga.Placement.sweep ~capacity:1700 ~max_contexts:2 ~calls resources);
  (* and the simulated effect of the two interesting partitions *)
  let split = Level3.run graph mapping3 in
  let merged =
    Level3.run
      ~config:{ Level3.default_config with Level3.fpga_capacity = 2000 }
      graph
      (Mapping.refine_to_fpga mapping2
         [ ("DISTANCE", "config_all"); ("ROOT", "config_all") ])
  in
  Format.printf
    "simulated: split contexts %dns / %d reconfigs;  single context %dns / %d reconfigs@."
    split.Level3.latency_ns
    split.Level3.fpga_stats.Symbad_fpga.Fpga.reconfigurations
    merged.Level3.latency_ns
    merged.Level3.fpga_stats.Symbad_fpga.Fpga.reconfigurations

(* ---------------------------------------------------------------- *)
(* A3: bitstream download granularity (PIO vs DMA ablation).         *)

let a3_download_granularity () =
  section "A3"
    "bitstream download granularity: programmed I/O vs DMA-style bursts";
  Format.printf "%-14s %10s %12s %12s %10s@." "burst bytes" "events"
    "latency ns" "sim kHz" "host s";
  List.iter
    (fun burst ->
      let l3, secs =
        host_time (fun () ->
            Level3.run
              ~config:
                { Level3.default_config with Level3.fpga_burst_bytes = burst }
              graph mapping3)
      in
      Format.printf "%-14d %10d %12d %12.0f %10.3f@." burst
        l3.Level3.kernel_stats.Sim.Kernel.events l3.Level3.latency_ns
        (Level3.simulation_speed_khz ~bus_period_ns:bus_period l3)
        secs)
    [ 4; 8; 64; 512 ];
  Format.printf
    "shape: finer download granularity = more simulation events, slower \
simulation@.and longer reconfiguration — the cost the paper's level 3 pays@."

(* ---------------------------------------------------------------- *)
(* A2: static vs reconfigurable implementation.                      *)

let a2_static_vs_reconfig () =
  section "A2" "static (first implementation) vs reconfigurable flow";
  let task_area = Level3.default_task_area in
  let static =
    Explore.grade_level3
      ~config:{ Level3.default_config with Level3.fpga_capacity = 2000 }
      ~task_area ~label:"static" graph
      (Mapping.refine_to_fpga mapping2
         [ ("DISTANCE", "config_all"); ("ROOT", "config_all") ])
  in
  let reconf = Explore.grade_level3 ~task_area ~label:"reconfig" graph mapping3 in
  Format.printf "%a@.%a@." Explore.pp_grade static Explore.pp_grade reconf;
  Format.printf
    "shape: static faster (%.2fx) but larger (+%.0f%% area); reconfigurable \
     trades latency for silicon@."
    (float_of_int reconf.Explore.latency_ns /. float_of_int static.Explore.latency_ns)
    (100.
    *. (float_of_int (static.Explore.area - reconf.Explore.area)
       /. float_of_int reconf.Explore.area));
  (* the architecture-exploration sweep behind the choice *)
  Format.printf "@.HW-set sweep (level 2):@.";
  List.iter
    (fun g -> Format.printf "  %a@." Explore.pp_grade g)
    (Explore.sweep_hw_sets ~task_area ~profile ~pinned_sw:Face_app.pinned_sw
       ~max_hw:6 graph)

(* ---------------------------------------------------------------- *)
(* PAR: the parallel verification-job engine — wall-clock speedup of  *)
(* the fan-outs at jobs=4 over jobs=1, with the results cross-checked *)
(* for identity.  `dune exec bench/main.exe -- par_speedup [FILE]`    *)
(* also writes the figures as JSON (the committed BENCH_par.json      *)
(* baseline).                                                         *)

let par_speedup out =
  let module Par = Symbad_par.Par in
  let module Json = Symbad_obs.Json in
  section "PAR" "parallel verification speedup (wall clock, jobs=1 vs jobs=4)";
  (* Sys.time is CPU time summed over all domains; speedup needs wall
     clock. *)
  let wall_time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let measure name run =
    let seq, t1 = wall_time (fun () -> Par.with_pool ~jobs:1 run) in
    let par, t4 = wall_time (fun () -> Par.with_pool ~jobs:4 run) in
    let identical = seq = par in
    let speedup = t1 /. t4 in
    Format.printf "%-28s jobs=1 %7.2fs   jobs=4 %7.2fs   speedup %.2fx   %s@."
      name t1 t4 speedup
      (if identical then "identical results" else "RESULTS DIFFER");
    ( name,
      Json.Obj
        [
          ("seconds_jobs1", Json.Float t1);
          ("seconds_jobs4", Json.Float t4);
          ("speedup", Json.Float speedup);
          ("identical", Json.Bool identical);
        ] )
  in
  let cores = Domain.recommended_domain_count () in
  Format.printf "host cores: %d%s@." cores
    (if cores < 4 then
       " (jobs=4 oversubscribes; expect overhead, not speedup — the \
        identity check is the meaningful result here)"
     else "");
  let fifo = Symbad_hdl.Rtl_lib.fifo_ctrl ~addr_width:2 () in
  let _, strong = fifo_property_plans fifo in
  let rows =
    [
      (* one SAT job per fault: the flagship fan-out *)
      measure "pcc_fifo_refined_plan" (fun pool ->
          Symbad_pcc.Pcc.run ~pool ~depth:8 fifo strong);
      (* the whole level-4 portfolio: MC windows + per-module PCC *)
      measure "level4_rtl_verification" (fun pool -> Level4.run ~pool ());
      (* the architecture-exploration sweep *)
      measure "explore_hw_set_sweep" (fun pool ->
          Explore.sweep_hw_sets ~pool ~task_area:Level3.default_task_area
            ~profile ~pinned_sw:Face_app.pinned_sw ~max_hw:6 graph);
    ]
  in
  let json =
    Json.to_string (Json.Obj (("host_cores", Json.Int cores) :: rows))
  in
  match out with
  | Some path ->
      let oc = open_out path in
      output_string oc json;
      output_string oc "\n";
      close_out oc;
      Format.printf "baseline written to %s@." path
  | None -> Format.printf "%s@." json

(* ---------------------------------------------------------------- *)
(* INC: incremental sessions + the content-addressed verdict cache —  *)
(* what a warm cache buys on the level-4 portfolio.                   *)
(* `dune exec bench/main.exe -- inc [FILE]` writes the figures as     *)
(* JSON (the committed BENCH_inc.json baseline; host seconds are      *)
(* informative, the all_cached/identical flags are the checked part). *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then (
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path)
    else Sys.remove path

let inc out =
  let module Json = Symbad_obs.Json in
  let module Cache = Symbad_cache.Cache in
  section "INC" "incremental verification: cold vs warm verdict cache (level 4)";
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "symbad_bench_inc_%d" (Unix.getpid ()))
  in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let cache = Cache.create ~dir () in
  let cold, cold_s = wall (fun () -> Level4.run ~cache ()) in
  let warm, warm_s = wall (fun () -> Level4.run ~cache ()) in
  (* warm must reproduce the cold verdicts exactly, modulo the cached
     marker and host timing *)
  let norm (r : Level4.result) =
    List.map
      (fun m ->
        ( m.Level4.module_name,
          List.map
            (fun v -> { v with Verdict.cached = false; Verdict.host_seconds = 0. })
            (Level4.module_verdicts m) ))
      r.Level4.modules
  in
  let identical = norm cold = norm warm in
  let all_cached = Level4.all_cached warm in
  Format.printf
    "level4 cold %7.2fs (%d stored)   warm %7.2fs (%d hits)   speedup %.0fx   \
     %s%s@."
    cold_s (Cache.stores cache) warm_s (Cache.hits cache)
    (cold_s /. Float.max warm_s 1e-9)
    (if all_cached then "all cached" else "NOT ALL CACHED")
    (if identical then ", identical verdicts" else ", VERDICTS DIFFER");
  let json =
    Json.to_string
      (Json.Obj
         [
           ( "level4_cold",
             Json.Obj
               [
                 ("seconds", Json.Float cold_s);
                 ("stores", Json.Int (Cache.stores cache));
               ] );
           ( "level4_warm",
             Json.Obj
               [
                 ("seconds", Json.Float warm_s);
                 ("hits", Json.Int (Cache.hits cache));
                 ("all_cached", Json.Bool all_cached);
                 ("identical", Json.Bool identical);
               ] );
           ("speedup_warm", Json.Float (cold_s /. Float.max warm_s 1e-9));
         ])
  in
  match out with
  | Some path ->
      let oc = open_out path in
      output_string oc json;
      output_string oc "\n";
      close_out oc;
      Format.printf "baseline written to %s@." path
  | None -> Format.printf "%s@." json

(* ---------------------------------------------------------------- *)
(* GOV: resource-governed verification — what a deadline buys.        *)
(* Sweeps the flow under shrinking budgets and reports how run time   *)
(* and verdict mix degrade.  `dune exec bench/main.exe -- gov_deadline *)
(* [FILE]` also writes the figures as JSON (the committed             *)
(* BENCH_gov.json baseline).                                          *)

let gov_deadline out =
  let module Json = Symbad_obs.Json in
  let module Budget = Symbad_gov.Budget in
  section "GOV" "graceful degradation under deadline / budget pressure";
  let w = Face_app.smoke_workload in
  let wall_time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let verdict_mix report =
    List.fold_left
      (fun (p, f, i) l ->
        List.fold_left
          (fun (p, f, i) v ->
            match v.Verdict.outcome with
            | Verdict.Inconclusive _ -> (p, f, i + 1)
            | _ when v.Verdict.passed -> (p + 1, f, i)
            | _ -> (p, f + 1, i))
          (p, f, i) l.Flow.verifications)
      (0, 0, 0) report.Flow.levels
  in
  let measure label budget_of =
    (* budgets are built lazily: Budget.make anchors ~deadline_s to an
       absolute instant, so a deadline budget must be created just
       before its run, not when the sweep list is declared *)
    let budget = budget_of () in
    let report, secs = wall_time (fun () -> Flow.run ~workload:w ?budget ()) in
    let passed, failed, inconclusive = verdict_mix report in
    Format.printf "%-26s %8.2fs   passed %2d   failed %2d   inconclusive %2d@."
      label secs passed failed inconclusive;
    ( label,
      Json.Obj
        [
          ("seconds", Json.Float secs);
          ("passed", Json.Int passed);
          ("failed", Json.Int failed);
          ("inconclusive", Json.Int inconclusive);
        ] )
  in
  Format.printf "%-26s %9s   %s@." "budget" "wall" "verdicts";
  let logical n () = Some (Budget.make ~conflicts:n ~patterns:n ()) in
  let deadline s () = Some (Budget.make ~deadline_s:s ()) in
  let sweep =
    [
      ("unlimited", fun () -> None);
      (* logical allowances: deterministic degradation points *)
      ("conflicts+patterns 100k", logical 100_000);
      ("conflicts+patterns 10k", logical 10_000);
      ("conflicts+patterns 1k", logical 1_000);
      ("conflicts+patterns 0", logical 0);
      (* wall-clock deadlines: best-effort, the headline knob *)
      ("deadline 5s", deadline 5.0);
      ("deadline 0.5s", deadline 0.5);
      ("deadline 0s (instant)", deadline 0.0);
    ]
  in
  let rows = List.map (fun (label, budget_of) -> measure label budget_of) sweep in
  Format.printf
    "shape: shrinking budget trades verdicts for time — checks degrade to \
     inconclusive@.partial results instead of running long; the zero-budget \
     row is the floor cost of@.the flow itself.@.";
  let json = Json.to_string (Json.Obj rows) in
  match out with
  | Some path ->
      let oc = open_out path in
      output_string oc json;
      output_string oc "\n";
      close_out oc;
      Format.printf "baseline written to %s@." path
  | None -> Format.printf "%s@." json

(* ---------------------------------------------------------------- *)
(* Gov guard: every engine must degrade instantly — never raise,      *)
(* never run long — when handed an already-exhausted governor.  CI    *)
(* runs this via the @gov-guard alias.                                *)

let gov_guard () =
  let module Gov = Symbad_gov.Gov in
  let module Budget = Symbad_gov.Budget in
  section "GOV-GUARD" "zero-budget degradation smoke test";
  let zero () = Gov.create ~label:"guard" (Budget.make ~conflicts:0 ~patterns:0 ()) in
  let failures = ref [] in
  let check what ~max_s ok_of =
    let t0 = Unix.gettimeofday () in
    let outcome = try ok_of () with e -> `Raised (Printexc.to_string e) in
    let secs = Unix.gettimeofday () -. t0 in
    let verdict =
      match outcome with
      | `Raised msg -> Printf.sprintf "RAISED %s" msg
      | `Bad msg -> Printf.sprintf "WRONG %s" msg
      | `Ok when secs > max_s -> Printf.sprintf "TOO SLOW %.2fs" secs
      | `Ok -> "ok"
    in
    Format.printf "%-34s %8.3fs  %s@." what secs verdict;
    if verdict <> "ok" then failures := what :: !failures
  in
  let fifo = Symbad_hdl.Rtl_lib.fifo_ctrl ~addr_width:2 () in
  let _, strong = fifo_property_plans fifo in
  let prop = List.hd strong in
  check "sat: solve" ~max_s:1.0 (fun () ->
      let s = Symbad_sat.Solver.create 2 in
      Symbad_sat.Solver.add_clause s [ 1; 2 ];
      Symbad_sat.Solver.add_clause s [ -1; 2 ];
      Symbad_sat.Solver.add_clause s [ 1; -2 ];
      match Symbad_sat.Solver.solve ~gov:(zero ()) s with
      | Symbad_sat.Solver.Unknown -> `Ok
      | Symbad_sat.Solver.Sat -> `Bad "Sat"
      | Symbad_sat.Solver.Unsat -> `Bad "Unsat");
  check "mc: bmc" ~max_s:1.0 (fun () ->
      match Symbad_mc.Bmc.check ~gov:(zero ()) ~depth:8 fifo prop with
      | Symbad_mc.Bmc.Resource_out -> `Ok
      | Symbad_mc.Bmc.Holds -> `Bad "Holds"
      | Symbad_mc.Bmc.Counterexample _ -> `Bad "Counterexample");
  check "mc: engine" ~max_s:1.0 (fun () ->
      let r = Symbad_mc.Engine.check ~gov:(zero ()) fifo prop in
      match r.Symbad_mc.Engine.verdict with
      | Symbad_mc.Engine.Unknown { reason } ->
          if String.length reason >= 9 && String.sub reason 0 9 = "governor:"
          then `Ok
          else `Bad reason
      | _ -> `Bad "not Unknown");
  check "atpg: random" ~max_s:1.0 (fun () ->
      match
        Symbad_atpg.Random_engine.generate ~gov:(zero ()) ~count:64
          (Symbad_atpg.Models.root ())
      with
      | [] -> `Ok
      | ts -> `Bad (Printf.sprintf "%d patterns" (List.length ts)));
  check "atpg: genetic" ~max_s:1.0 (fun () ->
      match
        Symbad_atpg.Genetic_engine.generate ~gov:(zero ())
          (Symbad_atpg.Models.root ())
      with
      | [] -> `Ok
      | ts -> `Bad (Printf.sprintf "%d patterns" (List.length ts)));
  check "pcc: run" ~max_s:1.0 (fun () ->
      let r = Symbad_pcc.Pcc.run ~gov:(zero ()) ~depth:8 fifo strong in
      if
        List.for_all
          (fun (fr : Symbad_pcc.Pcc.fault_report) ->
            fr.Symbad_pcc.Pcc.status = Symbad_pcc.Pcc.Unresolved)
          r.Symbad_pcc.Pcc.faults
        && r.Symbad_pcc.Pcc.faults <> []
      then `Ok
      else `Bad "fault classified under zero budget");
  check "lpv: deadlock" ~max_s:1.0 (fun () ->
      match Lpv_bridge.check_deadlock ~gov:(zero ()) graph with
      | Symbad_lpv.Deadlock.Not_analyzable _ -> `Ok
      | v -> `Bad (Fmt.str "%a" Symbad_lpv.Deadlock.pp_verdict v));
  check "lpv: timing" ~max_s:1.0 (fun () ->
      match
        Symbad_lpv.Timing.min_cycle_ratio ~gov:(zero ())
          (Lpv_bridge.net_of ~capacity:2 graph)
      with
      | Symbad_lpv.Timing.Not_analyzable _ -> `Ok
      | v -> `Bad (Fmt.str "%a" Symbad_lpv.Timing.pp_verdict v));
  check "flow: end to end" ~max_s:5.0 (fun () ->
      let w = Face_app.smoke_workload in
      let report =
        Flow.run ~workload:w
          ~budget:(Budget.make ~conflicts:0 ~patterns:0 ())
          ()
      in
      let inconclusive =
        List.exists
          (fun l ->
            List.exists
              (fun v ->
                match v.Verdict.outcome with
                | Verdict.Inconclusive _ -> true
                | _ -> false)
              l.Flow.verifications)
          report.Flow.levels
      in
      if inconclusive then `Ok else `Bad "no inconclusive verdict");
  match !failures with
  | [] -> Format.printf "gov-guard: every engine degrades gracefully.@."
  | fs ->
      List.iter (fun f -> Format.printf "gov-guard FAILURE: %s@." f) fs;
      exit 1

(* ---------------------------------------------------------------- *)
(* Bechamel micro-benchmarks: one Test.make per experiment id.       *)

let micro_benchmarks () =
  let open Bechamel in
  let open Toolkit in
  section "MICRO" "Bechamel micro-benchmarks (one per experiment)";
  let smoke = Face_app.smoke_workload in
  let smoke_graph = Face_app.graph smoke in
  let smoke_l1 = Level1.run smoke_graph in
  let smoke_m2 = Face_app.level2_mapping ~profile:smoke_l1.Level1.profile smoke_graph in
  let smoke_m3 = Mapping.refine_to_fpga smoke_m2 Face_app.level3_refinement in
  let smoke_db = I.Pipeline.enroll ~size:smoke.Face_app.size
      ~identities:smoke.Face_app.identities () in
  let fifo = Symbad_hdl.Rtl_lib.fifo_ctrl ~addr_width:2 () in
  let module E = Symbad_hdl.Expr in
  let module P = Symbad_mc.Prop in
  let fifo_prop =
    P.make ~name:"bound" (E.ule (E.reg "count") (E.const ~width:3 4))
  in
  let symbc_l3 = Level3.run smoke_graph smoke_m3 in
  let placement_calls = symbc_l3.Level3.call_sequence in
  let resources =
    [ Symbad_fpga.Resource.algorithm ~area:900 "DISTANCE";
      Symbad_fpga.Resource.algorithm ~area:700 "ROOT" ]
  in
  let static_m3 =
    Mapping.refine_to_fpga smoke_m2
      [ ("DISTANCE", "config_all"); ("ROOT", "config_all") ]
  in
  let static_cfg = { Level3.default_config with Level3.fpga_capacity = 2000 } in
  let tests =
    [
      (* F1: levels 1-3 of the flow, end to end *)
      Test.make ~name:"F1_flow_levels_1to3"
        (Staged.stage (fun () ->
             let l1 = Level1.run smoke_graph in
             let m2 = Face_app.level2_mapping ~profile:l1.Level1.profile smoke_graph in
             let _ = Level2.run smoke_graph m2 in
             Level3.run smoke_graph
               (Mapping.refine_to_fpga m2 Face_app.level3_refinement)));
      (* F2: one frame through the Figure 2 pipeline *)
      Test.make ~name:"F2_recognise_frame"
        (Staged.stage (fun () ->
             I.Pipeline.recognize smoke_db
               (I.Pipeline.camera ~size:smoke.Face_app.size ~identity:2 ~pose:1 ())));
      (* E1-E3: one simulation per level *)
      Test.make ~name:"E1_level1_sim"
        (Staged.stage (fun () -> Level1.run smoke_graph));
      Test.make ~name:"E2_level2_sim"
        (Staged.stage (fun () -> Level2.run smoke_graph smoke_m2));
      Test.make ~name:"E3_level3_sim"
        (Staged.stage (fun () -> Level3.run smoke_graph smoke_m3));
      (* E4: genetic ATPG on the ROOT model *)
      Test.make ~name:"E4_atpg_genetic_root"
        (Staged.stage (fun () ->
             Symbad_atpg.Genetic_engine.generate (Symbad_atpg.Models.root ())));
      (* E5: the deadlock LP *)
      Test.make ~name:"E5_lpv_deadlock"
        (Staged.stage (fun () -> Lpv_bridge.check_deadlock smoke_graph));
      (* E6: the min-cycle-ratio LP *)
      Test.make ~name:"E6_lpv_min_cycle_ratio"
        (Staged.stage (fun () ->
             Symbad_lpv.Timing.min_cycle_ratio
               (Lpv_bridge.net_of ~capacity:2 smoke_graph)));
      (* E7: the SymbC product check *)
      Test.make ~name:"E7_symbc_check"
        (Staged.stage (fun () ->
             Symbad_symbc.Check.check symbc_l3.Level3.config_info
               symbc_l3.Level3.instrumented_sw));
      (* E8: BMC on the fifo controller *)
      Test.make ~name:"E8_bmc_fifo_depth8"
        (Staged.stage (fun () ->
             Symbad_mc.Bmc.check ~depth:8 fifo fifo_prop));
      (* A1: the context-partition sweep *)
      Test.make ~name:"A1_placement_sweep"
        (Staged.stage (fun () ->
             Symbad_fpga.Placement.sweep ~capacity:1700 ~max_contexts:2
               ~calls:placement_calls resources));
      (* A2: the static (single-context) simulation *)
      Test.make ~name:"A2_level3_static_sim"
        (Staged.stage (fun () ->
             Level3.run ~config:static_cfg smoke_graph static_m3));
    ]
  in
  let grouped = Test.make_grouped ~name:"symbad" ~fmt:"%s/%s" tests in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        match Analyze.OLS.estimates ols with
        | Some [ t ] -> (name, t) :: acc
        | Some _ | None -> (name, nan) :: acc)
      results []
    |> List.sort compare
  in
  Format.printf "%-36s %16s@." "benchmark" "time/run";
  let pp_ns fmt t =
    if t >= 1e9 then Fmt.pf fmt "%10.2f s " (t /. 1e9)
    else if t >= 1e6 then Fmt.pf fmt "%10.2f ms" (t /. 1e6)
    else if t >= 1e3 then Fmt.pf fmt "%10.2f us" (t /. 1e3)
    else Fmt.pf fmt "%10.0f ns" t
  in
  List.iter (fun (name, t) -> Format.printf "%-36s %a@." name pp_ns t) rows

(* ---------------------------------------------------------------- *)
(* Guard: the instrumentation stays wired.  Runs a small flow with    *)
(* telemetry on and fails if the key signals are missing — the smoke  *)
(* test CI runs so a refactor cannot silently sever the telemetry.    *)

let guard () =
  let module Obs = Symbad_obs.Obs in
  let module Tracer = Symbad_obs.Tracer in
  let module Metrics = Symbad_obs.Metrics in
  section "GUARD" "telemetry wiring smoke test";
  Obs.reset ();
  Obs.set_enabled true;
  let w =
    { Face_app.size = 32; identities = 6; frames = [ (0, 1); (3, 2) ] }
  in
  let report = Flow.run ~workload:w () in
  Obs.set_enabled false;
  let m = Obs.metrics () in
  let tracer = Obs.tracer () in
  let counter name = Option.value ~default:0 (Metrics.find_counter m name) in
  let failures = ref [] in
  let check what ok = if not ok then failures := what :: !failures in
  check "flow verdicts all passed" report.Flow.all_passed;
  check "sim.events_dispatched > 0" (counter "sim.events_dispatched" > 0);
  check "bus.transactions > 0" (counter "bus.transactions" > 0);
  check "bus.grant_wait_ns histogram populated"
    (match Metrics.find_histogram m "bus.grant_wait_ns" with
    | Some h -> Symbad_obs.Histogram.count h > 0
    | None -> false);
  check ">= 4 level spans"
    (List.length (Tracer.spans_with_cat tracer "level") >= 4);
  check "bus spans present" (Tracer.spans_with_cat tracer "bus" <> []);
  Format.printf "events=%d transactions=%d spans=%d@."
    (counter "sim.events_dispatched")
    (counter "bus.transactions")
    (Tracer.span_count tracer);
  (* two-domain trace-merge smoke: telemetry emitted on a worker domain
     must survive the buffer merge, land on its own lane track and stay
     parent-linked to the dispatch span.  The two jobs rendezvous (with
     a timeout escape) so both really run, one per domain. *)
  Obs.reset ();
  Obs.set_enabled true;
  let started = Atomic.make 0 in
  let lanes =
    Symbad_par.Par.with_pool ~jobs:2 (fun pool ->
        Symbad_par.Par.map ~label:"guard.rv" pool
          (fun _ ->
            Atomic.incr started;
            let t0 = Unix.gettimeofday () in
            while Atomic.get started < 2 && Unix.gettimeofday () -. t0 < 5. do
              Domain.cpu_relax ()
            done;
            Obs.incr_counter "guard.rv.work";
            Symbad_par.Par.current_lane ())
          [ 0; 1 ])
  in
  Obs.set_enabled false;
  let merged =
    Option.value ~default:0
      (Metrics.find_counter (Obs.metrics ()) "guard.rv.work")
  in
  let spans = Tracer.spans_with_cat (Obs.tracer ()) "par" in
  let dispatch =
    List.find_opt (fun s -> String.equal s.Tracer.track "par") spans
  in
  let job_spans =
    List.filter (fun s -> not (String.equal s.Tracer.track "par")) spans
  in
  check "rendezvous ran on two distinct lanes"
    (match lanes with [ a; b ] -> a <> b | _ -> false);
  check "worker-lane counter merged (2 of 2)" (merged = 2);
  check "no telemetry dropped" (Obs.dropped_count () = 0);
  check "job spans on two distinct lane tracks"
    (List.length
       (List.sort_uniq compare
          (List.map (fun s -> s.Tracer.track) job_spans))
    = 2);
  check "job spans parent-linked to dispatch"
    (match dispatch with
    | Some d ->
        job_spans <> []
        && List.for_all
             (fun s -> s.Tracer.parent = Some d.Tracer.id)
             job_spans
    | None -> false);
  Format.printf "trace-merge smoke: merged=%d lanes=%d@." merged
    (List.length (List.sort_uniq compare lanes));
  match !failures with
  | [] -> Format.printf "guard: telemetry wired.@."
  | fs ->
      List.iter (fun f -> Format.printf "guard FAILURE: %s@." f) fs;
      exit 1

(* ---------------------------------------------------------------- *)
(* RESIL: the dependability campaign — per-fault-kind detection and   *)
(* recovery rates on the smoke workload.                              *)
(* `dune exec bench/main.exe -- resil [FILE]` also writes the report  *)
(* as JSON (the committed BENCH_resil.json baseline; simulated-time   *)
(* figures only, so it is byte-stable across hosts and --jobs).       *)

let resil out =
  let module Campaign = Symbad_resil.Campaign in
  let module Json = Symbad_obs.Json in
  section "RESIL" "fault-injection campaign (smoke workload, seed 1)";
  let report =
    Symbad_par.Par.with_pool (fun pool -> Campaign.run ~pool ~seed:1 ())
  in
  Format.printf "%-16s %6s %8s %8s %9s %7s@." "kind" "trials" "injected"
    "detected" "recovered" "correct";
  List.iter
    (fun row ->
      Format.printf "%-16s %6d %8d %8d %9d %7d@." row.Campaign.row_kind
        row.Campaign.row_trials row.Campaign.row_injected
        row.Campaign.row_detected row.Campaign.row_recovered
        row.Campaign.row_correct)
    report.Campaign.per_kind;
  Format.printf "campaign %s (%d trials, %d skipped)@."
    (if report.Campaign.passed then "PASSED" else "FAILED")
    (List.length report.Campaign.outcomes)
    report.Campaign.skipped;
  let json = Json.to_string (Campaign.to_json report) in
  (match out with
  | Some path ->
      let oc = open_out path in
      output_string oc json;
      output_string oc "\n";
      close_out oc;
      Format.printf "baseline written to %s@." path
  | None -> Format.printf "%s@." json);
  if not report.Campaign.passed then exit 1

(* ---------------------------------------------------------------- *)
(* TMR: masked-fault mode vs scrubbing-only — the same campaign run   *)
(* in both operating modes, compared on fault-survival, masked        *)
(* trials, recovery-latency histogram and fabric area.                *)
(* `dune exec bench/main.exe -- tmr [FILE]` also writes the two       *)
(* reports plus the comparison as JSON (the committed BENCH_tmr.json  *)
(* baseline; the reports are simulated-time-only and byte-stable, the *)
(* `seconds` fields carry host wall times for the tolerance gate).    *)

let tmr_bench out =
  let module Campaign = Symbad_resil.Campaign in
  let module Json = Symbad_obs.Json in
  section "TMR" "masked (TMR + bus ECC) vs scrubbing-only, seed 1";
  let timed mode =
    let t0 = Unix.gettimeofday () in
    let r =
      Symbad_par.Par.with_pool (fun pool -> Campaign.run ~pool ~mode ~seed:1 ())
    in
    (r, Unix.gettimeofday () -. t0)
  in
  let scrub, scrub_s = timed Campaign.Scrub in
  let tmr, tmr_s = timed Campaign.Tmr in
  print_string (Campaign.compare_modes_markdown ~scrub ~tmr);
  Format.printf "scrub %s in %.2fs, tmr %s in %.2fs@."
    (if scrub.Campaign.passed then "PASSED" else "FAILED")
    scrub_s
    (if tmr.Campaign.passed then "PASSED" else "FAILED")
    tmr_s;
  let json =
    Json.to_string
      (Json.Obj
         [
           ( "scrub",
             Json.Obj
               [
                 ("report", Campaign.to_json scrub);
                 ("seconds", Json.Float scrub_s);
               ] );
           ( "tmr",
             Json.Obj
               [
                 ("report", Campaign.to_json tmr);
                 ("seconds", Json.Float tmr_s);
               ] );
           ("comparison", Campaign.compare_modes ~scrub ~tmr);
         ])
  in
  (match out with
  | Some path ->
      let oc = open_out path in
      output_string oc json;
      output_string oc "\n";
      close_out oc;
      Format.printf "baseline written to %s@." path
  | None -> Format.printf "%s@." json);
  if not (scrub.Campaign.passed && tmr.Campaign.passed) then exit 1

(* ---------------------------------------------------------------- *)
(* LINT: the static-analysis pass — per-target diagnostic counts      *)
(* over the repo corpus plus rule throughput on the largest           *)
(* synthesised netlist.  `dune exec bench/main.exe -- lint [FILE]`    *)
(* also writes the figures as JSON (the committed BENCH_lint.json     *)
(* baseline; the per-target counts are deterministic, the throughput  *)
(* row carries host timings).                                         *)

let prop_pairs props =
  List.map (fun p -> (Symbad_mc.Prop.name p, Symbad_mc.Prop.formula p)) props

let lint_bench out =
  let module Lint = Symbad_lint.Lint in
  let module Json = Symbad_obs.Json in
  section "LINT" "static-analysis corpus counts and rule throughput";
  let wall_time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let l3 = Level3.run graph mapping3 in
  let row (r : Lint.report) =
    Format.printf "%-24s %d rules, %d errors, %d warnings@." r.Lint.target
      (List.length r.Lint.rules_run)
      (Lint.errors r) (Lint.warnings r);
    ( r.Lint.target,
      Json.Obj
        [
          ("rules", Json.Int (List.length r.Lint.rules_run));
          ("errors", Json.Int (Lint.errors r));
          ("warnings", Json.Int (Lint.warnings r));
        ] )
  in
  let targets =
    List.map
      (fun (m : Level4.rtl_module) ->
        row
          (Lint.run_netlist
             ~properties:(prop_pairs m.Level4.properties)
             m.Level4.netlist))
      (Level4.modules ())
    @ [
        (let nl = Symbad_resil.Recovery.netlist () in
         row
           (Lint.run_netlist
              ~properties:(prop_pairs (Symbad_resil.Recovery.properties nl))
              nl));
        row
          (Lint.run_program ~name:"instrumented software"
             l3.Level3.config_info l3.Level3.instrumented_sw);
        row (Lint.run_netlist Symbad_lint.Seeded.demo);
      ]
  in
  (* throughput: all seven netlist rules over the largest synthesised
     netlist in the repo, repeated for a stable figure *)
  let spec = Wrapper_gen.make_spec ~data_width:32 ~depth:2 () in
  let nl = Wrapper_gen.synthesize spec in
  let props = prop_pairs (Wrapper_gen.checkers spec nl) in
  let repeats = 50 in
  let (), secs =
    wall_time (fun () ->
        for _ = 1 to repeats do
          ignore (Lint.run_netlist ~properties:props nl)
        done)
  in
  let rules = List.length Lint.netlist_rule_ids * repeats in
  let per_sec = float_of_int rules /. secs in
  Format.printf
    "throughput: %d rule runs over %s (%d registers) in %.2fs = %.0f rules/s@."
    rules
    (Symbad_hdl.Netlist.name nl)
    (List.length (Symbad_hdl.Netlist.registers nl))
    secs per_sec;
  let json =
    Json.to_string
      (Json.Obj
         [
           ("targets", Json.Obj targets);
           ( "throughput",
             Json.Obj
               [
                 ("netlist", Json.Str (Symbad_hdl.Netlist.name nl));
                 ( "registers",
                   Json.Int (List.length (Symbad_hdl.Netlist.registers nl)) );
                 ("rule_runs", Json.Int rules);
                 ("seconds", Json.Float secs);
                 ("rules_per_second", Json.Float per_sec);
               ] );
         ])
  in
  match out with
  | Some path ->
      let oc = open_out path in
      output_string oc json;
      output_string oc "\n";
      close_out oc;
      Format.printf "baseline written to %s@." path
  | None -> Format.printf "%s@." json

(* ---------------------------------------------------------------- *)
(* Lint guard: the shipped corpus must stay diagnostic-free.  CI      *)
(* runs this via the @lint-guard alias: the recovery controller, one  *)
(* synthesised wrapper and the face-app reconfiguration program are   *)
(* linted and any diagnostic at all fails the build.                  *)

let lint_guard () =
  let module Lint = Symbad_lint.Lint in
  section "LINT-GUARD" "repo corpus stays diagnostic-free";
  let failures = ref [] in
  let check (r : Lint.report) =
    Format.printf "%a" Lint.pp r;
    if r.Lint.diagnostics <> [] then failures := r.Lint.target :: !failures
  in
  let recovery = Symbad_resil.Recovery.netlist () in
  (* net.range is suppressed on the recovery controller: its retry and
     no-op counters are bounded by the controller's own compare logic,
     which the interval domain cannot see (provable with --escalate) —
     the same documented suppression the lint test suite carries *)
  check
    (Lint.run_netlist ~suppress:[ "net.range" ]
       ~properties:(prop_pairs (Symbad_resil.Recovery.properties recovery))
       recovery);
  let spec = Wrapper_gen.make_spec ~data_width:8 ~depth:2 () in
  let wrapper = Wrapper_gen.synthesize spec in
  check
    (Lint.run_netlist
       ~properties:(prop_pairs (Wrapper_gen.checkers spec wrapper))
       wrapper);
  let l3 = Level3.run graph mapping3 in
  check
    (Lint.run_program ~name:"instrumented software" l3.Level3.config_info
       l3.Level3.instrumented_sw);
  match !failures with
  | [] -> Format.printf "lint-guard: corpus clean.@."
  | fs ->
      List.iter (fun f -> Format.printf "lint-guard FAILURE: %s@." f) fs;
      exit 1

(* ---------------------------------------------------------------- *)
(* Absint guard: the semantic rules stay wired, sub-second.  CI runs  *)
(* this via the @absint-guard alias: the abstract interpreter must    *)
(* reach a fixpoint on every corpus netlist, the seeded per-rule      *)
(* fixtures must each fire exactly their rule, and the escalation     *)
(* round-trip on the seeded netlist must promote exactly one warning  *)
(* to an error with a counterexample attached and discharge exactly   *)
(* one as proved.                                                     *)

let absint_guard () =
  let module Lint = Symbad_lint.Lint in
  let module D = Symbad_lint.Diagnostic in
  let module Absint = Symbad_lint.Netlist_absint in
  section "ABSINT-GUARD" "semantic-rule and escalation smoke test";
  let failures = ref [] in
  let check what ok =
    Format.printf "%-52s %s@." what (if ok then "ok" else "FAILED");
    if not ok then failures := what :: !failures
  in
  (* the whole corpus reaches a fixpoint with every register abstracted *)
  let corpus =
    List.map
      (fun (m : Level4.rtl_module) -> m.Level4.netlist)
      (Level4.modules ())
    @ [ Symbad_resil.Recovery.netlist () ]
  in
  List.iter
    (fun nl ->
      let name = Symbad_hdl.Netlist.name nl in
      check
        (Printf.sprintf "fixpoint: %s" name)
        (match Absint.analyze nl with
        | None -> false
        | Some a ->
            List.for_all
              (fun (r : Symbad_hdl.Netlist.register) ->
                Absint.reg_value a r.Symbad_hdl.Netlist.name <> None)
              (Symbad_hdl.Netlist.registers nl)))
    corpus;
  (* each semantic fixture fires exactly its seeded rule *)
  let semantic =
    [ "net.x-prop"; "net.range"; "net.unreachable-state"; "net.const-reg" ]
  in
  List.iter
    (fun (rule, nl) ->
      if List.mem rule semantic then
        let r = Lint.run_netlist ~rules:[ rule ] nl in
        check
          (Printf.sprintf "fires: %s" rule)
          (List.exists
             (fun (d : D.t) -> String.equal d.D.rule rule)
             r.Lint.diagnostics))
    Symbad_lint.Seeded.fixtures;
  (* the escalation round-trip: one disproved + promoted, one proved *)
  let before = Lint.run_netlist Symbad_lint.Seeded.escalation in
  let after =
    Lint.escalate Symbad_lint.Seeded.escalation before
  in
  let status s (d : D.t) =
    match d.D.discharged with Some g -> g.D.status = s | None -> false
  in
  let promoted =
    List.filter
      (fun (d : D.t) -> d.D.severity = D.Error && status D.Disproved d)
      after.Lint.diagnostics
  in
  let proved =
    List.filter
      (fun (d : D.t) -> d.D.severity = D.Info && status D.Proved d)
      after.Lint.diagnostics
  in
  check "escalation input: 2 warnings, 0 errors"
    (Lint.warnings before = 2 && Lint.errors before = 0);
  check "escalation: exactly one warning promoted to error"
    (List.length promoted = 1);
  check "escalation: the promoted error carries a counterexample"
    (match promoted with
    | [ d ] -> (
        match d.D.discharged with
        | Some g -> g.D.counterexample <> None
        | None -> false)
    | _ -> false);
  check "escalation: exactly one warning discharged as proved"
    (List.length proved = 1);
  check "escalation: no diagnostic dropped"
    (List.length after.Lint.diagnostics
    = List.length before.Lint.diagnostics);
  match !failures with
  | [] -> Format.printf "absint-guard: semantic rules wired.@."
  | fs ->
      List.iter (fun f -> Format.printf "absint-guard FAILURE: %s@." f) fs;
      exit 1

(* ---------------------------------------------------------------- *)
(* Fault guard: one injected-and-recovered flow, sub-second.  CI      *)
(* runs this via the @fault-guard alias: a bitstream SEU must be      *)
(* caught by the download CRC, re-downloaded, and the pipeline must   *)
(* still elect the fault-free WINNER.                                 *)

let fault_guard () =
  let module Campaign = Symbad_resil.Campaign in
  let module Fault = Symbad_resil.Fault in
  section "FAULT-GUARD" "injected-and-recovered smoke test";
  let report =
    Campaign.run ~kinds:[ Fault.Bitstream_seu ] ~trials_per_kind:1 ~seed:1 ()
  in
  List.iter
    (fun (o : Campaign.outcome) ->
      Format.printf "trial %d %-14s %-24s %s@." o.Campaign.trial
        o.Campaign.kind o.Campaign.injection o.Campaign.detail)
    report.Campaign.outcomes;
  if report.Campaign.passed then
    Format.printf "guard: fault injected, detected, recovered; winner intact.@."
  else begin
    Format.printf "guard FAILURE: %s@."
      (match Campaign.first_failure report with
      | Some o -> o.Campaign.detail
      | None -> "campaign inconclusive");
    exit 1
  end

(* ---------------------------------------------------------------- *)
(* TMR guard: the masked operating mode holds, sub-second.  CI runs   *)
(* this via the @tmr-guard alias: the voter's masking contract and    *)
(* the triplicated datapath's lock-step invariant must prove, the     *)
(* voter must lint clean, and a mini campaign in tmr mode must mask   *)
(* a configuration upset, a per-copy upset and a single-bit bus       *)
(* corruption at zero recovery latency.                               *)

let tmr_guard () =
  let module Masking = Symbad_resil.Masking in
  let module Campaign = Symbad_resil.Campaign in
  let module Fault = Symbad_resil.Fault in
  let module Lint = Symbad_lint.Lint in
  let module Tmr = Symbad_hdl.Tmr in
  section "TMR-GUARD" "voter proofs and masked campaign smoke test";
  let failures = ref [] in
  let proofs name reports =
    List.iter
      (fun r -> Format.printf "%a@." Symbad_mc.Engine.pp_report r)
      reports;
    if not (Masking.all_proved reports) then failures := name :: !failures
  in
  proofs "voter masking contract" (Masking.check_voter ());
  proofs "triplicated lock-step"
    (Masking.check_triplicated
       (Symbad_hdl.Rtl_lib.distance_datapath ~data_width:4 ~acc_width:8 ()));
  let voter = Tmr.voter ~width:8 () in
  let lint = Lint.run_netlist ~properties:(Tmr.voter_properties ()) voter in
  Format.printf "%a" Lint.pp lint;
  if lint.Lint.diagnostics <> [] then failures := "voter lint" :: !failures;
  let report =
    Campaign.run ~mode:Campaign.Tmr
      ~kinds:[ Fault.Config_upset; Fault.Ecc_single; Fault.Tmr_upset ]
      ~trials_per_kind:1 ~seed:1 ()
  in
  List.iter
    (fun (o : Campaign.outcome) ->
      Format.printf "trial %d %-14s %-28s masked=%b recovery=%dns %s@."
        o.Campaign.trial o.Campaign.kind o.Campaign.injection o.Campaign.masked
        o.Campaign.recovery_ns o.Campaign.detail;
      if
        (not o.Campaign.skipped)
        && (not (String.equal o.Campaign.kind "control"))
        && not (o.Campaign.masked && o.Campaign.recovery_ns = 0)
      then failures := ("unmasked trial: " ^ o.Campaign.kind) :: !failures)
    report.Campaign.outcomes;
  if not report.Campaign.passed then failures := "tmr campaign" :: !failures;
  match List.rev !failures with
  | [] ->
      Format.printf
        "guard: voter proved, lint clean, faults masked at zero latency.@."
  | fs ->
      List.iter (fun f -> Format.printf "guard FAILURE: %s@." f) fs;
      exit 1

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let tables () =
    f1_flow ();
    f2_recognition ();
    speed_table ();
    e4_atpg ();
    e5_lpv_deadlock ();
    e6_lpv_timing ();
    e7_symbc ();
    e8_mc_pcc ();
    a1_context_ablation ();
    a2_static_vs_reconfig ();
    a3_download_granularity ()
  in
  (match mode with
  | "tables" -> tables ()
  | "micro" -> micro_benchmarks ()
  | "guard" -> guard ()
  | "par_speedup" ->
      par_speedup (if Array.length Sys.argv > 2 then Some Sys.argv.(2) else None)
  | "inc" ->
      inc (if Array.length Sys.argv > 2 then Some Sys.argv.(2) else None)
  | "gov_deadline" ->
      gov_deadline (if Array.length Sys.argv > 2 then Some Sys.argv.(2) else None)
  | "gov_guard" -> gov_guard ()
  | "resil" ->
      resil (if Array.length Sys.argv > 2 then Some Sys.argv.(2) else None)
  | "fault_guard" -> fault_guard ()
  | "tmr" ->
      tmr_bench (if Array.length Sys.argv > 2 then Some Sys.argv.(2) else None)
  | "tmr_guard" -> tmr_guard ()
  | "lint" ->
      lint_bench (if Array.length Sys.argv > 2 then Some Sys.argv.(2) else None)
  | "lint_guard" -> lint_guard ()
  | "absint_guard" -> absint_guard ()
  | _ ->
      tables ();
      micro_benchmarks ());
  Format.printf "@.done.@."
