(** A Domain-based work pool for the embarrassingly parallel
    verification fan-outs (PCC fault injection, ATPG population scoring,
    BMC bound portfolios, architecture sweeps).

    Design contract: {e parallelism never changes results}.  [map]
    chunks its input, fans the chunks out to the pool and reassembles
    the results in input order, so [map pool f xs] equals
    [List.map f xs] for any pure [f] at any pool width — a [jobs = 1]
    pool runs the very same queue/drain code with zero worker domains.
    Exceptions raised inside jobs are captured and re-raised on the
    calling domain (first failing chunk in input order wins).

    Telemetry: every parallel section is a dispatch span on the ["par"]
    track, with [par.jobs_dispatched] counting chunks and
    [par.queue_wait_us] a histogram of chunk queue-wait times.  When
    telemetry is on, each chunk runs under a per-job
    [Obs.Telemetry_buffer] wrapped in a job-root span; the buffers merge
    back in chunk-index order at the fan-in, parented to the dispatch
    span and placed on per-lane tracks (["lane0"] is the calling
    domain) — worker emissions are never lost, and because chunk counts
    and merge order are width-independent the merged metrics are
    byte-identical at any [--jobs].  See [docs/OBSERVABILITY.md]. *)

type pool

val default_jobs : unit -> int
(** [$SYMBAD_JOBS] when set to a positive integer, else
    [Domain.recommended_domain_count ()]. *)

val create : ?jobs:int -> unit -> pool
(** A pool of [jobs] lanes: the calling domain plus [jobs - 1] worker
    domains ([jobs] defaults to [default_jobs ()]; values below 1 are
    clamped to 1). *)

val jobs : pool -> int

val shutdown : pool -> unit
(** Join the worker domains.  Idempotent; subsequent [map] calls raise
    [Invalid_argument]. *)

val with_pool : ?jobs:int -> (pool -> 'a) -> 'a
(** [create], run, [shutdown] (also on exception). *)

val sequential : pool
(** The shared one-lane pool: same code path, no worker domains, never
    shut down.  What [?pool] call sites use when handed [None]. *)

val get : pool option -> pool
(** [get (Some p)] is [p]; [get None] is [sequential]. *)

val current_lane : unit -> int
(** The pool lane the calling domain is: [0] for a dispatching domain,
    [1 .. jobs - 1] on workers.  Names the ["lane<k>"] trace tracks. *)

(** {1 Deterministic fan-out} *)

val map :
  ?label:string ->
  ?progress:(completed:int -> total:int -> unit) ->
  pool ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** [map pool f xs = List.map f xs] for pure [f], computed on up to
    [jobs pool] domains.  [label] names the telemetry span; [progress]
    is invoked on the {e calling} domain as chunks complete (counts in
    chunks), the safe place to emit progress events from. *)

val mapi : ?label:string -> pool -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** {!map} where the function also receives the item's input index —
    equals [List.mapi f xs] for pure [f] at any pool width. *)

val map_reduce :
  ?label:string ->
  pool ->
  map:('a -> 'b) ->
  fold:('c -> 'b -> 'c) ->
  init:'c ->
  'a list ->
  'c
(** Parallel [map] then a sequential in-order [fold] on the calling
    domain: equals [List.fold_left (fun acc x -> fold acc (map x)) init xs]. *)

(** {1 Seed splitting} *)

val split_seed : seed:int -> int -> int
(** [split_seed ~seed i] is a statistically independent, non-zero seed
    for lane [i], via a splitmix64-style hash.  Depends only on
    [(seed, i)] — never on the pool width — so seeded parallel runs
    reproduce seeded sequential runs exactly. *)

val map_seeded :
  ?label:string -> pool -> seed:int -> (seed:int -> 'a -> 'b) -> 'a list -> 'b list
(** [map] where item [i] also receives [split_seed ~seed i]. *)
