(* A Domain-based work pool with deterministic in-order reduction.

   One shared FIFO of chunk jobs, [width - 1] worker domains, and a
   calling domain that is itself a full lane: [map] enqueues its chunks
   and then drains the queue until its own batch completes, so a
   [jobs = 1] pool runs the identical code with zero workers and the
   parallel result is the sequential result by construction.

   Telemetry crosses domains through per-job buffers: when telemetry is
   on, [map] wraps each chunk in [Obs.with_buffer] (a job-root span plus
   every emission the job makes, recorded domain-locally) and merges the
   buffers back in chunk-index order at the fan-in, parented to the
   dispatch span and placed on a per-lane track — so traces show one
   lane per executing domain while the merged metrics are identical at
   any pool width. *)

module Obs = Symbad_obs.Obs
module Json = Symbad_obs.Json
module Telemetry_buffer = Symbad_obs.Telemetry_buffer

type job = { run : unit -> unit  (* must not raise *) }

type pool = {
  width : int;
  mutable workers : unit Domain.t list;
  q : job Queue.t;
  lock : Mutex.t;
  work_available : Condition.t;
  mutable live : bool;
}

let default_jobs () =
  match Sys.getenv_opt "SYMBAD_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* Take the next job, blocking while the pool is live; [None] signals
   the worker to exit. *)
let next_job pool =
  Mutex.lock pool.lock;
  let rec take () =
    match Queue.take_opt pool.q with
    | Some j -> Some j
    | None ->
        if pool.live then begin
          Condition.wait pool.work_available pool.lock;
          take ()
        end
        else None
  in
  let j = take () in
  Mutex.unlock pool.lock;
  j

let rec worker pool =
  match next_job pool with
  | Some j ->
      j.run ();
      worker pool
  | None -> ()

(* Which lane of a pool the current domain is: 0 for the calling domain,
   [1 .. width - 1] for workers.  Labels the per-lane trace tracks. *)
let lane_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)
let current_lane () = Domain.DLS.get lane_key

let create ?jobs () =
  let width = max 1 (match jobs with Some j -> j | None -> default_jobs ()) in
  let pool =
    {
      width;
      workers = [];
      q = Queue.create ();
      lock = Mutex.create ();
      work_available = Condition.create ();
      live = true;
    }
  in
  pool.workers <-
    List.init (width - 1) (fun i ->
        Domain.spawn (fun () ->
            Domain.DLS.set lane_key (i + 1);
            worker pool));
  pool

let jobs pool = pool.width

let shutdown pool =
  Mutex.lock pool.lock;
  let workers = pool.workers in
  pool.live <- false;
  pool.workers <- [];
  Condition.broadcast pool.work_available;
  Mutex.unlock pool.lock;
  List.iter Domain.join workers

let with_pool ?jobs f =
  let pool = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let sequential = create ~jobs:1 ()
let get = function Some pool -> pool | None -> sequential

(* --- batched execution ------------------------------------------------ *)

type batch = {
  total : int;
  mutable remaining : int;
  finished : Condition.t;
  waits_us : float array;  (* per-chunk queue wait, for the histogram *)
}

(* Enqueue [thunks] (which record their own results and never raise) and
   drain until they are all done.  The caller keeps taking jobs — of any
   batch, which is what makes nested [map]s on one pool deadlock-free —
   and only blocks when the queue is momentarily empty. *)
let run_chunks pool ?progress thunks =
  if not pool.live then invalid_arg "Par: pool is shut down";
  let total = Array.length thunks in
  let batch =
    {
      total;
      remaining = total;
      finished = Condition.create ();
      waits_us = Array.make total 0.;
    }
  in
  let now_us () = Unix.gettimeofday () *. 1e6 in
  let jobs =
    Array.mapi
      (fun i thunk ->
        let enqueued_us = now_us () in
        {
          run =
            (fun () ->
              batch.waits_us.(i) <- now_us () -. enqueued_us;
              thunk ();
              Mutex.lock pool.lock;
              batch.remaining <- batch.remaining - 1;
              if batch.remaining = 0 then Condition.broadcast batch.finished;
              Mutex.unlock pool.lock);
        })
      thunks
  in
  Mutex.lock pool.lock;
  Array.iter (fun j -> Queue.add j pool.q) jobs;
  Condition.broadcast pool.work_available;
  let reported = ref 0 in
  let report () =
    (* progress runs on the calling domain, outside the pool lock *)
    let completed = batch.total - batch.remaining in
    if completed > !reported then begin
      reported := completed;
      match progress with
      | Some f ->
          Mutex.unlock pool.lock;
          f ~completed ~total;
          Mutex.lock pool.lock
      | None -> ()
    end
  in
  while batch.remaining > 0 do
    match Queue.take_opt pool.q with
    | Some j ->
        Mutex.unlock pool.lock;
        j.run ();
        Mutex.lock pool.lock;
        report ()
    | None ->
        Condition.wait batch.finished pool.lock;
        report ()
  done;
  report ();
  Mutex.unlock pool.lock;
  batch.waits_us

(* --- deterministic fan-out -------------------------------------------- *)

(* The chunk count is a constant, never a function of the pool width:
   chunk-derived telemetry (job spans, [par.jobs_dispatched], the
   queue-wait histogram) must be identical at any [--jobs], the
   invariant `symbad report` is built on.  16 chunks saturate pools up
   to 16 lanes and still load-balance uneven jobs. *)
let max_chunks = 16

let map_array ?(label = "par.map") ?progress pool f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    (* contiguous balanced chunks, reassembled by index so order never
       depends on the pool width *)
    let nchunks = min n max_chunks in
    let results = Array.make n None in
    let errors = Array.make nchunks None in
    let telemetry = Obs.enabled () in
    let buffered = telemetry && Obs.buffering () in
    let bufs = Array.make (if buffered then nchunks else 0) None in
    let lanes = Array.make nchunks 0 in
    let thunks =
      Array.init nchunks (fun c ->
          let lo = c * n / nchunks and hi = (c + 1) * n / nchunks in
          let body () =
            try
              for i = lo to hi - 1 do
                results.(i) <- Some (f xs.(i))
              done
            with e -> errors.(c) <- Some (e, Printexc.get_raw_backtrace ())
          in
          if not buffered then body
          else begin
            let buf = Telemetry_buffer.create () in
            bufs.(c) <- Some buf;
            fun () ->
              lanes.(c) <- current_lane ();
              Obs.with_buffer buf (fun () ->
                  Obs.span ~cat:"par"
                    ~args:
                      [
                        ("chunk", Json.Int c);
                        ("lo", Json.Int lo);
                        ("hi", Json.Int (hi - 1));
                      ]
                    label body)
          end)
    in
    let sp =
      if telemetry then
        Obs.begin_span ~track:"par" ~cat:"par"
          ~args:
            [
              ("jobs", Json.Int pool.width);
              ("chunks", Json.Int nchunks);
              ("items", Json.Int n);
            ]
          label
      else Obs.null_span
    in
    let waits = run_chunks pool ?progress thunks in
    (* merge the per-job buffers in chunk-index order: dispatch order,
       never completion order, so the merged registry is deterministic *)
    if buffered then
      Array.iteri
        (fun c b ->
          match b with
          | Some b -> Obs.merge_buffer ~parent:sp ~lane:lanes.(c) b
          | None -> ())
        bufs;
    if telemetry then begin
      Obs.incr_counter ~by:nchunks "par.jobs_dispatched";
      Array.iter
        (fun w -> Obs.observe "par.queue_wait_us" (int_of_float w))
        waits
    end;
    Obs.end_span sp;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt | None -> ())
      errors;
    Array.map (function Some r -> r | None -> assert false) results
  end

let map ?label ?progress pool f xs =
  Array.to_list (map_array ?label ?progress pool f (Array.of_list xs))

let mapi ?label pool f xs =
  map ?label pool (fun (i, x) -> f i x) (List.mapi (fun i x -> (i, x)) xs)

let map_reduce ?label pool ~map:f ~fold ~init xs =
  List.fold_left fold init (map ?label pool f xs)

(* --- seed splitting ---------------------------------------------------- *)

(* splitmix64 finalizer over a (seed, lane) mix: independent streams per
   lane, a function of the indices alone — never of the pool width. *)
let split_seed ~seed i =
  let open Int64 in
  let z =
    add
      (mul (of_int seed) 0x9E3779B97F4A7C15L)
      (mul (of_int (i + 1)) 0xBF58476D1CE4E5B9L)
  in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  (* keep 62 bits: [to_int] of anything wider can wrap negative *)
  let v = to_int (shift_right_logical z 2) in
  if v = 0 then 1 else v

let map_seeded ?label pool ~seed f xs =
  mapi ?label pool (fun i x -> f ~seed:(split_seed ~seed i) x) xs
