(* AMBA-like shared bus model at transaction level.

   One transaction owns the bus at a time; pending masters are granted in
   fixed-priority order (lower number = higher priority), which is the AHB
   arbitration scheme.  The transfer cost model is
     cycles = arbitration + setup + ceil(bytes / width)
   and the model accumulates utilisation and per-master statistics, the
   "bus loading" figures the paper grades architectures with.

   Slave responses can be faulted (ERROR / RETRY, the AHB non-OKAY
   responses) through an injectable hook; the master-side recovery is a
   bounded retry with exponential backoff, each extra attempt charged
   against the governor when one is installed. *)

module Proc = Symbad_sim.Process
module Time = Symbad_sim.Time
module Obs = Symbad_obs.Obs
module Json = Symbad_obs.Json
module Gov = Symbad_gov.Gov

type response = Okay | Error | Retry

exception
  Transfer_failed of { master : string; target : string; attempts : int }

type master_stats = {
  mutable transactions : int;
  mutable bytes : int;
  mutable busy_ns : int;
  mutable wait_ns : int;
}

type t = {
  name : string;
  width_bytes : int;
  period_ns : int;
  arbitration_cycles : int;
  setup_cycles : int;
  max_retries : int;
  ecc : bool;  (* SEC-DED protection on every transfer *)
  mutable busy : bool;
  mutable waiters : (int * int * (unit -> unit)) list;
  mutable next_seq : int;
  mutable busy_ns : int;
  mutable total_transactions : int;
  mutable bitstream_bytes : int;
  mutable data_bytes : int;
  mutable error_responses : int;
  mutable retry_responses : int;
  mutable failed_transfers : int;
  mutable ecc_corrected : int;
  mutable ecc_double_errors : int;
  mutable fault : (Transaction.t -> attempt:int -> response) option;
  mutable corruption : (Transaction.t -> attempt:int -> int) option;
  mutable gov : Gov.t option;
  masters : (string, master_stats) Hashtbl.t;
  mutable start_ns : int option;
  mutable last_release_ns : int;
}

let create ?(width_bytes = 4) ?(period_ns = 10) ?(arbitration_cycles = 1)
    ?(setup_cycles = 1) ?(max_retries = 3) ?(ecc = false) name =
  if width_bytes <= 0 then invalid_arg "Bus.create: width";
  if period_ns <= 0 then invalid_arg "Bus.create: period";
  if max_retries < 0 then invalid_arg "Bus.create: max_retries";
  {
    name;
    width_bytes;
    period_ns;
    arbitration_cycles;
    setup_cycles;
    max_retries;
    ecc;
    busy = false;
    waiters = [];
    next_seq = 0;
    busy_ns = 0;
    total_transactions = 0;
    bitstream_bytes = 0;
    data_bytes = 0;
    error_responses = 0;
    retry_responses = 0;
    failed_transfers = 0;
    ecc_corrected = 0;
    ecc_double_errors = 0;
    fault = None;
    corruption = None;
    gov = None;
    masters = Hashtbl.create 8;
    start_ns = None;
    last_release_ns = 0;
  }

let name b = b.name
let period_ns b = b.period_ns
let ecc b = b.ecc
let inject_faults b h = b.fault <- h
let inject_corruption b h = b.corruption <- h
let govern b g = b.gov <- Some g

let master_stats b master =
  match Hashtbl.find_opt b.masters master with
  | Some s -> s
  | None ->
      let s = { transactions = 0; bytes = 0; busy_ns = 0; wait_ns = 0 } in
      Hashtbl.add b.masters master s;
      s

(* In ECC mode every payload travels as 39-bit codewords per 32 data
   bits: the check bits widen the transfer — the always-paid latency
   price of the protection. *)
let coded_bytes b bytes =
  if b.ecc then ((bytes * Ecc.code_bits) + Ecc.data_bits - 1) / Ecc.data_bits
  else bytes

let transfer_cycles b bytes =
  b.arbitration_cycles + b.setup_cycles
  + ((coded_bytes b bytes + b.width_bytes - 1) / b.width_bytes)

let transfer_time b bytes = Time.ns (transfer_cycles b bytes * b.period_ns)

(* Grant the bus to the best waiter (lowest priority number, then FIFO). *)
let grant_next b =
  match b.waiters with
  | [] -> ()
  | ws ->
      let best =
        List.fold_left
          (fun acc w ->
            let (p, s, _) = w and (pa, sa, _) = acc in
            if p < pa || (p = pa && s < sa) then w else acc)
          (List.hd ws) (List.tl ws)
      in
      let (_, seq, resume) = best in
      b.waiters <- List.filter (fun (_, s, _) -> s <> seq) b.waiters;
      resume ()

let rec acquire b ~priority =
  if not b.busy then b.busy <- true
  else begin
    Proc.suspend (fun resume ->
        let seq = b.next_seq in
        b.next_seq <- b.next_seq + 1;
        b.waiters <- (priority, seq, resume) :: b.waiters);
    acquire b ~priority
  end

let release b =
  b.busy <- false;
  b.last_release_ns <- Time.to_ns (Proc.now ());
  grant_next b

(* Retry budget left for one more attempt?  Each extra attempt is one
   pattern charged to the governor, so bus-level recovery competes with
   verification work for the same allowance. *)
let may_retry b =
  match b.gov with
  | None -> true
  | Some g ->
      if Gov.out_of_budget g then false
      else begin
        Gov.charge_patterns g 1;
        true
      end

(* Each ECC syndrome (a corrected single or a detected double) is
   diagnostic work charged like a retry: one governor pattern. *)
let charge_syndrome b =
  match b.gov with
  | Some g when not (Gov.out_of_budget g) -> Gov.charge_patterns g 1
  | _ -> ()

(* Run the injected corruption (a number of flipped bits in one coded
   word of the transfer) through the real codec on a deterministic
   witness word.  A corrected single error costs no extra time — the
   correction is combinational on the already-widened transfer; a
   detected double falls back to the master's bounded retry. *)
let ecc_check b (txn : Transaction.t) ~attempt ~flips =
  let word =
    Hashtbl.hash
      (txn.Transaction.master, txn.Transaction.target, txn.Transaction.bytes,
       attempt)
    land 0xFFFF_FFFF
  in
  let p1 = word mod Ecc.code_bits in
  let p2 = (p1 + 1 + (word / Ecc.code_bits mod (Ecc.code_bits - 1)))
           mod Ecc.code_bits in
  let corrupted =
    if flips = 1 then Ecc.encode word lxor (1 lsl p1)
    else Ecc.encode word lxor (1 lsl p1) lxor (1 lsl p2)
  in
  match Ecc.decode corrupted with
  | Ecc.Corrected { word = w; _ } when flips = 1 && w = word ->
      b.ecc_corrected <- b.ecc_corrected + 1;
      charge_syndrome b;
      if Obs.enabled () then Obs.incr_counter "bus.ecc_corrected";
      `Corrected
  | Ecc.Double_error | Ecc.Corrected _ | Ecc.Ok _ ->
      b.ecc_double_errors <- b.ecc_double_errors + 1;
      charge_syndrome b;
      if Obs.enabled () then Obs.incr_counter "bus.ecc_double";
      `Uncorrectable

let transfer ?(priority = 8) b (txn : Transaction.t) =
  let t_request = Time.to_ns (Proc.now ()) in
  if b.start_ns = None then b.start_ns <- Some t_request;
  (* one span per transaction, on the master's own track so interleaved
     masters still render as nested rectangles on the timeline *)
  let sp =
    if Obs.enabled () then
      Obs.begin_span ~track:txn.Transaction.master ~cat:"bus"
        ~args:
          [
            ("master", Json.Str txn.Transaction.master);
            ("target", Json.Str txn.Transaction.target);
            ("bytes", Json.Int txn.Transaction.bytes);
            ("priority", Json.Int priority);
          ]
        ~sim_ns:t_request
        ("bus." ^ Transaction.kind_to_string txn.Transaction.kind)
    else Obs.null_span
  in
  let ms = master_stats b txn.Transaction.master in
  let rec attempt_loop attempt =
    let t_attempt = Time.to_ns (Proc.now ()) in
    acquire b ~priority;
    let t_grant = Time.to_ns (Proc.now ()) in
    let duration = transfer_time b txn.Transaction.bytes in
    Proc.wait duration;
    (* The slave drove the bus for the full transfer even when it then
       answers ERROR/RETRY, so busy time accumulates per attempt. *)
    let dur_ns = Time.to_ns duration in
    b.busy_ns <- b.busy_ns + dur_ns;
    ms.busy_ns <- ms.busy_ns + dur_ns;
    ms.wait_ns <- ms.wait_ns + (t_grant - t_attempt);
    let verdict =
      let flips =
        match b.corruption with None -> 0 | Some h -> h txn ~attempt
      in
      if flips > 0 then
        if b.ecc then
          match ecc_check b txn ~attempt ~flips with
          | `Corrected -> `Good  (* masked in place, no retry round-trip *)
          | `Uncorrectable -> `Bad "bus.ecc_double"
        else begin
          (* unprotected bus: the corrupted transfer surfaces as an AHB
             ERROR response and pays the full retry round-trip *)
          b.error_responses <- b.error_responses + 1;
          `Bad "bus.error"
        end
      else
        match
          (match b.fault with None -> Okay | Some h -> h txn ~attempt)
        with
        | Okay -> `Good
        | Error ->
            b.error_responses <- b.error_responses + 1;
            `Bad "bus.error"
        | Retry ->
            b.retry_responses <- b.retry_responses + 1;
            `Bad "bus.retry"
    in
    match verdict with
    | `Good ->
        b.total_transactions <- b.total_transactions + 1;
        (match txn.Transaction.kind with
        | Transaction.Bitstream ->
            b.bitstream_bytes <- b.bitstream_bytes + txn.Transaction.bytes
        | Transaction.Read | Transaction.Write ->
            b.data_bytes <- b.data_bytes + txn.Transaction.bytes);
        ms.transactions <- ms.transactions + 1;
        ms.bytes <- ms.bytes + txn.Transaction.bytes;
        let wait_ns = t_grant - t_request in
        if Obs.enabled () then begin
          Obs.incr_counter "bus.transactions";
          Obs.incr_counter ~by:txn.Transaction.bytes "bus.bytes";
          Obs.observe "bus.grant_wait_ns" wait_ns;
          Obs.end_span
            ~args:
              [
                ("grant_wait_ns", Json.Int wait_ns);
                ("attempts", Json.Int (attempt + 1));
              ]
            ~sim_ns:(Time.to_ns (Proc.now ()))
            sp
        end;
        release b
    | `Bad event_name ->
        release b;
        if Obs.enabled () then
          Obs.event ~severity:Symbad_obs.Severity.Warn
            ~args:
              [
                ("master", Json.Str txn.Transaction.master);
                ("target", Json.Str txn.Transaction.target);
                ("attempt", Json.Int attempt);
              ]
            ~sim_ns:(Time.to_ns (Proc.now ()))
            event_name;
        if attempt >= b.max_retries || not (may_retry b) then begin
          b.failed_transfers <- b.failed_transfers + 1;
          if Obs.enabled () then
            Obs.end_span
              ~args:[ ("failed", Json.Bool true) ]
              ~sim_ns:(Time.to_ns (Proc.now ()))
              sp;
          raise
            (Transfer_failed
               {
                 master = txn.Transaction.master;
                 target = txn.Transaction.target;
                 attempts = attempt + 1;
               })
        end
        else begin
          (* exponential backoff before re-requesting the bus *)
          Proc.wait (Time.ns (b.period_ns * (1 lsl attempt)));
          attempt_loop (attempt + 1)
        end
  in
  attempt_loop 0

type report = {
  transactions : int;
  busy_ns : int;
  data_bytes : int;
  bitstream_bytes : int;
  error_responses : int;
  retry_responses : int;
  failed_transfers : int;
  ecc_corrected : int;
  ecc_double_errors : int;
  utilisation : float;  (* busy time / observed activity window *)
  per_master : (string * master_stats) list;
}

let report b =
  (* observed activity window: first request to last release.  With no
     transactions (or a degenerate zero-length window) utilisation is
     0.0 by definition, never a division by zero. *)
  let window =
    match b.start_ns with
    | None -> 0
    | Some start -> b.last_release_ns - start
  in
  {
    transactions = b.total_transactions;
    busy_ns = b.busy_ns;
    data_bytes = b.data_bytes;
    bitstream_bytes = b.bitstream_bytes;
    error_responses = b.error_responses;
    retry_responses = b.retry_responses;
    failed_transfers = b.failed_transfers;
    ecc_corrected = b.ecc_corrected;
    ecc_double_errors = b.ecc_double_errors;
    utilisation =
      (if b.total_transactions = 0 || window <= 0 then 0.
       else float_of_int b.busy_ns /. float_of_int window);
    per_master =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) b.masters []
      |> List.sort (fun (a, _) (c, _) -> String.compare a c);
  }

let pp_report fmt r =
  Fmt.pf fmt "transactions=%d busy=%dns data=%dB bitstream=%dB util=%.1f%%"
    r.transactions r.busy_ns r.data_bytes r.bitstream_bytes
    (100. *. r.utilisation);
  if r.error_responses + r.retry_responses + r.failed_transfers > 0 then
    Fmt.pf fmt " errors=%d retries=%d failed=%d" r.error_responses
      r.retry_responses r.failed_transfers;
  if r.ecc_corrected + r.ecc_double_errors > 0 then
    Fmt.pf fmt " ecc_corrected=%d ecc_double=%d" r.ecc_corrected
      r.ecc_double_errors;
  List.iter
    (fun (m, (s : master_stats)) ->
      Fmt.pf fmt "@.  %s: %d txns, %dB, busy %dns, waited %dns" m
        s.transactions s.bytes s.busy_ns s.wait_ns)
    r.per_master
