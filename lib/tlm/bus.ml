(* AMBA-like shared bus model at transaction level.

   One transaction owns the bus at a time; pending masters are granted in
   fixed-priority order (lower number = higher priority), which is the AHB
   arbitration scheme.  The transfer cost model is
     cycles = arbitration + setup + ceil(bytes / width)
   and the model accumulates utilisation and per-master statistics, the
   "bus loading" figures the paper grades architectures with. *)

module Proc = Symbad_sim.Process
module Time = Symbad_sim.Time
module Obs = Symbad_obs.Obs
module Json = Symbad_obs.Json

type master_stats = {
  mutable transactions : int;
  mutable bytes : int;
  mutable busy_ns : int;
  mutable wait_ns : int;
}

type t = {
  name : string;
  width_bytes : int;
  period_ns : int;
  arbitration_cycles : int;
  setup_cycles : int;
  mutable busy : bool;
  mutable waiters : (int * int * (unit -> unit)) list;
  mutable next_seq : int;
  mutable busy_ns : int;
  mutable total_transactions : int;
  mutable bitstream_bytes : int;
  mutable data_bytes : int;
  masters : (string, master_stats) Hashtbl.t;
  mutable start_ns : int option;
  mutable last_release_ns : int;
}

let create ?(width_bytes = 4) ?(period_ns = 10) ?(arbitration_cycles = 1)
    ?(setup_cycles = 1) name =
  if width_bytes <= 0 then invalid_arg "Bus.create: width";
  if period_ns <= 0 then invalid_arg "Bus.create: period";
  {
    name;
    width_bytes;
    period_ns;
    arbitration_cycles;
    setup_cycles;
    busy = false;
    waiters = [];
    next_seq = 0;
    busy_ns = 0;
    total_transactions = 0;
    bitstream_bytes = 0;
    data_bytes = 0;
    masters = Hashtbl.create 8;
    start_ns = None;
    last_release_ns = 0;
  }

let name b = b.name
let period_ns b = b.period_ns

let master_stats b master =
  match Hashtbl.find_opt b.masters master with
  | Some s -> s
  | None ->
      let s = { transactions = 0; bytes = 0; busy_ns = 0; wait_ns = 0 } in
      Hashtbl.add b.masters master s;
      s

let transfer_cycles b bytes =
  b.arbitration_cycles + b.setup_cycles
  + ((bytes + b.width_bytes - 1) / b.width_bytes)

let transfer_time b bytes = Time.ns (transfer_cycles b bytes * b.period_ns)

(* Grant the bus to the best waiter (lowest priority number, then FIFO). *)
let grant_next b =
  match b.waiters with
  | [] -> ()
  | ws ->
      let best =
        List.fold_left
          (fun acc w ->
            let (p, s, _) = w and (pa, sa, _) = acc in
            if p < pa || (p = pa && s < sa) then w else acc)
          (List.hd ws) (List.tl ws)
      in
      let (_, seq, resume) = best in
      b.waiters <- List.filter (fun (_, s, _) -> s <> seq) b.waiters;
      resume ()

let rec acquire b ~priority =
  if not b.busy then b.busy <- true
  else begin
    Proc.suspend (fun resume ->
        let seq = b.next_seq in
        b.next_seq <- b.next_seq + 1;
        b.waiters <- (priority, seq, resume) :: b.waiters);
    acquire b ~priority
  end

let release b =
  b.busy <- false;
  b.last_release_ns <- Time.to_ns (Proc.now ());
  grant_next b

let transfer ?(priority = 8) b (txn : Transaction.t) =
  let t_request = Time.to_ns (Proc.now ()) in
  if b.start_ns = None then b.start_ns <- Some t_request;
  (* one span per transaction, on the master's own track so interleaved
     masters still render as nested rectangles on the timeline *)
  let sp =
    if Obs.enabled () then
      Obs.begin_span ~track:txn.Transaction.master ~cat:"bus"
        ~args:
          [
            ("master", Json.Str txn.Transaction.master);
            ("target", Json.Str txn.Transaction.target);
            ("bytes", Json.Int txn.Transaction.bytes);
            ("priority", Json.Int priority);
          ]
        ~sim_ns:t_request
        ("bus." ^ Transaction.kind_to_string txn.Transaction.kind)
    else Obs.null_span
  in
  acquire b ~priority;
  let t_grant = Time.to_ns (Proc.now ()) in
  let duration = transfer_time b txn.Transaction.bytes in
  Proc.wait duration;
  let dur_ns = Time.to_ns duration in
  b.busy_ns <- b.busy_ns + dur_ns;
  b.total_transactions <- b.total_transactions + 1;
  (match txn.Transaction.kind with
  | Transaction.Bitstream ->
      b.bitstream_bytes <- b.bitstream_bytes + txn.Transaction.bytes
  | Transaction.Read | Transaction.Write ->
      b.data_bytes <- b.data_bytes + txn.Transaction.bytes);
  let ms = master_stats b txn.Transaction.master in
  ms.transactions <- ms.transactions + 1;
  ms.bytes <- ms.bytes + txn.Transaction.bytes;
  ms.busy_ns <- ms.busy_ns + dur_ns;
  let wait_ns = t_grant - t_request in
  ms.wait_ns <- ms.wait_ns + wait_ns;
  if Obs.enabled () then begin
    Obs.incr_counter "bus.transactions";
    Obs.incr_counter ~by:txn.Transaction.bytes "bus.bytes";
    Obs.observe "bus.grant_wait_ns" wait_ns;
    Obs.end_span
      ~args:[ ("grant_wait_ns", Json.Int wait_ns) ]
      ~sim_ns:(Time.to_ns (Proc.now ()))
      sp
  end;
  release b

type report = {
  transactions : int;
  busy_ns : int;
  data_bytes : int;
  bitstream_bytes : int;
  utilisation : float;  (* busy time / observed activity window *)
  per_master : (string * master_stats) list;
}

let report b =
  (* observed activity window: first request to last release.  With no
     transactions (or a degenerate zero-length window) utilisation is
     0.0 by definition, never a division by zero. *)
  let window =
    match b.start_ns with
    | None -> 0
    | Some start -> b.last_release_ns - start
  in
  {
    transactions = b.total_transactions;
    busy_ns = b.busy_ns;
    data_bytes = b.data_bytes;
    bitstream_bytes = b.bitstream_bytes;
    utilisation =
      (if b.total_transactions = 0 || window <= 0 then 0.
       else float_of_int b.busy_ns /. float_of_int window);
    per_master =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) b.masters []
      |> List.sort (fun (a, _) (c, _) -> String.compare a c);
  }

let pp_report fmt r =
  Fmt.pf fmt "transactions=%d busy=%dns data=%dB bitstream=%dB util=%.1f%%"
    r.transactions r.busy_ns r.data_bytes r.bitstream_bytes
    (100. *. r.utilisation);
  List.iter
    (fun (m, (s : master_stats)) ->
      Fmt.pf fmt "@.  %s: %d txns, %dB, busy %dns, waited %dns" m
        s.transactions s.bytes s.busy_ns s.wait_ns)
    r.per_master
