(* SEC-DED error-correcting code for 32-bit bus words.

   The core is the Hamming(38,32) code: 6 check bits at the power-of-two
   positions 1,2,4,8,16,32 of a 38-position block, the 32 data bits at
   the remaining positions.  That code has distance 3 — it corrects any
   single-bit error but cannot tell a double from a single — so, as in
   every deployed SEC-DED memory, it is extended with one overall parity
   bit (position 0) to distance 4: single errors are corrected, double
   errors are detected and never miscorrected.  The codeword is 39 bits
   for 32 data bits, which is the 39/32 transfer widening the bus
   charges in ECC mode. *)

let data_bits = 32
let code_bits = 39

let is_pow2 p = p land (p - 1) = 0
let parity_positions = [ 1; 2; 4; 8; 16; 32 ]

(* The 32 non-power-of-two positions in 1..38, LSB-first data order. *)
let data_positions =
  List.filter (fun p -> not (is_pow2 p)) (List.init 38 (fun i -> i + 1))

let bit cw p = (cw lsr p) land 1

(* Parity of the Hamming group [p]: every position in 1..38 whose index
   has bit [p] set (the group includes its own check position). *)
let group_parity cw p =
  List.fold_left
    (fun acc q -> if q land p <> 0 then acc lxor bit cw q else acc)
    0
    (List.init 38 (fun i -> i + 1))

let overall_parity cw =
  List.fold_left (fun acc q -> acc lxor bit cw q) 0 (List.init 39 Fun.id)

let encode word =
  let word = word land 0xFFFF_FFFF in
  let cw = ref 0 in
  List.iteri
    (fun i p -> if (word lsr i) land 1 = 1 then cw := !cw lor (1 lsl p))
    data_positions;
  List.iter
    (fun p -> if group_parity !cw p = 1 then cw := !cw lor (1 lsl p))
    parity_positions;
  if overall_parity !cw = 1 then cw := !cw lor 1;
  !cw

let extract cw =
  List.fold_left
    (fun acc (i, p) -> acc lor (bit cw p lsl i))
    0
    (List.mapi (fun i p -> (i, p)) data_positions)

(* With all check groups clean after encoding, the syndrome is the xor
   of the flipped positions — for a single flip, its address. *)
let syndrome cw =
  List.fold_left
    (fun s p -> if group_parity cw p = 1 then s lor p else s)
    0 parity_positions

type decoded =
  | Ok of int
  | Corrected of { word : int; bit : int }
  | Double_error

let decode cw =
  let s = syndrome cw in
  let odd = overall_parity cw = 1 in
  if s = 0 && not odd then Ok (extract cw)
  else if odd then
    (* odd weight flipped: a single error.  [s] addresses it; [s = 0]
       means the overall parity bit itself was hit. *)
    if s <= 38 then Corrected { word = extract (cw lxor (1 lsl s)); bit = s }
    else Double_error (* impossible under the <= 2-flip model *)
  else
    (* even number of flips but a non-zero syndrome: a double error —
       detected, deliberately not "corrected" *)
    Double_error
