(** Shared-bus model (AMBA AHB style) at transaction level.

    Exactly one transaction owns the bus at a time; contending masters are
    granted in fixed-priority order (lower number wins), FIFO within a
    priority.  Transfer cost is
    [arbitration + setup + ceil(bytes/width)] bus cycles.

    Fault injection: a hook installed with {!inject_faults} decides the
    slave response of every completed transfer ({!response}, the AHB
    OKAY/ERROR/RETRY phase).  The master-side recovery is a bounded retry
    with exponential backoff ([period_ns * 2{^attempt}] between
    attempts); when the retry budget is exhausted the transfer raises
    {!Transfer_failed}.  With a governor installed ({!govern}) every
    extra attempt charges one pattern, so bus-level recovery competes
    with the verification engines for the same allowance and an
    exhausted governor stops the retrying early. *)

type t

(** Slave response to a completed transfer — the AHB response phase. *)
type response =
  | Okay  (** transfer accepted *)
  | Error  (** slave error; the master may re-attempt *)
  | Retry  (** slave asks the master to retry the transfer *)

exception
  Transfer_failed of { master : string; target : string; attempts : int }
(** Raised by {!transfer} when every attempt (1 + [max_retries], or
    fewer under an exhausted governor) drew a non-[Okay] response. *)

val create :
  ?width_bytes:int ->
  ?period_ns:int ->
  ?arbitration_cycles:int ->
  ?setup_cycles:int ->
  ?max_retries:int ->
  ?ecc:bool ->
  string ->
  t
(** [create name] with defaults: 32-bit bus ([width_bytes = 4]),
    100 MHz ([period_ns = 10]), 1 arbitration and 1 setup cycle,
    [max_retries = 3] re-attempts after a faulted response.

    With [ecc] (default [false]) every transfer is SEC-DED protected
    ({!Ecc}): payloads travel as 39-bit codewords per 32 data bits —
    {!transfer_cycles} charges the widened transfer on every
    transaction, faulted or not — single-bit corruptions (see
    {!inject_corruption}) are corrected in place with no retry
    round-trip, and double-bit corruptions are detected and fall back
    to the bounded retry. *)

val name : t -> string
val period_ns : t -> int

val ecc : t -> bool
(** Whether this bus was created with SEC-DED protection. *)

val inject_faults : t -> (Transaction.t -> attempt:int -> response) option -> unit
(** Install (or with [None] remove) the slave-response hook.  The hook
    sees the transaction and the 0-based attempt number, and must be
    deterministic for reproducible campaigns.  Without a hook every
    response is [Okay] — the exact pre-fault behaviour. *)

val inject_corruption : t -> (Transaction.t -> attempt:int -> int) option -> unit
(** Install (or remove) the in-flight corruption hook: the hook returns
    how many bits of one coded word of the transfer were flipped ([0] =
    clean).  On an ECC bus a single flip is corrected in place (counted
    in [ecc_corrected], the transfer completes normally) and a double
    flip is detected ([ecc_double_errors]) and retried; each syndrome
    charges one governor pattern.  On a plain bus any corruption
    surfaces as an ERROR response.  Must be deterministic. *)

val govern : t -> Symbad_gov.Gov.t -> unit
(** Charge each retry attempt against [gov] (one pattern per extra
    attempt); once [gov] is out of budget, faulted transfers fail
    immediately instead of retrying. *)

val transfer_cycles : t -> int -> int
(** [transfer_cycles b bytes] is the cost of one transaction in bus
    cycles, without contention. *)

val transfer_time : t -> int -> Symbad_sim.Time.t

val transfer : ?priority:int -> t -> Transaction.t -> unit
(** Perform a transaction from inside a simulation process: waits for the
    bus grant, then for the transfer duration.  [priority] defaults to 8
    (lowest sensible); bitstream downloads typically use a high priority.
    Raises {!Transfer_failed} when an injected fault outlasts the retry
    budget. *)

type master_stats = {
  mutable transactions : int;
  mutable bytes : int;
  mutable busy_ns : int;
  mutable wait_ns : int;  (** time spent waiting for grants *)
}

type report = {
  transactions : int;  (** successful transfers *)
  busy_ns : int;  (** bus occupancy, faulted attempts included *)
  data_bytes : int;
  bitstream_bytes : int;  (** traffic due to FPGA reconfiguration *)
  error_responses : int;  (** injected ERROR responses observed *)
  retry_responses : int;  (** injected RETRY responses observed *)
  failed_transfers : int;  (** transfers that exhausted their retries *)
  ecc_corrected : int;  (** single-bit corruptions corrected in place *)
  ecc_double_errors : int;  (** double-bit corruptions detected *)
  utilisation : float;  (** busy time over the observed activity window *)
  per_master : (string * master_stats) list;
}

val report : t -> report
val pp_report : Format.formatter -> report -> unit
