(** SEC-DED error-correcting code for 32-bit bus words.

    The Hamming(38,32) code — 6 check bits at the power-of-two
    positions of a 38-position block — extended with one overall parity
    bit to distance 4, the standard SEC-DED construction: every
    single-bit error is corrected, every double-bit error is detected
    and never miscorrected.  Codewords are {!code_bits} = 39 bits for
    {!data_bits} = 32 data bits; the 39/32 ratio is the transfer
    widening an ECC-protected bus charges. *)

val data_bits : int
(** 32. *)

val code_bits : int
(** 39: 32 data + 6 Hamming check bits + 1 overall parity bit. *)

val encode : int -> int
(** [encode word] is the 39-bit codeword of the low 32 bits of
    [word]. *)

type decoded =
  | Ok of int  (** clean codeword; the data word *)
  | Corrected of { word : int; bit : int }
      (** single-bit error at codeword position [bit], corrected in
          place; [word] is the repaired data *)
  | Double_error  (** two-bit error: detected, not correctable *)

val decode : int -> decoded
(** Check-and-correct a received codeword.  Exact for at most two
    flipped bits (the code's design point). *)

val syndrome : int -> int
(** The Hamming syndrome of a codeword: [0] when all check groups are
    clean, else the xor of the flipped positions. *)
