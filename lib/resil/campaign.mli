(** The fault-injection campaign engine.

    A campaign runs the level-3 face-recognition platform once
    fault-free (the baseline), then once per planned fault with the
    injection installed, and grades each trial on five questions:
    {e injected} (did the fault land), {e detected} (did a mechanism
    observe it), {e recovered} (did recovery complete), {e masked} (was
    the fault absorbed at zero recovery latency with the result still
    correct), {e correct} (does the run elect the baseline WINNER).
    Trial 0 is the uninjected control and must be byte-identical to the
    baseline.

    Campaigns run in one of two operating modes: {!Scrub} is the
    detect-and-repair platform (CRC-checked downloads, readback
    scrubbing, bounded retry); {!Tmr} is the masked-fault mode — TMR
    contexts voted at every readout plus SEC-DED bus ECC — which pays
    fabric area and bus bandwidth up front to drive recovery latency to
    zero.

    The plan is drawn from the seed before the fan-out and the
    governor's allowance is read once up front, so the report is
    byte-identical at any pool width.  Budget exhaustion skips trials
    and degrades the verdict to inconclusive; an undetected or
    uncorrected fault is a disproof — neither is ever a pass. *)

(** The campaign's operating mode: scrubbing-only recovery, or
    TMR + bus-ECC masking. *)
type mode = Scrub | Tmr

val mode_to_string : mode -> string
(** ["scrub"] or ["tmr"]. *)

val mode_of_string : string -> mode option
(** Inverse of {!mode_to_string}. *)

(** The grade of one trial. *)
type outcome = {
  trial : int;  (** position in the plan; 0 is the control *)
  kind : string;  (** ["control"] or a {!Fault.kind} name *)
  injection : string;  (** the planned fault, human-readable *)
  injected : bool;
  detected : bool;
  recovered : bool;
  masked : bool;
      (** absorbed by a masking mechanism (TMR vote, ECC correction) at
          zero recovery latency, with the result still correct *)
  correct : bool;  (** elects the baseline WINNER *)
  skipped : bool;  (** not run: budget exhausted *)
  recovery_ns : int;
      (** simulated service-completion latency paid over the baseline *)
  detail : string;  (** mechanism counters, one line *)
}

(** Per-fault-kind aggregate for the dependability table. *)
type kind_row = {
  row_kind : string;
  row_trials : int;
  row_injected : int;
  row_detected : int;
  row_recovered : int;
  row_masked : int;
  row_correct : int;
}

(** The dependability report.  Every field is an int, bool or string
    derived from simulated time — no wall clock — so the rendered forms
    are byte-stable. *)
type report = {
  seed : int;
  mode : string;  (** {!mode_to_string} of the operating mode *)
  trials_per_kind : int;
  kind_names : string list;
  baseline_latency_ns : int;
  fabric_area : int;
      (** resource areas the baseline run loaded, all TMR copies counted
          — the area price of the masked mode *)
  outcomes : outcome list;
  per_kind : kind_row list;
  control_ok : bool;  (** the uninjected control matched the baseline *)
  skipped : int;
  masked_trials : int;  (** executed trials graded {!outcome.masked} *)
  histogram : (string * int) list;
      (** log-2 buckets of {!outcome.recovery_ns} over executed trials *)
  passed : bool;  (** no skips and every trial passed *)
}

val trial_passed : outcome -> bool
(** An executed control that matched, or an executed injection that was
    injected, detected, recovered {e and} correct. *)

val run :
  ?pool:Symbad_par.Par.pool ->
  ?gov:Symbad_gov.Gov.t ->
  ?mode:mode ->
  ?kinds:Fault.kind list ->
  ?trials_per_kind:int ->
  ?workload:Symbad_core.Face_app.workload ->
  ?scrub_period_ns:int ->
  seed:int ->
  unit ->
  report
(** Run a campaign.  [mode] defaults to {!Scrub}; [kinds] defaults to
    {!Fault.all_kinds}, [trials_per_kind] to [3], [workload] to
    {!Symbad_core.Face_app.smoke_workload}.  [scrub_period_ns] (default
    [10_000]) is the readback-scrubbing period used for configuration
    upsets in {!Scrub} mode; in {!Tmr} mode upsets are caught by the
    voter at readout instead and scrubbing stays off.  [0] disables
    scrubbing, which makes scrub-mode upsets undetectable — the campaign
    then reports them as failures, never as passes.  Trials cost one
    governor pattern each; trials the budget cannot cover are
    skipped. *)

val first_failure : report -> outcome option
(** The first executed trial that did not pass, if any. *)

val verdict : ?name:string -> report -> Symbad_core.Verdict.t
(** [Disproved] naming the first failing trial; else [Inconclusive] if
    any trial was skipped; else [Proved]. *)

val to_json : report -> Symbad_obs.Json.t
(** Byte-stable JSON rendering (the committed artefact format). *)

val to_markdown : report -> string
(** Byte-stable markdown rendering: the dependability table per fault
    kind plus the recovery-latency histogram. *)

val compare_modes : scrub:report -> tmr:report -> Symbad_obs.Json.t
(** Side-by-side masked-vs-scrub comparison: fault-survival, masked and
    zero-recovery-latency counts, fabric area, baseline latency and the
    recovery histograms of both modes (the [BENCH_tmr] comparison
    block). *)

val compare_modes_markdown : scrub:report -> tmr:report -> string
(** {!compare_modes} rendered as markdown tables. *)

val check :
  ?gov:Symbad_gov.Gov.t ->
  ?pool:Symbad_par.Par.pool ->
  ?jobs:int ->
  ?mode:mode ->
  ?kinds:Fault.kind list ->
  ?trials_per_kind:int ->
  ?workload:Symbad_core.Face_app.workload ->
  ?scrub_period_ns:int ->
  seed:int ->
  unit ->
  Symbad_core.Verdict.t
(** The campaign behind the unified driver shape
    ([?gov ?pool ?jobs ~seed target -> Verdict.t] — see
    [Symbad_core.Engines]): {!run} consolidated by {!verdict}.  [jobs]
    builds a pool scoped to the call; [pool] wins when both are
    given. *)
