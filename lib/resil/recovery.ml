(* The recovery state machine of the reconfiguration controller, as a
   level-4 netlist, with the safety/bounded-liveness properties that the
   model checker discharges.

   States: OPER (delivering service from the fabric), DETECT (a fault was
   flagged), RECOV (re-download / reload in progress, bounded tries),
   FALLBACK (fabric given up, service delivered from software).  Both
   OPER and FALLBACK are *operational*: the pipeline produces tokens.
   The checked contract is the campaign's dependability argument in
   miniature: recovery always terminates, in bounded time, in an
   operational state — there is no state from which service is lost. *)

module Expr = Symbad_hdl.Expr
module Netlist = Symbad_hdl.Netlist
module Bitvec = Symbad_hdl.Bitvec
module Prop = Symbad_mc.Prop
module Engine = Symbad_mc.Engine

let oper = 0
let detect = 1
let recov = 2
let fallback = 3

let st n = Expr.const ~width:2 n
let state = Expr.reg "state"
let tries = Expr.reg "tries"
let nonop = Expr.reg "nonop"
let in_state n = Expr.eq state (st n)

let netlist ?(max_tries = 2) () =
  if max_tries < 1 || max_tries > 3 then
    invalid_arg "Recovery.netlist: max_tries in 1..3";
  let fault = Expr.input "fault" and done_ = Expr.input "done" in
  let tmax = Expr.const ~width:2 max_tries in
  let next_state =
    Expr.mux (in_state oper)
      (Expr.mux fault (st detect) (st oper))
      (Expr.mux (in_state detect) (st recov)
         (Expr.mux (in_state recov)
            (Expr.mux done_ (st oper)
               (Expr.mux (Expr.eq tries tmax) (st fallback) (st recov)))
            (st fallback)))
  in
  let next_tries =
    Expr.mux (in_state recov)
      (Expr.mux done_
         (Expr.const ~width:2 0)
         (Expr.mux (Expr.eq tries tmax) tries
            (Expr.add tries (Expr.const ~width:2 1))))
      (Expr.const ~width:2 0)
  in
  let operational = Expr.or_ (in_state oper) (in_state fallback) in
  (* consecutive non-operational cycles observed so far; the bounded-
     liveness witness *)
  let next_nonop =
    Expr.mux operational
      (Expr.const ~width:3 0)
      (Expr.add nonop (Expr.const ~width:3 1))
  in
  Netlist.make ~name:"recovery_ctrl"
    ~inputs:[ ("fault", 1); ("done", 1) ]
    ~registers:
      [
        {
          Netlist.name = "state";
          width = 2;
          init = Bitvec.make ~width:2 oper;
          next = next_state;
        };
        {
          Netlist.name = "tries";
          width = 2;
          init = Bitvec.make ~width:2 0;
          next = next_tries;
        };
        {
          Netlist.name = "nonop";
          width = 3;
          init = Bitvec.make ~width:3 0;
          next = next_nonop;
        };
      ]
    ~outputs:
      [ ("operational", operational); ("recovering", Expr.or_ (in_state detect) (in_state recov)) ]

let properties ?(max_tries = 2) nl =
  let implies = Prop.implies and next = Prop.next in
  let tmax = Expr.const ~width:2 max_tries in
  let done_ = Expr.input "done" in
  let operational = Prop.output nl "operational" in
  [
    (* the retry counter never escapes its bound *)
    Prop.make ~name:"recovery.tries_bounded" (Expr.ule tries tmax);
    (* successful recovery returns to normal operation *)
    Prop.make_step ~name:"recovery.success_returns_oper"
      (implies (Expr.and_ (in_state recov) done_) (next (in_state oper)));
    (* exhausted recovery degrades to the software fallback, it does not
       keep spinning *)
    Prop.make_step ~name:"recovery.exhaustion_degrades"
      (implies
         (Expr.and_ (in_state recov)
            (Expr.and_ (Expr.not_ done_) (Expr.eq tries tmax)))
         (next (in_state fallback)));
    (* the fallback is absorbing: once degraded, service stays up *)
    Prop.make_step ~name:"recovery.fallback_absorbing"
      (implies (in_state fallback) (next (in_state fallback)));
    (* bounded liveness: the machine is never non-operational for more
       than DETECT + (max_tries + 1) RECOV cycles — it always returns to
       an operational state (OPER or FALLBACK) in bounded time *)
    Prop.make ~name:"recovery.operational_in_bounded_time"
      (Expr.ule nonop (Expr.const ~width:3 (max_tries + 2)));
    (* an operational state always delivers service *)
    Prop.make ~name:"recovery.service_defined"
      (Expr.eq operational
         (Expr.or_ (in_state oper) (in_state fallback)));
  ]

let check ?pool ?gov ?(max_tries = 2) () =
  let nl = netlist ~max_tries () in
  Engine.check_all ?pool ?gov nl (properties ~max_tries nl)

let all_proved = Engine.all_proved
