(* The fault-injection campaign engine.

   A campaign runs the level-3 face-recognition platform once fault-free
   (the baseline), then re-runs it once per planned fault with the
   corresponding injection installed, and grades every trial on
   OSVVM-style questions: did the fault land (injected), did a detection
   mechanism observe it (detected), did a recovery mechanism complete
   (recovered), was the fault masked — result still correct at zero
   recovery latency (masked) — and did the pipeline still elect the
   baseline WINNER (correct)?  Trial 0 is always the uninjected control:
   it must be byte-identical to the baseline, the scoreboard that proves
   the injection machinery itself perturbs nothing when disarmed.

   Operating modes: [Scrub] is the detect-and-repair platform of PR 4
   (CRC-checked downloads, readback scrubbing, bounded retry); [Tmr]
   is the masked-fault mode — TMR contexts voted at every readout plus
   SEC-DED bus ECC — which pays area and bandwidth up front to make
   recovery latency vanish.

   Determinism contract: the plan is drawn from the seed before the
   fan-out, every trial simulation is deterministic, and the governor's
   allowance is read once before the fan-out — so the report is
   byte-identical at any pool width.  Exhaustion skips trials and the
   verdict degrades to inconclusive; an undetected or uncorrected fault
   is a disproof.  Neither is ever an optimistic pass. *)

module Par = Symbad_par.Par
module Gov = Symbad_gov.Gov
module Degrade = Symbad_gov.Degrade
module Rng = Symbad_image.Rng
module Obs = Symbad_obs.Obs
module Json = Symbad_obs.Json
module Trace = Symbad_sim.Trace
module Kernel = Symbad_sim.Kernel
module Process = Symbad_sim.Process
module Time = Symbad_sim.Time
module Transaction = Symbad_tlm.Transaction
module Bus = Symbad_tlm.Bus
module Fpga = Symbad_fpga.Fpga
module Level1 = Symbad_core.Level1
module Level3 = Symbad_core.Level3
module Mapping = Symbad_core.Mapping
module Face_app = Symbad_core.Face_app
module Verdict = Symbad_core.Verdict

type mode = Scrub | Tmr

let mode_to_string = function Scrub -> "scrub" | Tmr -> "tmr"

let mode_of_string = function
  | "scrub" -> Some Scrub
  | "tmr" -> Some Tmr
  | _ -> None

type outcome = {
  trial : int;
  kind : string;  (* "control" or a Fault.kind name *)
  injection : string;
  injected : bool;
  detected : bool;
  recovered : bool;
  masked : bool;
  correct : bool;
  skipped : bool;
  recovery_ns : int;
  detail : string;
}

type kind_row = {
  row_kind : string;
  row_trials : int;
  row_injected : int;
  row_detected : int;
  row_recovered : int;
  row_masked : int;
  row_correct : int;
}

type report = {
  seed : int;
  mode : string;
  trials_per_kind : int;
  kind_names : string list;
  baseline_latency_ns : int;
  fabric_area : int;  (* resource areas consumed, all copies *)
  outcomes : outcome list;
  per_kind : kind_row list;
  control_ok : bool;
  skipped : int;
  masked_trials : int;
  histogram : (string * int) list;
  passed : bool;
}

let trial_passed (o : outcome) =
  (not o.skipped) && o.correct
  && (String.equal o.kind "control"
     || (o.injected && o.detected && o.recovered))

(* The garbling mask used for downloads: two flipped bits, guaranteed to
   move the CRC. *)
let seu_mask = 0x0008_0004

let winner_stream trace =
  Trace.stream_of trace ~source:"WINNER" ~label:"result"

(* Service completion: the instant the pipeline produced its last data
   token.  Recovery latency is graded against this, not against the
   kernel's final event time, so saboteur bookkeeping wake-ups never
   masquerade as recovery cost. *)
let service_ns (r : Level3.result) =
  List.fold_left
    (fun acc (e : Trace.entry) -> max acc (Time.to_ns e.Trace.time))
    0
    (Trace.entries r.Level3.trace)

let total_drops (r : Level3.result) =
  List.fold_left
    (fun acc (_, (o : Symbad_sim.Fifo.occupancy)) ->
      acc + o.Symbad_sim.Fifo.drops)
    0 r.Level3.channel_occupancy

(* Grade one completed run against the baseline.  [masked] is the
   strongest grade: the mechanism absorbed the fault without a retry
   round-trip or a repair pause — the result is correct and the service
   completed at exactly the baseline instant. *)
let grade ~baseline ~base_winner inj (r : Level3.result) =
  let fs = r.Level3.fpga_stats in
  let bs = r.Level3.bus_report in
  let correct = winner_stream r.Level3.trace = base_winner in
  let recovery_ns = max 0 (service_ns r - service_ns baseline) in
  let injected, detected, recovered, masked, detail =
    match inj with
    | Fault.Seu _ ->
        let hit = fs.Fpga.crc_mismatches > 0 in
        ( hit,
          hit,
          hit && fs.Fpga.failed_downloads = 0,
          false,
          Printf.sprintf "crc_mismatches=%d retried=%d failed=%d"
            fs.Fpga.crc_mismatches fs.Fpga.retried_downloads
            fs.Fpga.failed_downloads )
    | Fault.Upset _ ->
        let scrubbed = fs.Fpga.scrub_reloads > 0 in
        let voted = fs.Fpga.voter_disagreements > 0 in
        let repaired = scrubbed || fs.Fpga.targeted_repairs > 0 in
        ( true,
          scrubbed || voted,
          repaired,
          voted && fs.Fpga.targeted_repairs > 0 && correct && recovery_ns = 0,
          Printf.sprintf "scrubs=%d reloads=%d disagreements=%d targeted=%d"
            fs.Fpga.scrubs fs.Fpga.scrub_reloads fs.Fpga.voter_disagreements
            fs.Fpga.targeted_repairs )
    | Fault.Bus _ ->
        let seen = bs.Bus.error_responses + bs.Bus.retry_responses in
        ( seen > 0,
          seen > 0,
          seen > 0 && bs.Bus.failed_transfers = 0,
          false,
          Printf.sprintf "errors=%d retries=%d failed=%d"
            bs.Bus.error_responses bs.Bus.retry_responses
            bs.Bus.failed_transfers )
    | Fault.Flip { bits; _ } ->
        (* on an ECC bus a single flip is corrected in place and a
           double detected then retried; on a plain bus both surface as
           ERROR responses and ride the retry *)
        let seen =
          bs.Bus.ecc_corrected + bs.Bus.ecc_double_errors
          + bs.Bus.error_responses
        in
        ( seen > 0,
          seen > 0,
          seen > 0 && bs.Bus.failed_transfers = 0,
          bits = 1 && bs.Bus.ecc_corrected > 0
          && bs.Bus.failed_transfers = 0 && correct && recovery_ns = 0,
          Printf.sprintf "ecc_corrected=%d ecc_double=%d errors=%d failed=%d"
            bs.Bus.ecc_corrected bs.Bus.ecc_double_errors
            bs.Bus.error_responses bs.Bus.failed_transfers )
    | Fault.Loss _ ->
        let drops = total_drops r in
        (* the retransmit is the only way a dropped token's stream still
           completes, so recovery is graded by completed delivery *)
        ( drops > 0,
          drops > 0,
          drops > 0 && correct,
          false,
          Printf.sprintf "drops=%d" drops )
    | Fault.Stuck _ ->
        ( true,
          fs.Fpga.watchdog_fires > 0,
          r.Level3.sw_fallbacks > 0,
          false,
          Printf.sprintf "watchdog=%d fallbacks=%d" fs.Fpga.watchdog_fires
            r.Level3.sw_fallbacks )
  in
  (injected, detected, recovered, masked, correct, recovery_ns, detail)

(* The uninjected control: every observable of the platform run must be
   byte-identical to the baseline — the scoreboard for the injection
   machinery itself. *)
let grade_control ~baseline (r : Level3.result) =
  let mismatches =
    List.filter_map
      (fun (name, same) -> if same then None else Some name)
      [
        ( "trace",
          Trace.equal_data ~reference:baseline.Level3.trace
            ~actual:r.Level3.trace );
        ("latency", r.Level3.latency_ns = baseline.Level3.latency_ns);
        ("bus", r.Level3.bus_report = baseline.Level3.bus_report);
        ("fpga", r.Level3.fpga_stats = baseline.Level3.fpga_stats);
        ("cpu", r.Level3.cpu_stats = baseline.Level3.cpu_stats);
        ("fallbacks", r.Level3.sw_fallbacks = baseline.Level3.sw_fallbacks);
        ( "channels",
          r.Level3.channel_occupancy = baseline.Level3.channel_occupancy );
      ]
  in
  ( mismatches = [],
    if mismatches = [] then "identical to baseline"
    else "differs from baseline: " ^ String.concat "," mismatches )

let run_one ~workload ~mapping ~baseline ~base_winner ~base_config
    ~scrub_period_ns (index, inj_opt) =
  let graph = Face_app.graph workload in
  match inj_opt with
  | None -> (
      match Level3.run ~config:base_config graph mapping with
      | r ->
          let ok, detail = grade_control ~baseline r in
          {
            trial = index;
            kind = "control";
            injection = "none";
            injected = false;
            detected = false;
            recovered = false;
            masked = false;
            correct = ok;
            skipped = false;
            recovery_ns = 0;
            detail;
          }
      | exception e ->
          {
            trial = index;
            kind = "control";
            injection = "none";
            injected = false;
            detected = false;
            recovered = false;
            masked = false;
            correct = false;
            skipped = false;
            recovery_ns = 0;
            detail = "crashed: " ^ Printexc.to_string e;
          })
  | Some inj -> (
      let kind = Fault.kind_of_injection inj in
      let config =
        match inj with
        | Fault.Upset _ when not base_config.Level3.masked ->
            (* scrub mode detects upsets by periodic readback; in masked
               mode the voter observes them at readout instead *)
            { base_config with Level3.scrub_period_ns }
        | _ -> base_config
      in
      let channel_loss =
        match inj with
        | Fault.Loss { channel; drop_index } ->
            [ (channel, fun i -> i = drop_index) ]
        | _ -> []
      in
      let tap ~bus ~fpga ~kernel =
        match inj with
        | Fault.Seu { word; attempts } ->
            Fpga.inject_download_fault fpga
              (Some
                 (fun ~attempt ~word:w ->
                   if attempt < attempts && w = word then seu_mask else 0))
        | Fault.Upset { at_permille; copy } ->
            (* Wait until the planned instant, then keep one upset armed
               until a repair observes it.  An upset on an empty fabric
               hits nothing, and one that lands in configuration memory
               already being rewritten by an in-flight reconfiguration is
               erased before anyone could read it — in both cases the
               saboteur re-injects, so every trial tests a fault the
               detection machinery really had to catch.  Repairs are
               watched through scrub reloads plus targeted voter repairs,
               so the same saboteur serves both operating modes.  The
               poll count is bounded so a campaign over an all-software
               mapping cannot hang the simulation. *)
            let t_ns =
              baseline.Level3.latency_ns * at_permille / 1000
            in
            let poll_ns = 2_000 and max_polls = 2_000 in
            Kernel.spawn kernel ~name:"saboteur" (fun () ->
                Process.wait (Time.ns t_ns);
                let repairs () =
                  let s = Fpga.stats fpga in
                  s.Fpga.scrub_reloads + s.Fpga.targeted_repairs
                in
                let rec arm polls =
                  if polls < max_polls then
                    if Fpga.upset_loaded ~copy fpga then
                      watch polls (repairs ())
                    else begin
                      Process.wait (Time.ns poll_ns);
                      arm (polls + 1)
                    end
                and watch polls repairs0 =
                  if polls < max_polls then begin
                    Process.wait (Time.ns poll_ns);
                    if repairs () > repairs0 then ()
                    else if Fpga.loaded_corrupted fpga then
                      watch (polls + 1) repairs0
                    else arm (polls + 1)
                  end
                in
                arm 0)
        | Fault.Bus { txn_index; error; count } ->
            let counter = ref (-1) in
            Bus.inject_faults bus
              (Some
                 (fun txn ~attempt ->
                   match txn.Transaction.kind with
                   | Transaction.Write ->
                       if attempt = 0 then incr counter;
                       if !counter = txn_index && attempt < count then
                         if error then Bus.Error else Bus.Retry
                       else Bus.Okay
                   | _ -> Bus.Okay))
        | Fault.Flip { txn_index; bits; count } ->
            let counter = ref (-1) in
            Bus.inject_corruption bus
              (Some
                 (fun txn ~attempt ->
                   match txn.Transaction.kind with
                   | Transaction.Write ->
                       if attempt = 0 then incr counter;
                       if !counter = txn_index && attempt < count then bits
                       else 0
                   | _ -> 0))
        | Fault.Loss _ -> ()
        | Fault.Stuck { resource } -> Fpga.set_stuck fpga resource
      in
      let finish
          (injected, detected, recovered, masked, correct, recovery_ns, detail)
          =
        {
          trial = index;
          kind = Fault.kind_to_string kind;
          injection = Fault.injection_to_string inj;
          injected;
          detected;
          recovered;
          masked;
          correct;
          skipped = false;
          recovery_ns;
          detail;
        }
      in
      match Level3.run ~config ~channel_loss ~tap graph mapping with
      | r -> finish (grade ~baseline ~base_winner inj r)
      | exception e ->
          (* a crash is a detected, unrecovered fault — never a pass *)
          {
            trial = index;
            kind = Fault.kind_to_string kind;
            injection = Fault.injection_to_string inj;
            injected = true;
            detected = true;
            recovered = false;
            masked = false;
            correct = false;
            skipped = false;
            recovery_ns = 0;
            detail = "crashed: " ^ Printexc.to_string e;
          })

let skipped_outcome (index, inj_opt) =
  let kind, injection =
    match inj_opt with
    | None -> ("control", "none")
    | Some inj ->
        ( Fault.kind_to_string (Fault.kind_of_injection inj),
          Fault.injection_to_string inj )
  in
  {
    trial = index;
    kind;
    injection;
    injected = false;
    detected = false;
    recovered = false;
    masked = false;
    correct = false;
    skipped = true;
    recovery_ns = 0;
    detail = "skipped: resource budget exhausted";
  }

(* Log-2 recovery-latency histogram, from simulated time — deterministic
   by construction. *)
let histogram_of outcomes =
  let bucket ns =
    if ns <= 0 then "0"
    else
      let e = ref 0 in
      while ns lsr !e > 1 do
        incr e
      done;
      Printf.sprintf "2^%d" !e
  in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (o : outcome) ->
      if not o.skipped then
        let b = bucket o.recovery_ns in
        Hashtbl.replace tbl b (1 + Option.value ~default:0 (Hashtbl.find_opt tbl b)))
    outcomes;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) ->
         compare (String.length a, a) (String.length b, b))

let per_kind_rows kind_names outcomes =
  List.map
    (fun kname ->
      let of_kind =
        List.filter (fun (o : outcome) -> String.equal o.kind kname) outcomes
      in
      let count f = List.length (List.filter f of_kind) in
      {
        row_kind = kname;
        row_trials = List.length of_kind;
        row_injected = count (fun o -> o.injected);
        row_detected = count (fun o -> o.detected);
        row_recovered = count (fun o -> o.recovered);
        row_masked = count (fun o -> o.masked);
        row_correct = count (fun o -> o.correct);
      })
    kind_names

let run ?pool ?gov ?(mode = Scrub) ?(kinds = Fault.all_kinds)
    ?(trials_per_kind = 3) ?(workload = Face_app.smoke_workload)
    ?(scrub_period_ns = 10_000) ~seed () =
  let pool = Par.get pool in
  let gov = Gov.get gov in
  let sp =
    if Obs.enabled () then
      Obs.begin_span ~track:"resil" ~cat:"resil"
        ~args:
          [ ("seed", Json.Int seed); ("mode", Json.Str (mode_to_string mode)) ]
        "resil.campaign"
    else Obs.null_span
  in
  let base_config =
    match mode with
    | Scrub -> Level3.default_config
    | Tmr -> { Level3.default_config with Level3.masked = true }
  in
  (* Fault-free baseline, on the calling domain.  The tap only counts
     the write transactions (always answering Okay, the same path the
     bus takes with no hook installed), so the baseline stays
     byte-identical to the control trial while telling us how many
     writes a bus fault can actually target. *)
  let graph = Face_app.graph workload in
  let l1 = Level1.run graph in
  let mapping2 = Face_app.level2_mapping ~profile:l1.Level1.profile graph in
  let mapping = Mapping.refine_to_fpga mapping2 Face_app.level3_refinement in
  let write_count = ref 0 in
  let count_writes ~bus ~fpga:_ ~kernel:_ =
    Bus.inject_faults bus
      (Some
         (fun txn ~attempt ->
           (match txn.Transaction.kind with
           | Transaction.Write -> if attempt = 0 then incr write_count
           | _ -> ());
           Bus.Okay))
  in
  let baseline = Level3.run ~config:base_config ~tap:count_writes graph mapping in
  let base_winner = winner_stream baseline.Level3.trace in
  (* the plan: control first, then trials_per_kind injections per kind,
     drawn sequentially from the seed — independent of the pool width.
     Bus-borne faults are clamped onto the write transactions the
     baseline actually performs, so no planned fault can miss a small
     workload. *)
  let rng = Rng.create (if seed = 0 then 0x5EED else seed) in
  let clamp = function
    | Fault.Bus { txn_index; error; count } ->
        Fault.Bus { txn_index = txn_index mod max 1 !write_count; error; count }
    | Fault.Flip { txn_index; bits; count } ->
        Fault.Flip { txn_index = txn_index mod max 1 !write_count; bits; count }
    | inj -> inj
  in
  let injections =
    List.concat_map
      (fun k ->
        List.init trials_per_kind (fun _ -> clamp (Fault.plan_injection rng k)))
      kinds
  in
  let plan =
    List.mapi (fun i inj -> (i, inj)) (None :: List.map Option.some injections)
  in
  (* governor gate, read once before the fan-out so the answer cannot
     depend on scheduling: each trial costs one pattern *)
  let n = List.length plan in
  let allowed =
    if Gov.out_of_budget gov then 0
    else
      match Gov.patterns_left gov with None -> n | Some p -> min n p
  in
  Gov.charge_patterns gov allowed;
  let to_run = List.filteri (fun i _ -> i < allowed) plan in
  let to_skip = List.filteri (fun i _ -> i >= allowed) plan in
  if to_skip <> [] then
    Gov.note_degraded gov ~what:"resil.campaign"
      (Option.value ~default:Degrade.Patterns (Gov.exhaustion gov));
  let ran =
    Par.map ~label:"resil.trials" pool
      (run_one ~workload ~mapping ~baseline ~base_winner ~base_config
         ~scrub_period_ns)
      to_run
  in
  let outcomes = ran @ List.map skipped_outcome to_skip in
  let kind_names = List.map Fault.kind_to_string kinds in
  let control_ok =
    List.exists (fun o -> String.equal o.kind "control" && trial_passed o)
      outcomes
  in
  let skipped = List.length to_skip in
  let masked_trials =
    List.length
      (List.filter (fun (o : outcome) -> (not o.skipped) && o.masked) outcomes)
  in
  let passed = skipped = 0 && List.for_all trial_passed outcomes in
  if Obs.enabled () then begin
    List.iter
      (fun (o : outcome) ->
        if not o.skipped then begin
          Obs.event
            ~severity:
              (if trial_passed o then Symbad_obs.Severity.Info
               else Symbad_obs.Severity.Warn)
            ~args:
              [
                ("trial", Json.Int o.trial);
                ("kind", Json.Str o.kind);
                ("injected", Json.Bool o.injected);
                ("detected", Json.Bool o.detected);
                ("recovered", Json.Bool o.recovered);
                ("masked", Json.Bool o.masked);
                ("correct", Json.Bool o.correct);
              ]
            "resil.trial";
          Obs.observe "resil.recovery_ns" o.recovery_ns;
          if o.injected then Obs.incr_counter "resil.injected";
          if o.detected then Obs.incr_counter "resil.detected";
          if o.recovered then Obs.incr_counter "resil.recovered";
          if o.masked then Obs.incr_counter "resil.masked"
        end)
      outcomes;
    Obs.end_span ~args:[ ("passed", Json.Bool passed) ] sp
  end;
  {
    seed;
    mode = mode_to_string mode;
    trials_per_kind;
    kind_names;
    baseline_latency_ns = baseline.Level3.latency_ns;
    fabric_area = baseline.Level3.fpga_stats.Fpga.area_loaded;
    outcomes;
    per_kind = per_kind_rows kind_names outcomes;
    control_ok;
    skipped;
    masked_trials;
    histogram = histogram_of outcomes;
    passed;
  }

let first_failure r =
  List.find_opt
    (fun (o : outcome) -> (not o.skipped) && not (trial_passed o))
    r.outcomes

let verdict ?(name = "fault campaign") r =
  match first_failure r with
  | Some o ->
      let why =
        Printf.sprintf "trial %d (%s, %s): %s" o.trial o.kind o.injection
          o.detail
      in
      Verdict.make ~name ~detail:why (Verdict.Disproved why)
  | None ->
      if r.skipped > 0 then
        let why =
          Printf.sprintf "%d of %d trials skipped (budget)" r.skipped
            (List.length r.outcomes)
        in
        Verdict.make ~name ~detail:why (Verdict.Inconclusive why)
      else
        let total = List.length r.outcomes in
        Verdict.make ~name
          ~detail:
            (Printf.sprintf
               "%d trials (%s mode): all faults detected, recovered, correct \
                winner; %d masked"
               total r.mode r.masked_trials)
          Verdict.Proved

let outcome_to_json o =
  Json.Obj
    [
      ("trial", Json.Int o.trial);
      ("kind", Json.Str o.kind);
      ("injection", Json.Str o.injection);
      ("injected", Json.Bool o.injected);
      ("detected", Json.Bool o.detected);
      ("recovered", Json.Bool o.recovered);
      ("masked", Json.Bool o.masked);
      ("correct", Json.Bool o.correct);
      ("skipped", Json.Bool o.skipped);
      ("recovery_ns", Json.Int o.recovery_ns);
      ("detail", Json.Str o.detail);
    ]

let to_json r =
  Json.Obj
    [
      ("seed", Json.Int r.seed);
      ("mode", Json.Str r.mode);
      ("trials_per_kind", Json.Int r.trials_per_kind);
      ("kinds", Json.List (List.map (fun k -> Json.Str k) r.kind_names));
      ("baseline_latency_ns", Json.Int r.baseline_latency_ns);
      ("fabric_area", Json.Int r.fabric_area);
      ("control_ok", Json.Bool r.control_ok);
      ("skipped", Json.Int r.skipped);
      ("masked_trials", Json.Int r.masked_trials);
      ("passed", Json.Bool r.passed);
      ( "per_kind",
        Json.List
          (List.map
             (fun row ->
               Json.Obj
                 [
                   ("kind", Json.Str row.row_kind);
                   ("trials", Json.Int row.row_trials);
                   ("injected", Json.Int row.row_injected);
                   ("detected", Json.Int row.row_detected);
                   ("recovered", Json.Int row.row_recovered);
                   ("masked", Json.Int row.row_masked);
                   ("correct", Json.Int row.row_correct);
                 ])
             r.per_kind) );
      ( "recovery_ns_histogram",
        Json.Obj (List.map (fun (b, c) -> (b, Json.Int c)) r.histogram) );
      ("trials", Json.List (List.map outcome_to_json r.outcomes));
    ]

let to_markdown r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "# Fault-injection campaign\n\n";
  Buffer.add_string b
    (Printf.sprintf
       "seed %d, %s mode, %d trials/kind, baseline latency %d ns, fabric \
        area %d — %s\n\n"
       r.seed r.mode r.trials_per_kind r.baseline_latency_ns r.fabric_area
       (if r.passed then "PASS"
        else if r.skipped > 0 && first_failure r = None then "INCONCLUSIVE"
        else "FAIL"));
  Buffer.add_string b
    "| kind | trials | injected | detected | recovered | masked | correct |\n";
  Buffer.add_string b "|---|---|---|---|---|---|---|\n";
  List.iter
    (fun row ->
      Buffer.add_string b
        (Printf.sprintf "| %s | %d | %d | %d | %d | %d | %d |\n" row.row_kind
           row.row_trials row.row_injected row.row_detected row.row_recovered
           row.row_masked row.row_correct))
    r.per_kind;
  Buffer.add_string b "\n| recovery latency (sim) | trials |\n|---|---|\n";
  List.iter
    (fun (bucket, count) ->
      Buffer.add_string b (Printf.sprintf "| %s ns | %d |\n" bucket count))
    r.histogram;
  if r.skipped > 0 then
    Buffer.add_string b
      (Printf.sprintf "\n%d trials skipped: resource budget exhausted.\n"
         r.skipped);
  (match first_failure r with
  | Some o ->
      Buffer.add_string b
        (Printf.sprintf "\nFirst failure: trial %d (%s, %s): %s\n" o.trial
           o.kind o.injection o.detail)
  | None -> ());
  Buffer.contents b

(* --- masked vs scrubbing-only comparison ------------------------------ *)

let executed_injected r =
  List.filter
    (fun (o : outcome) ->
      (not o.skipped) && not (String.equal o.kind "control"))
    r.outcomes

let survived r = List.length (List.filter trial_passed (executed_injected r))

let zero_recovery r =
  List.length
    (List.filter (fun o -> o.recovery_ns = 0) (executed_injected r))

let compare_modes ~scrub ~tmr =
  let pair f = Json.Obj [ ("scrub", f scrub); ("tmr", f tmr) ] in
  let int_of f r = Json.Int (f r) in
  Json.Obj
    [
      ("trials", pair (int_of (fun r -> List.length (executed_injected r))));
      ("survived", pair (int_of survived));
      ("masked", pair (int_of (fun r -> r.masked_trials)));
      ("zero_recovery", pair (int_of zero_recovery));
      ("fabric_area", pair (int_of (fun r -> r.fabric_area)));
      ("baseline_latency_ns", pair (int_of (fun r -> r.baseline_latency_ns)));
      ( "recovery_ns_histogram",
        pair (fun r ->
            Json.Obj (List.map (fun (b, c) -> (b, Json.Int c)) r.histogram)) );
    ]

let compare_modes_markdown ~scrub ~tmr =
  let b = Buffer.create 512 in
  Buffer.add_string b "# Masked vs scrubbing-only\n\n";
  Buffer.add_string b "| metric | scrub | tmr |\n|---|---|---|\n";
  let row name f g =
    Buffer.add_string b
      (Printf.sprintf "| %s | %s | %s |\n" name (f scrub) (g tmr))
  in
  let both name f = row name f f in
  both "fault trials" (fun r -> string_of_int (List.length (executed_injected r)));
  both "survived (passed)" (fun r -> string_of_int (survived r));
  both "masked (zero-latency, correct)" (fun r -> string_of_int r.masked_trials);
  both "zero recovery latency" (fun r -> string_of_int (zero_recovery r));
  both "fabric area consumed" (fun r -> string_of_int r.fabric_area);
  both "baseline latency (ns)" (fun r -> string_of_int r.baseline_latency_ns);
  Buffer.add_string b "\n| recovery latency (sim) | scrub | tmr |\n|---|---|---|\n";
  let buckets =
    List.sort_uniq
      (fun a b -> compare (String.length a, a) (String.length b, b))
      (List.map fst scrub.histogram @ List.map fst tmr.histogram)
  in
  List.iter
    (fun bucket ->
      let c r = Option.value ~default:0 (List.assoc_opt bucket r.histogram) in
      Buffer.add_string b
        (Printf.sprintf "| %s ns | %d | %d |\n" bucket (c scrub) (c tmr)))
    buckets;
  Buffer.contents b

(* The unified-driver shape (Core.Engines): run + consolidate. *)
let check ?gov ?pool ?jobs ?mode ?kinds ?trials_per_kind ?workload
    ?scrub_period_ns ~seed () =
  let go pool =
    verdict
      (run ~pool ?gov ?mode ?kinds ?trials_per_kind ?workload
         ?scrub_period_ns ~seed ())
  in
  match (pool, jobs) with
  | Some p, _ -> go p
  | None, None -> go Symbad_par.Par.sequential
  | None, Some jobs -> Symbad_par.Par.with_pool ~jobs go
