(** Model-checked masking properties of the TMR voter.

    The masked operating mode stands on the majority voter
    ([Symbad_hdl.Tmr]); this module is the voter's formal certificate,
    discharged by [Symbad_mc.Engine] like every other verified block:

    - {e masking}: a single corrupted copy never changes the voted
      output;
    - {e no false alarm}: full agreement raises no disagreement flag;
    - {e exact diagnosis}: a lone dissenter raises exactly its own flag
      — the signal the targeted repair steers by;
    - {e lock-step}: a triplicated datapath's register banks never
      diverge without a fault (1-inductive). *)

val voter_netlist : ?width:int -> unit -> Symbad_hdl.Netlist.t
(** The voter under verification (default width 8). *)

val voter_properties : Symbad_hdl.Netlist.t -> Symbad_mc.Prop.t list
(** [Symbad_hdl.Tmr.voter_properties] wrapped and validated against the
    voter netlist. *)

val check_voter :
  ?pool:Symbad_par.Par.pool ->
  ?gov:Symbad_gov.Gov.t ->
  ?width:int ->
  unit ->
  Symbad_mc.Engine.report list
(** Prove the voter's masking contract at the given word width. *)

val check_triplicated :
  ?pool:Symbad_par.Par.pool ->
  ?gov:Symbad_gov.Gov.t ->
  Symbad_hdl.Netlist.t ->
  Symbad_mc.Engine.report list
(** Triplicate the given datapath and prove its lock-step invariant. *)

val all_proved : Symbad_mc.Engine.report list -> bool
