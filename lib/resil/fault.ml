(* Platform fault model: the non-nominal behaviours the campaign engine
   injects into a level-3 run.  A fault plan is generated from a seed by
   pure arithmetic on the deterministic Rng, so the same seed always
   produces the same campaign at any pool width. *)

module Rng = Symbad_image.Rng

type kind =
  | Bitstream_seu
  | Config_upset
  | Bus_error
  | Fifo_loss
  | Stuck_resource
  | Ecc_single
  | Ecc_double
  | Tmr_upset

let all_kinds =
  [
    Bitstream_seu;
    Config_upset;
    Bus_error;
    Fifo_loss;
    Stuck_resource;
    Ecc_single;
    Ecc_double;
    Tmr_upset;
  ]

let kind_to_string = function
  | Bitstream_seu -> "bitstream_seu"
  | Config_upset -> "config_upset"
  | Bus_error -> "bus_error"
  | Fifo_loss -> "fifo_loss"
  | Stuck_resource -> "stuck_resource"
  | Ecc_single -> "ecc_single"
  | Ecc_double -> "ecc_double"
  | Tmr_upset -> "tmr_upset"

let kind_of_string s =
  List.find_opt (fun k -> String.equal (kind_to_string k) s) all_kinds

let of_string s =
  match kind_of_string s with
  | Some k -> Ok k
  | None ->
      Error
        (Printf.sprintf "unknown fault kind %S (valid kinds: %s)" s
           (String.concat ", " (List.map kind_to_string all_kinds)))

let pp_kind fmt k = Fmt.string fmt (kind_to_string k)

type injection =
  | Seu of { word : int; attempts : int }
  | Upset of { at_permille : int; copy : int }
  | Bus of { txn_index : int; error : bool; count : int }
  | Loss of { channel : string; drop_index : int }
  | Stuck of { resource : string }
  | Flip of { txn_index : int; bits : int; count : int }

let kind_of_injection = function
  | Seu _ -> Bitstream_seu
  | Upset { copy = 0; _ } -> Config_upset
  | Upset _ -> Tmr_upset
  | Bus _ -> Bus_error
  | Loss _ -> Fifo_loss
  | Stuck _ -> Stuck_resource
  | Flip { bits = 1; _ } -> Ecc_single
  | Flip _ -> Ecc_double

let injection_to_string = function
  | Seu { word; attempts } ->
      Printf.sprintf "seu word=%d attempts=%d" word attempts
  | Upset { at_permille; copy = 0 } ->
      Printf.sprintf "upset at=%d/1000" at_permille
  | Upset { at_permille; copy } ->
      Printf.sprintf "upset at=%d/1000 copy=%d" at_permille copy
  | Bus { txn_index; error; count } ->
      Printf.sprintf "bus %s txn=%d count=%d"
        (if error then "error" else "retry")
        txn_index count
  | Loss { channel; drop_index } ->
      Printf.sprintf "loss channel=%s drop=%d" channel drop_index
  | Stuck { resource } -> Printf.sprintf "stuck resource=%s" resource
  | Flip { txn_index; bits; count } ->
      Printf.sprintf "flip bits=%d txn=%d count=%d" bits txn_index count

(* Channels that ride the bus in the face-recognition level-3 mapping:
   the campaign's lossy-link candidates. *)
let lossy_channels = [ "diffs"; "dist2"; "dist" ]

(* FPGA-resident resources of the case study. *)
let fpga_resources = [ "DISTANCE"; "ROOT" ]

(* One injection of the given kind, drawn from the trial's generator.
   Parameters are chosen inside the envelope the platform's recovery
   mechanisms are dimensioned for (retry bounds, scrub period, ECC
   distance), so a correctly wired platform must survive every planned
   fault — which is exactly what the campaign checks. *)
let plan_injection rng = function
  | Bitstream_seu ->
      (* the corrupted word lands in the configuration-frame header
         (first 128 words), present in every context *)
      Seu { word = Rng.int rng 64; attempts = 1 + Rng.int rng 2 }
  | Config_upset ->
      (* between 40% and 85% of the baseline run: after the first
         reconfiguration, before the pipeline drains *)
      Upset { at_permille = 400 + Rng.int rng 450; copy = 0 }
  | Tmr_upset ->
      (* same window, but aimed at a specific TMR copy; on a simplex
         fabric the copy index clamps to 0 and this degenerates to a
         plain configuration upset *)
      Upset { at_permille = 400 + Rng.int rng 450; copy = 1 + Rng.int rng 2 }
  | Bus_error ->
      (* the campaign clamps txn_index onto the write transactions the
         baseline run actually performs, so the fault lands in any
         workload *)
      Bus
        {
          txn_index = Rng.int rng 40;
          error = Rng.bool rng;
          count = 1 + Rng.int rng 3;
        }
  | Ecc_single ->
      (* one flipped bit in one coded word of a data write: inside the
         SEC envelope, corrected in place by an ECC bus; an ERROR-class
         retry on a plain bus *)
      Flip { txn_index = Rng.int rng 40; bits = 1; count = 1 + Rng.int rng 3 }
  | Ecc_double ->
      (* two flipped bits: beyond correction, detected and retried —
         count stays within the bus retry budget *)
      Flip { txn_index = Rng.int rng 40; bits = 2; count = 1 + Rng.int rng 3 }
  | Fifo_loss ->
      (* channels carry one token per frame; dropping attempt 0 or 1
         lands in any workload with at least two frames *)
      Loss
        {
          channel = List.nth lossy_channels (Rng.int rng 3);
          drop_index = Rng.int rng 2;
        }
  | Stuck_resource ->
      Stuck { resource = List.nth fpga_resources (Rng.int rng 2) }
