(* Platform fault model: the five non-nominal behaviours the campaign
   engine injects into a level-3 run.  A fault plan is generated from a
   seed by pure arithmetic on the deterministic Rng, so the same seed
   always produces the same campaign at any pool width. *)

module Rng = Symbad_image.Rng

type kind =
  | Bitstream_seu
  | Config_upset
  | Bus_error
  | Fifo_loss
  | Stuck_resource

let all_kinds =
  [ Bitstream_seu; Config_upset; Bus_error; Fifo_loss; Stuck_resource ]

let kind_to_string = function
  | Bitstream_seu -> "bitstream_seu"
  | Config_upset -> "config_upset"
  | Bus_error -> "bus_error"
  | Fifo_loss -> "fifo_loss"
  | Stuck_resource -> "stuck_resource"

let kind_of_string = function
  | "bitstream_seu" -> Some Bitstream_seu
  | "config_upset" -> Some Config_upset
  | "bus_error" -> Some Bus_error
  | "fifo_loss" -> Some Fifo_loss
  | "stuck_resource" -> Some Stuck_resource
  | _ -> None

let pp_kind fmt k = Fmt.string fmt (kind_to_string k)

type injection =
  | Seu of { word : int; attempts : int }
  | Upset of { at_permille : int }
  | Bus of { txn_index : int; error : bool; count : int }
  | Loss of { channel : string; drop_index : int }
  | Stuck of { resource : string }

let kind_of_injection = function
  | Seu _ -> Bitstream_seu
  | Upset _ -> Config_upset
  | Bus _ -> Bus_error
  | Loss _ -> Fifo_loss
  | Stuck _ -> Stuck_resource

let injection_to_string = function
  | Seu { word; attempts } ->
      Printf.sprintf "seu word=%d attempts=%d" word attempts
  | Upset { at_permille } -> Printf.sprintf "upset at=%d/1000" at_permille
  | Bus { txn_index; error; count } ->
      Printf.sprintf "bus %s txn=%d count=%d"
        (if error then "error" else "retry")
        txn_index count
  | Loss { channel; drop_index } ->
      Printf.sprintf "loss channel=%s drop=%d" channel drop_index
  | Stuck { resource } -> Printf.sprintf "stuck resource=%s" resource

(* Channels that ride the bus in the face-recognition level-3 mapping:
   the campaign's lossy-link candidates. *)
let lossy_channels = [ "diffs"; "dist2"; "dist" ]

(* FPGA-resident resources of the case study. *)
let fpga_resources = [ "DISTANCE"; "ROOT" ]

(* One injection of the given kind, drawn from the trial's generator.
   Parameters are chosen inside the envelope the platform's recovery
   mechanisms are dimensioned for (retry bounds, scrub period), so a
   correctly wired platform must survive every planned fault — which is
   exactly what the campaign checks. *)
let plan_injection rng = function
  | Bitstream_seu ->
      (* the corrupted word lands in the configuration-frame header
         (first 128 words), present in every context *)
      Seu { word = Rng.int rng 64; attempts = 1 + Rng.int rng 2 }
  | Config_upset ->
      (* between 40% and 85% of the baseline run: after the first
         reconfiguration, before the pipeline drains *)
      Upset { at_permille = 400 + Rng.int rng 450 }
  | Bus_error ->
      (* the campaign clamps txn_index onto the write transactions the
         baseline run actually performs, so the fault lands in any
         workload *)
      Bus
        {
          txn_index = Rng.int rng 40;
          error = Rng.bool rng;
          count = 1 + Rng.int rng 3;
        }
  | Fifo_loss ->
      (* channels carry one token per frame; dropping attempt 0 or 1
         lands in any workload with at least two frames *)
      Loss
        {
          channel = List.nth lossy_channels (Rng.int rng 3);
          drop_index = Rng.int rng 2;
        }
  | Stuck_resource ->
      Stuck { resource = List.nth fpga_resources (Rng.int rng 2) }
