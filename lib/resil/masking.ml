(* The formal side of the masked operating mode.

   The TMR voter the platform relies on ([Symbad_hdl.Tmr]) is itself new
   hardening logic, and the methodology demands it be verified like any
   other block: the model checker discharges the masking contract
   (a single corrupted copy never changes the voted output; full
   agreement raises no flag; a lone dissenter raises exactly its own
   flag — the targeted-repair signal), and the lock-step invariant of a
   triplicated datapath (the three register banks never diverge, so the
   disagreement outputs are silent in the absence of faults). *)

module Netlist = Symbad_hdl.Netlist
module Tmr = Symbad_hdl.Tmr
module Prop = Symbad_mc.Prop
module Engine = Symbad_mc.Engine

let voter_netlist ?(width = 8) () = Tmr.voter ~width ()

let voter_properties nl =
  List.map
    (fun (name, formula) -> Prop.validate nl (Prop.make ~name formula))
    (Tmr.voter_properties ())

(* Prove the voter's masking contract at the given word width. *)
let check_voter ?pool ?gov ?(width = 8) () =
  let nl = voter_netlist ~width () in
  Engine.check_all ?pool ?gov nl (voter_properties nl)

(* Prove the lock-step invariant of a triplicated datapath: closed by
   1-induction (equal register banks under shared inputs step to equal
   register banks). *)
let check_triplicated ?pool ?gov nl =
  let tmr = Tmr.triplicate nl in
  let props =
    List.map
      (fun (name, formula) -> Prop.validate tmr (Prop.make ~name formula))
      (Tmr.triplication_properties nl)
  in
  Engine.check_all ?pool ?gov tmr props

let all_proved = Engine.all_proved
