(** The platform fault model: what the campaign engine injects.

    Eight non-nominal behaviours of the reconfigurable platform, each
    paired with the mechanism expected to detect and recover from — or
    mask — it:

    - {!Bitstream_seu} — bit-flips during a bitstream download; detected
      by the download CRC, recovered by bounded re-download.
    - {!Config_upset} — an SEU in the loaded configuration memory;
      detected by readback scrubbing (or masked outright by the TMR
      vote in the masked operating mode), recovered by context reload.
    - {!Bus_error} — ERROR/RETRY responses on AMBA transfers; recovered
      by the master's bounded retry with backoff.
    - {!Fifo_loss} — token drops on a lossy channel; recovered by the
      sender's bounded retransmit.
    - {!Stuck_resource} — a wedged FPGA resource; detected by the
      watchdog, recovered by degrading the task to software.
    - {!Ecc_single} — a single-bit corruption of one coded bus word;
      masked in place by SEC-DED ECC (no retry round-trip), an
      ERROR-class retry on a plain bus.
    - {!Ecc_double} — a double-bit corruption; detected by ECC (never
      miscorrected), recovered by the bounded retry.
    - {!Tmr_upset} — an SEU aimed at one specific TMR copy; masked by
      the majority vote, repaired by targeted single-copy reload. *)

type kind =
  | Bitstream_seu
  | Config_upset
  | Bus_error
  | Fifo_loss
  | Stuck_resource
  | Ecc_single
  | Ecc_double
  | Tmr_upset

val all_kinds : kind list
(** Every kind, in report order. *)

val kind_to_string : kind -> string
(** Stable lowercase name, e.g. ["bitstream_seu"]. *)

val kind_of_string : string -> kind option
(** Inverse of {!kind_to_string}. *)

val of_string : string -> (kind, string) result
(** Like {!kind_of_string}, but an unknown name comes back as [Error]
    with a message listing every valid kind — the CLI parser's error
    text. *)

val pp_kind : Format.formatter -> kind -> unit

(** One concrete planned fault, with its injection parameters. *)
type injection =
  | Seu of { word : int; attempts : int }
      (** flip bitstream word [word] on download attempts [0..attempts-1] *)
  | Upset of { at_permille : int; copy : int }
      (** upset TMR copy [copy] of the loaded context at this fraction
          of the baseline latency; [copy = 0] is {!Config_upset},
          anything else {!Tmr_upset} (clamped on a simplex fabric) *)
  | Bus of { txn_index : int; error : bool; count : int }
      (** answer data transfer number [txn_index] with ERROR ([error]) or
          RETRY for its first [count] attempts *)
  | Loss of { channel : string; drop_index : int }
      (** drop write attempt [drop_index] on [channel] *)
  | Stuck of { resource : string }  (** wedge the resource from reset *)
  | Flip of { txn_index : int; bits : int; count : int }
      (** flip [bits] bits (1 = {!Ecc_single}, 2 = {!Ecc_double}) in one
          coded word of data write [txn_index], for its first [count]
          attempts *)

val kind_of_injection : injection -> kind

val injection_to_string : injection -> string
(** One deterministic human-readable line for reports. *)

val lossy_channels : string list
(** Bus-borne channels of the face-recognition level-3 mapping — the
    candidates for {!Fifo_loss}. *)

val fpga_resources : string list
(** FPGA-resident resources of the case study — the candidates for
    {!Stuck_resource}. *)

val plan_injection : Symbad_image.Rng.t -> kind -> injection
(** Draw one injection of the given kind from the trial's generator.
    Parameters stay inside the envelope the recovery mechanisms are
    dimensioned for (retry bounds, scrub period, ECC distance): a
    correctly wired platform must survive every planned fault. *)
