(** The recovery state machine of the reconfiguration controller, as a
    level-4 netlist with model-checked properties.

    States: OPER (fabric delivers service), DETECT (fault flagged),
    RECOV (bounded re-download / reload), FALLBACK (fabric abandoned,
    software delivers service).  OPER and FALLBACK are {e operational}.
    The discharged contract is the dependability argument in miniature:
    recovery terminates, in bounded time, in an operational state. *)

val netlist : ?max_tries:int -> unit -> Symbad_hdl.Netlist.t
(** The controller: inputs [fault] and [done], registers [state],
    [tries] and the consecutive-non-operational-cycles witness [nonop],
    outputs [operational] and [recovering].  [max_tries] (default 2,
    range 1..3) mirrors the device's re-download bound. *)

val properties :
  ?max_tries:int -> Symbad_hdl.Netlist.t -> Symbad_mc.Prop.t list
(** Six checks: the retry bound holds, successful recovery returns to
    OPER, exhausted recovery degrades to FALLBACK (absorbing), the
    machine is operational again within [max_tries + 2] cycles, and the
    [operational] output is exactly OPER-or-FALLBACK. *)

val check :
  ?pool:Symbad_par.Par.pool ->
  ?gov:Symbad_gov.Gov.t ->
  ?max_tries:int ->
  unit ->
  Symbad_mc.Engine.report list
(** Build the netlist and discharge every property with the level-4
    engine. *)

val all_proved : Symbad_mc.Engine.report list -> bool
(** Re-export of [Symbad_mc.Engine.all_proved]. *)
