(* Level 3: the reconfigurable platform.

   The FPGA device is instantiated on the bus and some HW modules move
   inside it, split into contexts.  FPGA-resident functions are invoked
   *synchronously from the software* (the paper: "inserting the FPGA's
   reconfiguration calls and the functional calls to mapped resources
   into the SW"), so the cyclostatic CPU loop now:
     - issues a reconfiguration (bitstream download over the bus +
       programming time) whenever the next FPGA call needs a context that
       is not loaded,
     - ships the operands to the FPGA over the bus, waits for the
       (annotated) FPGA computation, and reads the results back.

   The run also records the dynamic resource-call sequence and emits the
   instrumented mini-C program, which is exactly what SymbC consumes. *)

module Sim = Symbad_sim
module Tlm = Symbad_tlm
module Fpga = Symbad_fpga
module Annotation = Symbad_tlm.Annotation

type config = {
  level2 : Level2.config;
  fpga_capacity : int;
  fpga_period_ns : int;
  program_ns_per_byte : int;
  fpga_burst_bytes : int;  (* download granularity: 8 = programmed I/O *)
  task_area : string -> int;  (* area of each FPGA-mapped task's module *)
  scrub_period_ns : int;  (* readback-scrubbing period; 0 = off *)
  watchdog_ns : int;  (* wait before declaring a resource wedged *)
  masked : bool;  (* masked-fault mode: TMR contexts + SEC-DED bus ECC *)
}

let default_task_area = function
  | "DISTANCE" -> 900
  | "ROOT" -> 700
  | _ -> 500

let default_config =
  {
    level2 = Level2.default_config;
    fpga_capacity = 1200;
    fpga_period_ns = 20;  (* FPGA fabric slower than hard gates *)
    program_ns_per_byte = 4;
    fpga_burst_bytes = 8;  (* CPU-driven programmed I/O, no DMA engine *)
    task_area = default_task_area;
    scrub_period_ns = 0;  (* scrubbing is opt-in: it adds bus traffic *)
    watchdog_ns = 2_000;
    (* masking is opt-in: it triples the fabric area and reconfiguration
       traffic and widens every bus transfer by 39/32 *)
    masked = false;
  }

type result = {
  trace : Sim.Trace.t;
  kernel_stats : Sim.Kernel.stats;
  bus_report : Tlm.Bus.report;
  cpu_stats : Tlm.Cpu.stats;
  fpga_stats : Fpga.Fpga.stats;
  latency_ns : int;
  call_sequence : string list;  (* dynamic FPGA-resource invocations *)
  sw_fallbacks : int;  (* firings degraded to software *)
  channel_occupancy : (string * Sim.Fifo.occupancy) list;
  instrumented_sw : Symbad_symbc.Ast.program;
  config_info : Symbad_symbc.Config_info.t;
}

let simulation_speed_khz ~bus_period_ns (r : result) =
  let cycles = float_of_int r.latency_ns /. float_of_int bus_period_ns in
  let secs = r.kernel_stats.Sim.Kernel.cpu_seconds in
  if secs <= 0. then infinity else cycles /. secs /. 1000.

(* Build the FPGA device from the mapping: one resource per FPGA task,
   grouped into contexts. *)
let build_fpga config mapping =
  let assignments = Mapping.fpga_tasks mapping in
  let contexts =
    List.map
      (fun ctx ->
        let members =
          List.filter_map
            (fun (task, c) -> if String.equal c ctx then Some task else None)
            assignments
        in
        Fpga.Context.make ctx
          (List.map
             (fun task ->
               Fpga.Resource.algorithm ~area:(config.task_area task) task)
             members))
      (Mapping.contexts mapping)
  in
  (* masked mode provisions a 3x fabric: the honest area price of TMR,
     visible as [area_loaded] in the device statistics *)
  let copies = if config.masked then 3 else 1 in
  Fpga.Fpga.create
    ~capacity:(config.fpga_capacity * copies)
    ~copies ~program_ns_per_byte:config.program_ns_per_byte
    ~burst_bytes:config.fpga_burst_bytes ~contexts "efpga"

(* The SymbC configuration-information input implied by the mapping. *)
let config_info_of mapping =
  let assignments = Mapping.fpga_tasks mapping in
  Symbad_symbc.Config_info.make
    ~fpga_functions:(List.map fst assignments)
    ~configurations:
      (List.map
         (fun ctx ->
           ( ctx,
             List.filter_map
               (fun (task, c) -> if String.equal c ctx then Some task else None)
               assignments ))
         (Mapping.contexts mapping))
    ()

(* Instrumented SW: the cyclostatic loop with reconfiguration calls
   inserted before FPGA-resident invocations (omitting loads already
   guaranteed by the previous call in the straight-line schedule).
   [omit_load_for] seeds the consistency bug used by the verification
   experiments. *)
let instrumented_program ?(omit_load_for = []) schedule mapping =
  let body =
    let current = ref None in
    List.concat_map
      (fun task ->
        match Mapping.target_of mapping task with
        | Mapping.Sw | Mapping.Hw -> [ Symbad_symbc.Ast.call task ]
        | Mapping.Fpga ctx ->
            let load =
              if !current = Some ctx || List.mem task omit_load_for then []
              else [ Symbad_symbc.Ast.reconfig ctx ]
            in
            current := Some ctx;
            load @ [ Symbad_symbc.Ast.call task ])
      schedule
  in
  [ Symbad_symbc.Ast.while_ body ]

let run ?(config = default_config) ?(omit_load_for = []) ?(channel_loss = [])
    ?tap (graph : Task_graph.t) (mapping : Mapping.t) =
  List.iter
    (fun (t : Task_graph.task) ->
      if t.Task_graph.inputs = [] && not (Mapping.is_sw mapping t.Task_graph.name)
      then invalid_arg ("Level3.run: source " ^ t.Task_graph.name ^ " must be SW"))
    graph.Task_graph.tasks;
  let l2 = config.level2 in
  let kernel = Sim.Kernel.create () in
  let trace = Sim.Trace.create () in
  let bus =
    Tlm.Bus.create ~width_bytes:l2.Level2.bus_width_bytes
      ~period_ns:l2.Level2.bus_period_ns ~ecc:config.masked "amba"
  in
  let cpu = Tlm.Cpu.create ~period_ns:l2.Level2.cpu_period_ns "arm7" in
  let fpga = build_fpga config mapping in
  let calls = ref [] in
  let fifos : (string, Token.t Sim.Fifo.t) Hashtbl.t = Hashtbl.create 32 in
  let fifo_of channel =
    match Hashtbl.find_opt fifos channel with
    | Some f -> f
    | None ->
        (* sink channels are drained by the environment: unbounded *)
        let capacity =
          if List.mem channel graph.Task_graph.sinks then 0
          else l2.Level2.fifo_capacity
        in
        let f = Sim.Fifo.create ~capacity channel in
        (match List.assoc_opt channel channel_loss with
        | Some p -> Sim.Fifo.set_loss f (Some p)
        | None -> ());
        Hashtbl.add fifos channel f;
        f
  in
  let record task channel token =
    Sim.Trace.record trace ~time:(Sim.Kernel.now kernel) ~source:task
      ~label:channel (Token.digest token)
  in
  (* Reliable delivery over possibly-lossy links: a dropped put is
     detected through the channel's drop counter (the ack that never
     came) and re-sent, bounded.  Loss-free channels take the exact
     pre-fault path — the counter never moves. *)
  let reliable_put f token =
    let max_resend = 3 in
    let rec go n =
      let before = Sim.Fifo.drops f in
      Sim.Fifo.put f token;
      if Sim.Fifo.drops f > before && n < max_resend then go (n + 1)
    in
    go 0
  in
  let send ~master task channel token =
    record task channel token;
    if Level2.crosses_bus mapping graph channel then
      Tlm.Bus.transfer bus
        (Tlm.Transaction.make ~master ~target:channel
           ~kind:Tlm.Transaction.Write ~bytes:(Token.bytes token));
    reliable_put (fifo_of channel) token
  in
  (* pure-HW tasks stay autonomous *)
  let spawn_hw (t : Task_graph.task) =
    Sim.Kernel.spawn kernel ~name:t.Task_graph.name (fun () ->
        let rec loop firing_index =
          let inputs =
            List.map (fun c -> Sim.Fifo.get (fifo_of c)) t.Task_graph.inputs
          in
          match t.Task_graph.fire ~firing_index inputs with
          | None -> ()
          | Some { Task_graph.outputs; work } ->
              let cycles =
                Annotation.cycles l2.Level2.annotation ~target:Annotation.Hw
                  ~weight:work
              in
              Sim.Process.wait (Sim.Time.ns (cycles * l2.Level2.hw_period_ns));
              List.iter2
                (fun c token ->
                  send ~master:t.Task_graph.name t.Task_graph.name c token)
                t.Task_graph.outputs outputs;
              loop (firing_index + 1)
        in
        loop 0)
  in
  let schedule =
    List.filter
      (fun (t : Task_graph.task) ->
        match Mapping.target_of mapping t.Task_graph.name with
        | Mapping.Sw | Mapping.Fpga _ -> true
        | Mapping.Hw -> false)
      (Task_graph.topological_order graph)
  in
  let sources, cpu_rest =
    List.partition (fun (t : Task_graph.task) -> t.Task_graph.inputs = [])
      schedule
  in
  let sw_fallbacks = ref 0 in
  let cpu_done = ref false in
  let spawn_cpu () =
    Sim.Kernel.spawn kernel ~name:"cpu" (fun () ->
        let ended : (string, unit) Hashtbl.t = Hashtbl.create 8 in
        let counts : (string, int) Hashtbl.t = Hashtbl.create 8 in
        let fire_once (t : Task_graph.task) =
          if not (Hashtbl.mem ended t.Task_graph.name) then begin
            let name = t.Task_graph.name in
            let firing_index =
              Option.value ~default:0 (Hashtbl.find_opt counts name)
            in
            let inputs =
              List.map (fun c -> Sim.Fifo.get (fifo_of c)) t.Task_graph.inputs
            in
            match t.Task_graph.fire ~firing_index inputs with
            | None -> Hashtbl.replace ended name ()
            | Some { Task_graph.outputs; work } -> (
                Hashtbl.replace counts name (firing_index + 1);
                match Mapping.target_of mapping name with
                | Mapping.Hw -> assert false
                | Mapping.Sw ->
                    let cycles =
                      Annotation.cycles l2.Level2.annotation
                        ~target:Annotation.Sw ~weight:work
                    in
                    Tlm.Cpu.execute cpu ~cycles;
                    List.iter2
                      (fun c token -> send ~master:"cpu" name c token)
                      t.Task_graph.outputs outputs
                | Mapping.Fpga ctx ->
                    (* graceful degradation: once recovery has given up
                       on the fabric, the task's software implementation
                       computes the very same tokens, only slower *)
                    let fire_sw_fallback () =
                      incr sw_fallbacks;
                      let cycles =
                        Annotation.cycles l2.Level2.annotation
                          ~target:Annotation.Sw ~weight:work
                      in
                      Tlm.Cpu.execute cpu ~cycles;
                      List.iter2
                        (fun c token -> send ~master:"cpu" name c token)
                        t.Task_graph.outputs outputs
                    in
                    if not (Fpga.Fpga.is_healthy fpga) then fire_sw_fallback ()
                    else begin
                      match
                        calls := name :: !calls;
                        (* reconfigure unless the SW omitted the load (bug
                           injection): then the device check fires *)
                        if not (List.mem name omit_load_for) then
                          Fpga.Fpga.reconfigure
                            ~verify_previous:(config.scrub_period_ns > 0)
                            fpga ~bus ~master:"cpu" ctx;
                        Fpga.Fpga.require fpga name
                      with
                      | exception Fpga.Fpga.Download_failed _ ->
                          (* persistent bitstream corruption: the context
                             cannot be brought up — degrade *)
                          Fpga.Fpga.mark_unhealthy fpga;
                          fire_sw_fallback ()
                      | () ->
                          if not (Fpga.Fpga.responding fpga name) then begin
                            (* wedged resource: the watchdog expires and
                               the controller declares the fabric sick *)
                            Sim.Process.wait (Sim.Time.ns config.watchdog_ns);
                            Fpga.Fpga.note_watchdog fpga;
                            Fpga.Fpga.mark_unhealthy fpga;
                            fire_sw_fallback ()
                          end
                          else begin
                            (* ship operands, compute, ship results *)
                            (match
                               List.iter
                                 (fun token ->
                                   Tlm.Bus.transfer bus
                                     (Tlm.Transaction.make ~master:"cpu"
                                        ~target:"efpga"
                                        ~kind:Tlm.Transaction.Write
                                        ~bytes:(Token.bytes token)))
                                 inputs
                             with
                            | exception Tlm.Bus.Transfer_failed _ ->
                                (* operands never reached the fabric; the
                                   CPU still holds them — degrade *)
                                Fpga.Fpga.mark_unhealthy fpga;
                                fire_sw_fallback ()
                            | () ->
                                let corrupt_pre =
                                  Fpga.Fpga.loaded_corrupted fpga
                                in
                                let cycles =
                                  Annotation.cycles l2.Level2.annotation
                                    ~target:Annotation.Fpga ~weight:work
                                in
                                Sim.Process.wait
                                  (Sim.Time.ns (cycles * config.fpga_period_ns));
                                if config.masked then begin
                                  (* TMR: the majority vote at readout
                                     masks a single upset copy — the
                                     result is correct and the dissenting
                                     copy is repaired in the shadow of
                                     continued operation.  Only a
                                     multi-copy corruption defeats the
                                     vote; then the result is discarded
                                     and redone in software. *)
                                  match Fpga.Fpga.vote_and_repair fpga with
                                  | `Corrupt -> fire_sw_fallback ()
                                  | `Clean | `Masked ->
                                      List.iter2
                                        (fun c token ->
                                          send ~master:"efpga" name c token)
                                        t.Task_graph.outputs outputs
                                end
                                else if
                                  config.scrub_period_ns > 0
                                  && (corrupt_pre
                                     || Fpga.Fpga.loaded_corrupted fpga)
                                then
                                  (* the result-integrity check that rides
                                     along with scrubbing: a computation
                                     that overlapped a corrupt interval is
                                     discarded and redone in software *)
                                  fire_sw_fallback ()
                                else
                                (* an unrepaired configuration upset makes
                                   the fabric compute garbage — silently *)
                                let outputs =
                                  if corrupt_pre then
                                    List.map Token.garble outputs
                                  else outputs
                                in
                                List.iter2
                                  (fun c token ->
                                    send ~master:"efpga" name c token)
                                  t.Task_graph.outputs outputs)
                          end
                    end)
          end
        in
        let rec rounds () =
          List.iter fire_once sources;
          let live =
            List.exists
              (fun (t : Task_graph.task) ->
                not (Hashtbl.mem ended t.Task_graph.name))
              sources
          in
          if live then begin
            List.iter fire_once cpu_rest;
            rounds ()
          end
        in
        rounds ();
        (* drain-time voter scan: an upset that lands after the last
           datapath use would otherwise go unobserved (periodic
           scrubbing is off in masked mode); the scan repairs it
           latency-free before the platform retires *)
        if config.masked then ignore (Fpga.Fpga.vote_and_repair fpga);
        cpu_done := true)
  in
  (* periodic readback scrubbing: detects and repairs configuration
     upsets; stops at the first wake after the schedule has drained *)
  let spawn_scrubber () =
    if config.scrub_period_ns > 0 then
      Sim.Kernel.spawn kernel ~name:"scrubber" (fun () ->
          let rec loop () =
            Sim.Process.wait (Sim.Time.ns config.scrub_period_ns);
            if not !cpu_done then begin
              ignore (Fpga.Fpga.scrub fpga ~bus ~master:"scrubber");
              loop ()
            end
          in
          loop ())
  in
  List.iter
    (fun (t : Task_graph.task) ->
      match Mapping.target_of mapping t.Task_graph.name with
      | Mapping.Hw -> spawn_hw t
      | Mapping.Sw | Mapping.Fpga _ -> ())
    graph.Task_graph.tasks;
  spawn_cpu ();
  spawn_scrubber ();
  (* fault-injection tap: campaigns install bus/download hooks and spawn
     saboteur processes here, after the platform exists and before it
     runs.  [None] is the exact pre-fault code path. *)
  (match tap with
  | Some install -> install ~bus ~fpga ~kernel
  | None -> ());
  Sim.Kernel.run kernel;
  let kernel_stats = Sim.Kernel.stats kernel in
  {
    trace;
    kernel_stats;
    bus_report = Tlm.Bus.report bus;
    cpu_stats = Tlm.Cpu.stats cpu;
    fpga_stats = Fpga.Fpga.stats fpga;
    latency_ns = Sim.Time.to_ns kernel_stats.Sim.Kernel.final_time;
    call_sequence = List.rev !calls;
    sw_fallbacks = !sw_fallbacks;
    channel_occupancy =
      Hashtbl.fold (fun name f acc -> (name, Sim.Fifo.occupancy f) :: acc)
        fifos []
      |> List.sort compare;
    instrumented_sw =
      instrumented_program ~omit_load_for
        (List.map (fun (t : Task_graph.task) -> t.Task_graph.name) schedule)
        mapping;
    config_info = config_info_of mapping;
  }
