(** Bridge from the system model to the LPV abstraction: "the SystemC
    model is translated in an abstract model where communication and
    synchronization characteristics remain un-abstracted". *)

type timing_model = {
  annotation : Symbad_tlm.Annotation.t;
  cpu_period_ns : int;
  hw_period_ns : int;
  fpga_period_ns : int;
}

val default_timing : timing_model

val firing_delay_ns :
  timing_model -> Mapping.t -> Symbad_tlm.Annotation.Profile.t -> string -> int
(** Annotated firing time of a task on its mapped resource. *)

val net_of :
  ?capacity:int ->
  ?extra_channels:(string * string * string * int) list ->
  ?timing:timing_model ->
  ?mapping:Mapping.t ->
  ?profile:Symbad_tlm.Annotation.Profile.t ->
  Task_graph.t ->
  Symbad_lpv.Petri.t
(** Tasks become transitions (delay 1 unless all of [timing], [mapping]
    and [profile] are given), channels forward places plus credit places
    of [capacity] (0 = unbounded), and each task a marked self-loop.
    [extra_channels] adds [(name, src, dst, tokens)] feedback edges —
    synchronisation added at mapping time, or seeded deadlock bugs. *)

val check_deadlock :
  ?capacity:int ->
  ?extra_channels:(string * string * string * int) list ->
  ?gov:Symbad_gov.Gov.t ->
  Task_graph.t ->
  Symbad_lpv.Deadlock.verdict
(** The level-1 deadlock-freeness check; an exhausted [gov] yields
    [Not_analyzable]. *)

val check_deadline :
  deadline_ns:int ->
  timing:timing_model ->
  mapping:Mapping.t ->
  profile:Symbad_tlm.Annotation.Profile.t ->
  ?capacity:int ->
  ?gov:Symbad_gov.Gov.t ->
  Task_graph.t ->
  Symbad_lpv.Timing.verdict * bool
(** The minimum period and whether the deadline is achievable; an
    exhausted [gov] yields [(Not_analyzable _, false)]. *)

val dimension_fifos :
  deadline_ns:int ->
  timing:timing_model ->
  mapping:Mapping.t ->
  profile:Symbad_tlm.Annotation.Profile.t ->
  ?max_capacity:int ->
  ?gov:Symbad_gov.Gov.t ->
  Task_graph.t ->
  int option
(** Smallest uniform channel capacity meeting the deadline.  [gov] is
    polled per candidate capacity; exhaustion stops the search with
    [None]. *)
