(* The unified engine surface.

   Every verification engine in the stack — model checking, PCC, ATPG,
   lint, the fault campaign — historically grew its own entry point with
   its own budget knobs.  This module redesigns the drivers behind one
   call shape:

     ?gov ?pool ?jobs ~seed target -> Verdict.t

   [gov] is the resource governor (omitted = unlimited), [pool]/[jobs]
   pick the worker-domain fan-out ([pool] wins; [jobs] builds a scoped
   pool; neither = sequential), [seed] drives the stochastic engines and
   is accepted — and ignored — by the deterministic ones so portfolios
   can treat every engine uniformly.  Verdicts are identical at any
   pool width.

   The fault-campaign driver lives with its engine
   ([Symbad_resil.Campaign.check] — resil sits above core in the
   library stack) but answers the same shape. *)

module Gov = Symbad_gov.Gov
module Budget = Symbad_gov.Budget
module Degrade = Symbad_gov.Degrade
module Lint = Symbad_lint.Lint
module Mc = Symbad_mc
module Pcc = Symbad_pcc.Pcc

let with_jobs ?pool ?jobs f =
  match (pool, jobs) with
  | Some p, _ -> f p
  | None, None -> f Symbad_par.Par.sequential
  | None, Some jobs -> Symbad_par.Par.with_pool ~jobs f

let timed f =
  let t0 = Sys.time () in
  let v = f () in
  (v, Sys.time () -. t0)

let prop_pairs props =
  List.map (fun p -> (Mc.Prop.name p, Mc.Prop.formula p)) props

(* --- the static engine ------------------------------------------------ *)

let lint ?gov ?pool ?jobs ?(escalate = false) ~seed:_ (m : Level4.rtl_module) =
  with_jobs ?pool ?jobs @@ fun pool ->
  let props = prop_pairs m.Level4.properties in
  let report, host_seconds =
    timed (fun () ->
        let r = Lint.run_netlist ~pool ?gov ~properties:props m.Level4.netlist in
        if escalate then
          Lint.escalate ~pool ?gov ~properties:props m.Level4.netlist r
        else r)
  in
  { (Verdict.of_lint ~host_seconds report) with
    Verdict.name = Printf.sprintf "lint %s" m.Level4.module_name }

(* --- the formal engines ----------------------------------------------- *)

let model_check ?gov ?pool ?jobs ?(max_depth = 12) ~seed:_
    (m : Level4.rtl_module) =
  with_jobs ?pool ?jobs @@ fun pool ->
  let reports, host_seconds =
    timed (fun () ->
        Mc.Engine.check_all ~pool ~max_depth ?gov m.Level4.netlist
          m.Level4.properties)
  in
  let all = Mc.Engine.all_proved reports in
  Verdict.make
    ~name:(Printf.sprintf "model checking %s" m.Level4.module_name)
    ~passed:all ~host_seconds
    ~detail:(Printf.sprintf "%d properties" (List.length reports))
    (if all then Verdict.Proved
     else Verdict.Inconclusive "not all properties proved")

let pcc ?gov ?pool ?jobs ?(depth = 6) ?(max_reg_bits = 4) ~seed:_
    (m : Level4.rtl_module) =
  with_jobs ?pool ?jobs @@ fun pool ->
  let report, host_seconds =
    timed (fun () ->
        Pcc.run ~pool ~depth ~max_reg_bits ?gov m.Level4.netlist
          m.Level4.properties)
  in
  { (Verdict.of_pcc ~host_seconds report) with
    Verdict.name = Printf.sprintf "PCC completeness %s" m.Level4.module_name }

(* --- the simulation engine -------------------------------------------- *)

(* Laerte++ on the behavioural hot spots: genetic engine, report the
   worst coverage across models.  Model runs fan out on the pool.
   The governor bounds the generation loops; an exhausted budget
   degrades to Inconclusive carrying the coverage reached so far, and
   granted retries re-dispatch re-seeded over a share of the remaining
   budget (the portfolio retry). *)
let atpg ?gov ?pool ?jobs ~seed () =
  with_jobs ?pool ?jobs @@ fun pool ->
  let gov = Gov.get gov in
  let retries = (Gov.budget gov).Budget.retries in
  let attempt_once ~attempt =
    (* with retries granted, each attempt gets an even share of what is
       left, so the last attempt still has budget to spend *)
    let g =
      if retries = 0 then gov
      else
        Gov.slice
          ~label:(Printf.sprintf "atpg.try%d" attempt)
          ~fraction:(1. /. float_of_int (retries + 1 - attempt))
          gov
    in
    let seed =
      if attempt = 0 then seed else Symbad_par.Par.split_seed ~seed attempt
    in
    let evals, host_seconds =
      timed (fun () ->
          List.map
            (fun m ->
              let params =
                { Symbad_atpg.Genetic_engine.default_params with
                  Symbad_atpg.Genetic_engine.seed }
              in
              let tests =
                Symbad_atpg.Genetic_engine.generate ~pool ~gov:g ~params m
              in
              Symbad_atpg.Testbench.evaluate ~pool ~engine:"genetic" m tests)
            (Symbad_atpg.Models.all ()))
    in
    let worst =
      List.fold_left
        (fun acc e -> min acc e.Symbad_atpg.Testbench.coverage.Symbad_atpg.Coverage.total)
        1. evals
    in
    let hit, total =
      List.fold_left
        (fun (h, t) (e : Symbad_atpg.Testbench.evaluation) ->
          ( h + e.Symbad_atpg.Testbench.coverage.Symbad_atpg.Coverage.hit_points,
            t + e.Symbad_atpg.Testbench.coverage.Symbad_atpg.Coverage.total_points ))
        (0, 0) evals
    in
    match Gov.exhaustion g with
    | Some reason when worst <= 0.85 ->
        (* out of budget short of the gate: report what was covered *)
        Gov.note_degraded g ~what:"atpg" reason;
        Verdict.degraded ~host_seconds ~name:"ATPG coverage (Laerte++)"
          ~partial:
            { Degrade.units_done = hit;
              units_total = Some total;
              what = "coverage points hit" }
          reason
    | Some _ | None ->
        Verdict.make ~name:"ATPG coverage (Laerte++)" ~host_seconds
          ~passed:(worst > 0.85)
          ~detail:
            (String.concat "; "
               (List.map
                  (fun e ->
                    Printf.sprintf "%s %.0f%%" e.Symbad_atpg.Testbench.model
                      (100.
                     *. e.Symbad_atpg.Testbench.coverage.Symbad_atpg.Coverage.total))
                  evals))
          (Verdict.Coverage { hit; total })
  in
  Gov.with_retry ~label:"atpg" gov
    ~inconclusive:(fun v ->
      match v.Verdict.outcome with
      | Verdict.Inconclusive _ -> true
      | Verdict.Proved | Verdict.Disproved _ | Verdict.Coverage _ -> false)
    (fun ~attempt -> attempt_once ~attempt)
