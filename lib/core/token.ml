(* Data tokens flowing through the system models.

   The same token values travel through every refinement level (that is
   what makes trace comparison meaningful); what changes per level is how
   their *transport* is modelled.  [bytes] sizes the bus transactions at
   levels 2-3; [digest] is the canonical trace representation. *)

module Image = Symbad_image.Image
module Ellipse = Symbad_image.Ellipse
module Line = Symbad_image.Line
module Winner = Symbad_image.Winner

type t =
  | Frame of Image.t
  | Shape of Ellipse.t
  | Scan of Line.scan
  | Vec of int array
  | Mat of int array array
  | Num of int
  | Verdict of Winner.verdict

(* Transport size in bytes (16-bit components, 8-bit pixels). *)
let bytes = function
  | Frame img -> Image.width img * Image.height img
  | Shape _ -> 16
  | Scan s -> 2 * (Array.length s.Line.rows + Array.length s.Line.cols)
  | Vec v -> 2 * Array.length v
  | Mat m -> 2 * Array.fold_left (fun acc row -> acc + Array.length row) 0 m
  | Num _ -> 4
  | Verdict _ -> 4

let vec_digest v =
  let fnv = ref 0xcbf29ce484222325L in
  Array.iter
    (fun x ->
      fnv := Int64.logxor !fnv (Int64.of_int x);
      fnv := Int64.mul !fnv 0x100000001b3L)
    v;
  Printf.sprintf "v%d/%Lx" (Array.length v) !fnv

let digest = function
  | Frame img -> "F" ^ Image.digest img
  | Shape e -> "E" ^ Ellipse.digest e
  | Scan s -> "S" ^ vec_digest (Array.append s.Line.rows s.Line.cols)
  | Vec v -> "V" ^ vec_digest v
  | Mat m -> "M" ^ vec_digest (Array.concat (Array.to_list m))
  | Num n -> "N" ^ string_of_int n
  | Verdict v -> "W" ^ Fmt.str "%a" Winner.pp v

let kind_to_string = function
  | Frame _ -> "frame"
  | Shape _ -> "shape"
  | Scan _ -> "scan"
  | Vec _ -> "vec"
  | Mat _ -> "mat"
  | Num _ -> "num"
  | Verdict _ -> "verdict"

(* Deterministic payload corruption for fault-injection campaigns: an
   SEU in the datapath flips bits of the numeric payloads.  The mask
   keeps values non-negative (distances feed isqrt); structural tokens
   (frames, shapes, scans, verdicts) travel through the front end the
   fabric never computes, so they stay untouched. *)
let garble_mask = 0x1555

let garble = function
  | Vec v -> Vec (Array.map (fun x -> x lxor garble_mask) v)
  | Mat m -> Mat (Array.map (Array.map (fun x -> x lxor garble_mask)) m)
  | Num n -> Num (n lxor garble_mask)
  | (Frame _ | Shape _ | Scan _ | Verdict _) as t -> t

(* Typed accessors; models raise on protocol violations, which makes
   wiring errors in task graphs fail fast. *)
let to_frame = function Frame i -> i | t -> invalid_arg ("Token: expected frame, got " ^ kind_to_string t)
let to_shape = function Shape e -> e | t -> invalid_arg ("Token: expected shape, got " ^ kind_to_string t)
let to_scan = function Scan s -> s | t -> invalid_arg ("Token: expected scan, got " ^ kind_to_string t)
let to_vec = function Vec v -> v | t -> invalid_arg ("Token: expected vec, got " ^ kind_to_string t)
let to_mat = function Mat m -> m | t -> invalid_arg ("Token: expected mat, got " ^ kind_to_string t)
let to_num = function Num n -> n | t -> invalid_arg ("Token: expected num, got " ^ kind_to_string t)
let to_verdict = function Verdict v -> v | t -> invalid_arg ("Token: expected verdict, got " ^ kind_to_string t)
