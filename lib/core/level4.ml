(* Level 4: RTL generation and formal verification.

   The FPGA-mapped datapaths (DISTANCE, ROOT) and the RTL-to-TL interface
   wrapper come from the predefined IP library; properties about them are
   model checked (proof certificate or counterexample for each), and the
   property-coverage checker then judges whether the property set is
   complete, exposing behaviours no property constrains. *)

module Hdl = Symbad_hdl
module Expr = Symbad_hdl.Expr
module Mc = Symbad_mc
module Prop = Symbad_mc.Prop

type rtl_module = {
  module_name : string;
  netlist : Hdl.Netlist.t;
  properties : Prop.t list;
}

let distance_properties () =
  let aw = 16 in
  let acc = Expr.reg "acc" in
  let start = Expr.input "start" and valid = Expr.input "valid" in
  let a =
    Expr.concat (Expr.const ~width:8 0) (Expr.input "a")
  and b = Expr.concat (Expr.const ~width:8 0) (Expr.input "b") in
  let diff = Expr.sub a b in
  let sq = Expr.mul diff diff in
  [
    Prop.make_step ~name:"start_clears_acc"
      (Prop.implies start (Expr.eq (Prop.next acc) (Expr.const ~width:aw 0)));
    Prop.make_step ~name:"idle_holds_acc"
      (Prop.implies
         (Expr.and_ (Expr.not_ start) (Expr.not_ valid))
         (Expr.eq (Prop.next acc) acc));
    Prop.make_step ~name:"mac_accumulates"
      (Prop.implies
         (Expr.and_ (Expr.not_ start) valid)
         (Expr.eq (Prop.next acc) (Expr.add acc sq)));
  ]

(* The ROOT verification plan.  The first three properties are the
   "initial plan"; the rest were added after PCC exposed undetected
   faults in the stepping logic — the refinement loop of Section 3.4. *)
let root_properties () =
  let bit = Expr.reg "bit" and busy = Expr.reg "busy" in
  let start = Expr.input "start" in
  let zero8 = Expr.const ~width:8 0 in
  let done_ = Expr.and_ busy (Expr.eq bit zero8) in
  let stepping = Expr.and_ busy (Expr.not_ (Expr.eq bit zero8)) in
  let shr2 e =
    Expr.concat (Expr.const ~width:2 0) (Expr.slice e ~hi:7 ~lo:2)
  in
  [
    Prop.make ~name:"root_correct" (Hdl.Rtl_lib.root_correctness ~width:8 ());
    Prop.make_step ~name:"result_stable_when_done"
      (Prop.implies
         (Expr.and_ done_ (Expr.not_ start))
         (Expr.eq (Prop.next (Expr.reg "res")) (Expr.reg "res")));
    Prop.make_step ~name:"start_loads_operand"
      (Prop.implies start
         (Expr.eq (Prop.next (Expr.reg "nsave")) (Expr.input "n")));
    (* added after the first PCC pass *)
    Prop.make_step ~name:"start_loads_num"
      (Prop.implies start
         (Expr.eq (Prop.next (Expr.reg "num")) (Expr.input "n")));
    Prop.make_step ~name:"start_inits_iteration"
      (Prop.implies start
         (Expr.and_
            (Expr.eq (Prop.next bit) (Expr.const ~width:8 64))
            (Expr.and_ (Prop.next busy)
               (Expr.eq (Prop.next (Expr.reg "res")) zero8))));
    Prop.make_step ~name:"bit_shrinks_by_four"
      (Prop.implies
         (Expr.and_ (Expr.not_ start) stepping)
         (Expr.eq (Prop.next bit) (shr2 bit)));
    Prop.make_step ~name:"done_clears_busy"
      (Prop.implies (Expr.and_ (Expr.not_ start) done_)
         (Expr.not_ (Prop.next busy)));
    Prop.make_step ~name:"idle_holds_state"
      (Prop.implies
         (Expr.and_ (Expr.not_ start) (Expr.not_ busy))
         (Expr.and_
            (Expr.eq (Prop.next (Expr.reg "num")) (Expr.reg "num"))
            (Expr.and_
               (Expr.eq (Prop.next (Expr.reg "res")) (Expr.reg "res"))
               (Expr.eq (Prop.next bit) bit))));
  ]

(* The interface-wrapper verification plan (the HW/SW interface
   correctness properties of Section 3.4); the occupancy-transition
   properties were added after the first PCC pass. *)
let wrapper_properties nl =
  let full = Expr.reg "full" and buf = Expr.reg "buf" in
  [
    Prop.make ~name:"no_ack_when_full"
      (Expr.not_ (Expr.and_ (Prop.output nl "ack") full));
    Prop.make ~name:"ack_implies_req"
      (Prop.implies (Prop.output nl "ack") (Expr.input "req"));
    Prop.make_step ~name:"held_data_stable"
      (Prop.implies
         (Expr.and_ full (Expr.not_ (Expr.input "take")))
         (Expr.eq (Prop.next buf) buf));
    Prop.make_step ~name:"accepted_data_stored"
      (Prop.implies (Prop.output nl "ack")
         (Expr.eq (Prop.next buf) (Expr.input "data")));
    (* added after the first PCC pass *)
    Prop.make_step ~name:"accept_sets_full"
      (Prop.implies (Prop.output nl "ack") (Prop.next full));
    Prop.make_step ~name:"take_drains"
      (Prop.implies
         (Expr.and_ full (Expr.input "take"))
         (Expr.not_ (Prop.next full)));
    Prop.make_step ~name:"empty_stays_empty_without_req"
      (Prop.implies
         (Expr.and_ (Expr.not_ full) (Expr.not_ (Expr.input "req")))
         (Expr.not_ (Prop.next full)));
  ]

(* The streaming-argmin (WINNER) verification plan. *)
let argmin_properties () =
  let start = Expr.input "start" and valid = Expr.input "valid" in
  let d = Expr.input "d" in
  let best = Expr.reg "best"
  and best_idx = Expr.reg "best_idx"
  and count = Expr.reg "count" in
  [
    Prop.make_step ~name:"start_resets"
      (Prop.implies start
         (Expr.and_
            (Expr.eq (Prop.next best) (Expr.const ~width:10 1023))
            (Expr.and_
               (Expr.eq (Prop.next best_idx) (Expr.const ~width:5 0))
               (Expr.eq (Prop.next count) (Expr.const ~width:5 0)))));
    Prop.make_step ~name:"best_monotone"
      (Prop.implies (Expr.not_ start) (Expr.ule (Prop.next best) best));
    Prop.make_step ~name:"better_candidate_wins"
      (Prop.implies
         (Expr.and_ (Expr.not_ start) (Expr.and_ valid (Expr.ult d best)))
         (Expr.and_
            (Expr.eq (Prop.next best) d)
            (Expr.eq (Prop.next best_idx) count)));
    Prop.make_step ~name:"worse_candidate_ignored"
      (Prop.implies
         (Expr.and_ (Expr.not_ start)
            (Expr.and_ valid (Expr.not_ (Expr.ult d best))))
         (Expr.and_
            (Expr.eq (Prop.next best) best)
            (Expr.eq (Prop.next best_idx) best_idx)));
    Prop.make_step ~name:"valid_counts"
      (Prop.implies
         (Expr.and_ (Expr.not_ start) valid)
         (Expr.eq (Prop.next count) (Expr.add count (Expr.const ~width:5 1))));
    Prop.make_step ~name:"idle_holds"
      (Prop.implies
         (Expr.and_ (Expr.not_ start) (Expr.not_ valid))
         (Expr.and_
            (Expr.eq (Prop.next best) best)
            (Expr.and_
               (Expr.eq (Prop.next best_idx) best_idx)
               (Expr.eq (Prop.next count) count))));
  ]

(* The case-study RTL modules with their verification plans.  The
   fourth entry exercises the automated-interface-synthesis option: a
   two-slot skid-buffer wrapper synthesised from its specification, with
   mechanically generated checkers. *)
let modules () =
  let wrapper = Hdl.Rtl_lib.handshake_wrapper () in
  let gen_spec =
    Wrapper_gen.make_spec ~interface_name:"IFGEN" ~data_width:8 ~depth:2 ()
  in
  let gen_wrapper = Wrapper_gen.synthesize gen_spec in
  [
    {
      module_name = "DISTANCE";
      netlist = Hdl.Rtl_lib.distance_datapath ();
      properties = distance_properties ();
    };
    {
      module_name = "ROOT";
      netlist = Hdl.Rtl_lib.root_datapath ~width:8 ();
      properties = root_properties ();
    };
    {
      module_name = "WRAPPER";
      netlist = wrapper;
      properties = wrapper_properties wrapper;
    };
    {
      module_name = "ARGMIN";
      netlist = Hdl.Rtl_lib.argmin_datapath ();
      properties = argmin_properties ();
    };
    {
      module_name = "IFGEN";
      netlist = gen_wrapper;
      properties = Wrapper_gen.checkers gen_spec gen_wrapper;
    };
  ]

type module_report = {
  module_name : string;
  lint : Symbad_lint.Lint.report;
  gated : bool;
  mc_reports : Mc.Engine.report list;
  all_proved : bool;
  pcc : Symbad_pcc.Pcc.report option;
}

type result = { modules : module_report list }

let verify_module ?pool ?gov ?(max_depth = 12) ?(pcc_depth = 6)
    ?(max_reg_bits = 4) m =
  let gov = Symbad_gov.Gov.get gov in
  (* the static gate comes first, over a thin slice: a netlist the lint
     disproves never reaches the SAT engines.  Only errors gate —
     warnings and governor-skipped rules let verification proceed. *)
  let lint_gov = Symbad_gov.Gov.slice ~label:"lint" ~fraction:0.1 gov in
  let lint =
    Symbad_lint.Lint.run_netlist ?pool ~gov:lint_gov
      ~properties:(List.map (fun p -> (Prop.name p, Prop.formula p)) m.properties)
      m.netlist
  in
  if Symbad_lint.Lint.errors lint > 0 then
    {
      module_name = m.module_name;
      lint;
      gated = true;
      mc_reports = [];
      all_proved = false;
      pcc = None;
    }
  else
    (* half the module's budget to model checking up front; PCC then
       runs over whatever the proofs left unspent *)
    let mc_gov = Symbad_gov.Gov.slice ~label:"mc" ~fraction:0.5 gov in
    let mc_reports =
      Mc.Engine.check_all ?pool ~max_depth ~gov:mc_gov m.netlist m.properties
    in
    {
      module_name = m.module_name;
      lint;
      gated = false;
      mc_reports;
      all_proved = Mc.Engine.all_proved mc_reports;
      pcc =
        Some
          (Symbad_pcc.Pcc.run ?pool ~depth:pcc_depth ~max_reg_bits ~gov
             m.netlist m.properties);
    }

let run ?pool ?gov ?max_depth ?pcc_depth ?max_reg_bits () =
  let gov = Symbad_gov.Gov.get gov in
  let ms = modules () in
  (* per-module budget shares, fixed before any verification runs *)
  let shares = Symbad_gov.Gov.split ~label:"level4.modules" gov (List.length ms) in
  {
    modules =
      List.map2
        (fun m g ->
          verify_module ?pool ~gov:g ?max_depth ?pcc_depth ?max_reg_bits m)
        ms shares;
  }

let pp_module_report fmt r =
  Fmt.pf fmt "RTL module %s:@." r.module_name;
  Fmt.pf fmt "  lint: %d errors, %d warnings over %d rules@."
    (Symbad_lint.Lint.errors r.lint)
    (Symbad_lint.Lint.warnings r.lint)
    (List.length r.lint.Symbad_lint.Lint.rules_run);
  List.iter
    (fun d -> Fmt.pf fmt "    %a@." Symbad_lint.Diagnostic.pp d)
    r.lint.Symbad_lint.Lint.diagnostics;
  if r.gated then
    Fmt.pf fmt "  model checking and PCC skipped: lint gate@."
  else begin
    List.iter (fun m -> Fmt.pf fmt "  %a@." Mc.Engine.pp_report m) r.mc_reports;
    match r.pcc with
    | Some pcc ->
        Fmt.pf fmt "  property coverage: %.0f%% (%d/%d detectable faults)@."
          (100. *. pcc.Symbad_pcc.Pcc.coverage)
          pcc.Symbad_pcc.Pcc.covered pcc.Symbad_pcc.Pcc.detectable
    | None -> ()
  end

let pp fmt r = List.iter (pp_module_report fmt) r.modules
