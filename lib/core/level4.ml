(* Level 4: RTL generation and formal verification.

   The FPGA-mapped datapaths (DISTANCE, ROOT) and the RTL-to-TL interface
   wrapper come from the predefined IP library; properties about them are
   model checked (proof certificate or counterexample for each), and the
   property-coverage checker then judges whether the property set is
   complete, exposing behaviours no property constrains. *)

module Hdl = Symbad_hdl
module Expr = Symbad_hdl.Expr
module Mc = Symbad_mc
module Prop = Symbad_mc.Prop

type rtl_module = {
  module_name : string;
  netlist : Hdl.Netlist.t;
  properties : Prop.t list;
}

let distance_properties () =
  let aw = 16 in
  let acc = Expr.reg "acc" in
  let start = Expr.input "start" and valid = Expr.input "valid" in
  let a =
    Expr.concat (Expr.const ~width:8 0) (Expr.input "a")
  and b = Expr.concat (Expr.const ~width:8 0) (Expr.input "b") in
  let diff = Expr.sub a b in
  let sq = Expr.mul diff diff in
  [
    Prop.make_step ~name:"start_clears_acc"
      (Prop.implies start (Expr.eq (Prop.next acc) (Expr.const ~width:aw 0)));
    Prop.make_step ~name:"idle_holds_acc"
      (Prop.implies
         (Expr.and_ (Expr.not_ start) (Expr.not_ valid))
         (Expr.eq (Prop.next acc) acc));
    Prop.make_step ~name:"mac_accumulates"
      (Prop.implies
         (Expr.and_ (Expr.not_ start) valid)
         (Expr.eq (Prop.next acc) (Expr.add acc sq)));
  ]

(* The ROOT verification plan.  The first three properties are the
   "initial plan"; the rest were added after PCC exposed undetected
   faults in the stepping logic — the refinement loop of Section 3.4. *)
let root_properties () =
  let bit = Expr.reg "bit" and busy = Expr.reg "busy" in
  let start = Expr.input "start" in
  let zero8 = Expr.const ~width:8 0 in
  let done_ = Expr.and_ busy (Expr.eq bit zero8) in
  let stepping = Expr.and_ busy (Expr.not_ (Expr.eq bit zero8)) in
  let shr2 e =
    Expr.concat (Expr.const ~width:2 0) (Expr.slice e ~hi:7 ~lo:2)
  in
  [
    Prop.make ~name:"root_correct" (Hdl.Rtl_lib.root_correctness ~width:8 ());
    Prop.make_step ~name:"result_stable_when_done"
      (Prop.implies
         (Expr.and_ done_ (Expr.not_ start))
         (Expr.eq (Prop.next (Expr.reg "res")) (Expr.reg "res")));
    Prop.make_step ~name:"start_loads_operand"
      (Prop.implies start
         (Expr.eq (Prop.next (Expr.reg "nsave")) (Expr.input "n")));
    (* added after the first PCC pass *)
    Prop.make_step ~name:"start_loads_num"
      (Prop.implies start
         (Expr.eq (Prop.next (Expr.reg "num")) (Expr.input "n")));
    Prop.make_step ~name:"start_inits_iteration"
      (Prop.implies start
         (Expr.and_
            (Expr.eq (Prop.next bit) (Expr.const ~width:8 64))
            (Expr.and_ (Prop.next busy)
               (Expr.eq (Prop.next (Expr.reg "res")) zero8))));
    Prop.make_step ~name:"bit_shrinks_by_four"
      (Prop.implies
         (Expr.and_ (Expr.not_ start) stepping)
         (Expr.eq (Prop.next bit) (shr2 bit)));
    Prop.make_step ~name:"done_clears_busy"
      (Prop.implies (Expr.and_ (Expr.not_ start) done_)
         (Expr.not_ (Prop.next busy)));
    Prop.make_step ~name:"idle_holds_state"
      (Prop.implies
         (Expr.and_ (Expr.not_ start) (Expr.not_ busy))
         (Expr.and_
            (Expr.eq (Prop.next (Expr.reg "num")) (Expr.reg "num"))
            (Expr.and_
               (Expr.eq (Prop.next (Expr.reg "res")) (Expr.reg "res"))
               (Expr.eq (Prop.next bit) bit))));
  ]

(* The interface-wrapper verification plan (the HW/SW interface
   correctness properties of Section 3.4); the occupancy-transition
   properties were added after the first PCC pass. *)
let wrapper_properties nl =
  let full = Expr.reg "full" and buf = Expr.reg "buf" in
  [
    Prop.make ~name:"no_ack_when_full"
      (Expr.not_ (Expr.and_ (Prop.output nl "ack") full));
    Prop.make ~name:"ack_implies_req"
      (Prop.implies (Prop.output nl "ack") (Expr.input "req"));
    Prop.make_step ~name:"held_data_stable"
      (Prop.implies
         (Expr.and_ full (Expr.not_ (Expr.input "take")))
         (Expr.eq (Prop.next buf) buf));
    Prop.make_step ~name:"accepted_data_stored"
      (Prop.implies (Prop.output nl "ack")
         (Expr.eq (Prop.next buf) (Expr.input "data")));
    (* added after the first PCC pass *)
    Prop.make_step ~name:"accept_sets_full"
      (Prop.implies (Prop.output nl "ack") (Prop.next full));
    Prop.make_step ~name:"take_drains"
      (Prop.implies
         (Expr.and_ full (Expr.input "take"))
         (Expr.not_ (Prop.next full)));
    Prop.make_step ~name:"empty_stays_empty_without_req"
      (Prop.implies
         (Expr.and_ (Expr.not_ full) (Expr.not_ (Expr.input "req")))
         (Expr.not_ (Prop.next full)));
  ]

(* The streaming-argmin (WINNER) verification plan. *)
let argmin_properties () =
  let start = Expr.input "start" and valid = Expr.input "valid" in
  let d = Expr.input "d" in
  let best = Expr.reg "best"
  and best_idx = Expr.reg "best_idx"
  and count = Expr.reg "count" in
  [
    Prop.make_step ~name:"start_resets"
      (Prop.implies start
         (Expr.and_
            (Expr.eq (Prop.next best) (Expr.const ~width:10 1023))
            (Expr.and_
               (Expr.eq (Prop.next best_idx) (Expr.const ~width:5 0))
               (Expr.eq (Prop.next count) (Expr.const ~width:5 0)))));
    Prop.make_step ~name:"best_monotone"
      (Prop.implies (Expr.not_ start) (Expr.ule (Prop.next best) best));
    Prop.make_step ~name:"better_candidate_wins"
      (Prop.implies
         (Expr.and_ (Expr.not_ start) (Expr.and_ valid (Expr.ult d best)))
         (Expr.and_
            (Expr.eq (Prop.next best) d)
            (Expr.eq (Prop.next best_idx) count)));
    Prop.make_step ~name:"worse_candidate_ignored"
      (Prop.implies
         (Expr.and_ (Expr.not_ start)
            (Expr.and_ valid (Expr.not_ (Expr.ult d best))))
         (Expr.and_
            (Expr.eq (Prop.next best) best)
            (Expr.eq (Prop.next best_idx) best_idx)));
    Prop.make_step ~name:"valid_counts"
      (Prop.implies
         (Expr.and_ (Expr.not_ start) valid)
         (Expr.eq (Prop.next count) (Expr.add count (Expr.const ~width:5 1))));
    Prop.make_step ~name:"idle_holds"
      (Prop.implies
         (Expr.and_ (Expr.not_ start) (Expr.not_ valid))
         (Expr.and_
            (Expr.eq (Prop.next best) best)
            (Expr.and_
               (Expr.eq (Prop.next best_idx) best_idx)
               (Expr.eq (Prop.next count) count))));
  ]

(* The case-study RTL modules with their verification plans.  The
   fourth entry exercises the automated-interface-synthesis option: a
   two-slot skid-buffer wrapper synthesised from its specification, with
   mechanically generated checkers. *)
let modules () =
  let wrapper = Hdl.Rtl_lib.handshake_wrapper () in
  let gen_spec =
    Wrapper_gen.make_spec ~interface_name:"IFGEN" ~data_width:8 ~depth:2 ()
  in
  let gen_wrapper = Wrapper_gen.synthesize gen_spec in
  [
    {
      module_name = "DISTANCE";
      netlist = Hdl.Rtl_lib.distance_datapath ();
      properties = distance_properties ();
    };
    {
      module_name = "ROOT";
      netlist = Hdl.Rtl_lib.root_datapath ~width:8 ();
      properties = root_properties ();
    };
    {
      module_name = "WRAPPER";
      netlist = wrapper;
      properties = wrapper_properties wrapper;
    };
    {
      module_name = "ARGMIN";
      netlist = Hdl.Rtl_lib.argmin_datapath ();
      properties = argmin_properties ();
    };
    {
      module_name = "IFGEN";
      netlist = gen_wrapper;
      properties = Wrapper_gen.checkers gen_spec gen_wrapper;
    };
  ]

(* The rich per-engine reports of a module that actually ran.  A cache
   hit replays the consolidated verdict rows only — the traces, fault
   lists and diagnostics behind them were not recomputed. *)
type module_results = {
  lint : Symbad_lint.Lint.report;
  gated : bool;
  mc_reports : Mc.Engine.report list;
  all_proved : bool;
  pcc : Symbad_pcc.Pcc.report option;
}

type module_report = {
  module_name : string;
  cached : bool;
  lint_verdict : Verdict.t;
  mc_verdict : Verdict.t;
  pcc_verdict : Verdict.t;
  results : module_results option;
}

type result = { modules : module_report list }

let module_verdicts r = [ r.lint_verdict; r.mc_verdict; r.pcc_verdict ]

(* The three consolidated verdict rows of a module run — one shape for
   the flow report, the [verify rtl] CLI and the cache (historically
   each consumer rebuilt these from the rich reports by hand). *)
let results_verdicts ~module_name (res : module_results) =
  let lint_verdict =
    (* the adapter names the netlist; the flow names the module *)
    { (Verdict.of_lint res.lint) with
      Verdict.name = Printf.sprintf "lint %s" module_name }
  in
  let skipped name =
    Verdict.make ~name ~detail:"static lint already disproved the module"
      (Verdict.Inconclusive "skipped: lint gate")
  in
  let mc_verdict =
    let name = Printf.sprintf "model checking %s" module_name in
    if res.gated then skipped name
    else
      Verdict.make ~name ~passed:res.all_proved
        ~detail:(Printf.sprintf "%d properties" (List.length res.mc_reports))
        (if res.all_proved then Verdict.Proved
         else Verdict.Inconclusive "not all properties proved")
  in
  let pcc_verdict =
    let name = Printf.sprintf "PCC completeness %s" module_name in
    match res.pcc with
    | Some pcc -> { (Verdict.of_pcc pcc) with Verdict.name = name }
    | None -> skipped name
  in
  (lint_verdict, mc_verdict, pcc_verdict)

(* --- the verdict cache ------------------------------------------------ *)

let cache_key ~escalate ~max_depth ~pcc_depth ~max_reg_bits gov m =
  Symbad_cache.Key.make ~netlist:m.netlist ~props:m.properties
    ~budget:(Symbad_gov.Gov.budget gov)
    ~params:
      [
        ("max_depth", max_depth);
        ("pcc_depth", pcc_depth);
        ("max_reg_bits", max_reg_bits);
        (* the lint gate's behaviour is part of the verdict: growing the
           rule family or toggling escalation must miss stale entries *)
        ("lint_rules", List.length Symbad_lint.Lint.netlist_rule_ids);
        ("escalate", if escalate then 1 else 0);
      ]
    ()

let cached_report cache key (m : rtl_module) =
  match Symbad_cache.Cache.find cache key with
  | None -> None
  | Some entry -> (
      let module Json = Symbad_obs.Json in
      let row i =
        Option.bind (Json.member "verdicts" entry) Json.to_list
        |> Fun.flip Option.bind (fun l -> List.nth_opt l i)
        |> Fun.flip Option.bind Verdict.of_json
        |> Option.map Verdict.with_cached
      in
      match (row 0, row 1, row 2) with
      | Some lint_verdict, Some mc_verdict, Some pcc_verdict ->
          Some
            {
              module_name = m.module_name;
              cached = true;
              lint_verdict;
              mc_verdict;
              pcc_verdict;
              results = None;
            }
      | _ -> None)

(* Only conclusive work is worth replaying: every property proved, no
   unresolved PCC faults, a clean ungated lint, and no exhaustion or
   wall-clock deadline in sight.  Anything else is a budget- or
   host-dependent partial result — re-running it may genuinely do
   better, so it must miss. *)
let storable gov (res : module_results) (lint_v, mc_v, pcc_v) =
  (not res.gated)
  && res.all_proved
  && lint_v.Verdict.passed && mc_v.Verdict.passed && pcc_v.Verdict.passed
  && (match res.pcc with
     | Some p ->
         List.for_all
           (fun (fr : Symbad_pcc.Pcc.fault_report) ->
             fr.Symbad_pcc.Pcc.status <> Symbad_pcc.Pcc.Unresolved)
           p.Symbad_pcc.Pcc.faults
     | None -> false)
  && res.lint.Symbad_lint.Lint.skipped_rules = []
  && Symbad_gov.Gov.exhaustion gov = None
  && (Symbad_gov.Gov.budget gov).Symbad_gov.Budget.deadline = None

let store_report cache key r =
  let module Json = Symbad_obs.Json in
  Symbad_cache.Cache.store cache key
    (Json.Obj
       [
         ("module", Json.Str r.module_name);
         ( "verdicts",
           Json.List
             (List.map (Verdict.to_json ~timings:false) (module_verdicts r)) );
       ])

(* --- driving one module ----------------------------------------------- *)

let verify_module_live ?pool ~gov ~escalate ~max_depth ~pcc_depth ~max_reg_bits
    m =
  (* the static gate comes first, over a thin slice: a netlist the lint
     disproves never reaches the SAT engines.  Only errors gate —
     warnings and governor-skipped rules let verification proceed. *)
  let lint_gov = Symbad_gov.Gov.slice ~label:"lint" ~fraction:0.1 gov in
  let prop_pairs =
    List.map (fun p -> (Prop.name p, Prop.formula p)) m.properties
  in
  let lint =
    Symbad_lint.Lint.run_netlist ?pool ~gov:lint_gov ~properties:prop_pairs
      m.netlist
  in
  (* escalation runs before the gate so a disproved warning (promoted
     to error, counterexample attached) keeps the SAT engines off *)
  let lint =
    if escalate && Symbad_lint.Lint.errors lint = 0 then
      Symbad_lint.Lint.escalate ?pool
        ~gov:(Symbad_gov.Gov.slice ~label:"lint.escalate" ~fraction:0.1 gov)
        ~max_depth ~properties:prop_pairs m.netlist lint
    else lint
  in
  if Symbad_lint.Lint.errors lint > 0 then
    { lint; gated = true; mc_reports = []; all_proved = false; pcc = None }
  else
    (* half the module's budget to model checking up front; PCC then
       runs over whatever the proofs left unspent *)
    let mc_gov = Symbad_gov.Gov.slice ~label:"mc" ~fraction:0.5 gov in
    let mc_reports =
      Mc.Engine.check_all ?pool ~max_depth ~gov:mc_gov m.netlist m.properties
    in
    {
      lint;
      gated = false;
      mc_reports;
      all_proved = Mc.Engine.all_proved mc_reports;
      pcc =
        Some
          (Symbad_pcc.Pcc.run ?pool ~depth:pcc_depth ~max_reg_bits ~gov
             m.netlist m.properties);
    }

let verify_module ?pool ?cache ?gov ?(escalate = false) ?(max_depth = 12)
    ?(pcc_depth = 6) ?(max_reg_bits = 4) m =
  let gov = Symbad_gov.Gov.get gov in
  let key =
    match cache with
    | None -> None
    | Some _ ->
        Some (cache_key ~escalate ~max_depth ~pcc_depth ~max_reg_bits gov m)
  in
  let hit =
    match (cache, key) with
    | Some c, Some k -> cached_report c k m
    | _ -> None
  in
  match hit with
  | Some r -> r
  | None ->
      let res =
        verify_module_live ?pool ~gov ~escalate ~max_depth ~pcc_depth
          ~max_reg_bits m
      in
      let lint_verdict, mc_verdict, pcc_verdict =
        results_verdicts ~module_name:m.module_name res
      in
      let r =
        {
          module_name = m.module_name;
          cached = false;
          lint_verdict;
          mc_verdict;
          pcc_verdict;
          results = Some res;
        }
      in
      (match (cache, key) with
      | Some c, Some k
        when storable gov res (lint_verdict, mc_verdict, pcc_verdict) ->
          store_report c k r
      | _ -> ());
      r

let run ?pool ?cache ?gov ?escalate ?max_depth ?pcc_depth ?max_reg_bits () =
  let gov = Symbad_gov.Gov.get gov in
  let ms = modules () in
  (* per-module budget shares, fixed before any verification runs *)
  let shares = Symbad_gov.Gov.split ~label:"level4.modules" gov (List.length ms) in
  {
    modules =
      List.map2
        (fun m g ->
          verify_module ?pool ?cache ~gov:g ?escalate ?max_depth ?pcc_depth
            ?max_reg_bits m)
        ms shares;
  }

let all_cached r = List.for_all (fun m -> m.cached) r.modules

let pp_module_report fmt r =
  Fmt.pf fmt "RTL module %s:@." r.module_name;
  match r.results with
  | None ->
      List.iter
        (fun v -> Fmt.pf fmt "  %a@." Verdict.pp v)
        (module_verdicts r)
  | Some res ->
      Fmt.pf fmt "  lint: %d errors, %d warnings over %d rules@."
        (Symbad_lint.Lint.errors res.lint)
        (Symbad_lint.Lint.warnings res.lint)
        (List.length res.lint.Symbad_lint.Lint.rules_run);
      List.iter
        (fun d -> Fmt.pf fmt "    %a@." Symbad_lint.Diagnostic.pp d)
        res.lint.Symbad_lint.Lint.diagnostics;
      if res.gated then
        Fmt.pf fmt "  model checking and PCC skipped: lint gate@."
      else begin
        List.iter
          (fun m -> Fmt.pf fmt "  %a@." Mc.Engine.pp_report m)
          res.mc_reports;
        match res.pcc with
        | Some pcc ->
            Fmt.pf fmt
              "  property coverage: %.0f%% (%d/%d detectable faults)@."
              (100. *. pcc.Symbad_pcc.Pcc.coverage)
              pcc.Symbad_pcc.Pcc.covered pcc.Symbad_pcc.Pcc.detectable
        | None -> ()
      end

let pp fmt r = List.iter (pp_module_report fmt) r.modules
