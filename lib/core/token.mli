(** Data tokens flowing through the system models.

    The same values travel through every refinement level — that is what
    makes trace comparison meaningful; only their *transport* model
    changes per level. *)

type t =
  | Frame of Symbad_image.Image.t
  | Shape of Symbad_image.Ellipse.t
  | Scan of Symbad_image.Line.scan
  | Vec of int array
  | Mat of int array array
  | Num of int
  | Verdict of Symbad_image.Winner.verdict

val bytes : t -> int
(** Transport size, used to size bus transactions at levels 2-3. *)

val digest : t -> string
(** Canonical trace representation. *)

val kind_to_string : t -> string

val garble : t -> t
(** Deterministic payload corruption (fault-injection campaigns): xors a
    fixed mask into numeric payloads ([Vec]/[Mat]/[Num]), guaranteed to
    change their digest while keeping values non-negative.  Structural
    tokens pass through unchanged. *)

(** Typed accessors; raise [Invalid_argument] on protocol violations so
    task-graph wiring errors fail fast. *)

val to_frame : t -> Symbad_image.Image.t
val to_shape : t -> Symbad_image.Ellipse.t
val to_scan : t -> Symbad_image.Line.scan
val to_vec : t -> int array
val to_mat : t -> int array array
val to_num : t -> int
val to_verdict : t -> Symbad_image.Winner.verdict
