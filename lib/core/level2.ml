(* Level 2: timed transaction-level simulation of the mapped
   architecture.

   SW tasks are collapsed into a single CPU process executing a
   cyclostatic schedule (the topological order restricted to SW tasks);
   each HW task is its own process.  Channels between two SW tasks stay
   CPU-internal; any channel with a HW endpoint is carried by the shared
   bus, the producer paying the transfer.  Task timing comes from the
   annotation model applied to the work units each firing reports
   (automatic for SW, as Vista does; the HW cost factors model the
   designer's manual annotation). *)

module Sim = Symbad_sim
module Tlm = Symbad_tlm
module Annotation = Symbad_tlm.Annotation

type config = {
  annotation : Annotation.t;
  bus_width_bytes : int;
  bus_period_ns : int;
  cpu_period_ns : int;
  hw_period_ns : int;
  fifo_capacity : int;
}

let default_config =
  {
    annotation = Annotation.default;
    bus_width_bytes = 4;
    bus_period_ns = 10;  (* 100 MHz AMBA *)
    cpu_period_ns = 20;  (* 50 MHz ARM7 class *)
    hw_period_ns = 10;  (* 100 MHz hardwired logic *)
    fifo_capacity = 2;
  }

type result = {
  trace : Sim.Trace.t;
  kernel_stats : Sim.Kernel.stats;
  bus_report : Tlm.Bus.report;
  cpu_stats : Tlm.Cpu.stats;
  latency_ns : int;
  channel_occupancy : (string * Sim.Fifo.occupancy) list;
}

(* Simulated-clock speed achieved by the host, in kHz: how many simulated
   bus-clock cycles elapse per host CPU second — the figure the paper
   quotes as "simulation speed close to 200 kHz". *)
let simulation_speed_khz ~bus_period_ns result =
  let cycles = float_of_int result.latency_ns /. float_of_int bus_period_ns in
  let secs = result.kernel_stats.Sim.Kernel.cpu_seconds in
  if secs <= 0. then infinity else cycles /. secs /. 1000.

(* Does the channel cross out of the CPU? *)
let crosses_bus mapping graph channel =
  let endpoint_sw task_opt =
    match task_opt with
    | None -> true (* environment side: no bus model *)
    | Some (t : Task_graph.task) -> Mapping.is_sw mapping t.Task_graph.name
  in
  not
    (endpoint_sw (Task_graph.producer_of graph channel)
    && endpoint_sw (Task_graph.consumer_of graph channel))

let run ?(config = default_config) ?(force_sw = []) (graph : Task_graph.t)
    (mapping : Mapping.t) =
  (* static graceful degradation: tasks whose accelerator is unavailable
     run from their software implementation instead *)
  let mapping =
    List.fold_left (fun m t -> Mapping.move m t Mapping.Sw) mapping force_sw
  in
  (* environment models (sources) must stay on the CPU: they pace the
     cyclostatic schedule *)
  List.iter
    (fun (t : Task_graph.task) ->
      if t.Task_graph.inputs = [] && not (Mapping.is_sw mapping t.Task_graph.name)
      then invalid_arg ("Level2.run: source " ^ t.Task_graph.name ^ " must be SW"))
    graph.Task_graph.tasks;
  let kernel = Sim.Kernel.create () in
  let trace = Sim.Trace.create () in
  let bus =
    Tlm.Bus.create ~width_bytes:config.bus_width_bytes
      ~period_ns:config.bus_period_ns "amba"
  in
  let cpu = Tlm.Cpu.create ~period_ns:config.cpu_period_ns "arm7" in
  let fifos : (string, Token.t Sim.Fifo.t) Hashtbl.t = Hashtbl.create 32 in
  let fifo_of channel =
    match Hashtbl.find_opt fifos channel with
    | Some f -> f
    | None ->
        (* sink channels are drained by the environment: unbounded *)
        let capacity =
          if List.mem channel graph.Task_graph.sinks then 0
          else config.fifo_capacity
        in
        let f = Sim.Fifo.create ~capacity channel in
        Hashtbl.add fifos channel f;
        f
  in
  let record task channel token =
    Sim.Trace.record trace ~time:(Sim.Kernel.now kernel) ~source:task
      ~label:channel (Token.digest token)
  in
  let send ~master task channel token =
    record task channel token;
    if crosses_bus mapping graph channel then
      Tlm.Bus.transfer bus
        (Tlm.Transaction.make ~master ~target:channel ~kind:Tlm.Transaction.Write
           ~bytes:(Token.bytes token));
    Sim.Fifo.put (fifo_of channel) token
  in
  (* HW tasks: autonomous processes *)
  let spawn_hw (t : Task_graph.task) =
    Sim.Kernel.spawn kernel ~name:t.Task_graph.name (fun () ->
        let rec loop firing_index =
          let inputs =
            List.map (fun c -> Sim.Fifo.get (fifo_of c)) t.Task_graph.inputs
          in
          match t.Task_graph.fire ~firing_index inputs with
          | None -> ()
          | Some { Task_graph.outputs; work } ->
              let cycles =
                Annotation.cycles config.annotation ~target:Annotation.Hw
                  ~weight:work
              in
              Sim.Process.wait (Sim.Time.ns (cycles * config.hw_period_ns));
              List.iter2
                (fun c token -> send ~master:t.Task_graph.name t.Task_graph.name c token)
                t.Task_graph.outputs outputs;
              loop (firing_index + 1)
        in
        loop 0)
  in
  (* SW tasks: one CPU process, cyclostatic schedule in topological order *)
  let sw_schedule =
    List.filter
      (fun (t : Task_graph.task) -> Mapping.is_sw mapping t.Task_graph.name)
      (Task_graph.topological_order graph)
  in
  (* Unit-rate SDF: every task fires exactly once per source frame, so
     the cyclostatic CPU loop runs whole rounds (sources first, then the
     other SW tasks in topological order, blocking on HW-produced inputs)
     and stops at the round in which every source is exhausted. *)
  let sources, sw_rest =
    List.partition (fun (t : Task_graph.task) -> t.Task_graph.inputs = [])
      sw_schedule
  in
  let spawn_cpu () =
    Sim.Kernel.spawn kernel ~name:"cpu" (fun () ->
        let ended : (string, unit) Hashtbl.t = Hashtbl.create 8 in
        let counts : (string, int) Hashtbl.t = Hashtbl.create 8 in
        let fire_once (t : Task_graph.task) =
          if not (Hashtbl.mem ended t.Task_graph.name) then begin
            let firing_index =
              Option.value ~default:0 (Hashtbl.find_opt counts t.Task_graph.name)
            in
            let inputs =
              List.map (fun c -> Sim.Fifo.get (fifo_of c)) t.Task_graph.inputs
            in
            match t.Task_graph.fire ~firing_index inputs with
            | None -> Hashtbl.replace ended t.Task_graph.name ()
            | Some { Task_graph.outputs; work } ->
                Hashtbl.replace counts t.Task_graph.name (firing_index + 1);
                let cycles =
                  Annotation.cycles config.annotation ~target:Annotation.Sw
                    ~weight:work
                in
                Tlm.Cpu.execute cpu ~cycles;
                List.iter2
                  (fun c token -> send ~master:"cpu" t.Task_graph.name c token)
                  t.Task_graph.outputs outputs
          end
        in
        let rec rounds () =
          List.iter fire_once sources;
          let live =
            List.exists
              (fun (t : Task_graph.task) ->
                not (Hashtbl.mem ended t.Task_graph.name))
              sources
          in
          if live then begin
            List.iter fire_once sw_rest;
            rounds ()
          end
        in
        rounds ())
  in
  List.iter
    (fun (t : Task_graph.task) ->
      match Mapping.target_of mapping t.Task_graph.name with
      | Mapping.Hw -> spawn_hw t
      | Mapping.Sw -> ()
      | Mapping.Fpga _ ->
          invalid_arg "Level2.run: FPGA targets appear only at level 3")
    graph.Task_graph.tasks;
  spawn_cpu ();
  Sim.Kernel.run kernel;
  let kernel_stats = Sim.Kernel.stats kernel in
  {
    trace;
    kernel_stats;
    bus_report = Tlm.Bus.report bus;
    cpu_stats = Tlm.Cpu.stats cpu;
    latency_ns = Sim.Time.to_ns kernel_stats.Sim.Kernel.final_time;
    channel_occupancy =
      Hashtbl.fold (fun name f acc -> (name, Sim.Fifo.occupancy f) :: acc)
        fifos []
      |> List.sort compare;
  }
