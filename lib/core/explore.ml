(* Architecture exploration: "a single configuration must be graded
   according to performance, silicon usage, power consumption".

   Each candidate mapping is simulated at level 2 (or level 3 for
   reconfigurable candidates) and graded; the sweep reports all points
   and the Pareto-optimal subset.  The static-vs-reconfigurable
   comparison reproduces the paper's motivating trade-off: the all-HW
   "static approach where all HW resources were assumed simultaneously
   available" is fastest but pays full silicon area, while FPGA contexts
   time-share silicon at the price of reconfiguration traffic. *)

type grade = {
  mapping : Mapping.t;
  label : string;
  latency_ns : int;
  bus_busy_ns : int;
  bus_utilisation : float;
  bitstream_bytes : int;
  area : int;  (* silicon cost of the HW + FPGA fabric *)
  energy_proxy : float;  (* arbitrary units; see [energy_of] *)
}

(* Area model: hardwired modules pay their full area; FPGA candidates pay
   the fabric once (sized by the largest context) with a 2x density
   penalty for programmability. *)
let area_of ~task_area mapping =
  let hw_area =
    List.fold_left (fun acc t -> acc + task_area t) 0 (Mapping.hw_tasks mapping)
  in
  let fpga_tasks = Mapping.fpga_tasks mapping in
  let fabric =
    match Mapping.contexts mapping with
    | [] -> 0
    | contexts ->
        let context_area ctx =
          List.fold_left
            (fun acc (t, c) -> if String.equal c ctx then acc + task_area t else acc)
            0 fpga_tasks
        in
        2 * List.fold_left (fun m c -> max m (context_area c)) 0 contexts
  in
  hw_area + fabric

(* Energy proxy: CPU busy time weighs heavy (power-hungry core), HW logic
   light, bus traffic and bitstream downloads in between. *)
let energy_of ~latency_ns ~cpu_busy_ns ~bus_busy_ns ~bitstream_bytes =
  (1.0 *. float_of_int cpu_busy_ns)
  +. (0.2 *. float_of_int (latency_ns - cpu_busy_ns))
  +. (0.5 *. float_of_int bus_busy_ns)
  +. (4.0 *. float_of_int bitstream_bytes)

let grade_level2 ?(config = Level2.default_config) ~task_area ~label graph
    mapping =
  let r = Level2.run ~config graph mapping in
  {
    mapping;
    label;
    latency_ns = r.Level2.latency_ns;
    bus_busy_ns = r.Level2.bus_report.Symbad_tlm.Bus.busy_ns;
    bus_utilisation = r.Level2.bus_report.Symbad_tlm.Bus.utilisation;
    bitstream_bytes = 0;
    area = area_of ~task_area mapping;
    energy_proxy =
      energy_of ~latency_ns:r.Level2.latency_ns
        ~cpu_busy_ns:r.Level2.cpu_stats.Symbad_tlm.Cpu.busy_ns
        ~bus_busy_ns:r.Level2.bus_report.Symbad_tlm.Bus.busy_ns
        ~bitstream_bytes:0;
  }

let grade_level3 ?(config = Level3.default_config) ~task_area ~label graph
    mapping =
  let r = Level3.run ~config graph mapping in
  {
    mapping;
    label;
    latency_ns = r.Level3.latency_ns;
    bus_busy_ns = r.Level3.bus_report.Symbad_tlm.Bus.busy_ns;
    bus_utilisation = r.Level3.bus_report.Symbad_tlm.Bus.utilisation;
    bitstream_bytes = r.Level3.bus_report.Symbad_tlm.Bus.bitstream_bytes;
    area = area_of ~task_area mapping;
    energy_proxy =
      energy_of ~latency_ns:r.Level3.latency_ns
        ~cpu_busy_ns:r.Level3.cpu_stats.Symbad_tlm.Cpu.busy_ns
        ~bus_busy_ns:r.Level3.bus_report.Symbad_tlm.Bus.busy_ns
        ~bitstream_bytes:r.Level3.bus_report.Symbad_tlm.Bus.bitstream_bytes;
  }

(* Sweep HW-set sizes: map the [n] heaviest tasks to HW for n in
   [0, max_hw], grading each candidate — the II-III-IV iteration of the
   architecture-exploration loop.  Candidates simulate independently, so
   they fan out on the pool; progress goes through [symbad_obs] events
   (never stdout), emitted from the calling domain only. *)
let sweep_hw_sets ?pool ?config ~task_area ~profile ~pinned_sw ?(max_hw = 6)
    graph =
  let module Obs = Symbad_obs.Obs in
  let module Json = Symbad_obs.Json in
  let progress ~completed ~total =
    Obs.event
      ~args:[ ("completed", Json.Int completed); ("total", Json.Int total) ]
      "explore.progress"
  in
  Symbad_par.Par.map ~label:"explore.hw_sets" ~progress
    (Symbad_par.Par.get pool)
    (fun n ->
      let mapping = Mapping.of_ranking ~pinned_sw ~top_n:n profile graph in
      grade_level2 ?config ~task_area ~label:(Printf.sprintf "hw%d" n) graph
        mapping)
    (List.init (max_hw + 1) Fun.id)

(* Pareto filter over (latency, area, energy): keep points not dominated
   on all three axes. *)
let pareto points =
  let dominates a b =
    a.latency_ns <= b.latency_ns && a.area <= b.area
    && a.energy_proxy <= b.energy_proxy
    && (a.latency_ns < b.latency_ns || a.area < b.area
       || a.energy_proxy < b.energy_proxy)
  in
  List.filter (fun p -> not (List.exists (fun q -> dominates q p) points))
    points

let pp_grade fmt g =
  Fmt.pf fmt
    "%-12s latency %8dns  area %5d  bus %4.1f%%  bitstream %6dB  energy %.2e"
    g.label g.latency_ns g.area
    (100. *. g.bus_utilisation)
    g.bitstream_bytes g.energy_proxy
