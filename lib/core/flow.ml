(* The complete Symbad design-and-verification flow (Figure 1).

   Runs the four levels in order on the face recognition case study, at
   each level performing the design step (refinement) and the
   verification steps the methodology prescribes, carrying every report
   forward.  The result is the machine-readable version of the paper's
   Section 4. *)

module Sim = Symbad_sim
module Annotation = Symbad_tlm.Annotation
module Obs = Symbad_obs.Obs
module Json = Symbad_obs.Json
module Gov = Symbad_gov.Gov
module Budget = Symbad_gov.Budget
module Degrade = Symbad_gov.Degrade

(* The historical per-flow result record is now the stack-wide
   [Verdict.t] (see lib/core/verdict.mli); the alias (and the
   [verification] constructor below) stay for one release so existing
   callers keep compiling. *)
type verification = Verdict.t

type level_report = {
  level : int;
  title : string;
  host_seconds : float;
  latency_ns : int option;
  sim_speed_khz : float option;
  verifications : verification list;
}

type t = {
  workload : Face_app.workload;
  levels : level_report list;
  mapping : Mapping.t;  (* final (level-3) mapping *)
  all_passed : bool;
}

let verification ~check ~passed detail =
  (* deprecated shim: callers should construct Verdict.t directly *)
  Verdict.make ~name:check ~passed ~detail
    (if passed then Verdict.Proved else Verdict.Disproved detail)

(* Time one verification step; the seconds land in the verdict. *)
let timed f =
  let t0 = Sys.time () in
  let v = f () in
  (v, Sys.time () -. t0)

let compare_traces ~check ~reference ~actual =
  let mismatches, host_seconds =
    timed (fun () -> Sim.Trace.compare_data ~reference ~actual)
  in
  match mismatches with
  | [] ->
      Verdict.make ~name:check ~host_seconds
        ~detail:
          (Printf.sprintf "%d streams match"
             (List.length (Sim.Trace.sources actual)))
        Verdict.Proved
  | ms ->
      Verdict.make ~name:check ~host_seconds
        (Verdict.Disproved (Printf.sprintf "%d stream mismatches" (List.length ms)))

(* One "flow.verdict" event per verification: a failing check surfaces on
   every sink at [Error] severity without grepping the report. *)
let emit_verdicts level verifications =
  if Obs.enabled () then
    List.iter
      (fun v ->
        Obs.event
          ~severity:
            (if v.Verdict.passed then Symbad_obs.Severity.Info
             else Symbad_obs.Severity.Error)
          ~args:
            [
              ("level", Json.Int level);
              ("check", Json.Str v.Verdict.name);
              ("outcome", Json.Str (Verdict.outcome_label v.Verdict.outcome));
              ("passed", Json.Bool v.Verdict.passed);
              ("detail", Json.Str v.Verdict.detail);
            ]
          "flow.verdict")
      verifications

(* Budget weights of the four levels: the heavy SAT/PCC work all lives
   at level 4, so it gets the lion's share of whatever remains. *)
let level_fractions = [ (1, 0.125); (2, 1. /. 7.); (3, 1. /. 6.) ]

(* A level whose governor is exhausted before any engine starts still
   gets an explicit verdict row — skipped work must never be silently
   absent from the report. *)
let entry_verdicts level g =
  match Gov.exhaustion g with
  | None -> []
  | Some reason ->
      [
        Verdict.make
          ~name:(Printf.sprintf "level %d entry gate" level)
          ~detail:"no engine started; the rows below report partial work only"
          (Verdict.Inconclusive
             (Printf.sprintf "governor: %s" (Degrade.reason_string reason)));
      ]

let run ?pool ?cache ?escalate ?(seed = 1)
    ?(workload = Face_app.default_workload) ?(deadline_ns = 40_000_000)
    ?budget ?gov () =
  let gov =
    match (gov, budget) with
    | Some g, _ -> g
    | None, Some b -> Gov.create ~label:"flow" b
    | None, None -> Gov.unlimited
  in
  (* sequential slices: each level gets its fraction of what the levels
     before it left unspent; level 4 runs over the rest *)
  let level_gov n =
    match List.assoc_opt n level_fractions with
    | Some fraction ->
        Gov.slice ~label:(Printf.sprintf "level%d" n) ~fraction gov
    | None -> gov
  in
  let graph = Face_app.graph workload in
  let reference = Face_app.reference_trace workload in
  (* ---- Level 1: functional model + functional verification ---- *)
  let l1, level1 =
    Obs.span ~cat:"level" "level1" @@ fun () ->
  let g1 = level_gov 1 in
  let entry1 = entry_verdicts 1 g1 in
  let t0 = Sys.time () in
  let l1 = Level1.run graph in
  let l1_seconds = Sys.time () -. t0 in
  (* the level's two governed checks get their shares up front *)
  let atpg_gov, lpv_gov =
    match Gov.split ~label:"checks" g1 2 with
    | [ a; b ] -> (a, b)
    | _ -> assert false
  in
  let deadlock =
    let v, secs = timed (fun () -> Lpv_bridge.check_deadlock ~gov:lpv_gov graph) in
    Verdict.of_lpv_deadlock ~host_seconds:secs v
  in
  let level1 =
    {
      level = 1;
      title = "system level specification (untimed TL)";
      host_seconds = l1_seconds;
      latency_ns = None;
      sim_speed_khz = None;
      verifications =
        entry1
        @ [
            compare_traces ~check:"trace match vs C reference model"
              ~reference ~actual:l1.Level1.trace;
            Engines.atpg ?pool ~gov:atpg_gov ~seed ();
            deadlock;
          ];
    }
  in
  emit_verdicts 1 level1.verifications;
  (l1, level1)
  in
  (* ---- Level 2: architecture mapping + timing verification ---- *)
  let l2, level2, mapping2 =
    Obs.span ~cat:"level" "level2" @@ fun () ->
  let g2 = level_gov 2 in
  let entry2 = entry_verdicts 2 g2 in
  let mapping2 = Face_app.level2_mapping ~profile:l1.Level1.profile graph in
  let t0 = Sys.time () in
  let l2 = Level2.run graph mapping2 in
  let l2_seconds = Sys.time () -. t0 in
  let timing = Lpv_bridge.default_timing in
  let period_verdict, deadline_ok =
    Lpv_bridge.check_deadline ~deadline_ns ~timing ~mapping:mapping2
      ~profile:l1.Level1.profile ~gov:g2 graph
  in
  let fifo_dim =
    Lpv_bridge.dimension_fifos ~deadline_ns ~timing ~mapping:mapping2
      ~profile:l1.Level1.profile ~gov:g2 graph
  in
  let level2 =
    {
      level = 2;
      title = "architecture mapping (timed TL, CPU + AMBA)";
      host_seconds = l2_seconds;
      latency_ns = Some l2.Level2.latency_ns;
      sim_speed_khz =
        Some
          (Level2.simulation_speed_khz
             ~bus_period_ns:Level2.default_config.Level2.bus_period_ns l2);
      verifications =
        entry2
        @ [
          compare_traces ~check:"trace match vs level 1"
            ~reference:l1.Level1.trace ~actual:l2.Level2.trace;
          Verdict.of_lpv_timing ~deadline_ns ~met:deadline_ok period_verdict;
          (match (fifo_dim, Gov.exhaustion g2) with
          | Some c, _ ->
              Verdict.make ~name:"LPV FIFO dimensioning"
                ~detail:(Printf.sprintf "minimal uniform capacity %d" c)
                Verdict.Proved
          | None, Some reason ->
              (* the capacity search was cut short, not exhausted *)
              Verdict.make ~name:"LPV FIFO dimensioning"
                (Verdict.Inconclusive
                   (Printf.sprintf "governor: %s"
                      (Degrade.reason_string reason)))
          | None, None ->
              Verdict.make ~name:"LPV FIFO dimensioning"
                (Verdict.Disproved "no capacity meets the deadline"));
          ];
    }
  in
  emit_verdicts 2 level2.verifications;
  (l2, level2, mapping2)
  in
  (* ---- Level 3: reconfigurable refinement + consistency ---- *)
  let level3, mapping3 =
    Obs.span ~cat:"level" "level3" @@ fun () ->
  let g3 = level_gov 3 in
  let entry3 = entry_verdicts 3 g3 in
  let mapping3 = Mapping.refine_to_fpga mapping2 Face_app.level3_refinement in
  let t0 = Sys.time () in
  let l3 = Level3.run graph mapping3 in
  let l3_seconds = Sys.time () -. t0 in
  (* the static reconfiguration lint gates dynamic SymbC: a program the
     dataflow pass disproves is never simulated.  Warnings (the may/must
     gap) defer to SymbC, which decides them dynamically. *)
  let lint_report, lint_secs =
    timed (fun () ->
        Symbad_lint.Lint.run_program ?pool
          ~gov:(Gov.slice ~label:"lint" ~fraction:0.1 g3)
          ~name:"instrumented software" l3.Level3.config_info
          l3.Level3.instrumented_sw)
  in
  let lint_v = Verdict.of_lint ~host_seconds:lint_secs lint_report in
  let symbc =
    if Symbad_lint.Lint.errors lint_report > 0 then
      Verdict.make ~name:"SymbC reconfiguration consistency"
        ~detail:"static lint already disproved the program"
        (Verdict.Inconclusive "skipped: lint gate")
    else
      (* SymbC itself has no resource knob (one linear pass over the
         call sites), so the governor gates it at entry only *)
      match Gov.exhaustion g3 with
      | Some reason ->
          Gov.note_degraded g3 ~what:"symbc" reason;
          Verdict.make ~name:"SymbC reconfiguration consistency"
            (Verdict.Inconclusive
               (Printf.sprintf "governor: %s" (Degrade.reason_string reason)))
      | None ->
          let v, secs =
            timed (fun () ->
                Symbad_symbc.Check.check l3.Level3.config_info
                  l3.Level3.instrumented_sw)
          in
          Verdict.of_symbc ~host_seconds:secs v
  in
  let level3 =
    {
      level = 3;
      title = "reconfiguration refinement (FPGA contexts on the bus)";
      host_seconds = l3_seconds;
      latency_ns = Some l3.Level3.latency_ns;
      sim_speed_khz =
        Some
          (Level3.simulation_speed_khz
             ~bus_period_ns:Level2.default_config.Level2.bus_period_ns l3);
      verifications =
        entry3
        @ [
            compare_traces ~check:"trace match vs level 2"
              ~reference:l2.Level2.trace ~actual:l3.Level3.trace;
            lint_v;
            symbc;
            Verdict.make ~name:"FPGA reconfiguration activity"
              ~detail:
                (Fmt.str "%a" Symbad_fpga.Fpga.pp_stats l3.Level3.fpga_stats)
              Verdict.Proved;
          ];
    }
  in
  emit_verdicts 3 level3.verifications;
  (level3, mapping3)
  in
  (* ---- Level 4: RTL + model checking + PCC ---- *)
  let level4 =
    Obs.span ~cat:"level" "level4" @@ fun () ->
  let g4 = level_gov 4 in
  let entry4 = entry_verdicts 4 g4 in
  let t0 = Sys.time () in
  let l4 = Level4.run ?pool ?cache ?escalate ~gov:g4 () in
  let l4_seconds = Sys.time () -. t0 in
  (* the consolidated rows come straight off the module reports now
     (Level4 owns their shape); the table keeps its historical order —
     all lint rows, then MC, then PCC *)
  let row f = List.map f l4.Level4.modules in
  let lint_ver = row (fun m -> m.Level4.lint_verdict) in
  let mc_ver = row (fun m -> m.Level4.mc_verdict) in
  let pcc_ver = row (fun m -> m.Level4.pcc_verdict) in
  let level4 =
    {
      level = 4;
      title = "RTL generation (predefined IPs + interface wrappers)";
      host_seconds = l4_seconds;
      latency_ns = None;
      sim_speed_khz = None;
      verifications = entry4 @ lint_ver @ mc_ver @ pcc_ver;
    }
  in
  emit_verdicts 4 level4.verifications;
  level4
  in
  let levels = [ level1; level2; level3; level4 ] in
  {
    workload;
    levels;
    mapping = mapping3;
    all_passed =
      List.for_all
        (fun l -> List.for_all (fun v -> v.Verdict.passed) l.verifications)
        levels;
  }

let pp_level fmt l =
  Fmt.pf fmt "Level %d: %s@." l.level l.title;
  (match l.latency_ns with
  | Some ns -> Fmt.pf fmt "  simulated latency: %dns@." ns
  | None -> ());
  (match l.sim_speed_khz with
  | Some khz when khz <> infinity ->
      Fmt.pf fmt "  simulation speed: %.1f kHz@." khz
  | Some _ | None -> ());
  Fmt.pf fmt "  host time: %.3fs@." l.host_seconds;
  List.iter (fun v -> Fmt.pf fmt "  %a@." Verdict.pp v) l.verifications

(* Markdown rendering of a flow report, for CI artefacts and the
   experiment log. *)
let to_markdown t =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "# Symbad flow report\n\n";
  add "Workload: %d frames, %d identities, %dx%d pixels.\n\n"
    (List.length t.workload.Face_app.frames)
    t.workload.Face_app.identities t.workload.Face_app.size
    t.workload.Face_app.size;
  List.iter
    (fun l ->
      add "## Level %d — %s\n\n" l.level l.title;
      (match l.latency_ns with
      | Some ns -> add "- simulated latency: %d ns\n" ns
      | None -> ());
      (match l.sim_speed_khz with
      | Some khz when khz <> infinity -> add "- simulation speed: %.1f kHz\n" khz
      | Some _ | None -> ());
      add "- host time: %.3f s\n\n" l.host_seconds;
      add "| check | verdict | detail |\n|---|---|---|\n";
      List.iter
        (fun v ->
          add "| %s | %s | %s |\n" v.Verdict.name
            (if v.Verdict.passed then "PASS" else "FAIL")
            v.Verdict.detail)
        l.verifications;
      add "\n")
    t.levels;
  add "Overall: **%s**\n" (if t.all_passed then "ALL PASSED" else "FAILURES");
  Buffer.contents buf

(* JSON rendering of the same report, for machine consumption (CI
   dashboards, the [stats] subcommand, regression diffing).
   [~timings:false] zeroes host timing and simulation speed — the only
   run-dependent fields — so two runs of the same flow at any [--jobs]
   width serialise byte-identically. *)
let to_json ?(timings = true) t =
  let level_json l =
    Json.Obj
      [
        ("level", Json.Int l.level);
        ("title", Json.Str l.title);
        ("host_seconds", Json.Float (if timings then l.host_seconds else 0.));
        ( "latency_ns",
          match l.latency_ns with Some ns -> Json.Int ns | None -> Json.Null );
        ( "sim_speed_khz",
          match l.sim_speed_khz with
          | Some khz when timings && khz <> infinity -> Json.Float khz
          | Some _ | None -> Json.Null );
        ( "verifications",
          Json.List (List.map (Verdict.to_json ~timings) l.verifications) );
      ]
  in
  Json.to_string
    (Json.Obj
       [
         ( "workload",
           Json.Obj
             [
               ( "frames",
                 Json.List
                   (List.map
                      (fun (identity, pose) ->
                        Json.Obj
                          [
                            ("identity", Json.Int identity);
                            ("pose", Json.Int pose);
                          ])
                      t.workload.Face_app.frames) );
               ("size", Json.Int t.workload.Face_app.size);
               ("identities", Json.Int t.workload.Face_app.identities);
             ] );
         ("levels", Json.List (List.map level_json t.levels));
         ("all_passed", Json.Bool t.all_passed);
       ])

let pp fmt t =
  Fmt.pf fmt "Symbad flow on %d frames, %d identities@."
    (List.length t.workload.Face_app.frames)
    t.workload.Face_app.identities;
  List.iter (pp_level fmt) t.levels;
  Fmt.pf fmt "overall: %s@." (if t.all_passed then "ALL PASSED" else "FAILURES")
