(** Level 2: timed transaction-level simulation of the mapped
    architecture.

    SW tasks collapse into one CPU process running a cyclostatic
    schedule; HW tasks are autonomous processes; channels with a HW
    endpoint ride the shared bus.  Timing comes from the annotation
    model applied to each firing's work units. *)

type config = {
  annotation : Symbad_tlm.Annotation.t;
  bus_width_bytes : int;
  bus_period_ns : int;
  cpu_period_ns : int;
  hw_period_ns : int;
  fifo_capacity : int;  (** bounded channels; sinks stay unbounded *)
}

val default_config : config
(** 32-bit 100 MHz bus, 50 MHz CPU, 100 MHz HW logic, capacity 2. *)

type result = {
  trace : Symbad_sim.Trace.t;
  kernel_stats : Symbad_sim.Kernel.stats;
  bus_report : Symbad_tlm.Bus.report;
  cpu_stats : Symbad_tlm.Cpu.stats;
  latency_ns : int;
  channel_occupancy : (string * Symbad_sim.Fifo.occupancy) list;
}

val simulation_speed_khz : bus_period_ns:int -> result -> float
(** Simulated bus-clock kHz achieved per host CPU second — the figure
    the paper reports as "simulation speed close to 200 kHz". *)

val crosses_bus : Mapping.t -> Task_graph.t -> string -> bool
(** Does the channel leave the CPU (and hence ride the bus)? *)

val run :
  ?config:config -> ?force_sw:string list -> Task_graph.t -> Mapping.t -> result
(** Raises [Invalid_argument] if a source is not mapped to SW or any
    task is mapped to an FPGA context (that is level 3).  [force_sw]
    remaps the listed tasks to software before running — the static
    graceful-degradation story: the pipeline still computes the same
    tokens when an accelerator is unavailable, only slower. *)
