(* Bridge from the system model to the LPV abstraction.

   "The SystemC model is translated in an abstract model where
   communication and synchronization characteristics remain
   un-abstracted": tasks become transitions (delay = annotated firing
   time on their mapped resource), each channel a forward place, each
   bounded channel also a backward credit place carrying its capacity,
   and each task a marked self-loop (it cannot fire twice
   concurrently). *)

module Annotation = Symbad_tlm.Annotation
module Lpv = Symbad_lpv

type timing_model = {
  annotation : Annotation.t;
  cpu_period_ns : int;
  hw_period_ns : int;
  fpga_period_ns : int;
}

let default_timing =
  {
    annotation = Annotation.default;
    cpu_period_ns = 20;
    hw_period_ns = 10;
    fpga_period_ns = 20;
  }

let firing_delay_ns timing mapping profile task =
  let weight = Annotation.Profile.units_per_firing profile task in
  let target = Mapping.target_of mapping task in
  let cycles =
    Annotation.cycles timing.annotation
      ~target:(Mapping.annotation_target target)
      ~weight
  in
  let period =
    match target with
    | Mapping.Sw -> timing.cpu_period_ns
    | Mapping.Hw -> timing.hw_period_ns
    | Mapping.Fpga _ -> timing.fpga_period_ns
  in
  cycles * period

(* Build the net.  [capacity] bounds every channel (0 = unbounded: no
   credit place).  [extra_channels] adds feedback edges absent from the
   dataflow graph (used to model synchronisation added at mapping time,
   and to seed the deadlock experiment). *)
let net_of ?(capacity = 2) ?(extra_channels = []) ?timing ?mapping ?profile
    (graph : Task_graph.t) =
  let net = Lpv.Petri.create () in
  let delay_of task =
    match (timing, mapping, profile) with
    | Some t, Some m, Some p -> firing_delay_ns t m p task
    | _ -> 1
  in
  let tindex : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (t : Task_graph.task) ->
      let i =
        Lpv.Petri.add_transition net ~delay:(delay_of t.Task_graph.name)
          t.Task_graph.name
      in
      Hashtbl.add tindex t.Task_graph.name i;
      (* serial re-execution: a marked self-loop *)
      let self =
        Lpv.Petri.add_place net ~tokens:1 ("self." ^ t.Task_graph.name)
      in
      Lpv.Petri.add_pre net ~transition:i ~place:self ();
      Lpv.Petri.add_post net ~transition:i ~place:self ())
    graph.Task_graph.tasks;
  let add_channel ?(tokens = 0) name src dst =
    let producer = Hashtbl.find tindex src and consumer = Hashtbl.find tindex dst in
    let fwd = Lpv.Petri.add_place net ~tokens name in
    Lpv.Petri.add_post net ~transition:producer ~place:fwd ();
    Lpv.Petri.add_pre net ~transition:consumer ~place:fwd ();
    if capacity > 0 then begin
      let credit = Lpv.Petri.add_place net ~tokens:capacity (name ^ ".credit") in
      Lpv.Petri.add_pre net ~transition:producer ~place:credit ();
      Lpv.Petri.add_post net ~transition:consumer ~place:credit ()
    end
  in
  List.iter
    (fun c ->
      if not (List.mem c graph.Task_graph.sinks) then
        match (Task_graph.producer_of graph c, Task_graph.consumer_of graph c)
        with
        | Some p, Some q ->
            add_channel c p.Task_graph.name q.Task_graph.name
        | _ -> ())
    (Task_graph.channels graph);
  List.iter
    (fun (name, src, dst, tokens) -> add_channel ~tokens name src dst)
    extra_channels;
  net

(* The level-1 deadlock-freeness check and the level-2 timing checks, as
   the flow invokes them.  Each takes the governor through to the LPV
   engines, which degrade to Not_analyzable / None on exhaustion. *)
let check_deadlock ?capacity ?extra_channels ?gov graph =
  Lpv.Deadlock.check ?gov (net_of ?capacity ?extra_channels graph)

let check_deadline ~deadline_ns ~timing ~mapping ~profile ?capacity ?gov graph =
  let net = net_of ?capacity ~timing ~mapping ~profile graph in
  ( Lpv.Timing.min_cycle_ratio ?gov net,
    Lpv.Timing.deadline_met ?gov ~deadline:deadline_ns net )

let dimension_fifos ~deadline_ns ~timing ~mapping ~profile ?(max_capacity = 64)
    ?gov graph =
  Lpv.Timing.min_uniform_capacity ~max_capacity ?gov ~deadline:deadline_ns
    ~build:(fun c -> net_of ~capacity:c ~timing ~mapping ~profile graph)
    ()
