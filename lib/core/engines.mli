(** The unified engine surface: every verification engine behind one
    call shape,

    {[ ?gov ?pool ?jobs ~seed target -> Verdict.t ]}

    [gov] is the resource governor (omitted = unlimited budget);
    [pool] reuses the caller's worker domains, [jobs] builds a pool
    scoped to the call, neither means sequential ([pool] wins when both
    are given).  [seed] drives the stochastic engines ({!atpg}) and is
    accepted — and ignored — by the deterministic ones ({!lint},
    {!model_check}, {!pcc}) so a portfolio can dispatch every engine
    through the same shape.  Verdicts are identical at any pool width.

    The fault-campaign driver answers the same shape from its own
    library ({!Symbad_resil.Campaign.check} — resil sits above core in
    the stack and cannot be re-exported here).

    These drivers supersede the historical per-engine entry points with
    their ad-hoc budget knobs ([?max_conflicts] and friends), which
    remain for callers that need the raw reports. *)

val lint :
  ?gov:Symbad_gov.Gov.t ->
  ?pool:Symbad_par.Par.pool ->
  ?jobs:int ->
  ?escalate:bool ->
  seed:int ->
  Level4.rtl_module ->
  Verdict.t
(** The static gate over the module's netlist with its properties in
    the cone ({!Symbad_lint.Lint.run_netlist} + {!Verdict.of_lint}):
    any error ⇒ [Disproved], governor-skipped rules ⇒ [Inconclusive].
    [escalate] folds model-checker verdicts into the warnings first
    ({!Symbad_lint.Lint.escalate}), so a disproved warning reads as an
    error here. *)

val model_check :
  ?gov:Symbad_gov.Gov.t ->
  ?pool:Symbad_par.Par.pool ->
  ?jobs:int ->
  ?max_depth:int ->
  seed:int ->
  Level4.rtl_module ->
  Verdict.t
(** Incremental BMC + k-induction over every property
    ({!Symbad_mc.Engine.check_all}), consolidated to one row: [Proved]
    iff all properties proved within [max_depth] (default 12). *)

val pcc :
  ?gov:Symbad_gov.Gov.t ->
  ?pool:Symbad_par.Par.pool ->
  ?jobs:int ->
  ?depth:int ->
  ?max_reg_bits:int ->
  seed:int ->
  Level4.rtl_module ->
  Verdict.t
(** Property-coverage completeness ({!Symbad_pcc.Pcc.run} +
    {!Verdict.of_pcc}): [Coverage] over detectable faults, degrading to
    [Inconclusive] when unresolved faults would otherwise pass. *)

val atpg :
  ?gov:Symbad_gov.Gov.t ->
  ?pool:Symbad_par.Par.pool ->
  ?jobs:int ->
  seed:int ->
  unit ->
  Verdict.t
(** Laerte++-style genetic test generation over the behavioural
    hot-spot models: [Coverage] over the point universe (gate 85%),
    degrading under an exhausted governor to [Inconclusive] with the
    partial coverage; granted retries re-dispatch re-seeded (the
    portfolio retry).  This is the engine the level-1 flow step runs. *)
