(** Level 4: RTL generation and formal verification.

    The FPGA-mapped datapaths and the interface wrapper come from the
    predefined IP library; their properties are model checked, and PCC
    judges the property set's completeness. *)

type rtl_module = {
  module_name : string;
  netlist : Symbad_hdl.Netlist.t;
  properties : Symbad_mc.Prop.t list;
}

val distance_properties : unit -> Symbad_mc.Prop.t list
val root_properties : unit -> Symbad_mc.Prop.t list
val wrapper_properties : Symbad_hdl.Netlist.t -> Symbad_mc.Prop.t list
val argmin_properties : unit -> Symbad_mc.Prop.t list

val modules : unit -> rtl_module list
(** DISTANCE, ROOT, the hand-written wrapper, the streaming ARGMIN and
    the synthesised IFGEN wrapper, each with its verification plan. *)

(** The rich per-engine reports of a module that actually ran. *)
type module_results = {
  lint : Symbad_lint.Lint.report;
      (** the static gate, run before any engine; properties included
          in its cone *)
  gated : bool;  (** lint errors: model checking and PCC were skipped *)
  mc_reports : Symbad_mc.Engine.report list;  (** empty when gated *)
  all_proved : bool;
  pcc : Symbad_pcc.Pcc.report option;  (** [None] when gated *)
}

type module_report = {
  module_name : string;
  cached : bool;
      (** replayed from the content-addressed verdict cache: no engine
          ran and [results] is [None] *)
  lint_verdict : Verdict.t;
  mc_verdict : Verdict.t;
  pcc_verdict : Verdict.t;
      (** the three consolidated rows every consumer (flow report,
          [verify rtl], cache) renders, in table order *)
  results : module_results option;
      (** the rich reports behind the rows; [None] on a cache hit *)
}

type result = { modules : module_report list }

val module_verdicts : module_report -> Verdict.t list
(** [[lint; mc; pcc]] — the rows in table order. *)

val verify_module :
  ?pool:Symbad_par.Par.pool ->
  ?cache:Symbad_cache.Cache.t ->
  ?gov:Symbad_gov.Gov.t ->
  ?escalate:bool ->
  ?max_depth:int ->
  ?pcc_depth:int ->
  ?max_reg_bits:int ->
  rtl_module ->
  module_report
(** [pool] fans the per-fault PCC checks and per-property model-checking
    runs across domains; verdicts are identical at any pool width.
    The lint gate runs first over a small budget slice; lint {e errors}
    (never warnings or governor skips) gate the expensive engines off —
    the module report then carries the diagnostics instead of MC/PCC
    results.  [escalate] (default off) additionally dispatches every
    lint warning that carries a proof obligation to the model checker
    over its own thin slice ({!Symbad_lint.Lint.escalate}) {e before}
    the gate, so a disproved warning gates the module with its
    counterexample attached.  [gov] governs the rest of the module:
    half the remaining
    budget is sliced off for model checking, PCC runs over what is
    left; exhausted shares degrade to [Unknown] / [Unresolved] partial
    reports.

    [cache] consults the content-addressed verdict store first: a hit
    replays the stored rows (marked [cached], governor uncharged, no
    engine runs); a miss runs everything and stores the rows back iff
    the result is fully conclusive — every property proved, no
    unresolved PCC faults, clean ungated lint, no exhaustion and no
    wall-clock deadline on the budget.  Partial or budget-dependent
    results are never cached. *)

val run :
  ?pool:Symbad_par.Par.pool ->
  ?cache:Symbad_cache.Cache.t ->
  ?gov:Symbad_gov.Gov.t ->
  ?escalate:bool ->
  ?max_depth:int ->
  ?pcc_depth:int ->
  ?max_reg_bits:int ->
  unit ->
  result
(** Verify every case-study module.  [gov]'s remaining budget is split
    near-equally across the modules before any verification runs. *)

val all_cached : result -> bool
(** Every module replayed from the cache — the warm-run invariant the
    [@inc-guard] smoke asserts. *)

val pp_module_report : Format.formatter -> module_report -> unit
val pp : Format.formatter -> result -> unit
