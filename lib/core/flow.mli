(** The complete Symbad flow (Figure 1): run the four levels on the face
    recognition case study with every verification the methodology
    prescribes, carrying all reports. *)

type verification = Verdict.t
(** Every flow check is a stack-wide {!Verdict.t}; the alias keeps the
    historical name compiling. *)

type level_report = {
  level : int;
  title : string;
  host_seconds : float;
  latency_ns : int option;
  sim_speed_khz : float option;
  verifications : verification list;
}

type t = {
  workload : Face_app.workload;
  levels : level_report list;
  mapping : Mapping.t;  (** final (level-3) mapping *)
  all_passed : bool;
}

val verification : check:string -> passed:bool -> string -> verification
[@@ocaml.deprecated "construct Verdict.t directly (Verdict.make)"]
(** Pre-[Verdict] constructor, kept for one release. *)

val run :
  ?pool:Symbad_par.Par.pool ->
  ?seed:int ->
  ?workload:Face_app.workload ->
  ?deadline_ns:int ->
  unit ->
  t
(** [deadline_ns] (default 40 ms, i.e. 25 frames/s) is the level-2
    real-time requirement checked by LPV.  [pool] fans the
    fault-detectability, ATPG and model-checking work out across
    domains; results are identical at any width (defaults to the
    sequential pool).  [seed] (default 1) drives the ATPG engines. *)

val to_markdown : t -> string
(** The report as a markdown document (CI artefacts, experiment logs). *)

val to_json : ?timings:bool -> t -> string
(** The same report as a JSON document: workload, per-level figures and
    verification verdicts, overall outcome.  [~timings:false] zeroes
    host times and simulation speeds — the only run-dependent fields —
    so reports compare byte-identically across runs and [--jobs]
    widths. *)

val pp_level : Format.formatter -> level_report -> unit
val pp : Format.formatter -> t -> unit
