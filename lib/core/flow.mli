(** The complete Symbad flow (Figure 1): run the four levels on the face
    recognition case study with every verification the methodology
    prescribes, carrying all reports. *)

type verification = { check : string; passed : bool; detail : string }

type level_report = {
  level : int;
  title : string;
  host_seconds : float;
  latency_ns : int option;
  sim_speed_khz : float option;
  verifications : verification list;
}

type t = {
  workload : Face_app.workload;
  levels : level_report list;
  mapping : Mapping.t;  (** final (level-3) mapping *)
  all_passed : bool;
}

val run : ?workload:Face_app.workload -> ?deadline_ns:int -> unit -> t
(** [deadline_ns] (default 40 ms, i.e. 25 frames/s) is the level-2
    real-time requirement checked by LPV. *)

val to_markdown : t -> string
(** The report as a markdown document (CI artefacts, experiment logs). *)

val to_json : t -> string
(** The same report as a JSON document: workload, per-level figures and
    verification verdicts, overall outcome. *)

val pp_level : Format.formatter -> level_report -> unit
val pp : Format.formatter -> t -> unit
