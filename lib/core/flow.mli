(** The complete Symbad flow (Figure 1): run the four levels on the face
    recognition case study with every verification the methodology
    prescribes, carrying all reports. *)

type verification = Verdict.t
(** Every flow check is a stack-wide {!Verdict.t} — see
    [lib/core/verdict.mli] for the outcome vocabulary (including the
    [Inconclusive] verdicts a resource-governed run degrades to).  The
    alias keeps the historical name compiling; new code should say
    [Verdict.t]. *)

type level_report = {
  level : int;
  title : string;
  host_seconds : float;
  latency_ns : int option;
  sim_speed_khz : float option;
  verifications : verification list;
}

type t = {
  workload : Face_app.workload;
  levels : level_report list;
  mapping : Mapping.t;  (** final (level-3) mapping *)
  all_passed : bool;
}

val verification : check:string -> passed:bool -> string -> verification
[@@ocaml.deprecated "construct Verdict.t directly (Verdict.make)"]
(** Pre-[Verdict] constructor, kept for one release.  It can only
    express the [Proved]/[Disproved] extremes — no coverage figures, no
    governed [Inconclusive] degradation — which is why it is
    deprecated in favour of {!Verdict.make}. *)

val run :
  ?pool:Symbad_par.Par.pool ->
  ?cache:Symbad_cache.Cache.t ->
  ?escalate:bool ->
  ?seed:int ->
  ?workload:Face_app.workload ->
  ?deadline_ns:int ->
  ?budget:Symbad_gov.Budget.t ->
  ?gov:Symbad_gov.Gov.t ->
  unit ->
  t
(** [deadline_ns] (default 40 ms, i.e. 25 frames/s) is the level-2
    real-time requirement checked by LPV.  [pool] fans the
    fault-detectability, ATPG and model-checking work out across
    domains; results are identical at any width (defaults to the
    sequential pool).  [seed] (default 1) drives the ATPG engines.

    [budget] puts the whole run under a resource governor: levels 1–3
    get fixed fractions of the remaining budget (level 4, where the
    SAT and PCC work lives, runs over the rest), each level splits its
    share across its checks before dispatch, and an exhausted share
    degrades that check to [Verdict.Inconclusive] carrying its partial
    result instead of running long.  With only logical allowances
    (conflicts/patterns) the degraded report is deterministic at any
    [pool] width; the wall-clock deadline is best-effort.  Omitting
    [budget] reproduces the ungoverned flow exactly.

    [cache] hands level 4 a content-addressed verdict store
    ({!Level4.verify_module}): unchanged modules replay their stored
    rows ([cached: true] in the JSON) instead of re-running MC/PCC.
    Omitting it (the library default) never touches the filesystem.

    [escalate] forwards to {!Level4.run}: level-4 lint warnings that
    carry proof obligations are dispatched to the model checker and
    folded back into the gate before MC/PCC run.

    [gov] overrides [budget] with a caller-built root governor — what
    `symbad report` uses to attach a {!Symbad_gov.Ledger} so the run's
    budget waterfall can be reported. *)

val to_markdown : t -> string
(** The report as a markdown document (CI artefacts, experiment logs). *)

val to_json : ?timings:bool -> t -> string
(** The same report as a JSON document: workload, per-level figures and
    verification verdicts, overall outcome.  [~timings:false] zeroes
    host times and simulation speeds — the only run-dependent fields —
    so reports compare byte-identically across runs and [--jobs]
    widths. *)

val pp_level : Format.formatter -> level_report -> unit
val pp : Format.formatter -> t -> unit
