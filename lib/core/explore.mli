(** Architecture exploration: grade candidate configurations by
    performance, silicon usage and power, and compare the paper's
    "static" implementation against the reconfigurable one. *)

type grade = {
  mapping : Mapping.t;
  label : string;
  latency_ns : int;
  bus_busy_ns : int;
  bus_utilisation : float;
  bitstream_bytes : int;
  area : int;  (** silicon cost of the HW modules + FPGA fabric *)
  energy_proxy : float;
}

val area_of : task_area:(string -> int) -> Mapping.t -> int
(** Hardwired modules pay full area; an FPGA pays twice its largest
    context (programmability density penalty). *)

val energy_of :
  latency_ns:int -> cpu_busy_ns:int -> bus_busy_ns:int -> bitstream_bytes:int -> float

val grade_level2 :
  ?config:Level2.config ->
  task_area:(string -> int) ->
  label:string ->
  Task_graph.t ->
  Mapping.t ->
  grade

val grade_level3 :
  ?config:Level3.config ->
  task_area:(string -> int) ->
  label:string ->
  Task_graph.t ->
  Mapping.t ->
  grade

val sweep_hw_sets :
  ?pool:Symbad_par.Par.pool ->
  ?config:Level2.config ->
  task_area:(string -> int) ->
  profile:Symbad_tlm.Annotation.Profile.t ->
  pinned_sw:string list ->
  ?max_hw:int ->
  Task_graph.t ->
  grade list
(** Map the [n] heaviest tasks to HW for [n] in [0, max_hw].
    Candidates are graded in parallel on [pool] (results are in [n]
    order at any width); progress is reported through
    ["explore.progress"] observability events. *)

val pareto : grade list -> grade list
(** Points not dominated on (latency, area, energy). *)

val pp_grade : Format.formatter -> grade -> unit
