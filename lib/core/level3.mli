(** Level 3: the reconfigurable platform.

    FPGA-resident functions are invoked synchronously from the software:
    the CPU issues a reconfiguration (a bitstream download over the bus,
    modelled as real burst traffic, plus programming time) whenever the
    next call needs a context that is not loaded.  The run records the
    dynamic resource-call sequence and emits the instrumented mini-C
    program that SymbC consumes. *)

type config = {
  level2 : Level2.config;
  fpga_capacity : int;
  fpga_period_ns : int;
  program_ns_per_byte : int;
  fpga_burst_bytes : int;
      (** download granularity: 8 models CPU programmed I/O, larger
          values a DMA engine *)
  task_area : string -> int;  (** area of each FPGA-mapped module *)
  scrub_period_ns : int;
      (** period of the readback-scrubbing process that detects and
          repairs configuration-memory upsets; 0 (the default) disables
          it — scrubbing is real bus traffic *)
  watchdog_ns : int;
      (** how long the reconfiguration controller waits for a wedged
          resource before marking the fabric unhealthy *)
  masked : bool;
      (** masked-fault operating mode (default [false]): contexts run
          as TMR in a 3x fabric ([Symbad_fpga.Fpga] with [copies = 3])
          with a majority vote at every result readout — a single upset
          copy never corrupts a result and is repaired latency-free in
          the shadow of continued operation — and the bus is SEC-DED
          protected ([Symbad_tlm.Bus] with [ecc]).  The price, paid by
          every run in this mode: triple reconfiguration traffic and
          programming time, triple resource area, and every bus
          transfer widened by 39/32. *)
}

val default_task_area : string -> int
val default_config : config

type result = {
  trace : Symbad_sim.Trace.t;
  kernel_stats : Symbad_sim.Kernel.stats;
  bus_report : Symbad_tlm.Bus.report;
  cpu_stats : Symbad_tlm.Cpu.stats;
  fpga_stats : Symbad_fpga.Fpga.stats;
  latency_ns : int;
  call_sequence : string list;  (** dynamic FPGA-resource invocations *)
  sw_fallbacks : int;
      (** FPGA firings degraded to the software implementation because
          the fabric was (or became) unhealthy *)
  channel_occupancy : (string * Symbad_sim.Fifo.occupancy) list;
      (** per-channel FIFO statistics, drop counts included *)
  instrumented_sw : Symbad_symbc.Ast.program;
  config_info : Symbad_symbc.Config_info.t;
}

val simulation_speed_khz : bus_period_ns:int -> result -> float

val build_fpga : config -> Mapping.t -> Symbad_fpga.Fpga.t
val config_info_of : Mapping.t -> Symbad_symbc.Config_info.t

val instrumented_program :
  ?omit_load_for:string list ->
  string list ->
  Mapping.t ->
  Symbad_symbc.Ast.program
(** The cyclostatic schedule as mini-C with reconfiguration calls
    inserted before FPGA invocations.  [omit_load_for] seeds the
    consistency bug used by the verification experiments. *)

val run :
  ?config:config ->
  ?omit_load_for:string list ->
  ?channel_loss:(string * (int -> bool)) list ->
  ?tap:
    (bus:Symbad_tlm.Bus.t ->
    fpga:Symbad_fpga.Fpga.t ->
    kernel:Symbad_sim.Kernel.t ->
    unit) ->
  Task_graph.t ->
  Mapping.t ->
  result
(** With [omit_load_for], the device's runtime check raises
    [Symbad_fpga.Fpga.Inconsistent] when the un-loaded resource is
    invoked — the dynamic counterpart of the SymbC verdict.

    Fault injection (see [Symbad_resil]): [channel_loss] makes the named
    channels lossy ([Symbad_sim.Fifo.set_loss]; the sender's bounded
    retransmit recovers dropped tokens); [tap] runs once after the
    platform is built and before simulation starts — the campaign engine
    uses it to install bus/download fault hooks and spawn saboteur
    processes.  Recovery built into the run: CRC-checked downloads with
    bounded re-download, periodic scrubbing ([config.scrub_period_ns]),
    a watchdog on wedged resources, and software fallback for FPGA
    firings once the fabric is unhealthy — the pipeline still produces
    the same data tokens. *)
