(* The uniform verification-result contract (OS-VVM style: heterogeneous
   checks, one reporting shape).  Producers keep their rich native
   reports; these adapters compress each into the four-outcome verdict
   the flow aggregates and serialises. *)

module Json = Symbad_obs.Json

type outcome =
  | Proved
  | Disproved of string
  | Coverage of { hit : int; total : int }
  | Inconclusive of string

type t = {
  name : string;
  outcome : outcome;
  passed : bool;
  host_seconds : float;
  detail : string;
  cached : bool;
}

let coverage_ratio = function
  | Coverage { hit; total } ->
      Some (if total = 0 then 1. else float_of_int hit /. float_of_int total)
  | Proved | Disproved _ | Inconclusive _ -> None

let default_passed = function
  | Proved -> true
  | Disproved _ | Inconclusive _ -> false
  | Coverage { hit; total } -> hit = total

let make ?passed ?(host_seconds = 0.) ?(detail = "") ?(cached = false) ~name
    outcome =
  {
    name;
    outcome;
    passed = (match passed with Some p -> p | None -> default_passed outcome);
    host_seconds;
    detail;
    cached;
  }

let with_cached t = { t with cached = true; host_seconds = 0. }

(* --- adapters --------------------------------------------------------- *)

let of_mc ?host_seconds (r : Symbad_mc.Engine.report) =
  let name = r.Symbad_mc.Engine.property in
  match r.Symbad_mc.Engine.verdict with
  | Symbad_mc.Engine.Proved { method_; depth } ->
      make ?host_seconds ~name
        ~detail:(Printf.sprintf "proved (%s, k=%d)" method_ depth)
        Proved
  | Symbad_mc.Engine.Falsified tr ->
      make ?host_seconds ~name
        (Disproved
           (Printf.sprintf "%d-cycle counterexample trace"
              (Symbad_mc.Trace.length tr)))
  | Symbad_mc.Engine.Unknown { reason } ->
      make ?host_seconds ~name (Inconclusive reason)

let of_pcc ?host_seconds ?(threshold = 0.75) (r : Symbad_pcc.Pcc.report) =
  let name = Printf.sprintf "PCC completeness %s" r.Symbad_pcc.Pcc.design in
  let unresolved =
    List.length
      (List.filter
         (fun (fr : Symbad_pcc.Pcc.fault_report) ->
           fr.Symbad_pcc.Pcc.status = Symbad_pcc.Pcc.Unresolved)
         r.Symbad_pcc.Pcc.faults)
  in
  let total_faults = List.length r.Symbad_pcc.Pcc.faults in
  if unresolved > 0 && r.Symbad_pcc.Pcc.coverage >= threshold then
    (* unresolved faults make the coverage ratio optimistic (they are
       excluded from "detectable"): never let exhaustion produce a
       pass, degrade to Inconclusive carrying what WAS classified *)
    make ?host_seconds ~name
      ~detail:
        (Printf.sprintf "resource budget exhausted; %d/%d faults classified"
           (total_faults - unresolved) total_faults)
      (Inconclusive "resource budget exhausted")
  else
    make ?host_seconds ~name
      ~passed:(r.Symbad_pcc.Pcc.coverage >= threshold)
      ~detail:
        (Printf.sprintf "%.0f%% of %d detectable faults"
           (100. *. r.Symbad_pcc.Pcc.coverage)
           r.Symbad_pcc.Pcc.detectable)
      (Coverage
         { hit = r.Symbad_pcc.Pcc.covered; total = r.Symbad_pcc.Pcc.detectable })

let of_atpg ?host_seconds ?(threshold = 0.85)
    (e : Symbad_atpg.Testbench.evaluation) =
  let c = e.Symbad_atpg.Testbench.coverage in
  make ?host_seconds
    ~name:
      (Printf.sprintf "ATPG coverage %s (%s)" e.Symbad_atpg.Testbench.model
         e.Symbad_atpg.Testbench.engine)
    ~passed:(c.Symbad_atpg.Coverage.total > threshold)
    ~detail:
      (Printf.sprintf "%d tests, %.0f%% of %d points, faults %.0f%%"
         e.Symbad_atpg.Testbench.tests
         (100. *. c.Symbad_atpg.Coverage.total)
         c.Symbad_atpg.Coverage.total_points
         (100. *. e.Symbad_atpg.Testbench.fault_coverage))
    (Coverage
       {
         hit = c.Symbad_atpg.Coverage.hit_points;
         total = c.Symbad_atpg.Coverage.total_points;
       })

let of_lpv_deadlock ?host_seconds (v : Symbad_lpv.Deadlock.verdict) =
  let name = "LPV deadlock freeness" in
  match v with
  | Symbad_lpv.Deadlock.Deadlock_free { min_cycle_tokens } ->
      make ?host_seconds ~name
        ~detail:(Fmt.str "min cycle tokens %a" Symbad_lpv.Rat.pp min_cycle_tokens)
        Proved
  | Symbad_lpv.Deadlock.Potential_deadlock { witness } ->
      make ?host_seconds ~name (Disproved (String.concat "," witness))
  | Symbad_lpv.Deadlock.Not_analyzable why ->
      make ?host_seconds ~name (Inconclusive why)

let of_lpv_timing ?host_seconds ~deadline_ns ~met
    (v : Symbad_lpv.Timing.verdict) =
  let detail =
    Fmt.str "%a vs deadline %dns" Symbad_lpv.Timing.pp_verdict v deadline_ns
  in
  make ?host_seconds ~name:"LPV timing deadline" ~detail
    (match v with
    | Symbad_lpv.Timing.Not_analyzable why -> Inconclusive why
    | Symbad_lpv.Timing.Period _ | Symbad_lpv.Timing.Unschedulable _ ->
        if met then Proved else Disproved detail)

let of_symbc ?host_seconds (v : Symbad_symbc.Check.verdict) =
  let name = "SymbC reconfiguration consistency" in
  match v with
  | Symbad_symbc.Check.Consistent { calls_checked; _ } ->
      make ?host_seconds ~name
        ~detail:(Printf.sprintf "certificate, %d call sites" calls_checked)
        Proved
  | Symbad_symbc.Check.Inconsistent cex ->
      make ?host_seconds ~name
        (Disproved (cex.Symbad_symbc.Check.failing_call ^ " unavailable"))

let of_lint ?host_seconds (r : Symbad_lint.Lint.report) =
  let module Lint = Symbad_lint.Lint in
  let module D = Symbad_lint.Diagnostic in
  let name = "lint " ^ r.Lint.target in
  let errors = Lint.errors r and warnings = Lint.warnings r in
  if errors > 0 then
    let first =
      List.find (fun d -> d.D.severity = D.Error) r.Lint.diagnostics
    in
    make ?host_seconds ~name
      ~detail:
        (Printf.sprintf "%d errors, %d warnings over %d rules" errors warnings
           (List.length r.Lint.rules_run))
      (Disproved
         (Printf.sprintf "%s: %s: %s" first.D.rule first.D.location
            first.D.message))
  else if r.Lint.skipped_rules <> [] then
    make ?host_seconds ~name
      ~detail:
        (Printf.sprintf "%d/%d rules afforded"
           (List.length r.Lint.rules_run)
           (List.length r.Lint.rules_run + List.length r.Lint.skipped_rules))
      (Inconclusive
         (Printf.sprintf "governor: rules skipped: %s"
            (String.concat " " r.Lint.skipped_rules)))
  else
    make ?host_seconds ~name
      ~detail:
        (Printf.sprintf "%d rules, %d warnings%s"
           (List.length r.Lint.rules_run)
           warnings
           (if r.Lint.suppressed = [] then ""
            else "; suppressed: " ^ String.concat " " r.Lint.suppressed))
      Proved

(* A governed run that ran out of budget: Inconclusive carrying the
   degradation reason and whatever partial progress the engine made. *)
let degraded ?host_seconds ~name ~partial reason =
  make ?host_seconds ~name
    ~detail:(Symbad_gov.Degrade.detail ~reason partial)
    (Inconclusive (Symbad_gov.Degrade.reason_string reason))

(* --- rendering -------------------------------------------------------- *)

let outcome_label = function
  | Proved -> "proved"
  | Disproved _ -> "disproved"
  | Coverage _ -> "coverage"
  | Inconclusive _ -> "inconclusive"

let to_json ?(timings = true) t =
  let base =
    [
      ("check", Json.Str t.name);
      ("passed", Json.Bool t.passed);
      ("detail", Json.Str t.detail);
      ("outcome", Json.Str (outcome_label t.outcome));
      ("host_seconds", Json.Float (if timings then t.host_seconds else 0.));
    ]
  in
  let extra =
    match t.outcome with
    | Coverage { hit; total } ->
        [ ("hit", Json.Int hit); ("total", Json.Int total) ]
    | Disproved w -> [ ("counterexample", Json.Str w) ]
    | Inconclusive reason -> [ ("reason", Json.Str reason) ]
    | Proved -> []
  in
  (* only hits carry the marker, so uncached documents are byte-for-byte
     what they were before the cache existed *)
  let cached = if t.cached then [ ("cached", Json.Bool true) ] else [] in
  Json.Obj (base @ extra @ cached)

(* Parse a [to_json] document back; [None] on any missing or ill-typed
   field.  This is what lets the verdict cache replay stored rows. *)
let of_json j =
  let str k = Option.bind (Json.member k j) Json.to_str in
  let int k =
    Option.bind (Json.member k j) Json.to_number |> Option.map int_of_float
  in
  let bool k =
    match Json.member k j with Some (Json.Bool b) -> Some b | _ -> None
  in
  match (str "check", bool "passed", str "detail", str "outcome") with
  | Some name, Some passed, Some detail, Some label ->
      let outcome =
        match label with
        | "proved" -> Some Proved
        | "disproved" ->
            Some (Disproved (Option.value ~default:"" (str "counterexample")))
        | "inconclusive" ->
            Some (Inconclusive (Option.value ~default:"" (str "reason")))
        | "coverage" -> (
            match (int "hit", int "total") with
            | Some hit, Some total -> Some (Coverage { hit; total })
            | _ -> None)
        | _ -> None
      in
      Option.map
        (fun outcome ->
          {
            name;
            outcome;
            passed;
            host_seconds = 0.;
            detail;
            cached = Option.value ~default:false (bool "cached");
          })
        outcome
  | _ -> None

let pp fmt t =
  Fmt.pf fmt "[%s] %-38s %s%s"
    (if t.passed then "PASS" else "FAIL")
    t.name
    (if String.equal t.detail "" then
       match t.outcome with
       | Proved -> "proved"
       | Disproved w -> w
       | Coverage { hit; total } -> Printf.sprintf "%d/%d" hit total
       | Inconclusive reason -> reason
     else t.detail)
    (if t.cached then " (cached)" else "")
