(** The one verification-result type of the flow.

    Every verification technology in the stack — model checking, PCC,
    ATPG, LPV, SymbC — historically reported through its own record;
    [Verdict.t] is the uniform contract they all adapt to, so the flow
    report, the CLI JSON surface and the parallel job engine handle one
    shape.  The adapters live here (and not in the producer libraries)
    because [symbad_core] is the one library that sees them all. *)

type outcome =
  | Proved  (** certificate obtained *)
  | Disproved of string  (** counterexample / witness summary *)
  | Coverage of { hit : int; total : int }  (** coverage-style result *)
  | Inconclusive of string  (** reason: resource-out, not analyzable… *)

type t = {
  name : string;  (** the check, e.g. ["PCC completeness ROOT"] *)
  outcome : outcome;
  passed : bool;  (** the pass/fail gate the flow aggregates *)
  host_seconds : float;  (** 0. when the producer did not time itself *)
  detail : string;  (** one human-readable line *)
  cached : bool;
      (** replayed from the content-addressed verdict cache rather than
          produced by running the engine *)
}

val make :
  ?passed:bool ->
  ?host_seconds:float ->
  ?detail:string ->
  ?cached:bool ->
  name:string ->
  outcome ->
  t
(** [passed] defaults from the outcome: [Proved] passes,
    [Disproved]/[Inconclusive] fail, [Coverage] passes at full
    coverage — give [~passed] explicitly for thresholded gates.
    [cached] defaults to [false]. *)

val with_cached : t -> t
(** The verdict marked as a cache replay: [cached] set, [host_seconds]
    zeroed (no engine ran this time). *)

val coverage_ratio : outcome -> float option
(** [hit / total] ([1.] when [total = 0]); [None] for non-coverage
    outcomes. *)

(** {1 Adapters} *)

val of_mc : ?host_seconds:float -> Symbad_mc.Engine.report -> t
(** [Proved] with method and depth, [Disproved] with the trace length,
    or [Inconclusive] carrying the engine's reason (bound reached,
    budget exhausted). *)

val of_pcc : ?host_seconds:float -> ?threshold:float -> Symbad_pcc.Pcc.report -> t
(** [Coverage] over detectable faults; passes at [threshold] (default
    [0.75], the flow's completeness gate).  When the report contains
    [Unresolved] faults (resource budget ran out) that would otherwise
    let it pass, the verdict degrades to [Inconclusive] instead —
    exhaustion never produces an optimistic pass. *)

val of_atpg :
  ?host_seconds:float -> ?threshold:float -> Symbad_atpg.Testbench.evaluation -> t
(** [Coverage] over the point universe; passes when total coverage
    exceeds [threshold] (default [0.85], the flow's gate). *)

val of_lpv_deadlock : ?host_seconds:float -> Symbad_lpv.Deadlock.verdict -> t
(** [Proved] with the minimum cycle tokens, [Disproved] with the witness
    cycle, or [Inconclusive] when the net was not analyzable (degraded
    governed run). *)

val of_lpv_timing :
  ?host_seconds:float -> deadline_ns:int -> met:bool -> Symbad_lpv.Timing.verdict -> t
(** [met] is the caller's deadline comparison; the verdict's period (or
    unschedulability / non-analyzability) lands in the detail line. *)

val of_symbc : ?host_seconds:float -> Symbad_symbc.Check.verdict -> t
(** [Proved] with the number of certified call sites, or [Disproved]
    naming the failing reconfiguration call. *)

val of_lint : ?host_seconds:float -> Symbad_lint.Lint.report -> t
(** Any error ⇒ [Disproved] with the gravest diagnostic as the
    disproof; rules skipped by the governor (and no errors) ⇒
    [Inconclusive]; otherwise [Proved] over the rule set, warnings in
    the detail line. *)

val degraded :
  ?host_seconds:float ->
  name:string ->
  partial:Symbad_gov.Degrade.partial ->
  Symbad_gov.Degrade.reason ->
  t
(** A governed run that ran out of budget: [Inconclusive] with the
    degradation reason as its reason and the partial progress
    ([units_done]/[units_total]) in [detail].  The detail string is
    wall-clock free, so degraded reports stay byte-stable. *)

(** {1 Rendering} *)

val outcome_label : outcome -> string
(** ["proved"], ["disproved"], ["coverage"] or ["inconclusive"]. *)

val to_json : ?timings:bool -> t -> Symbad_obs.Json.t
(** The uniform JSON shape ([check]/[passed]/[detail] plus [outcome],
    [host_seconds] and coverage counts).  [~timings:false] zeroes
    [host_seconds] for byte-stable comparison across runs.  [cached]
    is emitted only when true, so documents from uncached runs are
    unchanged from before the cache existed. *)

val of_json : Symbad_obs.Json.t -> t option
(** Parse a {!to_json} document back ([host_seconds] comes back as
    [0.]); [None] on missing or ill-typed fields.  This is how the
    content-addressed verdict cache replays stored rows. *)

val pp : Format.formatter -> t -> unit
