(* LPV real-time analysis.

   For a timed marked graph, the sustainable iteration period equals the
   maximum cycle ratio
       MCR = max over cycles (sum of delays / sum of tokens),
   and "period r is sustainable" has the exact LP characterisation: there
   exist start-time potentials s with
       s(consumer) - s(producer) + r * m(p) >= delay(producer)
   for every place p.  Minimising r over that system yields the MCR in
   one LP — the "timing deadline achievement" check; re-running it while
   shrinking channel capacities yields FIFO dimensioning. *)

module Gov = Symbad_gov.Gov
module Degrade = Symbad_gov.Degrade

type verdict =
  | Period of Rat.t  (* minimum sustainable iteration period *)
  | Unschedulable of string  (* a zero-token cycle: no finite period *)
  | Not_analyzable of string  (* resource budget exhausted *)

let governed gov =
  Option.map
    (fun r -> Printf.sprintf "governor: %s" (Degrade.reason_string r))
    (Gov.exhaustion (Gov.get gov))

(* Minimum cycle ratio LP.  Variables: s+^t, s-^t per transition (free
   potential split into nonnegative parts) and r (last). *)
let min_cycle_ratio ?gov net =
  let nt = Petri.n_transitions net and np = Petri.n_places net in
  if nt = 0 then invalid_arg "Timing.min_cycle_ratio: no transitions";
  match governed gov with
  | Some reason -> Not_analyzable reason
  | None ->
  let sp t = t and sm t = nt + t in
  let r_var = 2 * nt in
  let nvars = (2 * nt) + 1 in
  let m0 = Petri.initial_marking net in
  let constraints = ref [] in
  for p = 0 to np - 1 do
    List.iter
      (fun producer ->
        List.iter
          (fun consumer ->
            let d = Petri.delay net producer in
            constraints :=
              {
                Simplex.coeffs =
                  [
                    (sp consumer, Rat.one);
                    (sm consumer, Rat.minus_one);
                    (sp producer, Rat.minus_one);
                    (sm producer, Rat.one);
                    (r_var, Rat.of_int m0.(p));
                  ];
                cmp = Simplex.Ge;
                rhs = Rat.of_int d;
              }
              :: !constraints)
          (Petri.consumers net p))
      (Petri.producers net p)
  done;
  match
    Simplex.solve
      {
        nvars;
        constraints = !constraints;
        objective = [ (r_var, Rat.one) ];
        minimize = true;
      }
  with
  | Simplex.Optimal { value; _ } -> Period value
  | Simplex.Infeasible ->
      Unschedulable "zero-token cycle with positive delay"
  | Simplex.Unbounded -> Period Rat.zero

(* "Timing deadline achievement": can the system sustain one iteration
   every [deadline] time units?  A degraded (Not_analyzable) run is
   conservatively "not met". *)
let deadline_met ?gov ~deadline net =
  match min_cycle_ratio ?gov net with
  | Period p -> Rat.(p <= of_int deadline)
  | Unschedulable _ | Not_analyzable _ -> false

(* FIFO channel dimensioning: smallest uniform capacity (over a monotone
   family of nets built by [build]) that meets the deadline.  The period
   is non-increasing in capacity, so linear search from 1 terminates at
   the optimum.  The governor is polled per candidate capacity (one LP
   each); exhaustion stops the search with None. *)
let min_uniform_capacity ?(max_capacity = 64) ?gov ~deadline ~build () =
  let rec go c =
    if c > max_capacity then None
    else
      match governed gov with
      | Some _ -> None
      | None ->
          if deadline_met ?gov ~deadline (build c) then Some c else go (c + 1)
  in
  go 1

let pp_verdict fmt = function
  | Period p -> Fmt.pf fmt "period %a" Rat.pp p
  | Unschedulable why -> Fmt.pf fmt "unschedulable (%s)" why
  | Not_analyzable why -> Fmt.pf fmt "not analyzable (%s)" why
