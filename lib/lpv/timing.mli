(** LPV real-time analysis: deadline achievement and FIFO dimensioning
    via the maximum-cycle-ratio LP over timed marked graphs. *)

type verdict =
  | Period of Rat.t  (** minimum sustainable iteration period *)
  | Unschedulable of string  (** a zero-token cycle: no finite period *)
  | Not_analyzable of string
      (** resource budget exhausted (governor deadline, allowance or
          cancellation) before the LP could run *)

val min_cycle_ratio : ?gov:Symbad_gov.Gov.t -> Petri.t -> verdict
(** One LP: minimise [r] subject to
    [s(consumer) - s(producer) + r * tokens(p) >= delay(producer)] for
    every place [p].  [gov] is polled at entry; exhaustion yields
    [Not_analyzable]. *)

val deadline_met : ?gov:Symbad_gov.Gov.t -> deadline:int -> Petri.t -> bool
(** Can the system sustain one iteration every [deadline] time units?
    A degraded run answers [false] — conservative, never optimistic. *)

val min_uniform_capacity :
  ?max_capacity:int ->
  ?gov:Symbad_gov.Gov.t ->
  deadline:int ->
  build:(int -> Petri.t) ->
  unit ->
  int option
(** Smallest uniform channel capacity meeting the deadline, over a
    monotone family of nets built by [build].  [gov] is polled before
    each candidate capacity (one LP each); exhaustion stops the search
    with [None]. *)

val pp_verdict : Format.formatter -> verdict -> unit
