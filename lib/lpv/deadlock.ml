(* LPV deadlock-freeness.

   For (strongly connected) marked graphs, the live/deadlock question is
   exactly "does every directed cycle carry a token?".  Cycles are the
   extreme points of the nonnegative place-invariant cone
       { y >= 0 | y C = 0 },
   so minimising the initial token count y . M0 over that cone (with the
   normalisation sum y = 1) decides the question:
     optimum > 0   =>  every cycle is marked: deadlock-free, and the
                       optimum is the (scaled) minimum cycle token count;
     optimum = 0   =>  the support of the optimal y is a token-free
                       invariant — an unfireable cycle, i.e. a deadlock
                       witness. *)

type verdict =
  | Deadlock_free of { min_cycle_tokens : Rat.t }
  | Potential_deadlock of { witness : string list }
      (* token-free cycle: names of the places in the invariant support *)
  | Not_analyzable of string

let check ?gov net =
  let np = Petri.n_places net and nt = Petri.n_transitions net in
  if np = 0 || nt = 0 then Not_analyzable "empty net"
  else begin
    match Symbad_gov.Gov.exhaustion (Symbad_gov.Gov.get gov) with
    | Some r ->
        Not_analyzable
          (Printf.sprintf "governor: %s" (Symbad_gov.Degrade.reason_string r))
    | None ->
    let c = Petri.incidence net in
    let m0 = Petri.initial_marking net in
    (* variables: y_p for each place *)
    let invariant_rows =
      List.init nt (fun t ->
          {
            Simplex.coeffs =
              List.init np (fun p -> (p, Rat.of_int c.(t).(p)))
              |> List.filter (fun (_, q) -> not (Rat.is_zero q));
            cmp = Simplex.Eq;
            rhs = Rat.zero;
          })
    in
    let normalisation =
      {
        Simplex.coeffs = List.init np (fun p -> (p, Rat.one));
        cmp = Simplex.Eq;
        rhs = Rat.one;
      }
    in
    let objective =
      List.init np (fun p -> (p, Rat.of_int m0.(p)))
      |> List.filter (fun (_, q) -> not (Rat.is_zero q))
    in
    match
      Simplex.solve
        {
          nvars = np;
          constraints = normalisation :: invariant_rows;
          objective;
          minimize = true;
        }
    with
    | Simplex.Infeasible ->
        (* no nonnegative invariant at all: no cycles, hence no cyclic
           starvation in a marked graph *)
        Deadlock_free { min_cycle_tokens = Rat.of_int max_int }
    | Simplex.Unbounded -> Not_analyzable "unbounded invariant LP"
    | Simplex.Optimal { value; solution } ->
        if Rat.sign value > 0 then Deadlock_free { min_cycle_tokens = value }
        else begin
          let witness =
            List.filteri (fun p _ -> Rat.sign solution.(p) > 0)
              (Array.to_list (Array.init np (fun p -> Petri.place_name net p)))
          in
          Potential_deadlock { witness }
        end
  end

let pp_verdict fmt = function
  | Deadlock_free { min_cycle_tokens } ->
      Fmt.pf fmt "deadlock-free (min cycle tokens %a)" Rat.pp min_cycle_tokens
  | Potential_deadlock { witness } ->
      Fmt.pf fmt "POTENTIAL DEADLOCK: token-free cycle through {%a}"
        (Fmt.list ~sep:Fmt.comma Fmt.string)
        witness
  | Not_analyzable msg -> Fmt.pf fmt "not analyzable: %s" msg
