(** LPV deadlock-freeness for marked graphs.

    Minimising the initial token count over the nonnegative
    place-invariant cone decides whether every directed cycle carries a
    token; a zero-token optimum's support is an unfireable cycle — a
    deadlock witness. *)

type verdict =
  | Deadlock_free of { min_cycle_tokens : Rat.t }
  | Potential_deadlock of { witness : string list }
      (** places of the token-free cycle *)
  | Not_analyzable of string
      (** degenerate net, numerically unbounded LP, or resource budget
          exhausted (governor deadline, allowance or cancellation) *)

val check : ?gov:Symbad_gov.Gov.t -> Petri.t -> verdict
(** Decide deadlock-freeness by one LP over the invariant cone.  [gov]
    is polled at entry; exhaustion yields [Not_analyzable]. *)

val pp_verdict : Format.formatter -> verdict -> unit
