(** Bounded blocking FIFO channels (point-to-point communication).

    A capacity of 0 means unbounded — the abstraction used by level-1
    untimed models.  Levels 2-3 use finite capacities; the recorded
    occupancy statistics are the empirical counterpart of the LPV FIFO
    dimensioning analysis.

    For the platform fault-injection campaigns a channel can be made
    {e lossy} ({!set_loss}): selected write attempts silently discard
    their token and are counted by {!drops}, modelling a link that
    corrupts frames in flight.  The non-blocking {!try_write} additionally
    counts a drop when it refuses a write because the channel is full, so
    overflow on best-effort producers shows up in the same counter. *)

type 'a t

val create : ?capacity:int -> string -> 'a t
(** [create ~capacity name].  [capacity = 0] (default) is unbounded. *)

val name : 'a t -> string
val capacity : 'a t -> int
val length : 'a t -> int
val is_full : 'a t -> bool

val put : 'a t -> 'a -> unit
(** Blocking write; parks the calling process while the channel is full.
    On a lossy channel (see {!set_loss}) a selected attempt drops the
    token instead of enqueueing it and returns immediately. *)

val get : 'a t -> 'a
(** Blocking read; parks the calling process while the channel is empty. *)

val try_get : 'a t -> 'a option
(** Non-blocking read. *)

val try_read : 'a t -> 'a option
(** Alias of {!try_get}, the counterpart of {!try_write}. *)

val try_write : 'a t -> 'a -> bool
(** Non-blocking write.  Returns [false] — and counts a drop — when the
    channel is full instead of parking the caller.  A write discarded by
    an injected loss returns [true]: the producer cannot observe the
    fault, exactly like a corrupted frame on a real link. *)

val set_loss : 'a t -> (int -> bool) option -> unit
(** [set_loss f (Some p)] makes the channel lossy: a write attempt with
    index [i] (0-based, counting every [put]/[try_write] call) is
    discarded when [p i] is true.  [set_loss f None] restores reliable
    delivery.  Dropped tokens are counted by {!drops}. *)

val drops : 'a t -> int
(** Tokens discarded so far — by injected loss or by a full-channel
    {!try_write}. *)

type occupancy = {
  puts : int;  (** total successful writes *)
  gets : int;  (** total reads *)
  max_occupancy : int;  (** high-water mark of the queue length *)
  drops : int;  (** discarded tokens, see {!drops} *)
}

val occupancy : 'a t -> occupancy
