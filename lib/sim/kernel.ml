(* The discrete-event scheduler.

   Processes are ordinary OCaml functions executed as fibers: blocking
   primitives ([Process.wait], FIFO get/put, ...) perform effects that the
   scheduler interprets by parking the continuation and resuming it when the
   corresponding event fires.  This mirrors the SystemC process model the
   paper's level-1..3 descriptions are written in. *)

module Obs = Symbad_obs.Obs
module Json = Symbad_obs.Json

type action = unit -> unit

type t = {
  mutable now : Time.t;
  queue : action Event_queue.t;
  mutable events_processed : int;
  mutable processes_spawned : int;
  mutable stop_requested : bool;
  mutable run_cpu_seconds : float;
}

type stats = {
  events : int;
  processes : int;
  final_time : Time.t;
  cpu_seconds : float;
}

exception Halted
(* Raised (internally) to terminate the current process. *)

type _ Effect.t +=
  | Wait : Time.t -> unit Effect.t
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t
  | Get_kernel : t Effect.t

let create () =
  {
    now = Time.zero;
    queue = Event_queue.create ~dummy_payload:(fun () -> ());
    events_processed = 0;
    processes_spawned = 0;
    stop_requested = false;
    run_cpu_seconds = 0.;
  }

let now k = k.now

let schedule ?(delay = Time.zero) k action =
  Event_queue.push k.queue (Time.add k.now delay) action

let schedule_at k time action = Event_queue.push k.queue time action

let stop k = k.stop_requested <- true

let exec_fiber k body =
  let open Effect.Deep in
  match_with body ()
    {
      retc = (fun () -> ());
      exnc = (function Halted -> () | e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Wait d ->
              Some
                (fun (cont : (a, _) continuation) ->
                  schedule_at k (Time.add k.now d) (fun () ->
                      continue cont ()))
          | Suspend register ->
              Some
                (fun (cont : (a, _) continuation) ->
                  if Obs.enabled () then
                    Obs.event ~severity:Symbad_obs.Severity.Debug
                      ~sim_ns:(Time.to_ns k.now) "sim.park";
                  let resumed = ref false in
                  register (fun () ->
                      if not !resumed then begin
                        resumed := true;
                        if Obs.enabled () then
                          Obs.event ~severity:Symbad_obs.Severity.Debug
                            ~sim_ns:(Time.to_ns k.now) "sim.resume";
                        schedule_at k k.now (fun () -> continue cont ())
                      end))
          | Get_kernel ->
              Some (fun (cont : (a, _) continuation) -> continue cont k)
          | _ -> None);
    }

let spawn k ?(name = "proc") body =
  k.processes_spawned <- k.processes_spawned + 1;
  if Obs.enabled () then begin
    Obs.event ~severity:Symbad_obs.Severity.Debug
      ~args:[ ("name", Json.Str name) ]
      ~sim_ns:(Time.to_ns k.now) "sim.spawn";
    Obs.incr_counter "sim.processes_spawned"
  end;
  schedule k (fun () -> exec_fiber k body)

let run ?until k =
  let t0 = Sys.time () in
  let events0 = k.events_processed in
  let sim0 = Time.to_ns k.now in
  let sp =
    if Obs.enabled () then
      Obs.begin_span ~cat:"sim" ~sim_ns:sim0 "kernel.run"
    else Obs.null_span
  in
  let within time =
    match until with None -> true | Some limit -> Time.(time <= limit)
  in
  let rec loop () =
    if k.stop_requested then ()
    else
      match Event_queue.pop k.queue with
      | None -> ()
      | Some (time, action) ->
          if within time then begin
            k.now <- time;
            k.events_processed <- k.events_processed + 1;
            action ();
            loop ()
          end
          else
            (* leave the event consumed; clamp the clock at the horizon *)
            match until with
            | Some limit -> k.now <- limit
            | None -> ()
  in
  (* accumulate host time even when an action escapes with [Halted],
     an uncaught model exception, or a [stop] request *)
  let finish () =
    let dt = Sys.time () -. t0 in
    k.run_cpu_seconds <- k.run_cpu_seconds +. dt;
    if Obs.enabled () then begin
      let dispatched = k.events_processed - events0 in
      let sim_ns = Time.to_ns k.now in
      (* through the facade, never the registry directly: a kernel run
         inside a Par job must land in the job's buffer *)
      Obs.incr_counter ~by:dispatched "sim.events_dispatched";
      Obs.incr_counter ~by:(int_of_float (dt *. 1e6)) "sim.cpu_us";
      if dt > 0. then
        Obs.set_gauge "sim.wall_sim_ratio"
          (float_of_int (sim_ns - sim0) /. 1e9 /. dt);
      Obs.end_span
        ~args:[ ("events", Json.Int dispatched) ]
        ~sim_ns sp
    end
  in
  Fun.protect ~finally:finish loop

let reset_stats k =
  k.events_processed <- 0;
  k.processes_spawned <- 0;
  k.run_cpu_seconds <- 0.

let stats k =
  {
    events = k.events_processed;
    processes = k.processes_spawned;
    final_time = k.now;
    cpu_seconds = k.run_cpu_seconds;
  }

let pp_stats fmt s =
  Fmt.pf fmt "events=%d processes=%d time=%a cpu=%.3fs" s.events s.processes
    Time.pp s.final_time s.cpu_seconds
