(* Bounded point-to-point FIFO channel with blocking semantics, the level-1
   communication primitive of the flow.  Occupancy statistics feed the LPV
   FIFO-dimensioning analysis at level 2; the drop counter and the
   injectable loss predicate feed the platform fault-injection campaigns
   at level 3. *)

type 'a t = {
  name : string;
  capacity : int; (* 0 = unbounded *)
  items : 'a Queue.t;
  mutable readers : (unit -> unit) list;
  mutable writers : (unit -> unit) list;
  mutable total_puts : int;
  mutable total_gets : int;
  mutable max_occupancy : int;
  mutable total_drops : int;
  mutable put_attempts : int;
  mutable loss : (int -> bool) option;
}

let create ?(capacity = 0) name =
  if capacity < 0 then invalid_arg "Fifo.create: negative capacity";
  {
    name;
    capacity;
    items = Queue.create ();
    readers = [];
    writers = [];
    total_puts = 0;
    total_gets = 0;
    max_occupancy = 0;
    total_drops = 0;
    put_attempts = 0;
    loss = None;
  }

let name f = f.name
let capacity f = f.capacity
let length f = Queue.length f.items
let is_full f = f.capacity > 0 && Queue.length f.items >= f.capacity
let drops f = f.total_drops
let set_loss f p = f.loss <- p

let wake_all waiters = List.iter (fun resume -> resume ()) waiters

let wake_readers f =
  let ws = f.readers in
  f.readers <- [];
  wake_all ws

let wake_writers f =
  let ws = f.writers in
  f.writers <- [];
  wake_all ws

let enqueue f x =
  Queue.push x f.items;
  f.total_puts <- f.total_puts + 1;
  if Queue.length f.items > f.max_occupancy then
    f.max_occupancy <- Queue.length f.items;
  wake_readers f

(* The loss predicate sees the write-attempt index, not the enqueue
   count, so an injected fault plan addresses the k-th offered token
   even when earlier ones were dropped. *)
let lossy f =
  let i = f.put_attempts in
  f.put_attempts <- i + 1;
  match f.loss with
  | Some p when p i ->
      f.total_drops <- f.total_drops + 1;
      true
  | _ -> false

let rec wait_put f x =
  if is_full f then begin
    Process.suspend (fun resume -> f.writers <- resume :: f.writers);
    wait_put f x
  end
  else enqueue f x

let put f x = if lossy f then () else wait_put f x

let try_write f x =
  if lossy f then true
  else if is_full f then begin
    f.total_drops <- f.total_drops + 1;
    false
  end
  else begin
    enqueue f x;
    true
  end

let rec get f =
  match Queue.take_opt f.items with
  | Some x ->
      f.total_gets <- f.total_gets + 1;
      wake_writers f;
      x
  | None ->
      Process.suspend (fun resume -> f.readers <- resume :: f.readers);
      get f

let try_get f =
  match Queue.take_opt f.items with
  | Some x ->
      f.total_gets <- f.total_gets + 1;
      wake_writers f;
      Some x
  | None -> None

let try_read = try_get

type occupancy = {
  puts : int;
  gets : int;
  max_occupancy : int;
  drops : int;
}

let occupancy f =
  {
    puts = f.total_puts;
    gets = f.total_gets;
    max_occupancy = f.max_occupancy;
    drops = f.total_drops;
  }
