(** Discrete-event simulation kernel.

    A kernel owns a clock and a queue of pending events.  Simulation
    processes (see {!Process}) are OCaml functions run as fibers on top of
    it: when a process blocks, its continuation is parked until the event
    that unblocks it fires.  Same-time events run in schedule order. *)

type t

type stats = {
  events : int;  (** events dispatched by {!run} *)
  processes : int;  (** processes spawned over the kernel's lifetime *)
  final_time : Time.t;  (** simulated clock after the last {!run} *)
  cpu_seconds : float;  (** host CPU time consumed by {!run} calls *)
}

exception Halted
(** Terminates the raising process silently (see {!Process.halt}). *)

type _ Effect.t +=
  | Wait : Time.t -> unit Effect.t
        (** Advance this process past the given delay. *)
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t
        (** [Suspend register] parks the process; [register resume] is
            called immediately with the function that will re-schedule it.
            Calling [resume] more than once is harmless. *)
  | Get_kernel : t Effect.t  (** The kernel running the current process. *)

val create : unit -> t

val now : t -> Time.t
(** Current simulated time. *)

val schedule : ?delay:Time.t -> t -> (unit -> unit) -> unit
(** [schedule ?delay k action] runs [action] after [delay] (default: now). *)

val schedule_at : t -> Time.t -> (unit -> unit) -> unit

val spawn : t -> ?name:string -> (unit -> unit) -> unit
(** [spawn k ~name body] registers [body] as a process starting at the
    current time. *)

val run : ?until:Time.t -> t -> unit
(** Dispatch events until the queue drains, {!stop} is called, or the
    clock would pass [until]. *)

val stop : t -> unit
(** Request that {!run} return after the current event. *)

val stats : t -> stats

val reset_stats : t -> unit
(** Zero the event, process and CPU-time accumulators (the clock is
    kept), so benchmarks can measure steady state after a warm-up run. *)

val pp_stats : Format.formatter -> stats -> unit
