(** FPGA contexts (configurations): fixed resource sets loaded as a unit. *)

type t

val make : string -> Resource.t list -> t
(** Raises [Invalid_argument] on duplicate resource names. *)

val name : t -> string
val resources : t -> Resource.t list
val area : t -> int

val provides : t -> string -> bool
(** [provides c r] is true iff resource [r] is available once [c] is
    loaded. *)

val bitstream_bytes : ?header_bytes:int -> ?bytes_per_area:int -> t -> int
(** Size of the configuration bitstream (header + per-area payload;
    defaults 512 + 8/unit). *)

val bitstream_words : ?header_bytes:int -> ?bytes_per_area:int -> t -> int
(** {!bitstream_bytes} in 32-bit words (rounded up). *)

val bitstream_word : t -> int -> int
(** [bitstream_word c i] is word [i] of the context's deterministic
    pseudo-bitstream — a stable hash of the context name and the index,
    so every context has a golden image without storing one. *)

val golden_crc : ?header_bytes:int -> ?bytes_per_area:int -> t -> int
(** CRC-32 of the clean bitstream ({!Crc.words} over
    {!bitstream_word}); what {!Fpga.reconfigure} compares a download
    against. *)

val pp : Format.formatter -> t -> unit
