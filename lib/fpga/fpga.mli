(** The dynamically reconfigurable device.

    At most one context is loaded at a time.  {!reconfigure} downloads the
    bitstream over the system bus and programs the fabric; {!require}
    asserts a resource is available, raising {!Inconsistent} otherwise —
    the runtime fault whose static absence SymbC certifies.

    Dependability: downloads are CRC-checked against the context's golden
    image ({!Context.golden_crc}) with a bounded re-download on mismatch
    ({!Download_failed} when it keeps failing); configuration-memory
    upsets ({!upset_loaded}) are detected and repaired by readback
    {!scrub}bing; resources can wedge ({!set_stuck}) and the device
    carries a health flag ({!is_healthy}) that the level-3 platform model
    downgrades when recovery gives up, switching the affected tasks to
    their software fallback. *)

exception Inconsistent of { resource : string; loaded : string option }

exception Download_failed of { fpga : string; context : string; attempts : int }
(** Raised by {!reconfigure} / {!scrub} when every download attempt
    (1 + [max_redownloads]) ended in a CRC mismatch or a failed bus
    transfer. *)

type t

val create :
  ?capacity:int ->
  ?copies:int ->
  ?program_ns_per_byte:int ->
  ?burst_bytes:int ->
  ?max_redownloads:int ->
  contexts:Context.t list ->
  string ->
  t
(** Raises [Invalid_argument] if any context's area times [copies]
    exceeds [capacity].  [copies] (default 1) is the redundancy degree:
    [3] runs every context as TMR — each load downloads and programs
    three resource areas, and {!vote_and_repair} masks single-copy
    upsets by majority vote.  Only 1 (simplex) and 3 are accepted.
    [burst_bytes] (default 8, i.e. CPU-driven programmed I/O without a
    DMA engine) is the bus-burst granularity of bitstream downloads:
    each burst is a separately arbitrated bus transaction.
    [max_redownloads] (default 2) bounds how often a corrupted download
    is re-attempted before {!Download_failed}. *)

val name : t -> string
val capacity : t -> int
val copies : t -> int
val contexts : t -> Context.t list
val loaded : t -> Context.t option
val find_context : t -> string -> Context.t

val reconfigure :
  ?verify_previous:bool ->
  t ->
  bus:Symbad_tlm.Bus.t ->
  master:string ->
  string ->
  unit
(** [reconfigure f ~bus ~master ctx] loads context [ctx] (by name) unless
    already loaded: a high-priority bitstream bus transfer followed by
    fabric programming time.  The download CRC is checked against the
    golden image; a mismatch (or a failed bus transfer) triggers a
    bounded re-download, then {!Download_failed}.  With
    [verify_previous] (default [false]) — the readback-on-context-switch
    half of the scrubbing feature — an upset in the outgoing context is
    detected before being overwritten and counted as a scrub reload; a
    corrupted context that is re-requested is repaired in place.  Must
    be called from a simulation process. *)

val require : t -> string -> unit
(** Assert that the named resource is currently available. *)

val provides_loaded : t -> string -> bool

(** {1 Fault injection and recovery} *)

val inject_download_fault : t -> (attempt:int -> word:int -> int) option -> unit
(** Install (or remove) the download-corruption hook: for download
    [attempt] (0-based, counting re-downloads) the hook returns an xor
    mask for bitstream word [word] — [0] leaves the word clean.  Must be
    deterministic for reproducible campaigns. *)

val upset_loaded : ?copy:int -> t -> bool
(** Flip bits in the loaded configuration memory (an SEU in the fabric):
    the device keeps running but computes corrupted results until a
    {!scrub} (or, under TMR, {!vote_and_repair}) repairs it.  [copy]
    (default 0, clamped to the redundancy degree) selects which TMR
    copy is hit.  Returns [false] — no-op — when nothing is loaded. *)

val upset_context : ?copy:int -> t -> string -> bool
(** Upset the named context's resident configuration frames even while
    another context is active — inactive resource areas collect SEUs
    too.  Returns [false] for an unknown context. *)

val loaded_corrupted : t -> bool
(** True while the loaded context carries an unrepaired upset in any
    copy. *)

val context_corrupted : t -> Context.t -> bool
(** True while the given context carries an unrepaired upset. *)

val scrub :
  ?context:string -> t -> bus:Symbad_tlm.Bus.t -> master:string -> bool
(** Readback scrubbing pass: stream the configuration memory back over
    the bus (every copy), compare its CRC with the golden image, and
    reload the corrupt copies on mismatch.  [context] scrubs the named
    context's resource area instead of the active one — repairing an
    upset in an inactive context without disturbing the loaded one.
    Returns [true] when a corruption was detected and repaired.  Must
    be called from a simulation process. *)

val vote_and_repair : t -> [ `Clean | `Masked | `Corrupt ]
(** The TMR majority vote at result-readout time.  [`Masked]: exactly
    one copy disagreed — the voted result is correct, the disagreement
    is counted, and the offending copy alone is repaired over the
    internal configuration port, overlapping continued voted operation
    (counters and repair bytes move; no simulated time, no bus
    traffic).  [`Corrupt]: the vote is defeated (two or more corrupt
    copies, or any upset in simplex mode).  [`Clean] otherwise; always
    [`Clean]/[`Corrupt] when [copies = 1]. *)

val set_stuck : t -> string -> unit
(** Wedge the named resource: it keeps passing {!require} (the context
    does provide it) but stops {!responding}, which the platform
    watchdog detects. *)

val clear_stuck : t -> unit

val responding : t -> string -> bool
(** False while the named resource is wedged by {!set_stuck}. *)

val is_healthy : t -> bool
(** False once recovery has given up on the fabric ({!mark_unhealthy});
    level 3 then routes the affected tasks to software. *)

val mark_unhealthy : t -> unit

val note_watchdog : t -> unit
(** Count a watchdog expiry against this device (emitted by the level-3
    platform model when a resource stops responding). *)

(** {1 Statistics} *)

type stats = {
  reconfigurations : int;  (** contexts actually loaded *)
  noop_reconfigurations : int;  (** requests for the already-loaded context *)
  bitstream_bytes : int;  (** downloaded, re-downloads included *)
  reconfig_ns : int;
  resource_calls : int;
  crc_mismatches : int;  (** corrupted downloads detected *)
  retried_downloads : int;  (** bounded re-downloads performed *)
  failed_downloads : int;  (** downloads abandoned ({!Download_failed}) *)
  scrubs : int;  (** readback scrubbing passes *)
  scrub_reloads : int;  (** scrubs that found and repaired an upset *)
  watchdog_fires : int;  (** watchdog expiries ({!note_watchdog}) *)
  copies : int;  (** redundancy degree: 1 simplex, 3 TMR *)
  voter_disagreements : int;  (** TMR votes with a lone dissenter *)
  targeted_repairs : int;  (** single-copy repairs driven by the voter *)
  repair_bytes : int;  (** configuration bytes rewritten by those repairs *)
  area_loaded : int;  (** largest resource area consumed (all copies) *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
