(* CRC-32 (reflected, polynomial 0xEDB88320) over a stream of 32-bit
   words — the integrity check appended to configuration bitstreams.
   Bit-serial on purpose: the model checks a few thousand words per
   reconfiguration, clarity beats a table here. *)

let poly = 0xEDB88320

let update crc word =
  let crc = ref (crc lxor (word land 0xFFFFFFFF)) in
  for _ = 0 to 31 do
    crc := if !crc land 1 = 1 then (!crc lsr 1) lxor poly else !crc lsr 1
  done;
  !crc

let words gen n =
  let crc = ref 0xFFFFFFFF in
  for i = 0 to n - 1 do
    crc := update !crc (gen i)
  done;
  !crc lxor 0xFFFFFFFF
