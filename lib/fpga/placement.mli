(** Context-partition tuning: how to split FPGA-mapped resources among
    configurations so as to minimise reconfiguration traffic. *)

type partition = Resource.t list list
(** Groups of resources; group [i] becomes context ["config<i+1>"]. *)

val contexts_of_partition : partition -> Context.t list

val evaluate : calls:string list -> partition -> int * int
(** [evaluate ~calls p] replays the dynamic resource-invocation sequence
    [calls] and returns [(reconfigurations, bitstream_bytes)]. *)

val feasible_partitions :
  capacity:int -> max_contexts:int -> Resource.t list -> partition list
(** All set partitions into at most [max_contexts] groups each fitting in
    [capacity] area units.  Exponential: intended for case-study sizes. *)

type evaluation = {
  partition : partition;
  reconfigurations : int;
  bitstream_bytes : int;
}

val best_partition :
  ?pool:Symbad_par.Par.pool ->
  capacity:int ->
  max_contexts:int ->
  calls:string list ->
  Resource.t list ->
  evaluation option
(** Exhaustive optimum (fewest reconfigurations, bytes as tie-break).
    Candidates are evaluated one pool job each; progress is reported as
    ["placement.exhaustive"] obs events from the calling domain (never
    stdout), so parallel runs cannot corrupt console output. *)

val exhaustive :
  ?pool:Symbad_par.Par.pool ->
  capacity:int ->
  max_contexts:int ->
  calls:string list ->
  Resource.t list ->
  evaluation option
(** Alias of {!best_partition}. *)

val sweep :
  ?pool:Symbad_par.Par.pool ->
  capacity:int ->
  max_contexts:int ->
  calls:string list ->
  Resource.t list ->
  evaluation list
(** Every feasible partition with its cost, best first; candidates fan
    out on [pool], progress as ["placement.sweep"] obs events. *)

val greedy_partition :
  capacity:int ->
  max_contexts:int ->
  calls:string list ->
  Resource.t list ->
  partition option
(** Polynomial heuristic for resource sets beyond exhaustive reach:
    merge the groups whose call-adjacency affinity is highest (those are
    the reconfigurations a merge saves) while they fit in [capacity],
    until at most [max_contexts] groups remain.  [None] if no feasible
    partition is found. *)

val pp_partition : Format.formatter -> partition -> unit
