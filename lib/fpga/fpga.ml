(* The dynamically reconfigurable device.

   At most one context is loaded at a time.  Reconfiguration downloads the
   context's bitstream over the system bus (that traffic is the level-3
   performance effect the paper measures) and then spends programming time
   proportional to the bitstream size.  Invoking a resource that is not in
   the loaded context raises [Inconsistent] — the runtime violation whose
   static absence SymbC certifies. *)

module Proc = Symbad_sim.Process
module Time = Symbad_sim.Time
module Bus = Symbad_tlm.Bus
module Transaction = Symbad_tlm.Transaction
module Obs = Symbad_obs.Obs
module Json = Symbad_obs.Json

exception Inconsistent of { resource : string; loaded : string option }

type t = {
  name : string;
  capacity : int;  (* max area of a loadable context *)
  contexts : Context.t list;
  program_ns_per_byte : int;
  burst_bytes : int;  (* bus-burst granularity of bitstream downloads *)
  mutable loaded : Context.t option;
  mutable reconfigurations : int;
  mutable bitstream_bytes_total : int;
  mutable reconfig_ns_total : int;
  mutable calls : int;
}

let create ?(capacity = 10_000) ?(program_ns_per_byte = 1) ?(burst_bytes = 8)
    ~contexts name =
  List.iter
    (fun c ->
      if Context.area c > capacity then
        invalid_arg
          (Printf.sprintf "Fpga.create: context %s area %d exceeds capacity %d"
             (Context.name c) (Context.area c) capacity))
    contexts;
  if burst_bytes <= 0 then invalid_arg "Fpga.create: burst_bytes";
  {
    name;
    capacity;
    contexts;
    program_ns_per_byte;
    burst_bytes;
    loaded = None;
    reconfigurations = 0;
    bitstream_bytes_total = 0;
    reconfig_ns_total = 0;
    calls = 0;
  }

let name f = f.name
let capacity f = f.capacity
let contexts f = f.contexts
let loaded f = f.loaded

let find_context f ctx_name =
  match
    List.find_opt (fun c -> String.equal (Context.name c) ctx_name) f.contexts
  with
  | Some c -> c
  | None -> invalid_arg ("Fpga.find_context: unknown context " ^ ctx_name)

(* Download the bitstream over [bus] (as the SW running on [master] would)
   and program the fabric.  No-op if the context is already loaded. *)
let reconfigure f ~bus ~master ctx_name =
  let ctx = find_context f ctx_name in
  let already =
    match f.loaded with
    | Some c -> String.equal (Context.name c) ctx_name
    | None -> false
  in
  if not already then begin
    let bytes = Context.bitstream_bytes ctx in
    let t0 = Time.to_ns (Proc.now ()) in
    let sp =
      if Obs.enabled () then
        Obs.begin_span ~track:master ~cat:"fpga"
          ~args:
            [ ("context", Json.Str ctx_name); ("bytes", Json.Int bytes) ]
          ~sim_ns:t0 "fpga.reconfigure"
      else Obs.null_span
    in
    (* the download is real bus traffic: one burst-sized transaction per
       chunk, each arbitrated — this fine-grained modelling is what makes
       level-3 simulation markedly slower than level 2 *)
    let remaining = ref bytes in
    while !remaining > 0 do
      let chunk = min f.burst_bytes !remaining in
      Bus.transfer ~priority:2 bus
        (Transaction.make ~master ~target:f.name ~kind:Transaction.Bitstream
           ~bytes:chunk);
      remaining := !remaining - chunk
    done;
    Proc.wait (Time.ns (bytes * f.program_ns_per_byte));
    f.loaded <- Some ctx;
    f.reconfigurations <- f.reconfigurations + 1;
    f.bitstream_bytes_total <- f.bitstream_bytes_total + bytes;
    f.reconfig_ns_total <-
      f.reconfig_ns_total + (Time.to_ns (Proc.now ()) - t0);
    if Obs.enabled () then begin
      let now_ns = Time.to_ns (Proc.now ()) in
      Obs.event
        ~args:
          [
            ("fpga", Json.Str f.name);
            ("context", Json.Str ctx_name);
            ("bitstream_bytes", Json.Int bytes);
            ("download_ns", Json.Int (now_ns - t0));
          ]
        ~sim_ns:now_ns "fpga.context_switch";
      Obs.incr_counter "fpga.reconfigurations";
      Obs.incr_counter ~by:bytes "fpga.bitstream_bytes";
      Obs.end_span ~sim_ns:now_ns sp
    end
  end

(* Check that [resource] is available; the actual computation timing is
   modelled by the caller (it knows the annotated cycle cost). *)
let require f resource =
  f.calls <- f.calls + 1;
  match f.loaded with
  | Some ctx when Context.provides ctx resource -> ()
  | Some ctx ->
      raise (Inconsistent { resource; loaded = Some (Context.name ctx) })
  | None -> raise (Inconsistent { resource; loaded = None })

let provides_loaded f resource =
  match f.loaded with
  | Some ctx -> Context.provides ctx resource
  | None -> false

type stats = {
  reconfigurations : int;
  bitstream_bytes : int;
  reconfig_ns : int;
  resource_calls : int;
}

let stats (f : t) =
  {
    reconfigurations = f.reconfigurations;
    bitstream_bytes = f.bitstream_bytes_total;
    reconfig_ns = f.reconfig_ns_total;
    resource_calls = f.calls;
  }

let pp_stats fmt s =
  Fmt.pf fmt "reconfigs=%d bitstream=%dB reconfig_time=%dns calls=%d"
    s.reconfigurations s.bitstream_bytes s.reconfig_ns s.resource_calls
