(* The dynamically reconfigurable device.

   At most one context is loaded at a time.  Reconfiguration downloads the
   context's bitstream over the system bus (that traffic is the level-3
   performance effect the paper measures) and then spends programming time
   proportional to the bitstream size.  Invoking a resource that is not in
   the loaded context raises [Inconsistent] — the runtime violation whose
   static absence SymbC certifies.

   Dependability additions: every download is CRC-checked against the
   context's golden image and re-downloaded (bounded) on mismatch; the
   loaded configuration memory can suffer an upset, detected by readback
   scrubbing which reloads the context; resources can wedge (stuck-at),
   which the platform watchdog turns into a health downgrade and a
   software fallback at level 3. *)

module Proc = Symbad_sim.Process
module Time = Symbad_sim.Time
module Bus = Symbad_tlm.Bus
module Transaction = Symbad_tlm.Transaction
module Obs = Symbad_obs.Obs
module Json = Symbad_obs.Json

exception Inconsistent of { resource : string; loaded : string option }
exception Download_failed of { fpga : string; context : string; attempts : int }

type t = {
  name : string;
  capacity : int;  (* max fabric area of a loadable configuration *)
  copies : int;  (* 1 = simplex, 3 = TMR with majority voting *)
  contexts : Context.t list;
  program_ns_per_byte : int;
  burst_bytes : int;  (* bus-burst granularity of bitstream downloads *)
  max_redownloads : int;
  mutable loaded : Context.t option;
  (* per-context, per-copy upset flags: inactive contexts keep resident
     configuration frames in their resource areas, so SEUs hit them too *)
  corrupt : (string, bool array) Hashtbl.t;
  mutable stuck : string list;
  mutable healthy : bool;
  mutable download_fault : (attempt:int -> word:int -> int) option;
  mutable reconfigurations : int;
  mutable noop_reconfigurations : int;
  mutable bitstream_bytes_total : int;
  mutable reconfig_ns_total : int;
  mutable calls : int;
  mutable crc_mismatches : int;
  mutable retried_downloads : int;
  mutable failed_downloads : int;
  mutable scrubs : int;
  mutable scrub_reloads : int;
  mutable watchdog_fires : int;
  mutable voter_disagreements : int;
  mutable targeted_repairs : int;
  mutable repair_bytes : int;
  mutable area_loaded : int;  (* largest resource area ever consumed *)
}

let create ?(capacity = 10_000) ?(copies = 1) ?(program_ns_per_byte = 1)
    ?(burst_bytes = 8) ?(max_redownloads = 2) ~contexts name =
  if copies <> 1 && copies <> 3 then
    invalid_arg "Fpga.create: copies must be 1 (simplex) or 3 (TMR)";
  List.iter
    (fun c ->
      if Context.area c * copies > capacity then
        invalid_arg
          (Printf.sprintf
             "Fpga.create: context %s area %d x %d copies exceeds capacity %d"
             (Context.name c) (Context.area c) copies capacity))
    contexts;
  if burst_bytes <= 0 then invalid_arg "Fpga.create: burst_bytes";
  if max_redownloads < 0 then invalid_arg "Fpga.create: max_redownloads";
  let corrupt = Hashtbl.create 8 in
  List.iter
    (fun c -> Hashtbl.replace corrupt (Context.name c) (Array.make copies false))
    contexts;
  {
    name;
    capacity;
    copies;
    contexts;
    program_ns_per_byte;
    burst_bytes;
    max_redownloads;
    loaded = None;
    corrupt;
    stuck = [];
    healthy = true;
    download_fault = None;
    reconfigurations = 0;
    noop_reconfigurations = 0;
    bitstream_bytes_total = 0;
    reconfig_ns_total = 0;
    calls = 0;
    crc_mismatches = 0;
    retried_downloads = 0;
    failed_downloads = 0;
    scrubs = 0;
    scrub_reloads = 0;
    watchdog_fires = 0;
    voter_disagreements = 0;
    targeted_repairs = 0;
    repair_bytes = 0;
    area_loaded = 0;
  }

let name f = f.name
let capacity f = f.capacity
let copies f = f.copies
let contexts f = f.contexts
let loaded f = f.loaded
let is_healthy f = f.healthy
let mark_unhealthy f = f.healthy <- false
let inject_download_fault f h = f.download_fault <- h

let flags_of f ctx =
  match Hashtbl.find_opt f.corrupt (Context.name ctx) with
  | Some a -> a
  | None ->
      let a = Array.make f.copies false in
      Hashtbl.replace f.corrupt (Context.name ctx) a;
      a

let context_corrupted f ctx = Array.exists Fun.id (flags_of f ctx)

let loaded_corrupted f =
  match f.loaded with Some ctx -> context_corrupted f ctx | None -> false

let upset_context ?(copy = 0) f ctx_name =
  match
    List.find_opt (fun c -> String.equal (Context.name c) ctx_name) f.contexts
  with
  | Some ctx ->
      (flags_of f ctx).(min (max copy 0) (f.copies - 1)) <- true;
      true
  | None -> false

let upset_loaded ?(copy = 0) f =
  match f.loaded with
  | Some ctx -> upset_context ~copy f (Context.name ctx)
  | None -> false

let set_stuck f resource =
  if not (List.mem resource f.stuck) then f.stuck <- resource :: f.stuck

let clear_stuck f = f.stuck <- []
let responding f resource = not (List.mem resource f.stuck)

let note_watchdog f =
  f.watchdog_fires <- f.watchdog_fires + 1;
  if Obs.enabled () then
    Obs.event ~severity:Symbad_obs.Severity.Warn
      ~args:[ ("fpga", Json.Str f.name) ]
      ~sim_ns:(Time.to_ns (Proc.now ()))
      "fpga.watchdog"

let find_context f ctx_name =
  match
    List.find_opt (fun c -> String.equal (Context.name c) ctx_name) f.contexts
  with
  | Some c -> c
  | None -> invalid_arg ("Fpga.find_context: unknown context " ^ ctx_name)

(* Push [bytes] of the named kind over the bus in burst-sized,
   individually arbitrated transactions. *)
let bus_stream f ~bus ~master ~kind bytes =
  let remaining = ref bytes in
  while !remaining > 0 do
    let chunk = min f.burst_bytes !remaining in
    Bus.transfer ~priority:2 bus
      (Transaction.make ~master ~target:f.name ~kind ~bytes:chunk);
    remaining := !remaining - chunk
  done

(* One download attempt: ship the bitstream over the bus and return the
   CRC of what arrived (the injected fault hook xors word masks in).
   [Error `Bus] when the bus gave up mid-download. *)
let download_once f ~bus ~master ctx ~attempt =
  let bytes = Context.bitstream_bytes ctx in
  let nwords = Context.bitstream_words ctx in
  match bus_stream f ~bus ~master ~kind:Transaction.Bitstream bytes with
  | () ->
      f.bitstream_bytes_total <- f.bitstream_bytes_total + bytes;
      let arrived i =
        let mask =
          match f.download_fault with
          | None -> 0
          | Some h -> h ~attempt ~word:i
        in
        Context.bitstream_word ctx i lxor mask
      in
      Ok (Crc.words arrived nwords)
  | exception Bus.Transfer_failed _ -> Error `Bus

(* Download with integrity checking: CRC mismatches and bus failures
   trigger a bounded re-download, then [Download_failed]. *)
let checked_download f ~bus ~master ctx =
  let golden = Context.golden_crc ctx in
  let ctx_name = Context.name ctx in
  let rec go attempt =
    let failed_attempt () =
      if attempt >= f.max_redownloads then begin
        f.failed_downloads <- f.failed_downloads + 1;
        raise
          (Download_failed
             { fpga = f.name; context = ctx_name; attempts = attempt + 1 })
      end
      else begin
        f.retried_downloads <- f.retried_downloads + 1;
        if Obs.enabled () then
          Obs.event ~severity:Symbad_obs.Severity.Warn
            ~args:
              [
                ("fpga", Json.Str f.name);
                ("context", Json.Str ctx_name);
                ("attempt", Json.Int attempt);
              ]
            ~sim_ns:(Time.to_ns (Proc.now ()))
            "fpga.redownload";
        go (attempt + 1)
      end
    in
    match download_once f ~bus ~master ctx ~attempt with
    | Ok crc when crc = golden -> ()
    | Ok _ ->
        f.crc_mismatches <- f.crc_mismatches + 1;
        failed_attempt ()
    | Error `Bus -> failed_attempt ()
  in
  go 0

let note_scrub_reload f ctx =
  f.scrub_reloads <- f.scrub_reloads + 1;
  if Obs.enabled () then
    Obs.event ~severity:Symbad_obs.Severity.Warn
      ~args:
        [
          ("fpga", Json.Str f.name); ("context", Json.Str (Context.name ctx));
        ]
      ~sim_ns:(Time.to_ns (Proc.now ()))
      "fpga.scrub_reload"

(* Download the bitstream over [bus] (as the SW running on [master] would)
   and program the fabric.  No-op if the context is already loaded.
   With [verify_previous] (the readback-on-context-switch half of the
   scrubbing feature) an upset in the outgoing context is detected and
   counted before it is overwritten — without it, an upset that a later
   reconfiguration happens to erase was never observed by anyone. *)
(* Load every redundant copy: in TMR the bitstream is downloaded and
   programmed once per resource area — the 3x reconfiguration price of
   the masked mode, paid in real bus traffic and programming time. *)
let load_all_copies f ~bus ~master ctx =
  for _ = 1 to f.copies do
    checked_download f ~bus ~master ctx
  done;
  Proc.wait
    (Time.ns (Context.bitstream_bytes ctx * f.copies * f.program_ns_per_byte));
  Array.fill (flags_of f ctx) 0 f.copies false;
  f.area_loaded <- max f.area_loaded (Context.area ctx * f.copies)

let reconfigure ?(verify_previous = false) f ~bus ~master ctx_name =
  let ctx = find_context f ctx_name in
  let already =
    match f.loaded with
    | Some c -> String.equal (Context.name c) ctx_name
    | None -> false
  in
  let corrupt_repair = verify_previous && loaded_corrupted f in
  if corrupt_repair then
    Option.iter (note_scrub_reload f) f.loaded;
  if already && corrupt_repair then
    (* same context requested while corrupt: repair in place *)
    load_all_copies f ~bus ~master ctx
  else if already then
    f.noop_reconfigurations <- f.noop_reconfigurations + 1
  else begin
    let bytes = Context.bitstream_bytes ctx * f.copies in
    let t0 = Time.to_ns (Proc.now ()) in
    let sp =
      if Obs.enabled () then
        Obs.begin_span ~track:master ~cat:"fpga"
          ~args:
            [ ("context", Json.Str ctx_name); ("bytes", Json.Int bytes) ]
          ~sim_ns:t0 "fpga.reconfigure"
      else Obs.null_span
    in
    (* the download is real bus traffic: one burst-sized transaction per
       chunk, each arbitrated — this fine-grained modelling is what makes
       level-3 simulation markedly slower than level 2 *)
    load_all_copies f ~bus ~master ctx;
    f.loaded <- Some ctx;
    f.reconfigurations <- f.reconfigurations + 1;
    f.reconfig_ns_total <-
      f.reconfig_ns_total + (Time.to_ns (Proc.now ()) - t0);
    if Obs.enabled () then begin
      let now_ns = Time.to_ns (Proc.now ()) in
      Obs.event
        ~args:
          [
            ("fpga", Json.Str f.name);
            ("context", Json.Str ctx_name);
            ("bitstream_bytes", Json.Int bytes);
            ("download_ns", Json.Int (now_ns - t0));
          ]
        ~sim_ns:now_ns "fpga.context_switch";
      Obs.incr_counter "fpga.reconfigurations";
      Obs.incr_counter ~by:bytes "fpga.bitstream_bytes";
      Obs.end_span ~sim_ns:now_ns sp
    end
  end

(* Readback scrubbing: stream the configuration memory back over the bus,
   compare its CRC against the golden image and reload on mismatch.
   [context] scrubs the named context's resource area even while another
   context is active — inactive configuration frames stay resident and
   collect upsets too — without touching the active one. *)
let scrub ?context f ~bus ~master =
  f.scrubs <- f.scrubs + 1;
  let target =
    match context with Some n -> Some (find_context f n) | None -> f.loaded
  in
  match target with
  | None -> false
  | Some ctx ->
      let bytes = Context.bitstream_bytes ctx in
      bus_stream f ~bus ~master ~kind:Transaction.Read (bytes * f.copies);
      let flags = flags_of f ctx in
      if not (Array.exists Fun.id flags) then false
      else begin
        note_scrub_reload f ctx;
        (* reload only the corrupt copies — one download each *)
        Array.iteri
          (fun i bad ->
            if bad then begin
              checked_download f ~bus ~master ctx;
              Proc.wait (Time.ns (bytes * f.program_ns_per_byte));
              flags.(i) <- false
            end)
          flags;
        true
      end

(* The TMR majority vote at result-readout time (cf. [Symbad_hdl.Tmr]:
   the voter is combinational, its masking contract model-checked).
   Exactly one corrupt copy is outvoted — the result is correct — and
   its disagreement flag drives a targeted repair of just that resource
   area over the internal configuration port, overlapping continued
   voted operation: only counters and repair bytes move, no simulated
   time.  Two or more corrupt copies defeat the vote. *)
let vote_and_repair f =
  match f.loaded with
  | None -> `Clean
  | Some ctx -> (
      if f.copies < 3 then if loaded_corrupted f then `Corrupt else `Clean
      else
        let flags = flags_of f ctx in
        let bad = Array.to_list flags |> List.filter Fun.id |> List.length in
        match bad with
        | 0 -> `Clean
        | 1 ->
            let i = ref 0 in
            Array.iteri (fun j b -> if b then i := j) flags;
            f.voter_disagreements <- f.voter_disagreements + 1;
            f.targeted_repairs <- f.targeted_repairs + 1;
            f.repair_bytes <- f.repair_bytes + Context.bitstream_bytes ctx;
            flags.(!i) <- false;
            if Obs.enabled () then begin
              Obs.event ~severity:Symbad_obs.Severity.Warn
                ~args:
                  [
                    ("fpga", Json.Str f.name);
                    ("context", Json.Str (Context.name ctx));
                    ("copy", Json.Int !i);
                  ]
                ~sim_ns:(Time.to_ns (Proc.now ()))
                "fpga.voter_disagreement";
              Obs.incr_counter "fpga.voter_disagreements";
              Obs.incr_counter "fpga.targeted_repairs"
            end;
            `Masked
        | _ -> `Corrupt)

(* Check that [resource] is available; the actual computation timing is
   modelled by the caller (it knows the annotated cycle cost). *)
let require f resource =
  f.calls <- f.calls + 1;
  match f.loaded with
  | Some ctx when Context.provides ctx resource -> ()
  | Some ctx ->
      raise (Inconsistent { resource; loaded = Some (Context.name ctx) })
  | None -> raise (Inconsistent { resource; loaded = None })

let provides_loaded f resource =
  match f.loaded with
  | Some ctx -> Context.provides ctx resource
  | None -> false

type stats = {
  reconfigurations : int;
  noop_reconfigurations : int;
  bitstream_bytes : int;
  reconfig_ns : int;
  resource_calls : int;
  crc_mismatches : int;
  retried_downloads : int;
  failed_downloads : int;
  scrubs : int;
  scrub_reloads : int;
  watchdog_fires : int;
  copies : int;
  voter_disagreements : int;
  targeted_repairs : int;
  repair_bytes : int;
  area_loaded : int;
}

let stats (f : t) =
  {
    reconfigurations = f.reconfigurations;
    noop_reconfigurations = f.noop_reconfigurations;
    bitstream_bytes = f.bitstream_bytes_total;
    reconfig_ns = f.reconfig_ns_total;
    resource_calls = f.calls;
    crc_mismatches = f.crc_mismatches;
    retried_downloads = f.retried_downloads;
    failed_downloads = f.failed_downloads;
    scrubs = f.scrubs;
    scrub_reloads = f.scrub_reloads;
    watchdog_fires = f.watchdog_fires;
    copies = f.copies;
    voter_disagreements = f.voter_disagreements;
    targeted_repairs = f.targeted_repairs;
    repair_bytes = f.repair_bytes;
    area_loaded = f.area_loaded;
  }

let pp_stats fmt s =
  Fmt.pf fmt
    "reconfigs=%d noop=%d bitstream=%dB reconfig_time=%dns calls=%d \
     crc_mismatches=%d retried_dl=%d failed_dl=%d scrubs=%d scrub_reloads=%d \
     watchdog=%d copies=%d disagreements=%d targeted=%d repair=%dB area=%d"
    s.reconfigurations s.noop_reconfigurations s.bitstream_bytes s.reconfig_ns
    s.resource_calls s.crc_mismatches s.retried_downloads s.failed_downloads
    s.scrubs s.scrub_reloads s.watchdog_fires s.copies s.voter_disagreements
    s.targeted_repairs s.repair_bytes s.area_loaded
