(* Context-partition tuning.

   "The partition of algorithms and registers among the different
   configurations is an important architectural aspect which must be
   thoroughly tuned for obtaining optimal performances" — this module
   evaluates and optimises that partition: given the dynamic sequence of
   resource invocations, it counts the reconfigurations (and downloaded
   bytes) each candidate partition would cause, and searches for the best
   one (exhaustively for the case-study sizes, greedily beyond). *)

type partition = Resource.t list list
(* groups of resources; each group becomes one context *)

let contexts_of_partition partition =
  List.mapi
    (fun i group -> Context.make (Printf.sprintf "config%d" (i + 1)) group)
    partition

(* Replay [calls] against a partition: every invocation of a resource not
   in the currently loaded context forces a reconfiguration. *)
let evaluate ~calls partition =
  let contexts = contexts_of_partition partition in
  let context_of resource =
    List.find_opt (fun c -> Context.provides c resource) contexts
  in
  let reconfigs = ref 0 in
  let bytes = ref 0 in
  let current = ref None in
  List.iter
    (fun resource ->
      match context_of resource with
      | None -> invalid_arg ("Placement.evaluate: unplaced " ^ resource)
      | Some ctx ->
          let loaded =
            match !current with
            | Some c -> String.equal (Context.name c) (Context.name ctx)
            | None -> false
          in
          if not loaded then begin
            incr reconfigs;
            bytes := !bytes + Context.bitstream_bytes ctx;
            current := Some ctx
          end)
    calls;
  (!reconfigs, !bytes)

(* All set partitions of [resources] into at most [max_contexts] groups
   whose areas fit in [capacity], via restricted-growth strings. *)
let feasible_partitions ~capacity ~max_contexts resources =
  let arr = Array.of_list resources in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let results = ref [] in
    let assignment = Array.make n 0 in
    (* restricted-growth strings: item [i] may join groups 0..max_used+1,
       so no group is ever left empty *)
    let rec enum i max_used =
      if i = n then begin
        let groups = Array.make (max_used + 1) [] in
        for j = n - 1 downto 0 do
          groups.(assignment.(j)) <- arr.(j) :: groups.(assignment.(j))
        done;
        let groups = Array.to_list groups in
        let fits g =
          List.fold_left (fun a r -> a + Resource.area r) 0 g <= capacity
        in
        if List.for_all fits groups then results := groups :: !results
      end
      else
        let limit = min (max_used + 1) (max_contexts - 1) in
        for g = 0 to limit do
          assignment.(i) <- g;
          enum (i + 1) (max g max_used)
        done
    in
    enum 0 (-1);
    !results
  end

type evaluation = {
  partition : partition;
  reconfigurations : int;
  bitstream_bytes : int;
}

module Obs = Symbad_obs.Obs
module Json = Symbad_obs.Json

(* Sweep progress goes through [symbad_obs] events — never stdout — so a
   parallel sweep cannot interleave progress text with other output; the
   events are emitted from the calling domain only. *)
let progress_event what ~completed ~total =
  Obs.event
    ~args:[ ("completed", Json.Int completed); ("total", Json.Int total) ]
    what

(* Replay one candidate per pool job; evaluation is a pure fold over the
   call sequence, so the fan-out is deterministic at any pool width. *)
let evaluate_all ?pool ~label ~calls candidates =
  let pool = Symbad_par.Par.get pool in
  Symbad_par.Par.map ~label
    ~progress:(progress_event label)
    pool
    (fun p ->
      let reconfigurations, bitstream_bytes = evaluate ~calls p in
      { partition = p; reconfigurations; bitstream_bytes })
    candidates

let best_partition ?pool ~capacity ~max_contexts ~calls resources =
  let candidates = feasible_partitions ~capacity ~max_contexts resources in
  match evaluate_all ?pool ~label:"placement.exhaustive" ~calls candidates with
  | [] -> None
  | first :: rest ->
      let better a b =
        a.reconfigurations < b.reconfigurations
        || (a.reconfigurations = b.reconfigurations
            && a.bitstream_bytes < b.bitstream_bytes)
      in
      Some (List.fold_left (fun acc e -> if better e acc then e else acc) first rest)

let exhaustive = best_partition

let sweep ?pool ~capacity ~max_contexts ~calls resources =
  feasible_partitions ~capacity ~max_contexts resources
  |> evaluate_all ?pool ~label:"placement.sweep" ~calls
  |> List.sort (fun a b ->
         compare
           (a.reconfigurations, a.bitstream_bytes)
           (b.reconfigurations, b.bitstream_bytes))

(* Greedy partitioner for resource sets beyond exhaustive reach:
   repeatedly merge the two groups with the highest call-adjacency
   affinity (adjacent invocations of resources in different contexts are
   exactly the reconfigurations a merge would save), subject to the
   capacity, until at most [max_contexts] groups remain and no further
   merge pays. *)
let greedy_partition ~capacity ~max_contexts ~calls resources =
  if resources = [] then None
  else if List.exists (fun r -> Resource.area r > capacity) resources then None
  else begin
    let affinity a b =
      (* adjacent call pairs crossing groups a and b *)
      let in_group g name =
        List.exists (fun r -> String.equal (Resource.name r) name) g
      in
      let rec count acc = function
        | x :: (y :: _ as rest) ->
            let crossing =
              (in_group a x && in_group b y) || (in_group b x && in_group a y)
            in
            count (if crossing then acc + 1 else acc) rest
        | [ _ ] | [] -> acc
      in
      count 0 calls
    in
    let group_area g = List.fold_left (fun s r -> s + Resource.area r) 0 g in
    let rec merge groups =
      let n = List.length groups in
      (* candidate merges that fit *)
      let best = ref None in
      List.iteri
        (fun i gi ->
          List.iteri
            (fun j gj ->
              if i < j && group_area gi + group_area gj <= capacity then begin
                let a = affinity gi gj in
                match !best with
                | Some (_, _, a') when a' >= a -> ()
                | _ -> best := Some (i, j, a)
              end)
            groups)
        groups;
      match !best with
      | Some (i, j, a) when n > max_contexts || a > 0 ->
          let gi = List.nth groups i and gj = List.nth groups j in
          let rest =
            List.filteri (fun k _ -> k <> i && k <> j) groups
          in
          merge ((gi @ gj) :: rest)
      | Some _ | None -> if n <= max_contexts then Some groups else None
    in
    merge (List.map (fun r -> [ r ]) resources)
  end

let pp_partition fmt p =
  let pp_group fmt g =
    Fmt.pf fmt "{%a}"
      (Fmt.list ~sep:(Fmt.any ",") Fmt.string)
      (List.map Resource.name g)
  in
  Fmt.pf fmt "[%a]" (Fmt.list ~sep:(Fmt.any " ") pp_group) p
