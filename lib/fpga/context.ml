(* An FPGA context (configuration): a fixed set of resources that are
   simultaneously available once the context's bitstream is loaded. *)

type t = { name : string; resources : Resource.t list }

let make name resources =
  let names = List.map Resource.name resources in
  let dedup = List.sort_uniq String.compare names in
  if List.length dedup <> List.length names then
    invalid_arg ("Context.make: duplicate resource in " ^ name);
  { name; resources }

let name c = c.name
let resources c = c.resources
let area c = List.fold_left (fun a r -> a + Resource.area r) 0 c.resources

let provides c resource_name =
  List.exists (fun r -> String.equal (Resource.name r) resource_name) c.resources

(* Bitstream size: a fixed configuration-frame header plus a per-area
   payload.  8 bytes of configuration data per logic unit is in the range
   of embedded FPGA fabrics of the period. *)
let bitstream_bytes ?(header_bytes = 512) ?(bytes_per_area = 8) c =
  header_bytes + (bytes_per_area * area c)

let bitstream_words ?header_bytes ?bytes_per_area c =
  (bitstream_bytes ?header_bytes ?bytes_per_area c + 3) / 4

(* Deterministic pseudo-bitstream: word [i] is a splitmix-style hash of
   the context name and the index, so every context has a stable golden
   image without storing one.  [Hashtbl.hash] on strings is
   deterministic across runs. *)
let bitstream_word c i =
  let x = (Hashtbl.hash c.name land 0xFFFF) + (i * 0x01000193) in
  let x = x * 0x9E3779B1 land 0xFFFFFFFF in
  let x = x lxor (x lsr 15) in
  let x = x * 0x85EBCA77 land 0xFFFFFFFF in
  x lxor (x lsr 13) land 0xFFFFFFFF

let golden_crc ?header_bytes ?bytes_per_area c =
  Crc.words (bitstream_word c) (bitstream_words ?header_bytes ?bytes_per_area c)

let pp fmt c =
  Fmt.pf fmt "%s{%a}" c.name (Fmt.list ~sep:Fmt.comma Resource.pp) c.resources
