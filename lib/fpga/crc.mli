(** CRC-32 over 32-bit words — the bitstream integrity check used by
    {!Fpga.reconfigure} to detect download corruption. *)

val update : int -> int -> int
(** [update crc word] folds one 32-bit word into the running remainder
    (reflected CRC-32, polynomial [0xEDB88320]). *)

val words : (int -> int) -> int -> int
(** [words gen n] is the CRC-32 of the word stream
    [gen 0 … gen (n-1)], with the standard pre/post inversion. *)
